module pocketcloudlets

go 1.22

#!/usr/bin/env bash
# Runs the fleet serving benchmarks (BenchmarkFleetServe* in the root
# package) and writes a machine-readable snapshot to BENCH_<date>.json
# so successive runs can be diffed for regressions.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3s scripts/bench.sh     # longer, steadier numbers
#
# The default BENCHTIME of 1x keeps the script cheap enough for CI,
# where it runs non-gating (see .github/workflows/ci.yml); locally,
# raise it for numbers worth comparing.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${1:-BENCH_$(date -u +%Y%m%d).json}"

raw=$(go test -bench FleetServe -benchtime "$BENCHTIME" -benchmem -run '^$' .)
echo "$raw"

# A short hedged fault run, normalized by cmd/reportnorm so it is
# byte-deterministic, rides along in the snapshot: its hedge counters
# (clones launched, primary/clone wins, wasted attempts) are pure
# model outputs, so a diff between two snapshots surfaces any drift
# in the hedging policy the serving benchmarks would not see. The
# queued backends are on (finite rate, bounded PS, cancel-on-win) and
# the per-replica rows and energy ledger kept (-keep backend,energy),
# so backend utilization, queue-wait counters and joules-per-answered
# diff across commits too.
hedged=$(go run ./cmd/loadtest -mode closed -users 64 -duration 0 -seed 3 \
    -faults -loss 0.2 -outage 6s/30s -retries 3 \
    -replicas 3 -hedge 2 \
    -backend-rate 30 -backend-queue 16 -backend-disc ps \
    -backend-offered 20 -backend-cancel -json |
    go run ./cmd/reportnorm -keep backend,energy)

# An autoscaled diurnal run rides along as well: its energy ledger and
# autoscale action log are pure model outputs (occupancy is sampled
# after a drain), so a snapshot diff surfaces any drift in the
# controller policy or the shard power model — in particular the
# headline per_answered_j joules-per-answered-query metric.
autoscaled=$(go run ./cmd/loadtest -users 200 -qps 800 -duration 2s -seed 5 \
    -arrivals diurnal -diurnal-peak 6 -placement ring -shards 4 \
    -autoscale -autoscale-interval 250ms -autoscale-rate 120 -json |
    go run ./cmd/reportnorm -keep energy,autoscale)

{
    echo '{'
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benchtime\": \"$BENCHTIME\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo '  "benchmarks": ['
    echo "$raw" | awk '
        /^Benchmark/ {
            name = $1; iters = $2; metrics = "";
            for (i = 3; i + 1 <= NF; i += 2) {
                if (metrics != "") metrics = metrics ", ";
                metrics = metrics "\"" $(i + 1) "\": " $i;
            }
            line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, metrics);
            if (out != "") out = out ",\n";
            out = out line;
        }
        END { print out }
    '
    echo '  ],'
    echo "  \"hedged_loadtest\": $hedged,"
    echo "  \"autoscaled_loadtest\": $autoscaled"
    echo '}'
} > "$OUT"

echo "wrote $OUT"

#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): formatting, static
# analysis, a full build, the whole test suite, and a race-detector
# pass. Everything must pass before a change lands.
#
# The race pass uses -short: the race detector slows the log-scale
# calibration/replay suites (internal/experiments) by an order of
# magnitude, past the per-package test timeout on small machines,
# and they are single-goroutine anyway. Every concurrent code path —
# fleet serving, load generation, workload, cloudletos — runs under
# the detector at full depth.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

echo "== fuzz seed-corpus regression: go test -run Fuzz ./... =="
# Replays every fuzz target over its committed seed corpus (plus any
# crashers committed to testdata/fuzz) without open-ended fuzz time, so
# once a crasher is fixed it stays fixed. -fuzz is deliberately absent:
# this is a regression gate, not a search.
go test -run Fuzz ./...

echo "== fault-injection smoke: loadtest -faults -check =="
# A short closed-loop run under loss + a periodic outage with batching
# and the adaptive linger window, with the report invariants verified
# by the binary itself (-check): no panics, no errors, every submission
# booked exactly once, every served request attributed to exactly one
# tier (including the degraded ones). When CHECK_ARTIFACT_DIR is set
# (CI does this) the JSON report is kept there instead of discarded,
# so the workflow can upload it as an artifact.
smoke_out=/dev/null
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$CHECK_ARTIFACT_DIR"
    smoke_out="$CHECK_ARTIFACT_DIR/loadtest-faults.json"
fi
go run ./cmd/loadtest -mode closed -users 100 -duration 0 -seed 3 \
    -faults -loss 0.3 -outage 6s/30s -retries 3 \
    -batch -batchadaptive -check -json > "$smoke_out"

echo "== hedged determinism smoke: clone factor 1 ≡ single backend =="
# The replicated-backend acceptance guarantee (DESIGN.md, "Hedged
# misses and replicas"): a fleet with -replicas 3 and hedging off
# (clone factor 1) must be model-indistinguishable from the
# single-backend fleet. Both runs are normalized by cmd/reportnorm
# (wall-clock fields stripped, floats canonicalized) and then must be
# byte-identical. A second run with clone factor 2 exercises the hedge
# telemetry cross-foot invariants (-check): primary wins + clone wins
# partition the cloud serves, clone wins never exceed clones launched,
# per-replica breaker opens sum to the fleet total.
hedge_tmp=$(mktemp -d)
trap 'rm -rf "$hedge_tmp"' EXIT
hedge_smoke() {
    go run ./cmd/loadtest -mode closed -users 64 -duration 0 -seed 3 \
        -faults -loss 0.2 -outage 6s/30s -retries 3 "$@" -json |
        go run ./cmd/reportnorm
}
hedge_smoke > "$hedge_tmp/single.json"
hedge_smoke -replicas 3 -hedge 1 > "$hedge_tmp/clone1.json"
if ! diff -u "$hedge_tmp/single.json" "$hedge_tmp/clone1.json"; then
    echo "hedged determinism smoke: clone factor 1 diverged from the single backend" >&2
    exit 1
fi
hedged_out=/dev/null
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    hedged_out="$CHECK_ARTIFACT_DIR/loadtest-hedged.json"
fi
go run ./cmd/loadtest -mode closed -users 64 -duration 0 -seed 3 \
    -faults -loss 0.2 -outage 6s/30s -retries 3 \
    -replicas 3 -hedge 2 -check -json > "$hedged_out"

echo "== backend byte-identity smoke: -backend-rate inf ≡ no backend =="
# The queued-backend acceptance guarantee (DESIGN.md, "Queued
# backends"): an infinitely fast backend prices every admission at
# zero, so a faulted hedged run with -backend-rate inf must be
# model-indistinguishable from the same run without the backend.
# reportnorm strips the per-replica backend rows by default, which are
# the only permitted report difference.
hedge_smoke -replicas 3 -hedge 2 > "$hedge_tmp/nobackend.json"
hedge_smoke -replicas 3 -hedge 2 -backend-rate inf > "$hedge_tmp/infrate.json"
if ! diff -u "$hedge_tmp/nobackend.json" "$hedge_tmp/infrate.json"; then
    echo "backend byte-identity smoke: -backend-rate inf diverged from the backend-free run" >&2
    exit 1
fi

echo "== backend smoke: finite-rate queued replicas -check =="
# A finite-rate bounded PS backend under hedged load, with the report
# invariants verified by the binary itself (-check): per-replica
# arrivals = served + rejected + abandoned, utilization and wait
# accounting non-negative, abandoned-work fraction in [0, 1].
backend_out=/dev/null
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    backend_out="$CHECK_ARTIFACT_DIR/loadtest-backend.json"
fi
go run ./cmd/loadtest -mode closed -users 64 -duration 0 -seed 3 \
    -faults -loss 0.2 -retries 3 -replicas 3 -hedge 2 \
    -backend-rate 30 -backend-queue 16 -backend-disc ps \
    -backend-offered 20 -backend-cancel -check -json > "$backend_out"

echo "== scenario smoke: loadtest -scenario flash-crowd -check =="
# The flash-crowd preset at a small population: two SLO classes (a flat
# steady floor plus a diurnal crowd spike), multi-class open-loop
# scheduling, and the per-class report rows, with the same -check
# invariants plus the per-class sum checks. Exercises the scenario
# compile path end to end on every gate run.
scenario_out=/dev/null
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    scenario_out="$CHECK_ARTIFACT_DIR/loadtest-flash-crowd.json"
fi
go run ./cmd/loadtest -scenario flash-crowd -users 150 -check -json > "$scenario_out"

echo "== autoscale smoke: green-day preset -check =="
# The green-day preset drives the occupancy autoscaler over a diurnal
# day curve: the controller samples per-shard occupancy on its
# model-time cadence and resizes the ring-routed fleet between its
# bounds. -check verifies the new invariants end to end — the energy
# ledger cross-foots (device + shard = fleet, per-answered × answered
# = fleet) and the autoscale action chain is well-formed (From→To
# links, targets within bounds, final size matches the last action).
autoscale_out=/dev/null
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    autoscale_out="$CHECK_ARTIFACT_DIR/loadtest-green-day.json"
fi
go run ./cmd/loadtest -scenario green-day -users 300 -check -json > "$autoscale_out"

echo "== autoscale determinism smoke: two identical runs =="
# Controller decisions sample occupancy after a fleet drain, so every
# resize is a pure function of the tape prefix: two identical
# autoscaled diurnal runs must agree byte-for-byte on the normalized
# report with every model-deterministic block restored — including the
# energy ledger and the autoscale action log.
as_smoke() {
    go run ./cmd/loadtest -users 200 -qps 800 -duration 2s -seed 5 \
        -arrivals diurnal -diurnal-peak 6 -placement ring -shards 4 \
        -autoscale -autoscale-interval 250ms -autoscale-rate 120 -json |
        go run ./cmd/reportnorm -keep backend,energy,autoscale
}
as_smoke > "$hedge_tmp/autoscale1.json"
as_smoke > "$hedge_tmp/autoscale2.json"
if ! diff -u "$hedge_tmp/autoscale1.json" "$hedge_tmp/autoscale2.json"; then
    echo "autoscale determinism smoke: two identical runs diverged" >&2
    exit 1
fi

echo "== bench smoke: FleetServe =="
# One iteration of each fleet serving benchmark (batched and unbatched)
# so a regression that breaks the benchmark fixtures fails the gate.
# The 100k-user benchmark's steady-state hit path is allocation-free
# by construction (see DESIGN.md, "Capacity model"); any allocs/op
# above zero is a serving-path regression and fails the gate.
bench_raw=$(go test -bench FleetServe -benchtime 1x -benchmem -run '^$' .)
echo "$bench_raw"
allocs=$(echo "$bench_raw" | awk '/^BenchmarkFleetServe100kUsers/ {
    for (i = 3; i + 1 <= NF; i += 2) if ($(i + 1) == "allocs/op") print $i
}')
if [ -z "$allocs" ]; then
    echo "bench smoke: BenchmarkFleetServe100kUsers produced no allocs/op metric" >&2
    exit 1
fi
if [ "$allocs" != "0" ]; then
    echo "bench smoke: serve path regressed to $allocs allocs/op (baseline 0)" >&2
    exit 1
fi

echo "all checks passed"

// Package pocketcloudlets is a from-scratch implementation of the
// Pocket Cloudlets architecture (Koukoumidis, Lymberopoulos, Strauss,
// Liu, Burger — ASPLOS 2011): cloud-service caches that live in the
// abundant non-volatile memory of a mobile device and serve requests
// locally, avoiding the latency and energy cost of waking the cellular
// radio.
//
// The package is a facade over the full system:
//
//   - A simulated mobile ecosystem: a procedural query/result corpus
//     and cloud search engine, a calibrated synthetic mobile-search
//     workload standing in for the paper's 200M-query m.bing.com logs,
//     a NAND-flash device model, and 3G/EDGE/802.11g radio models with
//     energy accounting.
//   - PocketSearch, the paper's showcase cloudlet: a DRAM query hash
//     table over a 32-file flash database, preloaded from community
//     search logs and personalized by the user's own clicks.
//   - The multi-cloudlet OS layer of Section 7: storage quotas,
//     coordinated cross-cloudlet eviction, and access control.
//
// A minimal session:
//
//	sim, _ := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 1})
//	content, _ := sim.CommunityContent(0, 0.55)     // build from month 0
//	phone := sim.NewPhone(pocketcloudlets.Radio3G)
//	ps, _ := sim.NewPocketSearch(phone, content, pocketcloudlets.Options{})
//	out, _ := ps.Query("site42", "www.site42.com/") // hit: ~378 ms, no radio
package pocketcloudlets

import (
	"fmt"
	"sort"
	"time"

	"pocketcloudlets/internal/adlet"
	"pocketcloudlets/internal/autoscale"
	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/loadgen"
	"pocketcloudlets/internal/maplet"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/pocketweb"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/suggest"
	"pocketcloudlets/internal/updater"
	"pocketcloudlets/internal/workload"
)

// Re-exported types: the facade exposes the internal packages' types
// under one import path so applications only depend on this package.
type (
	// Universe is the procedural query/result corpus.
	Universe = engine.Universe
	// Engine is the cloud search engine over a Universe.
	Engine = engine.Engine
	// Result is a materialized search result.
	Result = engine.Result
	// Generator produces synthetic per-user search streams.
	Generator = workload.Generator
	// UserProfile is one synthetic user.
	UserProfile = workload.UserProfile
	// Content is generated cache content (the community component).
	Content = cachegen.Content
	// Device is a simulated smartphone.
	Device = device.Device
	// PocketSearch is the on-device search cloudlet.
	PocketSearch = pocketsearch.Cache
	// Options configure a PocketSearch instance.
	Options = pocketsearch.Options
	// Outcome describes how one query was served.
	Outcome = pocketsearch.Outcome
	// Log is a window of search log entries.
	Log = searchlog.Log
	// Manager coordinates multiple cloudlets on one device.
	Manager = cloudletos.Manager
	// KVCloudlet is the generic cloudlet template (ads, maps, web).
	KVCloudlet = cloudletos.KVCloudlet
	// Quota is a cloudlet storage allowance.
	Quota = cloudletos.Quota
	// Update is a server-built cache update (Section 5.4).
	Update = updater.Update
	// PocketWeb is the web-content cloudlet (Section 3.2 / footnote 2).
	PocketWeb = pocketweb.Cache
	// WebConfig configures a PocketWeb instance.
	WebConfig = pocketweb.Config
	// PocketAds is the advertisement cloudlet (Figures 1 and 6).
	PocketAds = adlet.Cache
	// Ad is one cached advertisement creative.
	Ad = adlet.Ad
	// PocketMaps is the mapping cloudlet (Table 2, Section 7).
	PocketMaps = maplet.Cache
	// MapConfig configures a PocketMaps instance.
	MapConfig = maplet.Config
	// MapRegion is a normalized world rectangle.
	MapRegion = maplet.Region
	// Completion is one auto-suggest entry.
	Completion = suggest.Completion
	// ReplayConfig parameterizes an evaluation replay.
	ReplayConfig = replay.Config
	// ReplayResult is a replay outcome.
	ReplayResult = replay.Result
	// Fleet is the sharded multi-user serving layer.
	Fleet = fleet.Fleet
	// FleetConfig parameterizes a fleet.
	FleetConfig = fleet.Config
	// FleetRequest is one search interaction to serve.
	FleetRequest = fleet.Request
	// FleetResponse describes how a fleet request was served.
	FleetResponse = fleet.Response
	// FleetStats is a fleet-wide counter snapshot.
	FleetStats = fleet.Stats
	// FleetBatchOptions configure cloud-miss coalescing into shared
	// radio sessions.
	FleetBatchOptions = fleet.BatchOptions
	// FleetBatchStats summarize miss-coalescing activity.
	FleetBatchStats = fleet.BatchStats
	// FaultOptions configure the deterministic connectivity-fault model
	// (outage windows, per-attempt loss, transient engine errors).
	FaultOptions = faults.Options
	// FaultWindow is one absolute outage interval in model time.
	FaultWindow = faults.Window
	// RetryPolicy governs retrying of faulted cloud misses.
	RetryPolicy = faults.RetryPolicy
	// HedgePolicy configures hedged cloud misses against replicated
	// backends (FleetConfig.Replicas): clone factor, per-clone launch
	// delay and the concurrent-dispatch cap.
	HedgePolicy = faults.HedgePolicy
	// HedgedPlan is one hedged miss's precomputed attempt ladders across
	// replicas, including the winning dispatch and the waste charged to
	// the losers.
	HedgedPlan = faults.HedgedPlan
	// FleetBreakerOptions configure the fleet's per-shard circuit
	// breaker (wall-clock retry pacing only).
	FleetBreakerOptions = fleet.BreakerOptions
	// Placement maps users to fleet shards (FleetConfig.Placement);
	// implementations are NewModuloPlacement and NewRingPlacement.
	Placement = placement.Placement
	// FleetResizeOptions tune a live Fleet.ResizeWith call.
	FleetResizeOptions = fleet.ResizeOptions
	// FleetResizeStats report one live resize's migration work.
	FleetResizeStats = fleet.ResizeStats
	// FleetMigrationStats are a fleet's cumulative migration counters.
	FleetMigrationStats = fleet.MigrationStats
	// FleetShardLoad is one shard's occupancy snapshot.
	FleetShardLoad = fleet.ShardLoad
	// RadioParams are the link parameters of a radio technology.
	RadioParams = radio.Params
	// LoadCollector aggregates fleet responses into latency histograms.
	LoadCollector = loadgen.Collector
	// LoadReport is the machine-readable result of one load phase.
	LoadReport = loadgen.Report
	// OpenLoadConfig parameterizes an open-loop (Poisson) load run.
	OpenLoadConfig = loadgen.OpenConfig
	// ClosedLoadConfig parameterizes a closed-loop (K users) load run.
	ClosedLoadConfig = loadgen.ClosedConfig
	// ArrivalKind selects an open-loop arrival process: poisson,
	// diurnal (a day-curve warp of the same arrivals) or peruser
	// (per-user renewal processes weighted by workload class).
	ArrivalKind = modeltime.Kind
	// Pacer converts modeled response time into the wall think-time a
	// paced closed-loop user takes between requests.
	Pacer = modeltime.Pacer
	// ModelTimeline is the fleet-wide model timeline (high-water mark
	// over every model clock).
	ModelTimeline = modeltime.Timeline
	// EnergySnapshot totals the fleet's energy ledger in joules
	// (Fleet.EnergyStats).
	EnergySnapshot = energy.Snapshot
	// ShardPower is the per-shard idle/active power model feeding the
	// fleet's energy ledger (FleetConfig.ShardPower).
	ShardPower = energy.ShardPower
	// AutoscaleConfig parameterizes the occupancy-driven shard
	// autoscaler (OpenLoadConfig.Autoscale).
	AutoscaleConfig = autoscale.Config
	// LoadTimelineEvent is one scheduled model-time operation an open
	// load run replays (OpenLoadConfig.Events).
	LoadTimelineEvent = loadgen.TimelineEvent
	// EnergyReport is the load report's energy-ledger block.
	EnergyReport = loadgen.EnergyReport
	// AutoscaleReport is the load report's autoscale block.
	AutoscaleReport = loadgen.AutoscaleReport
)

// Re-exported arrival kinds.
const (
	ArrivalsPoisson = modeltime.Poisson
	ArrivalsDiurnal = modeltime.Diurnal
	ArrivalsPerUser = modeltime.PerUser
)

// ParseArrivalKind parses the -arrivals command-line syntax
// ("poisson", "diurnal" or "peruser").
func ParseArrivalKind(s string) (ArrivalKind, error) { return modeltime.ParseKind(s) }

// RadioTech selects a radio technology for a simulated phone.
type RadioTech int

const (
	// Radio3G is a 3G (UMTS/HSPA) link.
	Radio3G RadioTech = iota
	// RadioEDGE is an EDGE (2.75G) link.
	RadioEDGE
	// RadioWiFi is an 802.11g link.
	RadioWiFi
)

func (r RadioTech) params() radio.Params {
	switch r {
	case RadioEDGE:
		return radio.EDGE()
	case RadioWiFi:
		return radio.WiFi()
	default:
		return radio.ThreeG()
	}
}

// String implements fmt.Stringer.
func (r RadioTech) String() string { return r.params().Name }

// Params returns the link parameters of the technology, for use in
// configurations that take RadioParams (e.g. FleetConfig.Radio).
func (r RadioTech) Params() RadioParams { return r.params() }

// SimConfig parameterizes a simulated ecosystem.
type SimConfig struct {
	// Seed drives all randomness deterministically.
	Seed int64
	// Users is the community population size. Zero selects the
	// calibrated default (workload.CommunityUsers); small populations
	// over-concentrate the popular head.
	Users int
	// UniverseConfig overrides the corpus dimensions when non-nil.
	UniverseConfig *engine.Config
}

// Simulation bundles the cloud-side state: corpus, engine, and the
// user population that generates search logs.
type Simulation struct {
	Universe  *Universe
	Engine    *Engine
	Generator *Generator
}

// NewSimulation builds a simulated ecosystem.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	ucfg := engine.DefaultConfig()
	if cfg.UniverseConfig != nil {
		ucfg = *cfg.UniverseConfig
	}
	u, err := engine.NewUniverse(ucfg)
	if err != nil {
		return nil, err
	}
	users := cfg.Users
	if users == 0 {
		users = workload.CommunityUsers
	}
	g, err := workload.New(workload.DefaultConfig(u, users, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return &Simulation{Universe: u, Engine: engine.New(u), Generator: g}, nil
}

// MonthLog generates the full community search log for a month.
func (s *Simulation) MonthLog(month int) Log { return s.Generator.MonthLog(month) }

// CommunityContent extracts the community cache content from a month's
// logs: the most popular (query, result) pairs covering the given share
// of cumulative volume (the paper evaluates at 0.55).
func (s *Simulation) CommunityContent(month int, share float64) (Content, error) {
	tbl := searchlog.ExtractTriplets(s.Generator.MonthLog(month).Entries)
	n, err := cachegen.SelectByShare(tbl, share)
	if err != nil {
		return Content{}, err
	}
	return cachegen.Generate(tbl, s.Universe, n), nil
}

// CommunityContentFrom is CommunityContent computed from only the first
// `users` profiles' month logs. Materializing a full month log scales
// with the population (a million-user month is tens of millions of
// entries), while the popular head the community cache captures is
// already stable over a much smaller sample — per-user streams are
// seeded by (seed, user, month), so the sampled users' entries are
// identical at any population size. users <= 0, or at least the whole
// population, selects the exact full-log extraction.
func (s *Simulation) CommunityContentFrom(month int, share float64, users int) (Content, error) {
	profiles := s.Generator.Users()
	if users <= 0 || users >= len(profiles) {
		return s.CommunityContent(month, share)
	}
	var entries []searchlog.Entry
	for _, up := range profiles[:users] {
		entries = append(entries, s.Generator.UserStream(up, month)...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].At < entries[j].At })
	tbl := searchlog.ExtractTriplets(entries)
	n, err := cachegen.SelectByShare(tbl, share)
	if err != nil {
		return Content{}, err
	}
	return cachegen.Generate(tbl, s.Universe, n), nil
}

// NewPhone creates a simulated smartphone with the given radio.
func (s *Simulation) NewPhone(tech RadioTech) *Device {
	return device.New(device.Config{}, tech.params(), flashsim.Params{})
}

// NewPocketSearch builds a PocketSearch cloudlet on a phone, preloaded
// with community content. Provisioning time and energy are discarded
// (it happens overnight while charging).
func (s *Simulation) NewPocketSearch(dev *Device, content Content, opts Options) (*PocketSearch, error) {
	if dev == nil {
		return nil, fmt.Errorf("pocketcloudlets: device is required")
	}
	cache, err := pocketsearch.Build(dev, s.Engine, content, opts)
	if err != nil {
		return nil, err
	}
	dev.Reset()
	return cache, nil
}

// PairStrings materializes the (query, clicked URL) strings of a log
// entry so it can be replayed against a PocketSearch cache.
func (s *Simulation) PairStrings(p searchlog.PairID) (query, url string) {
	return s.Universe.QueryText(s.Universe.QueryOf(p)),
		s.Universe.ResultURL(s.Universe.ResultOf(p))
}

// SyncWithServer runs one Section 5.4 update cycle for a cache: the
// phone's hash table is merged on the server with fresh content and
// the result is applied as patches. It returns the update transferred.
func (s *Simulation) SyncWithServer(cache *PocketSearch, fresh Content) (Update, error) {
	upd, err := updater.BuildUpdate(cache.Table(), fresh, s.Universe, updater.DefaultPolicy())
	if err != nil {
		return Update{}, err
	}
	if _, err := updater.Apply(cache, upd); err != nil {
		return Update{}, err
	}
	return upd, nil
}

// Replay runs the Figure 17 style evaluation over this simulation.
func (s *Simulation) Replay(cfg ReplayConfig) (ReplayResult, error) {
	if cfg.Gen == nil {
		cfg.Gen = s.Generator
	}
	return replay.Run(cfg)
}

// NewFleet builds a sharded serving fleet over this simulation's
// engine, with every shard's community replica preloaded from content.
func (s *Simulation) NewFleet(content Content, cfg FleetConfig) (*Fleet, error) {
	cfg.Engine = s.Engine
	cfg.Content = content
	return fleet.New(cfg)
}

// NewLoadCollector creates an empty load-test collector; install it as
// FleetConfig.Observer before running a load phase.
func NewLoadCollector() *LoadCollector { return loadgen.NewCollector() }

// NewModuloPlacement is the legacy static user→shard mapping
// (uid-hash mod shards) — the fleet's default when FleetConfig leaves
// Placement nil. A resize under modulo re-homes almost every user.
func NewModuloPlacement(shards int) (Placement, error) {
	return placement.NewModulo(shards)
}

// NewRingPlacement is consistent-hash routing over virtual nodes:
// resizing from n shards re-homes only ~1/n of users, which keeps a
// live Fleet.Resize cheap. vnodes <= 0 selects the default (64).
func NewRingPlacement(shards, vnodes int) (Placement, error) {
	return placement.NewRing(shards, vnodes)
}

// ParseOutageSpec parses the -outage command-line syntax into fault
// options fields: "6s/30s" is a periodic duty cycle (down the first 6s
// of every 30s of model time), "10s-20s,40s-45s" absolute windows.
func ParseOutageSpec(spec string) (every, down time.Duration, windows []FaultWindow, err error) {
	return faults.ParseOutageSpec(spec)
}

// RunOpenLoad replays workload queries against a fleet as an open-loop
// arrival process (Poisson by default; OpenLoadConfig.Arrivals selects
// diurnal or per-user) and reports latency percentiles, throughput,
// hit- and shed-rates and the offered-rate curve.
func (s *Simulation) RunOpenLoad(f *Fleet, col *LoadCollector, cfg OpenLoadConfig) (LoadReport, error) {
	return loadgen.RunOpen(f, col, s.Generator, cfg)
}

// RunClosedLoad drives a fleet with K concurrent simulated users, each
// waiting for every response before issuing their next query.
func (s *Simulation) RunClosedLoad(f *Fleet, col *LoadCollector, cfg ClosedLoadConfig) (LoadReport, error) {
	return loadgen.RunClosed(f, col, s.Generator, cfg)
}

// NewPocketAds builds the advertisement cloudlet on a phone,
// provisioned with creatives for the same popular queries the search
// cache holds.
func (s *Simulation) NewPocketAds(dev *Device, content Content) (*PocketAds, error) {
	if dev == nil {
		return nil, fmt.Errorf("pocketcloudlets: device is required")
	}
	ads, err := adlet.New(dev, adlet.NewInventory(s.Universe))
	if err != nil {
		return nil, err
	}
	ads.Provision(content, s.Universe)
	dev.Reset()
	return ads, nil
}

// NewPocketWeb builds a PocketWeb web-content cloudlet on a phone,
// browsing the simulation's corpus as the origin web.
func (s *Simulation) NewPocketWeb(dev *Device, cfg WebConfig) (*PocketWeb, error) {
	if dev == nil {
		return nil, fmt.Errorf("pocketcloudlets: device is required")
	}
	return pocketweb.New(dev, pocketweb.NewEngineSource(s.Universe), cfg)
}

// NewPocketMaps builds the mapping cloudlet on a phone.
func NewPocketMaps(dev *Device, cfg MapConfig) (*PocketMaps, error) {
	if dev == nil {
		return nil, fmt.Errorf("pocketcloudlets: device is required")
	}
	return maplet.New(dev, cfg)
}

// NewManager creates a multi-cloudlet manager with the given flash
// budget for all cloudlets together.
func NewManager(totalFlash int64) (*Manager, error) {
	return cloudletos.NewManager(totalFlash)
}

// NewKVCloudlet creates a generic cloudlet on a device's flash store.
func NewKVCloudlet(name string, dev *Device) (*KVCloudlet, error) {
	if dev == nil {
		return nil, fmt.Errorf("pocketcloudlets: device is required")
	}
	return cloudletos.NewKVCloudlet(name, dev.Store())
}

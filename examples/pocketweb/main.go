// Pocketweb runs PocketSearch and PocketWeb together — the scenario of
// the paper's footnote 2: the search cloudlet serves the result list
// instantly, and the web-content cloudlet serves the clicked page,
// keeping the user's frequently revisited dynamic pages (news, quotes)
// fresh with small real-time radio refreshes instead of full refetches.
package main

import (
	"fmt"
	"log"
	"time"

	"pocketcloudlets"
)

func main() {
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 9, Users: 2000})
	if err != nil {
		log.Fatal(err)
	}
	content, err := sim.CommunityContent(0, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	phone := sim.NewPhone(pocketcloudlets.Radio3G)
	ps, err := sim.NewPocketSearch(phone, content, pocketcloudlets.Options{})
	if err != nil {
		log.Fatal(err)
	}
	web, err := sim.NewPocketWeb(phone, pocketcloudlets.WebConfig{
		FlashBudget:     64 << 20,
		RealTimeTopK:    20,
		RefreshInterval: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Provision PocketWeb overnight with the community's popular
	// landing pages (what the paper calls pushing content to the
	// phone while charging).
	var popular []string
	for i, tr := range content.Triplets {
		if i >= 300 {
			break
		}
		_, url := sim.PairStrings(tr.Pair)
		popular = append(popular, url)
	}
	web.Provision(popular, 0)
	phone.Reset()
	fmt.Printf("provisioned %d pages (%.1f MB of flash)\n", web.Len(), float64(web.UsedBytes())/1e6)

	// A month of one user's search-then-browse sessions.
	user := sim.Generator.Users()[3]
	stream := sim.Generator.UserStream(user, 1)
	var searchTime, browseTime time.Duration
	for _, e := range stream {
		q, url := sim.PairStrings(e.Pair)
		sOut, err := ps.Query(q, url)
		if err != nil {
			log.Fatal(err)
		}
		searchTime += sOut.ResponseTime()
		wOut, err := web.Visit(url, e.At)
		if err != nil {
			log.Fatal(err)
		}
		browseTime += wOut.Latency
	}

	sStats, wStats := ps.Stats(), web.Stats()
	fmt.Printf("\n%d search-and-browse sessions by user %d (%s class):\n",
		sStats.Queries, user.ID, user.Class)
	fmt.Printf("  PocketSearch: %.0f%% hits, mean result time %v\n",
		100*sStats.HitRate(), (searchTime / time.Duration(sStats.Queries)).Round(time.Millisecond))
	fmt.Printf("  PocketWeb:    %.0f%% fresh hits (%d stale refetches, %d misses), mean page time %v\n",
		100*wStats.HitRate(), wStats.StaleHits, wStats.Misses,
		(browseTime / time.Duration(wStats.Visits)).Round(time.Millisecond))
	fmt.Printf("  real-time refreshes: %d pages, %.1f MB over the radio (vs refetching everything)\n",
		wStats.RealTimeRefreshes, float64(wStats.RefreshBytes)/1e6)
	fmt.Printf("  device total: %.0f J, %d radio wakeups\n",
		phone.TotalEnergy(), phone.Link().Wakeups())
}

// Quickstart: build a simulated mobile ecosystem, provision a phone
// with a PocketSearch cache from community search logs, and serve a
// few queries — comparing a local cache hit against the same query
// over the 3G radio.
package main

import (
	"fmt"
	"log"

	"pocketcloudlets"
)

func main() {
	// 1. A simulated ecosystem: corpus, cloud search engine, and a
	// population of mobile users whose logs feed the community cache.
	// (The default population is the calibrated 20000 users; smaller
	// is faster and fine for a demo.)
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 42, Users: 3000})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Extract the community cache content from last month's logs:
	// the most popular (query, clicked result) pairs covering 55% of
	// the community's query volume — the paper's saturation point.
	content, err := sim.CommunityContent(0, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community cache: %d pairs covering %.0f%% of volume\n",
		len(content.Triplets), 100*content.CoveredShare)

	// 3. A phone with a 3G radio, provisioned overnight.
	phone := sim.NewPhone(pocketcloudlets.Radio3G)
	ps, err := sim.NewPocketSearch(phone, content, pocketcloudlets.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. A popular query hits the cache: no radio, ~378 ms.
	query, clickURL := sim.PairStrings(content.Triplets[0].Pair)
	hit, err := ps.Query(query, clickURL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q -> %s\n", query, clickURL)
	fmt.Printf("  served from cache: %v, response time %v, radio wakeups %d\n",
		hit.Hit, hit.ResponseTime().Round(0), phone.Link().Wakeups())

	// 5. An obscure query misses: the radio wakes up and the full
	// result page downloads over 3G.
	tailQuery, tailURL := sim.PairStrings(sim.Universe.NonNavPair(sim.Universe.Config().NonNavPairs - 1))
	miss, err := ps.Query(tailQuery, tailURL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q -> %s\n", tailQuery, tailURL)
	fmt.Printf("  served from cache: %v, response time %v (network %v), radio wakeups %d\n",
		miss.Hit, miss.ResponseTime().Round(0), miss.Network.Round(0), phone.Link().Wakeups())

	ratio := float64(miss.ResponseTime()) / float64(hit.ResponseTime())
	fmt.Printf("\nlocal serving is %.0fx faster — the paper's headline 16x\n", ratio)

	// 6. The personalization component cached the miss: repeating it
	// now hits locally.
	again, err := ps.Query(tailQuery, tailURL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeated obscure query: served from cache: %v in %v\n",
		again.Hit, again.ResponseTime().Round(0))
}

// Offlinesync walks through the Section 5.4 cache management cycle
// (Figure 14): the phone uses its cache for a while, then — overnight,
// while charging — uploads its hash table to the server, which prunes
// never-accessed pairs, merges the freshly extracted popular set
// (conflicts take the maximum score), and ships back a new hash table
// plus database patches.
package main

import (
	"fmt"
	"log"

	"pocketcloudlets"
)

func main() {
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 11, Users: 2000})
	if err != nil {
		log.Fatal(err)
	}

	// Day 0: the phone is provisioned with last month's popular set.
	content, err := sim.CommunityContent(0, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	phone := sim.NewPhone(pocketcloudlets.RadioWiFi)
	ps, err := sim.NewPocketSearch(phone, content, pocketcloudlets.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned: %d pairs (%d hash table refs)\n",
		len(content.Triplets), ps.Table().NumRefs())

	// The user searches during the day: some popular pairs (marking
	// them accessed) and some personal ones (expanding the cache).
	user := sim.Generator.Users()[10]
	stream := sim.Generator.UserStream(user, 1)
	for _, e := range stream {
		q, url := sim.PairStrings(e.Pair)
		if _, err := ps.Query(q, url); err != nil {
			log.Fatal(err)
		}
	}
	st := ps.Stats()
	fmt.Printf("a day of use: %d queries, %.0f%% hits, %d personal pairs added\n",
		st.Queries, 100*st.HitRate(), st.Expansions)

	// Nightly sync: the server's fresh popular set comes from the
	// newest logs (month 1 here).
	fresh, err := sim.CommunityContent(1, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	refsBefore := ps.Table().NumRefs()
	upd, err := sim.SyncWithServer(ps, fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnightly sync with the server:\n")
	fmt.Printf("  transfer: %.0f KB hash table + %.2f MB records = %.2f MB (paper budget: ~1.5 MB per update)\n",
		float64(upd.TableBytes)/1000, float64(upd.RecordBytes)/1e6, float64(upd.TotalBytes())/1e6)
	fmt.Printf("  hash table: %d refs -> %d refs (never-accessed community pairs pruned, fresh set merged)\n",
		refsBefore, ps.Table().NumRefs())

	// The user's own repeats still hit after the sync: accessed pairs
	// survive pruning, and conflicts kept the higher personal score.
	hits := 0
	for _, e := range stream[:10] {
		q, url := sim.PairStrings(e.Pair)
		out, err := ps.Query(q, url)
		if err != nil {
			log.Fatal(err)
		}
		if out.Hit {
			hits++
		}
	}
	fmt.Printf("  first 10 of yesterday's queries replayed: %d/10 still hit\n", hits)
}

// Multicloudlet demonstrates the Section 7 operating-system support:
// three pocket cloudlets (search, ads, maps) share one device under a
// storage manager with quotas, mediated cross-cloudlet access control,
// and coordinated eviction of related items.
package main

import (
	"errors"
	"fmt"
	"log"

	"pocketcloudlets"
	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/hash64"
)

func main() {
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 3, Users: 1500})
	if err != nil {
		log.Fatal(err)
	}
	phone := sim.NewPhone(pocketcloudlets.Radio3G)

	// The manager owns 10% of the device NVM for all cloudlets — the
	// paper's Table 2 assumption; the rest stays with the user.
	mgr, err := pocketcloudlets.NewManager(64 << 20)
	if err != nil {
		log.Fatal(err)
	}

	newCloudlet := func(name string, quota int64) *pocketcloudlets.KVCloudlet {
		c, err := pocketcloudlets.NewKVCloudlet(name, phone)
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.Register(c, pocketcloudlets.Quota{FlashBytes: quota}); err != nil {
			log.Fatal(err)
		}
		return c
	}
	search := newCloudlet("search", 24<<20)
	ads := newCloudlet("ads", 20<<20)
	maps := newCloudlet("maps", 20<<20)

	// Populate the three cloudlets with related content: for each
	// popular query, a search record, a matching ad banner, and the
	// map tile of the top business result — all tagged with the query
	// hash so the manager knows they belong together.
	content, err := sim.CommunityContent(0, 0.55)
	if err != nil {
		log.Fatal(err)
	}
	limit := 400
	if len(content.Triplets) < limit {
		limit = len(content.Triplets)
	}
	for i, tr := range content.Triplets[:limit] {
		q, _ := sim.PairStrings(tr.Pair)
		rel := hash64.Sum(q)
		utility := content.Scores[tr.Pair] * (1 - float64(i)/float64(limit))
		rec := sim.Universe.Result(sim.Universe.ResultOf(tr.Pair)).Record()
		search.Put(rel, rel, utility, rec)
		ads.Put(rel, rel, 0.5+utility/2, make([]byte, 5000))  // 5 KB ad banner
		maps.Put(rel, rel, 0.5+utility/2, make([]byte, 5000)) // 5 KB map tile
	}
	for _, name := range mgr.Cloudlets() {
		used, _ := mgr.Usage(name)
		quota, _ := mgr.Quota(name)
		fmt.Printf("%-7s %6.2f MB used of %d MB quota\n", name, float64(used)/1e6, quota.FlashBytes>>20)
	}

	// Access control: ads may read search's cached records (same
	// vendor), but maps may not see the user's search history.
	if err := mgr.Grant("search", "ads"); err != nil {
		log.Fatal(err)
	}
	key := hash64.Sum(sim.Universe.QueryText(sim.Universe.QueryOf(content.Triplets[0].Pair)))
	if _, err := mgr.ReadFrom("ads", "search", key); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nads read a search record through the manager (granted)")
	_, err = mgr.ReadFrom("maps", "search", key)
	var perm *cloudletos.ErrPermission
	if errors.As(err, &perm) {
		fmt.Printf("maps was denied: %v\n", perm)
	}

	// Coordinated eviction: reclaim 500 KB. Because the manager
	// evicts related items together, a dropped query takes its ad and
	// map tile with it instead of stranding them.
	before := ads.Len()
	freed := mgr.Reclaim(500_000, true)
	fmt.Printf("\nreclaimed %.0f KB coordinated: search %d, ads %d (-%d), maps %d items remain\n",
		float64(freed)/1000, search.Len(), ads.Len(), before-ads.Len(), maps.Len())

	// Every surviving ad still has its query: nothing stranded.
	stranded := 0
	alive := map[uint64]bool{}
	for _, it := range search.Items() {
		alive[it.Relation] = true
	}
	for _, it := range ads.Items() {
		if !alive[it.Relation] {
			stranded++
		}
	}
	fmt.Printf("stranded ads after coordinated eviction: %d\n", stranded)
}

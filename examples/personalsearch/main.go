// Personalsearch replays one synthetic user's month of mobile search
// against a PocketSearch cache and reports what the paper's Section 6
// measures for an individual: hit rate, mean response time, energy,
// and how the personalization component learns the user's repeats.
package main

import (
	"fmt"
	"log"
	"time"

	"pocketcloudlets"
)

func main() {
	sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{Seed: 7, Users: 3000})
	if err != nil {
		log.Fatal(err)
	}
	content, err := sim.CommunityContent(0, 0.55)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a medium-volume user and replay their next month.
	var user pocketcloudlets.UserProfile
	for _, u := range sim.Generator.Users() {
		if u.Class.String() == "medium" {
			user = u
			break
		}
	}
	stream := sim.Generator.UserStream(user, 1)
	fmt.Printf("user %d (%s class, repeat propensity %.2f): %d queries this month\n",
		user.ID, user.Class, user.RepeatPropensity, len(stream))

	// Phone A serves everything through PocketSearch; phone B has no
	// cache and pays the 3G radio for every query.
	phoneA := sim.NewPhone(pocketcloudlets.Radio3G)
	ps, err := sim.NewPocketSearch(phoneA, content, pocketcloudlets.Options{})
	if err != nil {
		log.Fatal(err)
	}
	phoneB := sim.NewPhone(pocketcloudlets.Radio3G)
	noCache, err := sim.NewPocketSearch(phoneB, pocketcloudlets.Content{},
		pocketcloudlets.Options{DisablePersonalization: true})
	if err != nil {
		log.Fatal(err)
	}

	var withTime, withoutTime time.Duration
	weekHits, weekTotal := [5]int{}, [5]int{}
	for _, e := range stream {
		q, url := sim.PairStrings(e.Pair)
		out, err := ps.Query(q, url)
		if err != nil {
			log.Fatal(err)
		}
		withTime += out.ResponseTime()
		w := int(e.At / (7 * 24 * time.Hour))
		if w > 4 {
			w = 4
		}
		weekTotal[w]++
		if out.Hit {
			weekHits[w]++
		}
		raw, err := noCache.Query(q, url)
		if err != nil {
			log.Fatal(err)
		}
		withoutTime += raw.ResponseTime()
	}

	stats := ps.Stats()
	n := time.Duration(stats.Queries)
	fmt.Printf("\nwith PocketSearch:    %.0f%% hit rate, mean response %v, %.0f J, %d radio wakeups\n",
		100*stats.HitRate(), (withTime / n).Round(time.Millisecond), phoneA.TotalEnergy(), phoneA.Link().Wakeups())
	fmt.Printf("without (3G always):  mean response %v, %.0f J, %d radio wakeups\n",
		(withoutTime / n).Round(time.Millisecond), phoneB.TotalEnergy(), phoneB.Link().Wakeups())
	fmt.Printf("savings: %.1fx faster, %.1fx less energy\n",
		float64(withoutTime)/float64(withTime), phoneB.TotalEnergy()/phoneA.TotalEnergy())

	fmt.Println("\nhit rate by week (personalization warming up on top of the community cache):")
	for w := 0; w < 5; w++ {
		if weekTotal[w] == 0 {
			continue
		}
		fmt.Printf("  week %d: %3.0f%%  (%d/%d)\n", w+1,
			100*float64(weekHits[w])/float64(weekTotal[w]), weekHits[w], weekTotal[w])
	}
	fmt.Printf("\npersonalization added %d pairs the community cache lacked\n", stats.Expansions)
}

package pocketcloudlets_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each driving the same code path as `cmd/experiments`.
// The shared lab (population, logs, replays) is built once per process;
// the first iteration of a log-driven benchmark therefore includes the
// experiment's real computation while later iterations measure the
// cached read — both are reported by -benchtime=1x runs and the
// experiment wall times printed by cmd/experiments.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pocketcloudlets"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/experiments"
	"pocketcloudlets/internal/loadgen"
	"pocketcloudlets/internal/searchlog"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// lab returns the shared benchmark lab: a reduced population (8000
// users, 20 replayed users per class) that keeps the full harness
// under a few minutes while preserving every experiment's shape.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(1, 8000, 20) })
	return benchLab
}

func benchSink(b *testing.B, t experiments.Table) {
	if len(t.Columns) == 0 {
		b.Fatal("experiment produced an empty table")
	}
}

func BenchmarkTable1NVMTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table1().Table())
	}
}

func BenchmarkFig2MemoryEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig2().Table())
	}
}

func BenchmarkTable2ItemCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table2().Table())
	}
}

func BenchmarkFig4aQueryCDF(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig4a(l).Table())
	}
}

func BenchmarkFig4bResultCDF(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig4b(l).Table())
	}
}

func BenchmarkFig5Repeatability(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig5(l).Table())
	}
}

func BenchmarkTable3Triplets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table3(l, 10).Table())
	}
}

func BenchmarkFig7PairVolume(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig7(l).Table())
	}
}

func BenchmarkFig8MemoryOverhead(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig8(l).Table())
	}
}

func BenchmarkFig11HashFootprint(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig11(l).Table())
	}
}

func BenchmarkFig12FileSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig12().Table())
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table4(l).Table())
	}
}

func BenchmarkFig15aLatency(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig15(l).TableTime())
	}
}

func BenchmarkFig15bEnergy(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig15(l).TableEnergy())
	}
}

func BenchmarkFig16PowerTrace(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig16(l).Table())
	}
}

func BenchmarkTable5Navigation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table5(l).Table())
	}
}

func BenchmarkTable6UserClasses(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table6(l).Table())
	}
}

func BenchmarkFig17HitRate(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig17(l).Table())
	}
}

func BenchmarkFig18Warmup(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig18(l).Table())
	}
}

func BenchmarkFig19HitBreakdown(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig19(l).Table())
	}
}

func BenchmarkDailyUpdates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.DailyUpdates(l).Table())
	}
}

func BenchmarkAblationSharedResults(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationSharedResults(l).Table())
	}
}

func BenchmarkAblationDecay(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationDecay(l).Table())
	}
}

func BenchmarkAblationThreeTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationThreeTier().Table())
	}
}

func BenchmarkAblationCoordinatedEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationCoordinatedEviction().Table())
	}
}

// --- Fleet serving-path benchmarks ---

// fleetRig is the shared fleet benchmark fixture: a small warmed-up
// fleet plus per-user request tapes. Like the lab, it is built once
// per process; the warm-up replays every tape once so steady-state
// iterations measure the hit-dominated serving path.
type fleetRig struct {
	f     *pocketcloudlets.Fleet
	tapes [][]pocketcloudlets.FleetRequest
}

var (
	fleetRigOnce sync.Once
	fleetRigLab  *fleetRig
	fleetRigErr  error
)

// benchUniverseConfig is the shared fleet-benchmark universe.
func benchUniverseConfig() *engine.Config {
	return &engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	}
}

func fleetBench(b *testing.B) *fleetRig {
	b.Helper()
	fleetRigOnce.Do(func() {
		sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
			Seed: 1, Users: 512, UniverseConfig: benchUniverseConfig(),
		})
		if err != nil {
			fleetRigErr = err
			return
		}
		content, err := sim.CommunityContent(0, 0.55)
		if err != nil {
			fleetRigErr = err
			return
		}
		f, err := sim.NewFleet(content, pocketcloudlets.FleetConfig{
			Shards: 4, QueueDepth: 8192,
		})
		if err != nil {
			fleetRigErr = err
			return
		}
		rig := &fleetRig{f: f}
		for _, up := range sim.Generator.Users()[:32] {
			tape := loadgen.Tape(sim.Generator, up, 1)
			for _, req := range tape {
				if resp := f.Do(req); resp.Err != nil {
					fleetRigErr = resp.Err
					return
				}
			}
			rig.tapes = append(rig.tapes, tape)
		}
		fleetRigLab = rig
	})
	if fleetRigErr != nil {
		b.Fatal(fleetRigErr)
	}
	return fleetRigLab
}

// BenchmarkFleetServeDo measures the closed-loop serving path: one
// client blocking on each response.
func BenchmarkFleetServeDo(b *testing.B) {
	rig := fleetBench(b)
	tape := rig.tapes[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := rig.f.Do(tape[i%len(tape)]); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkFleetServeParallel measures contended throughput: many
// client goroutines, each replaying a different user's tape.
func BenchmarkFleetServeParallel(b *testing.B) {
	rig := fleetBench(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tape := rig.tapes[int(next.Add(1))%len(rig.tapes)]
		i := 0
		for pb.Next() {
			if resp := rig.f.Do(tape[i%len(tape)]); resp.Err != nil {
				b.Error(resp.Err)
				return
			}
			i++
		}
	})
}

// BenchmarkFleetServeBatchedParallel measures contended throughput with
// miss coalescing on: the same parallel tape replay as
// BenchmarkFleetServeParallel, but cloud misses park with a dispatcher
// and share batched radio sessions. The delta against the unbatched
// benchmark is the serving-path cost of the coalescing machinery.
func BenchmarkFleetServeBatchedParallel(b *testing.B) {
	rig := fleetBatchBench(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tape := rig.tapes[int(next.Add(1))%len(rig.tapes)]
		i := 0
		for pb.Next() {
			if resp := rig.f.Do(tape[i%len(tape)]); resp.Err != nil {
				b.Error(resp.Err)
				return
			}
			i++
		}
	})
}

var (
	fleetBatchRigOnce sync.Once
	fleetBatchRigLab  *fleetRig
	fleetBatchRigErr  error
)

// fleetBatchBench is fleetBench with miss coalescing enabled (its own
// fixture: batching state must not leak into the unbatched benchmarks).
func fleetBatchBench(b *testing.B) *fleetRig {
	b.Helper()
	fleetBatchRigOnce.Do(func() {
		base := fleetBench(b)
		sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
			Seed: 1, Users: 512, UniverseConfig: benchUniverseConfig(),
		})
		if err != nil {
			fleetBatchRigErr = err
			return
		}
		content, err := sim.CommunityContent(0, 0.55)
		if err != nil {
			fleetBatchRigErr = err
			return
		}
		f, err := sim.NewFleet(content, pocketcloudlets.FleetConfig{
			Shards: 4, QueueDepth: 8192,
			Batch: pocketcloudlets.FleetBatchOptions{Enabled: true},
		})
		if err != nil {
			fleetBatchRigErr = err
			return
		}
		rig := &fleetRig{f: f, tapes: base.tapes}
		for _, tape := range rig.tapes {
			for _, req := range tape {
				if resp := f.Do(req); resp.Err != nil {
					fleetBatchRigErr = resp.Err
					return
				}
			}
		}
		fleetBatchRigLab = rig
	})
	if fleetBatchRigErr != nil {
		b.Fatal(fleetBatchRigErr)
	}
	return fleetBatchRigLab
}

// --- Million-user fleet benchmark ---

const fleet100kUsers = 100_000

type fleet100kRig struct {
	f    *pocketcloudlets.Fleet
	reqs []pocketcloudlets.FleetRequest
}

var (
	fleet100kOnce sync.Once
	fleet100kLab  *fleet100kRig
	fleet100kErr  error
)

// fleet100kBench builds a fleet with 100,000 resident users, each
// warmed with one pinned request so that every steady-state replay is
// a personal-tier hit. The user IDs cover [0, 100k) contiguously, so
// the whole population lives in the dense slot arena. Requests reuse
// query/click pairs from one generated tape; only the user ID varies.
func fleet100kBench(b *testing.B) *fleet100kRig {
	b.Helper()
	fleet100kOnce.Do(func() {
		sim, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
			Seed: 1, Users: 512, UniverseConfig: benchUniverseConfig(),
		})
		if err != nil {
			fleet100kErr = err
			return
		}
		content, err := sim.CommunityContent(0, 0.55)
		if err != nil {
			fleet100kErr = err
			return
		}
		cfg := pocketcloudlets.FleetConfig{
			Shards: 8, QueueDepth: 8192,
			Population: fleet100kUsers,
		}
		cfg.Options.DiscardResults = true
		f, err := sim.NewFleet(content, cfg)
		if err != nil {
			fleet100kErr = err
			return
		}
		base := loadgen.Tape(sim.Generator, sim.Generator.Users()[0], 1)
		if len(base) == 0 {
			fleet100kErr = errEmptyTape
			return
		}
		reqs := make([]pocketcloudlets.FleetRequest, fleet100kUsers)
		for uid := range reqs {
			r := base[uid%len(base)]
			r.User = searchlog.UserID(uid)
			reqs[uid] = r
		}
		for i := range reqs {
			if resp := f.Do(reqs[i]); resp.Err != nil {
				fleet100kErr = resp.Err
				return
			}
		}
		fleet100kLab = &fleet100kRig{f: f, reqs: reqs}
	})
	if fleet100kErr != nil {
		b.Fatal(fleet100kErr)
	}
	return fleet100kLab
}

var errEmptyTape = errors.New("bench: empty warm-up tape")

// BenchmarkFleetServe100kUsers measures the steady-state closed-loop
// serve path across 100,000 warmed users: every iteration is a
// personal-tier hit on a different user, walking the dense slot arena
// shard by shard. The unfaulted hit path is allocation-free — the
// reply channel is pooled, lookups reuse per-cache scratch buffers,
// and result payloads are skipped under Options.DiscardResults — so
// this reports 0 allocs/op at steady state.
func BenchmarkFleetServe100kUsers(b *testing.B) {
	rig := fleet100kBench(b)
	// Prime with one full hit pass: a user's first post-warm-up hit
	// pays one-time costs (per-cache lookup scratch, timeline entries,
	// the pooled reply channel) that are not steady-state serving work.
	for i := range rig.reqs {
		if resp := rig.f.Do(rig.reqs[i]); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := rig.f.Do(rig.reqs[i%len(rig.reqs)]); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkFleetSubmit measures the open-loop submission path
// (enqueue plus shed decision; the drain falls outside the timer).
func BenchmarkFleetSubmit(b *testing.B) {
	rig := fleetBench(b)
	tape := rig.tapes[1%len(rig.tapes)]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.f.Submit(tape[i%len(tape)])
	}
	b.StopTimer()
	rig.f.Drain()
}

package pocketcloudlets_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each driving the same code path as `cmd/experiments`.
// The shared lab (population, logs, replays) is built once per process;
// the first iteration of a log-driven benchmark therefore includes the
// experiment's real computation while later iterations measure the
// cached read — both are reported by -benchtime=1x runs and the
// experiment wall times printed by cmd/experiments.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"pocketcloudlets/internal/experiments"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// lab returns the shared benchmark lab: a reduced population (8000
// users, 20 replayed users per class) that keeps the full harness
// under a few minutes while preserving every experiment's shape.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(1, 8000, 20) })
	return benchLab
}

func benchSink(b *testing.B, t experiments.Table) {
	if len(t.Columns) == 0 {
		b.Fatal("experiment produced an empty table")
	}
}

func BenchmarkTable1NVMTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table1().Table())
	}
}

func BenchmarkFig2MemoryEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig2().Table())
	}
}

func BenchmarkTable2ItemCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table2().Table())
	}
}

func BenchmarkFig4aQueryCDF(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig4a(l).Table())
	}
}

func BenchmarkFig4bResultCDF(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig4b(l).Table())
	}
}

func BenchmarkFig5Repeatability(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig5(l).Table())
	}
}

func BenchmarkTable3Triplets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table3(l, 10).Table())
	}
}

func BenchmarkFig7PairVolume(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig7(l).Table())
	}
}

func BenchmarkFig8MemoryOverhead(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig8(l).Table())
	}
}

func BenchmarkFig11HashFootprint(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig11(l).Table())
	}
}

func BenchmarkFig12FileSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig12().Table())
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table4(l).Table())
	}
}

func BenchmarkFig15aLatency(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig15(l).TableTime())
	}
}

func BenchmarkFig15bEnergy(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig15(l).TableEnergy())
	}
}

func BenchmarkFig16PowerTrace(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig16(l).Table())
	}
}

func BenchmarkTable5Navigation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table5(l).Table())
	}
}

func BenchmarkTable6UserClasses(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Table6(l).Table())
	}
}

func BenchmarkFig17HitRate(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig17(l).Table())
	}
}

func BenchmarkFig18Warmup(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig18(l).Table())
	}
}

func BenchmarkFig19HitBreakdown(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.Fig19(l).Table())
	}
}

func BenchmarkDailyUpdates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.DailyUpdates(l).Table())
	}
}

func BenchmarkAblationSharedResults(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationSharedResults(l).Table())
	}
}

func BenchmarkAblationDecay(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationDecay(l).Table())
	}
}

func BenchmarkAblationThreeTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationThreeTier().Table())
	}
}

func BenchmarkAblationCoordinatedEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink(b, experiments.AblationCoordinatedEviction().Table())
	}
}

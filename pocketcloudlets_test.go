package pocketcloudlets_test

import (
	"sync"
	"testing"

	"pocketcloudlets"
	"pocketcloudlets/internal/engine"
)

// The facade tests drive the library exactly as the examples do, on a
// reduced simulation shared across tests.
var (
	simOnce sync.Once
	sim     *pocketcloudlets.Simulation
	content pocketcloudlets.Content
)

func testSim(t *testing.T) (*pocketcloudlets.Simulation, pocketcloudlets.Content) {
	t.Helper()
	simOnce.Do(func() {
		ucfg := engine.Config{
			NavPairs:    8000,
			NonNavPairs: 40000,
			NonNavSegments: []engine.Segment{
				{Queries: 50, ResultsPerQuery: 6},
				{Queries: 200, ResultsPerQuery: 3},
				{Queries: 2000, ResultsPerQuery: 2},
			},
		}
		s, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
			Seed: 5, Users: 500, UniverseConfig: &ucfg,
		})
		if err != nil {
			panic(err)
		}
		c, err := s.CommunityContent(0, 0.55)
		if err != nil {
			panic(err)
		}
		sim, content = s, c
	})
	return sim, content
}

func TestSimulationEndToEnd(t *testing.T) {
	s, c := testSim(t)
	phone := s.NewPhone(pocketcloudlets.Radio3G)
	ps, err := s.NewPocketSearch(phone, c, pocketcloudlets.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A popular pair hits locally.
	q, url := s.PairStrings(c.Triplets[0].Pair)
	out, err := ps.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hit {
		t.Fatal("most popular pair should hit")
	}
	if phone.Link().Wakeups() != 0 {
		t.Error("hit should not wake the radio")
	}

	// Auto-suggest returns results without cost.
	if res := ps.Suggest(q); len(res) == 0 {
		t.Error("Suggest should return cached results")
	}
	if res := ps.Suggest("definitely not cached"); res != nil {
		t.Error("Suggest on unknown query should be empty")
	}

	// An uncached tail pair misses over the radio then hits on repeat.
	tail := s.Universe.NonNavPair(39999)
	tq, turl := s.PairStrings(tail)
	miss, err := ps.Query(tq, turl)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hit || miss.Network == 0 {
		t.Error("tail pair should miss over the radio")
	}
	again, _ := ps.Query(tq, turl)
	if !again.Hit {
		t.Error("personalization should cache the missed pair")
	}
}

func TestSyncWithServer(t *testing.T) {
	s, c := testSim(t)
	phone := s.NewPhone(pocketcloudlets.RadioWiFi)
	ps, err := s.NewPocketSearch(phone, c, pocketcloudlets.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Touch one pair so it survives the sync.
	q, url := s.PairStrings(c.Triplets[0].Pair)
	if _, err := ps.Query(q, url); err != nil {
		t.Fatal(err)
	}
	upd, err := s.SyncWithServer(ps, c)
	if err != nil {
		t.Fatal(err)
	}
	if upd.TotalBytes() <= 0 {
		t.Error("update should transfer bytes")
	}
	out, err := ps.Query(q, url)
	if err != nil || !out.Hit {
		t.Errorf("touched pair should still hit after sync: %v %v", out.Hit, err)
	}
}

func TestReplayThroughFacade(t *testing.T) {
	s, c := testSim(t)
	res, err := s.Replay(pocketcloudlets.ReplayConfig{
		Content:       c,
		UsersPerClass: 5,
		Month:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.Average(); avg < 0.3 || avg > 0.95 {
		t.Errorf("replay average hit rate %.3f implausible", avg)
	}
}

func TestManagerThroughFacade(t *testing.T) {
	s, _ := testSim(t)
	phone := s.NewPhone(pocketcloudlets.Radio3G)
	m, err := pocketcloudlets.NewManager(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	ads, err := pocketcloudlets.NewKVCloudlet("ads", phone)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(ads, pocketcloudlets.Quota{FlashBytes: 1 << 19}); err != nil {
		t.Fatal(err)
	}
	ads.Put(1, 0, 0.5, []byte("banner"))
	if usage, err := m.Usage("ads"); err != nil || usage <= 0 {
		t.Errorf("usage = %d, %v", usage, err)
	}
	if _, err := pocketcloudlets.NewKVCloudlet("x", nil); err == nil {
		t.Error("nil device should fail")
	}
}

func TestPocketAdsThroughFacade(t *testing.T) {
	s, c := testSim(t)
	phone := s.NewPhone(pocketcloudlets.Radio3G)
	ps, err := s.NewPocketSearch(phone, c, pocketcloudlets.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ads, err := s.NewPocketAds(phone, c)
	if err != nil {
		t.Fatal(err)
	}
	if ads.Len() == 0 {
		t.Fatal("provisioned ad cache is empty")
	}
	// Find a cached, monetized query and serve it end to end.
	for _, tr := range c.Triplets {
		q, url := s.PairStrings(tr.Pair)
		out, err := ps.Query(q, url)
		if err != nil {
			t.Fatal(err)
		}
		if served := ads.Serve(q, out.Hit); out.Hit && len(served) > 0 {
			if ads.PendingImpressions() == 0 {
				t.Error("impressions should be logged")
			}
			return
		}
	}
	t.Error("no monetized cached query found")
}

func TestPocketWebThroughFacade(t *testing.T) {
	s, c := testSim(t)
	phone := s.NewPhone(pocketcloudlets.Radio3G)
	web, err := s.NewPocketWeb(phone, pocketcloudlets.WebConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, url := s.PairStrings(c.Triplets[0].Pair)
	web.Provision([]string{url}, 0)
	out, err := web.Visit(url, 0)
	if err != nil || !out.Hit {
		t.Errorf("provisioned page should hit: %+v, %v", out, err)
	}
	if _, err := s.NewPocketWeb(nil, pocketcloudlets.WebConfig{}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := s.NewPocketAds(nil, c); err == nil {
		t.Error("nil device should fail")
	}
}

func TestRadioTechStrings(t *testing.T) {
	if pocketcloudlets.Radio3G.String() != "3G" ||
		pocketcloudlets.RadioEDGE.String() != "Edge" ||
		pocketcloudlets.RadioWiFi.String() != "802.11g" {
		t.Error("RadioTech strings mismatch")
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := pocketcloudlets.NewSimulation(pocketcloudlets.SimConfig{
		UniverseConfig: &engine.Config{NavPairs: 7, NonNavPairs: 10},
	}); err == nil {
		t.Error("invalid universe config should fail")
	}
	s, _ := testSim(t)
	if _, err := s.NewPocketSearch(nil, pocketcloudlets.Content{}, pocketcloudlets.Options{}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := s.CommunityContent(0, 0); err == nil {
		t.Error("invalid share should fail")
	}
}

package maplet

import (
	"testing"
	"testing/quick"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/radio"
)

func newCache(t testing.TB, cfg Config) (*Cache, *device.Device) {
	t.Helper()
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev
}

// testState is a region about the size of a US state: ~3% of the world
// square in each dimension.
var testState = Region{MinX: 0.50, MinY: 0.30, MaxX: 0.53, MaxY: 0.33}

func TestNewValidation(t *testing.T) {
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := New(dev, Config{FlashBudget: 100, RoamBudget: 1000}); err == nil {
		t.Error("roam > flash should fail")
	}
	if _, err := New(dev, Config{BaseZoom: 10, MaxZoom: 5}); err == nil {
		t.Error("inverted zoom range should fail")
	}
}

func TestTileAtAndValid(t *testing.T) {
	k := TileAt(0.5, 0.5, 1)
	if k != (TileKey{Z: 1, X: 1, Y: 1}) {
		t.Errorf("TileAt(0.5,0.5,1) = %+v", k)
	}
	if got := TileAt(0.999999, 0.0, 3); got.X != 7 || got.Y != 0 {
		t.Errorf("edge tile = %+v", got)
	}
	if got := TileAt(1.5, -0.5, 2); !got.Valid() {
		t.Errorf("clamped tile should be valid: %+v", got)
	}
	if (TileKey{Z: -1}).Valid() || (TileKey{Z: 2, X: 4, Y: 0}).Valid() {
		t.Error("invalid keys accepted")
	}
}

func TestTileAtProperty(t *testing.T) {
	f := func(xr, yr uint16, zr uint8) bool {
		x := float64(xr) / 65536
		y := float64(yr) / 65536
		z := int(zr % 18)
		return TileAt(x, y, z).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionTiles(t *testing.T) {
	r := Region{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}
	if got := r.TileCount(2); got != 4 {
		t.Errorf("quarter world at z=2 = %d tiles, want 4", got)
	}
	tiles := r.Tiles(2)
	if len(tiles) != 4 {
		t.Fatalf("Tiles = %v", tiles)
	}
	for _, k := range tiles {
		if !k.Valid() || k.X > 1 || k.Y > 1 {
			t.Errorf("tile %+v outside the region", k)
		}
	}
	empty := Region{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}
	if empty.TileCount(5) != 0 {
		t.Error("empty region should have no tiles")
	}
}

// TestTable2StateArithmetic checks the paper's sizing claim: ~5.5M
// 300x300 m tiles cover a state-sized area, and they fit in 25.6 GB
// plus room to spare at 5 KB per tile.
func TestTable2StateArithmetic(t *testing.T) {
	// A large US state: ~400,000 km^2 (e.g. California).
	tiles := StateRegionTiles(400_000)
	if tiles < 4_000_000 || tiles > 6_000_000 {
		t.Errorf("state tiles = %d, want ~4.4M (paper: 5.5M covers a whole state)", tiles)
	}
	if tiles*TileBytes > 25_600_000_000 {
		t.Errorf("state pyramid %d bytes exceeds the 25.6 GB budget", tiles*TileBytes)
	}
}

func TestProvisionHomeDepthScalesWithBudget(t *testing.T) {
	small, _ := newCache(t, Config{FlashBudget: 2 << 30, RoamBudget: 16 << 20})
	big, _ := newCache(t, Config{}) // 25.6 GB default
	zs, err := small.ProvisionHome(testState)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := big.ProvisionHome(testState)
	if err != nil {
		t.Fatal(err)
	}
	if zb <= zs {
		t.Errorf("bigger budget should afford deeper zoom: %d vs %d", zb, zs)
	}
	if big.ProvisionedBytes() > big.cfg.FlashBudget {
		t.Error("provisioned bytes exceed the budget")
	}
	if _, err := small.ProvisionHome(Region{}); err == nil {
		t.Error("empty region should fail")
	}
}

func TestInRegionViewportsServeLocally(t *testing.T) {
	c, dev := newCache(t, Config{})
	if _, err := c.ProvisionHome(testState); err != nil {
		t.Fatal(err)
	}
	dev.Reset()
	// Browse around the home region at provisioned depths.
	cx, cy := 0.515, 0.315
	for z := c.cfg.BaseZoom; z <= c.HomeZoom(); z++ {
		local, total, err := c.Viewport(cx, cy, z, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		if local != total {
			t.Errorf("z=%d: %d/%d tiles local, want all", z, local, total)
		}
	}
	if dev.Link().Wakeups() != 0 {
		t.Error("in-region browsing must not use the radio")
	}
	if c.Stats().HitRate() != 1 {
		t.Errorf("hit rate = %.2f, want 1", c.Stats().HitRate())
	}
}

func TestOutOfRegionTripUsesRadioThenWarms(t *testing.T) {
	c, dev := newCache(t, Config{})
	if _, err := c.ProvisionHome(testState); err != nil {
		t.Fatal(err)
	}
	dev.Reset()
	z := c.HomeZoom()
	// A trip far from home at deep zoom: misses over the radio.
	local, total, err := c.Viewport(0.9, 0.9, z, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if local != 0 || total != 9 {
		t.Errorf("first remote view: %d/%d local, want 0/9", local, total)
	}
	if dev.Link().Wakeups() == 0 {
		t.Error("remote view should use the radio")
	}
	if c.Stats().RadioTiles != 9 {
		t.Errorf("radio tiles = %d, want 9", c.Stats().RadioTiles)
	}
	// The same view again is now warm from the roaming LRU.
	local, total, _ = c.Viewport(0.9, 0.9, z, 3, 3)
	if local != total {
		t.Errorf("second remote view: %d/%d local, want all", local, total)
	}
}

func TestRoamLRUBounded(t *testing.T) {
	// A tiny roam budget of 4 tiles.
	c, _ := newCache(t, Config{FlashBudget: 1 << 30, RoamBudget: 4 * TileBytes})
	if _, err := c.ProvisionHome(testState); err != nil {
		t.Fatal(err)
	}
	z := c.HomeZoom()
	// Visit many distinct remote tiles one by one.
	for i := 0; i < 20; i++ {
		x := 0.9 + float64(i)*0.001
		if _, _, err := c.Viewport(x, 0.9, z, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.RoamTiles() > 4 {
		t.Errorf("roam LRU holds %d tiles, budget is 4", c.RoamTiles())
	}
}

func TestBaseZoomCoversWorld(t *testing.T) {
	c, dev := newCache(t, Config{})
	if _, err := c.ProvisionHome(testState); err != nil {
		t.Fatal(err)
	}
	dev.Reset()
	// Anywhere in the world at the base zoom is provisioned.
	local, total, err := c.Viewport(0.05, 0.95, c.cfg.BaseZoom, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if local != total {
		t.Errorf("base-zoom view: %d/%d local, want all", local, total)
	}
}

func TestViewportValidation(t *testing.T) {
	c, _ := newCache(t, Config{})
	if _, _, err := c.Viewport(0.5, 0.5, -1, 3, 3); err == nil {
		t.Error("negative zoom should fail")
	}
	if _, _, err := c.Viewport(0.5, 0.5, 5, 0, 3); err == nil {
		t.Error("empty viewport should fail")
	}
}

// Package maplet implements the mapping pocket cloudlet the paper
// sizes in Table 2 and Section 7: map tiles cached on the device so
// that map browsing within the user's home region never touches the
// radio.
//
// Table 2's arithmetic is built in: at ~5 KB per 128x128-pixel tile,
// the 25.6 GB cloudlet budget holds ~5 million tiles, and "assuming
// that each map tile covers 300x300 meters of actual earth surface,
// 5.5 million map tiles can cover the area of a whole state".
//
// The cloudlet provisions a tile pyramid over the user's region —
// coarse zoom levels worldwide are cheap, the deepest levels are
// restricted to the region the budget affords — and serves viewport
// requests from flash. Tiles outside the provisioned region are
// fetched over the radio and kept under an LRU budget, so a trip out
// of state warms a temporary working set.
package maplet

import (
	"fmt"
	"math"

	"pocketcloudlets/internal/device"
)

// TileBytes is the footprint of one map tile (Table 2: 5 KB).
const TileBytes = 5 * 1000

// TileKey identifies one tile of the pyramid: zoom level Z with a
// 2^Z x 2^Z grid over the normalized world square.
type TileKey struct {
	Z    int
	X, Y int
}

// Valid reports whether the key addresses a real tile.
func (k TileKey) Valid() bool {
	if k.Z < 0 || k.Z > 30 {
		return false
	}
	n := 1 << uint(k.Z)
	return k.X >= 0 && k.X < n && k.Y >= 0 && k.Y < n
}

// TileAt returns the tile containing the normalized world point (x, y)
// at a zoom level.
func TileAt(x, y float64, z int) TileKey {
	n := float64(int(1) << uint(z))
	tx := int(x * n)
	ty := int(y * n)
	if tx >= int(n) {
		tx = int(n) - 1
	}
	if ty >= int(n) {
		ty = int(n) - 1
	}
	if tx < 0 {
		tx = 0
	}
	if ty < 0 {
		ty = 0
	}
	return TileKey{Z: z, X: tx, Y: ty}
}

// Region is a rectangle in normalized world coordinates [0, 1).
type Region struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the point is inside the region.
func (r Region) Contains(x, y float64) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// TileCount returns how many tiles cover the region at a zoom level.
func (r Region) TileCount(z int) int64 {
	n := float64(int(1) << uint(z))
	x0, x1 := int(r.MinX*n), int(math.Ceil(r.MaxX*n))
	y0, y1 := int(r.MinY*n), int(math.Ceil(r.MaxY*n))
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return int64(x1-x0) * int64(y1-y0)
}

// Tiles enumerates the region's tiles at a zoom level.
func (r Region) Tiles(z int) []TileKey {
	n := float64(int(1) << uint(z))
	x0, x1 := int(r.MinX*n), int(math.Ceil(r.MaxX*n))
	y0, y1 := int(r.MinY*n), int(math.Ceil(r.MaxY*n))
	out := make([]TileKey, 0, (x1-x0)*(y1-y0))
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			out = append(out, TileKey{Z: z, X: x, Y: y})
		}
	}
	return out
}

// Config parameterizes a map cloudlet.
type Config struct {
	// FlashBudget bounds the provisioned pyramid plus the roaming LRU.
	FlashBudget int64
	// RoamBudget is the slice of the budget reserved for tiles fetched
	// outside the provisioned region.
	RoamBudget int64
	// BaseZoom is provisioned worldwide (coarse overview maps).
	BaseZoom int
	// MaxZoom caps the pyramid depth.
	MaxZoom int
}

// DefaultConfig sizes the cloudlet at the paper's Table 2 budget.
func DefaultConfig() Config {
	return Config{
		FlashBudget: 25_600_000_000, // 25.6 GB
		RoamBudget:  64 << 20,
		BaseZoom:    7,
		MaxZoom:     17,
	}
}

// Stats counts serving activity.
type Stats struct {
	TileRequests int
	TileHits     int
	RadioTiles   int
	RadioBytes   int64
}

// HitRate is the fraction of tile requests served from flash.
func (s Stats) HitRate() float64 {
	if s.TileRequests == 0 {
		return 0
	}
	return float64(s.TileHits) / float64(s.TileRequests)
}

// Cache is the on-device map cloudlet.
type Cache struct {
	dev *device.Device
	cfg Config
	// home is the provisioned region and the deepest zoom the budget
	// affords for it.
	home     Region
	homeZoom int
	// provisionedBytes is the pyramid's flash usage.
	provisionedBytes int64
	// roam holds out-of-region tiles under an LRU budget.
	roam      map[TileKey]int64 // key -> last-use tick
	roamBytes int64
	tick      int64
	stats     Stats
}

// New creates a map cloudlet. Zero config fields take defaults.
func New(dev *device.Device, cfg Config) (*Cache, error) {
	if dev == nil {
		return nil, fmt.Errorf("maplet: device is required")
	}
	def := DefaultConfig()
	if cfg.FlashBudget <= 0 {
		cfg.FlashBudget = def.FlashBudget
	}
	if cfg.RoamBudget <= 0 {
		cfg.RoamBudget = def.RoamBudget
	}
	if cfg.RoamBudget > cfg.FlashBudget {
		return nil, fmt.Errorf("maplet: roam budget %d exceeds flash budget %d", cfg.RoamBudget, cfg.FlashBudget)
	}
	if cfg.BaseZoom <= 0 {
		cfg.BaseZoom = def.BaseZoom
	}
	if cfg.MaxZoom <= 0 {
		cfg.MaxZoom = def.MaxZoom
	}
	if cfg.MaxZoom < cfg.BaseZoom {
		return nil, fmt.Errorf("maplet: invalid zoom range [%d, %d]", cfg.BaseZoom, cfg.MaxZoom)
	}
	return &Cache{dev: dev, cfg: cfg, roam: make(map[TileKey]int64)}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// HomeZoom reports the deepest provisioned zoom level of the home
// region (zero before provisioning).
func (c *Cache) HomeZoom() int { return c.homeZoom }

// ProvisionedBytes reports the pyramid's flash usage.
func (c *Cache) ProvisionedBytes() int64 { return c.provisionedBytes }

// ProvisionHome installs the tile pyramid for the user's region: every
// zoom from BaseZoom down to the deepest level that fits in the budget
// (minus the roaming reserve). It models the overnight bulk transfer —
// flash write time only — and returns the chosen deepest zoom.
func (c *Cache) ProvisionHome(home Region) (int, error) {
	if home.MaxX <= home.MinX || home.MaxY <= home.MinY {
		return 0, fmt.Errorf("maplet: empty region %+v", home)
	}
	budget := c.cfg.FlashBudget - c.cfg.RoamBudget
	var bytes int64
	zoom := c.cfg.BaseZoom - 1
	for z := c.cfg.BaseZoom; z <= c.cfg.MaxZoom; z++ {
		var level int64
		if z == c.cfg.BaseZoom {
			// The base zoom is provisioned worldwide.
			n := int64(1) << uint(z)
			level = n * n * TileBytes
		} else {
			level = home.TileCount(z) * TileBytes
		}
		if bytes+level > budget {
			break
		}
		bytes += level
		zoom = z
	}
	if zoom < c.cfg.BaseZoom {
		return 0, fmt.Errorf("maplet: budget %d cannot hold even the base zoom", budget)
	}
	c.home = home
	c.homeZoom = zoom
	c.provisionedBytes = bytes
	// The bulk write happens while charging; charge flash time only.
	c.dev.FlashBusy(c.dev.Flash().WriteCost(int(min64(bytes, 1<<30))))
	return zoom, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// provisioned reports whether a tile is part of the home pyramid.
func (c *Cache) provisioned(k TileKey) bool {
	if c.homeZoom < c.cfg.BaseZoom {
		return false
	}
	if k.Z == c.cfg.BaseZoom {
		return true // base zoom covers the world
	}
	if k.Z < c.cfg.BaseZoom || k.Z > c.homeZoom {
		return false
	}
	// The tile is provisioned when its cell intersects the home region.
	n := float64(int(1) << uint(k.Z))
	x0, x1 := float64(k.X)/n, float64(k.X+1)/n
	y0, y1 := float64(k.Y)/n, float64(k.Y+1)/n
	return x0 < c.home.MaxX && x1 > c.home.MinX && y0 < c.home.MaxY && y1 > c.home.MinY
}

// Viewport serves a w x h tile view centered on the normalized point
// (x, y) at a zoom level. Cached tiles are read from flash; the rest
// are fetched in one radio request and admitted to the roaming LRU.
// It returns how many of the view's tiles were served locally.
func (c *Cache) Viewport(x, y float64, z, w, h int) (local, total int, err error) {
	if z < 0 || z > c.cfg.MaxZoom || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("maplet: bad viewport z=%d w=%d h=%d", z, w, h)
	}
	c.tick++
	center := TileAt(x, y, z)
	n := 1 << uint(z)
	var missing int
	for dy := -h / 2; dy <= (h-1)/2; dy++ {
		for dx := -w / 2; dx <= (w-1)/2; dx++ {
			k := TileKey{Z: z, X: wrap(center.X+dx, n), Y: wrap(center.Y+dy, n)}
			total++
			c.stats.TileRequests++
			if c.provisioned(k) {
				c.stats.TileHits++
				local++
				c.dev.FlashBusy(c.dev.Flash().ReadCost(TileBytes))
				continue
			}
			if _, ok := c.roam[k]; ok {
				c.roam[k] = c.tick
				c.stats.TileHits++
				local++
				c.dev.FlashBusy(c.dev.Flash().ReadCost(TileBytes))
				continue
			}
			missing++
			c.admitRoam(k)
		}
	}
	if missing > 0 {
		// One request fetches all missing tiles of the view.
		c.dev.NetworkRequest(400, missing*TileBytes)
		c.stats.RadioTiles += missing
		c.stats.RadioBytes += int64(missing) * TileBytes
	}
	return local, total, nil
}

func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// admitRoam inserts a fetched tile into the roaming LRU.
func (c *Cache) admitRoam(k TileKey) {
	for c.roamBytes+TileBytes > c.cfg.RoamBudget && len(c.roam) > 0 {
		var victim TileKey
		var oldest int64
		first := true
		for rk, used := range c.roam {
			if first || used < oldest || (used == oldest && less(rk, victim)) {
				victim, oldest, first = rk, used, false
			}
		}
		delete(c.roam, victim)
		c.roamBytes -= TileBytes
	}
	if c.roamBytes+TileBytes <= c.cfg.RoamBudget {
		c.roam[k] = c.tick
		c.roamBytes += TileBytes
		c.dev.FlashBusy(c.dev.Flash().WriteCost(TileBytes))
	}
}

func less(a, b TileKey) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// RoamTiles reports the roaming LRU's current size in tiles.
func (c *Cache) RoamTiles() int { return len(c.roam) }

// StateRegionTiles is the Table 2 cross-check: the number of 300x300 m
// tiles needed to cover an area of the given square kilometres.
func StateRegionTiles(areaKm2 float64) int64 {
	const tileAreaKm2 = 0.3 * 0.3
	return int64(math.Ceil(areaKm2 / tileAreaKm2))
}

// Package replay implements the Section 6.2 evaluation harness: it
// replays per-user query streams from one month against a PocketSearch
// cache built from the preceding month's community logs, and measures
// hit rates per user class under the full, community-only and
// personalization-only configurations (Figures 17-19), by week
// (Figure 18), and with daily cache updates (Section 6.2.2).
package replay

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/updater"
	"pocketcloudlets/internal/workload"
)

// Mode selects the cache configuration of Figure 17.
type Mode int

const (
	// Full uses both the community preload and personalization.
	Full Mode = iota
	// CommunityOnly preloads the community content but never expands
	// or re-ranks.
	CommunityOnly
	// PersonalizationOnly starts empty and relies on repeats.
	PersonalizationOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Full:
		return "full"
	case CommunityOnly:
		return "community-only"
	case PersonalizationOnly:
		return "personalization-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists the three Figure 17 configurations.
func Modes() []Mode { return []Mode{Full, CommunityOnly, PersonalizationOnly} }

// Config parameterizes a replay run.
type Config struct {
	// Gen supplies users and their monthly streams.
	Gen *workload.Generator
	// Content is the community cache content built from the
	// preceding month.
	Content cachegen.Content
	// Mode selects the Figure 17 configuration.
	Mode Mode
	// UsersPerClass caps how many users of each class are replayed
	// (the paper samples 100). Zero means all.
	UsersPerClass int
	// Month is the generator month index to replay (the paper uses
	// the month after the one the cache was built from).
	Month int
	// Weeks is the number of weekly buckets to track (Figure 18).
	// Zero selects 5 (a 30-day month spans 4 full weeks plus spill).
	Weeks int
	// DailyContent, when non-nil, enables the Section 6.2.2 daily
	// update experiment: at each day boundary the cache runs a full
	// Section 5.4 server synchronization against the content for that
	// day. This exercises the complete updater path and suits small
	// populations.
	DailyContent func(day int) cachegen.Content
	// DailyDelta, when non-nil, applies incremental daily updates
	// instead: only the pairs that entered or left the popular set are
	// installed or pruned. This is how the server would ship patches
	// in steady state, and it scales to the full Figure 17 population.
	// Mutually exclusive with DailyContent.
	DailyDelta func(day int) Delta
}

// Delta is one day's incremental community update.
type Delta struct {
	// Add holds the pairs that entered the popular set, with scores.
	Add cachegen.Content
	// Remove lists pairs that left the popular set; they are pruned
	// unless the user has accessed them (Section 5.4's policy).
	Remove []searchlog.PairID
}

// UserOutcome is one replayed user's result.
type UserOutcome struct {
	Profile     workload.UserProfile
	Volume      int
	Hits        int
	NavHits     int
	NonNavHits  int
	WeekVolume  []int
	WeekHits    []int
	RespTimeSum time.Duration
	Energy      float64
}

// NewUserOutcome prepares an outcome accumulator for one user over the
// given number of weekly buckets.
func NewUserOutcome(up workload.UserProfile, weeks int) UserOutcome {
	if weeks <= 0 {
		weeks = 5
	}
	return UserOutcome{
		Profile:    up,
		WeekVolume: make([]int, weeks),
		WeekHits:   make([]int, weeks),
	}
}

// Record accumulates one served query into the outcome: volume, the
// weekly buckets of Figure 18, response time, and the navigational hit
// split of Figure 19. at is the query's offset within its month and
// nav reports whether the pair is navigational. Both the replay
// harness and the fleet's closed-loop load generator account outcomes
// through this method so their hit rates are directly comparable.
func (uo *UserOutcome) Record(at time.Duration, nav bool, out pocketsearch.Outcome) {
	weeks := len(uo.WeekVolume)
	w := int(at / (7 * 24 * time.Hour))
	if w >= weeks {
		w = weeks - 1
	}
	if w < 0 {
		w = 0
	}
	uo.Volume++
	uo.WeekVolume[w]++
	uo.RespTimeSum += out.ResponseTime()
	if out.Hit {
		uo.Hits++
		uo.WeekHits[w]++
		if nav {
			uo.NavHits++
		} else {
			uo.NonNavHits++
		}
	}
}

// HitRate is the user's overall hit rate.
func (u UserOutcome) HitRate() float64 {
	if u.Volume == 0 {
		return 0
	}
	return float64(u.Hits) / float64(u.Volume)
}

// ClassResult aggregates outcomes per user class.
type ClassResult struct {
	Class    workload.Class
	Users    int
	HitRate  float64 // mean of per-user hit rates (the paper averages users)
	NavShare float64 // fraction of hits that are navigational (Figure 19)
	// WeekHitRate[w] is the mean per-user hit rate within week w.
	WeekHitRate []float64
	// CumWeekHitRate[w] is the mean per-user hit rate over weeks 0..w
	// (Figure 18 reports "first week" and "first two weeks").
	CumWeekHitRate []float64
}

// Result is a full replay outcome.
type Result struct {
	Mode    Mode
	Classes []ClassResult
	Users   []UserOutcome
}

// Average returns the mean per-user hit rate across all replayed users
// (the paper's "on average, 65% of the queries ... are cache hits").
func (r Result) Average() float64 {
	if len(r.Users) == 0 {
		return 0
	}
	var sum float64
	for _, u := range r.Users {
		sum += u.HitRate()
	}
	return sum / float64(len(r.Users))
}

// ClassRate returns the mean hit rate of one class.
func (r Result) ClassRate(c workload.Class) float64 {
	for _, cr := range r.Classes {
		if cr.Class == c {
			return cr.HitRate
		}
	}
	return 0
}

// Run executes the replay.
func Run(cfg Config) (Result, error) {
	if cfg.Gen == nil {
		return Result{}, fmt.Errorf("replay: generator is required")
	}
	weeks := cfg.Weeks
	if weeks <= 0 {
		weeks = 5
	}
	res := Result{Mode: cfg.Mode}
	for _, class := range workload.Classes() {
		users := cfg.Gen.UsersOfClass(class)
		if cfg.UsersPerClass > 0 && len(users) > cfg.UsersPerClass {
			users = users[:cfg.UsersPerClass]
		}
		cr := ClassResult{
			Class:          class,
			Users:          len(users),
			WeekHitRate:    make([]float64, weeks),
			CumWeekHitRate: make([]float64, weeks),
		}
		weekRateSum := make([]float64, weeks)
		weekRateN := make([]int, weeks)
		cumRateSum := make([]float64, weeks)
		cumRateN := make([]int, weeks)
		var rateSum, navShareSum float64
		var navShareN int
		for _, up := range users {
			uo, err := replayUser(cfg, up, weeks)
			if err != nil {
				return Result{}, err
			}
			res.Users = append(res.Users, uo)
			rateSum += uo.HitRate()
			if uo.Hits > 0 {
				navShareSum += float64(uo.NavHits) / float64(uo.Hits)
				navShareN++
			}
			cumV, cumH := 0, 0
			for w := 0; w < weeks; w++ {
				if uo.WeekVolume[w] > 0 {
					weekRateSum[w] += float64(uo.WeekHits[w]) / float64(uo.WeekVolume[w])
					weekRateN[w]++
				}
				cumV += uo.WeekVolume[w]
				cumH += uo.WeekHits[w]
				if cumV > 0 {
					cumRateSum[w] += float64(cumH) / float64(cumV)
					cumRateN[w]++
				}
			}
		}
		if len(users) > 0 {
			cr.HitRate = rateSum / float64(len(users))
		}
		if navShareN > 0 {
			cr.NavShare = navShareSum / float64(navShareN)
		}
		for w := 0; w < weeks; w++ {
			if weekRateN[w] > 0 {
				cr.WeekHitRate[w] = weekRateSum[w] / float64(weekRateN[w])
			}
			if cumRateN[w] > 0 {
				cr.CumWeekHitRate[w] = cumRateSum[w] / float64(cumRateN[w])
			}
		}
		res.Classes = append(res.Classes, cr)
	}
	return res, nil
}

// replayUser runs one user's month against a fresh cache instance.
func replayUser(cfg Config, up workload.UserProfile, weeks int) (UserOutcome, error) {
	u := cfg.Gen.Config().Universe
	eng := engine.New(u)
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	opts := pocketsearch.Options{DisablePersonalization: cfg.Mode == CommunityOnly}
	cache, err := pocketsearch.New(dev, eng, opts)
	if err != nil {
		return UserOutcome{}, err
	}
	if cfg.Mode != PersonalizationOnly {
		if err := cache.Preload(cfg.Content); err != nil {
			return UserOutcome{}, err
		}
	}
	dev.Reset()

	uo := NewUserOutcome(up, weeks)
	stream := cfg.Gen.UserStream(up, cfg.Month)
	day := 0
	for _, e := range stream {
		if cfg.DailyContent != nil || cfg.DailyDelta != nil {
			d := int(e.At / (24 * time.Hour))
			for day < d {
				day++
				if cfg.DailyContent != nil {
					upd, err := updater.BuildUpdate(cache.Table(), cfg.DailyContent(day), u, updater.DefaultPolicy())
					if err != nil {
						return UserOutcome{}, err
					}
					if _, err := updater.Apply(cache, upd); err != nil {
						return UserOutcome{}, err
					}
				} else {
					if err := applyDelta(cache, u, cfg.DailyDelta(day)); err != nil {
						return UserOutcome{}, err
					}
				}
			}
		}
		q := u.QueryText(u.QueryOf(e.Pair))
		url := u.ResultURL(u.ResultOf(e.Pair))
		out, err := cache.Query(q, url)
		if err != nil {
			return UserOutcome{}, err
		}
		uo.Record(e.At, u.Navigational(e.Pair), out)
	}
	uo.Energy = dev.TotalEnergy()
	return uo, nil
}

// applyDelta installs one day's incremental community update: new
// popular pairs are preloaded, dropped ones are pruned unless the user
// has accessed them.
func applyDelta(cache *pocketsearch.Cache, u *engine.Universe, d Delta) error {
	for _, p := range d.Remove {
		qh := hash64.Sum(u.QueryText(u.QueryOf(p)))
		rh := hash64.Sum(u.ResultURL(u.ResultOf(p)))
		if cache.Table().Accessed(qh, rh) {
			continue
		}
		cache.RemovePair(qh, rh)
	}
	if len(d.Add.Triplets) > 0 {
		return cache.Preload(d.Add)
	}
	return nil
}

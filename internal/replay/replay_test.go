package replay

import (
	"testing"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// smallGen builds a fast generator: a modest universe and population.
func smallGen(t testing.TB, users int) *workload.Generator {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(u, users, 7)
	cfg.FavNavRanks = 2000
	cfg.FavNonNavRanks = 6000
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallContent(t testing.TB, g *workload.Generator) cachegen.Content {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	n, err := cachegen.SelectByShare(tbl, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	return cachegen.Generate(tbl, g.Config().Universe, n)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing generator should fail")
	}
}

func TestModesString(t *testing.T) {
	names := map[Mode]string{Full: "full", CommunityOnly: "community-only", PersonalizationOnly: "personalization-only"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should stringify")
	}
	if len(Modes()) != 3 {
		t.Error("Modes() should list all three configurations")
	}
}

func TestReplayModes(t *testing.T) {
	g := smallGen(t, 400)
	content := smallContent(t, g)

	results := map[Mode]Result{}
	for _, m := range Modes() {
		r, err := Run(Config{Gen: g, Content: content, Mode: m, UsersPerClass: 12, Month: 1})
		if err != nil {
			t.Fatal(err)
		}
		results[m] = r
	}

	full := results[Full]
	comm := results[CommunityOnly]
	pers := results[PersonalizationOnly]

	// The full cache dominates each component on average (Figure 17).
	if full.Average() < comm.Average() || full.Average() < pers.Average() {
		t.Errorf("full %.3f should dominate community %.3f and personalization %.3f",
			full.Average(), comm.Average(), pers.Average())
	}
	// Every mode serves a substantial fraction locally.
	for m, r := range results {
		if r.Average() < 0.2 || r.Average() > 0.95 {
			t.Errorf("%v average hit rate %.3f implausible", m, r.Average())
		}
	}
	// Personalization-only grows with class volume (more repeats).
	if pers.ClassRate(workload.Extreme) <= pers.ClassRate(workload.Low) {
		t.Errorf("personalization-only should grow with volume: low %.3f extreme %.3f",
			pers.ClassRate(workload.Low), pers.ClassRate(workload.Extreme))
	}
	// Hit volumes are consistent.
	for _, uo := range full.Users {
		if uo.Hits > uo.Volume || uo.NavHits+uo.NonNavHits != uo.Hits {
			t.Fatalf("inconsistent user outcome: %+v", uo)
		}
		sumV, sumH := 0, 0
		for w := range uo.WeekVolume {
			sumV += uo.WeekVolume[w]
			sumH += uo.WeekHits[w]
		}
		if sumV != uo.Volume || sumH != uo.Hits {
			t.Fatalf("weekly buckets inconsistent: %+v", uo)
		}
	}
}

// TestWarmupShape checks the Figure 18 dynamics: in the first week the
// personalization-only cache lags the community-only cache, because it
// needs time to learn the user's repeats.
func TestWarmupShape(t *testing.T) {
	g := smallGen(t, 400)
	content := smallContent(t, g)
	comm, err := Run(Config{Gen: g, Content: content, Mode: CommunityOnly, UsersPerClass: 15, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	pers, err := Run(Config{Gen: g, Content: content, Mode: PersonalizationOnly, UsersPerClass: 15, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Week-1 rates, averaged over classes.
	week1 := func(r Result) float64 {
		var sum float64
		for _, cr := range r.Classes {
			sum += cr.CumWeekHitRate[0]
		}
		return sum / float64(len(r.Classes))
	}
	month := func(r Result) float64 { return r.Average() }
	if pw, cw := week1(pers), week1(comm); pw >= cw {
		t.Errorf("week-1 personalization %.3f should lag community %.3f", pw, cw)
	}
	// Personalization catches up over the month.
	gap1 := week1(comm) - week1(pers)
	gapM := month(comm) - month(pers)
	if gapM >= gap1 {
		t.Errorf("personalization should close the gap: week1 gap %.3f, month gap %.3f", gap1, gapM)
	}
}

// TestDailyUpdates checks the Section 6.2.2 experiment mechanics: daily
// synchronization must not hurt the hit rate, and with identical daily
// content it should roughly match the static cache.
func TestDailyUpdates(t *testing.T) {
	g := smallGen(t, 300)
	content := smallContent(t, g)
	static, err := Run(Config{Gen: g, Content: content, Mode: Full, UsersPerClass: 6, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	daily, err := Run(Config{
		Gen: g, Content: content, Mode: Full, UsersPerClass: 6, Month: 1,
		DailyContent: func(day int) cachegen.Content { return content },
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := daily.Average() - static.Average()
	if diff < -0.05 {
		t.Errorf("daily updates with identical content should not hurt: static %.3f daily %.3f", static.Average(), daily.Average())
	}
}

// TestDailyDeltaInstallsAndPrunes verifies the incremental update path:
// a pair added by a day-1 delta serves the user's later first visit,
// and removed unaccessed pairs stop hitting.
func TestDailyDeltaInstallsAndPrunes(t *testing.T) {
	g := smallGen(t, 200)
	content := smallContent(t, g)

	// Find a user entry after day 1 whose pair is outside the content.
	inContent := map[searchlog.PairID]bool{}
	for _, tr := range content.Triplets {
		inContent[tr.Pair] = true
	}
	var target searchlog.PairID
	var targetUser workload.UserProfile
	found := false
	for _, up := range g.Users() {
		for _, e := range g.UserStream(up, 1) {
			if e.At > 36*time.Hour && !inContent[e.Pair] {
				// Must be the FIRST occurrence in the stream to
				// isolate the delta's effect.
				first := true
				for _, e2 := range g.UserStream(up, 1) {
					if e2.Pair == e.Pair && e2.At < e.At {
						first = false
						break
					}
				}
				if first {
					target, targetUser, found = e.Pair, up, true
					break
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no suitable uncached pair found")
	}

	delta := Delta{}
	delta.Add.Triplets = []searchlog.Triplet{{Pair: target, Volume: 1}}
	delta.Add.Scores = map[searchlog.PairID]float64{target: 1}

	run := func(withDelta bool) int {
		cfg := Config{Gen: g, Content: content, Mode: Full, Month: 1}
		if withDelta {
			cfg.DailyDelta = func(day int) Delta {
				if day == 1 {
					return delta
				}
				return Delta{}
			}
		}
		// Replay just the one user by running the class with a cap and
		// picking their outcome.
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, uo := range res.Users {
			if uo.Profile.ID == targetUser.ID {
				return uo.Hits
			}
		}
		t.Fatal("target user not replayed")
		return 0
	}
	withOut := run(false)
	with := run(true)
	if with <= withOut {
		t.Errorf("delta-installed pair should add hits: %d vs %d", with, withOut)
	}
}

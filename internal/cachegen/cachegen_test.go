package cachegen

import (
	"testing"
	"time"

	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *engine.Universe {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       608,
		NonNavPairs:    3000,
		NonNavSegments: []engine.Segment{{Queries: 50, ResultsPerQuery: 4}, {Queries: 200, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// tableFromVolumes builds a triplet table where pair i of the given
// list has the given volume.
func tableFromVolumes(pairs []searchlog.PairID, volumes []int) searchlog.TripletTable {
	var entries []searchlog.Entry
	for i, p := range pairs {
		for v := 0; v < volumes[i]; v++ {
			entries = append(entries, searchlog.Entry{At: time.Duration(len(entries)), Pair: p})
		}
	}
	return searchlog.ExtractTriplets(entries)
}

func TestGenerate(t *testing.T) {
	u := testUniverse(t)
	tbl := tableFromVolumes(
		[]searchlog.PairID{u.NavPair(0), u.NavPair(1), u.NavPair(6)},
		[]int{10, 5, 5},
	)
	c := Generate(tbl, u, 2)
	if len(c.Triplets) != 2 {
		t.Fatalf("selected %d triplets, want 2", len(c.Triplets))
	}
	if c.CoveredShare != 0.75 {
		t.Errorf("covered share = %g, want 0.75", c.CoveredShare)
	}
	if len(c.Scores) != 2 {
		t.Errorf("scores for %d pairs, want 2", len(c.Scores))
	}
	// Out-of-range n clamps.
	if got := Generate(tbl, u, 99); len(got.Triplets) != 3 || got.CoveredShare != 1 {
		t.Errorf("over-long selection = %+v", got)
	}
	if got := Generate(tbl, u, -1); len(got.Triplets) != 0 {
		t.Errorf("negative selection = %+v", got)
	}
}

func TestSelectBySaturation(t *testing.T) {
	u := testUniverse(t)
	// Volumes 50, 30, 15, 5 of 100: normalized 0.5, 0.3, 0.15, 0.05.
	tbl := tableFromVolumes(
		[]searchlog.PairID{u.NavPair(0), u.NavPair(1), u.NavPair(2), u.NavPair(6)},
		[]int{50, 30, 15, 5},
	)
	n, err := SelectBySaturation(tbl, 0.10)
	if err != nil || n != 3 {
		t.Errorf("SelectBySaturation(0.10) = %d, %v; want 3", n, err)
	}
	n, _ = SelectBySaturation(tbl, 0.001)
	if n != 4 {
		t.Errorf("tiny threshold should select all: %d", n)
	}
	if _, err := SelectBySaturation(tbl, 0); err == nil {
		t.Error("threshold 0 should fail")
	}
	if _, err := SelectBySaturation(tbl, 1); err == nil {
		t.Error("threshold 1 should fail")
	}
}

func TestSelectByShare(t *testing.T) {
	u := testUniverse(t)
	tbl := tableFromVolumes(
		[]searchlog.PairID{u.NavPair(0), u.NavPair(1), u.NavPair(2), u.NavPair(6)},
		[]int{50, 30, 15, 5},
	)
	cases := []struct {
		share float64
		want  int
	}{{0.5, 1}, {0.55, 2}, {0.8, 2}, {0.81, 3}, {1.0, 4}}
	for _, c := range cases {
		n, err := SelectByShare(tbl, c.share)
		if err != nil || n != c.want {
			t.Errorf("SelectByShare(%g) = %d, %v; want %d", c.share, n, err, c.want)
		}
	}
	if _, err := SelectByShare(tbl, 0); err == nil {
		t.Error("share 0 should fail")
	}
	if _, err := SelectByShare(tbl, 1.5); err == nil {
		t.Error("share > 1 should fail")
	}
	empty := searchlog.TripletTable{}
	if n, err := SelectByShare(empty, 0.5); err != nil || n != 0 {
		t.Errorf("empty table selection = %d, %v", n, err)
	}
}

func TestFootprintSharedResultsCountedOnce(t *testing.T) {
	u := testUniverse(t)
	// Nav pairs 0 and 1 share the front-page result.
	tbl := tableFromVolumes(
		[]searchlog.PairID{u.NavPair(0), u.NavPair(1)},
		[]int{10, 8},
	)
	m := MemoryModel{
		SlotsPerEntry: 2,
		RecordBytes:   func(searchlog.ResultID) int { return 500 },
	}
	fp := m.FootprintOf(tbl, u, 2)
	if fp.Results != 1 {
		t.Errorf("unique results = %d, want 1 (shared)", fp.Results)
	}
	if fp.FlashBytes != 500 {
		t.Errorf("flash = %d, want 500 (stored once)", fp.FlashBytes)
	}
	if fp.Queries != 2 {
		t.Errorf("queries = %d, want 2", fp.Queries)
	}
	// Two single-result queries at 2 slots: 2 entries of 48 bytes.
	if fp.DRAMBytes != 96 {
		t.Errorf("dram = %d, want 96", fp.DRAMBytes)
	}
}

func TestFootprintChainsLongClickLists(t *testing.T) {
	u := testUniverse(t)
	// The top non-nav query has 4 results: 2 entries at 2 slots.
	q := u.QueryOf(u.NonNavPair(0))
	pairs := u.PairsForQuery(q)
	vols := make([]int, len(pairs))
	for i := range vols {
		vols[i] = 10 - i
	}
	tbl := tableFromVolumes(pairs, vols)
	m := MemoryModel{SlotsPerEntry: 2, RecordBytes: func(searchlog.ResultID) int { return 500 }}
	fp := m.FootprintOf(tbl, u, len(pairs))
	if fp.DRAMBytes != 2*48 {
		t.Errorf("dram = %d, want 96 (two chained entries)", fp.DRAMBytes)
	}
}

func TestSelectByMemory(t *testing.T) {
	u := testUniverse(t)
	var pairs []searchlog.PairID
	var vols []int
	for i := 0; i < 60; i += 6 { // distinct blocks: distinct queries/results
		pairs = append(pairs, u.NavPair(i))
		vols = append(vols, 100-i)
	}
	tbl := tableFromVolumes(pairs, vols)
	m := MemoryModel{SlotsPerEntry: 2, RecordBytes: func(searchlog.ResultID) int { return 500 }}

	// DRAM limit of 5 entries' worth (240 bytes): selects 5 pairs.
	if n := SelectByMemory(tbl, u, m, 240, 0); n != 5 {
		t.Errorf("dram-limited selection = %d, want 5", n)
	}
	// Flash limit of 1600 bytes: 3 records of 500 fit.
	if n := SelectByMemory(tbl, u, m, 0, 1600); n != 3 {
		t.Errorf("flash-limited selection = %d, want 3", n)
	}
	// Unconstrained: everything.
	if n := SelectByMemory(tbl, u, m, 0, 0); n != len(tbl.Triplets) {
		t.Errorf("unconstrained selection = %d, want %d", n, len(tbl.Triplets))
	}
	// Consistency: the footprint of the selection respects the limit.
	n := SelectByMemory(tbl, u, m, 240, 0)
	if fp := m.FootprintOf(tbl, u, n); fp.DRAMBytes > 240 {
		t.Errorf("selected footprint %d exceeds limit", fp.DRAMBytes)
	}
}

// Package cachegen implements the cache content generation methodology
// of Section 5.1 of the Pocket Cloudlets paper: given the sorted
// (query, search result, volume) triplet table extracted from the
// community's search logs, decide how many of the most popular pairs to
// cache — by a memory threshold or by the cache saturation threshold —
// and assign each cached pair its per-query normalized ranking score.
package cachegen

import (
	"fmt"

	"pocketcloudlets/internal/hashtable"
	"pocketcloudlets/internal/searchlog"
)

// Content is the generated cache content: the selected triplet prefix
// and the ranking score of every selected pair.
type Content struct {
	// Triplets is the selected prefix of the community triplet table,
	// in descending volume order.
	Triplets []searchlog.Triplet
	// Scores maps each selected pair to its ranking score: the pair's
	// volume normalized across all selected results for its query.
	Scores map[searchlog.PairID]float64
	// CoveredShare is the fraction of total community volume the
	// selection covers (the x-axis of Figure 8).
	CoveredShare float64
}

// Generate builds cache content from the first n triplets of the table.
func Generate(tbl searchlog.TripletTable, meta searchlog.PairMeta, n int) Content {
	if n > len(tbl.Triplets) {
		n = len(tbl.Triplets)
	}
	if n < 0 {
		n = 0
	}
	return Content{
		Triplets:     tbl.Triplets[:n:n],
		Scores:       tbl.RankingScores(meta, n),
		CoveredShare: tbl.CumulativeShare(n),
	}
}

// SelectBySaturation returns the number of top triplets selected by the
// cache saturation threshold: pairs are added until one's normalized
// volume (volume / total volume) falls below vth. The paper observes
// this threshold is reached long before memory runs out, at roughly 55%
// cumulative volume.
func SelectBySaturation(tbl searchlog.TripletTable, vth float64) (int, error) {
	if vth <= 0 || vth >= 1 {
		return 0, fmt.Errorf("cachegen: saturation threshold %g outside (0, 1)", vth)
	}
	for i := range tbl.Triplets {
		if tbl.NormalizedVolume(i) < vth {
			return i, nil
		}
	}
	return len(tbl.Triplets), nil
}

// SelectByShare returns the smallest number of top triplets whose
// cumulative volume reaches the given share of total volume — the
// selection the paper uses for its evaluation cache ("the query-search
// result pairs that account for 55% of the cumulative volume").
func SelectByShare(tbl searchlog.TripletTable, share float64) (int, error) {
	if share <= 0 || share > 1 {
		return 0, fmt.Errorf("cachegen: share %g outside (0, 1]", share)
	}
	if tbl.TotalVolume == 0 {
		return 0, nil
	}
	target := share * float64(tbl.TotalVolume)
	var cum float64
	for i, tr := range tbl.Triplets {
		cum += float64(tr.Volume)
		if cum >= target {
			return i + 1, nil
		}
	}
	return len(tbl.Triplets), nil
}

// MemoryModel estimates the device memory a triplet prefix occupies:
// the modeled DRAM footprint of the query hash table and the flash
// footprint of the result database. RecordBytes reports the serialized
// record size of a result.
type MemoryModel struct {
	// SlotsPerEntry is the hash table slot count (2 in the paper).
	SlotsPerEntry int
	// RecordBytes sizes one result's database record (~500 bytes).
	RecordBytes func(searchlog.ResultID) int
	// FlashSlackBytes is the expected allocation slack of the result
	// database (about half an allocation unit per database file).
	FlashSlackBytes int64
}

// Footprint is the modeled memory cost of caching a triplet prefix.
type Footprint struct {
	DRAMBytes  int64
	FlashBytes int64
	Queries    int
	Results    int
}

// FootprintOf computes the modeled footprint of the first n triplets.
// Shared results are counted once in flash (the paper's factor-of-8
// saving over storing a result page per query).
func (m MemoryModel) FootprintOf(tbl searchlog.TripletTable, meta searchlog.PairMeta, n int) Footprint {
	if n > len(tbl.Triplets) {
		n = len(tbl.Triplets)
	}
	resultsPerQuery := make(map[searchlog.QueryID]int)
	seenResults := make(map[searchlog.ResultID]bool)
	var flash int64
	for i := 0; i < n; i++ {
		tr := tbl.Triplets[i]
		resultsPerQuery[meta.QueryOf(tr.Pair)]++
		r := meta.ResultOf(tr.Pair)
		if !seenResults[r] {
			seenResults[r] = true
			flash += int64(m.RecordBytes(r))
		}
	}
	entries := 0
	k := m.SlotsPerEntry
	for _, rc := range resultsPerQuery {
		entries += (rc + k - 1) / k
	}
	return Footprint{
		DRAMBytes:  int64(entries) * int64(hashtable.EntryBytes(k)),
		FlashBytes: flash + m.FlashSlackBytes,
		Queries:    len(resultsPerQuery),
		Results:    len(seenResults),
	}
}

// SelectByMemory returns the largest number of top triplets whose
// modeled footprint stays within both thresholds (either may be zero
// to mean unconstrained) — the paper's memory-threshold policy.
func SelectByMemory(tbl searchlog.TripletTable, meta searchlog.PairMeta, m MemoryModel, dramLimit, flashLimit int64) int {
	resultsPerQuery := make(map[searchlog.QueryID]int)
	seenResults := make(map[searchlog.ResultID]bool)
	var flash int64
	entries := 0
	k := m.SlotsPerEntry
	for i, tr := range tbl.Triplets {
		q := meta.QueryOf(tr.Pair)
		rc := resultsPerQuery[q]
		newEntries := 0
		if rc%k == 0 {
			newEntries = 1
		}
		newFlash := int64(0)
		r := meta.ResultOf(tr.Pair)
		if !seenResults[r] {
			newFlash = int64(m.RecordBytes(r))
		}
		dram := int64(entries+newEntries) * int64(hashtable.EntryBytes(k))
		if dramLimit > 0 && dram > dramLimit {
			return i
		}
		if flashLimit > 0 && flash+newFlash+m.FlashSlackBytes > flashLimit {
			return i
		}
		resultsPerQuery[q] = rc + 1
		entries += newEntries
		seenResults[r] = true
		flash += newFlash
	}
	return len(tbl.Triplets)
}

// Package suggest implements query auto-completion over the cached
// query set — the other half of the prototype GUI of Figure 1, where
// suggestions and results appear in real time as the user types.
//
// The paper (Section 8) describes how production phones did this at
// the time: "for every new letter typed in the search box, a query is
// submitted in the background to the server ... the usual slow mobile
// search experience is taking place". Completing from the on-device
// cached query set instead answers every keystroke locally.
//
// The index is a byte-wise trie over the cached query strings, each
// terminal node carrying the query's best ranking score; completions
// for a prefix are returned best-score first. The trie lives in DRAM
// next to the query hash table.
package suggest

import (
	"sort"
)

// Completion is one suggested query.
type Completion struct {
	Query string
	Score float64
}

// node is one trie node. Children are kept sorted by byte for
// deterministic traversal.
type node struct {
	children []child
	// terminal marks a complete query; score is its ranking score.
	terminal bool
	score    float64
}

type child struct {
	b byte
	n *node
}

func (n *node) get(b byte) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].b >= b })
	if i < len(n.children) && n.children[i].b == b {
		return n.children[i].n
	}
	return nil
}

func (n *node) getOrAdd(b byte) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].b >= b })
	if i < len(n.children) && n.children[i].b == b {
		return n.children[i].n
	}
	nn := &node{}
	n.children = append(n.children, child{})
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child{b: b, n: nn}
	return nn
}

// Index is the auto-completion trie.
type Index struct {
	root    node
	queries int
	nodes   int
}

// New creates an empty index.
func New() *Index { return &Index{} }

// Len reports the number of indexed queries.
func (ix *Index) Len() int { return ix.queries }

// Add indexes a query with its ranking score. Re-adding a query keeps
// the higher score.
func (ix *Index) Add(query string, score float64) {
	if query == "" {
		return
	}
	n := &ix.root
	for i := 0; i < len(query); i++ {
		before := n.get(query[i])
		n = n.getOrAdd(query[i])
		if before == nil {
			ix.nodes++
		}
	}
	if !n.terminal {
		n.terminal = true
		ix.queries++
		n.score = score
	} else if score > n.score {
		n.score = score
	}
}

// Remove unindexes a query. Nodes are left in place (the cache
// rebuilds its index at the nightly sync); it reports whether the
// query was present.
func (ix *Index) Remove(query string) bool {
	n := &ix.root
	for i := 0; i < len(query); i++ {
		if n = n.get(query[i]); n == nil {
			return false
		}
	}
	if !n.terminal {
		return false
	}
	n.terminal = false
	ix.queries--
	return true
}

// Score returns the indexed score of an exact query.
func (ix *Index) Score(query string) (float64, bool) {
	n := &ix.root
	for i := 0; i < len(query); i++ {
		if n = n.get(query[i]); n == nil {
			return 0, false
		}
	}
	if !n.terminal {
		return 0, false
	}
	return n.score, true
}

// Complete returns up to k completions of the prefix, best score
// first (ties alphabetical). An empty prefix completes everything.
func (ix *Index) Complete(prefix string, k int) []Completion {
	if k <= 0 {
		return nil
	}
	n := &ix.root
	for i := 0; i < len(prefix); i++ {
		if n = n.get(prefix[i]); n == nil {
			return nil
		}
	}
	var out []Completion
	var walk func(n *node, buf []byte)
	walk = func(n *node, buf []byte) {
		if n.terminal {
			out = append(out, Completion{Query: prefix + string(buf), Score: n.score})
		}
		for _, c := range n.children {
			walk(c.n, append(buf, c.b))
		}
	}
	walk(n, nil)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query < out[j].Query
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// FootprintBytes models the trie's DRAM cost: one byte label, a score
// and two pointers per node in a compact layout.
func (ix *Index) FootprintBytes() int64 {
	const nodeBytes = 1 + 8 + 2*8
	return int64(ix.nodes) * nodeBytes
}

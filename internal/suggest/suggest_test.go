package suggest

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddComplete(t *testing.T) {
	ix := New()
	ix.Add("youtube", 0.9)
	ix.Add("yotube", 0.2) // the paper's misspelling example
	ix.Add("yahoo", 0.5)
	ix.Add("facebook", 0.8)

	got := ix.Complete("y", 10)
	if len(got) != 3 {
		t.Fatalf("completions = %v, want 3", got)
	}
	if got[0].Query != "youtube" || got[1].Query != "yahoo" || got[2].Query != "yotube" {
		t.Errorf("order = %v, want by score", got)
	}
	if c := ix.Complete("yo", 10); len(c) != 2 {
		t.Errorf("prefix yo = %v", c)
	}
	if c := ix.Complete("z", 10); c != nil {
		t.Errorf("no-match prefix should return nil, got %v", c)
	}
	if c := ix.Complete("youtube", 10); len(c) != 1 || c[0].Query != "youtube" {
		t.Errorf("exact prefix = %v", c)
	}
}

func TestKLimit(t *testing.T) {
	ix := New()
	for _, q := range []string{"aa", "ab", "ac", "ad"} {
		ix.Add(q, 1)
	}
	if got := ix.Complete("a", 2); len(got) != 2 {
		t.Errorf("k=2 returned %d", len(got))
	}
	if got := ix.Complete("a", 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestEmptyPrefixCompletesAll(t *testing.T) {
	ix := New()
	ix.Add("one", 1)
	ix.Add("two", 2)
	if got := ix.Complete("", 10); len(got) != 2 {
		t.Errorf("empty prefix = %v", got)
	}
}

func TestAddKeepsBestScore(t *testing.T) {
	ix := New()
	ix.Add("q", 0.2)
	ix.Add("q", 0.9)
	ix.Add("q", 0.1)
	if ix.Len() != 1 {
		t.Errorf("len = %d, want 1", ix.Len())
	}
	if got := ix.Complete("q", 1); got[0].Score != 0.9 {
		t.Errorf("score = %g, want max 0.9", got[0].Score)
	}
}

func TestRemove(t *testing.T) {
	ix := New()
	ix.Add("alpha", 1)
	ix.Add("alphabet", 1)
	if !ix.Remove("alpha") {
		t.Fatal("Remove failed")
	}
	if ix.Remove("alpha") || ix.Remove("missing") {
		t.Error("double/unknown remove should fail")
	}
	got := ix.Complete("alpha", 10)
	if len(got) != 1 || got[0].Query != "alphabet" {
		t.Errorf("after remove = %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("len = %d", ix.Len())
	}
}

func TestEmptyQueryIgnored(t *testing.T) {
	ix := New()
	ix.Add("", 1)
	if ix.Len() != 0 {
		t.Error("empty query should not be indexed")
	}
}

func TestCompleteMatchesNaiveScan(t *testing.T) {
	f := func(raw []string, prefixByte byte) bool {
		ix := New()
		set := map[string]float64{}
		for i, q := range raw {
			if len(q) > 12 {
				q = q[:12]
			}
			if q == "" {
				continue
			}
			score := float64(i%7) / 7
			ix.Add(q, score)
			if old, ok := set[q]; !ok || score > old {
				set[q] = score
			}
		}
		prefix := string([]byte{'a' + prefixByte%3})
		got := ix.Complete(prefix, 1<<30)
		var want []Completion
		for q, s := range set {
			if strings.HasPrefix(q, prefix) {
				want = append(want, Completion{Query: q, Score: s})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Score != want[j].Score {
				return want[i].Score > want[j].Score
			}
			return want[i].Query < want[j].Query
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFootprintGrows(t *testing.T) {
	ix := New()
	before := ix.FootprintBytes()
	ix.Add("query one", 1)
	if ix.FootprintBytes() <= before {
		t.Error("footprint should grow with nodes")
	}
}

func BenchmarkComplete(b *testing.B) {
	ix := New()
	for i := 0; i < 6000; i++ {
		ix.Add("query "+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('0'+i%10)), float64(i%100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Complete("query a", 8)
	}
}

func TestScoreExact(t *testing.T) {
	ix := New()
	ix.Add("alpha", 3)
	if s, ok := ix.Score("alpha"); !ok || s != 3 {
		t.Errorf("Score = %g, %v", s, ok)
	}
	if _, ok := ix.Score("alph"); ok {
		t.Error("prefix of a query is not a query")
	}
	if _, ok := ix.Score("beta"); ok {
		t.Error("unknown query should have no score")
	}
}

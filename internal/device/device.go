// Package device models the mobile device hosting pocket cloudlets: a
// power baseline for the screen/CPU, a browser rendering cost, a
// DRAM/PCM/NAND memory hierarchy, and the composition of the flash
// storage (internal/flashsim) and radio link (internal/radio) models
// under a single model clock with joint energy accounting.
//
// The model is calibrated to the paper's prototype measurements: a
// cache hit costs ~378 ms end to end, dominated by 361 ms of browser
// rendering (Table 4); the device draws ~900 mW while serving locally
// and ~1.4-1.5 W with the radio active (Figure 16).
package device

import (
	"time"

	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/radio"
)

// Config sets the device's timing and power constants.
type Config struct {
	// BasePower is the screen+CPU draw while the device is in use, in
	// watts. Figure 16 shows ~900 mW during local serving.
	BasePower float64
	// RenderBase is the fixed browser cost to lay out a result page.
	RenderBase time.Duration
	// RenderPerByte is the marginal render cost per byte of page
	// content. With the defaults a ~100 KB search result page renders
	// in ~361 ms, matching Table 4.
	RenderPerByte time.Duration
	// MiscPerQuery is the application overhead per query outside of
	// lookup, fetch and render (Table 4's 7 ms "miscellaneous" row).
	MiscPerQuery time.Duration
	// DRAMBandwidth and PCMBandwidth are bulk-copy rates used by the
	// Section 3.3 index-placement ablation, in bytes per second.
	DRAMBandwidth float64
	PCMBandwidth  float64
}

// DefaultConfig returns the paper-calibrated constants. The power
// baseline comes from internal/energy, the single source of truth for
// the power constants.
func DefaultConfig() Config {
	return Config{
		BasePower:     energy.DeviceBaseW,
		RenderBase:    200 * time.Millisecond,
		RenderPerByte: 1610 * time.Nanosecond,
		MiscPerQuery:  7 * time.Millisecond,
		DRAMBandwidth: 1e9,
		PCMBandwidth:  300e6,
	}
}

// PowerSegment is one piece of a device power trace (Figure 16): the
// total device draw over an interval of model time.
type PowerSegment struct {
	Start    time.Duration
	Duration time.Duration
	Watts    float64
	Label    string
}

// End returns the model time at which the segment finishes.
func (s PowerSegment) End() time.Duration { return s.Start + s.Duration }

// Device is a simulated smartphone.
type Device struct {
	cfg   Config
	flash *flashsim.Device
	store *flashsim.FileStore
	link  *radio.Link

	clock   time.Duration
	meter   energy.Meter // joules from BasePower over busy time
	trace   []PowerSegment
	tracing bool
}

// New creates a device with the given configuration, radio technology
// and flash parameters. Zero-value Config fields are filled from
// DefaultConfig.
func New(cfg Config, link radio.Params, flash flashsim.Params) *Device {
	def := DefaultConfig()
	if cfg.BasePower <= 0 {
		cfg.BasePower = def.BasePower
	}
	if cfg.RenderBase <= 0 {
		cfg.RenderBase = def.RenderBase
	}
	if cfg.RenderPerByte <= 0 {
		cfg.RenderPerByte = def.RenderPerByte
	}
	if cfg.MiscPerQuery <= 0 {
		cfg.MiscPerQuery = def.MiscPerQuery
	}
	if cfg.DRAMBandwidth <= 0 {
		cfg.DRAMBandwidth = def.DRAMBandwidth
	}
	if cfg.PCMBandwidth <= 0 {
		cfg.PCMBandwidth = def.PCMBandwidth
	}
	fd := flashsim.NewDevice(flash)
	return &Device{
		cfg:   cfg,
		flash: fd,
		store: flashsim.NewFileStore(fd),
		link:  radio.NewLink(link),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Flash returns the device's flash part.
func (d *Device) Flash() *flashsim.Device { return d.flash }

// Store returns the device's flash file store.
func (d *Device) Store() *flashsim.FileStore { return d.store }

// Link returns the device's radio link.
func (d *Device) Link() *radio.Link { return d.link }

// Now returns the device's model time.
func (d *Device) Now() time.Duration { return d.clock }

// TotalEnergy returns the joules consumed so far: device baseline over
// busy time plus the radio's extra draw.
func (d *Device) TotalEnergy() float64 { return d.meter.Joules() + d.link.RadioEnergy() }

// StartTrace begins recording power segments for Figure 16.
func (d *Device) StartTrace() {
	d.tracing = true
	d.trace = nil
}

// Trace returns the recorded power segments.
func (d *Device) Trace() []PowerSegment { return d.trace }

func (d *Device) record(dur time.Duration, extraWatts float64, label string) {
	if !d.tracing || dur <= 0 {
		return
	}
	d.trace = append(d.trace, PowerSegment{
		Start:    d.clock,
		Duration: dur,
		Watts:    d.cfg.BasePower + extraWatts,
		Label:    label,
	})
}

// radioExtraIdle returns the radio's current non-active extra draw,
// used to compose trace segments during local work.
func (d *Device) radioExtraIdle() float64 {
	p := d.link.Params()
	if d.link.State() == radio.Tail {
		return p.ExtraTailPower
	}
	return p.ExtraIdlePower
}

// Busy advances the model clock by d with the device active locally
// (CPU/screen on, radio not transmitting). The radio continues its own
// tail/idle accounting in parallel.
func (d *Device) Busy(dur time.Duration, label string) {
	if dur <= 0 {
		return
	}
	d.record(dur, d.radioExtraIdle(), label)
	d.meter.Charge(d.cfg.BasePower, dur)
	d.link.Advance(dur)
	d.clock += dur
}

// NetworkRequest performs a request/response exchange over the radio,
// advancing the model clock by the exchange latency. The device stays
// at base power while waiting (screen on, spinner visible).
func (d *Device) NetworkRequest(reqBytes, respBytes int) radio.Transfer {
	tr := d.link.Request(reqBytes, respBytes)
	d.record(tr.Total(), d.link.Params().ExtraActivePower, "radio")
	d.meter.Charge(d.cfg.BasePower, tr.Total())
	d.clock += tr.Total()
	return tr
}

// NetworkFailedRequest models one radio exchange attempt the network
// dropped (an outage, a lost packet, a transient server error): the
// radio pays its full session overhead — wake-up when idle, plus the
// handshake — and the user stares at a spinner for all of it, but no
// payload ever arrives. The model clock and energy advance exactly as
// a successful exchange's overhead would.
func (d *Device) NetworkFailedRequest() radio.Transfer {
	tr := d.link.FailedRequest()
	d.record(tr.Total(), d.link.Params().ExtraActivePower, "radio-failed")
	d.meter.Charge(d.cfg.BasePower, tr.Total())
	d.clock += tr.Total()
	return tr
}

// NetworkBatchShare charges this device's membership in a coalesced
// radio exchange (radio.BatchTransfer) computed on a shared uplink:
// the device waits wait of model time at base power (screen on,
// spinner visible) while its link absorbs share of the session's
// radio-active time and is left in the post-transfer tail.
func (d *Device) NetworkBatchShare(wait, share time.Duration) {
	if wait < 0 {
		wait = 0
	}
	d.record(wait, d.link.Params().ExtraActivePower, "radio")
	d.meter.Charge(d.cfg.BasePower, wait)
	d.link.JoinBatch(wait, share)
	d.clock += wait
}

// FlashBusy charges a previously computed flash latency against the
// device clock and energy, treating it as local busy time.
func (d *Device) FlashBusy(dur time.Duration) { d.Busy(dur, "flash") }

// RenderLatency models the browser rendering a page of the given size.
func (d *Device) RenderLatency(pageBytes int) time.Duration {
	if pageBytes < 0 {
		pageBytes = 0
	}
	return d.cfg.RenderBase + time.Duration(pageBytes)*d.cfg.RenderPerByte
}

// Render advances the clock by the render latency for a page and
// returns that latency.
func (d *Device) Render(pageBytes int) time.Duration {
	lat := d.RenderLatency(pageBytes)
	d.Busy(lat, "render")
	return lat
}

// Misc charges the per-query application overhead.
func (d *Device) Misc() time.Duration {
	d.Busy(d.cfg.MiscPerQuery, "misc")
	return d.cfg.MiscPerQuery
}

// SyncClock advances the model clock to t without charging energy.
//
// Monotonic contract: the clock never rewinds. A t at or before the
// current clock is a clamp — a guaranteed no-op, not an error — so a
// caller replaying a historical timestamp (a migration import racing a
// fresher serve) can never move model time backwards; internal/modeltime
// builds UserClock.SyncForward on this guarantee and is the only
// package outside this one that may call SyncClock (enforced by test).
//
// State migration hands a user's records to a fresh device whose clock
// must not run behind the state it inherited — the user was not
// holding this device on during the transfer, so no busy time is
// billed; the radio link still observes the gap so its tail/idle state
// stays consistent.
func (d *Device) SyncClock(t time.Duration) {
	if gap := t - d.clock; gap > 0 {
		d.link.Advance(gap)
		d.clock = t
	}
}

// Reset returns the device to model time zero with energy and trace
// cleared. Flash contents are preserved; the radio link is reset.
func (d *Device) Reset() {
	d.clock = 0
	d.meter.Reset()
	d.trace = nil
	d.tracing = false
	d.link.Reset()
	d.flash.ResetStats()
}

package device

import (
	"math"
	"testing"
	"time"

	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/radio"
)

func newTestDevice() *Device {
	return New(Config{}, radio.ThreeG(), flashsim.Params{})
}

func TestDefaultsFilled(t *testing.T) {
	d := newTestDevice()
	if d.Config() != DefaultConfig() {
		t.Errorf("config = %+v, want defaults", d.Config())
	}
}

// TestCacheHitLatencyMatchesTable4 verifies the calibrated end-to-end
// hit cost: fetch (~10 ms, charged by resultdb elsewhere) + render of a
// 100 KB page (~361 ms) + misc (7 ms) ≈ 378 ms.
func TestCacheHitLatencyMatchesTable4(t *testing.T) {
	d := newTestDevice()
	render := d.RenderLatency(100 * 1000)
	if render < 350*time.Millisecond || render > 375*time.Millisecond {
		t.Errorf("render latency for 100 KB page = %v, want ~361 ms", render)
	}
	total := render + d.Config().MiscPerQuery + 10*time.Millisecond
	if total < 360*time.Millisecond || total > 400*time.Millisecond {
		t.Errorf("hit total = %v, want ~378 ms", total)
	}
}

func TestBusyAccruesTimeAndEnergy(t *testing.T) {
	d := newTestDevice()
	d.Busy(2*time.Second, "test")
	if d.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2 s", d.Now())
	}
	want := 0.9 * 2
	if got := d.TotalEnergy(); math.Abs(got-want) > 0.05 {
		t.Errorf("energy = %g J, want ~%g J (base only, radio idle extra small)", got, want)
	}
	d.Busy(-time.Second, "noop")
	if d.Now() != 2*time.Second {
		t.Error("negative busy advanced the clock")
	}
}

func TestNetworkRequestAdvancesClockAndEnergy(t *testing.T) {
	d := newTestDevice()
	tr := d.NetworkRequest(800, 100*1000)
	if d.Now() != tr.Total() {
		t.Errorf("clock = %v, want %v", d.Now(), tr.Total())
	}
	// Energy must exceed base-only: the radio adds active power.
	baseOnly := d.Config().BasePower * tr.Total().Seconds()
	if d.TotalEnergy() <= baseOnly {
		t.Errorf("energy %g J should exceed base-only %g J", d.TotalEnergy(), baseOnly)
	}
}

// TestEnergyRatioVs3G verifies the Figure 15b headline shape: serving a
// query locally is >15x more energy-efficient than over 3G.
func TestEnergyRatioVs3G(t *testing.T) {
	local := newTestDevice()
	local.FlashBusy(10 * time.Millisecond)
	local.Render(100 * 1000)
	local.Misc()
	eLocal := local.TotalEnergy()

	net := newTestDevice()
	net.NetworkRequest(800, 100*1000)
	net.Render(100 * 1000)
	net.Misc()
	eNet := net.TotalEnergy()

	ratio := eNet / eLocal
	if ratio < 15 || ratio > 35 {
		t.Errorf("3G/local energy ratio = %.1f, want ~23 (15-35 acceptable)", ratio)
	}
}

func TestTraceRecordsSegments(t *testing.T) {
	d := newTestDevice()
	d.StartTrace()
	d.NetworkRequest(800, 100*1000)
	d.Render(100 * 1000)
	tr := d.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d segments, want 2", len(tr))
	}
	if tr[0].Label != "radio" || tr[1].Label != "render" {
		t.Errorf("labels = %q, %q", tr[0].Label, tr[1].Label)
	}
	if tr[0].Watts <= tr[1].Watts {
		t.Errorf("radio segment power %g should exceed render power %g", tr[0].Watts, tr[1].Watts)
	}
	if tr[1].Start != tr[0].End() {
		t.Errorf("segments not contiguous: %v then %v", tr[0].End(), tr[1].Start)
	}
	// Figure 16 magnitudes: ~1.4 W with the radio active; rendering
	// right after a transfer still carries the radio tail (~1.2 W).
	if tr[0].Watts < 1.3 || tr[0].Watts > 1.6 {
		t.Errorf("radio power %g W, want ~1.35-1.5 W", tr[0].Watts)
	}
	if tr[1].Watts < 1.1 || tr[1].Watts > 1.3 {
		t.Errorf("render-during-tail power %g W, want ~1.2 W", tr[1].Watts)
	}

	// A purely local device (radio idle throughout) serves at ~0.9 W.
	local := newTestDevice()
	local.StartTrace()
	local.Render(100 * 1000)
	seg := local.Trace()[0]
	if seg.Watts < 0.89 || seg.Watts > 1.0 {
		t.Errorf("local-serve power %g W, want ~0.9 W", seg.Watts)
	}
}

func TestRenderLatencyClampsNegative(t *testing.T) {
	d := newTestDevice()
	if d.RenderLatency(-100) != d.Config().RenderBase {
		t.Error("negative page size should render at base cost")
	}
}

func TestReset(t *testing.T) {
	d := newTestDevice()
	d.Store().Write("f", []byte("persist"))
	d.NetworkRequest(800, 1000)
	d.Reset()
	if d.Now() != 0 || d.TotalEnergy() != 0 {
		t.Error("reset did not clear clock/energy")
	}
	if !d.Store().Exists("f") {
		t.Error("reset should preserve flash contents")
	}
}

func TestBootIndexLoadPlacement(t *testing.T) {
	d := newTestDevice()
	const idx = 1 << 30 // a 1 GiB index, the paper's "indexes can reach gigabytes"
	two := d.BootIndexLoad(idx, TwoTier)
	three := d.BootIndexLoad(idx, ThreeTier)
	if three != 0 {
		t.Errorf("three-tier boot load = %v, want 0", three)
	}
	// Streaming 1 GiB from NAND at ~13.7 MB/s effective takes minutes.
	if two < 30*time.Second {
		t.Errorf("two-tier boot load = %v, want extremely slow (>30 s)", two)
	}
}

func TestIndexAccessOrdering(t *testing.T) {
	d := newTestDevice()
	const probe = 64 * 1024
	dram := d.IndexAccess(probe, DRAM)
	pcm := d.IndexAccess(probe, PCM)
	nand := d.IndexAccess(probe, NAND)
	if !(dram < pcm && pcm < nand) {
		t.Errorf("tier ordering violated: DRAM=%v PCM=%v NAND=%v", dram, pcm, nand)
	}
}

func TestTierStrings(t *testing.T) {
	if DRAM.String() != "DRAM" || PCM.String() != "PCM" || NAND.String() != "NAND" {
		t.Error("Tier.String mismatch")
	}
	if Tier(9).String() == "" {
		t.Error("unknown tier should stringify")
	}
	if TwoTier.String() == ThreeTier.String() {
		t.Error("placements should stringify distinctly")
	}
}

func TestSyncClockNeverRewinds(t *testing.T) {
	d := newTestDevice()
	d.Busy(5*time.Second, "work")
	before := d.Now()
	energy := d.TotalEnergy()
	base := energy - d.Link().RadioEnergy()

	// A stale timestamp — at or before the current clock — must clamp:
	// no rewind, no energy, no link movement.
	for _, stale := range []time.Duration{0, time.Second, before} {
		d.SyncClock(stale)
		if d.Now() != before {
			t.Fatalf("SyncClock(%v) rewound the clock from %v to %v", stale, before, d.Now())
		}
	}
	if d.TotalEnergy() != energy {
		t.Errorf("clamped SyncClock charged energy: %v -> %v", energy, d.TotalEnergy())
	}

	// A forward sync advances the clock exactly. No busy time is billed
	// (the user was not holding the device on), though the radio link
	// observes the gap, so only base energy is pinned here.
	d.SyncClock(9 * time.Second)
	if d.Now() != 9*time.Second {
		t.Errorf("SyncClock(9s) left clock at %v", d.Now())
	}
	if got := d.TotalEnergy() - d.Link().RadioEnergy(); got != base {
		t.Errorf("forward SyncClock billed busy energy: base %v -> %v", base, got)
	}
}

package device

// This file implements the Section 3.3 memory-hierarchy model: the
// paper argues that as cloudlet data indexes grow to gigabytes, a
// three-tier hierarchy (DRAM + PCM + NAND) beats the two-tier
// DRAM + NAND design because indexes kept in byte-addressable PCM are
// instantly available at boot instead of being streamed out of NAND.

import (
	"fmt"
	"time"
)

// Tier identifies a level of the device memory hierarchy.
type Tier int

const (
	// DRAM is fast volatile main memory.
	DRAM Tier = iota
	// PCM is byte-addressable non-volatile storage-class memory,
	// slower than DRAM but far faster than NAND.
	PCM
	// NAND is bulk flash storage.
	NAND
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case DRAM:
		return "DRAM"
	case PCM:
		return "PCM"
	case NAND:
		return "NAND"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// IndexPlacement describes where cloudlet indexes live across power
// cycles, determining the boot-time cost of making them usable.
type IndexPlacement int

const (
	// TwoTier keeps indexes in DRAM at runtime and commits them to
	// NAND across power cycles: every boot streams them back.
	TwoTier IndexPlacement = iota
	// ThreeTier keeps indexes in PCM: non-volatile, so boot pays no
	// reload; index accesses run at PCM speed unless cached in DRAM.
	ThreeTier
)

// String implements fmt.Stringer.
func (p IndexPlacement) String() string {
	if p == ThreeTier {
		return "three-tier (DRAM+PCM+NAND)"
	}
	return "two-tier (DRAM+NAND)"
}

// BootIndexLoad models the time to make an index of the given size
// usable after a power cycle under the given placement.
func (d *Device) BootIndexLoad(indexBytes int64, p IndexPlacement) time.Duration {
	switch p {
	case ThreeTier:
		// The index is already resident in non-volatile PCM; boot
		// only validates a header (one PCM line read, effectively 0).
		return 0
	default:
		// Stream the index out of NAND into DRAM.
		return d.flash.Params().FileOpenLatency + d.nandStream(indexBytes)
	}
}

// nandStream returns the time to sequentially read n bytes from NAND
// at page granularity.
func (d *Device) nandStream(n int64) time.Duration {
	p := d.flash.Params()
	pages := (n + int64(p.PageSize) - 1) / int64(p.PageSize)
	return time.Duration(pages) * p.PageReadLatency
}

// IndexAccess models one index probe of the given size at runtime for
// the tier the index resides in.
func (d *Device) IndexAccess(bytes int, t Tier) time.Duration {
	switch t {
	case DRAM:
		return time.Duration(float64(bytes) / d.cfg.DRAMBandwidth * float64(time.Second))
	case PCM:
		return time.Duration(float64(bytes) / d.cfg.PCMBandwidth * float64(time.Second))
	default:
		return d.flash.Params().FileOpenLatency + d.nandStream(int64(bytes))
	}
}

package analysis

import (
	"sort"

	"pocketcloudlets/internal/searchlog"
)

// This file implements the Figure 5 repeatability analysis. The paper
// calls a query a repeated query only if the user submits the same
// query string AND clicks the same search result — i.e. re-issues the
// same (query, result) pair, which is exactly a repeated PairID here.

// UserRepeat summarizes one user's repeat behaviour over a log window.
type UserRepeat struct {
	User    searchlog.UserID
	Volume  int // total queries under the filter
	Repeats int // entries whose pair appeared earlier in the stream
}

// NewFrac is the user's probability of submitting a new query: the
// fraction of their volume that is a first occurrence.
func (u UserRepeat) NewFrac() float64 {
	if u.Volume == 0 {
		return 0
	}
	return float64(u.Volume-u.Repeats) / float64(u.Volume)
}

// RepeatFrac is the complement of NewFrac.
func (u UserRepeat) RepeatFrac() float64 {
	if u.Volume == 0 {
		return 0
	}
	return float64(u.Repeats) / float64(u.Volume)
}

// RepeatStats computes per-user repeat statistics for the filtered
// entries. Entries must be time-ordered per user (a time-sorted log
// qualifies). Users with zero filtered volume are omitted.
func RepeatStats(entries []searchlog.Entry, meta searchlog.PairMeta, f Filter) []UserRepeat {
	type state struct {
		seen    map[searchlog.PairID]bool
		volume  int
		repeats int
	}
	users := make(map[searchlog.UserID]*state)
	for _, e := range entries {
		if !f.Match(e, meta) {
			continue
		}
		st := users[e.User]
		if st == nil {
			st = &state{seen: make(map[searchlog.PairID]bool)}
			users[e.User] = st
		}
		st.volume++
		if st.seen[e.Pair] {
			st.repeats++
		} else {
			st.seen[e.Pair] = true
		}
	}
	out := make([]UserRepeat, 0, len(users))
	for id, st := range users {
		out = append(out, UserRepeat{User: id, Volume: st.volume, Repeats: st.repeats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// FracUsersNewAtMost reports the fraction of users whose probability of
// submitting a new query is at most p — one point of the Figure 5 CDF.
// The paper reads this curve at p = 0.3: about 50% of users.
func FracUsersNewAtMost(stats []UserRepeat, p float64) float64 {
	if len(stats) == 0 {
		return 0
	}
	n := 0
	for _, s := range stats {
		if s.NewFrac() <= p {
			n++
		}
	}
	return float64(n) / float64(len(stats))
}

// MeanRepeatFrac is the population mean repeat rate; the paper cites
// 56.5% for mobile users vs. ~40% for desktop.
func MeanRepeatFrac(stats []UserRepeat) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum float64
	for _, s := range stats {
		sum += s.RepeatFrac()
	}
	return sum / float64(len(stats))
}

package analysis

import "pocketcloudlets/internal/searchlog"

// This file implements the Table 6 user classification: users are
// bucketed by monthly query volume, and users below the minimum bracket
// are ignored ("we ignore users that submit fewer than 20 queries per
// month").

// Bracket is a half-open monthly-volume bracket [Min, Max).
type Bracket struct {
	Name string
	Min  int
	Max  int // exclusive; use a large sentinel for the open top bracket
}

// Table6Brackets returns the paper's user classes.
func Table6Brackets() []Bracket {
	const open = 1 << 30
	return []Bracket{
		{Name: "Low Volume", Min: 20, Max: 40},
		{Name: "Medium Volume", Min: 40, Max: 140},
		{Name: "High Volume", Min: 140, Max: 460},
		{Name: "Extreme Volume", Min: 460, Max: open},
	}
}

// MonthlyVolumes counts queries per user in the log window.
func MonthlyVolumes(entries []searchlog.Entry) map[searchlog.UserID]int {
	v := make(map[searchlog.UserID]int)
	for _, e := range entries {
		v[e.User]++
	}
	return v
}

// BracketShare is one computed Table 6 row.
type BracketShare struct {
	Bracket Bracket
	Users   int
	Share   float64 // of users at or above the minimum bracket
}

// ClassShares buckets users into brackets and reports each bracket's
// share of the qualifying population.
func ClassShares(volumes map[searchlog.UserID]int, brackets []Bracket) []BracketShare {
	out := make([]BracketShare, len(brackets))
	for i, b := range brackets {
		out[i].Bracket = b
	}
	total := 0
	for _, v := range volumes {
		for i, b := range brackets {
			if v >= b.Min && v < b.Max {
				out[i].Users++
				total++
				break
			}
		}
	}
	if total > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Users) / float64(total)
		}
	}
	return out
}

package analysis_test

import (
	"math"
	"testing"
	"time"

	"pocketcloudlets/internal/analysis"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *engine.Universe {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       960,
		NonNavPairs:    5000,
		NonNavSegments: []engine.Segment{{Queries: 500, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func entry(u searchlog.UserID, p searchlog.PairID, d searchlog.DeviceClass, at time.Duration) searchlog.Entry {
	return searchlog.Entry{At: at, User: u, Pair: p, Device: d}
}

func TestFilterMatch(t *testing.T) {
	u := testUniverse(t)
	nav := entry(1, u.NavPair(0), searchlog.Smartphone, 0)
	nonNav := entry(1, u.NonNavPair(0), searchlog.Featurephone, 0)
	cases := []struct {
		f    analysis.Filter
		e    searchlog.Entry
		want bool
	}{
		{analysis.Filter{}, nav, true},
		{analysis.Filter{}, nonNav, true},
		{analysis.Filter{Nav: analysis.NavOnly}, nav, true},
		{analysis.Filter{Nav: analysis.NavOnly}, nonNav, false},
		{analysis.Filter{Nav: analysis.NonNavOnly}, nav, false},
		{analysis.Filter{Nav: analysis.NonNavOnly}, nonNav, true},
		{analysis.Filter{Device: analysis.SmartphoneOnly}, nav, true},
		{analysis.Filter{Device: analysis.SmartphoneOnly}, nonNav, false},
		{analysis.Filter{Device: analysis.FeaturephoneOnly}, nonNav, true},
		{analysis.Filter{Nav: analysis.NavOnly, Device: analysis.FeaturephoneOnly}, nav, false},
	}
	for i, c := range cases {
		if got := c.f.Match(c.e, u); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
}

func TestQueryVolumesAggregatesAliases(t *testing.T) {
	u := testUniverse(t)
	// Nav pairs 0 and 1 are different queries for the same result;
	// they must count as separate queries but one result.
	entries := []searchlog.Entry{
		entry(1, u.NavPair(0), searchlog.Smartphone, 0),
		entry(1, u.NavPair(0), searchlog.Smartphone, 1),
		entry(2, u.NavPair(1), searchlog.Smartphone, 2),
	}
	qv := analysis.QueryVolumes(entries, u, analysis.Filter{})
	if len(qv) != 2 || qv[0] != 2 || qv[1] != 1 {
		t.Errorf("query volumes = %v, want [2 1]", qv)
	}
	rv := analysis.ResultVolumes(entries, u, analysis.Filter{})
	if len(rv) != 1 || rv[0] != 3 {
		t.Errorf("result volumes = %v, want [3]", rv)
	}
}

func TestTopShares(t *testing.T) {
	vols := []int64{50, 30, 15, 5}
	pts := analysis.TopShares(vols, []int{1, 2, 4, 10})
	wants := []float64{0.5, 0.8, 1.0, 1.0}
	for i, w := range wants {
		if math.Abs(pts[i].Share-w) > 1e-12 {
			t.Errorf("TopShares[%d] = %g, want %g", i, pts[i].Share, w)
		}
	}
	if pts := analysis.TopShares(nil, []int{5}); pts[0].Share != 0 {
		t.Error("empty volumes should yield zero share")
	}
}

func TestRepeatStats(t *testing.T) {
	u := testUniverse(t)
	p1, p2 := u.NavPair(0), u.NonNavPair(0)
	entries := []searchlog.Entry{
		entry(1, p1, searchlog.Smartphone, 0),
		entry(1, p1, searchlog.Smartphone, 1), // repeat
		entry(1, p2, searchlog.Smartphone, 2),
		entry(1, p1, searchlog.Smartphone, 3), // repeat
		entry(2, p2, searchlog.Smartphone, 4),
	}
	stats := analysis.RepeatStats(entries, u, analysis.Filter{})
	if len(stats) != 2 {
		t.Fatalf("stats for %d users, want 2", len(stats))
	}
	u1 := stats[0]
	if u1.User != 1 || u1.Volume != 4 || u1.Repeats != 2 {
		t.Errorf("user 1 stats = %+v, want volume 4 repeats 2", u1)
	}
	if got := u1.RepeatFrac(); got != 0.5 {
		t.Errorf("repeat frac = %g, want 0.5", got)
	}
	if got := u1.NewFrac(); got != 0.5 {
		t.Errorf("new frac = %g, want 0.5", got)
	}
	u2 := stats[1]
	if u2.Volume != 1 || u2.Repeats != 0 {
		t.Errorf("user 2 stats = %+v", u2)
	}
}

func TestRepeatDifferentResultNotARepeat(t *testing.T) {
	u := testUniverse(t)
	// Same query, different clicked result: the paper does NOT count
	// this as a repeated query. Head non-nav pairs 0,1 share a query.
	p0, p1 := u.NonNavPair(0), u.NonNavPair(1)
	if u.QueryOf(p0) != u.QueryOf(p1) {
		t.Fatal("test requires a shared query")
	}
	entries := []searchlog.Entry{
		entry(1, p0, searchlog.Smartphone, 0),
		entry(1, p1, searchlog.Smartphone, 1),
	}
	stats := analysis.RepeatStats(entries, u, analysis.Filter{})
	if stats[0].Repeats != 0 {
		t.Errorf("different clicked result counted as repeat: %+v", stats[0])
	}
}

func TestFracUsersNewAtMost(t *testing.T) {
	stats := []analysis.UserRepeat{
		{User: 1, Volume: 10, Repeats: 8}, // new 0.2
		{User: 2, Volume: 10, Repeats: 5}, // new 0.5
		{User: 3, Volume: 10, Repeats: 0}, // new 1.0
	}
	if got := analysis.FracUsersNewAtMost(stats, 0.3); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("frac = %g, want 1/3", got)
	}
	if got := analysis.FracUsersNewAtMost(nil, 0.3); got != 0 {
		t.Errorf("empty stats frac = %g, want 0", got)
	}
	if got := analysis.MeanRepeatFrac(stats); math.Abs(got-(0.8+0.5+0)/3) > 1e-12 {
		t.Errorf("mean repeat = %g", got)
	}
	if got := analysis.MeanRepeatFrac(nil); got != 0 {
		t.Errorf("empty mean = %g, want 0", got)
	}
}

func TestZeroVolumeUserFracs(t *testing.T) {
	z := analysis.UserRepeat{User: 1}
	if z.NewFrac() != 0 || z.RepeatFrac() != 0 {
		t.Error("zero-volume user fracs should be 0")
	}
}

func TestClassShares(t *testing.T) {
	volumes := map[searchlog.UserID]int{
		1: 25, 2: 30, 3: 50, 4: 200, 5: 999, 6: 5, // user 6 below minimum: ignored
	}
	shares := analysis.ClassShares(volumes, analysis.Table6Brackets())
	if shares[0].Users != 2 || shares[1].Users != 1 || shares[2].Users != 1 || shares[3].Users != 1 {
		t.Errorf("bracket users = %v", shares)
	}
	if math.Abs(shares[0].Share-0.4) > 1e-12 {
		t.Errorf("low share = %g, want 0.4", shares[0].Share)
	}
	empty := analysis.ClassShares(nil, analysis.Table6Brackets())
	for _, s := range empty {
		if s.Share != 0 || s.Users != 0 {
			t.Error("empty volumes should produce zero shares")
		}
	}
}

func TestMonthlyVolumes(t *testing.T) {
	u := testUniverse(t)
	entries := []searchlog.Entry{
		entry(1, u.NavPair(0), searchlog.Smartphone, 0),
		entry(1, u.NavPair(1), searchlog.Smartphone, 1),
		entry(2, u.NavPair(0), searchlog.Smartphone, 2),
	}
	v := analysis.MonthlyVolumes(entries)
	if v[1] != 2 || v[2] != 1 {
		t.Errorf("volumes = %v", v)
	}
}

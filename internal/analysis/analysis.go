// Package analysis implements the mobile search characterization of
// Section 4 of the Pocket Cloudlets paper: community popularity curves
// (Figure 4), per-user query repeatability (Figure 5), and the Table 6
// classification of users by monthly query volume.
package analysis

import (
	"sort"

	"pocketcloudlets/internal/searchlog"
)

// NavFilter restricts an analysis to navigational or non-navigational
// traffic.
type NavFilter int

const (
	// NavAll keeps every entry.
	NavAll NavFilter = iota
	// NavOnly keeps entries whose query is a substring of the clicked
	// URL (the paper's navigational classifier).
	NavOnly
	// NonNavOnly keeps the complement.
	NonNavOnly
)

// DeviceFilter restricts an analysis to one device population.
type DeviceFilter int

const (
	// DeviceAll keeps every entry.
	DeviceAll DeviceFilter = iota
	// SmartphoneOnly keeps smartphone entries.
	SmartphoneOnly
	// FeaturephoneOnly keeps featurephone entries.
	FeaturephoneOnly
)

// Filter selects a sub-population of log entries.
type Filter struct {
	Nav    NavFilter
	Device DeviceFilter
}

// Match reports whether the entry passes the filter.
func (f Filter) Match(e searchlog.Entry, meta searchlog.PairMeta) bool {
	switch f.Device {
	case SmartphoneOnly:
		if e.Device != searchlog.Smartphone {
			return false
		}
	case FeaturephoneOnly:
		if e.Device != searchlog.Featurephone {
			return false
		}
	}
	switch f.Nav {
	case NavOnly:
		return meta.Navigational(e.Pair)
	case NonNavOnly:
		return !meta.Navigational(e.Pair)
	}
	return true
}

// QueryVolumes aggregates entry counts per distinct query string under
// the filter and returns the volumes sorted in descending order — the
// input to the Figure 4(a) CDF.
func QueryVolumes(entries []searchlog.Entry, meta searchlog.PairMeta, f Filter) []int64 {
	counts := make(map[searchlog.QueryID]int64)
	for _, e := range entries {
		if f.Match(e, meta) {
			counts[meta.QueryOf(e.Pair)]++
		}
	}
	return sortedDesc(counts)
}

// ResultVolumes aggregates entry counts per distinct clicked search
// result under the filter — the input to the Figure 4(b) CDF.
func ResultVolumes(entries []searchlog.Entry, meta searchlog.PairMeta, f Filter) []int64 {
	counts := make(map[searchlog.ResultID]int64)
	for _, e := range entries {
		if f.Match(e, meta) {
			counts[meta.ResultOf(e.Pair)]++
		}
	}
	return sortedDesc(counts)
}

func sortedDesc[K comparable](counts map[K]int64) []int64 {
	out := make([]int64, 0, len(counts))
	for _, v := range counts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// CDFPoint is one point of a cumulative-volume curve: the share of
// total volume carried by the TopN most popular items.
type CDFPoint struct {
	TopN  int
	Share float64
}

// TopShares evaluates the cumulative-volume curve at the given item
// counts. volumes must be sorted in descending order (as returned by
// QueryVolumes/ResultVolumes); topNs must be ascending.
func TopShares(volumes []int64, topNs []int) []CDFPoint {
	var total int64
	for _, v := range volumes {
		total += v
	}
	out := make([]CDFPoint, len(topNs))
	var cum int64
	idx := 0
	for i, n := range topNs {
		for idx < n && idx < len(volumes) {
			cum += volumes[idx]
			idx++
		}
		share := 0.0
		if total > 0 {
			share = float64(cum) / float64(total)
		}
		out[i] = CDFPoint{TopN: n, Share: share}
	}
	return out
}

package faults

import (
	"time"

	"pocketcloudlets/internal/radio"
)

// Replica derivation. The single-backend model draws every fault from
// one injector; a replicated cloud backend gives each replica its own
// injector so outages, losses and engine errors strike replicas
// independently — the whole point of hedging a miss is that the clone's
// draws are not correlated with the primary's.

// ReplicaOptions derives replica r's fault options from the base
// options. Replica 0 IS the base, byte-identical to the single-backend
// model (the clone-factor-1 equivalence guarantee rests on this).
// Higher replicas get an independent hash seed, and — when a periodic
// outage duty cycle is configured — a deterministic phase shift of the
// cycle, modeling a backend/path outage that hits each replica on its
// own schedule. Absolute outage windows are NOT shifted: they model
// client-side dead zones (a tunnel, airplane mode) that no amount of
// server replication escapes.
func ReplicaOptions(base Options, replica int) Options {
	if replica <= 0 {
		return base
	}
	o := base
	o.Seed = int64(mix(uint64(base.Seed) ^ uint64(replica)*0xA24BAED4963EE407))
	if o.OutageEvery > 0 && o.OutageFor > 0 {
		shift := mix(uint64(base.Seed)^uint64(replica)*0x9FB21C651E98DF25) % uint64(o.OutageEvery)
		o.OutagePhase = base.OutagePhase + time.Duration(shift)
	}
	return o
}

// Replicas builds n per-replica injectors from the base injector.
// Replica 0 is the base injector itself; a nil base or n < 1 yields a
// single-element slice holding the base (possibly nil), so callers can
// always index replica 0.
func Replicas(base *Injector, n int) []*Injector {
	if n < 1 {
		n = 1
	}
	injs := make([]*Injector, n)
	injs[0] = base
	if base == nil {
		return injs[:1]
	}
	for r := 1; r < n; r++ {
		injs[r] = New(ReplicaOptions(base.opts, r))
	}
	return injs
}

// HedgePolicy governs request hedging on the cloud-miss path: how many
// replicas one miss may be dispatched to, how long to wait before each
// additional clone launches, and how many dispatches may be in flight
// at once. The zero value disables hedging.
type HedgePolicy struct {
	// CloneFactor is the total number of dispatches one miss may make,
	// primary included. Values below 2 disable hedging — the miss runs
	// the single-backend ladder against replica 0, byte-identical to an
	// unreplicated fleet.
	CloneFactor int
	// Delay is the stagger between successive launches: clone i waits
	// i×Delay after the primary before dispatching, and only launches
	// if no earlier dispatch has delivered by then. Zero launches all
	// clones immediately with the primary.
	Delay time.Duration
	// MaxInflight caps concurrently outstanding dispatches for one
	// miss. Zero or negative means no cap beyond CloneFactor.
	MaxInflight int
}

// Active reports whether the policy actually hedges.
func (h HedgePolicy) Active() bool { return h.CloneFactor >= 2 }

// WithDefaults normalizes the policy: negative delay becomes
// immediate, a missing inflight cap becomes the clone factor.
func (h HedgePolicy) WithDefaults() HedgePolicy {
	if h.Delay < 0 {
		h.Delay = 0
	}
	if h.MaxInflight <= 0 || h.MaxInflight > h.CloneFactor {
		h.MaxInflight = h.CloneFactor
	}
	return h
}

// HedgeLaunch is one dispatch of a hedged miss: which replica it went
// to, when it launched (offset from the miss start), and the attempt
// ladder it planned there. Losers additionally carry the waste they
// accrued before the winner's answer canceled them.
type HedgeLaunch struct {
	// Replica indexes the replica this dispatch targeted.
	Replica int
	// At is the launch offset from the miss start in model time.
	At time.Duration
	// Plan is the full attempt ladder planned against the replica's
	// injector, starting at the launch offset.
	Plan Plan
	// Warm reports whether the dispatch's first attempt started inside
	// the device link's remaining tail.
	Warm bool
	// Wasted is how many of the ladder's attempts actually started
	// before cancellation and were thrown away (zero for the winner);
	// WastedActive is their radio-active cost.
	Wasted       int
	WastedActive time.Duration
	// Abandoned reports that the dispatch's *successful* exchange was
	// already in flight when the winner's answer arrived — the request
	// went up, the response was discarded. The fleet charges it per the
	// radio cost model (radio.ExchangeCost with an empty response).
	Abandoned bool
}

// HedgedPlan is the analytically simulated outcome of one hedged cloud
// miss across its replica dispatches, before any model state is
// touched — the hedging analogue of Plan, and just as deterministic.
type HedgedPlan struct {
	// Launches are the dispatches that actually happened, in launch
	// order. Launches[0] is always the primary; slots suppressed by an
	// early answer or the inflight cap never appear.
	Launches []HedgeLaunch
	// Winner indexes into Launches the dispatch that delivered the
	// answer, or -1 when every dispatch exhausted its ladder and the
	// miss must degrade.
	Winner int
	// Wait is the extra user-visible wait the hedge added on top of the
	// delivered ladder: the winner's launch offset when a clone wins
	// (zero when the primary wins), or — when all dispatches exhaust —
	// how far past the primary's own exhaustion the last ladder kept
	// trying before the miss degraded.
	Wait time.Duration
	// Aggregate waste across the losing dispatches.
	WastedAttempts int
	WastedActive   time.Duration
	Abandoned      int
}

// Delivered returns the plan whose ladder the user's timeline rides:
// the winner's, or the primary's when every dispatch exhausted.
func (h HedgedPlan) Delivered() Plan {
	if h.Winner >= 0 {
		return h.Launches[h.Winner].Plan
	}
	return h.Launches[0].Plan
}

// Clones is how many dispatches beyond the primary actually launched.
func (h HedgedPlan) Clones() int { return len(h.Launches) - 1 }

// hedgeStart rotates the primary replica per miss so load (and fault
// exposure) spreads across the replica set instead of pinning replica
// 0 as everyone's primary.
func hedgeStart(n int, uid, qh, seq uint64) int {
	if n <= 1 {
		return 0
	}
	x := mix(uid*0x9E3779B97F4A7C15 ^ 0x48ED6E3C0FF1CE00)
	x = mix(x ^ qh)
	x = mix(x ^ seq*0xD1B54A32D192ED03)
	return int(x % uint64(n))
}

// cloneQueryHash perturbs the query hash for clone slot i so a clone
// that lands on the same replica as an earlier slot (CloneFactor >
// replica count) still draws an independent ladder. Slot 0 keeps the
// hash untouched, so the primary's ladder is exactly what the
// single-backend model would have planned on the same replica.
func cloneQueryHash(qh uint64, slot int) uint64 {
	if slot == 0 {
		return qh
	}
	return qh ^ mix(0xC10E5A17_0000_0000^uint64(slot))
}

// PlanHedged simulates one hedged cloud miss analytically: up to
// CloneFactor dispatches, each against its own replica injector, each
// a full PlanMiss ladder starting at its staggered launch offset. The
// winner is the dispatch whose successful exchange starts first (ties
// go to the earlier launch); the answer is considered in hand one
// handshake later, at which point the losers are canceled and charged
// for every attempt they had already started. A clone slot never
// launches if an earlier dispatch's answer is already in hand at its
// launch time, or if the inflight cap is reached.
//
// Like PlanMiss, every decision is a pure function of the injector
// seeds and the caller-supplied identifiers — never of wall time — so
// hedged outcomes are byte-reproducible under -race.
//
// now is the user's model clock, tailLeft how much of the device
// link's post-transfer tail remains at the miss start (zero when
// idle): a dispatch launching inside that window starts warm. The
// primary's concurrent attempts do not keep the modeled link warm for
// clones — their cost is charged analytically, off the link — which
// keeps the plan in exact agreement with the fleet's device replay.
func PlanHedged(injs []*Injector, pol RetryPolicy, hp HedgePolicy, p radio.Params, pr Pricer, now time.Duration, tailLeft time.Duration, uid, qh, seq uint64) HedgedPlan {
	hp = hp.WithDefaults()
	n := len(injs)
	if n == 0 {
		injs, n = []*Injector{nil}, 1
	}
	start := hedgeStart(n, uid, qh, seq)
	if !hp.Active() {
		// Degenerate single dispatch; the fleet never takes this path
		// (it runs the legacy ladder instead), but keep it well-defined.
		pl := PlanMiss(injs[0], pol, p, pr, 0, now, tailLeft > 0, uid, qh, seq)
		w := 0
		if !pl.Success {
			w = -1
		}
		return HedgedPlan{Launches: []HedgeLaunch{{Replica: 0, Plan: pl}}, Winner: w}
	}

	handshake := time.Duration(p.HandshakeRTTs) * p.RTT
	hplan := HedgedPlan{Winner: -1}
	answerAt := time.Duration(-1) // earliest instant an answer is in hand; -1 = none yet
	winAnswerAt := time.Duration(0)
	for slot := 0; slot < hp.CloneFactor; slot++ {
		at := time.Duration(slot) * hp.Delay
		if slot > 0 {
			if answerAt >= 0 && answerAt <= at {
				break // an earlier dispatch already delivered
			}
			inflight := 0
			for _, l := range hplan.Launches {
				end := l.At + l.Plan.LadderWait()
				if l.Plan.Success {
					end += l.Plan.FinalBackend()
				}
				if end > at || (l.Plan.Success && end == at) {
					inflight++
				}
			}
			if inflight >= hp.MaxInflight {
				continue
			}
		}
		rep := (start + slot) % n
		warm := at < tailLeft
		pl := PlanMiss(injs[rep], pol, p, pr, rep, now+at, warm, uid, cloneQueryHash(qh, slot), seq)
		hplan.Launches = append(hplan.Launches, HedgeLaunch{Replica: rep, At: at, Plan: pl, Warm: warm})
		if pl.Success {
			handAt := at + pl.LadderWait() + pl.FinalBackend() + handshake
			if answerAt < 0 || handAt < answerAt {
				answerAt = handAt
			}
		}
	}

	// Pick the winner: earliest answer in hand — ladder, queue and
	// service time included, so a fast replica beats a congested one
	// even when the congested dispatch's exchange *started* first. Ties
	// go to the earlier launch.
	for i, l := range hplan.Launches {
		if !l.Plan.Success {
			continue
		}
		handAt := l.At + l.Plan.LadderWait() + l.Plan.FinalBackend() + handshake
		if hplan.Winner < 0 || handAt < winAnswerAt {
			hplan.Winner, winAnswerAt = i, handAt
		}
	}

	if hplan.Winner < 0 {
		// Every dispatch exhausted. The primary's ladder is the user's
		// replayed timeline; the clones' whole ladders are waste, and
		// the miss degrades only once the last ladder has given up.
		exhaustAt := time.Duration(0)
		for i := range hplan.Launches {
			l := &hplan.Launches[i]
			if end := l.At + l.Plan.LadderWait(); end > exhaustAt {
				exhaustAt = end
			}
			if i == 0 {
				continue
			}
			l.Wasted = l.Plan.Attempts
			l.WastedActive = l.Plan.FailedActive
			hplan.WastedAttempts += l.Wasted
			hplan.WastedActive += l.WastedActive
		}
		if extra := exhaustAt - hplan.Launches[0].Plan.LadderWait(); extra > 0 {
			hplan.Wait = extra
		}
		return hplan
	}

	hplan.Wait = hplan.Launches[hplan.Winner].At
	cancelAt := winAnswerAt
	for i := range hplan.Launches {
		if i == hplan.Winner {
			continue
		}
		l := &hplan.Launches[i]
		l.Wasted, l.WastedActive, l.Abandoned = truncateLadder(l, p, cancelAt)
		hplan.WastedAttempts += l.Wasted
		hplan.WastedActive += l.WastedActive
		if l.Abandoned {
			hplan.Abandoned++
		}
	}
	return hplan
}

// truncateLadder replays launch l's planned ladder timeline and counts
// the attempts that had already started when the winner's answer
// canceled it at cancelAt: each started failed attempt is charged its
// full session overhead (the wake-up and handshake are spent whether
// or not anyone waits for the outcome). A successful loser whose final
// exchange had started by cancelAt is marked abandoned — its request
// went up, its response will be discarded.
//
// The plan's arrival ledger is truncated in step: dispatches of
// attempts that never started are dropped (they never arrived), and
// the abandoned final exchange is reclassified ArrivalAbandoned with
// the service time not yet executed at cancelAt recorded as
// Reclaimable — what a cancel-on-win backend gets back. Failed
// exchanges that started keep their full burn: the replica served the
// error whether or not anyone was listening.
func truncateLadder(l *HedgeLaunch, p radio.Params, cancelAt time.Duration) (wasted int, active time.Duration, abandoned bool) {
	t := l.At
	warm := l.Warm
	failures := l.Plan.Failures()
	arr := l.Plan.Arrivals
	ai := 0 // arrivals of attempts that actually started
	for i := 0; i < failures; i++ {
		if t >= cancelAt {
			l.Plan.Arrivals = arr[:ai]
			return wasted, active, false
		}
		attempt := i + 1
		cost := radio.FailedAttemptCost(p, warm)
		wasted++
		active += cost
		t += cost
		if ai < len(arr) && arr[ai].Attempt == attempt {
			if arr[ai].Status != ArrivalRejected {
				t += arr[ai].Wait + arr[ai].Service
			}
			ai++
		}
		warm = true
		if i < len(l.Plan.Backoffs) {
			b := l.Plan.Backoffs[i]
			t += b
			warm = b < p.TailDuration
		}
	}
	if l.Plan.Success && t < cancelAt {
		if ai < len(arr) {
			// The final exchange's dispatch: abandoned mid-flight.
			fin := &arr[ai]
			svcStart := t + fin.Wait
			executed := cancelAt - svcStart
			if executed < 0 {
				executed = 0
			}
			if executed > fin.Service {
				executed = fin.Service
			}
			fin.Status = ArrivalAbandoned
			fin.Reclaimable = fin.Service - executed
			ai++
		}
		l.Plan.Arrivals = arr[:ai]
		return wasted, active, true
	}
	l.Plan.Arrivals = arr[:ai]
	return wasted, active, false
}

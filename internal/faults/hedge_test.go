package faults

import (
	"reflect"
	"testing"
	"time"

	"pocketcloudlets/internal/radio"
)

// alwaysDown is an options set whose absolute window covers every
// instant the tests look at — the replica can never answer.
func alwaysDown(seed int64) Options {
	return Options{Enabled: true, Seed: seed, Windows: []Window{{Start: 0, End: time.Hour}}}
}

func TestReplicaOptions(t *testing.T) {
	base := Options{
		Enabled:     true,
		Seed:        7,
		LossProb:    0.2,
		OutageEvery: 30 * time.Second,
		OutageFor:   6 * time.Second,
		Windows:     []Window{{Start: time.Minute, End: 2 * time.Minute}},
	}
	if got := ReplicaOptions(base, 0); !reflect.DeepEqual(got, base) {
		t.Fatalf("replica 0 must be the base options, got %+v", got)
	}
	r1 := ReplicaOptions(base, 1)
	if r1.Seed == base.Seed {
		t.Error("replica 1 should draw from its own seed")
	}
	if r1.OutagePhase == base.OutagePhase {
		t.Error("replica 1's duty cycle should be phase-shifted")
	}
	if shift := r1.OutagePhase - base.OutagePhase; shift < 0 || shift >= base.OutageEvery {
		t.Errorf("phase shift %v outside [0, %v)", shift, base.OutageEvery)
	}
	// Absolute windows model client-side dead zones; replication must
	// not move them.
	if !reflect.DeepEqual(r1.Windows, base.Windows) {
		t.Errorf("windows shifted: %v", r1.Windows)
	}
	if got := ReplicaOptions(base, 1); !reflect.DeepEqual(got, r1) {
		t.Error("replica derivation is not deterministic")
	}
	if r2 := ReplicaOptions(base, 2); r2.Seed == r1.Seed {
		t.Error("replicas 1 and 2 share a seed")
	}

	// Without a duty cycle there is nothing to phase-shift.
	windowsOnly := Options{Enabled: true, Seed: 7, Windows: base.Windows}
	if got := ReplicaOptions(windowsOnly, 1); got.OutagePhase != 0 {
		t.Errorf("windows-only options grew a phase %v", got.OutagePhase)
	}
}

func TestReplicasBuild(t *testing.T) {
	if injs := Replicas(nil, 3); len(injs) != 1 || injs[0] != nil {
		t.Errorf("nil base should collapse to [nil], got %v", injs)
	}
	base := New(Options{Enabled: true, Seed: 1, LossProb: 0.5})
	if injs := Replicas(base, 0); len(injs) != 1 || injs[0] != base {
		t.Errorf("n<1 should yield just the base, got %v", injs)
	}
	injs := Replicas(base, 3)
	if len(injs) != 3 || injs[0] != base {
		t.Fatalf("want 3 injectors with the base first, got %v", injs)
	}
	// Independent draws: the replicas' loss streams must not be copies
	// of the base's.
	for r := 1; r < 3; r++ {
		same := true
		for seq := uint64(0); seq < 64; seq++ {
			if injs[r].LostAttempt(1, 2, seq, 1) != base.LostAttempt(1, 2, seq, 1) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("replica %d's loss stream mirrors the base", r)
		}
	}
}

func TestHedgePolicyDefaults(t *testing.T) {
	if (HedgePolicy{}).Active() || (HedgePolicy{CloneFactor: 1}).Active() {
		t.Error("clone factors below 2 must not hedge")
	}
	if !(HedgePolicy{CloneFactor: 2}).Active() {
		t.Error("clone factor 2 should hedge")
	}
	h := HedgePolicy{CloneFactor: 3, Delay: -time.Second, MaxInflight: 9}.WithDefaults()
	if h.Delay != 0 || h.MaxInflight != 3 {
		t.Errorf("WithDefaults = %+v", h)
	}
}

func TestPlanHedgedDeterministic(t *testing.T) {
	base := New(Options{Enabled: true, Seed: 11, LossProb: 0.4, EngineErrProb: 0.1,
		OutageEvery: 20 * time.Second, OutageFor: 4 * time.Second})
	injs := Replicas(base, 3)
	pol := RetryPolicy{}.WithDefaults()
	hp := HedgePolicy{CloneFactor: 3, Delay: 50 * time.Millisecond}
	p := radio.ThreeG()
	for seq := uint64(0); seq < 200; seq++ {
		a := PlanHedged(injs, pol, hp, p, nil, time.Duration(seq)*time.Second, 0, 42, seq*13, seq)
		b := PlanHedged(injs, pol, hp, p, nil, time.Duration(seq)*time.Second, 0, 42, seq*13, seq)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seq %d: plans differ:\n%+v\n%+v", seq, a, b)
		}
	}
}

// TestPlanHedgedQuietBackends: with nothing failing and a launch delay
// longer than the answer path, the hedge is pure bookkeeping — one
// dispatch, primary wins, zero waste, and the delivered ladder is
// exactly the single-backend plan.
func TestPlanHedgedQuietBackends(t *testing.T) {
	base := New(Options{Enabled: true, Seed: 5})
	injs := Replicas(base, 2)
	pol := RetryPolicy{}.WithDefaults()
	p := radio.ThreeG()
	hp := HedgePolicy{CloneFactor: 2, Delay: 10 * time.Second}
	hplan := PlanHedged(injs, pol, hp, p, nil, 0, 0, 1, 2, 3)
	if len(hplan.Launches) != 1 {
		t.Fatalf("quiet backends launched %d dispatches, want 1", len(hplan.Launches))
	}
	if hplan.Winner != 0 || hplan.Wait != 0 || hplan.WastedAttempts != 0 || hplan.Abandoned != 0 {
		t.Errorf("quiet hedge accrued winner=%d wait=%v waste=%d abandoned=%d",
			hplan.Winner, hplan.Wait, hplan.WastedAttempts, hplan.Abandoned)
	}
	want := PlanMiss(injs[hplan.Launches[0].Replica], pol, p, nil, 0, 0, false, 1, 2, 3)
	if got := hplan.Delivered(); !reflect.DeepEqual(got, want) {
		t.Errorf("delivered ladder diverged from the single-backend plan:\n%+v\n%+v", got, want)
	}
}

// TestPlanHedgedCloneWins pins a dead primary against a healthy clone:
// the clone must win, the hedge wait must be its launch offset, and the
// dead primary's started attempts must be charged as waste.
func TestPlanHedgedCloneWins(t *testing.T) {
	dead := New(alwaysDown(3))
	healthy := New(Options{Enabled: true, Seed: 4})
	pol := RetryPolicy{}.WithDefaults()
	p := radio.ThreeG()
	hp := HedgePolicy{CloneFactor: 2, Delay: 100 * time.Millisecond}
	found := false
	for seq := uint64(0); seq < 16; seq++ {
		// hedgeStart rotates the primary; pick a seq whose primary is the
		// dead replica.
		if hedgeStart(2, 9, 7, seq) != 0 {
			continue
		}
		found = true
		hplan := PlanHedged([]*Injector{dead, healthy}, pol, hp, p, nil, 0, 0, 9, 7, seq)
		if len(hplan.Launches) != 2 {
			t.Fatalf("seq %d: want 2 launches, got %d", seq, len(hplan.Launches))
		}
		if hplan.Winner != 1 {
			t.Fatalf("seq %d: winner %d, want the clone", seq, hplan.Winner)
		}
		if hplan.Wait != hp.Delay {
			t.Errorf("seq %d: wait %v, want the clone's launch offset %v", seq, hplan.Wait, hp.Delay)
		}
		if hplan.WastedAttempts < 1 {
			t.Errorf("seq %d: dead primary charged no wasted attempts", seq)
		}
		if !hplan.Delivered().Success {
			t.Errorf("seq %d: delivered ladder did not succeed", seq)
		}
		break
	}
	if !found {
		t.Fatal("no seq with the dead replica as primary in 16 tries")
	}
}

func TestPlanHedgedAllFail(t *testing.T) {
	injs := []*Injector{New(alwaysDown(1)), New(alwaysDown(2))}
	pol := RetryPolicy{}.WithDefaults()
	p := radio.ThreeG()
	hp := HedgePolicy{CloneFactor: 2, Delay: 100 * time.Millisecond}
	hplan := PlanHedged(injs, pol, hp, p, nil, 0, 0, 1, 2, 3)
	if hplan.Winner != -1 {
		t.Fatalf("winner %d, want -1 with every replica down", hplan.Winner)
	}
	if hplan.Delivered().Success {
		t.Error("delivered ladder succeeded with every replica down")
	}
	if !reflect.DeepEqual(hplan.Delivered(), hplan.Launches[0].Plan) {
		t.Error("all-fail must deliver the primary's ladder (the user's replayed spine)")
	}
	clone := hplan.Launches[1]
	if clone.Wasted != clone.Plan.Attempts || hplan.WastedAttempts != clone.Wasted {
		t.Errorf("clone waste %d/%d, aggregate %d", clone.Wasted, clone.Plan.Attempts, hplan.WastedAttempts)
	}
	wantWait := clone.At + clone.Plan.FailedWait - hplan.Launches[0].Plan.FailedWait
	if wantWait < 0 {
		wantWait = 0
	}
	if hplan.Wait != wantWait {
		t.Errorf("wait %v, want %v (degrade only after the last ladder gives up)", hplan.Wait, wantWait)
	}
}

func TestPlanHedgedMaxInflight(t *testing.T) {
	injs := []*Injector{New(alwaysDown(1)), New(alwaysDown(2)), New(alwaysDown(3))}
	pol := RetryPolicy{}.WithDefaults()
	p := radio.ThreeG()
	hp := HedgePolicy{CloneFactor: 3, Delay: time.Millisecond, MaxInflight: 1}
	hplan := PlanHedged(injs, pol, hp, p, nil, 0, 0, 1, 2, 3)
	// The primary's failing ladder keeps the single inflight slot busy
	// past every clone's launch point, so no clone may launch.
	if len(hplan.Launches) != 1 {
		t.Fatalf("max_inflight 1 still launched %d dispatches", len(hplan.Launches))
	}
}

package faults

import "time"

// Admission pricing. PR 9 refactors the miss planners into *admission*
// planners: instead of treating the cloud as an instant oracle whose
// only failure modes are fault coins, each attempt that reaches the
// network is priced against a modeled backend replica — a server with
// finite capacity and a queue (internal/backend). The planner stays
// analytic and deterministic; the backend supplies, per dispatch, the
// queue wait the request would see, the service time it would consume,
// and whether the replica's bounded queue admits it at all.
//
// A nil Pricer (or a zero Admission) reproduces the legacy planner
// byte-for-byte: every added duration is zero and every attempt is
// admitted, so plans — and therefore fleet outcomes, reports and bench
// numbers — are unchanged. That equivalence is the refactor's safety
// rail, asserted by tests here and in internal/fleet and enforced as a
// scripts/check.sh smoke.

// Pricer prices one dispatch of a cloud miss against a modeled backend
// replica. Implementations MUST be pure with respect to model state:
// the same arguments return the same Admission regardless of call
// order or interleaving (internal/backend achieves this by simulating
// each replica's queue as a deterministic background process that
// observers read without mutating). attempt is 1-based, matching the
// fault hashes.
type Pricer interface {
	Price(replica int, at time.Duration, uid, qh, seq uint64, attempt int) Admission
}

// Admission is the priced outcome of one dispatch arriving at a
// backend replica.
type Admission struct {
	// Wait is the queueing delay before service begins (FIFO: the
	// unfinished work ahead of the request; PS: the slowdown stretch
	// beyond the request's own service time).
	Wait time.Duration
	// Service is the service time this request consumes at the replica.
	Service time.Duration
	// Rejected reports that the replica's bounded queue turned the
	// request away — an immediate, retryable failure that costs the
	// device one failed attempt but no backend time.
	Rejected bool
}

// ArrivalStatus classifies what became of one priced dispatch at its
// replica.
type ArrivalStatus uint8

const (
	// ArrivalServed: the replica completed the request's service (the
	// response may still have been discarded by the device, e.g. a
	// hedge loser that finished before cancellation).
	ArrivalServed ArrivalStatus = iota
	// ArrivalRejected: the bounded queue turned the request away.
	ArrivalRejected
	// ArrivalAbandoned: a hedge loser's request was still queued or in
	// service when the winner's answer canceled it.
	ArrivalAbandoned
)

// Arrival is one ledger entry of a plan's priced dispatches — what the
// fleet books into the backend's accounting after the plan replays.
// Only attempts that reach a replica appear: outage and lost attempts
// never arrive.
type Arrival struct {
	// Replica indexes the replica the dispatch arrived at; Attempt is
	// the 1-based ladder attempt that made the dispatch.
	Replica int
	Attempt int
	// At is the arrival instant in model time; Wait and Service are the
	// priced queue wait and service time (both zero for rejections).
	At, Wait, Service time.Duration
	// Status is the dispatch's fate.
	Status ArrivalStatus
	// Reclaimable is, for abandoned arrivals, the service time not yet
	// executed at cancellation — work a cancel-on-win backend gets back
	// and a fire-and-forget backend burns anyway.
	Reclaimable time.Duration
}

package faults

import (
	"testing"
	"time"
)

// FuzzParseOutageSpec hammers the outage-spec grammar: whatever the
// input, the parser must not panic, and anything it accepts must be a
// well-formed outage — a periodic spec with 0 < down < every, or
// absolute windows with 0 ≤ start < end — that Options.Down can
// evaluate safely.
func FuzzParseOutageSpec(f *testing.F) {
	for _, seed := range []string{
		"6s/30s", "10s-20s, 40s-45s", "10s-20s,40s-45s",
		"", "30s/6s", "0s/30s", "junk", "5s-2s", "10s",
		"1ms/1s", "-5s-2s", "1s/1s", "1h-2h", "1s-2s,", "/",
		"9223372036854775807ns/1ns", "1s--2s", "1s/2s/3s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		every, down, windows, err := ParseOutageSpec(spec)
		if err != nil {
			if every != 0 || down != 0 || windows != nil {
				t.Fatalf("%q: error with non-zero results (every=%v down=%v windows=%v)", spec, every, down, windows)
			}
			return
		}
		if (every > 0) == (len(windows) > 0) {
			t.Fatalf("%q: accepted as both/neither periodic and windowed (every=%v windows=%v)", spec, every, windows)
		}
		if every > 0 && (down <= 0 || down >= every) {
			t.Fatalf("%q: accepted periodic spec with down=%v every=%v", spec, down, every)
		}
		for _, w := range windows {
			if w.Start < 0 || w.End <= w.Start {
				t.Fatalf("%q: accepted window %+v", spec, w)
			}
		}
		o := Options{Enabled: true, OutageEvery: every, OutageFor: down, Windows: windows}
		for _, now := range []time.Duration{0, every / 2, every, time.Hour} {
			o.Down(now) // must not panic or divide by zero
		}
	})
}

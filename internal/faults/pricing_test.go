package faults

import (
	"reflect"
	"testing"
	"time"

	"pocketcloudlets/internal/radio"
)

// repPricer prices every dispatch with a fixed per-replica admission,
// optionally rejecting the first rejectFirst attempts of every ladder.
type repPricer struct {
	adm         map[int]Admission
	rejectFirst int
}

func (f *repPricer) Price(replica int, at time.Duration, uid, qh, seq uint64, attempt int) Admission {
	if attempt <= f.rejectFirst {
		return Admission{Rejected: true}
	}
	return f.adm[replica]
}

// zeroPricer admits everything at zero cost — the Admission a disabled
// backend produces.
type zeroPricer struct{}

func (zeroPricer) Price(int, time.Duration, uint64, uint64, uint64, int) Admission {
	return Admission{}
}

// inert is an enabled injector with no failure sources: every attempt
// reaches the replica.
func inert() *Injector { return New(Options{Enabled: true}) }

func TestPlanMissPricesFinalExchange(t *testing.T) {
	pr := &repPricer{adm: map[int]Admission{2: {Wait: 100 * time.Millisecond, Service: 50 * time.Millisecond}}}
	pl := PlanMiss(inert(), RetryPolicy{}.WithDefaults(), radio.ThreeG(), pr, 2, 0, false, 1, 2, 1)
	if !pl.Success || pl.Attempts != 1 {
		t.Fatalf("clean priced miss failed: %+v", pl)
	}
	if pl.FinalQueueWait != 100*time.Millisecond || pl.FinalService != 50*time.Millisecond {
		t.Fatalf("final admission not carried: %+v", pl)
	}
	if pl.BackendWait != 0 || pl.Rejects != 0 {
		t.Fatalf("clean miss accrued failure pricing: %+v", pl)
	}
	want := []Arrival{{Replica: 2, Attempt: 1, Wait: 100 * time.Millisecond, Service: 50 * time.Millisecond, Status: ArrivalServed}}
	if !reflect.DeepEqual(pl.Arrivals, want) {
		t.Fatalf("ledger = %+v, want %+v", pl.Arrivals, want)
	}
	if pl.FinalBackend() != 150*time.Millisecond {
		t.Fatalf("FinalBackend = %v", pl.FinalBackend())
	}
}

func TestPlanMissRejectionRetries(t *testing.T) {
	pr := &repPricer{adm: map[int]Admission{0: {Service: time.Millisecond}}, rejectFirst: 2}
	pol := RetryPolicy{MaxAttempts: 4}.WithDefaults()
	pl := PlanMiss(inert(), pol, radio.ThreeG(), pr, 0, 0, false, 1, 2, 1)
	if !pl.Success || pl.Attempts != 3 || pl.Rejects != 2 {
		t.Fatalf("rejection ladder wrong: %+v", pl)
	}
	if pl.FailedWait == 0 || pl.FailedActive == 0 {
		t.Fatalf("rejected attempts cost no radio: %+v", pl)
	}
	if pl.BackendWait != 0 {
		t.Fatalf("rejections charged backend time: %+v", pl)
	}
	if len(pl.Arrivals) != 3 ||
		pl.Arrivals[0].Status != ArrivalRejected || pl.Arrivals[1].Status != ArrivalRejected ||
		pl.Arrivals[2].Status != ArrivalServed {
		t.Fatalf("ledger statuses wrong: %+v", pl.Arrivals)
	}
	// A ladder of nothing but rejections exhausts like any other failure.
	pr.rejectFirst = 99
	pl = PlanMiss(inert(), pol, radio.ThreeG(), pr, 0, 0, false, 1, 2, 1)
	if pl.Success || pl.Rejects != pl.Attempts {
		t.Fatalf("all-rejected ladder did not exhaust: %+v", pl)
	}
}

func TestPlanMissEngineErrorBurnsBackendTime(t *testing.T) {
	in := New(Options{Enabled: true, EngineErrProb: 1})
	pr := &repPricer{adm: map[int]Admission{0: {Wait: 2 * time.Second, Service: time.Second}}}
	pol := RetryPolicy{MaxAttempts: 2, Deadline: -1}.WithDefaults()
	pl := PlanMiss(in, pol, radio.ThreeG(), pr, 0, 0, false, 1, 2, 1)
	if pl.Success || pl.Attempts != 2 {
		t.Fatalf("always-erroring engine succeeded: %+v", pl)
	}
	if pl.BackendWait != 2*(2*time.Second+time.Second) {
		t.Fatalf("engine errors burned %v backend time, want 6s", pl.BackendWait)
	}
	if pl.LadderWait() != pl.FailedWait+pl.BackendWait {
		t.Fatalf("LadderWait inconsistent: %+v", pl)
	}
	if len(pl.Arrivals) != 2 || pl.Arrivals[0].Status != ArrivalServed {
		t.Fatalf("engine-error exchanges not booked as served: %+v", pl.Arrivals)
	}
}

// TestPlanMissZeroPricerByteIdentity is the refactor's safety rail at
// the planner level: a pricer that admits everything at zero cost must
// reproduce the nil-pricer (legacy) plan exactly, ledger aside.
func TestPlanMissZeroPricerByteIdentity(t *testing.T) {
	in := New(Options{Enabled: true, Seed: 7, LossProb: 0.3, EngineErrProb: 0.2,
		OutageEvery: 30 * time.Second, OutageFor: 5 * time.Second})
	pol := RetryPolicy{MaxAttempts: 4}.WithDefaults()
	p := radio.ThreeG()
	for seq := uint64(1); seq <= 200; seq++ {
		legacy := PlanMiss(in, pol, p, nil, 0, time.Duration(seq)*time.Second, seq%2 == 0, 7, 1234, seq)
		priced := PlanMiss(in, pol, p, zeroPricer{}, 0, time.Duration(seq)*time.Second, seq%2 == 0, 7, 1234, seq)
		priced.Arrivals = nil
		if !reflect.DeepEqual(legacy, priced) {
			t.Fatalf("seq %d: zero pricer diverges from nil pricer:\n  nil:  %+v\n  zero: %+v", seq, legacy, priced)
		}
	}
}

// TestPlanHedgedBackendTimeDecidesWinner: with pricing on, the winner
// is the earliest *answer*, so a congested primary loses to a clone on
// a fast replica even though the primary's exchange started first —
// and the loser's mid-service exchange is reclassified abandoned with
// its unexecuted service recorded as reclaimable.
func TestPlanHedgedBackendTimeDecidesWinner(t *testing.T) {
	injs := Replicas(inert(), 2)
	pol := RetryPolicy{}.WithDefaults()
	hp := HedgePolicy{CloneFactor: 2, Delay: time.Second}
	p := radio.ThreeG()
	slow := Admission{Service: 30 * time.Second}
	fast := Admission{Service: 10 * time.Millisecond}

	// Find a seq whose rotated primary is replica 0 (deterministic).
	var seq uint64
	for s := uint64(1); s < 64; s++ {
		if hedgeStart(2, 1, 2, s) == 0 {
			seq = s
			break
		}
	}
	pr := &repPricer{adm: map[int]Admission{0: slow, 1: fast}}
	hplan := PlanHedged(injs, pol, hp, p, pr, 0, 0, 1, 2, seq)
	if len(hplan.Launches) != 2 {
		t.Fatalf("want 2 launches, got %+v", hplan)
	}
	if hplan.Winner != 1 {
		t.Fatalf("fast clone did not win: %+v", hplan)
	}
	if hplan.Abandoned != 1 {
		t.Fatalf("slow primary not abandoned: %+v", hplan)
	}
	loser := hplan.Launches[0]
	if len(loser.Plan.Arrivals) != 1 || loser.Plan.Arrivals[0].Status != ArrivalAbandoned {
		t.Fatalf("loser ledger not reclassified: %+v", loser.Plan.Arrivals)
	}
	rec := loser.Plan.Arrivals[0].Reclaimable
	if rec <= 0 || rec >= 30*time.Second {
		t.Fatalf("reclaimable %v outside (0, 30s): the exchange was mid-service at cancel", rec)
	}

	// Legacy ordering check: with zero pricing, the primary's earlier
	// exchange start must win as before.
	pr = &repPricer{adm: map[int]Admission{}}
	hplan = PlanHedged(injs, pol, hp, p, pr, 0, 0, 1, 2, seq)
	if hplan.Winner != 0 {
		t.Fatalf("zero-priced hedge changed the legacy winner: %+v", hplan)
	}
}

// Package faults is the deterministic connectivity-fault model of the
// fleet serving layer. The paper's Section 1 argument for pocket
// cloudlets is precisely that the cellular path is slow *and
// unreliable* — multi-second radio wake-ups, dead zones, airplane mode
// — yet an un-faulted simulation never exercises the "unreliable"
// half. This package injects three failure classes into the cloud-miss
// path:
//
//   - Outage windows: intervals of model time during which the radio
//     cannot attach at all (a dead zone, or airplane mode), given
//     either as absolute windows or as a periodic duty cycle.
//   - Per-attempt loss: each radio exchange attempt is independently
//     dropped with a fixed probability (fades, handovers, congestion).
//   - Transient engine errors: the exchange reaches the cloud but the
//     engine answers with a retryable error (the 5xx class).
//
// Determinism is the design constraint everything here serves. Every
// fault decision is a pure function of the injector seed, the user,
// the query hash, the user's per-miss sequence number, the attempt
// index and the user's own model clock — never of wall time, goroutine
// interleaving or batch composition. A whole retry sequence is
// therefore *plannable*: PlanMiss simulates the attempt/backoff ladder
// analytically and returns the attempts taken, the model time and
// radio-active time burned by the failures, and whether the miss
// ultimately succeeded, all before any model state is touched. The
// fleet executes the plan against the device model afterwards, which
// is what makes per-user outcomes byte-identical run to run even with
// faults active (see internal/fleet's determinism tests).
package faults

import (
	"fmt"
	"strings"
	"time"

	"pocketcloudlets/internal/radio"
)

// Window is one absolute connectivity outage interval in model time:
// the radio cannot attach from Start (inclusive) to End (exclusive).
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Options configure the fault model. The zero value disables it.
type Options struct {
	// Enabled turns fault injection on. With Enabled set and every
	// other field zero the model is inert: the faulted serve path runs
	// but injects nothing, producing outcomes identical to a disabled
	// model (the fleet's zero-cost-when-off test relies on this).
	Enabled bool
	// Seed drives the loss and engine-error hashes. Independent of the
	// workload seed so fault scenarios can vary against a fixed load.
	Seed int64
	// LossProb is the probability that one radio exchange attempt is
	// dropped by the network, per attempt, in [0, 1).
	LossProb float64
	// EngineErrProb is the probability that one attempt reaches the
	// cloud but receives a transient engine error, per attempt.
	EngineErrProb float64
	// Windows are absolute outage intervals in model time.
	Windows []Window
	// OutageEvery and OutageFor describe a periodic duty cycle: the
	// first OutageFor of every OutageEvery period is an outage (a
	// commuter's daily dead zones). Both must be positive to apply.
	OutageEvery time.Duration
	OutageFor   time.Duration
	// OutagePhase shifts the duty cycle forward in time. Replica
	// derivation (ReplicaOptions) uses it to give each modeled backend
	// an independently phased outage schedule; zero keeps the legacy
	// alignment. Must be non-negative.
	OutagePhase time.Duration
}

// Active reports whether any fault is actually configured — Enabled
// with at least one non-zero failure source.
func (o Options) Active() bool {
	return o.Enabled &&
		(o.LossProb > 0 || o.EngineErrProb > 0 || len(o.Windows) > 0 ||
			(o.OutageEvery > 0 && o.OutageFor > 0))
}

// Down reports whether the radio is inside an outage at model time
// now. Pure function of the options and now.
func (o Options) Down(now time.Duration) bool {
	if o.OutageEvery > 0 && o.OutageFor > 0 && (now+o.OutagePhase)%o.OutageEvery < o.OutageFor {
		return true
	}
	for _, w := range o.Windows {
		if now >= w.Start && now < w.End {
			return true
		}
	}
	return false
}

// OutageShare returns the fraction of the duty-cycle period spent in
// outage (zero when no periodic outage is configured) — the headline
// severity knob of the availability experiments.
func (o Options) OutageShare() float64 {
	if o.OutageEvery <= 0 || o.OutageFor <= 0 {
		return 0
	}
	s := float64(o.OutageFor) / float64(o.OutageEvery)
	if s > 1 {
		return 1
	}
	return s
}

// ParseOutageSpec parses the cmd/loadtest -outage syntax. Two forms:
//
//	"6s/30s"           periodic duty cycle: down the first 6s of every 30s
//	"10s-20s,40s-45s"  absolute model-time outage windows
func ParseOutageSpec(spec string) (every, down time.Duration, windows []Window, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, 0, nil, fmt.Errorf("faults: empty outage spec")
	}
	if before, after, ok := strings.Cut(spec, "/"); ok {
		down, err = time.ParseDuration(strings.TrimSpace(before))
		if err != nil {
			return 0, 0, nil, fmt.Errorf("faults: outage spec %q: %w", spec, err)
		}
		every, err = time.ParseDuration(strings.TrimSpace(after))
		if err != nil {
			return 0, 0, nil, fmt.Errorf("faults: outage spec %q: %w", spec, err)
		}
		if down <= 0 || every <= 0 || down >= every {
			return 0, 0, nil, fmt.Errorf("faults: outage spec %q: want 0 < down < period", spec)
		}
		return every, down, nil, nil
	}
	for _, part := range strings.Split(spec, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return 0, 0, nil, fmt.Errorf("faults: outage window %q: want start-end", part)
		}
		w := Window{}
		if w.Start, err = time.ParseDuration(strings.TrimSpace(lo)); err != nil {
			return 0, 0, nil, fmt.Errorf("faults: outage window %q: %w", part, err)
		}
		if w.End, err = time.ParseDuration(strings.TrimSpace(hi)); err != nil {
			return 0, 0, nil, fmt.Errorf("faults: outage window %q: %w", part, err)
		}
		if w.Start < 0 {
			return 0, 0, nil, fmt.Errorf("faults: outage window %q: negative start", part)
		}
		if w.End <= w.Start {
			return 0, 0, nil, fmt.Errorf("faults: outage window %q: end before start", part)
		}
		windows = append(windows, w)
	}
	return 0, 0, windows, nil
}

// Injector answers fault questions for the serve path. All methods are
// pure (no internal state mutates), so an Injector is safe for
// unsynchronized concurrent use.
type Injector struct {
	opts Options
}

// New builds an injector from the options.
func New(o Options) *Injector { return &Injector{opts: o} }

// Options returns the injector's configuration.
func (in *Injector) Options() Options { return in.opts }

// RadioDown reports whether the radio is inside an outage at the
// user's model time now.
func (in *Injector) RadioDown(now time.Duration) bool { return in.opts.Down(now) }

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// roll hashes (seed, salt, uid, qh, seq, attempt) to a uniform float
// in [0, 1). seq is the user's miss sequence number, so repeats of the
// same query draw fresh outcomes instead of failing identically
// forever.
func (in *Injector) roll(salt, uid, qh, seq uint64, attempt int) float64 {
	x := mix(uint64(in.opts.Seed) ^ salt)
	x = mix(x ^ uid*0x9E3779B97F4A7C15)
	x = mix(x ^ qh)
	x = mix(x ^ seq*0xD1B54A32D192ED03)
	x = mix(x ^ uint64(attempt))
	return float64(x>>11) / float64(1<<53)
}

// LostAttempt reports whether the network drops attempt number attempt
// (1-based) of the user's seq-th cloud miss for query qh.
func (in *Injector) LostAttempt(uid, qh, seq uint64, attempt int) bool {
	return in.opts.LossProb > 0 && in.roll(0x10C5_D0BE_EF11_A7E5, uid, qh, seq, attempt) < in.opts.LossProb
}

// EngineError reports whether the cloud engine answers attempt number
// attempt with a transient (retryable) error.
func (in *Injector) EngineError(uid, qh, seq uint64, attempt int) bool {
	return in.opts.EngineErrProb > 0 && in.roll(0x5E_E7_1E_55_C0_FF_EE_01, uid, qh, seq, attempt) < in.opts.EngineErrProb
}

// Default retry-policy constants.
const (
	DefaultMaxAttempts    = 4
	DefaultBaseBackoff    = 500 * time.Millisecond
	DefaultMaxBackoff     = 8 * time.Second
	DefaultRetryDeadline  = 30 * time.Second
	DefaultWallPauseScale = 0.001
	DefaultMaxWallPause   = 25 * time.Millisecond
)

// RetryPolicy governs how the fleet retries a failed cloud exchange:
// capped exponential backoff in model time, bounded by a per-miss
// attempt cap and a model-time deadline. The wall-pause fields couple
// the *modeled* backoff to *real* serving time, so a load test under
// faults actually feels retries as reduced throughput; the per-shard
// circuit breaker (internal/fleet) exists to shed that real cost when
// a link is persistently dead.
type RetryPolicy struct {
	// MaxAttempts caps radio attempts per cloud miss (first try
	// included). Zero selects DefaultMaxAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseBackoff is the pause after the first failed attempt; each
	// further failure doubles it up to MaxBackoff. Zeros select the
	// defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Deadline bounds the model time one miss may spend failing and
	// backing off before it stops retrying. Zero selects
	// DefaultRetryDeadline; negative means no deadline.
	Deadline time.Duration
	// WallPauseScale converts a miss's modeled failure wait into a real
	// pause of the serving worker (scale × modeled wait, capped at
	// MaxWallPause). Zero selects DefaultWallPauseScale; negative
	// disables real pauses entirely (deterministic tests use this).
	WallPauseScale float64
	// MaxWallPause caps one real pause. Zero selects DefaultMaxWallPause.
	MaxWallPause time.Duration
}

// WithDefaults resolves zero fields to the default policy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Deadline == 0 {
		p.Deadline = DefaultRetryDeadline
	}
	if p.WallPauseScale == 0 {
		p.WallPauseScale = DefaultWallPauseScale
	}
	if p.MaxWallPause <= 0 {
		p.MaxWallPause = DefaultMaxWallPause
	}
	return p
}

// Backoff returns the model-time pause after failed attempt number
// attempt (1-based): BaseBackoff doubled per failure, capped at
// MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	b := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		b *= 2
		if b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if b > p.MaxBackoff {
		return p.MaxBackoff
	}
	return b
}

// WallPause converts a modeled failure wait into the real pause the
// serving worker takes.
func (p RetryPolicy) WallPause(modelWait time.Duration) time.Duration {
	if p.WallPauseScale <= 0 || modelWait <= 0 {
		return 0
	}
	d := time.Duration(float64(modelWait) * p.WallPauseScale)
	if d > p.MaxWallPause {
		d = p.MaxWallPause
	}
	return d
}

// Plan is the analytically simulated outcome of one cloud miss's
// attempt/backoff ladder, before any model state is touched.
type Plan struct {
	// Attempts is how many radio attempts the miss made (≥ 1).
	Attempts int
	// Success reports whether the final attempt got through; false
	// means the miss exhausted its policy and must degrade.
	Success bool
	// FinalWarm reports whether the radio is warm (in its tail) when
	// the successful exchange starts — on the first attempt this is
	// just the link's state, after failures it depends on the last
	// backoff versus the tail duration.
	FinalWarm bool
	// FailedWait is the model time burned by failed attempts and the
	// backoffs between attempts; FailedActive is the radio-active part
	// (the wake-ups and handshakes of the failed attempts — energy the
	// device pays for nothing, the tentpole's "you pay for the radio
	// even when the network drops you").
	FailedWait   time.Duration
	FailedActive time.Duration
	// BackendWait is the modeled backend time — queue wait plus service —
	// burned by failed attempts' exchanges (an engine error still queued
	// and got served before it answered 5xx). It advances the ladder
	// clock alongside FailedWait but is tracked separately: it is server
	// time, not radio time. Zero without a Pricer.
	BackendWait time.Duration
	// FinalQueueWait and FinalService are the successful exchange's
	// priced admission: the queue delay before its service began and the
	// service time it consumed. The fleet charges them on top of the
	// normal exchange cost, the way it charges hedge wait. Zero without
	// a Pricer.
	FinalQueueWait time.Duration
	FinalService   time.Duration
	// Rejects counts dispatches the replica's bounded queue turned away —
	// failures that cost a radio attempt but no backend time.
	Rejects int
	// Arrivals is the priced-dispatch ledger: one entry per attempt that
	// reached the replica, in attempt order, for the fleet to book into
	// the backend's accounting after the plan replays. Nil without a
	// Pricer (the legacy path allocates nothing).
	Arrivals []Arrival
	// Backoffs are the pauses taken between attempts, in order, so the
	// fleet can replay the exact failure sequence against the device
	// model (failed attempt i is followed by Backoffs[i-1] when present).
	Backoffs []time.Duration
}

// Failures is the number of failed attempts in the plan.
func (pl Plan) Failures() int {
	if pl.Success {
		return pl.Attempts - 1
	}
	return pl.Attempts
}

// LadderWait is the model time the ladder burned before its final
// exchange: failed waits, backoffs, and the backend time of failed
// exchanges. Without a Pricer it equals FailedWait.
func (pl Plan) LadderWait() time.Duration { return pl.FailedWait + pl.BackendWait }

// FinalBackend is the backend time of the successful exchange: queue
// wait plus service. Zero without a Pricer or on an exhausted ladder.
func (pl Plan) FinalBackend() time.Duration { return pl.FinalQueueWait + pl.FinalService }

// PlanMiss simulates the whole retry ladder of one cloud miss as an
// admission planner: at each attempt the radio may be inside an outage
// window (evaluated against the user's advancing model clock) or the
// attempt may be lost — either way it never reaches a replica. An
// attempt that does reach replica is priced against the backend model:
// the replica's bounded queue may reject it outright (a failed attempt
// that costs the radio but no server time), or admit it with a queue
// wait and service time — after which the engine may still answer a
// transient error, in which case the exchange's backend time is burned
// on the ladder clock (BackendWait). Each failure costs the radio's
// session overhead (wake-up when cold, plus the handshake) and is
// followed by the policy's backoff, which can itself carry the clock
// out of an outage window — retrying *escapes* dead zones, which is
// the point of backing off. The ladder ends on success, on the attempt
// cap, or when the model-time deadline passes.
//
// now is the user's model clock and warm the user link's state at the
// start; uid, qh and seq key the pure fault hashes; replica indexes
// the backend replica this ladder dispatches to. A nil injector plans
// a clean single-attempt success and skips pricing (the fleet gates
// backends on the fault model); a nil pricer admits everything at zero
// cost, reproducing the legacy planner byte-for-byte.
func PlanMiss(in *Injector, pol RetryPolicy, p radio.Params, pr Pricer, replica int, now time.Duration, warm bool, uid, qh, seq uint64) Plan {
	pl := Plan{FinalWarm: warm}
	if in == nil {
		pl.Attempts, pl.Success = 1, true
		return pl
	}
	deadline := now + pol.Deadline
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		pl.Attempts = attempt
		lost := in.RadioDown(now) || in.LostAttempt(uid, qh, seq, attempt)
		var backendTime time.Duration
		if !lost {
			var adm Admission
			if pr != nil {
				adm = pr.Price(replica, now, uid, qh, seq, attempt)
			}
			switch {
			case adm.Rejected:
				pl.Rejects++
				pl.Arrivals = append(pl.Arrivals, Arrival{
					Replica: replica, Attempt: attempt, At: now, Status: ArrivalRejected,
				})
			case !in.EngineError(uid, qh, seq, attempt):
				pl.Success, pl.FinalWarm = true, warm
				pl.FinalQueueWait, pl.FinalService = adm.Wait, adm.Service
				if pr != nil {
					pl.Arrivals = append(pl.Arrivals, Arrival{
						Replica: replica, Attempt: attempt, At: now,
						Wait: adm.Wait, Service: adm.Service, Status: ArrivalServed,
					})
				}
				return pl
			default:
				// Engine error: the replica queued and served the exchange
				// before answering 5xx — the backend time is spent.
				backendTime = adm.Wait + adm.Service
				pl.BackendWait += backendTime
				if pr != nil {
					pl.Arrivals = append(pl.Arrivals, Arrival{
						Replica: replica, Attempt: attempt, At: now,
						Wait: adm.Wait, Service: adm.Service, Status: ArrivalServed,
					})
				}
			}
		}
		cost := radio.FailedAttemptCost(p, warm)
		pl.FailedWait += cost
		pl.FailedActive += cost
		now += cost + backendTime
		warm = true // the failed attempt left the radio promoted
		if attempt == pol.MaxAttempts {
			break
		}
		if pol.Deadline >= 0 && now >= deadline {
			break
		}
		b := pol.Backoff(attempt)
		pl.Backoffs = append(pl.Backoffs, b)
		pl.FailedWait += b
		now += b
		warm = b < p.TailDuration
	}
	pl.FinalWarm = warm
	return pl
}

package faults

import (
	"testing"
	"time"

	"pocketcloudlets/internal/radio"
)

func TestOptionsActive(t *testing.T) {
	if (Options{}).Active() {
		t.Error("zero options should be inactive")
	}
	if (Options{Enabled: true}).Active() {
		t.Error("enabled-but-inert options should be inactive")
	}
	for _, o := range []Options{
		{Enabled: true, LossProb: 0.1},
		{Enabled: true, EngineErrProb: 0.1},
		{Enabled: true, Windows: []Window{{Start: 0, End: time.Second}}},
		{Enabled: true, OutageEvery: 30 * time.Second, OutageFor: 6 * time.Second},
	} {
		if !o.Active() {
			t.Errorf("%+v should be active", o)
		}
	}
	if (Options{LossProb: 0.5}).Active() {
		t.Error("disabled options should be inactive regardless of probabilities")
	}
}

func TestDown(t *testing.T) {
	o := Options{
		OutageEvery: 30 * time.Second,
		OutageFor:   6 * time.Second,
		Windows:     []Window{{Start: 100 * time.Second, End: 110 * time.Second}},
	}
	cases := []struct {
		now  time.Duration
		want bool
	}{
		{0, true},                  // duty cycle starts down
		{5 * time.Second, true},    // still inside the first 6s
		{6 * time.Second, false},   // boundary is exclusive
		{29 * time.Second, false},  // up for the rest of the period
		{30 * time.Second, true},   // next period starts down
		{102 * time.Second, true},  // duty is up (102%30=12) but the window covers it
		{109 * time.Second, true},  // still inside the window
		{110 * time.Second, false}, // window end is exclusive; duty up (110%30=20)
	}
	for _, c := range cases {
		if got := o.Down(c.now); got != c.want {
			t.Errorf("Down(%v) = %v, want %v", c.now, got, c.want)
		}
	}
	if (Options{}).Down(0) {
		t.Error("no outage configured should never be down")
	}
}

func TestOutageShare(t *testing.T) {
	o := Options{OutageEvery: 30 * time.Second, OutageFor: 6 * time.Second}
	if got := o.OutageShare(); got != 0.2 {
		t.Errorf("OutageShare = %g, want 0.2", got)
	}
	if got := (Options{}).OutageShare(); got != 0 {
		t.Errorf("zero options OutageShare = %g, want 0", got)
	}
}

func TestParseOutageSpec(t *testing.T) {
	every, down, windows, err := ParseOutageSpec("6s/30s")
	if err != nil {
		t.Fatal(err)
	}
	if every != 30*time.Second || down != 6*time.Second || windows != nil {
		t.Errorf("periodic spec parsed as every=%v down=%v windows=%v", every, down, windows)
	}

	every, down, windows, err = ParseOutageSpec("10s-20s, 40s-45s")
	if err != nil {
		t.Fatal(err)
	}
	if every != 0 || down != 0 || len(windows) != 2 {
		t.Fatalf("window spec parsed as every=%v down=%v windows=%v", every, down, windows)
	}
	if windows[0] != (Window{Start: 10 * time.Second, End: 20 * time.Second}) ||
		windows[1] != (Window{Start: 40 * time.Second, End: 45 * time.Second}) {
		t.Errorf("windows = %v", windows)
	}

	for _, bad := range []string{"", "30s/6s", "0s/30s", "junk", "5s-2s", "10s", "1s/1s", "-5s-2s"} {
		if _, _, _, err := ParseOutageSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// TestRollsArePure verifies the fault hashes are pure and keyed on
// every input: same inputs agree across injectors with the same seed,
// and each of uid/qh/seq/attempt/seed changes the stream.
func TestRollsArePure(t *testing.T) {
	a := New(Options{Enabled: true, Seed: 42, LossProb: 0.5})
	b := New(Options{Enabled: true, Seed: 42, LossProb: 0.5})
	for attempt := 1; attempt <= 8; attempt++ {
		if a.LostAttempt(1, 2, 3, attempt) != b.LostAttempt(1, 2, 3, attempt) {
			t.Fatal("same-seed injectors disagree")
		}
	}
	// With a 50% probability, 64 draws that never differ across any
	// varied key would be astronomically unlikely.
	varies := func(f func(i uint64) bool) bool {
		first := f(0)
		for i := uint64(1); i < 64; i++ {
			if f(i) != first {
				return true
			}
		}
		return false
	}
	if !varies(func(i uint64) bool { return a.LostAttempt(i, 2, 3, 1) }) {
		t.Error("uid does not vary the loss roll")
	}
	if !varies(func(i uint64) bool { return a.LostAttempt(1, i, 3, 1) }) {
		t.Error("qh does not vary the loss roll")
	}
	if !varies(func(i uint64) bool { return a.LostAttempt(1, 2, i, 1) }) {
		t.Error("seq does not vary the loss roll")
	}
	if !varies(func(i uint64) bool { return a.LostAttempt(1, 2, 3, int(i)+1) }) {
		t.Error("attempt does not vary the loss roll")
	}
	c := New(Options{Enabled: true, Seed: 43, LossProb: 0.5})
	if !varies(func(i uint64) bool { return a.LostAttempt(i, 2, 3, 1) != c.LostAttempt(i, 2, 3, 1) }) {
		t.Error("seed does not vary the loss roll")
	}
	both := New(Options{Enabled: true, Seed: 42, LossProb: 0.5, EngineErrProb: 0.5})
	if !varies(func(i uint64) bool { return both.LostAttempt(i, 2, 3, 1) != both.EngineError(i, 2, 3, 1) }) {
		t.Error("loss and engine-error streams look identical; salts not applied?")
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != DefaultMaxAttempts || p.BaseBackoff != DefaultBaseBackoff ||
		p.MaxBackoff != DefaultMaxBackoff || p.Deadline != DefaultRetryDeadline ||
		p.WallPauseScale != DefaultWallPauseScale || p.MaxWallPause != DefaultMaxWallPause {
		t.Errorf("defaults not applied: %+v", p)
	}
	p = RetryPolicy{Deadline: -1, WallPauseScale: -1}.WithDefaults()
	if p.Deadline != -1 {
		t.Error("negative deadline (no deadline) must survive WithDefaults")
	}
	if p.WallPauseScale != -1 {
		t.Error("negative wall-pause scale (disabled) must survive WithDefaults")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 500 * time.Millisecond, MaxBackoff: 3 * time.Second}.WithDefaults()
	want := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 3 * time.Second, 3 * time.Second}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestWallPause(t *testing.T) {
	p := RetryPolicy{WallPauseScale: 0.001, MaxWallPause: 25 * time.Millisecond}.WithDefaults()
	if got := p.WallPause(10 * time.Second); got != 10*time.Millisecond {
		t.Errorf("WallPause(10s) = %v, want 10ms", got)
	}
	if got := p.WallPause(time.Hour); got != 25*time.Millisecond {
		t.Errorf("WallPause(1h) = %v, want the 25ms cap", got)
	}
	if got := (RetryPolicy{WallPauseScale: -1}).WallPause(time.Hour); got != 0 {
		t.Errorf("disabled scale should pause 0, got %v", got)
	}
}

func TestPlanMissNilInjector(t *testing.T) {
	pl := PlanMiss(nil, RetryPolicy{}.WithDefaults(), radio.ThreeG(), nil, 0, 0, true, 1, 2, 3)
	if pl.Attempts != 1 || !pl.Success || !pl.FinalWarm || pl.FailedWait != 0 || len(pl.Backoffs) != 0 {
		t.Errorf("nil injector should plan a clean warm success, got %+v", pl)
	}
}

// TestPlanMissPermanentOutage pins the full-ladder arithmetic: with the
// radio permanently down every attempt fails, FailedWait is the sum of
// the per-attempt session overheads plus the backoffs, and the Backoffs
// slice has exactly Failures()-1 entries (no backoff after the last).
func TestPlanMissPermanentOutage(t *testing.T) {
	in := New(Options{Enabled: true, Windows: []Window{{Start: 0, End: time.Hour}}})
	p := radio.ThreeG()
	pol := RetryPolicy{MaxAttempts: 3, Deadline: -1}.WithDefaults()
	pl := PlanMiss(in, pol, p, nil, 0, 0, false, 1, 2, 1)
	if pl.Success {
		t.Fatal("permanent outage should exhaust the ladder")
	}
	if pl.Attempts != 3 || pl.Failures() != 3 {
		t.Fatalf("Attempts = %d, Failures = %d, want 3, 3", pl.Attempts, pl.Failures())
	}
	if len(pl.Backoffs) != 2 {
		t.Fatalf("Backoffs = %v, want exactly 2 entries", pl.Backoffs)
	}
	// First attempt cold, later attempts inherit warmth from the failed
	// session unless the backoff outlives the tail.
	wantActive := radio.FailedAttemptCost(p, false)
	for _, b := range pl.Backoffs {
		wantActive += radio.FailedAttemptCost(p, b < p.TailDuration)
	}
	if pl.FailedActive != wantActive {
		t.Errorf("FailedActive = %v, want %v", pl.FailedActive, wantActive)
	}
	wantWait := wantActive
	for _, b := range pl.Backoffs {
		wantWait += b
	}
	if pl.FailedWait != wantWait {
		t.Errorf("FailedWait = %v, want %v", pl.FailedWait, wantWait)
	}
	if pl.FinalWarm != (pl.Backoffs[len(pl.Backoffs)-1] < p.TailDuration) {
		t.Errorf("FinalWarm = %v inconsistent with last backoff %v", pl.FinalWarm, pl.Backoffs[len(pl.Backoffs)-1])
	}
}

// TestPlanMissEscapesOutage verifies that backing off moves the model
// clock across an outage boundary: an outage covering only the first
// attempt fails once, then succeeds on the retry.
func TestPlanMissEscapesOutage(t *testing.T) {
	p := radio.ThreeG()
	// Window ends just after the first attempt's failure cost begins;
	// the backoff carries the clock beyond it.
	in := New(Options{Enabled: true, Windows: []Window{{Start: 0, End: time.Millisecond}}})
	pol := RetryPolicy{MaxAttempts: 4}.WithDefaults()
	pl := PlanMiss(in, pol, p, nil, 0, 0, false, 1, 2, 1)
	if !pl.Success || pl.Attempts != 2 {
		t.Fatalf("plan = %+v, want success on attempt 2", pl)
	}
	if pl.Failures() != 1 || len(pl.Backoffs) != 1 {
		t.Errorf("Failures = %d, Backoffs = %v, want 1 failure with 1 backoff", pl.Failures(), pl.Backoffs)
	}
	if pl.FailedActive != radio.FailedAttemptCost(p, false) {
		t.Errorf("FailedActive = %v, want one cold failed attempt", pl.FailedActive)
	}
}

// TestPlanMissDeadline verifies the model-time deadline stops the
// ladder before the attempt cap.
func TestPlanMissDeadline(t *testing.T) {
	in := New(Options{Enabled: true, Windows: []Window{{Start: 0, End: time.Hour}}})
	p := radio.ThreeG()
	// One failed attempt (~3.9s for cold 3G) blows a 1s deadline: the
	// ladder must stop at 1 attempt with no backoff taken.
	pol := RetryPolicy{MaxAttempts: 10, Deadline: time.Second}.WithDefaults()
	pl := PlanMiss(in, pol, p, nil, 0, 0, false, 1, 2, 1)
	if pl.Success || pl.Attempts != 1 || len(pl.Backoffs) != 0 {
		t.Errorf("plan = %+v, want 1 exhausted attempt with no backoff", pl)
	}
	// Negative deadline means no deadline: the full cap is used.
	pol = RetryPolicy{MaxAttempts: 10, Deadline: -1}.WithDefaults()
	pl = PlanMiss(in, pol, p, nil, 0, 0, false, 1, 2, 1)
	if pl.Attempts != 10 {
		t.Errorf("no-deadline plan took %d attempts, want 10", pl.Attempts)
	}
}

// TestPlanMissDeterministic runs the same plan twice and requires
// byte-identical results — the foundation of the fleet's determinism.
func TestPlanMissDeterministic(t *testing.T) {
	in := New(Options{
		Enabled: true, Seed: 9, LossProb: 0.4, EngineErrProb: 0.2,
		OutageEvery: 20 * time.Second, OutageFor: 4 * time.Second,
	})
	pol := RetryPolicy{}.WithDefaults()
	p := radio.ThreeG()
	for seq := uint64(1); seq < 50; seq++ {
		a := PlanMiss(in, pol, p, nil, 0, time.Duration(seq)*time.Second, seq%2 == 0, 7, 1234, seq)
		b := PlanMiss(in, pol, p, nil, 0, time.Duration(seq)*time.Second, seq%2 == 0, 7, 1234, seq)
		if a.Attempts != b.Attempts || a.Success != b.Success || a.FinalWarm != b.FinalWarm ||
			a.FailedWait != b.FailedWait || a.FailedActive != b.FailedActive || len(a.Backoffs) != len(b.Backoffs) {
			t.Fatalf("seq %d: plans differ: %+v vs %+v", seq, a, b)
		}
	}
}

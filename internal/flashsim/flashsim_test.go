package flashsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultsFilled(t *testing.T) {
	d := NewDevice(Params{})
	def := DefaultParams()
	if d.Params() != def {
		t.Errorf("zero params not filled with defaults: %+v", d.Params())
	}
}

func TestReadCostPageGranularity(t *testing.T) {
	d := NewDevice(Params{PageSize: 2048, PageReadLatency: 100 * time.Microsecond})
	cases := []struct {
		bytes int
		pages int64
	}{{0, 0}, {1, 1}, {2048, 1}, {2049, 2}, {10000, 5}}
	for _, c := range cases {
		d.ResetStats()
		got := d.ReadCost(c.bytes)
		want := time.Duration(c.pages) * 100 * time.Microsecond
		if got != want {
			t.Errorf("ReadCost(%d) = %v, want %v", c.bytes, got, want)
		}
		if d.Stats().PageReads != c.pages {
			t.Errorf("ReadCost(%d): %d page reads, want %d", c.bytes, d.Stats().PageReads, c.pages)
		}
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	d := NewDevice(Params{})
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return d.ReadCost(x) <= d.ReadCost(y) && d.WriteCost(x) <= d.WriteCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRewriteChargesErases(t *testing.T) {
	d := NewDevice(Params{})
	d.RewriteCost(1)
	if d.Stats().BlockErases != 1 {
		t.Errorf("rewrite of 1 byte: %d erases, want 1", d.Stats().BlockErases)
	}
	d.ResetStats()
	// 64 pages/block * 2048 B/page = 128 KiB per block; 300 KiB -> 3 blocks.
	d.RewriteCost(300 * 1024)
	if d.Stats().BlockErases != 3 {
		t.Errorf("rewrite of 300 KiB: %d erases, want 3", d.Stats().BlockErases)
	}
}

func TestAllocatedBytesRounding(t *testing.T) {
	d := NewDevice(Params{AllocUnit: 4096})
	cases := []struct {
		size int
		want int64
	}{{0, 0}, {-4, 0}, {1, 4096}, {500, 4096}, {4096, 4096}, {4097, 8192}}
	for _, c := range cases {
		if got := d.AllocatedBytes(c.size); got != c.want {
			t.Errorf("AllocatedBytes(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// TestPaperFragmentationClaim reproduces the Section 5.2.2 observation:
// a 500-byte search result stored as its own file occupies 4, 8 or 16
// times its size depending on the allocation unit.
func TestPaperFragmentationClaim(t *testing.T) {
	for _, unit := range []int{2048, 4096, 8192} {
		d := NewDevice(Params{AllocUnit: unit})
		got := d.AllocatedBytes(500)
		if got != int64(unit) {
			t.Errorf("unit %d: allocated %d, want %d", unit, got, unit)
		}
		if factor := got / 500; factor < 4 || factor > 16 {
			t.Errorf("unit %d: expansion factor %d outside the paper's 4-16x", unit, factor)
		}
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	base := NewDevice(Params{}).ReadCost(2048)
	d1 := NewDevice(Params{JitterFrac: 0.2, Seed: 7})
	d2 := NewDevice(Params{JitterFrac: 0.2, Seed: 7})
	for i := 0; i < 100; i++ {
		a := d1.ReadCost(2048)
		b := d2.ReadCost(2048)
		if a != b {
			t.Fatal("jitter not deterministic for equal seeds")
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if a < lo || a > hi {
			t.Fatalf("jittered latency %v outside [%v, %v]", a, lo, hi)
		}
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs := NewFileStore(NewDevice(Params{}))
	if fs.Exists("a") {
		t.Fatal("file should not exist yet")
	}
	fs.Write("a", []byte("hello"))
	fs.Append("a", []byte(" world"))
	data, lat, err := fs.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("hello world")) {
		t.Errorf("read %q, want %q", data, "hello world")
	}
	if lat <= 0 {
		t.Error("read latency should be positive")
	}
	if sz, _ := fs.Size("a"); sz != 11 {
		t.Errorf("size = %d, want 11", sz)
	}
}

func TestFileStoreReadAt(t *testing.T) {
	fs := NewFileStore(NewDevice(Params{}))
	fs.Write("f", []byte("0123456789"))
	data, _, err := fs.ReadAt("f", 3, 4)
	if err != nil || string(data) != "3456" {
		t.Errorf("ReadAt(3,4) = %q, %v", data, err)
	}
	data, _, err = fs.ReadAt("f", 8, 100) // past end: truncated
	if err != nil || string(data) != "89" {
		t.Errorf("ReadAt(8,100) = %q, %v", data, err)
	}
	if _, _, err := fs.ReadAt("f", 11, 1); err == nil {
		t.Error("ReadAt past end offset should fail")
	}
	if _, _, err := fs.ReadAt("missing", 0, 1); err == nil {
		t.Error("ReadAt on missing file should fail")
	}
}

func TestFileStoreMissingFileErrors(t *testing.T) {
	fs := NewFileStore(NewDevice(Params{}))
	if _, _, err := fs.Read("nope"); err == nil {
		t.Error("Read of missing file should fail")
	} else {
		var nx *ErrNotExist
		if !errors.As(err, &nx) || nx.Name != "nope" {
			t.Errorf("want ErrNotExist{nope}, got %v", err)
		}
	}
	if err := fs.Delete("nope"); err == nil {
		t.Error("Delete of missing file should fail")
	}
}

func TestFileStoreAccounting(t *testing.T) {
	fs := NewFileStore(NewDevice(Params{AllocUnit: 4096}))
	fs.Write("a", make([]byte, 500))
	fs.Write("b", make([]byte, 500))
	fs.Write("c", make([]byte, 9000))
	if got := fs.LogicalBytes(); got != 10000 {
		t.Errorf("logical = %d, want 10000", got)
	}
	// a: 4096, b: 4096, c: 12288 -> 20480 allocated.
	if got := fs.AllocatedBytes(); got != 20480 {
		t.Errorf("allocated = %d, want 20480", got)
	}
	if got := fs.FragmentationBytes(); got != 10480 {
		t.Errorf("fragmentation = %d, want 10480", got)
	}
	if err := fs.Delete("c"); err != nil {
		t.Fatal(err)
	}
	if got := fs.LogicalBytes(); got != 1000 {
		t.Errorf("logical after delete = %d, want 1000", got)
	}
}

func TestFragmentationProperties(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := NewFileStore(NewDevice(Params{AllocUnit: 4096}))
		for i, s := range sizes {
			fs.Write(string(rune('a'+i%26))+string(rune('0'+i%10)), make([]byte, int(s)%5000))
		}
		frag := fs.FragmentationBytes()
		// Slack is non-negative and below one unit per file.
		return frag >= 0 && frag < int64(len(fs.Names())+1)*4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNamesSorted(t *testing.T) {
	fs := NewFileStore(NewDevice(Params{}))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		fs.Write(n, []byte("x"))
	}
	names := fs.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	d := NewDevice(Params{})
	before := d.Stats().BusyTime
	d.OpenCost()
	d.ReadCost(5000)
	d.WriteCost(100)
	if d.Stats().BusyTime <= before {
		t.Error("busy time did not accumulate")
	}
}

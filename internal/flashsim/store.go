package flashsim

import (
	"fmt"
	"sort"
	"time"
)

// FileStore is a simulated flat filesystem on a flash Device. It holds
// file contents in memory while charging modeled flash latencies for
// every operation and accounting allocation slack per file.
//
// The PocketSearch result database (internal/resultdb) and the cache
// patch mechanism (internal/updater) are built on this store.
type FileStore struct {
	dev   *Device
	files map[string][]byte
}

// NewFileStore creates an empty store on the given device.
func NewFileStore(dev *Device) *FileStore {
	return &FileStore{dev: dev, files: make(map[string][]byte)}
}

// Device returns the underlying flash device.
func (fs *FileStore) Device() *Device { return fs.dev }

// ErrNotExist reports that a named file is absent from the store.
type ErrNotExist struct{ Name string }

func (e *ErrNotExist) Error() string { return fmt.Sprintf("flashsim: file %q does not exist", e.Name) }

// Exists reports whether the named file exists. It charges no latency:
// existence checks hit the in-DRAM filesystem metadata.
func (fs *FileStore) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Size returns the logical size of the named file, or an error if it
// does not exist.
func (fs *FileStore) Size(name string) (int, error) {
	data, ok := fs.files[name]
	if !ok {
		return 0, &ErrNotExist{name}
	}
	return len(data), nil
}

// Write replaces the named file's contents, creating it if needed, and
// returns the modeled latency of the operation.
func (fs *FileStore) Write(name string, data []byte) time.Duration {
	t := fs.dev.OpenCost()
	if _, existed := fs.files[name]; existed {
		t += fs.dev.RewriteCost(len(data))
	} else {
		t += fs.dev.WriteCost(len(data))
	}
	fs.files[name] = append([]byte(nil), data...)
	return t
}

// Append adds data to the end of the named file, creating it if needed,
// and returns the modeled latency. Appends program only the new pages.
func (fs *FileStore) Append(name string, data []byte) time.Duration {
	t := fs.dev.OpenCost() + fs.dev.WriteCost(len(data))
	fs.files[name] = append(fs.files[name], data...)
	return t
}

// Read returns the full contents of the named file and the modeled
// latency (open plus per-page reads).
func (fs *FileStore) Read(name string) ([]byte, time.Duration, error) {
	data, ok := fs.files[name]
	if !ok {
		return nil, 0, &ErrNotExist{name}
	}
	t := fs.dev.OpenCost() + fs.dev.ReadCost(len(data))
	return append([]byte(nil), data...), t, nil
}

// ReadAt returns n bytes starting at off from the named file, charging
// open cost plus reads for the touched pages only. Reads past the end
// of the file are truncated.
func (fs *FileStore) ReadAt(name string, off, n int) ([]byte, time.Duration, error) {
	data, ok := fs.files[name]
	if !ok {
		return nil, 0, &ErrNotExist{name}
	}
	if off < 0 || off > len(data) {
		return nil, 0, fmt.Errorf("flashsim: offset %d out of range for %q (size %d)", off, name, len(data))
	}
	end := off + n
	if n < 0 || end > len(data) {
		end = len(data)
	}
	t := fs.dev.OpenCost() + fs.dev.ReadCost(end-off)
	return append([]byte(nil), data[off:end]...), t, nil
}

// Peek returns the named file's contents without charging any device
// cost. It is intended for layers (such as internal/resultdb) that
// model their own access costs explicitly and only need the bytes.
// The returned slice is a copy.
func (fs *FileStore) Peek(name string) ([]byte, bool) {
	data, ok := fs.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// PeekRef is Peek without the copy: it returns a read-only view of the
// named file's stored bytes. The view is valid until the file is next
// written, appended to, or deleted — Write/ReplaceSilently install a
// fresh slice and Append may grow in place, so a caller must drop its
// view whenever it performs any mutation of the file
// (internal/resultdb's file cache invalidates on its single write
// funnel). Callers must not modify the returned slice.
func (fs *FileStore) PeekRef(name string) ([]byte, bool) {
	data, ok := fs.files[name]
	return data, ok
}

// ReplaceSilently sets the named file's contents without charging any
// device cost, for layers that charge their own modeled latencies.
func (fs *FileStore) ReplaceSilently(name string, data []byte) {
	fs.files[name] = append([]byte(nil), data...)
}

// Delete removes the named file. Deleting a missing file is an error.
func (fs *FileStore) Delete(name string) error {
	if _, ok := fs.files[name]; !ok {
		return &ErrNotExist{name}
	}
	delete(fs.files, name)
	return nil
}

// Names returns the stored file names in sorted order.
func (fs *FileStore) Names() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LogicalBytes is the sum of file sizes.
func (fs *FileStore) LogicalBytes() int64 {
	var total int64
	for _, d := range fs.files {
		total += int64(len(d))
	}
	return total
}

// AllocatedBytes is the flash space the files occupy after rounding
// each up to the allocation unit.
func (fs *FileStore) AllocatedBytes() int64 {
	var total int64
	for _, d := range fs.files {
		total += fs.dev.AllocatedBytes(len(d))
	}
	return total
}

// FragmentationBytes is the allocation slack: allocated minus logical.
// It grows with the number of files, which is the cost side of the
// paper's file-count tradeoff (Section 5.2.2).
func (fs *FileStore) FragmentationBytes() int64 {
	return fs.AllocatedBytes() - fs.LogicalBytes()
}

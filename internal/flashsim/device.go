// Package flashsim models the NAND flash storage of a mobile device:
// page-granularity reads and programs, block-granularity erases, and a
// small file-store layer with cluster-granularity allocation.
//
// The simulator is a timing and capacity model, not a functional FTL:
// operations complete immediately in wall-clock terms but report the
// modeled latency they would take on the device, and the file store
// accounts for the allocation slack ("flash fragmentation" in the
// paper's terms, Section 5.2.2) that storing many small files incurs.
// Both quantities drive the paper's Figure 8 (flash overhead of the
// PocketSearch cache) and Figure 12 (retrieval time vs. number of
// database files).
package flashsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Params describes the flash part and the filesystem stack above it.
// Latencies are effective end-to-end values as seen by an application
// on a late-2000s smartphone (the paper's prototype platform), not raw
// chip timings: the filesystem, driver and bus overheads are folded in.
type Params struct {
	// PageSize is the read/program granularity in bytes.
	PageSize int
	// PagesPerBlock is the number of pages per erase block.
	PagesPerBlock int
	// AllocUnit is the filesystem allocation granularity in bytes; a
	// file of any smaller size still occupies one full unit. The paper
	// cites 2, 4 or 8 KB depending on the chip.
	AllocUnit int
	// PageReadLatency is the effective time to read one page through
	// the filesystem stack.
	PageReadLatency time.Duration
	// PageProgramLatency is the effective time to program one page.
	PageProgramLatency time.Duration
	// BlockEraseLatency is the time to erase one block.
	BlockEraseLatency time.Duration
	// FileOpenLatency is the fixed filesystem cost to locate and open
	// a file before any data transfer.
	FileOpenLatency time.Duration
	// JitterFrac, if non-zero, spreads each modeled latency uniformly
	// in [1-JitterFrac, 1+JitterFrac] using the device's seeded source,
	// reproducing the run-to-run deviation bars of Figure 12.
	JitterFrac float64
	// Seed seeds the jitter source; ignored when JitterFrac is zero.
	Seed int64
}

// DefaultParams returns parameters calibrated so that the PocketSearch
// result database reproduces the paper's measured storage behaviour:
// ~10 ms to fetch two search results with a 32-file database (Table 4)
// and a retrieval-time curve over file counts shaped like Figure 12.
func DefaultParams() Params {
	return Params{
		PageSize:           2048,
		PagesPerBlock:      64,
		AllocUnit:          4096,
		PageReadLatency:    150 * time.Microsecond,
		PageProgramLatency: 400 * time.Microsecond,
		BlockEraseLatency:  1500 * time.Microsecond,
		FileOpenLatency:    4 * time.Millisecond,
	}
}

// Stats accumulates operation counts and modeled busy time.
type Stats struct {
	Opens        int64
	PageReads    int64
	PagePrograms int64
	BlockErases  int64
	BytesRead    int64
	BytesWritten int64
	BusyTime     time.Duration
}

// Device is a simulated flash part plus filesystem stack.
type Device struct {
	params Params
	stats  Stats
	jitter *rand.Rand
}

// NewDevice creates a device with the given parameters. Zero-valued
// latency or geometry fields are filled from DefaultParams.
func NewDevice(p Params) *Device {
	def := DefaultParams()
	if p.PageSize <= 0 {
		p.PageSize = def.PageSize
	}
	if p.PagesPerBlock <= 0 {
		p.PagesPerBlock = def.PagesPerBlock
	}
	if p.AllocUnit <= 0 {
		p.AllocUnit = def.AllocUnit
	}
	if p.PageReadLatency <= 0 {
		p.PageReadLatency = def.PageReadLatency
	}
	if p.PageProgramLatency <= 0 {
		p.PageProgramLatency = def.PageProgramLatency
	}
	if p.BlockEraseLatency <= 0 {
		p.BlockEraseLatency = def.BlockEraseLatency
	}
	if p.FileOpenLatency <= 0 {
		p.FileOpenLatency = def.FileOpenLatency
	}
	d := &Device{params: p}
	if p.JitterFrac > 0 {
		d.jitter = rand.New(rand.NewSource(p.Seed))
	}
	return d
}

// Params returns the device parameters.
func (d *Device) Params() Params { return d.params }

// Stats returns a snapshot of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the accumulated statistics.
func (d *Device) ResetStats() { d.stats = Stats{} }

func (d *Device) applyJitter(t time.Duration) time.Duration {
	if d.jitter == nil || t <= 0 {
		return t
	}
	f := 1 + d.params.JitterFrac*(2*d.jitter.Float64()-1)
	return time.Duration(float64(t) * f)
}

func pages(n, pageSize int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + pageSize - 1) / pageSize)
}

// OpenCost models opening a file: the filesystem lookup latency.
func (d *Device) OpenCost() time.Duration {
	t := d.applyJitter(d.params.FileOpenLatency)
	d.stats.Opens++
	d.stats.BusyTime += t
	return t
}

// ReadCost models reading n bytes starting at an arbitrary offset:
// every touched page costs one page read.
func (d *Device) ReadCost(n int) time.Duration {
	p := pages(n, d.params.PageSize)
	t := d.applyJitter(time.Duration(p) * d.params.PageReadLatency)
	d.stats.PageReads += p
	d.stats.BytesRead += int64(max(n, 0))
	d.stats.BusyTime += t
	return t
}

// WriteCost models programming n bytes: every touched page costs one
// page program. Rewrites that would trigger erases are modeled by
// RewriteCost.
func (d *Device) WriteCost(n int) time.Duration {
	p := pages(n, d.params.PageSize)
	t := d.applyJitter(time.Duration(p) * d.params.PageProgramLatency)
	d.stats.PagePrograms += p
	d.stats.BytesWritten += int64(max(n, 0))
	d.stats.BusyTime += t
	return t
}

// RewriteCost models an in-place update of n bytes, which on flash
// requires erasing the blocks that hold them before reprogramming.
func (d *Device) RewriteCost(n int) time.Duration {
	p := pages(n, d.params.PageSize)
	blocks := (p + int64(d.params.PagesPerBlock) - 1) / int64(d.params.PagesPerBlock)
	t := d.applyJitter(time.Duration(blocks)*d.params.BlockEraseLatency +
		time.Duration(p)*d.params.PageProgramLatency)
	d.stats.BlockErases += blocks
	d.stats.PagePrograms += p
	d.stats.BytesWritten += int64(max(n, 0))
	d.stats.BusyTime += t
	return t
}

// AllocatedBytes reports the flash space a file of logicalSize bytes
// actually occupies given the allocation unit: the paper's point that a
// 500-byte search-result file can occupy 4-16x its size.
func (d *Device) AllocatedBytes(logicalSize int) int64 {
	if logicalSize <= 0 {
		return 0
	}
	u := int64(d.params.AllocUnit)
	return (int64(logicalSize) + u - 1) / u * u
}

// String summarizes the device configuration.
func (d *Device) String() string {
	return fmt.Sprintf("flash{page=%dB block=%dp alloc=%dB read=%v program=%v open=%v}",
		d.params.PageSize, d.params.PagesPerBlock, d.params.AllocUnit,
		d.params.PageReadLatency, d.params.PageProgramLatency, d.params.FileOpenLatency)
}

package fleet

import (
	"time"

	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
)

// BatchOptions configure cloud-miss coalescing. The paper's energy
// argument (Sections 1 and 5, Figures 15b and 16) is that a radio
// session's overhead — the 1.5–2 s wake-up, the handshake round trips
// and the multi-second high-power tail — dwarfs the payload of a small
// exchange, so misses that share one session amortize nearly all of
// that cost. With coalescing enabled, concurrent misses are parked in
// a miss queue and a dispatcher goroutine drains them into batched
// radio sessions: one wake-up, one handshake and one tail per batch,
// payloads serialized in submission order.
type BatchOptions struct {
	// Enabled turns miss coalescing on.
	Enabled bool
	// MaxBatch caps the misses per radio session. Zero selects
	// DefaultMaxBatch.
	MaxBatch int
	// Linger is how long a dispatcher holds an open batch waiting for
	// more misses before firing the session. It is wall-clock
	// collection time only and never enters the modeled latency. Zero
	// selects DefaultLinger.
	Linger time.Duration
	// FleetWide pools the misses of every shard into a single
	// dispatcher, so one session can amortize across the whole fleet;
	// the default is one dispatcher (one uplink session at a time) per
	// shard.
	FleetWide bool
	// AdaptiveLinger sizes the linger window from the observed miss
	// arrival rate instead of using the fixed Linger: under dense
	// arrivals the window is just long enough to collect a full batch
	// (inter-arrival gap × (MaxBatch−1), capped at Linger); under
	// sparse arrivals — when the next miss is not expected within any
	// linger — it shrinks to Linger/8, so a lone miss is not held
	// hostage to a window nothing will join. Wall-clock only; modeled
	// outcomes are unaffected.
	AdaptiveLinger bool
}

// DefaultMaxBatch is the default cap on misses per radio session.
const DefaultMaxBatch = 16

// DefaultLinger is the default dispatcher linger window.
const DefaultLinger = 200 * time.Microsecond

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Linger <= 0 {
		o.Linger = DefaultLinger
	}
	return o
}

// BatchStats summarize miss-coalescing activity.
type BatchStats struct {
	// Batches is the number of batched radio sessions dispatched;
	// BatchedMisses the misses they carried.
	Batches, BatchedMisses int64
	// Wakeups is the radio wake-ups those sessions paid — one per
	// batch (the shared uplink sleeps between linger windows), versus
	// one per session-opening miss on the unbatched path.
	Wakeups int64
	// MaxBatch is the largest session observed.
	MaxBatch int
	// SizeCounts maps batch size to the number of sessions of that
	// size.
	SizeCounts map[int]int64
}

// MeanSize is the mean number of misses per batched session.
func (s BatchStats) MeanSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedMisses) / float64(s.Batches)
}

// missTask is one classified cloud miss parked for coalescing.
type missTask struct {
	t task
	// mc is the miss's fault plan, computed at classification time
	// under the shard lock (zero value when fault injection is off).
	mc missCtx
	// done is closed once the miss has been applied and its response
	// delivered; the owning worker waits on it before serving the same
	// user's next request, preserving per-user submission order.
	done chan struct{}
}

// dispatchMsg is one message on a dispatcher's queue: a miss to
// coalesce, or — when miss is nil — a flush demand. The single queue
// keeps misses and flushes FIFO, so a flush acknowledgment guarantees
// every miss enqueued before it has been applied.
type dispatchMsg struct {
	miss *missTask
	ack  chan struct{}
}

// dispatcher drains a miss queue into batched radio sessions. One
// dispatcher serves either a single shard or (FleetWide) all of them;
// it models one uplink, so its sessions are serialized.
type dispatcher struct {
	f    *Fleet
	ch   chan dispatchMsg
	done chan struct{}
	// lc adapts the linger window to the observed miss arrival rate;
	// nil unless BatchOptions.AdaptiveLinger. Only the dispatcher
	// goroutine touches it.
	lc *lingerControl
}

func newDispatcher(f *Fleet, depth int) *dispatcher {
	d := &dispatcher{
		f:    f,
		ch:   make(chan dispatchMsg, depth),
		done: make(chan struct{}),
		lc:   newLingerControl(f.cfg.Batch),
	}
	go d.run()
	return d
}

// lingerControl sizes the dispatcher's linger window from an EWMA of
// the miss inter-arrival gap. See BatchOptions.AdaptiveLinger.
type lingerControl struct {
	// max is the configured Linger — the ceiling of the adaptive
	// window; batch is MaxBatch.
	max   time.Duration
	batch int
	ewma  time.Duration
	last  time.Time
}

func newLingerControl(o BatchOptions) *lingerControl {
	if !o.AdaptiveLinger {
		return nil
	}
	return &lingerControl{max: o.Linger, batch: o.MaxBatch}
}

// observe books one miss arrival into the inter-arrival EWMA. Gaps are
// clamped at 2×max so one long idle stretch reads as "sparse" without
// poisoning the average forever. Nil-safe.
func (lc *lingerControl) observe(now time.Time) {
	if lc == nil {
		return
	}
	if !lc.last.IsZero() {
		gap := now.Sub(lc.last)
		if gap > 2*lc.max {
			gap = 2 * lc.max
		}
		lc.ewma = (3*lc.ewma + gap) / 4
	}
	lc.last = now
}

// window returns the linger window to hold the current batch open:
// with no signal yet, the full configured linger; under sparse
// arrivals (expected gap at or beyond the ceiling) the floor; else the
// time a full batch needs to assemble at the observed rate, clamped to
// [max/8, max].
func (lc *lingerControl) window() time.Duration {
	floor := lc.max / 8
	if floor <= 0 {
		floor = 1
	}
	switch {
	case lc.ewma <= 0:
		return lc.max
	case lc.ewma >= lc.max:
		return floor
	}
	w := lc.ewma * time.Duration(lc.batch-1)
	if w < floor {
		w = floor
	}
	if w > lc.max {
		w = lc.max
	}
	return w
}

// lingerWindow is the duration the run loop arms its batch timer with.
func (d *dispatcher) lingerWindow() time.Duration {
	if d.lc != nil {
		return d.lc.window()
	}
	return d.f.cfg.Batch.Linger
}

// submit parks one classified miss for coalescing.
func (d *dispatcher) submit(mt *missTask) { d.ch <- dispatchMsg{miss: mt} }

// flush demands that every miss enqueued so far be dispatched without
// further lingering. It does not wait for the batch to be applied; the
// caller waits on the relevant missTask.done instead.
func (d *dispatcher) flush() { d.ch <- dispatchMsg{} }

// flushWait flushes and blocks until every previously enqueued miss
// has been applied (the Drain barrier path).
func (d *dispatcher) flushWait() {
	ack := make(chan struct{})
	d.ch <- dispatchMsg{ack: ack}
	<-ack
}

// close stops the dispatcher after it has drained its queue. Callers
// must guarantee no further submits (the fleet closes dispatchers only
// after every worker has exited).
func (d *dispatcher) close() {
	close(d.ch)
	<-d.done
}

// run is the dispatcher loop: collect misses until the batch is full
// or the linger window expires, then fire the session.
func (d *dispatcher) run() {
	defer close(d.done)
	opts := d.f.cfg.Batch
	var batch []*missTask
	var timer *time.Timer
	var timeout <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
	}
	fire := func() {
		stopTimer()
		if len(batch) > 0 {
			d.execute(batch)
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			msg, ok := <-d.ch
			if !ok {
				return
			}
			if msg.miss == nil {
				if msg.ack != nil {
					close(msg.ack)
				}
				continue
			}
			d.lc.observe(time.Now())
			batch = append(batch, msg.miss)
			if len(batch) >= opts.MaxBatch {
				fire()
				continue
			}
			timer = time.NewTimer(d.lingerWindow())
			timeout = timer.C
			continue
		}
		select {
		case msg, ok := <-d.ch:
			if !ok {
				fire()
				return
			}
			if msg.miss == nil {
				fire()
				if msg.ack != nil {
					close(msg.ack)
				}
				continue
			}
			d.lc.observe(time.Now())
			batch = append(batch, msg.miss)
			if len(batch) >= opts.MaxBatch {
				fire()
			}
		case <-timeout:
			timer, timeout = nil, nil
			fire()
		}
	}
}

// execute fires one batched session: a single engine visit resolves
// every query, a single radio session (one wake-up, one handshake, one
// tail) carries the exchanges, and the misses are applied to their
// shards in submission order.
func (d *dispatcher) execute(batch []*missTask) {
	f := d.f
	if f.faulted {
		d.executeFaulted(batch)
		return
	}
	queries := make([]string, len(batch))
	for i, mt := range batch {
		queries[i] = mt.t.req.Query
	}
	resps, found := f.cfg.Engine.SearchBatch(queries)
	items := make([]radio.Exchange, len(batch))
	for i := range batch {
		items[i] = radio.Exchange{
			ReqBytes:  pocketsearch.QueryRequestBytes,
			RespBytes: pocketsearch.MissPageBytes(resps[i]),
		}
	}
	bt := radio.BatchExchange(f.cfg.Radio, items)
	f.recordBatch(bt)
	shards := f.topo.Load().shards
	for i, mt := range batch {
		resp := shards[mt.t.shard].applyBatchedMiss(mt.t.req, resps[i], found[i], bt, i)
		f.finish(resp, mt.t)
		close(mt.done)
	}
}

// executeFaulted fires one batched session under fault injection.
// Each member carries its own precomputed fault plan (missCtx): only
// members whose plan succeeded ride the shared radio session — a
// member the network dropped never produced an exchange — and members
// with no survivors open no session at all. Failed attempts are
// replayed on each member's own device when the miss is applied, so
// per-user outcomes stay independent of batch composition.
func (d *dispatcher) executeFaulted(batch []*missTask) {
	f := d.f
	// Book the retry counters, drive each shard's breaker, and take one
	// wall pause for the worst member's planned failure wait (members
	// failed concurrently; their pauses overlap, not stack).
	var maxWait time.Duration
	pace := false
	shards := f.topo.Load().shards
	for _, mt := range batch {
		pl := mt.mc.plan
		f.recordMissPlan(mt.mc)
		sh := shards[mt.t.shard]
		if pl.Failures() > 0 && sh.paceBreaker(mt.mc) {
			pace = true
		}
		sh.recordBreakers(mt.mc)
		if pl.FailedWait > maxWait {
			maxWait = pl.FailedWait
		}
	}
	if pace {
		if dur := f.cfg.Retry.WallPause(maxWait); dur > 0 {
			time.Sleep(dur)
		}
	}
	queries := make([]string, len(batch))
	for i, mt := range batch {
		queries[i] = mt.t.req.Query
	}
	resps, found := f.cfg.Engine.SearchBatch(queries)
	slot := make([]int, len(batch))
	var items []radio.Exchange
	for i, mt := range batch {
		slot[i] = -1
		if mt.mc.plan.Success {
			slot[i] = len(items)
			items = append(items, radio.Exchange{
				ReqBytes:  pocketsearch.QueryRequestBytes,
				RespBytes: pocketsearch.MissPageBytes(resps[i]),
			})
		}
	}
	var bt radio.BatchTransfer
	if len(items) > 0 {
		bt = radio.BatchExchange(f.cfg.Radio, items)
		f.recordBatch(bt)
	}
	for i, mt := range batch {
		resp := shards[mt.t.shard].applyFaultedBatched(mt.t.req, resps[i], found[i], bt, slot[i], mt.mc)
		f.finish(resp, mt.t)
		close(mt.done)
	}
}

// recordBatch books one batched session into the fleet's batch stats.
func (f *Fleet) recordBatch(bt radio.BatchTransfer) {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	s := &f.batchStats
	s.Batches++
	s.BatchedMisses += int64(bt.Size())
	if !bt.WasWarm {
		s.Wakeups++
	}
	if bt.Size() > s.MaxBatch {
		s.MaxBatch = bt.Size()
	}
	if s.SizeCounts == nil {
		s.SizeCounts = make(map[int]int64)
	}
	s.SizeCounts[bt.Size()]++
}

// BatchStats returns a snapshot of miss-coalescing activity.
func (f *Fleet) BatchStats() BatchStats {
	f.batchMu.Lock()
	defer f.batchMu.Unlock()
	s := f.batchStats
	s.SizeCounts = make(map[int]int64, len(f.batchStats.SizeCounts))
	for k, v := range f.batchStats.SizeCounts {
		s.SizeCounts[k] = v
	}
	return s
}

package fleet

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestDenseSparseEquivalence replays the same request stream through
// two fleets that differ only in the Population hint — one keeps every
// user in the dense slot arena, the other (Population zero) routes all
// of them through the sparse map fallback — and requires identical
// per-request responses and identical per-user serve counts. The hint
// is a memory-layout choice; it must never change an outcome.
func TestDenseSparseEquivalence(t *testing.T) {
	users := 10000
	if testing.Short() {
		users = 2000
	}
	g := smallGen(t, users)
	content := smallContent(t, g)
	dense := newTestFleet(t, g, content, func(c *Config) { c.Population = users })
	sparse := newTestFleet(t, g, content, nil)

	profiles := g.Users()
	const perUser = 24
	for i := 0; i < len(profiles); i += 13 {
		reqs := requestsFor(g, profiles[i], 0)
		if len(reqs) > perUser {
			reqs = reqs[:perUser]
		}
		for _, r := range reqs {
			d := dense.Do(r)
			s := sparse.Do(r)
			d.Wall, s.Wall = 0, 0 // wall-clock latency is not modeled time
			if !reflect.DeepEqual(d, s) {
				t.Fatalf("user %d: dense response %+v != sparse response %+v", r.User, d, s)
			}
		}
	}

	dc, sc := dense.UserServeCounts(), sparse.UserServeCounts()
	if !reflect.DeepEqual(dc, sc) {
		t.Fatalf("per-user serve counts diverge: dense %d users, sparse %d users", len(dc), len(sc))
	}
	if len(dc) == 0 {
		t.Fatal("no users served")
	}

	// The dense fleet must actually have used the arena: every replayed
	// user ID is below Population, so the sparse fallback stays empty.
	for _, sh := range dense.topo.Load().shards {
		sh.mu.Lock()
		if n := len(sh.users.sparse); n != 0 {
			sh.mu.Unlock()
			t.Fatalf("dense fleet spilled %d users into the sparse map", n)
		}
		sh.mu.Unlock()
	}
}

// TestSparseFallbackAbovePopulation exercises the boundary: user IDs
// at and above the Population hint land in the sparse map and still
// serve, migrate counters, and report identically to dense users.
func TestSparseFallbackAbovePopulation(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(c *Config) { c.Population = 8 })

	for _, up := range g.Users()[:16] {
		reqs := requestsFor(g, up, 0)
		if len(reqs) > 8 {
			reqs = reqs[:8]
		}
		for _, r := range reqs {
			if resp := f.Do(r); resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
	}
	counts := f.UserServeCounts()
	if len(counts) != 16 {
		t.Fatalf("want 16 resident users, got %d", len(counts))
	}
	for _, c := range counts {
		if c.Served == 0 {
			t.Fatalf("user %d resident but never served", c.User)
		}
	}
}

// TestReplyPoolRecycling hammers the pooled reply-channel path — the
// non-cancelable Do fast path — concurrently with cancelable
// DoContext calls, some pre-canceled, under a queue small enough to
// shed. Every response must carry the request it was issued for: a
// recycled channel that ever delivered another request's response
// would trip the Req checks (and the race detector) immediately.
func TestReplyPoolRecycling(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(c *Config) { c.QueueDepth = 4 })

	profiles := g.Users()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reqs := requestsFor(g, profiles[w], 0)
			if len(reqs) > 200 {
				reqs = reqs[:200]
			}
			for i, r := range reqs {
				var resp Response
				switch i % 4 {
				case 0:
					ctx, cancel := context.WithCancel(context.Background())
					if i%8 == 0 {
						cancel() // pre-canceled: must count, never serve
					}
					resp = f.DoContext(ctx, r)
					cancel()
				default:
					resp = f.Do(r)
				}
				if resp.Req.User != r.User || resp.Req.Query != r.Query || resp.Req.Click != r.Click {
					t.Errorf("worker %d op %d: response for %+v carries request %+v", w, i, r, resp.Req)
					return
				}
				if resp.Shed && resp.Source != SourceShed {
					t.Errorf("worker %d op %d: shed response with source %v", w, i, resp.Source)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

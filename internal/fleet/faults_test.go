package fleet

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// forever is the end of a permanent outage window.
const forever = time.Duration(1) << 60

// faultTrace is one user's per-request outcome sequence under fault
// injection — the unit of the fault-determinism guarantee.
type faultTrace struct {
	hits     []bool
	sources  []Source
	attempts []int
}

// runFaultTraces drives every user's month-1 tape through the fleet
// closed-loop (each user from its own goroutine, waiting for each
// response) and returns the per-user traces.
func runFaultTraces(t *testing.T, f *Fleet, g *workload.Generator, users []workload.UserProfile) map[searchlog.UserID]*faultTrace {
	t.Helper()
	traces := make(map[searchlog.UserID]*faultTrace, len(users))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, up := range users {
		wg.Add(1)
		go func(up workload.UserProfile) {
			defer wg.Done()
			tr := &faultTrace{}
			for _, req := range requestsFor(g, up, 1) {
				resp := f.Do(req)
				if resp.Shed || resp.Err != nil {
					t.Errorf("user %d request failed: %+v", up.ID, resp)
					return
				}
				tr.hits = append(tr.hits, resp.Hit())
				tr.sources = append(tr.sources, resp.Source)
				tr.attempts = append(tr.attempts, resp.Attempts)
			}
			mu.Lock()
			traces[up.ID] = tr
			mu.Unlock()
		}(up)
	}
	wg.Wait()
	return traces
}

// missBeyondContent returns a request the engine can answer that is a
// guaranteed cloud miss on a fresh fleet: its (query, click) pair sits
// just past the community content's selected triplet prefix.
func missBeyondContent(t *testing.T, g *workload.Generator, contentLen int, uid searchlog.UserID) Request {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	if contentLen >= len(tbl.Triplets) {
		t.Fatal("community content swallowed the whole triplet table")
	}
	u := g.Config().Universe
	pair := tbl.Triplets[contentLen].Pair
	return Request{
		User:  uid,
		Query: u.QueryText(u.QueryOf(pair)),
		Click: u.ResultURL(u.ResultOf(pair)),
	}
}

// TestFaultStatsDeterministicConcurrent is the fault-determinism
// regression (run under -race by scripts/check.sh): two closed-loop
// concurrent runs with the same fault seed, scenario and workload must
// produce byte-identical fleet counters — including the retry,
// exhausted and degradation counters — and identical per-user
// hit/source/attempt sequences. Real wall pauses are disabled and the
// breaker is off, so nothing about goroutine scheduling can leak into
// the model.
func TestFaultStatsDeterministicConcurrent(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func() (map[searchlog.UserID]*faultTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = faults.Options{
				Enabled:       true,
				Seed:          5,
				LossProb:      0.35,
				EngineErrProb: 0.15,
				OutageEvery:   30 * time.Second,
				OutageFor:     6 * time.Second,
			}
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
		})
		return runFaultTraces(t, f, g, users), f.Stats()
	}

	tr1, s1 := run()
	tr2, s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("fleet counters diverge across identical faulted runs:\n  run 1: %+v\n  run 2: %+v", s1, s2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("per-user outcome traces diverge across identical faulted runs")
	}
	// The scenario must actually bite, or the test proves nothing.
	if s1.Retries == 0 {
		t.Error("no retries recorded; loss scenario did not bite")
	}
	if s1.Exhausted == 0 || s1.Degraded+s1.Unavailable == 0 {
		t.Errorf("no degradation recorded (exhausted %d, degraded %d, unavailable %d)",
			s1.Exhausted, s1.Degraded, s1.Unavailable)
	}
	if s1.Degraded+s1.Unavailable != s1.Exhausted {
		t.Errorf("every exhausted miss must degrade: exhausted %d, degraded %d + unavailable %d",
			s1.Exhausted, s1.Degraded, s1.Unavailable)
	}
	if rate := s1.AnsweredRate(); rate <= 0 || rate >= 1 {
		t.Errorf("AnsweredRate = %v, want in (0, 1) under this scenario", rate)
	}
}

// TestFaultStatsDeterministicSequential covers the breaker-enabled
// configuration: pacing decisions depend on cross-user arrival order,
// so the counter-determinism guarantee holds for a sequential driver.
// A permanent outage exhausts every cloud-tier miss, the breaker must
// open, and no miss may ever complete against the cloud.
func TestFaultStatsDeterministicSequential(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	users := g.Users()[:6]

	run := func() Stats {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.Shards = 1
			cfg.Workers = 1
			cfg.QueueDepth = 4096
			cfg.Faults = faults.Options{
				Enabled: true,
				Windows: []faults.Window{{Start: 0, End: forever}},
			}
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 2, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: 3, Cooldown: 4}
		})
		for _, up := range users {
			for _, req := range requestsFor(g, up, 1) {
				if resp := f.Do(req); resp.Shed || resp.Err != nil {
					t.Fatalf("user %d request failed: %+v", up.ID, resp)
				}
			}
		}
		return f.Stats()
	}

	s1 := run()
	s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("fleet counters diverge across identical sequential runs:\n  run 1: %+v\n  run 2: %+v", s1, s2)
	}
	if s1.BreakerOpens == 0 {
		t.Error("breaker never opened against a permanent outage")
	}
	if s1.CloudMisses != 0 {
		t.Errorf("%d cloud misses completed through a permanent outage", s1.CloudMisses)
	}
	if s1.Degraded+s1.Unavailable == 0 || s1.Degraded+s1.Unavailable != s1.Exhausted {
		t.Errorf("degradation accounting off: exhausted %d, degraded %d, unavailable %d",
			s1.Exhausted, s1.Degraded, s1.Unavailable)
	}
}

// TestInertFaultsMatchDisabled is the zero-cost-when-off guarantee
// from the other side: an *enabled* fault model with no failure source
// configured must route every request through the faulted serve path
// and still produce responses byte-identical to a fleet with the model
// disabled — same outcomes, same energy, same counters. Attempts is
// the one deliberate exception (the faulted path books its single
// successful attempt; the disabled path books none).
func TestInertFaultsMatchDisabled(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	users := g.Users()[:12]

	run := func(opts faults.Options) (map[searchlog.UserID][]Response, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = opts
		})
		resps := make(map[searchlog.UserID][]Response, len(users))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, up := range users {
			wg.Add(1)
			go func(up workload.UserProfile) {
				defer wg.Done()
				var rs []Response
				for _, req := range requestsFor(g, up, 1) {
					resp := f.Do(req)
					if resp.Shed || resp.Err != nil {
						t.Errorf("user %d request failed: %+v", up.ID, resp)
						return
					}
					resp.Attempts = 0 // the one permitted model difference
					resp.Wall = 0     // real wall-clock latency, not modeled
					rs = append(rs, resp)
				}
				mu.Lock()
				resps[up.ID] = rs
				mu.Unlock()
			}(up)
		}
		wg.Wait()
		return resps, f.Stats()
	}

	plain, plainStats := run(faults.Options{})
	inert, inertStats := run(faults.Options{Enabled: true})
	if !reflect.DeepEqual(plainStats, inertStats) {
		t.Errorf("fleet counters diverge:\n  disabled: %+v\n  inert:    %+v", plainStats, inertStats)
	}
	if !reflect.DeepEqual(plain, inert) {
		for uid, p := range plain {
			in := inert[uid]
			for i := range p {
				if i >= len(in) || !reflect.DeepEqual(p[i], in[i]) {
					t.Fatalf("user %d request %d diverges:\n  disabled: %+v\n  inert:    %+v", uid, i, p[i], in[i])
				}
			}
		}
		t.Fatal("responses diverge between disabled and inert fault model")
	}
}

// TestDegradationLadder walks the three rungs end to end against a
// crafted outage: a cloud miss that succeeds before the dead zone
// seeds the personal cache, then every later miss degrades — stale
// from the personal component, stale from the community replica, or
// the explicit unavailable page — with the failed attempts' costs
// riding along in the outcome.
func TestDegradationLadder(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	uid := g.Users()[0].ID

	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 1
		cfg.Faults = faults.Options{
			Enabled: true,
			// The radio works for the first model second, then never again.
			Windows: []faults.Window{{Start: time.Second, End: forever}},
		}
		cfg.Retry = faults.RetryPolicy{MaxAttempts: 2, WallPauseScale: -1}
		cfg.Breaker = BreakerOptions{Threshold: -1}
	})

	// Rung 0: before the outage a cloud miss completes normally and
	// seeds the personal cache (a 3G miss advances the user's model
	// clock well past the window start).
	seed := missBeyondContent(t, g, len(content.Triplets), uid)
	resp := f.Do(seed)
	if resp.Err != nil || resp.Source != SourceCloud {
		t.Fatalf("seeding miss = %+v, want a successful cloud miss", resp)
	}

	// Rung 1: same query, unknown click — a cloud miss again, but now
	// inside the outage. The personal component has the query cached
	// and serves it stale.
	resp = f.Do(Request{User: uid, Query: seed.Query, Click: "http://ladder.test/unknown-click"})
	if resp.Source != SourceDegraded {
		t.Fatalf("personal rung = %+v, want SourceDegraded", resp)
	}
	if resp.Attempts != 2 || !resp.Outcome.Radio.Failed {
		t.Errorf("degraded response must carry its failed attempts: attempts %d, radio %+v",
			resp.Attempts, resp.Outcome.Radio)
	}
	if len(resp.Outcome.Results) == 0 || resp.Outcome.Network == 0 {
		t.Errorf("stale personal serve should return results and the failed wait: %+v", resp.Outcome)
	}
	if st := f.CommunityStats(); st.Stale != 0 {
		t.Errorf("personal rung must not touch the community replica, got %d community stale serves", st.Stale)
	}

	// Rung 2: a query the user never issued but the community caches.
	u := g.Config().Universe
	var commQuery string
	for _, tr := range content.Triplets {
		if q := u.QueryText(u.QueryOf(tr.Pair)); q != seed.Query {
			commQuery = q
			break
		}
	}
	if commQuery == "" {
		t.Fatal("no community query distinct from the seed query")
	}
	resp = f.Do(Request{User: uid, Query: commQuery, Click: "http://ladder.test/unknown-click"})
	if resp.Source != SourceDegraded || len(resp.Outcome.Results) == 0 {
		t.Fatalf("community rung = %+v, want a degraded serve with results", resp)
	}
	if st := f.CommunityStats(); st.Stale != 1 {
		t.Errorf("community replica should have served exactly one stale answer, got %d", st.Stale)
	}

	// Rung 3: a query nobody caches — the explicit unavailable page.
	resp = f.Do(Request{User: uid, Query: "ladder query nobody ever cached", Click: "http://ladder.test/x"})
	if resp.Source != SourceUnavailable {
		t.Fatalf("bottom rung = %+v, want SourceUnavailable", resp)
	}
	if len(resp.Outcome.Results) != 0 || resp.Outcome.Render == 0 {
		t.Errorf("unavailable page must render locally with no results: %+v", resp.Outcome)
	}

	s := f.Stats()
	if s.CloudMisses != 1 || s.Degraded != 2 || s.Unavailable != 1 || s.Exhausted != 3 || s.Retries != 3 {
		t.Errorf("ladder counters off: %+v", s)
	}
	if want := 3.0 / 4.0; s.AnsweredRate() != want {
		t.Errorf("AnsweredRate = %v, want %v", s.AnsweredRate(), want)
	}
}

// TestDoContextCancel covers caller cancellation: a context that dies
// while the worker paces a retry ladder — and one that is dead on
// arrival — must both come back Canceled, counted exactly once, with
// Served+Shed+Canceled summing to the submissions.
func TestDoContextCancel(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	uid := g.Users()[0].ID

	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 1
		cfg.Faults = faults.Options{Enabled: true, LossProb: 1}
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts:    4,
			WallPauseScale: 1,
			MaxWallPause:   100 * time.Millisecond,
		}
		cfg.Breaker = BreakerOptions{Threshold: -1}
	})

	// Canceled mid-pause: every attempt is lost, so the worker takes a
	// real 100ms pause; the 5ms context wins.
	miss := missBeyondContent(t, g, len(content.Triplets), uid)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	resp := f.DoContext(ctx, miss)
	if !resp.Canceled || resp.Source != SourceCanceled {
		t.Fatalf("mid-pause cancel = %+v, want Canceled", resp)
	}

	// Dead on arrival: never enqueued, still counted exactly once.
	dead, kill := context.WithCancel(context.Background())
	kill()
	resp = f.DoContext(dead, miss)
	if !resp.Canceled || resp.Source != SourceCanceled {
		t.Fatalf("pre-canceled context = %+v, want Canceled", resp)
	}

	// A background context takes the zero-overhead path and serves
	// normally from a local tier.
	u := g.Config().Universe
	pair := content.Triplets[0].Pair
	resp = f.DoContext(context.Background(), Request{
		User:  uid,
		Query: u.QueryText(u.QueryOf(pair)),
		Click: u.ResultURL(u.ResultOf(pair)),
	})
	if resp.Canceled || resp.Source != SourceCommunity {
		t.Fatalf("community hit under background context = %+v", resp)
	}

	// Exactly-once accounting across all three submissions.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := f.Stats()
		if s.Served+s.Shed+s.Canceled == 3 {
			if s.Canceled != 2 || s.Served != 1 || s.Shed != 0 {
				t.Fatalf("cancel accounting off: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never fully booked: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDoContextReplyPoolStress hammers the pooled reply channels (run
// under -race by scripts/check.sh): many concurrent DoContext callers,
// a large fraction abandoning mid-pause, so recycled channels are
// constantly handed to new requests. A stale send landing on a reused
// channel would surface here as a response for the wrong request, a
// double booking, or a race report. Every response must be for the
// request the caller submitted, and the fleet must book every
// submission exactly once.
func TestDoContextReplyPoolStress(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	uid := g.Users()[0].ID

	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 2
		cfg.QueueDepth = 4096
		cfg.Faults = faults.Options{Enabled: true, LossProb: 0.9}
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts:    3,
			WallPauseScale: 0.001,
			MaxWallPause:   2 * time.Millisecond,
		}
		cfg.Breaker = BreakerOptions{Threshold: -1}
	})

	miss := missBeyondContent(t, g, len(content.Triplets), uid)
	const iters = 400
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := miss
			if i%2 == 0 {
				// Half the callers give up almost immediately, racing the
				// worker's finish against their own cancellation.
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
				defer cancel()
				resp := f.DoContext(ctx, req)
				if resp.Err != nil {
					t.Errorf("request %d errored: %v", i, resp.Err)
				}
				if resp.Req.User != req.User || (resp.Req.Query != "" && resp.Req.Query != req.Query) {
					t.Errorf("request %d got a response for someone else's request: %+v", i, resp.Req)
				}
				return
			}
			resp := f.DoContext(context.Background(), req)
			if resp.Canceled || resp.Shed || resp.Err != nil {
				t.Errorf("background request %d did not serve: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := f.Stats()
		if s.Served+s.Shed+s.Canceled == iters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("booked %d+%d+%d of %d submissions", s.Served, s.Shed, s.Canceled, iters)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultedBatchedMatchesUnbatched extends the batching determinism
// guarantee to the fault-injected path: with clock-free fault sources
// (loss and engine errors — outages depend on model clocks, which
// batching legitimately shifts) every user's per-request outcome,
// attempt count and every fleet counter must be identical whether
// misses are coalesced — here with the adaptive linger window — or
// serviced one by one.
func TestFaultedBatchedMatchesUnbatched(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func(batch BatchOptions) (map[searchlog.UserID]*faultTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.Shards = 1
			cfg.Workers = 1
			cfg.QueueDepth = 4096
			cfg.Batch = batch
			cfg.Faults = faults.Options{
				Enabled:       true,
				Seed:          9,
				LossProb:      0.4,
				EngineErrProb: 0.2,
			}
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
		})
		return runFaultTraces(t, f, g, users), f.Stats()
	}

	plain, plainStats := run(BatchOptions{})
	coal, coalStats := run(BatchOptions{Enabled: true, Linger: time.Millisecond, AdaptiveLinger: true})

	if !reflect.DeepEqual(plainStats, coalStats) {
		t.Errorf("fleet counters diverge:\n  unbatched: %+v\n  batched:   %+v", plainStats, coalStats)
	}
	if !reflect.DeepEqual(plain, coal) {
		t.Error("per-user outcome traces diverge between faulted batched and unbatched runs")
	}
	if plainStats.Retries == 0 || plainStats.Exhausted == 0 {
		t.Errorf("scenario did not bite: %+v", plainStats)
	}
}

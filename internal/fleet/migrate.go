package fleet

import (
	"fmt"
	"sort"
	"time"

	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/searchlog"
)

// This file implements live resharding: Fleet.Resize changes the shard
// count while the fleet keeps serving. The protocol is epoch-based and
// flips one *source* shard at a time:
//
//  1. Grow the physical topology first (new shards, dispatchers and
//     rebalanced storage quotas), so every destination the new
//     placement can name already exists.
//  2. For each old shard s, one epoch: publish a route table in which
//     users homed on s now route by the new placement (all other
//     un-flipped shards keep their old homes); push a barrier through
//     s's worker queue so every request routed to s before the flip —
//     including parked batch misses — is fully applied; snapshot the
//     users of s whose new home differs; export each one's personal
//     state through the updater wire format and import it at its
//     destination.
//  3. Requests for a moving user that arrive at the destination while
//     its epoch is open are parked in a per-user FIFO hold queue and
//     replayed once the epoch closes — per-user submission order is
//     preserved across the move, and no request is dropped, so the
//     Served+Shed+Canceled invariant holds throughout.
//  4. After the last epoch the final route (new placement only) is
//     published; a full drain then lets a shrink retire the orphaned
//     shards, their dispatchers and their storage registrations.
//
// In-flight requests always finish on the shard they were routed to:
// the epoch barrier runs after the route flip is fenced by the enqueue
// read-lock (see storeRoute), so "old route" tasks are applied before
// any state leaves the source shard.

// topology is the immutable physical serving view: the shards and the
// dispatchers coalescing their misses. Workers load it atomically per
// task, so Resize can publish a grown or shrunk view without stopping
// the pool.
type topology struct {
	shards      []*shard
	dispatchers []*dispatcher
}

// routeTable is the atomically published logical routing state. Outside
// a migration prev is nil and place alone decides. During one, a user's
// key routes by its *previous* home until that home's epoch flips
// (flipped[prevShard]), then by the new placement; from names the
// source shard whose epoch is currently open (-1 between epochs), which
// is what the destination-side hold check keys on.
type routeTable struct {
	place   placement.Placement
	prev    placement.Placement
	flipped []bool
	from    int
}

func (rt *routeTable) shardOf(key uint64) int {
	if rt.prev == nil {
		return rt.place.ShardOf(key)
	}
	if ps := rt.prev.ShardOf(key); !rt.flipped[ps] {
		return ps
	}
	return rt.place.ShardOf(key)
}

// storeRoute publishes rt after waiting out every in-flight enqueue:
// enqueue computes a task's shard under f.mu.RLock, so once the write
// lock is held, no task routed by the previous table is still on its
// way into a queue — the epoch barrier that follows covers all of
// them.
func (f *Fleet) storeRoute(rt *routeTable) {
	f.mu.Lock()
	f.route.Store(rt)
	f.mu.Unlock()
}

// holdQueue is one migrating user's parked requests, FIFO.
type holdQueue struct {
	tasks []task
}

// ResizeOptions tune a live resize.
type ResizeOptions struct {
	// DropState skips personal-state migration entirely: moved users
	// cold-start on their new shard. This is the remap-everything
	// baseline the warm-migration experiment compares against.
	DropState bool
}

// ResizeStats reports one completed resize.
type ResizeStats struct {
	// From and To are the shard counts before and after.
	From, To int
	// MovedUsers is the number of resident users re-homed; MovedBytes
	// their personal flash re-homed with them; TransferBytes the
	// wire-format bytes shipped (table encodings plus records).
	MovedUsers, MovedBytes, TransferBytes int64
	// DroppedUsers counts movers whose state was not migrated (always
	// all movers with DropState; otherwise only export/import
	// failures) — they cold-start at the destination.
	DroppedUsers int64
	// Epochs is the number of per-source migration epochs run.
	Epochs int
	// HeldRequests counts requests parked in destination hold queues
	// during the resize and replayed afterwards.
	HeldRequests int64
}

// MigrationStats are the fleet's cumulative migration counters across
// all resizes, for load-generator deltas.
type MigrationStats struct {
	Resizes       int64
	MovedUsers    int64
	MovedBytes    int64
	TransferBytes int64
	DroppedUsers  int64
	HeldRequests  int64
}

// MigrationStats returns the cumulative migration counters.
func (f *Fleet) MigrationStats() MigrationStats {
	return MigrationStats{
		Resizes:       f.migResizes.Load(),
		MovedUsers:    f.migMoved.Load(),
		MovedBytes:    f.migBytes.Load(),
		TransferBytes: f.migTransfer.Load(),
		DroppedUsers:  f.migDropped.Load(),
		HeldRequests:  f.heldRequests.Load(),
	}
}

// Resize changes the shard count to n while serving, migrating each
// re-homed user's personal state to its new shard. See ResizeWith.
func (f *Fleet) Resize(n int) (ResizeStats, error) {
	return f.ResizeWith(n, ResizeOptions{})
}

// ResizeWith is Resize with options. It blocks until the migration
// completes; serving continues throughout (requests for users caught
// mid-move are briefly parked, never dropped). Resizes are serialized
// with each other and with Close.
func (f *Fleet) ResizeWith(n int, opts ResizeOptions) (ResizeStats, error) {
	if n < 1 {
		return ResizeStats{}, fmt.Errorf("fleet: cannot resize to %d shards", n)
	}
	f.resizeMu.Lock()
	defer f.resizeMu.Unlock()
	f.mu.RLock()
	closed := f.closed
	f.mu.RUnlock()
	if closed {
		return ResizeStats{}, fmt.Errorf("fleet: resize after Close")
	}

	p1 := f.route.Load().place
	n1 := p1.Shards()
	st := ResizeStats{From: n1, To: n}
	if n == n1 {
		return st, nil
	}
	p2 := p1.Resize(n)
	heldBefore := f.heldRequests.Load()

	// Grow the physical topology before any routing changes, so every
	// shard the new placement can name exists; storage quotas rebalance
	// survivors-down-then-register so the committed sum never exceeds
	// the budget.
	tp := f.topo.Load()
	if n > n1 {
		grown, err := buildShards(f.cfg, f.cohorts, f.tl, n1, n)
		if err != nil {
			return st, err
		}
		// A grown shard starts drawing idle power at the model instant it
		// is provisioned, not at time zero: stamp the current makespan
		// before the shard is published (reads fence on the topo store).
		provisioned := f.tl.Makespan()
		for _, sh := range grown {
			sh.provisionedAt = provisioned
		}
		quota := cloudletos.Quota{FlashBytes: f.cfg.TotalPersonalBytes / int64(n)}
		for _, sh := range tp.shards {
			if err := f.manager.SetQuota(sh.Name(), quota); err != nil {
				return st, err
			}
		}
		for _, sh := range grown {
			if err := f.manager.Register(sh, quota); err != nil {
				return st, err
			}
		}
		shards := append(append([]*shard(nil), tp.shards...), grown...)
		dispatchers := append([]*dispatcher(nil), tp.dispatchers...)
		if f.cfg.Batch.Enabled && !f.cfg.Batch.FleetWide {
			for i := n1; i < n; i++ {
				dispatchers = append(dispatchers, newDispatcher(f, f.cfg.QueueDepth))
			}
		}
		f.topo.Store(&topology{shards: shards, dispatchers: dispatchers})
		tp = f.topo.Load()
	}

	// Migrate one source shard per epoch.
	f.migrating.Store(1)
	flipped := make([]bool, n1)
	for s := 0; s < n1; s++ {
		f.migrateEpoch(tp, p1, p2, flipped, s, opts, &st)
		st.Epochs++
	}

	// Publish the final route, then let a shrink retire the orphans:
	// after the fenced publication plus a full drain, no queued task
	// can still name a shard at or beyond n.
	f.storeRoute(&routeTable{place: p2, from: -1})
	f.migrating.Store(0)
	f.Drain()
	if n < n1 {
		retired := tp.shards[n:]
		shards := append([]*shard(nil), tp.shards[:n]...)
		dispatchers := tp.dispatchers
		var retiredDisp []*dispatcher
		if f.cfg.Batch.Enabled && !f.cfg.Batch.FleetWide {
			retiredDisp = tp.dispatchers[n:]
			dispatchers = append([]*dispatcher(nil), tp.dispatchers[:n]...)
		}
		f.topo.Store(&topology{shards: shards, dispatchers: dispatchers})
		for _, d := range retiredDisp {
			d.close()
		}
		// Fold the retired shards' final counters into the fleet-level
		// accumulators: their serving tallies keep the occupancy
		// cross-foot (ShardLoads + RetiredLoad == Served/Shed) intact,
		// and their energy integrals — idle from provisioning to this
		// retirement instant, active over their busy time — close out in
		// the ledger. Post-drain the counters are final.
		retiredAt := f.tl.Makespan()
		for _, sh := range retired {
			f.retiredServed.Add(sh.served.Load())
			f.retiredShed.Add(sh.shed.Load())
			if d := retiredAt - sh.provisionedAt; d > 0 {
				f.ledger.ShardIdle.Add(sh.power.IdleJ(d))
			}
			if busy := time.Duration(sh.busyNS.Load()); busy > 0 {
				f.ledger.ShardActive.Add(sh.power.ActiveJ(busy))
			}
		}
		for _, sh := range retired {
			if err := f.manager.Unregister(sh.Name()); err != nil {
				return st, err
			}
		}
		quota := cloudletos.Quota{FlashBytes: f.cfg.TotalPersonalBytes / int64(n)}
		for _, sh := range shards {
			if err := f.manager.SetQuota(sh.Name(), quota); err != nil {
				return st, err
			}
		}
	}

	st.HeldRequests = f.heldRequests.Load() - heldBefore
	f.migResizes.Add(1)
	f.migMoved.Add(st.MovedUsers)
	f.migBytes.Add(st.MovedBytes)
	f.migTransfer.Add(st.TransferBytes)
	f.migDropped.Add(st.DroppedUsers)
	return st, nil
}

// migrateEpoch runs one source shard's epoch: flip its users to the new
// placement, fence and drain everything already routed to it, move the
// affected users' state, then close the epoch and replay held requests.
func (f *Fleet) migrateEpoch(tp *topology, p1, p2 placement.Placement, flipped []bool, s int, opts ResizeOptions, st *ResizeStats) {
	flipped[s] = true
	flip := append([]bool(nil), flipped...)
	f.storeRoute(&routeTable{place: p2, prev: p1, flipped: flip, from: s})

	// Barrier through s's worker queue: all tasks routed to s before
	// the flip are applied (the barrier also flushes the worker's
	// dispatchers, so parked batch misses land too) before any state
	// moves. Tasks routed *away* by the flip are held at their
	// destinations until this epoch closes.
	ack := make(chan struct{}, 1)
	f.queues[s%len(f.queues)] <- task{barrier: ack}
	<-ack

	// Snapshot the movers after the barrier, when every user the old
	// route could still create on s exists.
	src := tp.shards[s]
	src.mu.Lock()
	var movers []searchlog.UserID
	src.users.forEach(func(st *userState) {
		if p2.ShardOf(placement.UserKey(uint64(st.uid))) != s {
			movers = append(movers, st.uid)
		}
	})
	src.mu.Unlock()
	sort.Slice(movers, func(i, j int) bool { return movers[i] < movers[j] })

	for _, uid := range movers {
		dst := tp.shards[p2.ShardOf(placement.UserKey(uint64(uid)))]
		f.migrateUser(src, dst, uid, opts, st)
	}

	// Close the epoch — new arrivals for the moved users now serve
	// directly — then replay what was parked while it was open.
	f.storeRoute(&routeTable{place: p2, prev: p1, flipped: flip, from: -1})
	f.drainHolds(tp)
}

// migrateUser moves one user's personal state from src to dst.
// Failures (and DropState) cold-start the user at the destination; the
// user is never left resident on both shards.
func (f *Fleet) migrateUser(src, dst *shard, uid searchlog.UserID, opts ResizeOptions, st *ResizeStats) {
	ex, ok, err := src.exportUser(uid)
	if !ok {
		return
	}
	st.MovedUsers++
	if err != nil || opts.DropState {
		st.DroppedUsers++
		return
	}
	if err := dst.importUser(uid, ex); err != nil {
		st.DroppedUsers++
		return
	}
	st.MovedBytes += ex.bytes
	st.TransferBytes += ex.update.TotalBytes()
}

// maybeHold parks a task whose user is caught mid-epoch: the user's old
// home has flipped (so the task routed to its new home) but the open
// epoch has not yet delivered the user's state there. Tasks behind an
// existing hold queue are appended regardless of the epoch state, which
// keeps per-user order while the drainer replays the queue. The
// double-zero fast path keeps this off the serve path entirely outside
// a resize.
func (f *Fleet) maybeHold(t task) bool {
	if t.held {
		return false
	}
	if f.migrating.Load() == 0 && f.holdEntries.Load() == 0 {
		return false
	}
	sh := f.topo.Load().shards[t.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if q, ok := sh.holds[t.req.User]; ok {
		q.tasks = append(q.tasks, t)
		f.heldRequests.Add(1)
		return true
	}
	// No queue yet: open one only if, re-read under the shard lock (the
	// drainer orders its route publication before taking this lock),
	// the user's old home is the source of the open epoch and this task
	// has already been routed away from it.
	rt := f.route.Load()
	if rt.from < 0 || rt.prev == nil || t.shard == rt.from {
		return false
	}
	if rt.prev.ShardOf(placement.UserKey(uint64(t.req.User))) != rt.from {
		return false
	}
	sh.holds[t.req.User] = &holdQueue{tasks: []task{t}}
	f.holdEntries.Add(1)
	f.heldRequests.Add(1)
	return true
}

// drainHolds replays every held request, per user in FIFO order, after
// an epoch closes. Users are drained in ID order for reproducibility;
// ordering across users carries no semantics (each user maps to one
// shard and queue).
func (f *Fleet) drainHolds(tp *topology) {
	for _, sh := range tp.shards {
		for {
			sh.mu.Lock()
			var uid searchlog.UserID
			found := false
			for u := range sh.holds {
				if !found || u < uid {
					uid, found = u, true
				}
			}
			sh.mu.Unlock()
			if !found {
				break
			}
			f.drainUserHolds(sh, uid)
		}
	}
}

// drainUserHolds replays one user's hold queue. The queue entry stays
// in the map while a task is being replayed, so requests arriving
// concurrently append behind it instead of overtaking; the entry is
// deleted only once it is observed empty.
func (f *Fleet) drainUserHolds(sh *shard, uid searchlog.UserID) {
	for {
		sh.mu.Lock()
		q := sh.holds[uid]
		if q == nil {
			sh.mu.Unlock()
			return
		}
		if len(q.tasks) == 0 {
			delete(sh.holds, uid)
			f.holdEntries.Add(-1)
			sh.mu.Unlock()
			return
		}
		t := q.tasks[0]
		q.tasks = q.tasks[1:]
		sh.mu.Unlock()
		t.held = true
		f.process(t)
	}
}

// ShardLoad is one shard's serving occupancy.
type ShardLoad struct {
	Shard         int
	Served        int64
	Shed          int64
	Users         int
	PersonalBytes int64
}

// RetiredLoad aggregates the final serving counters of every shard a
// shrink has retired, under the sentinel shard ID -1. Adding it to
// ShardLoads keeps the Served/Shed occupancy cross-foot exact across
// resizes: a live shard's counters leave the topology with it, but the
// requests it served still happened.
func (f *Fleet) RetiredLoad() ShardLoad {
	return ShardLoad{
		Shard:  -1,
		Served: f.retiredServed.Load(),
		Shed:   f.retiredShed.Load(),
	}
}

// ShardLoads snapshots per-shard occupancy — the skew view that a
// fleet-wide Stats aggregate hides.
func (f *Fleet) ShardLoads() []ShardLoad {
	tp := f.topo.Load()
	out := make([]ShardLoad, len(tp.shards))
	for i, sh := range tp.shards {
		out[i] = ShardLoad{Shard: sh.id, Served: sh.served.Load(), Shed: sh.shed.Load()}
		sh.mu.Lock()
		out[i].Users = sh.users.resident
		out[i].PersonalBytes = sh.personalBytes
		sh.mu.Unlock()
	}
	return out
}

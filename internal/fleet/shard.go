package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/updater"
)

// userState is the per-user slice of a shard: the user's personal
// PocketSearch cache (their expansions and click scores) plus serving
// counters. The community component is shared by every user of the
// shard, so the personal cache starts empty and stays small.
//
// States live by value inside the shard's userTable arena (no per-user
// heap allocation for the common case), and the heavy parts — the
// simulated device and the personal cache built on it — are
// materialized lazily on the user's first cloud interaction. A user
// who only ever hits the community replica costs ~100 bytes, which is
// what lets one process hold millions of resident users. Laziness is
// model-invisible: building a device charges nothing, an untouched
// device clock is zero (observing zero on the timeline is a no-op),
// and base power is a fleet-wide constant (sh.basePower).
type userState struct {
	// uid and live identify the slot's owner; live distinguishes an
	// occupied slot from a freed one during arena iteration.
	uid  searchlog.UserID
	live bool
	// cache is the user's personal PocketSearch instance; nil until the
	// user's first cloud-classified request materializes it.
	cache *pocketsearch.Cache
	// clock is the user's virtual model clock: the modeltime view over
	// the user's simulated device, registered on the fleet timeline.
	// Every model-time read, migration sync and makespan observation
	// goes through it — serving code never touches the device clock
	// directly. Interned by value; valid only once cache is non-nil.
	// Guarded by the shard lock like the rest of the state.
	clock modeltime.UserClock
	// bytes is the user's personal flash footprint (logical result-db
	// bytes), maintained incrementally from expansion/eviction deltas.
	bytes  int64
	served int64
	hits   int64
	// missSeq numbers this user's cloud-classified misses in submission
	// order; it keys the pure fault hashes (internal/faults), so it must
	// be identical between the batched and unbatched paths — both bump
	// it at classification time, under the pending-miss ordering guard.
	missSeq uint64
	// refs indexes the user's personal records by eviction key, so the
	// budget enforcer can find this user's lowest-utility items without
	// scanning the whole shard. Nil until the first expansion.
	refs map[uint64]evictRef
	// rt is the user's resolved cohort runtime: the radio tier their
	// device is built with, the fault injector their cloud misses draw
	// from (nil when nothing injects for them), and the retry ladder
	// those misses walk. Resolved once in shard.user — a pure function
	// of the user ID, so a migrated user re-resolves to the same
	// runtime on the destination shard. Points into the immutable
	// cohortTable, shared across users.
	rt *cohortRT
}

// evictRef locates one personal record for eviction bookkeeping.
type evictRef struct {
	user       searchlog.UserID
	queryHash  uint64
	resultHash uint64
	bytes      int64
}

// userTable is the shard's compact user index: an arena of userState
// slots addressed either through a dense array (user IDs below the
// configured population, the contiguous ID range every scenario
// generator produces) or through a sparse fallback map for IDs outside
// it. Slots are allocated from fixed-size chunks that are never
// reallocated, so *userState pointers stay valid for the shard's
// lifetime; freed slots (migration exports) are recycled via a free
// list. Guarded by the shard lock.
type userTable struct {
	// slots maps uid → slot+1 for uid < len(slots); 0 means absent.
	slots []int32
	// sparse maps out-of-range uids → slot+1.
	sparse map[searchlog.UserID]int32
	// chunks is the slab arena; chunk addresses never change.
	chunks [][]userState
	free   []int32
	next   int32
	// resident counts live slots.
	resident int
}

// userChunkShift sizes arena chunks at 1<<userChunkShift states
// (~100 KB per chunk): big enough to amortize allocation, small enough
// that a lightly populated shard stays cheap.
const userChunkShift = 10

func newUserTable(population int) userTable {
	ut := userTable{}
	if population > 0 {
		ut.slots = make([]int32, population)
	}
	return ut
}

// at returns the state in slot s.
func (ut *userTable) at(s int32) *userState {
	return &ut.chunks[s>>userChunkShift][s&(1<<userChunkShift-1)]
}

// get returns the user's state, or nil when not resident.
func (ut *userTable) get(uid searchlog.UserID) *userState {
	if i := uint64(uid); i < uint64(len(ut.slots)) {
		if s := ut.slots[i]; s != 0 {
			return ut.at(s - 1)
		}
		return nil
	}
	if s, ok := ut.sparse[uid]; ok {
		return ut.at(s - 1)
	}
	return nil
}

// put allocates (or reuses) a slot for uid and returns its zeroed
// state with uid and live set. The uid must not be resident.
func (ut *userTable) put(uid searchlog.UserID) *userState {
	var s int32
	if n := len(ut.free); n > 0 {
		s = ut.free[n-1]
		ut.free = ut.free[:n-1]
	} else {
		s = ut.next
		if int(s)>>userChunkShift == len(ut.chunks) {
			ut.chunks = append(ut.chunks, make([]userState, 1<<userChunkShift))
		}
		ut.next++
	}
	if i := uint64(uid); i < uint64(len(ut.slots)) {
		ut.slots[i] = s + 1
	} else {
		if ut.sparse == nil {
			ut.sparse = make(map[searchlog.UserID]int32)
		}
		ut.sparse[uid] = s + 1
	}
	ut.resident++
	st := ut.at(s)
	*st = userState{uid: uid, live: true}
	return st
}

// remove frees uid's slot, zeroing the state (releasing its cache and
// maps to the collector) and recycling the slot.
func (ut *userTable) remove(uid searchlog.UserID) {
	var s int32
	if i := uint64(uid); i < uint64(len(ut.slots)) {
		s = ut.slots[i]
		if s == 0 {
			return
		}
		ut.slots[i] = 0
	} else {
		var ok bool
		s, ok = ut.sparse[uid]
		if !ok {
			return
		}
		delete(ut.sparse, uid)
	}
	*ut.at(s - 1) = userState{}
	ut.free = append(ut.free, s-1)
	ut.resident--
}

// forEach visits every live state in arena (slot) order. Callers that
// need a deterministic order sort afterwards by uid.
func (ut *userTable) forEach(fn func(*userState)) {
	for _, ch := range ut.chunks {
		for i := range ch {
			if st := &ch[i]; st.live {
				fn(st)
			}
		}
	}
}

// shard owns a deterministic slice of the user population: one shared
// community cache replica plus every resident user's personal state.
// All mutation happens under mu; the fleet guarantees that requests of
// one user are always executed in submission order (a user hashes to
// exactly one shard and each shard is drained by exactly one worker).
type shard struct {
	id   int
	eng  *engine.Engine
	opts pocketsearch.Options
	// perUserBytes caps each user's personal flash footprint; zero
	// means unlimited. Enforcement is deterministic: it runs after the
	// expansion that crossed the cap, evicting that user's
	// lowest-utility records first.
	perUserBytes int64
	// cohorts resolves each resident user to their device runtime
	// (radio link, fault injector, retry policy); faulted mirrors
	// Fleet.faulted so the serve paths branch on one bool. brks holds
	// one circuit breaker per cloud replica — index 0 is the legacy
	// single-backend breaker — so a dead replica cannot open the
	// breaker for its healthy peers (empty unless something injects and
	// the breaker is enabled).
	cohorts *cohortTable
	faulted bool
	brks    []*breaker
	// tl is the fleet-wide model timeline every resident user's clock
	// registers on; commClock is the community replica's own clock view
	// (community hits advance the replica's device, not the user's).
	tl        *modeltime.Timeline
	commClock *modeltime.UserClock
	// basePower is the devices' base power draw in watts — identical
	// for every simulated device in the fleet (all are built with the
	// default device config), captured once so energy attribution never
	// needs a user's device materialized.
	basePower float64
	// power is the shard's cloudlet-server energy envelope, and
	// provisionedAt the model instant the shard joined the topology
	// (zero for the initial build, the resize-time makespan for grown
	// shards) — the idle integral runs from there. provisionedAt is
	// written before the shard is published and read-only afterwards.
	power         energy.ShardPower
	provisionedAt time.Duration

	// served and shed are this shard's occupancy counters, bumped
	// lock-free on the completion paths so shard skew is observable
	// without touching mu. busyNS accumulates the server-local part of
	// every served response's modeled latency, feeding the active term
	// of the shard power model.
	served atomic.Int64
	shed   atomic.Int64
	busyNS atomic.Int64

	mu        sync.Mutex
	community *pocketsearch.Cache
	users     userTable
	// keys routes cloudletos eviction keys back to their owner.
	keys          map[uint64]evictRef
	personalBytes int64
	// pendingMiss marks users with a cloud miss parked in a batch
	// dispatcher (at most one per user: the owning worker blocks on it
	// before serving the user's next request, so per-user submission
	// order — and therefore every per-user outcome — is identical to
	// the unbatched path).
	pendingMiss map[searchlog.UserID]*missTask
	// holds parks requests for users caught mid-migration: their old
	// home shard has flipped but their state has not landed here yet.
	// Each queue is drained in FIFO order once the user's migration
	// epoch completes (see migrate.go), preserving per-user submission
	// order across the move.
	holds map[searchlog.UserID]*holdQueue
}

// itemKey derives the stable eviction key of a (user, result) personal
// record via splitmix64 finalization.
func itemKey(uid searchlog.UserID, resultHash uint64) uint64 {
	x := (uint64(uid)+1)*0x9E3779B97F4A7C15 ^ resultHash
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// newShard builds one shard: a community cache replica preloaded with
// the shared content (provisioned overnight, so its model clock is
// reset afterwards) and an empty user arena.
func newShard(id int, cfg Config, ct *cohortTable, tl *modeltime.Timeline) (*shard, error) {
	commOpts := cfg.Options
	// The community replica is shared by every user of the shard, so
	// it must never absorb one user's personalization — and it runs on
	// the fleet-wide radio tier regardless of cohorts.
	commOpts.DisablePersonalization = true
	dev := device.New(device.Config{}, cfg.Radio, flashsim.Params{})
	community, err := pocketsearch.Build(dev, cfg.Engine, cfg.Content, commOpts)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d community build: %w", id, err)
	}
	dev.Reset()
	sh := &shard{
		id:           id,
		eng:          cfg.Engine,
		opts:         cfg.Options,
		perUserBytes: cfg.PerUserBytes,
		cohorts:      ct,
		faulted:      ct.faulted,
		tl:           tl,
		commClock:    tl.UserClock(dev),
		basePower:    dev.Config().BasePower,
		power:        cfg.ShardPower.WithDefaults(),
		community:    community,
		users:        newUserTable(cfg.Population),
		keys:         make(map[uint64]evictRef),
		pendingMiss:  make(map[searchlog.UserID]*missTask),
		holds:        make(map[searchlog.UserID]*holdQueue),
	}
	if ct.faulted {
		n := cfg.Replicas
		if n < 1 {
			n = 1
		}
		for r := 0; r < n; r++ {
			if b := newBreaker(cfg.Breaker); b != nil {
				sh.brks = append(sh.brks, b)
			}
		}
	}
	return sh, nil
}

// breaker returns the circuit breaker for replica r, nil (permanently
// closed) when breakers are disabled or r is out of range.
func (sh *shard) breaker(r int) *breaker {
	if r < 0 || r >= len(sh.brks) {
		return nil
	}
	return sh.brks[r]
}

// user returns (lazily creating) the per-user state. The state starts
// compact — counters and cohort runtime only; the simulated device and
// personal cache are materialized on first need. Caller holds mu.
func (sh *shard) user(uid searchlog.UserID) (*userState, error) {
	if st := sh.users.get(uid); st != nil {
		return st, nil
	}
	st := sh.users.put(uid)
	st.rt = sh.cohorts.resolvePtr(uid)
	return st, nil
}

// materialize builds the user's simulated device and personal cache if
// they do not exist yet. Deferring this to the first cloud-classified
// request is model-invisible: device construction charges no time or
// energy, the fresh device clock is zero (a zero observation does not
// move the timeline), base power is the fleet-wide constant, and an
// empty personal cache can by definition serve no personal hit.
// Caller holds mu.
func (sh *shard) materialize(st *userState) error {
	if st.cache != nil {
		return nil
	}
	dev := device.New(device.Config{}, st.rt.link, flashsim.Params{})
	cache, err := pocketsearch.New(dev, sh.eng, sh.opts)
	if err != nil {
		return err
	}
	st.cache = cache
	st.clock = sh.tl.BoundClock(dev)
	return nil
}

// serve executes one request under the shard lock. The routing mirrors
// the paper's two-component cache (Figure 6) at fleet scale: the
// personal component is consulted first (it carries the user's own
// expansions and click scores), then the shared community replica, and
// only a miss in both pays the radio round trip — which also expands
// the user's personal component so the next repeat hits locally.
func (sh *shard) serve(req Request) Response {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	st, err := sh.user(req.User)
	if err != nil {
		return Response{Req: req, Err: err}
	}
	qh := hash64.Sum(req.Query)
	ch := hash64.Sum(req.Click)
	return sh.serveLocked(st, req, qh, ch, sh.tierOf(st, qh, ch))
}

// tierOf classifies which tier will serve the pair. A user whose
// personal cache is not materialized cannot have a personal hit.
// Caller holds mu.
func (sh *shard) tierOf(st *userState, qh, ch uint64) Source {
	switch {
	case st.cache != nil && st.cache.ContainsPair(qh, ch):
		return SourcePersonal
	case sh.community.ContainsPair(qh, ch):
		return SourceCommunity
	default:
		return SourceCloud
	}
}

// serveLocked serves one request against its classified tier; the
// cloud tier pays an unbatched radio round trip on the user's own
// link. Caller holds mu.
func (sh *shard) serveLocked(st *userState, req Request, qh, ch uint64, tier Source) Response {
	resp := Response{Req: req, Source: tier}
	switch tier {
	case SourcePersonal:
		resp.Outcome, resp.Err = st.cache.Query(req.Query, req.Click)
	case SourceCommunity:
		resp.Outcome, resp.Err = sh.community.Query(req.Query, req.Click)
	default:
		if err := sh.materialize(st); err != nil {
			return Response{Req: req, Err: err}
		}
		before := st.cache.DB().LogicalBytes()
		resp.Outcome, resp.Err = st.cache.Query(req.Query, req.Click)
		sh.recordExpansion(st, req.User, qh, ch, before)
	}
	sh.accountLocked(st, &resp)
	return resp
}

// routeBatched classifies one task for the miss-coalescing path.
// Exactly one of the returns is meaningful: a completed response (a
// local hit, or an error), a newly parked miss the caller must hand to
// a dispatcher, or the user's in-flight miss the caller must wait on
// before retrying — the ordering guard that keeps per-user outcomes
// byte-identical to the unbatched path.
func (sh *shard) routeBatched(t task) (resp Response, miss, waitFor *missTask) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if prev := sh.pendingMiss[t.req.User]; prev != nil {
		return Response{}, nil, prev
	}
	st, err := sh.user(t.req.User)
	if err != nil {
		return Response{Req: t.req, Err: err}, nil, nil
	}
	qh := hash64.Sum(t.req.Query)
	ch := hash64.Sum(t.req.Click)
	tier := sh.tierOf(st, qh, ch)
	if tier != SourceCloud {
		return sh.serveLocked(st, t.req, qh, ch, tier), nil, nil
	}
	if err := sh.materialize(st); err != nil {
		return Response{Req: t.req, Err: err}, nil, nil
	}
	mt := &missTask{t: t, done: make(chan struct{})}
	if sh.faulted {
		// Plan the miss's whole fault ladder now, against the user's
		// current model clock: the clock cannot move before the miss is
		// applied (pendingMiss blocks the user's next request), so the
		// plan — and with it every per-user outcome — is independent of
		// how the dispatcher later composes batches.
		mt.mc = sh.planCtxLocked(st, t.req.User, qh, ch)
	}
	sh.pendingMiss[t.req.User] = mt
	return Response{}, mt, nil
}

// applyBatchedMiss applies member i of a batched radio session to its
// user: the engine response was fetched by the batch's single engine
// visit, and the exchange costs are the member's slice of the shared
// session. It clears the user's pending-miss marker.
func (sh *shard) applyBatchedMiss(req Request, eresp engine.SearchResponse, found bool, bt radio.BatchTransfer, i int) Response {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	resp := Response{Req: req, Source: SourceCloud, BatchSize: bt.Size()}
	delete(sh.pendingMiss, req.User)
	st, err := sh.user(req.User)
	if err == nil {
		err = sh.materialize(st)
	}
	if err != nil {
		resp.Err = err
		return resp
	}
	qh := hash64.Sum(req.Query)
	ch := hash64.Sum(req.Click)
	before := st.cache.DB().LogicalBytes()
	resp.Outcome = st.cache.ApplyBatchedMiss(req.Query, req.Click, eresp, found, bt.ItemLatency(i), bt.ItemShare(i))
	sh.recordExpansion(st, req.User, qh, ch, before)
	st.served++
	st.clock.Observe()
	resp.RadioJ = bt.ItemRadioEnergy(st.rt.link, i)
	resp.EnergyJ = sh.basePower*resp.Outcome.ResponseTime().Seconds() + resp.RadioJ
	return resp
}

// recordExpansion books the personal-flash delta a served miss left
// behind and enforces the per-user budget. Caller holds mu.
func (sh *shard) recordExpansion(st *userState, uid searchlog.UserID, qh, ch uint64, before int64) {
	if delta := st.cache.DB().LogicalBytes() - before; delta > 0 {
		ref := evictRef{user: uid, queryHash: qh, resultHash: ch, bytes: delta}
		key := itemKey(uid, ch)
		if st.refs == nil {
			st.refs = make(map[uint64]evictRef)
		}
		st.refs[key] = ref
		sh.keys[key] = ref
		st.bytes += delta
		sh.personalBytes += delta
		sh.enforceUserBudget(st)
	}
}

// accountLocked applies the per-user serving counters and the modeled
// energy attribution: base power over the response time, plus — for an
// unbatched cloud miss — the radio-active energy of its exchange and,
// when the exchange opened a session (paid the wake-up), the session's
// eventual tail. Caller holds mu.
func (sh *shard) accountLocked(st *userState, resp *Response) {
	st.served++
	if resp.Outcome.Hit {
		st.hits++
	}
	resp.EnergyJ = sh.basePower * resp.Outcome.ResponseTime().Seconds()
	if resp.Source == SourceCloud && resp.Err == nil {
		resp.RadioJ = st.rt.link.ActiveEnergy(resp.Outcome.Radio.RadioActive)
		if !resp.Outcome.Radio.WasWarm {
			resp.RadioJ += st.rt.link.TailEnergy()
		}
		resp.EnergyJ += resp.RadioJ
	}
	if st.cache != nil {
		st.clock.Observe()
	}
	if resp.Source == SourceCommunity {
		// A community hit advanced the replica's device, not the user's.
		sh.commClock.Observe()
	}
}

// utilityOf is the eviction utility of a personal record: the best
// click score any query still gives it (Equation 1's S values), so a
// user's stale, decayed records go first.
func (st *userState) utilityOf(ref evictRef) float64 {
	if st.cache == nil {
		return 0
	}
	s, ok := st.cache.Table().Score(ref.queryHash, ref.resultHash)
	if !ok {
		return 0
	}
	return s
}

// enforceUserBudget evicts the user's lowest-utility personal records
// until the user is back under the per-user byte cap. Caller holds mu.
func (sh *shard) enforceUserBudget(st *userState) {
	if sh.perUserBytes <= 0 {
		return
	}
	for st.bytes > sh.perUserBytes && len(st.refs) > 0 {
		var victim uint64
		var victimRef evictRef
		best := false
		var bestScore float64
		for key, ref := range st.refs {
			s := st.utilityOf(ref)
			if !best || s < bestScore || (s == bestScore && ref.resultHash < victimRef.resultHash) {
				best, bestScore, victim, victimRef = true, s, key, ref
			}
		}
		sh.evictLocked(victim, victimRef)
	}
}

// evictLocked removes one personal record and its index entries.
// Caller holds mu.
func (sh *shard) evictLocked(key uint64, ref evictRef) int64 {
	st := sh.users.get(ref.user)
	if st == nil || st.cache == nil {
		return 0
	}
	freed := st.cache.EvictResult(ref.resultHash)
	st.bytes -= freed
	sh.personalBytes -= freed
	delete(st.refs, key)
	delete(sh.keys, key)
	return freed
}

// --- cloudletos.Cloudlet: the shard's personal state is one cloudlet
// under the fleet-wide storage budget, so the Section 7 manager can
// arbitrate flash across users exactly as it does across cloudlets.

// Name implements cloudletos.Cloudlet.
func (sh *shard) Name() string { return fmt.Sprintf("pocketsearch-shard-%d", sh.id) }

// Items implements cloudletos.Cloudlet: every resident user's personal
// records, in deterministic key order. Relation carries the query hash
// so coordinated eviction can link a search record with same-query
// items in sibling cloudlets (ads, maps).
func (sh *shard) Items() []cloudletos.Item {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys := make([]uint64, 0, len(sh.keys))
	for k := range sh.keys {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]cloudletos.Item, 0, len(keys))
	for _, k := range keys {
		ref := sh.keys[k]
		st := sh.users.get(ref.user)
		out = append(out, cloudletos.Item{
			Key:      k,
			Relation: ref.queryHash,
			Bytes:    ref.bytes,
			Utility:  st.utilityOf(ref),
		})
	}
	return out
}

// Evict implements cloudletos.Cloudlet.
func (sh *shard) Evict(keys []uint64) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var freed int64
	for _, k := range keys {
		if ref, ok := sh.keys[k]; ok {
			freed += sh.evictLocked(k, ref)
		}
	}
	return freed
}

// Read implements cloudletos.Cloudlet: a mediated read of one personal
// record, charged to the owning user's device like any flash read.
func (sh *shard) Read(key uint64) ([]byte, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ref, ok := sh.keys[key]
	if !ok {
		return nil, false
	}
	st := sh.users.get(ref.user)
	if st == nil || st.cache == nil {
		return nil, false
	}
	rec, _, err := st.cache.DB().Get(ref.resultHash)
	if err != nil {
		return nil, false
	}
	return rec, true
}

// --- state migration: a user's personal component is packaged through
// the updater's wire format (the same bytes the overnight cycle would
// ship) so resharding reuses a tested serialization instead of
// inventing one.

// userExport is one user's personal state in transit between shards.
type userExport struct {
	update updater.Update
	bytes  int64
	served int64
	hits   int64
	// missSeq keys the pure fault hashes; it must survive the move or
	// per-user fault outcomes would diverge after a resize.
	missSeq uint64
	refs    map[uint64]evictRef
	// clock is the source device's model time; the destination device
	// syncs forward to it so the user's clock never runs backwards.
	clock time.Duration
}

// exportUser removes a user's personal state from the shard and
// returns it packaged for import. ok is false when the user is not
// resident. When the export itself fails (err non-nil) the state has
// still been removed — the caller cold-starts the user at the
// destination and books the drop. A user whose lazy cache was never
// materialized is materialized first, so the wire format — and the
// byte-identical round-trip contract — is the same for every mover.
func (sh *shard) exportUser(uid searchlog.UserID) (ex userExport, ok bool, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.users.get(uid)
	if st == nil {
		return userExport{}, false, nil
	}
	for key := range st.refs {
		delete(sh.keys, key)
	}
	sh.personalBytes -= st.bytes
	if err := sh.materialize(st); err != nil {
		sh.users.remove(uid)
		return userExport{}, true, err
	}
	upd, err := updater.ExportState(st.cache)
	if err != nil {
		sh.users.remove(uid)
		return userExport{}, true, err
	}
	ex = userExport{
		update:  upd,
		bytes:   st.bytes,
		served:  st.served,
		hits:    st.hits,
		missSeq: st.missSeq,
		refs:    st.refs,
		clock:   st.clock.Now(),
	}
	// remove zeroes the slot; ex.refs still references the map object.
	sh.users.remove(uid)
	return ex, true, nil
}

// importUser installs an exported user on this shard: a fresh device
// and cache are built, the export is applied through the normal update
// path, the eviction index is rebuilt, and the per-user budget is
// re-enforced under this shard's cap. The device clock syncs forward
// to the exported clock (import happens off-device; no energy is
// charged beyond the modeled patch flash time).
func (sh *shard) importUser(uid searchlog.UserID, ex userExport) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.users.get(uid) != nil {
		return fmt.Errorf("fleet: user %d already resident on shard %d", uid, sh.id)
	}
	st, err := sh.user(uid)
	if err != nil {
		return err
	}
	if err := sh.materialize(st); err != nil {
		sh.users.remove(uid)
		return err
	}
	if _, err := updater.Apply(st.cache, ex.update); err != nil {
		sh.users.remove(uid)
		return err
	}
	st.clock.SyncForward(ex.clock)
	st.served = ex.served
	st.hits = ex.hits
	st.missSeq = ex.missSeq
	st.bytes = st.cache.DB().LogicalBytes()
	sh.personalBytes += st.bytes
	for key, ref := range ex.refs {
		if st.refs == nil {
			st.refs = make(map[uint64]evictRef)
		}
		st.refs[key] = ref
		sh.keys[key] = ref
	}
	sh.enforceUserBudget(st)
	return nil
}

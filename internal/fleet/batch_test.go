package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// userTrace is one user's per-request outcome sequence, the unit of the
// batching determinism guarantee.
type userTrace struct {
	hits       []bool
	sources    []Source
	missRadioJ float64
	misses     int
	batched    int
}

// runTraced drives every user's month-1 tape through the fleet from its
// own goroutine (closed loop: each user waits for each response) and
// returns per-user outcome traces plus the fleet counters.
func runTraced(t *testing.T, f *Fleet, g *workload.Generator, users []workload.UserProfile) map[searchlog.UserID]*userTrace {
	t.Helper()
	traces := make(map[searchlog.UserID]*userTrace, len(users))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, up := range users {
		wg.Add(1)
		go func(up workload.UserProfile) {
			defer wg.Done()
			tr := &userTrace{}
			for _, req := range requestsFor(g, up, 1) {
				resp := f.Do(req)
				if resp.Shed || resp.Err != nil {
					t.Errorf("user %d request failed: %+v", up.ID, resp)
					return
				}
				tr.hits = append(tr.hits, resp.Hit())
				tr.sources = append(tr.sources, resp.Source)
				if resp.Source == SourceCloud {
					tr.misses++
					tr.missRadioJ += resp.RadioJ
					if resp.BatchSize > 0 {
						tr.batched++
					}
				}
			}
			mu.Lock()
			traces[up.ID] = tr
			mu.Unlock()
		}(up)
	}
	wg.Wait()
	return traces
}

// TestBatchedOutcomesMatchUnbatched is the determinism regression for
// miss coalescing: at closed-loop concurrency 40 on a single shard —
// the worst case for reordering hazards — every user's per-request
// hit/miss sequence, every serving counter and the resident footprint
// must be byte-identical with and without batching, while the mean
// radio energy per cloud miss drops measurably.
func TestBatchedOutcomesMatchUnbatched(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	users := g.Users()[:40]

	run := func(batch BatchOptions) (map[searchlog.UserID]*userTrace, Stats, BatchStats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.Shards = 1
			cfg.Workers = 1
			cfg.QueueDepth = 4096
			cfg.Batch = batch
		})
		traces := runTraced(t, f, g, users)
		return traces, f.Stats(), f.BatchStats()
	}

	plain, plainStats, plainBatch := run(BatchOptions{})
	coal, coalStats, coalBatch := run(BatchOptions{Enabled: true, Linger: time.Millisecond})

	if plainBatch.Batches != 0 {
		t.Errorf("unbatched fleet recorded %d batches", plainBatch.Batches)
	}
	if !reflect.DeepEqual(plainStats, coalStats) {
		t.Errorf("fleet counters diverge:\n  unbatched: %+v\n  batched:   %+v", plainStats, coalStats)
	}
	if len(coal) != len(plain) {
		t.Fatalf("traced %d users batched vs %d unbatched", len(coal), len(plain))
	}
	var plainJ, coalJ float64
	var misses int
	for uid, p := range plain {
		c := coal[uid]
		if c == nil {
			t.Fatalf("user %d missing from batched run", uid)
		}
		if len(c.hits) != len(p.hits) {
			t.Errorf("user %d served %d batched vs %d unbatched", uid, len(c.hits), len(p.hits))
			continue
		}
		for i := range p.hits {
			if c.hits[i] != p.hits[i] || c.sources[i] != p.sources[i] {
				t.Errorf("user %d request %d diverges: batched %v/%v, unbatched %v/%v",
					uid, i, c.hits[i], c.sources[i], p.hits[i], p.sources[i])
				break
			}
		}
		plainJ += p.missRadioJ
		coalJ += c.missRadioJ
		misses += p.misses
		if c.batched != c.misses {
			t.Errorf("user %d: %d of %d misses batched; with batching on, all must be", uid, c.batched, c.misses)
		}
	}

	// Batch accounting must be self-consistent and actually coalesce.
	if coalBatch.Batches == 0 || coalBatch.BatchedMisses != int64(coalStats.CloudMisses) {
		t.Errorf("batch stats inconsistent with %d cloud misses: %+v", coalStats.CloudMisses, coalBatch)
	}
	if coalBatch.Wakeups != coalBatch.Batches {
		t.Errorf("wakeups %d != batches %d; dispatcher sessions always start cold", coalBatch.Wakeups, coalBatch.Batches)
	}
	var sized int64
	for size, n := range coalBatch.SizeCounts {
		if size < 1 || size > DefaultMaxBatch {
			t.Errorf("impossible batch size %d", size)
		}
		sized += n
	}
	if sized != coalBatch.Batches {
		t.Errorf("size histogram sums to %d, want %d", sized, coalBatch.Batches)
	}
	if coalBatch.MaxBatch < 2 {
		t.Errorf("max batch %d; 40 concurrent users on one shard should coalesce", coalBatch.MaxBatch)
	}

	// The acceptance criterion: mean radio energy per miss drops.
	if misses == 0 {
		t.Fatal("no cloud misses; workload cannot exercise batching")
	}
	plainPer, coalPer := plainJ/float64(misses), coalJ/float64(misses)
	if coalPer >= 0.9*plainPer {
		t.Errorf("radio energy per miss %.3f J batched vs %.3f J unbatched; want a measurable drop", coalPer, plainPer)
	}
	t.Logf("radio energy per miss: %.3f J unbatched → %.3f J batched (%d misses, mean batch %.2f)",
		plainPer, coalPer, misses, coalBatch.MeanSize())
}

// TestBatchedOutcomesMatchUnbatchedSharded repeats the determinism
// check on a sharded fleet with a fleet-wide dispatcher — misses of
// different shards share sessions, crossing worker boundaries.
func TestBatchedOutcomesMatchUnbatchedSharded(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	users := g.Users()[:32]

	run := func(batch BatchOptions) (map[searchlog.UserID]*userTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Batch = batch
		})
		traces := runTraced(t, f, g, users)
		return traces, f.Stats()
	}

	plain, plainStats := run(BatchOptions{})
	coal, coalStats := run(BatchOptions{Enabled: true, FleetWide: true, Linger: time.Millisecond})
	if !reflect.DeepEqual(plainStats, coalStats) {
		t.Errorf("fleet counters diverge:\n  unbatched: %+v\n  fleet-wide batched: %+v", plainStats, coalStats)
	}
	for uid, p := range plain {
		c := coal[uid]
		if c == nil || len(c.hits) != len(p.hits) {
			t.Errorf("user %d trace length differs", uid)
			continue
		}
		for i := range p.hits {
			if c.hits[i] != p.hits[i] || c.sources[i] != p.sources[i] {
				t.Errorf("user %d request %d diverges under fleet-wide batching", uid, i)
				break
			}
		}
	}
}

// TestBatchedSameUserOrdering hammers the pending-miss guard: a single
// user's tape is full of back-to-back misses, so nearly every request
// finds the previous miss still in flight and must wait for it. The
// outcome sequence must still match the unbatched run exactly.
func TestBatchedSameUserOrdering(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	up := g.Users()[0]

	run := func(batch BatchOptions) ([]bool, []Source) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.Shards = 1
			cfg.Workers = 1
			cfg.QueueDepth = 4096
			cfg.Batch = batch
		})
		var hits []bool
		var sources []Source
		for _, req := range requestsFor(g, up, 1) {
			resp := f.Do(req)
			if resp.Shed || resp.Err != nil {
				t.Fatalf("request failed: %+v", resp)
			}
			hits = append(hits, resp.Hit())
			sources = append(sources, resp.Source)
		}
		return hits, sources
	}

	ph, ps := run(BatchOptions{})
	bh, bs := run(BatchOptions{Enabled: true})
	if len(ph) != len(bh) {
		t.Fatalf("served %d batched vs %d unbatched", len(bh), len(ph))
	}
	for i := range ph {
		if ph[i] != bh[i] || ps[i] != bs[i] {
			t.Fatalf("request %d diverges: batched %v/%v, unbatched %v/%v", i, bh[i], bs[i], ph[i], ps[i])
		}
	}
}

// TestDrainFlushesLingeringBatches submits fire-and-forget misses into
// a dispatcher with a linger window far longer than the test and checks
// Drain forces them out rather than waiting for the timer.
func TestDrainFlushesLingeringBatches(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 2
		cfg.Workers = 2
		cfg.QueueDepth = 4096
		cfg.Batch = BatchOptions{Enabled: true, Linger: time.Minute}
	})

	var accepted int64
	for _, up := range g.Users()[:8] {
		tape := requestsFor(g, up, 1)
		if len(tape) > 40 {
			tape = tape[:40]
		}
		for _, req := range tape {
			if f.Submit(req) {
				accepted++
			}
		}
	}
	done := make(chan struct{})
	go func() { f.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain did not flush lingering batches")
	}
	st := f.Stats()
	if st.Served != accepted {
		t.Errorf("served %d, want %d accepted", st.Served, accepted)
	}
	if bs := f.BatchStats(); st.CloudMisses > 0 && bs.BatchedMisses != st.CloudMisses {
		t.Errorf("batched misses %d, want every one of %d cloud misses", bs.BatchedMisses, st.CloudMisses)
	}
}

// TestCloseFlushesPendingBatches closes the fleet while misses are
// lingering and checks no submitted request is lost.
func TestCloseFlushesPendingBatches(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 1
		cfg.QueueDepth = 4096
		cfg.Batch = BatchOptions{Enabled: true, Linger: time.Minute}
	})
	tape := requestsFor(g, g.Users()[1], 1)
	if len(tape) > 30 {
		tape = tape[:30]
	}
	var accepted int64
	for _, req := range tape {
		if f.Submit(req) {
			accepted++
		}
	}
	f.Close()
	if st := f.Stats(); st.Served != accepted {
		t.Errorf("served %d after Close, want %d accepted", st.Served, accepted)
	}
}

// TestBatchOptionsDefaults checks the zero value picks sane knobs.
func TestBatchOptionsDefaults(t *testing.T) {
	o := BatchOptions{}.withDefaults()
	if o.MaxBatch != DefaultMaxBatch || o.Linger != DefaultLinger {
		t.Errorf("defaults = %+v", o)
	}
	o = BatchOptions{MaxBatch: 3, Linger: time.Second}.withDefaults()
	if o.MaxBatch != 3 || o.Linger != time.Second {
		t.Errorf("explicit knobs overridden: %+v", o)
	}
	var s BatchStats
	if s.MeanSize() != 0 {
		t.Error("MeanSize of zero stats should be 0")
	}
}

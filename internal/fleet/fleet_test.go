package fleet

import (
	"reflect"
	"sync"
	"testing"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// smallGen builds a fast generator: a modest universe and population
// (the replay harness's test dimensions).
func smallGen(t testing.TB, users int) *workload.Generator {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(u, users, 7)
	cfg.FavNavRanks = 2000
	cfg.FavNonNavRanks = 6000
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallContent(t testing.TB, g *workload.Generator) cachegen.Content {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	n, err := cachegen.SelectByShare(tbl, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	return cachegen.Generate(tbl, g.Config().Universe, n)
}

func newTestFleet(t testing.TB, g *workload.Generator, content cachegen.Content, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Engine:  engine.New(g.Config().Universe),
		Content: content,
		Shards:  4,
		Workers: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// requestsFor materializes one user's month stream as fleet requests.
func requestsFor(g *workload.Generator, up workload.UserProfile, month int) []Request {
	u := g.Config().Universe
	stream := g.UserStream(up, month)
	reqs := make([]Request, len(stream))
	for i, e := range stream {
		reqs[i] = Request{
			User:  e.User,
			Query: u.QueryText(u.QueryOf(e.Pair)),
			Click: u.ResultURL(u.ResultOf(e.Pair)),
		}
	}
	return reqs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing engine should fail")
	}
}

func TestSourceString(t *testing.T) {
	names := map[Source]string{
		SourceShed: "shed", SourcePersonal: "personal",
		SourceCommunity: "community", SourceCloud: "cloud",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Source(42).String() == "" {
		t.Error("unknown source should stringify")
	}
}

// TestRoutingTiers verifies the three-tier routing: community content
// hits the shared replica, tail pairs miss to the cloud, and a repeat
// of a missed pair is served from the now-expanded personal component.
func TestRoutingTiers(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, nil)
	u := g.Config().Universe
	uid := g.Users()[0].ID

	// A pair in the community content: first touch hits the replica.
	var commPair searchlog.PairID
	found := false
	for p := range content.Scores {
		commPair = p
		found = true
		break
	}
	if !found {
		t.Fatal("content is empty")
	}
	reqOf := func(p searchlog.PairID) Request {
		return Request{User: uid, Query: u.QueryText(u.QueryOf(p)), Click: u.ResultURL(u.ResultOf(p))}
	}
	if resp := f.Do(reqOf(commPair)); resp.Source != SourceCommunity || !resp.Hit() {
		t.Fatalf("community pair served from %v (hit=%v), want community hit", resp.Source, resp.Hit())
	}

	// A deep tail pair outside the content: cloud miss, then personal.
	tail := u.NonNavPair(u.Config().NonNavPairs - 1)
	if _, ok := content.Scores[tail]; ok {
		t.Fatal("tail pair unexpectedly popular")
	}
	if resp := f.Do(reqOf(tail)); resp.Source != SourceCloud || resp.Hit() {
		t.Fatalf("tail pair served from %v, want cloud miss", resp.Source)
	}
	if resp := f.Do(reqOf(tail)); resp.Source != SourcePersonal || !resp.Hit() {
		t.Fatalf("repeated tail pair served from %v (hit=%v), want personal hit", resp.Source, resp.Hit())
	}

	st := f.Stats()
	if st.Served != 3 || st.CommunityHits != 1 || st.CloudMisses != 1 || st.PersonalHits != 1 {
		t.Errorf("stats %+v, want 1 hit per tier over 3 served", st)
	}
	if st.Users != 1 {
		t.Errorf("resident users = %d, want 1", st.Users)
	}
	if st.PersonalBytes <= 0 {
		t.Errorf("personal bytes = %d, want > 0 after an expansion", st.PersonalBytes)
	}
}

// TestDeterministicOutcomes drives two independent fleets with the
// same request sequence and expects identical serving outcomes — the
// property that makes fleet-scale hit rates reproducible run to run.
func TestDeterministicOutcomes(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	users := g.Users()[:12]

	run := func() (Stats, float64) {
		f := newTestFleet(t, g, content, nil)
		// Interleave users round-robin to exercise cross-user mixing.
		var tapes [][]Request
		for _, up := range users {
			tapes = append(tapes, requestsFor(g, up, 1))
		}
		for i := 0; ; i++ {
			progressed := false
			for _, tape := range tapes {
				if i < len(tape) {
					progressed = true
					if resp := f.Do(tape[i]); resp.Shed || resp.Err != nil {
						t.Fatalf("request shed or errored: %+v", resp)
					}
				}
			}
			if !progressed {
				break
			}
		}
		return f.Stats(), f.MeanUserHitRate()
	}

	s1, hr1 := run()
	s2, hr2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ across identical runs:\n  %+v\n  %+v", s1, s2)
	}
	if hr1 != hr2 {
		t.Errorf("mean user hit rate differs: %v vs %v", hr1, hr2)
	}
	if s1.Served == 0 || s1.HitRate() <= 0 {
		t.Errorf("implausible run: %+v", s1)
	}
}

// TestFleetMatchesReplay checks that the sharded fleet reproduces the
// single-device replay harness exactly: for every user, the fleet's
// personal-plus-community routing yields the same per-user volume and
// hit count as replaying that user against one merged Full-mode cache.
func TestFleetMatchesReplay(t *testing.T) {
	g := smallGen(t, 200)
	content := smallContent(t, g)

	res, err := replay.Run(replay.Config{Gen: g, Content: content, Mode: replay.Full, UsersPerClass: 8, Month: 1})
	if err != nil {
		t.Fatal(err)
	}

	f := newTestFleet(t, g, content, nil)
	for _, uo := range res.Users {
		var hits, volume int
		for _, req := range requestsFor(g, uo.Profile, 1) {
			resp := f.Do(req)
			if resp.Shed || resp.Err != nil {
				t.Fatalf("user %d request failed: %+v", uo.Profile.ID, resp)
			}
			volume++
			if resp.Hit() {
				hits++
			}
		}
		if volume != uo.Volume || hits != uo.Hits {
			t.Errorf("user %d (class %v): fleet %d/%d, replay %d/%d",
				uo.Profile.ID, uo.Profile.Class, hits, volume, uo.Hits, uo.Volume)
		}
	}
}

// TestConcurrentShardStress hammers a single shard from many client
// goroutines while monitors read fleet and community stats — the
// -race proof of the shard-lock and stats-lock contracts.
func TestConcurrentShardStress(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1 // every user lands on the same shard
		cfg.Workers = 1
		cfg.QueueDepth = 4096
	})

	const clients = 8
	users := g.Users()
	done := make(chan struct{})
	var monitors sync.WaitGroup
	for m := 0; m < 2; m++ {
		monitors.Add(1)
		go func() {
			defer monitors.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = f.Stats()
					_ = f.CommunityStats()
					_ = f.MeanUserHitRate()
				}
			}
		}()
	}

	var total int64
	var mu sync.Mutex
	var clientsWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientsWG.Add(1)
		go func(c int) {
			defer clientsWG.Done()
			tape := requestsFor(g, users[c%len(users)], 1)
			if len(tape) > 60 {
				tape = tape[:60]
			}
			var n int64
			for _, req := range tape {
				resp := f.Do(req)
				if resp.Err != nil {
					t.Errorf("client %d: %v", c, resp.Err)
					return
				}
				if !resp.Shed {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(c)
	}
	clientsWG.Wait()
	close(done)
	monitors.Wait()

	st := f.Stats()
	if st.Served != total {
		t.Errorf("served %d, want %d", st.Served, total)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	comm := f.CommunityStats()
	if int64(comm.Queries) != st.CommunityHits {
		t.Errorf("community replica queries %d, want %d (one per community hit)", comm.Queries, st.CommunityHits)
	}
}

// TestBackpressureSheds overloads a tiny queue with fire-and-forget
// submissions and expects explicit sheds, never blocking or loss.
func TestBackpressureSheds(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 1
		cfg.QueueDepth = 1
	})

	const burst = 2000
	tape := requestsFor(g, g.Users()[0], 1)
	var accepted int64
	for i := 0; i < burst; i++ {
		if f.Submit(tape[i%len(tape)]) {
			accepted++
		}
	}
	f.Drain()

	st := f.Stats()
	if st.Served+st.Shed != burst {
		t.Errorf("served %d + shed %d != %d submitted", st.Served, st.Shed, burst)
	}
	if st.Served != accepted {
		t.Errorf("served %d, want %d accepted", st.Served, accepted)
	}
	if st.Shed == 0 {
		t.Error("expected sheds when bursting a depth-1 queue")
	}
	if st.ShedRate() <= 0 || st.ShedRate() >= 1 {
		t.Errorf("shed rate %v outside (0, 1)", st.ShedRate())
	}
}

// TestSubmitAfterCloseSheds verifies the closed fleet rejects rather
// than panics or blocks.
func TestSubmitAfterCloseSheds(t *testing.T) {
	g := smallGen(t, 16)
	f := newTestFleet(t, g, smallContent(t, g), nil)
	tape := requestsFor(g, g.Users()[0], 1)
	f.Close()
	if f.Submit(tape[0]) {
		t.Error("Submit after Close should shed")
	}
	if resp := f.Do(tape[0]); !resp.Shed {
		t.Error("Do after Close should shed")
	}
	if st := f.Stats(); st.Shed != 2 {
		t.Errorf("shed = %d, want 2", st.Shed)
	}
}

// TestPerUserBudget caps each user's personal footprint and checks the
// serve-path enforcement keeps every user under it, with the evicted
// tail pairs missing again on re-access.
func TestPerUserBudget(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	const budget = 64 << 10
	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.PerUserBytes = budget
	})

	users := g.Users()[:8]
	for _, up := range users {
		for _, req := range requestsFor(g, up, 1) {
			if resp := f.Do(req); resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
	}

	st := f.Stats()
	if st.CloudMisses == 0 {
		t.Fatal("expected cloud misses to build personal state")
	}
	if st.PersonalBytes > int64(len(users))*budget {
		t.Errorf("personal bytes %d exceed %d users × %d budget", st.PersonalBytes, len(users), budget)
	}
	for _, sh := range f.topo.Load().shards {
		sh.mu.Lock()
		sh.users.forEach(func(ust *userState) {
			if ust.bytes > budget {
				t.Errorf("user %d over budget: %d > %d", ust.uid, ust.bytes, budget)
			}
		})
		sh.mu.Unlock()
	}
}

// TestReclaimPersonal frees fleet-wide personal flash through the
// Section 7 manager and verifies the accounting is consistent.
func TestReclaimPersonal(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	f := newTestFleet(t, g, content, nil)

	for _, up := range g.Users()[:8] {
		for _, req := range requestsFor(g, up, 1) {
			if resp := f.Do(req); resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
	}
	before := f.Stats().PersonalBytes
	if before == 0 {
		t.Fatal("no personal state accumulated")
	}

	want := before / 2
	freed := f.ReclaimPersonal(want, false)
	if freed < want {
		t.Errorf("reclaimed %d, want at least %d", freed, want)
	}
	after := f.Stats().PersonalBytes
	if after != before-freed {
		t.Errorf("personal bytes %d, want %d - %d = %d", after, before, freed, before-freed)
	}
}

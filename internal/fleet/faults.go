package fleet

import (
	"context"
	"sync"
	"time"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

// Default circuit-breaker constants.
const (
	DefaultBreakerThreshold = 8
	DefaultBreakerCooldown  = 64
)

// BreakerOptions configure the per-shard circuit breaker. The breaker
// only governs the *wall-clock* retry pacing (faults.RetryPolicy's
// WallPause): when a shard's link looks persistently dead — Threshold
// consecutive misses planned to exhaustion — the breaker opens and the
// next Cooldown misses skip their real pause, so a load test against a
// dead zone degrades fast instead of serializing behind sleeps. It
// never touches modeled outcomes, which stay byte-deterministic.
type BreakerOptions struct {
	// Threshold is the consecutive planned-failure count that opens the
	// breaker. Zero selects DefaultBreakerThreshold; negative disables
	// the breaker entirely.
	Threshold int
	// Cooldown is how many misses skip pacing while open before a
	// half-open probe is paced again (a probe that fails restarts the
	// cooldown; one that succeeds closes the breaker). Zero selects
	// DefaultBreakerCooldown.
	Cooldown int
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold == 0 {
		o.Threshold = DefaultBreakerThreshold
	}
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultBreakerCooldown
	}
	return o
}

// breaker is one shard's circuit breaker. All methods are nil-safe: a
// nil breaker is permanently closed (always paces, never opens), which
// is how Threshold < 0 and fault-free fleets run.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  int
	fails     int // consecutive planned failures while closed
	skipped   int // misses that skipped pacing since the breaker opened
	open      bool
	opens     int64
}

func newBreaker(o BreakerOptions) *breaker {
	if o.Threshold < 0 {
		return nil
	}
	return &breaker{threshold: o.Threshold, cooldown: o.Cooldown}
}

// pace reports whether this miss should take its real retry pause.
// Closed: always. Open: skip for the cooldown, then pace one half-open
// probe whose outcome (record) decides what happens next.
func (b *breaker) pace() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.skipped < b.cooldown {
		b.skipped++
		return false
	}
	return true
}

// record books one miss's planned outcome into the breaker state.
func (b *breaker) record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.open, b.fails, b.skipped = false, 0, 0
		return
	}
	if b.open {
		if b.skipped >= b.cooldown {
			// The half-open probe failed: restart the cooldown.
			b.skipped = 0
		}
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open, b.skipped = true, 0
		b.opens++
	}
}

// openCount returns the closed→open transitions so far.
func (b *breaker) openCount() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// missCtx carries a cloud-classified miss's fault plan from
// classification to execution. The plan is computed under the shard
// lock against the user's model clock and stays valid until the miss
// is applied: at most one miss per user is in flight (pendingMiss), so
// nothing advances the user's device in between.
type missCtx struct {
	qh, ch uint64
	// plan is the ladder the user's timeline rides: the single-backend
	// plan, or — when hedged — the winning dispatch's plan (the
	// primary's when every dispatch exhausted).
	plan faults.Plan
	// hedged marks a miss planned across replicas; hplan then carries
	// the full dispatch set for breaker recording, telemetry and the
	// losers' wasted-work charges.
	hedged bool
	hplan  faults.HedgedPlan
}

// planCtxLocked plans one cloud miss's whole attempt/backoff ladder —
// against the single backend, or hedged across the replica set when
// the user's cohort hedges. Caller holds mu. The per-user miss
// sequence number feeds the pure fault hashes so repeats of a query
// draw fresh outcomes, and — being incremented in per-user submission
// order — is identical between the batched and unbatched paths.
func (sh *shard) planCtxLocked(st *userState, uid searchlog.UserID, qh, ch uint64) missCtx {
	st.missSeq++
	mc := missCtx{qh: qh, ch: ch}
	pr := sh.cohorts.pricer
	if st.rt.hedged() {
		mc.hedged = true
		mc.hplan = faults.PlanHedged(st.rt.injs, st.rt.retry, st.rt.hedge, st.rt.link, pr,
			st.clock.Now(), st.cache.Device().Link().TailRemaining(), uint64(uid), qh, st.missSeq)
		mc.plan = mc.hplan.Delivered()
		return mc
	}
	warm := st.cache.Device().Link().State() != radio.Idle
	mc.plan = faults.PlanMiss(st.rt.inj, st.rt.retry, st.rt.link, pr, 0, st.clock.Now(), warm, uint64(uid), qh, st.missSeq)
	return mc
}

// hedgeWait returns the extra user-visible wait the hedge added on top
// of the delivered ladder (zero for unhedged misses).
func (mc missCtx) hedgeWait() time.Duration {
	if !mc.hedged {
		return 0
	}
	return mc.hplan.Wait
}

// backendWait is the modeled backend time the delivered ladder spent at
// its replica: failed exchanges' queue-and-service time plus the
// successful exchange's own admission. Zero without a backend model, so
// every charge site below is byte-neutral when the model is off.
func (mc missCtx) backendWait() time.Duration {
	return mc.plan.BackendWait + mc.plan.FinalBackend()
}

// hedgeWasteJ prices the hedge's losing dispatches in radio energy:
// the active time of every attempt a loser had started when the
// winner's answer canceled it, plus — for each loser whose successful
// exchange was already in flight — one abandoned exchange priced by
// the radio cost model (radio.ExchangeCost with an empty response: the
// request went up, nobody read the answer). Losers run concurrently
// with the winner on the network side, so none of this enters the
// user's modeled latency; it is pure energy waste.
func hedgeWasteJ(p radio.Params, mc missCtx) float64 {
	if !mc.hedged {
		return 0
	}
	active := mc.hplan.WastedActive
	if mc.hplan.Abandoned > 0 {
		active += time.Duration(mc.hplan.Abandoned) * radio.ExchangeCost(p, 0, 0, true).RadioActive
	}
	if active <= 0 {
		return 0
	}
	return p.ActiveEnergy(active)
}

// classifyFaulted routes one request on the fault-injected unbatched
// path: local tiers are served inline (faults only touch the radio);
// a cloud miss comes back as a plan for the caller to pace and then
// complete. miss reports which return is meaningful.
func (sh *shard) classifyFaulted(req Request) (resp Response, mc missCtx, miss bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, err := sh.user(req.User)
	if err != nil {
		return Response{Req: req, Err: err}, missCtx{}, false
	}
	qh := hash64.Sum(req.Query)
	ch := hash64.Sum(req.Click)
	tier := sh.tierOf(st, qh, ch)
	if tier != SourceCloud {
		return sh.serveLocked(st, req, qh, ch, tier), missCtx{}, false
	}
	if err := sh.materialize(st); err != nil {
		return Response{Req: req, Err: err}, missCtx{}, false
	}
	return Response{}, sh.planCtxLocked(st, req.User, qh, ch), true
}

// replayFailedAttempts charges a plan's failed attempts and backoffs
// against the user's own device, exactly as the analytic plan priced
// them: each failure pays the radio session overhead (wake-up when the
// link is idle, plus the handshake) for nothing, each backoff is local
// wait. It returns how many failed attempts opened a session cold —
// each of those sessions eventually pays a full tail.
func replayFailedAttempts(dev *device.Device, pl faults.Plan) (cold int) {
	for i := 0; i < pl.Failures(); i++ {
		tr := dev.NetworkFailedRequest()
		if !tr.WasWarm {
			cold++
		}
		if i < len(pl.Backoffs) {
			dev.Busy(pl.Backoffs[i], "backoff")
		}
	}
	return cold
}

// completeFaultedMiss executes a planned cloud miss on the unbatched
// path: the failures are replayed on the user's device, then either
// the final successful exchange runs (the ordinary miss path, with the
// failure costs folded into the outcome) or the miss degrades down the
// ladder.
func (sh *shard) completeFaultedMiss(req Request, mc missCtx) Response {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, err := sh.user(req.User)
	if err == nil {
		err = sh.materialize(st)
	}
	if err != nil {
		return Response{Req: req, Err: err}
	}
	dev := st.cache.Device()
	if mc.plan.Success {
		// A hedged clone win waits out the winner's launch stagger
		// before its ladder starts; the primary's doomed attempts run
		// concurrently during it and are charged as waste, off the link.
		if w := mc.hedgeWait(); w > 0 {
			dev.Busy(w, "hedge")
		}
		// The backend's queue wait and service time are user-visible
		// wait, charged like hedge wait: local device time, no extra
		// radio energy (the link idles down naturally while the server
		// grinds).
		if w := mc.backendWait(); w > 0 {
			dev.Busy(w, "backend")
		}
	}
	cold := replayFailedAttempts(dev, mc.plan)
	if !mc.plan.Success {
		return sh.degradeLocked(st, req, mc, cold)
	}
	resp := Response{Req: req, Source: SourceCloud, Attempts: mc.plan.Attempts}
	before := st.cache.DB().LogicalBytes()
	resp.Outcome, resp.Err = st.cache.Query(req.Query, req.Click)
	resp.Outcome.Network += mc.plan.FailedWait + mc.hedgeWait() + mc.backendWait()
	sh.recordExpansion(st, req.User, mc.qh, mc.ch, before)
	st.served++
	if resp.Outcome.Hit {
		st.hits++
	}
	st.clock.Observe()
	resp.EnergyJ = sh.basePower * resp.Outcome.ResponseTime().Seconds()
	if resp.Err == nil {
		resp.RadioJ = st.rt.link.ActiveEnergy(resp.Outcome.Radio.RadioActive+mc.plan.FailedActive) +
			hedgeWasteJ(st.rt.link, mc)
		if !resp.Outcome.Radio.WasWarm {
			cold++
		}
		resp.RadioJ += float64(cold) * st.rt.link.TailEnergy()
		resp.EnergyJ += resp.RadioJ
	}
	return resp
}

// degradeLocked serves a miss whose retry ladder exhausted, walking the
// degradation rungs: a stale answer from the user's personal component,
// a stale answer from the community replica, or the explicit locally
// rendered "results unavailable" page. The failed attempts' wait and
// radio-active time ride along in the outcome — an unreachable cloud
// is slow *and* costs energy before the fallback even starts. Caller
// holds mu; cold is the count of cold sessions the replay opened.
func (sh *shard) degradeLocked(st *userState, req Request, mc missCtx, cold int) Response {
	resp := Response{Req: req, Attempts: mc.plan.Attempts}
	dev := st.cache.Device()
	// A hedged miss degrades only once its last ladder has given up:
	// the clones' extra exhaust time past the primary's ladder is
	// user-visible wait.
	if w := mc.hedgeWait(); w > 0 {
		dev.Busy(w, "hedge")
	}
	// An exhausted ladder may still have burned backend time on engine
	// errors before giving up — the user waited that out too.
	if w := mc.backendWait(); w > 0 {
		dev.Busy(w, "backend")
	}
	out := pocketsearch.Outcome{
		Network: mc.plan.FailedWait + mc.hedgeWait() + mc.backendWait(),
		Radio:   radio.Transfer{RadioActive: mc.plan.FailedActive, Failed: true},
	}
	graft := func(stale pocketsearch.Outcome) {
		out.Lookup, out.Fetch, out.Render, out.Misc = stale.Lookup, stale.Fetch, stale.Render, stale.Misc
		out.Results = stale.Results
	}
	switch {
	case st.cache.ContainsQuery(mc.qh):
		stale, _ := st.cache.ServeStale(req.Query)
		graft(stale)
		resp.Source = SourceDegraded
	case sh.community.ContainsQuery(mc.qh):
		stale, _ := sh.community.ServeStale(req.Query)
		graft(stale)
		resp.Source = SourceDegraded
	default:
		out.Lookup = pocketsearch.LookupCost
		dev.Busy(pocketsearch.LookupCost, "lookup")
		out.Render = dev.Render(pocketsearch.UnavailablePageBytes)
		out.Misc = dev.Misc()
		resp.Source = SourceUnavailable
	}
	resp.Outcome = out
	st.served++
	st.clock.Observe()
	resp.RadioJ = st.rt.link.ActiveEnergy(mc.plan.FailedActive) +
		float64(cold)*st.rt.link.TailEnergy() + hedgeWasteJ(st.rt.link, mc)
	resp.EnergyJ = sh.basePower*out.ResponseTime().Seconds() + resp.RadioJ
	return resp
}

// applyFaultedBatched applies member slot of a batched session under
// fault injection. A member whose plan failed never produced an
// exchange — slot is -1, bt does not include it — and degrades after
// its failures are replayed; a successful member takes its slice of
// the shared session like any batched miss, plus its own failure
// costs. Clears the user's pending-miss marker either way.
func (sh *shard) applyFaultedBatched(req Request, eresp engine.SearchResponse, found bool, bt radio.BatchTransfer, slot int, mc missCtx) Response {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.pendingMiss, req.User)
	st, err := sh.user(req.User)
	if err == nil {
		err = sh.materialize(st)
	}
	if err != nil {
		return Response{Req: req, Err: err}
	}
	dev := st.cache.Device()
	if mc.plan.Success {
		if w := mc.hedgeWait(); w > 0 {
			dev.Busy(w, "hedge")
		}
		if w := mc.backendWait(); w > 0 {
			dev.Busy(w, "backend")
		}
	}
	cold := replayFailedAttempts(dev, mc.plan)
	if !mc.plan.Success {
		return sh.degradeLocked(st, req, mc, cold)
	}
	resp := Response{Req: req, Source: SourceCloud, BatchSize: bt.Size(), Attempts: mc.plan.Attempts}
	before := st.cache.DB().LogicalBytes()
	resp.Outcome = st.cache.ApplyBatchedMiss(req.Query, req.Click, eresp, found, bt.ItemLatency(slot), bt.ItemShare(slot))
	resp.Outcome.Network += mc.plan.FailedWait + mc.hedgeWait() + mc.backendWait()
	sh.recordExpansion(st, req.User, mc.qh, mc.ch, before)
	st.served++
	st.clock.Observe()
	resp.RadioJ = bt.ItemRadioEnergy(st.rt.link, slot) +
		st.rt.link.ActiveEnergy(mc.plan.FailedActive) +
		float64(cold)*st.rt.link.TailEnergy() +
		hedgeWasteJ(st.rt.link, mc)
	resp.EnergyJ = sh.basePower*resp.Outcome.ResponseTime().Seconds() + resp.RadioJ
	return resp
}

// serveFaulted runs one task on the fault-injected unbatched path:
// classify and plan under the shard lock, pace the wall clock for the
// planned failures (unless the shard's breaker is open), then execute
// the plan against the model.
func (f *Fleet) serveFaulted(t task) {
	sh := f.topo.Load().shards[t.shard]
	resp, mc, miss := sh.classifyFaulted(t.req)
	if !miss {
		f.finish(resp, t)
		return
	}
	pace := sh.paceBreaker(mc)
	sh.recordBreakers(mc)
	if pace && !f.pauseWall(mc.plan, t.ctx) {
		f.cancelTask(t)
		return
	}
	f.recordMissPlan(mc)
	f.finish(sh.completeFaultedMiss(t.req, mc), t)
}

// paceBreaker asks the primary replica's circuit breaker whether this
// miss should take its real retry pause.
func (sh *shard) paceBreaker(mc missCtx) bool {
	r := 0
	if mc.hedged {
		r = mc.hplan.Launches[0].Replica
	}
	return sh.breaker(r).pace()
}

// recordBreakers books a planned miss's outcome into the shard's
// circuit breakers: every dispatched replica's breaker learns what its
// own ladder did, so one dead replica opens only its own breaker.
func (sh *shard) recordBreakers(mc missCtx) {
	if !mc.hedged {
		sh.breaker(0).record(mc.plan.Success)
		return
	}
	for _, l := range mc.hplan.Launches {
		sh.breaker(l.Replica).record(l.Plan.Success)
	}
}

// recordMissPlan books a planned miss's retry/hedge telemetry into the
// fleet counters, and its priced-dispatch ledgers into the backend's
// per-replica accounting (shared by the batched and unbatched paths).
func (f *Fleet) recordMissPlan(mc missCtx) {
	f.retries.Add(int64(mc.plan.Attempts - 1))
	if !mc.plan.Success {
		f.exhausted.Add(1)
	}
	if bk := f.cohorts.bk; bk != nil {
		if mc.hedged {
			for i := range mc.hplan.Launches {
				bk.Record(mc.hplan.Launches[i].Plan.Arrivals)
			}
		} else {
			bk.Record(mc.plan.Arrivals)
		}
	}
	if !mc.hedged {
		return
	}
	f.clonesLaunched.Add(int64(mc.hplan.Clones()))
	f.wastedAttempts.Add(int64(mc.hplan.WastedAttempts))
	switch {
	case mc.hplan.Winner == 0:
		f.primaryWins.Add(1)
	case mc.hplan.Winner > 0:
		f.cloneWins.Add(1)
	}
}

// pauseWall takes the real pause the retry policy prices for a plan's
// modeled failure wait. It reports false when ctx was done first — the
// caller abandoned the request mid-pause.
func (f *Fleet) pauseWall(pl faults.Plan, ctx context.Context) bool {
	d := f.cfg.Retry.WallPause(pl.FailedWait)
	if d <= 0 {
		return true
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

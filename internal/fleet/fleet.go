// Package fleet is the concurrent serving layer that turns the
// single-device PocketSearch reproduction into a multi-user service:
// the back end a carrier or search provider would run to simulate,
// provision and evaluate pocket cloudlets for a whole user population
// at once.
//
// Architecture:
//
//   - The user population is sharded by user hash across N shards.
//     Each shard holds one replica of the shared community cache
//     (preloaded from community logs, read-mostly) plus the personal
//     PocketSearch state of every resident user, all guarded by the
//     shard lock.
//   - A pool of W workers drains W bounded queues. A shard is owned by
//     exactly one worker (shard s → queue s mod W), so the requests of
//     one user — who hashes to one shard — are always served in
//     submission order. That, plus seedable workloads, makes fleet hit
//     rates reproducible run to run.
//   - Submission is non-blocking with explicit backpressure: when the
//     owning worker's queue is full the request is shed and counted,
//     never silently queued without bound (an open-loop load generator
//     must observe overload, not hide it).
//   - Personal state lives under a fleet-wide storage budget managed
//     by the Section 7 cloudlet manager (internal/cloudletos): each
//     shard registers its users' personal records as one cloudlet, and
//     Reclaim evicts the lowest-utility records across the whole fleet.
//   - With Config.Batch enabled, cloud misses are coalesced: workers
//     classify a request under the shard lock and, if it must go to the
//     cloud, park it with a dispatcher goroutine instead of paying a
//     full radio round trip inline. The dispatcher collects concurrent
//     misses (up to MaxBatch, or until the Linger window expires) and
//     fires them as one radio session — one wake-up, one handshake and
//     one tail, amortized across the members (the paper's Section 5
//     energy argument). Determinism is preserved: at most one miss per
//     user is ever in flight, and a worker flushes and waits before
//     serving the same user's next request, so per-user hit/miss
//     outcomes are byte-identical to the unbatched path for the same
//     seed.
//   - Per-user state is compact and arena-allocated so the fleet
//     scales to million-user populations: each shard keeps its users
//     in chunked slabs of by-value userState records, indexed by a
//     dense slot table for IDs below Config.Population (contiguous
//     scenario ranges) with a sparse map fallback for the rest, and a
//     user's simulation objects (device, cache, clock) materialize
//     lazily on their first cloud miss. The steady-state hit path
//     allocates nothing — reply channels are pooled, lookups reuse
//     per-cache scratch buffers — which BenchmarkFleetServe100kUsers
//     and the scripts/check.sh gate hold at 0 allocs/op. DESIGN.md's
//     "Capacity model" chapter documents the bytes-per-user budget.
//
// Request routing mirrors the paper's two-component cache at fleet
// scale: personal component first, then the shared community replica,
// then the cloud over the radio (which expands the user's personal
// component, Section 5.3).
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

// Source identifies which tier served a request.
type Source int

const (
	// SourceShed marks a request rejected by backpressure.
	SourceShed Source = iota
	// SourcePersonal marks a hit in the user's personal component.
	SourcePersonal
	// SourceCommunity marks a hit in the shared community replica.
	SourceCommunity
	// SourceCloud marks a miss served by the cloud engine over the radio.
	SourceCloud
	// SourceDegraded marks a stale answer served from cached state (the
	// user's personal component or the community replica) after the
	// cloud proved unreachable — the middle rungs of the degradation
	// ladder. The answer is not a hit: the clicked result was not known
	// to be cached.
	SourceDegraded
	// SourceUnavailable marks the explicit degraded response: the cloud
	// was unreachable and no tier held anything for the query, so the
	// device rendered a small local "results unavailable" page instead
	// of erroring.
	SourceUnavailable
	// SourceCanceled marks a request abandoned by its caller's context
	// before a response was delivered.
	SourceCanceled
	numSources
)

// NumSources is the number of distinct Source values; load generators
// size fixed per-source counter arrays with it instead of growing maps
// on the hot observation path.
const NumSources = int(numSources)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceShed:
		return "shed"
	case SourcePersonal:
		return "personal"
	case SourceCommunity:
		return "community"
	case SourceCloud:
		return "cloud"
	case SourceDegraded:
		return "degraded"
	case SourceUnavailable:
		return "unavailable"
	case SourceCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Request is one search interaction to serve on behalf of a user.
type Request struct {
	User  searchlog.UserID
	Query string
	Click string
	// Class is an optional SLO-class tag stamped by the load generator
	// (the scenario layer's client class). It rides through serving
	// unchanged — it never affects routing or outcomes — and reaches
	// the Observer on every response, including shed and canceled ones,
	// so reports can break counters down per class.
	Class string
}

// Response describes how one request was (or was not) served.
type Response struct {
	Req Request
	// Shed reports that the request was rejected by backpressure and
	// never served; all other fields except Req are zero.
	Shed   bool
	Source Source
	// Outcome is the device-model serving outcome; its ResponseTime is
	// the modeled user-perceived latency and is deterministic given the
	// workload seed.
	Outcome pocketsearch.Outcome
	// BatchSize is the number of misses that shared this request's
	// radio session: ≥ 1 on a coalesced cloud miss, 0 for hits and for
	// misses served with batching disabled.
	BatchSize int
	// EnergyJ is the modeled energy attributed to this request in
	// joules: device base power over the modeled response time plus
	// RadioJ. RadioJ is the radio-only share — active time of the
	// exchange (a batched miss carries 1/n of the session overhead)
	// plus the session tail, attributed to the exchange that opened the
	// session.
	EnergyJ float64
	RadioJ  float64
	// Wall is the measured wall-clock latency from submission to
	// completion, including queue wait (not deterministic).
	Wall time.Duration
	Err  error
	// Canceled reports that the caller's context was done before a
	// response was delivered (Source is SourceCanceled); all other
	// fields except Req are zero.
	Canceled bool
	// Attempts is the number of modeled radio attempts a cloud-path
	// request made under the fault model (1 means the first exchange
	// got through). Zero for local serves and whenever fault injection
	// is disabled — the fault layer must be invisible when off.
	Attempts int
}

// Hit reports whether the request was served from on-device state.
func (r Response) Hit() bool { return !r.Shed && r.Err == nil && r.Outcome.Hit }

// Observer receives every completed (or shed) response. Observe is
// called concurrently from worker goroutines and must be safe for
// concurrent use.
type Observer interface {
	Observe(Response)
}

// DefaultTotalPersonalBytes is the default fleet-wide personal storage
// budget: the Table 2 assumption of ~2.5 GB of cloudlet flash, here
// dedicated to the personal components of the whole resident
// population.
const DefaultTotalPersonalBytes = 2_500_000_000

// Config parameterizes a fleet.
type Config struct {
	// Engine is the shared cloud engine (stateless, safe to share).
	Engine *engine.Engine
	// Content is the community cache content; every shard preloads a
	// replica.
	Content cachegen.Content
	// Shards is the number of user shards. Zero selects 8.
	Shards int
	// Population, when positive, declares the contiguous user-ID range
	// [0, Population) the workload draws from — what every scenario and
	// tape generator produces. Each shard then indexes its residents
	// through a dense slot array instead of a hash map, which is what
	// makes million-user fleets cheap (~4 B of index per candidate user
	// plus ~100 B of arena slot per resident). Users outside the range
	// still work via a sparse fallback map; Population = 0 keeps every
	// user on the fallback. Purely a memory-layout hint: serving
	// outcomes are identical either way.
	Population int
	// Placement is the user→shard routing policy. Nil selects the
	// legacy static modulo mapping over Shards, byte-identical to the
	// historical fleet routing. A consistent-hash ring
	// (placement.NewRing) makes live resharding cheap: Fleet.Resize
	// then remaps — and migrates — only ~|Δn|/n of the population.
	// When set, Placement.Shards() must agree with Shards.
	Placement placement.Placement
	// Workers is the worker-pool size. Zero selects
	// min(Shards, GOMAXPROCS); values above Shards are clamped (a
	// shard is owned by exactly one worker).
	Workers int
	// QueueDepth is each worker queue's capacity; submissions beyond
	// it are shed. Zero selects 1024.
	QueueDepth int
	// Options configure each user's personal cache (and, with
	// personalization forced off, the community replicas).
	Options pocketsearch.Options
	// Radio is the radio technology of the simulated devices. Zero
	// value selects 3G.
	Radio radio.Params
	// PerUserBytes caps each user's personal flash footprint; the cap
	// is enforced deterministically on the serving path. Zero means
	// unlimited.
	PerUserBytes int64
	// TotalPersonalBytes is the fleet-wide personal storage budget
	// registered with the cloudlet manager and divided evenly among
	// shards. Zero selects DefaultTotalPersonalBytes.
	TotalPersonalBytes int64
	// ShardPower is the cloudlet-server power envelope of each shard: a
	// provisioned shard draws IdleW continuously for as long as it is in
	// the topology, plus the ActiveW increment over its busy time. Zero
	// fields take energy.DefaultShardPower. The envelope only feeds the
	// energy ledger (EnergyStats); it never affects serving outcomes.
	ShardPower energy.ShardPower
	// Batch configures cloud-miss coalescing: concurrent misses share
	// one radio session (one wake-up, one handshake, one tail) instead
	// of paying a full round trip each. The zero value disables it.
	Batch BatchOptions
	// Faults configures the deterministic connectivity-fault model
	// (internal/faults): outage windows, per-attempt loss and transient
	// engine errors on the cloud-miss path. The zero value disables
	// fault injection entirely — the serve path is then byte-identical
	// to a fleet built without the fault layer.
	Faults faults.Options
	// Retry governs how a faulted cloud miss retries: capped
	// exponential backoff in model time with a deadline, plus the
	// wall-clock pacing that makes retries cost real serving time.
	// Ignored unless Faults.Enabled; zero fields take the defaults.
	Retry faults.RetryPolicy
	// Breaker configures the per-shard circuit breaker that stops
	// wall-clock retry pacing against a persistently dead link. It
	// never alters modeled outcomes. Ignored unless fault injection is
	// on for the fleet or any cohort. With Replicas > 1 each shard runs
	// one breaker per replica, so a single dead backend cannot open the
	// breaker for its healthy peers.
	Breaker BreakerOptions
	// Replicas is the number of modeled cloud engine replicas the miss
	// path may dispatch to. Each replica beyond the first draws its
	// faults from an independently salted injector
	// (faults.ReplicaOptions); replica 0 is byte-identical to the
	// single-backend model. Zero or one keeps the legacy single
	// backend. Only meaningful with fault injection on.
	Replicas int
	// Backend configures the modeled cloud backend servers
	// (internal/backend): per-replica queues with finite service
	// capacity, so a miss's exchange pays a queue wait and service time
	// — and may be rejected by a bounded queue — instead of answering
	// instantly. Replicas and CloneFactor are derived from the fleet's
	// own Replicas and Hedge configuration; the remaining fields are the
	// caller's. Requires fault injection (the admission planner lives on
	// the faulted miss path). The zero value — or an infinite
	// ServiceRate — keeps every outcome byte-identical to an unqueued
	// fleet.
	Backend backend.Options
	// Hedge is the fleet-wide hedging policy for cloud misses: with
	// CloneFactor >= 2 and Replicas >= 2, a miss is dispatched to up to
	// CloneFactor replicas (staggered by Hedge.Delay) and the first
	// successful ladder wins; the losers' spent attempts are charged as
	// wasted radio energy. The zero value — or CloneFactor < 2 — keeps
	// the single-dispatch path, byte-identical to an unreplicated
	// fleet. Cohorts may override it per class.
	Hedge faults.HedgePolicy
	// Cohorts describe population slices whose devices differ from the
	// fleet-wide defaults — a different radio tier, their own fault
	// profile, their own retry policy. The scenario layer compiles its
	// client classes down to these. Empty means every user runs the
	// fleet-wide Radio/Faults/Retry exactly as before.
	Cohorts []Cohort
	// CohortOf maps a user to an index into Cohorts; a negative or
	// out-of-range index selects the fleet-wide defaults. It must be a
	// pure function of the user ID: resharding re-resolves a migrated
	// user's cohort on import, so an impure function would change the
	// user's device mid-run. Required when Cohorts is non-empty.
	CohortOf func(searchlog.UserID) int
	// Observer, when non-nil, receives every response (completed or
	// shed). It must be safe for concurrent use.
	Observer Observer
}

// Cohort overrides per-device serving parameters for one slice of the
// user population. Zero-valued fields inherit the fleet-wide Config.
type Cohort struct {
	// Name labels the cohort in diagnostics; it has no serving effect.
	Name string
	// Radio is the cohort's device radio tier. The zero value inherits
	// Config.Radio. Heterogeneous radios and miss batching do not
	// compose: the shared session is priced on Config.Radio, so callers
	// (the scenario compiler does) must keep radios uniform when
	// Batch.Enabled.
	Radio radio.Params
	// Faults overrides fault injection for the cohort's users. Nil
	// inherits the fleet-wide Config.Faults; non-nil with Enabled false
	// disables injection for the cohort even when the fleet has faults
	// on; non-nil with Enabled true gives the cohort its own injector.
	Faults *faults.Options
	// Retry overrides the modeled retry ladder for the cohort's cloud
	// misses. Nil inherits Config.Retry. Wall-clock pacing
	// (WallPauseScale/MaxWallPause) stays governed by the fleet-wide
	// policy either way.
	Retry *faults.RetryPolicy
	// Hedge overrides the hedging policy for the cohort's cloud misses.
	// Nil inherits Config.Hedge; non-nil with CloneFactor < 2 disables
	// hedging for the cohort even when the fleet hedges. The replica
	// count stays fleet-wide (Config.Replicas).
	Hedge *faults.HedgePolicy
}

// cohortRT is a cohort's resolved runtime: what a user's device is
// actually built with.
type cohortRT struct {
	link  radio.Params
	inj   *faults.Injector
	retry faults.RetryPolicy
	// injs are the per-replica injectors (injs[0] == inj); length 1
	// unless the fleet is replicated and this cohort injects faults.
	injs []*faults.Injector
	// hedge is the cohort's resolved hedging policy.
	hedge faults.HedgePolicy
}

// hedged reports whether this cohort's misses take the hedged path:
// faults on, at least two replicas to dispatch to, and a clone factor
// that actually clones. Everything else runs the legacy single-backend
// ladder, byte-identical to an unreplicated fleet.
func (rt *cohortRT) hedged() bool {
	return rt.inj != nil && len(rt.injs) > 1 && rt.hedge.Active()
}

// cohortTable resolves users to their cohort runtime. Immutable after
// New, so shards share it lock-free.
type cohortTable struct {
	def     cohortRT
	cohorts []cohortRT
	of      func(searchlog.UserID) int
	// faulted reports whether any injector (fleet-wide or cohort) is
	// live — the one flag every fault branch checks so the layer stays
	// provably zero-cost when nothing injects.
	faulted bool
	// bk is the shared queued-backend model (nil when disabled); pricer
	// is bk as a faults.Pricer, kept as a separate field so a disabled
	// backend passes a true nil interface to the planners (they gate
	// ledger allocation on it). Shards built later by a resize share the
	// same model through this table.
	bk     *backend.Model
	pricer faults.Pricer
}

// resolve returns the runtime for one user. Pure: same uid, same
// answer, on every shard, forever — the migration-safety contract.
func (ct *cohortTable) resolve(uid searchlog.UserID) cohortRT {
	return *ct.resolvePtr(uid)
}

// resolvePtr is resolve returning a pointer into the immutable table,
// so every resident user interns one shared *cohortRT instead of
// carrying the three runtime fields by value. Same purity contract.
func (ct *cohortTable) resolvePtr(uid searchlog.UserID) *cohortRT {
	if ct.of == nil || len(ct.cohorts) == 0 {
		return &ct.def
	}
	if i := ct.of(uid); i >= 0 && i < len(ct.cohorts) {
		return &ct.cohorts[i]
	}
	return &ct.def
}

// buildCohortTable resolves Config.Cohorts against the fleet defaults.
// cfg must already have defaults applied.
func buildCohortTable(cfg Config, inj *faults.Injector) (*cohortTable, error) {
	if len(cfg.Cohorts) > 0 && cfg.CohortOf == nil {
		return nil, fmt.Errorf("fleet: %d cohorts configured without CohortOf", len(cfg.Cohorts))
	}
	ct := &cohortTable{
		def: cohortRT{
			link: cfg.Radio, inj: inj, retry: cfg.Retry,
			injs: faults.Replicas(inj, cfg.Replicas), hedge: cfg.Hedge,
		},
		of:      cfg.CohortOf,
		faulted: inj != nil,
	}
	for _, co := range cfg.Cohorts {
		rt := ct.def
		if co.Radio.Name != "" {
			rt.link = co.Radio
		}
		if co.Faults != nil {
			rt.inj = nil
			if co.Faults.Enabled {
				rt.inj = faults.New(*co.Faults)
			}
			rt.injs = faults.Replicas(rt.inj, cfg.Replicas)
		}
		if co.Retry != nil {
			rt.retry = co.Retry.WithDefaults()
		}
		if co.Hedge != nil {
			rt.hedge = *co.Hedge
		}
		if rt.inj != nil {
			ct.faulted = true
		}
		ct.cohorts = append(ct.cohorts, rt)
	}
	return ct, nil
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Radio.Name == "" {
		c.Radio = radio.ThreeG()
	}
	if c.TotalPersonalBytes <= 0 {
		c.TotalPersonalBytes = DefaultTotalPersonalBytes
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Backend.Enabled {
		// The backend's replica count and clone-load scaling are the
		// fleet's own, not caller knobs. Cohort hedge overrides count
		// too: the background load models the heaviest cloning any
		// cohort sends at the replicas.
		c.Backend.Replicas = c.Replicas
		c.Backend.CloneFactor = 1
		if c.Hedge.Active() {
			c.Backend.CloneFactor = c.Hedge.CloneFactor
		}
		for _, co := range c.Cohorts {
			if co.Hedge != nil && co.Hedge.Active() && co.Hedge.CloneFactor > c.Backend.CloneFactor {
				c.Backend.CloneFactor = co.Hedge.CloneFactor
			}
		}
	}
	c.Batch = c.Batch.withDefaults()
	c.Retry = c.Retry.WithDefaults()
	c.Breaker = c.Breaker.withDefaults()
	c.ShardPower = c.ShardPower.WithDefaults()
	return c
}

// task is one queued unit of work. A nil reply means fire-and-forget;
// a non-nil barrier is a drain marker instead of a request.
type task struct {
	req      Request
	shard    int
	enqueued time.Time
	reply    chan Response
	barrier  chan struct{}
	// held marks a task replayed from a migration hold queue; it must
	// not be held again (its hold entry is, by construction, present
	// while it is being replayed).
	held bool
	// ctx, when non-nil, lets the caller abandon the request
	// (DoContext). claimed arbitrates the race between the canceling
	// caller and the serving worker: whoever flips it first books the
	// request, so it is counted exactly once — as Canceled or as
	// Served — and Served+Shed+Canceled always sums to the submissions.
	ctx     context.Context
	claimed *atomic.Bool
}

// Fleet is a running serving layer.
type Fleet struct {
	cfg    Config
	queues []chan task
	wg     sync.WaitGroup

	// topo is the physical serving view — shards plus the dispatchers
	// coalescing their cloud misses — published atomically so workers
	// route lock-free while Resize grows or shrinks it.
	topo atomic.Pointer[topology]
	// route is the logical user→shard mapping, also lock-free for
	// readers; during a live resize it carries both the old and the new
	// placement and flips users over one source shard at a time (see
	// migrate.go).
	route atomic.Pointer[routeTable]

	manager *cloudletos.Manager

	// tl is the fleet-wide model timeline: every user clock and
	// community replica clock is registered on it, so the model-time
	// makespan of everything served is one atomic read away.
	tl *modeltime.Timeline

	// inj is the fleet-wide connectivity-fault injector; nil when
	// fault injection is disabled. cohorts resolves each user to the
	// runtime (radio link, injector, retry policy) their device is
	// built with; faulted caches whether any injector — fleet-wide or
	// per-cohort — is live, which every fault branch checks first so
	// the layer is provably zero-cost when nothing injects.
	inj     *faults.Injector
	cohorts *cohortTable
	faulted bool

	// mu guards closed against concurrent Submit/Do/Close, and — held
	// exclusively — fences route publications: enqueue computes a
	// task's shard under the read lock, so a storeRoute caller knows no
	// task routed by the previous table is still on its way into a
	// queue.
	mu     sync.RWMutex
	closed bool

	// resizeMu serializes Resize against itself and Close.
	resizeMu sync.Mutex
	// migrating is nonzero while a resize epoch may hold tasks;
	// holdEntries counts live hold queues. Both zero is the fast path
	// that keeps the serve path free of migration work outside a
	// resize.
	migrating   atomic.Int64
	holdEntries atomic.Int64
	// Cumulative migration counters (see MigrationStats).
	migResizes   atomic.Int64
	migMoved     atomic.Int64
	migBytes     atomic.Int64
	migTransfer  atomic.Int64
	migDropped   atomic.Int64
	heldRequests atomic.Int64

	// ledger is the fleet energy ledger: device radio and baseline
	// joules are charged per response in finish; shard idle/active
	// integrals of retired shards are folded in at retirement, live
	// shards' accrue lazily in EnergyStats. Counters are commutative
	// fixed-point atomics, so totals are interleaving-independent.
	ledger energy.Ledger
	// retiredServed/retiredShed preserve the occupancy counters of
	// shards a shrink retired, so Served/Shed cross-foots against
	// ShardLoads plus RetiredLoad across resizes.
	retiredServed atomic.Int64
	retiredShed   atomic.Int64

	served   atomic.Int64
	shed     atomic.Int64
	errors   atomic.Int64
	canceled atomic.Int64
	// retries counts radio attempts beyond each completed miss's first;
	// exhausted counts misses that ran out of attempts and fell to the
	// degradation ladder.
	retries   atomic.Int64
	exhausted atomic.Int64
	bySource  [numSources]atomic.Int64
	// Hedging telemetry: clone dispatches beyond each hedged miss's
	// primary, hedged misses delivered by the primary vs a clone, and
	// attempts the losing dispatches burned before cancellation.
	clonesLaunched atomic.Int64
	primaryWins    atomic.Int64
	cloneWins      atomic.Int64
	wastedAttempts atomic.Int64

	batchMu    sync.Mutex
	batchStats BatchStats
}

// New builds the shards (community replicas are preloaded in
// parallel), registers them with the storage manager, and starts the
// worker pool.
func New(cfg Config) (*Fleet, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("fleet: engine is required")
	}
	cfg = cfg.withDefaults()
	if cfg.Placement == nil {
		p, err := placement.NewModulo(cfg.Shards)
		if err != nil {
			return nil, err
		}
		cfg.Placement = p
	} else if cfg.Placement.Shards() != cfg.Shards {
		return nil, fmt.Errorf("fleet: placement routes over %d shards, config has %d",
			cfg.Placement.Shards(), cfg.Shards)
	}
	f := &Fleet{
		cfg:    cfg,
		queues: make([]chan task, cfg.Workers),
		tl:     modeltime.NewTimeline(),
	}
	if cfg.Faults.Enabled {
		f.inj = faults.New(cfg.Faults)
	}
	ct, err := buildCohortTable(cfg, f.inj)
	if err != nil {
		return nil, err
	}
	if cfg.Backend.Active() {
		if !ct.faulted {
			return nil, fmt.Errorf("fleet: backend model requires fault injection (the admission planner runs on the faulted miss path)")
		}
		ct.bk = backend.NewModel(cfg.Backend)
		if ct.bk != nil {
			ct.pricer = ct.bk
		}
	}
	f.cohorts = ct
	f.faulted = ct.faulted

	shards, err := buildShards(cfg, ct, f.tl, 0, cfg.Shards)
	if err != nil {
		return nil, err
	}

	mgr, err := cloudletos.NewManager(cfg.TotalPersonalBytes)
	if err != nil {
		return nil, err
	}
	quota := cloudletos.Quota{FlashBytes: cfg.TotalPersonalBytes / int64(cfg.Shards)}
	for _, sh := range shards {
		if err := mgr.Register(sh, quota); err != nil {
			return nil, err
		}
	}
	f.manager = mgr

	var dispatchers []*dispatcher
	if cfg.Batch.Enabled {
		n := cfg.Shards
		if cfg.Batch.FleetWide {
			n = 1
		}
		for i := 0; i < n; i++ {
			dispatchers = append(dispatchers, newDispatcher(f, cfg.QueueDepth))
		}
	}
	f.topo.Store(&topology{shards: shards, dispatchers: dispatchers})
	f.route.Store(&routeTable{place: cfg.Placement, from: -1})
	for w := range f.queues {
		f.queues[w] = make(chan task, cfg.QueueDepth)
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// buildShards constructs shards [lo, hi) in parallel (community
// replicas preload the shared content, the expensive part).
func buildShards(cfg Config, ct *cohortTable, tl *modeltime.Timeline, lo, hi int) ([]*shard, error) {
	shards := make([]*shard, hi-lo)
	errs := make([]error, hi-lo)
	var build sync.WaitGroup
	for i := range shards {
		build.Add(1)
		go func(i int) {
			defer build.Done()
			shards[i], errs[i] = newShard(lo+i, cfg, ct, tl)
		}(i)
	}
	build.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// NumShards returns the logical shard count — the target placement's
// during a live resize.
func (f *Fleet) NumShards() int { return f.route.Load().place.Shards() }

// PlacementName identifies the routing policy in use.
func (f *Fleet) PlacementName() string { return f.route.Load().place.Name() }

// NumWorkers returns the worker-pool size.
func (f *Fleet) NumWorkers() int { return len(f.queues) }

// Manager exposes the Section 7 storage manager governing the fleet's
// personal state.
func (f *Fleet) Manager() *cloudletos.Manager { return f.manager }

// ModelMakespan returns the fleet-wide model-time makespan: the
// furthest any model clock (user device or community replica) has
// advanced serving this fleet's requests. Deterministic for a
// deterministic workload — the timeline folds clocks with a
// commutative max, so worker interleaving cannot change it.
func (f *Fleet) ModelMakespan() time.Duration { return f.tl.Makespan() }

// Observer returns the configured response observer (nil when none was
// installed). Load generators use it to check they are actually wired
// to the fleet they measure.
func (f *Fleet) Observer() Observer { return f.cfg.Observer }

// shardOf maps a user to their home shard under the current route.
func (f *Fleet) shardOf(uid searchlog.UserID) int {
	return f.route.Load().shardOf(placement.UserKey(uint64(uid)))
}

// worker drains one queue, serving each task against its shard.
func (f *Fleet) worker(id int) {
	defer f.wg.Done()
	for t := range f.queues[id] {
		if t.barrier != nil {
			f.flushDispatchers(id)
			t.barrier <- struct{}{}
			continue
		}
		f.process(t)
	}
}

// process serves one request task — from a worker loop, or from the
// migration drainer replaying held tasks.
func (f *Fleet) process(t task) {
	if t.ctx != nil && t.ctx.Err() != nil {
		f.cancelTask(t)
		return
	}
	if f.maybeHold(t) {
		return
	}
	tp := f.topo.Load()
	if len(tp.dispatchers) == 0 {
		if f.faulted {
			f.serveFaulted(t)
			return
		}
		f.finish(tp.shards[t.shard].serve(t.req), t)
		return
	}
	f.serveBatched(t)
}

// serveBatched routes one task with miss coalescing on: local hits are
// served inline; a classified cloud miss is parked with the shard's
// dispatcher, which completes it asynchronously. If the user already
// has a miss in flight the worker flushes and waits for it first, so
// each user's requests are still applied in submission order — the
// determinism guarantee batching must not break.
func (f *Fleet) serveBatched(t task) {
	sh := f.topo.Load().shards[t.shard]
	for {
		resp, miss, waitFor := sh.routeBatched(t)
		if waitFor != nil {
			f.dispatcherOf(t.shard).flush()
			<-waitFor.done
			continue
		}
		if miss != nil {
			f.dispatcherOf(t.shard).submit(miss)
			return
		}
		f.finish(resp, t)
		return
	}
}

// finish completes one task: it stamps wall latency, books the
// fleet-wide counters, and delivers the response to the observer and
// any waiting caller. Called from workers (inline serves) and from
// dispatchers (batched misses).
func (f *Fleet) finish(resp Response, t task) {
	if t.claimed != nil && !t.claimed.CompareAndSwap(false, true) {
		// The caller's context won the race and already booked the
		// request as canceled; drop the late response.
		return
	}
	resp.Wall = time.Since(t.enqueued)
	f.served.Add(1)
	sh := f.topo.Load().shards[t.shard]
	sh.served.Add(1)
	// Every serve path lands here, so this is the one ledger charge
	// site: the response's device-side joules split radio vs baseline,
	// and the shard's busy time grows by the server-local part of the
	// modeled latency (network and radio wait excluded — the shard is
	// free while the device waits on the air).
	if busy := resp.Outcome.ResponseTime() - resp.Outcome.Network; busy > 0 {
		sh.busyNS.Add(int64(busy))
	}
	f.ledger.Radio.Add(resp.RadioJ)
	f.ledger.DeviceBase.Add(resp.EnergyJ - resp.RadioJ)
	f.bySource[resp.Source].Add(1)
	if resp.Err != nil {
		f.errors.Add(1)
	}
	if obs := f.cfg.Observer; obs != nil {
		obs.Observe(resp)
	}
	if t.reply != nil {
		t.reply <- resp
	}
}

// dispatcherOf returns the dispatcher coalescing the shard's misses.
func (f *Fleet) dispatcherOf(shard int) *dispatcher {
	tp := f.topo.Load()
	if f.cfg.Batch.FleetWide {
		return tp.dispatchers[0]
	}
	return tp.dispatchers[shard]
}

// flushDispatchers forces out every miss this worker has parked, and
// waits until they are applied — the Drain barrier must not ack while
// misses are still lingering. Worker id owns shards s with
// s mod W == id, hence exactly those shards' dispatchers.
func (f *Fleet) flushDispatchers(id int) {
	tp := f.topo.Load()
	if len(tp.dispatchers) == 0 {
		return
	}
	if f.cfg.Batch.FleetWide {
		tp.dispatchers[0].flushWait()
		return
	}
	for s := id; s < len(tp.shards); s += len(f.queues) {
		tp.dispatchers[s].flushWait()
	}
}

// enqueue routes a task to the owning worker's queue without blocking.
// It reports false — and records the shed — when the queue is full or
// the fleet is closed. The task's shard is computed here, under the
// read lock, so a concurrent route publication (storeRoute holds the
// write lock) can fence out every task still routed by the old table
// before it starts an epoch barrier.
func (f *Fleet) enqueue(t task) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t.shard = f.shardOf(t.req.User)
	if f.closed {
		f.recordShed(t.req, t.shard)
		return false
	}
	select {
	case f.queues[t.shard%len(f.queues)] <- t:
		return true
	default:
		f.recordShed(t.req, t.shard)
		return false
	}
}

func (f *Fleet) recordShed(req Request, shard int) {
	f.shed.Add(1)
	f.topo.Load().shards[shard].shed.Add(1)
	f.bySource[SourceShed].Add(1)
	if obs := f.cfg.Observer; obs != nil {
		obs.Observe(Response{Req: req, Shed: true, Source: SourceShed})
	}
}

// Submit enqueues a request fire-and-forget — the open-loop path. The
// outcome reaches the Observer. It reports false when the request was
// shed by backpressure.
func (f *Fleet) Submit(req Request) bool {
	return f.enqueue(task{req: req, enqueued: time.Now()})
}

// Do serves a request and blocks for its response — the closed-loop
// path (the simulated user waits for their results page). A request
// shed by backpressure returns immediately with Shed set.
func (f *Fleet) Do(req Request) Response {
	return f.DoContext(context.Background(), req)
}

// replyPool recycles reply channels for both Do paths. The
// uncancelable path always receives the worker's single buffered send
// before returning, so its channel is provably empty when pooled. The
// cancelable path pools too: every send into a reply channel (finish,
// cancelTask) is gated on winning the task's claimed CAS, so at most
// one send can ever land. Each DoContext return proves the channel
// empty before pooling it — the send already received, or the caller
// won the CAS so no send can ever happen. A worker may keep a stale
// reference to a recycled channel (a canceled task still queued or
// held), but having lost the CAS it will never send on it.
var replyPool = sync.Pool{New: func() any { return make(chan Response, 1) }}

// DoContext is Do with caller cancellation: when ctx is done before a
// response is delivered the call returns a Canceled response
// (Source SourceCanceled) and the request is counted exactly once —
// Served+Shed+Canceled always sums to submissions. A context that can
// never be canceled (context.Background) adds no overhead over Do.
func (f *Fleet) DoContext(ctx context.Context, req Request) Response {
	t := task{
		req:      req,
		enqueued: time.Now(),
	}
	reply := replyPool.Get().(chan Response)
	t.reply = reply
	if ctx == nil || ctx.Done() == nil {
		// Uncancelable: the single response is always received here.
		if !f.enqueue(t) {
			replyPool.Put(reply)
			return Response{Req: req, Shed: true, Source: SourceShed}
		}
		resp := <-reply
		replyPool.Put(reply)
		return resp
	}
	t.ctx = ctx
	t.claimed = new(atomic.Bool)
	if t.ctx.Err() != nil {
		// Never enqueued: nothing can ever send on the channel.
		t.claimed.Store(true)
		replyPool.Put(reply)
		return f.recordCanceled(req)
	}
	if !f.enqueue(t) {
		replyPool.Put(reply)
		return Response{Req: req, Shed: true, Source: SourceShed}
	}
	select {
	case resp := <-reply:
		// The single CAS-winning send was just consumed; empty.
		replyPool.Put(reply)
		return resp
	case <-t.ctx.Done():
		if t.claimed.CompareAndSwap(false, true) {
			// The caller won: every future sender loses the CAS and
			// drops its response, so no send can ever land.
			replyPool.Put(reply)
			return f.recordCanceled(t.req)
		}
		// The worker claimed it first; its single response is (or will
		// be) in the buffered reply channel.
		resp := <-reply
		replyPool.Put(reply)
		return resp
	}
}

// recordCanceled books one abandoned request and returns the Canceled
// response delivered for it.
func (f *Fleet) recordCanceled(req Request) Response {
	f.canceled.Add(1)
	f.bySource[SourceCanceled].Add(1)
	resp := Response{Req: req, Canceled: true, Source: SourceCanceled}
	if obs := f.cfg.Observer; obs != nil {
		obs.Observe(resp)
	}
	return resp
}

// cancelTask abandons a queued task whose caller's context is already
// done. If the caller has not yet claimed the request the worker books
// it as canceled here; either way the caller's reply channel is fed so
// DoContext never blocks.
func (f *Fleet) cancelTask(t task) {
	if t.claimed != nil && !t.claimed.CompareAndSwap(false, true) {
		return // caller already booked it
	}
	resp := f.recordCanceled(t.req)
	if t.reply != nil {
		t.reply <- resp
	}
}

// Drain blocks until every request submitted before the call has been
// served: it pushes a barrier through each worker queue. Safe to call
// while other goroutines keep submitting (their requests may or may
// not be covered).
func (f *Fleet) Drain() {
	acks := make([]chan struct{}, len(f.queues))
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return
	}
	for w := range f.queues {
		acks[w] = make(chan struct{}, 1)
		f.queues[w] <- task{barrier: acks[w]}
	}
	f.mu.RUnlock()
	for _, ack := range acks {
		<-ack
	}
}

// Close drains and stops the worker pool. Requests submitted after
// Close are shed. Close waits out any in-flight Resize.
func (f *Fleet) Close() {
	f.resizeMu.Lock()
	defer f.resizeMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	for _, q := range f.queues {
		close(q)
	}
	f.mu.Unlock()
	f.wg.Wait()
	for _, d := range f.topo.Load().dispatchers {
		d.close()
	}
}

// Stats is a snapshot of fleet-wide serving counters.
type Stats struct {
	// Served counts completed requests (including errored ones);
	// Shed counts requests rejected by backpressure.
	Served, Shed, Errors int64
	// PersonalHits + CommunityHits are local serves; CloudMisses paid
	// the radio round trip.
	PersonalHits, CommunityHits, CloudMisses int64
	// Degraded counts requests answered with a stale cached page after
	// the cloud proved unreachable; Unavailable counts requests that
	// fell all the way to the explicit "results unavailable" page. Both
	// are included in Served. Zero when fault injection is off.
	Degraded, Unavailable int64
	// Canceled counts requests abandoned by their caller's context
	// before a response was delivered. Not included in Served;
	// Served+Shed+Canceled sums to the completed submissions.
	Canceled int64
	// Retries counts modeled radio attempts beyond each completed cloud
	// miss's first; Exhausted counts misses that ran out of attempts and
	// fell to the degradation ladder. Zero when fault injection is off.
	Retries, Exhausted int64
	// BreakerOpens counts closed→open transitions across the per-shard
	// circuit breakers (wall-clock pacing only; model outcomes are
	// unaffected). With replicas it sums across every replica's breaker;
	// ReplicaBreakerOpens breaks the same total down per replica (nil
	// for a single-backend fleet).
	BreakerOpens        int64
	ReplicaBreakerOpens []int64
	// Replicas is the configured cloud-replica count (1 = single
	// backend).
	Replicas int
	// Hedging telemetry, all zero unless hedging is active:
	// ClonesLaunched counts clone dispatches beyond each hedged miss's
	// primary; PrimaryWins and CloneWins split the hedged misses that
	// delivered by who answered first; WastedAttempts counts the radio
	// attempts losing dispatches had started when the winner's answer
	// canceled them.
	ClonesLaunched, PrimaryWins, CloneWins, WastedAttempts int64
	// Users is the number of resident users (personal states).
	Users int
	// PersonalBytes is the personal flash footprint across all users.
	PersonalBytes int64
	// Backend is the per-replica queued-backend accounting (nil when the
	// backend model is disabled): arrivals, served/rejected/abandoned
	// splits, busy time, queue-wait distribution and the model horizon
	// each replica has been driven to.
	Backend []backend.ReplicaStats
}

// HitRate is the fraction of served requests answered from on-device
// state — the fleet-scale analogue of the paper's combined hit rate.
func (s Stats) HitRate() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.PersonalHits+s.CommunityHits) / float64(s.Served)
}

// ShedRate is the fraction of submitted requests shed by backpressure.
func (s Stats) ShedRate() float64 {
	total := s.Served + s.Shed
	if total == 0 {
		return 0
	}
	return float64(s.Shed) / float64(total)
}

// AnsweredRate is the fraction of served requests that got real
// results — anything but the explicit "results unavailable" page. The
// availability headline under fault injection: 1.0 means every
// completed request was answered from some tier, fresh or stale.
func (s Stats) AnsweredRate() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.Served-s.Unavailable) / float64(s.Served)
}

// Stats returns a fleet-wide snapshot. The per-shard walk takes each
// shard lock briefly; counters are atomics.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Served:         f.served.Load(),
		Shed:           f.shed.Load(),
		Errors:         f.errors.Load(),
		PersonalHits:   f.bySource[SourcePersonal].Load(),
		CommunityHits:  f.bySource[SourceCommunity].Load(),
		CloudMisses:    f.bySource[SourceCloud].Load(),
		Degraded:       f.bySource[SourceDegraded].Load(),
		Unavailable:    f.bySource[SourceUnavailable].Load(),
		Canceled:       f.canceled.Load(),
		Retries:        f.retries.Load(),
		Exhausted:      f.exhausted.Load(),
		Replicas:       f.cfg.Replicas,
		ClonesLaunched: f.clonesLaunched.Load(),
		PrimaryWins:    f.primaryWins.Load(),
		CloneWins:      f.cloneWins.Load(),
		WastedAttempts: f.wastedAttempts.Load(),
		Backend:        f.cohorts.bk.Stats(),
	}
	if f.cfg.Replicas > 1 {
		s.ReplicaBreakerOpens = make([]int64, f.cfg.Replicas)
	}
	for _, sh := range f.topo.Load().shards {
		for r, b := range sh.brks {
			opens := b.openCount()
			s.BreakerOpens += opens
			if s.ReplicaBreakerOpens != nil {
				s.ReplicaBreakerOpens[r] += opens
			}
		}
		sh.mu.Lock()
		s.Users += sh.users.resident
		s.PersonalBytes += sh.personalBytes
		sh.mu.Unlock()
	}
	return s
}

// EnergyStats snapshots the fleet energy ledger in joules. Device-side
// counters (radio, baseline) accumulate per response; shard-side
// counters integrate each shard's power envelope over model time —
// idle draw from the shard's provisioning instant to the current
// makespan plus the active increment over its busy time — with retired
// shards' integrals folded in at retirement. Deterministic for a
// deterministic workload once the fleet is drained: every term is a
// function of modeled outcomes, never of wall time.
func (f *Fleet) EnergyStats() energy.Snapshot {
	s := f.ledger.Snapshot()
	mk := f.tl.Makespan()
	for _, sh := range f.topo.Load().shards {
		if d := mk - sh.provisionedAt; d > 0 {
			s.ShardIdleJ += sh.power.IdleJ(d)
		}
		if busy := time.Duration(sh.busyNS.Load()); busy > 0 {
			s.ShardActiveJ += sh.power.ActiveJ(busy)
		}
	}
	return s
}

// MeanUserHitRate is the mean of per-user hit rates across resident
// users with at least one served request — the averaging the paper
// uses for its "65% of queries are cache hits" headline. Rates are
// summed in user-ID order so the float result is bit-reproducible.
func (f *Fleet) MeanUserHitRate() float64 {
	type userRate struct {
		id   searchlog.UserID
		rate float64
	}
	var rates []userRate
	for _, sh := range f.topo.Load().shards {
		sh.mu.Lock()
		sh.users.forEach(func(st *userState) {
			if st.served > 0 {
				rates = append(rates, userRate{st.uid, float64(st.hits) / float64(st.served)})
			}
		})
		sh.mu.Unlock()
	}
	if len(rates) == 0 {
		return 0
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i].id < rates[j].id })
	var sum float64
	for _, r := range rates {
		sum += r.rate
	}
	return sum / float64(len(rates))
}

// UserServeCount is one resident user's serving tally — the unit of
// the per-user determinism contract (same seed, same scenario, same
// counts, regardless of worker interleaving or resharding).
type UserServeCount struct {
	User   searchlog.UserID
	Served int64
	Hits   int64
	// Bytes is the user's personal flash footprint.
	Bytes int64
}

// UserServeCounts snapshots every resident user's serving counters in
// user-ID order. Determinism tests deep-compare two runs' slices; the
// sort makes the comparison independent of shard layout.
func (f *Fleet) UserServeCounts() []UserServeCount {
	var out []UserServeCount
	for _, sh := range f.topo.Load().shards {
		sh.mu.Lock()
		sh.users.forEach(func(st *userState) {
			out = append(out, UserServeCount{User: st.uid, Served: st.served, Hits: st.hits, Bytes: st.bytes})
		})
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// CommunityStats aggregates the activity counters of every shard's
// community replica. It deliberately reads through the caches' own
// stats locks without taking shard locks, so monitoring never blocks
// serving (the pocketsearch.Cache.Stats concurrency guarantee).
func (f *Fleet) CommunityStats() pocketsearch.Stats {
	var agg pocketsearch.Stats
	for _, sh := range f.topo.Load().shards {
		st := sh.community.Stats()
		agg.Queries += st.Queries
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Expansions += st.Expansions
		agg.Stale += st.Stale
	}
	return agg
}

// ReclaimPersonal frees at least want bytes of personal flash across
// the whole fleet, evicting lowest-utility records first via the
// Section 7 manager. With coordinate set, same-query records are
// evicted together across shards. It returns the bytes freed.
func (f *Fleet) ReclaimPersonal(want int64, coordinate bool) int64 {
	return f.manager.Reclaim(want, coordinate)
}

package fleet

import (
	"testing"
	"time"
)

// TestLingerControl pins the adaptive linger policy: no signal holds
// the configured window, dense miss arrivals size the window to fill a
// batch, and sparse arrivals shrink it to the floor so rare misses are
// not held hostage to an empty batch.
func TestLingerControl(t *testing.T) {
	opts := BatchOptions{AdaptiveLinger: true, Linger: 800 * time.Microsecond, MaxBatch: 16}

	if lc := newLingerControl(BatchOptions{Linger: opts.Linger, MaxBatch: opts.MaxBatch}); lc != nil {
		t.Fatal("lingerControl allocated without AdaptiveLinger")
	}
	var nilLC *lingerControl
	nilLC.observe(time.Unix(0, 0)) // nil-safe

	lc := newLingerControl(opts)
	if w := lc.window(); w != opts.Linger {
		t.Errorf("window with no signal = %v, want the configured %v", w, opts.Linger)
	}

	// Dense arrivals: 10µs gaps. The window should contract toward the
	// time a full batch needs to assemble — well under the ceiling,
	// never under the floor.
	now := time.Unix(0, 0)
	for i := 0; i < 64; i++ {
		now = now.Add(10 * time.Microsecond)
		lc.observe(now)
	}
	dense := lc.window()
	floor := opts.Linger / 8
	if dense >= opts.Linger || dense < floor {
		t.Errorf("dense window = %v, want in [%v, %v)", dense, floor, opts.Linger)
	}

	// Sparse arrivals: gaps far beyond the ceiling. The EWMA saturates
	// (gaps are clamped at 2× the ceiling) and the window collapses to
	// the floor.
	for i := 0; i < 64; i++ {
		now = now.Add(5 * time.Millisecond)
		lc.observe(now)
	}
	if w := lc.window(); w != floor {
		t.Errorf("sparse window = %v, want the floor %v", w, floor)
	}
}

package fleet

import (
	"math"
	"reflect"
	"testing"
	"time"

	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/searchlog"
)

// backendBiteFaults is a fault mix that sends plenty of ladders to the
// replicas without drowning the run in outages.
func backendBiteFaults(seed int64) faults.Options {
	return faults.Options{Enabled: true, Seed: seed, LossProb: 0.2, EngineErrProb: 0.1}
}

// TestBackendOffAndInfiniteRateByteIdentity is the refactor's
// acceptance rail: a fleet with the backend model disabled, and one
// with it enabled at an infinite service rate, must both reproduce the
// pre-backend fleet byte-for-byte — identical per-user traces,
// identical counters, identical model makespan. The infinite-rate run
// still counts arrivals; it just prices them all at exactly zero.
func TestBackendOffAndInfiniteRateByteIdentity(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func(bo backend.Options) (map[searchlog.UserID]*faultTrace, Stats, time.Duration) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = backendBiteFaults(5)
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Backend = bo
		})
		return runFaultTraces(t, f, g, users), f.Stats(), f.ModelMakespan()
	}

	tr1, s1, mk1 := run(backend.Options{})
	tr2, s2, mk2 := run(backend.Options{
		Enabled: true, Seed: 11, ServiceRate: math.Inf(1),
		Offered: 50, QueueDepth: 4,
	})
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("per-user traces diverge between disabled and infinite-rate backends")
	}
	if mk1 != mk2 {
		t.Errorf("model makespan diverges: disabled %v, infinite rate %v", mk1, mk2)
	}
	if len(s2.Backend) != 1 {
		t.Fatalf("infinite-rate run has no backend stats: %+v", s2.Backend)
	}
	bs := s2.Backend[0]
	if bs.Arrivals == 0 {
		t.Error("infinite-rate backend counted no arrivals")
	}
	if bs.Rejected != 0 || bs.BusyNs != 0 || bs.WaitSumNs != 0 {
		t.Errorf("infinite-rate backend priced nonzero: %+v", bs)
	}
	// Backend accounting is the only permitted presentation difference.
	s2.Backend = s1.Backend
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("fleet counters diverge:\n  disabled: %+v\n  inf-rate: %+v", s1, s2)
	}
}

// TestBackendRequiresFaults: the admission planner lives on the faulted
// miss path, so enabling the backend without fault injection is a
// configuration error, not a silent no-op.
func TestBackendRequiresFaults(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	cfg := Config{
		Engine:  engine.New(g.Config().Universe),
		Content: content,
		Shards:  1, Workers: 1,
		Backend: backend.Options{Enabled: true, ServiceRate: 10},
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("backend without faults built a fleet")
	}
}

// TestBackendDeterministicConcurrent extends the byte-determinism
// guarantee to queued backends (run under -race by scripts/check.sh):
// two concurrent closed-loop runs over a congested, hedged, bounded
// backend must agree exactly — traces, counters and per-replica
// backend accounting — and the accounting must cross-foot: arrivals
// partition into served, rejected and abandoned on every replica.
func TestBackendDeterministicConcurrent(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func() (map[searchlog.UserID]*faultTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = backendBiteFaults(5)
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Replicas = 3
			cfg.Hedge = faults.HedgePolicy{CloneFactor: 2, Delay: 200 * time.Millisecond}
			cfg.Backend = backend.Options{
				Enabled: true, Seed: 11, ServiceRate: 5,
				Offered: 8, QueueDepth: 16, Discipline: backend.FIFO,
				CancelOnWin: true,
			}
		})
		return runFaultTraces(t, f, g, users), f.Stats()
	}

	tr1, s1 := run()
	tr2, s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("counters diverge across identical runs:\n  run 1: %+v\n  run 2: %+v", s1, s2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("per-user traces diverge across identical queued-backend runs")
	}
	if len(s1.Backend) != 3 {
		t.Fatalf("want 3 replica stats, got %d", len(s1.Backend))
	}
	var arrivals, busy int64
	for r, bs := range s1.Backend {
		if bs.Arrivals != bs.Served+bs.Rejected+bs.Abandoned {
			t.Errorf("replica %d does not cross-foot: %+v", r, bs)
		}
		arrivals += bs.Arrivals
		busy += bs.BusyNs
	}
	if arrivals == 0 || busy == 0 {
		t.Fatalf("congested backend saw no work: arrivals %d, busy %d", arrivals, busy)
	}
}

// TestBackendCongestionIsVisible: a finite-rate backend under offered
// load must stretch the model — users wait out real queue and service
// time — and its replicas must report that time as busy.
func TestBackendCongestionIsVisible(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func(bo backend.Options) (Stats, time.Duration) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = backendBiteFaults(5)
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Backend = bo
		})
		runFaultTraces(t, f, g, users)
		return f.Stats(), f.ModelMakespan()
	}

	// The queue bound matters: at offered 3 vs rate 2 an unbounded PS
	// queue's sojourn times diverge with the horizon (see
	// backend.taggedMaxArrivals); the bound keeps waits finite the way a
	// real admission-controlled server would.
	_, mkOff := run(backend.Options{})
	s, mkOn := run(backend.Options{
		Enabled: true, Seed: 11, ServiceRate: 2, Offered: 3,
		Discipline: backend.PS, QueueDepth: 8,
	})
	if mkOn <= mkOff {
		t.Errorf("queued backend did not stretch the model: %v vs %v", mkOn, mkOff)
	}
	bs := s.Backend[0]
	if bs.BusyNs == 0 || bs.WaitSumNs == 0 {
		t.Errorf("congested PS replica reports no busy/wait time: %+v", bs)
	}
	if bs.Utilization() <= 0 {
		t.Errorf("utilization not positive: %v", bs.Utilization())
	}
	if bs.MeanWait() <= 0 || bs.P99Wait() < bs.MeanWait() {
		t.Errorf("wait summary inconsistent: mean %v p99 %v", bs.MeanWait(), bs.P99Wait())
	}
}

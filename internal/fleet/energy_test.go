package fleet

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/searchlog"
)

// near reports whether two joule totals agree within the ledger's
// nanojoule rounding slack.
func near(a, b float64) bool {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= 1e-6*scale
}

// TestEnergyStatsCrossFoot: the ledger's device-side counters track
// the per-response energy the fleet served, the shard-side integrals
// are positive once anything was served, and the snapshot cross-foots.
func TestEnergyStatsCrossFoot(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 16, 1)
	f := newTestFleet(t, g, smallContent(t, g), nil)

	var wantDevice float64
	for _, tape := range tapes {
		for _, req := range tape {
			resp := f.Do(req)
			if resp.Shed || resp.Err != nil {
				t.Fatalf("request failed: %+v", resp)
			}
			wantDevice += resp.EnergyJ
		}
	}
	f.Drain()

	s := f.EnergyStats()
	if !near(s.DeviceBaseJ+s.RadioJ, wantDevice) {
		t.Errorf("ledger device energy %g J (base %g + radio %g), responses summed to %g J",
			s.DeviceBaseJ+s.RadioJ, s.DeviceBaseJ, s.RadioJ, wantDevice)
	}
	if s.RadioJ <= 0 || s.DeviceBaseJ <= 0 {
		t.Errorf("device counters empty after serving: %+v", s)
	}
	if s.ShardIdleJ <= 0 || s.ShardActiveJ <= 0 {
		t.Errorf("shard integrals empty after serving: %+v", s)
	}
	if got := s.ShardJ(); !near(got, s.ShardIdleJ+s.ShardActiveJ) {
		t.Errorf("ShardJ() = %g, components sum to %g", got, s.ShardIdleJ+s.ShardActiveJ)
	}
	if got := s.TotalJ(); !near(got, s.DeviceBaseJ+s.RadioJ+s.ShardIdleJ+s.ShardActiveJ) {
		t.Errorf("TotalJ() = %g, components sum to %g", got,
			s.DeviceBaseJ+s.RadioJ+s.ShardIdleJ+s.ShardActiveJ)
	}
}

// TestEnergyStatsSurvivesResize: retiring shards folds their idle and
// busy integrals into the ledger, so the fleet-wide energy totals are
// conserved across a shrink (and a grow adds shards that start
// charging idle power only from their provisioning instant).
func TestEnergyStatsSurvivesResize(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 24, 1)
	f := newRingFleet(t, g, func(cfg *Config) {
		cfg.Shards = 6
		cfg.Placement = mustRing(t, 6)
	})
	serveTapes(t, f, tapes)
	f.Drain()
	before := f.EnergyStats()

	if _, err := f.Resize(3); err != nil {
		t.Fatal(err)
	}
	after := f.EnergyStats()
	// No serving between the snapshots: the makespan is unchanged, so
	// folding the retired shards must conserve both shard integrals
	// exactly (modulo the counters' nanojoule rounding).
	if !near(before.ShardIdleJ, after.ShardIdleJ) {
		t.Errorf("shrink changed idle energy: %g → %g J", before.ShardIdleJ, after.ShardIdleJ)
	}
	if !near(before.ShardActiveJ, after.ShardActiveJ) {
		t.Errorf("shrink lost busy energy: %g → %g J", before.ShardActiveJ, after.ShardActiveJ)
	}
	if before.RadioJ != after.RadioJ || before.DeviceBaseJ != after.DeviceBaseJ {
		t.Errorf("resize touched device counters: %+v → %+v", before, after)
	}

	// The retired shards' serving counters folded into RetiredLoad, and
	// live + retired still account for every booked request.
	rl := f.RetiredLoad()
	if rl.Served == 0 {
		t.Fatal("shrink 6→3 retired no served requests; test exercises nothing")
	}
	var live int64
	for _, sl := range f.ShardLoads() {
		live += sl.Served
	}
	if s := f.Stats(); live+rl.Served != s.Served {
		t.Errorf("live %d + retired %d served != fleet %d", live, rl.Served, s.Served)
	}
}

// TestShardPowerScalesLedger: a hotter shard power model scales the
// shard-side integrals without touching the device-side counters or
// any serving outcome.
func TestShardPowerScalesLedger(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 12, 1)

	run := func(p energy.ShardPower) (map[searchlog.UserID][]Source, energy.Snapshot) {
		f := newTestFleet(t, g, smallContent(t, g), func(cfg *Config) {
			cfg.ShardPower = p
		})
		tiers := map[searchlog.UserID][]Source{}
		for uid, tape := range tapes {
			for _, req := range tape {
				tiers[uid] = append(tiers[uid], f.Do(req).Source)
			}
		}
		f.Drain()
		return tiers, f.EnergyStats()
	}

	baseTiers, base := run(energy.ShardPower{})
	hotTiers, hot := run(energy.ShardPower{IdleW: 20, ActiveW: 50})
	for uid := range baseTiers {
		for i := range baseTiers[uid] {
			if baseTiers[uid][i] != hotTiers[uid][i] {
				t.Fatalf("shard power changed a serving outcome for user %d", uid)
			}
		}
	}
	if base.RadioJ != hot.RadioJ || base.DeviceBaseJ != hot.DeviceBaseJ {
		t.Errorf("shard power touched device counters: %+v vs %+v", base, hot)
	}
	// Default is 10 W idle / 25 W active; the hot model doubles both,
	// but the makespans of the two runs differ (wall-clock batching of
	// model time), so only the sign of the change is stable.
	if hot.ShardIdleJ <= base.ShardIdleJ || hot.ShardActiveJ <= base.ShardActiveJ {
		t.Errorf("doubled shard power did not raise the integrals: base %+v hot %+v", base, hot)
	}
}

// TestShardLoadsDuringResize hammers ShardLoads, RetiredLoad and
// EnergyStats while the fleet serves and resizes concurrently — the
// -race gate for the occupancy sampler the autoscaler rides — then
// checks live + retired counters still book every submission.
func TestShardLoadsDuringResize(t *testing.T) {
	g := smallGen(t, 48)
	f := newRingFleet(t, g, func(cfg *Config) {
		cfg.QueueDepth = 4096
	})

	users := g.Users()[:48]
	const clients = 4
	var submitted [clients]int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(users); i += clients {
				for _, req := range requestsFor(g, users[i], 1) {
					f.Do(req)
					submitted[c]++
				}
			}
		}(c)
	}
	var stop atomic.Bool
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for !stop.Load() {
			var total int64
			for _, sl := range f.ShardLoads() {
				total += sl.Served + sl.Shed
			}
			rl := f.RetiredLoad()
			if total+rl.Served+rl.Shed < 0 {
				panic("negative load sample")
			}
			if es := f.EnergyStats(); es.ShardIdleJ < 0 || es.ShardActiveJ < 0 {
				panic("negative energy sample")
			}
		}
	}()
	for _, n := range []int{6, 3, 5} {
		if _, err := f.Resize(n); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	stop.Store(true)
	sampler.Wait()
	f.Drain()

	var total int64
	for _, n := range submitted {
		total += n
	}
	var live, liveShed int64
	for _, sl := range f.ShardLoads() {
		live += sl.Served
		liveShed += sl.Shed
	}
	rl := f.RetiredLoad()
	s := f.Stats()
	if live+rl.Served != s.Served || liveShed+rl.Shed != s.Shed {
		t.Errorf("live %d/%d + retired %d/%d served/shed != fleet %d/%d",
			live, liveShed, rl.Served, rl.Shed, s.Served, s.Shed)
	}
	if s.Served+s.Shed+s.Canceled != total {
		t.Errorf("accounting broke across live resizes: served %d + shed %d + canceled %d != submitted %d",
			s.Served, s.Shed, s.Canceled, total)
	}
}

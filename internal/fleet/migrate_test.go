package fleet

import (
	"sync"
	"testing"

	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// TestUserKeyMatchesLegacyRouting pins the placement key to the exact
// value the fleet's pre-placement routing hashed: if these diverge, the
// default modulo placement silently stops being byte-identical to the
// historical mapping.
func TestUserKeyMatchesLegacyRouting(t *testing.T) {
	for uid := uint64(0); uid < 4096; uid++ {
		legacy := itemKey(searchlog.UserID(uid), 0x517CC1B727220A95)
		if got := placement.UserKey(uid); got != legacy {
			t.Fatalf("UserKey(%d) = %#x, legacy itemKey = %#x", uid, got, legacy)
		}
	}
}

// newRingFleet builds a test fleet routed by a consistent-hash ring.
func newRingFleet(t testing.TB, g *workload.Generator, mutate func(*Config)) *Fleet {
	t.Helper()
	content := smallContent(t, g)
	return newTestFleet(t, g, content, func(cfg *Config) {
		ring, err := placement.NewRing(cfg.Shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Placement = ring
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// tapesFor materializes month tapes for the first n users.
func tapesFor(g *workload.Generator, n, month int) map[searchlog.UserID][]Request {
	tapes := make(map[searchlog.UserID][]Request, n)
	for _, up := range g.Users()[:n] {
		tapes[up.ID] = requestsFor(g, up, month)
	}
	return tapes
}

// serveTapes serves each user's stream in order, returning the tier
// each request was served from.
func serveTapes(t testing.TB, f *Fleet, tapes map[searchlog.UserID][]Request) map[searchlog.UserID][]Source {
	t.Helper()
	out := make(map[searchlog.UserID][]Source, len(tapes))
	for uid, tape := range tapes {
		for _, req := range tape {
			resp := f.Do(req)
			if resp.Shed || resp.Err != nil {
				t.Fatalf("user %d request failed: %+v", uid, resp)
			}
			out[uid] = append(out[uid], resp.Source)
		}
	}
	return out
}

// TestResizeEquivalence is the migration acceptance test: serving a
// warm-up round, live-resizing 4→6, then replaying the same tape must
// produce per-request tiers identical to a fleet that never resized —
// migrated users keep hitting their migrated personal caches, with no
// cold-miss spike.
func TestResizeEquivalence(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 24, 1)

	control := newRingFleet(t, g, nil)
	serveTapes(t, control, tapes)
	want := serveTapes(t, control, tapes)

	resized := newRingFleet(t, g, nil)
	serveTapes(t, resized, tapes)
	st, err := resized.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedUsers == 0 {
		t.Fatal("ring 4→6 resize moved no users; test exercises nothing")
	}
	if st.DroppedUsers != 0 {
		t.Fatalf("resize dropped %d users' state", st.DroppedUsers)
	}
	got := serveTapes(t, resized, tapes)

	for uid, tiers := range want {
		for i, tier := range tiers {
			if got[uid][i] != tier {
				t.Fatalf("user %d request %d served from %v after resize, %v without",
					uid, i, got[uid][i], tier)
			}
		}
	}
	if c, r := control.Stats(), resized.Stats(); c.PersonalHits != r.PersonalHits ||
		c.CommunityHits != r.CommunityHits || c.CloudMisses != r.CloudMisses {
		t.Errorf("tier totals diverged: control %+v resized %+v", c, r)
	}
}

// TestResizeMigratesWarmBytes: a grow re-homes users together with
// their personal flash — fleet-wide personal bytes and user counts are
// conserved, and the re-homed share lands on the new shards.
func TestResizeMigratesWarmBytes(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 24, 1)
	f := newRingFleet(t, g, nil)
	serveTapes(t, f, tapes)

	before := f.Stats()
	st, err := f.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Users != before.Users || after.PersonalBytes != before.PersonalBytes {
		t.Errorf("resize lost state: users %d→%d, personal bytes %d→%d",
			before.Users, after.Users, before.PersonalBytes, after.PersonalBytes)
	}
	if st.MovedBytes == 0 || st.TransferBytes < st.MovedBytes {
		t.Errorf("implausible transfer accounting: %+v", st)
	}
	var newShardUsers int
	for _, sl := range f.ShardLoads() {
		if sl.Shard >= 4 {
			newShardUsers += sl.Users
		}
	}
	if newShardUsers == 0 {
		t.Error("no users landed on the grown shards")
	}
	if f.NumShards() != 6 || f.PlacementName() != "ring" {
		t.Errorf("fleet reports %d shards / %q placement", f.NumShards(), f.PlacementName())
	}
}

// TestResizeDropStateBaseline: the remap-everything baseline cold-starts
// every mover — their personal bytes are gone and a previously personal
// repeat goes back to the cloud or community.
func TestResizeDropStateBaseline(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 24, 1)

	control := newRingFleet(t, g, nil)
	serveTapes(t, control, tapes)
	want := serveTapes(t, control, tapes)

	f := newRingFleet(t, g, nil)
	serveTapes(t, f, tapes)
	before := f.Stats()
	st, err := f.ResizeWith(6, ResizeOptions{DropState: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedUsers == 0 || st.DroppedUsers != st.MovedUsers {
		t.Fatalf("drop baseline should drop every mover: %+v", st)
	}
	after := f.Stats()
	if after.PersonalBytes >= before.PersonalBytes {
		t.Errorf("dropped state but personal bytes held at %d (was %d)",
			after.PersonalBytes, before.PersonalBytes)
	}
	got := serveTapes(t, f, tapes)
	downgraded := 0
	for uid, tiers := range want {
		for i, tier := range tiers {
			if tier == SourcePersonal && got[uid][i] != SourcePersonal {
				downgraded++
			}
		}
	}
	if downgraded == 0 {
		t.Error("cold-restart baseline lost no personal hits; nothing was measured")
	}
}

// TestResizeShrink: 6→4 drains the retired shards completely and keeps
// serving correct; growing back re-spreads users again.
func TestResizeShrink(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 24, 1)
	f := newRingFleet(t, g, func(cfg *Config) {
		cfg.Shards = 6
		ring, err := placement.NewRing(6, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Placement = ring
	})
	serveTapes(t, f, tapes)
	before := f.Stats()

	if _, err := f.Resize(4); err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Users != before.Users || after.PersonalBytes != before.PersonalBytes {
		t.Errorf("shrink lost state: users %d→%d, bytes %d→%d",
			before.Users, after.Users, before.PersonalBytes, after.PersonalBytes)
	}
	if loads := f.ShardLoads(); len(loads) != 4 {
		t.Fatalf("topology holds %d shards after shrink to 4", len(loads))
	}
	if got := f.Manager().Cloudlets(); len(got) != 4 {
		t.Errorf("manager still tracks %d cloudlets after shrink", len(got))
	}
	serveTapes(t, f, tapes) // must still serve without panics or sheds

	if _, err := f.Resize(6); err != nil {
		t.Fatal(err)
	}
	if loads := f.ShardLoads(); len(loads) != 6 {
		t.Errorf("topology holds %d shards after regrow", len(loads))
	}
}

// TestResizeWhileServing resharpens the tentpole claim under -race:
// clients hammer the fleet while it grows and shrinks, and every
// submission is booked exactly once (Served+Shed+Canceled), with no
// request lost in a hold queue.
func TestResizeWhileServing(t *testing.T) {
	g := smallGen(t, 48)
	f := newRingFleet(t, g, func(cfg *Config) {
		cfg.QueueDepth = 4096
	})

	users := g.Users()[:48]
	const clients = 4
	var submitted [clients]int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(users); i += clients {
				for _, req := range requestsFor(g, users[i], 1) {
					f.Do(req)
					submitted[c]++
				}
			}
		}(c)
	}
	for _, n := range []int{6, 3, 5} {
		if _, err := f.Resize(n); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	f.Drain()

	var total int64
	for _, n := range submitted {
		total += n
	}
	s := f.Stats()
	if s.Served+s.Shed+s.Canceled != total {
		t.Errorf("accounting broke across live resizes: served %d + shed %d + canceled %d != submitted %d",
			s.Served, s.Shed, s.Canceled, total)
	}
	if mig := f.MigrationStats(); mig.Resizes != 3 {
		t.Errorf("MigrationStats.Resizes = %d, want 3", mig.Resizes)
	}
}

// TestShardLoadsAccounting: per-shard served counters sum to the fleet
// total, so the skew report in loadgen adds up.
func TestShardLoadsAccounting(t *testing.T) {
	g := smallGen(t, 64)
	tapes := tapesFor(g, 16, 1)
	f := newTestFleet(t, g, smallContent(t, g), nil)
	serveTapes(t, f, tapes)

	var served, shed int64
	for _, sl := range f.ShardLoads() {
		served += sl.Served
		shed += sl.Shed
	}
	s := f.Stats()
	if served != s.Served || shed != s.Shed {
		t.Errorf("shard loads sum to %d served / %d shed, fleet counted %d / %d",
			served, shed, s.Served, s.Shed)
	}
}

// TestResizeValidation covers the error and no-op paths.
func TestResizeValidation(t *testing.T) {
	g := smallGen(t, 16)
	f := newTestFleet(t, g, smallContent(t, g), nil)

	if _, err := f.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
	st, err := f.Resize(4)
	if err != nil || st.Epochs != 0 || st.MovedUsers != 0 {
		t.Errorf("same-size resize should be a no-op: %+v, %v", st, err)
	}
	if _, err := New(Config{Engine: f.cfg.Engine, Content: f.cfg.Content, Shards: 4,
		Placement: mustRing(t, 8)}); err == nil {
		t.Error("placement/shard mismatch should fail New")
	}
	f.Close()
	if _, err := f.Resize(6); err == nil {
		t.Error("resize after Close should fail")
	}
}

func mustRing(t *testing.T, n int) placement.Placement {
	t.Helper()
	r, err := placement.NewRing(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

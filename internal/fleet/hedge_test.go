package fleet

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// hedgeBiteFaults is a fault scenario nasty enough that hedging has
// work to do: a 20% outage duty cycle that starts down plus per-attempt
// loss, so early misses exhaust and clones get to race their primaries.
func hedgeBiteFaults(seed int64) faults.Options {
	return faults.Options{
		Enabled:     true,
		Seed:        seed,
		LossProb:    0.25,
		OutageEvery: 30 * time.Second,
		OutageFor:   6 * time.Second,
	}
}

// TestHedgeCloneFactor1ByteIdentity is the acceptance guarantee that a
// replicated fleet with hedging disabled is indistinguishable from the
// single-backend fleet: Replicas = 3 with clone factor 1 must produce
// byte-identical per-user traces and counters (the replica count and
// the per-replica breaker breakdown in Stats are the only permitted
// presentation differences).
func TestHedgeCloneFactor1ByteIdentity(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func(replicas, cloneFactor int) (map[searchlog.UserID]*faultTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = hedgeBiteFaults(5)
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Replicas = replicas
			cfg.Hedge = faults.HedgePolicy{CloneFactor: cloneFactor, Delay: 100 * time.Millisecond}
		})
		return runFaultTraces(t, f, g, users), f.Stats()
	}

	tr1, s1 := run(0, 0)
	tr2, s2 := run(3, 1)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("per-user traces diverge between single-backend and clone-factor-1 replicated fleets")
	}
	if s2.Replicas != 3 {
		t.Errorf("replicated fleet reports %d replicas", s2.Replicas)
	}
	if s2.ClonesLaunched+s2.PrimaryWins+s2.CloneWins+s2.WastedAttempts != 0 {
		t.Errorf("clone factor 1 accrued hedge counters: %+v", s2)
	}
	// Normalize the two permitted presentation differences, then demand
	// byte identity.
	s2.Replicas = s1.Replicas
	s2.ReplicaBreakerOpens = s1.ReplicaBreakerOpens
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("fleet counters diverge:\n  single:     %+v\n  replicated: %+v", s1, s2)
	}
}

// TestHedgedDeterministicConcurrent extends the fault-determinism
// guarantee to the hedged path (run under -race by scripts/check.sh):
// two concurrent closed-loop runs over replicated backends with hedging
// on must produce byte-identical traces and counters, and the hedge
// telemetry must cross-foot — every hedged cloud serve won by exactly
// one dispatch, clone wins bounded by clones launched.
func TestHedgedDeterministicConcurrent(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func() (map[searchlog.UserID]*faultTrace, Stats) {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = hedgeBiteFaults(5)
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Replicas = 3
			cfg.Hedge = faults.HedgePolicy{CloneFactor: 2, Delay: 200 * time.Millisecond}
		})
		return runFaultTraces(t, f, g, users), f.Stats()
	}

	tr1, s1 := run()
	tr2, s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("hedged counters diverge across identical runs:\n  run 1: %+v\n  run 2: %+v", s1, s2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("per-user traces diverge across identical hedged runs")
	}
	if s1.ClonesLaunched == 0 {
		t.Error("no clones launched; the hedge never engaged")
	}
	if s1.CloneWins == 0 {
		t.Error("no clone wins; phase-shifted replica outages should let clones rescue misses")
	}
	if s1.PrimaryWins+s1.CloneWins != s1.CloudMisses {
		t.Errorf("wins %d+%d do not partition the %d cloud serves",
			s1.PrimaryWins, s1.CloneWins, s1.CloudMisses)
	}
	if s1.CloneWins > s1.ClonesLaunched {
		t.Errorf("clone wins %d exceed clones launched %d", s1.CloneWins, s1.ClonesLaunched)
	}
}

// TestHedgingImprovesAvailability is the paper-facing claim: under a
// 20% outage duty cycle, dispatching each miss to two of three
// independently faulted replicas must answer strictly more requests
// than riding the single backend's retry ladder.
func TestHedgingImprovesAvailability(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	run := func(replicas int, hedge faults.HedgePolicy) Stats {
		f := newTestFleet(t, g, content, func(cfg *Config) {
			cfg.QueueDepth = 4096
			cfg.Faults = faults.Options{
				Enabled:     true,
				Seed:        5,
				OutageEvery: 30 * time.Second,
				OutageFor:   6 * time.Second,
			}
			cfg.Retry = faults.RetryPolicy{MaxAttempts: 2, WallPauseScale: -1}
			cfg.Breaker = BreakerOptions{Threshold: -1}
			cfg.Replicas = replicas
			cfg.Hedge = hedge
		})
		runFaultTraces(t, f, g, users)
		return f.Stats()
	}

	plain := run(1, faults.HedgePolicy{})
	hedged := run(3, faults.HedgePolicy{CloneFactor: 2, Delay: 100 * time.Millisecond})
	if plain.Exhausted == 0 {
		t.Fatal("baseline outage did not bite; the comparison proves nothing")
	}
	if hedged.Exhausted >= plain.Exhausted {
		t.Errorf("hedging did not reduce exhaustion: %d hedged vs %d plain",
			hedged.Exhausted, plain.Exhausted)
	}
	if hedged.AnsweredRate() <= plain.AnsweredRate() {
		t.Errorf("hedging did not improve answered rate: %v hedged vs %v plain",
			hedged.AnsweredRate(), plain.AnsweredRate())
	}
}

// TestHedgedExactlyOnceWithCancels re-runs the caller-cancellation
// accounting with hedging in flight: canceled, served and shed must
// still sum to the submissions exactly once each.
func TestHedgedExactlyOnceWithCancels(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	uid := g.Users()[0].ID

	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Workers = 1
		cfg.Faults = faults.Options{Enabled: true, LossProb: 1}
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts:    4,
			WallPauseScale: 1,
			MaxWallPause:   100 * time.Millisecond,
		}
		cfg.Breaker = BreakerOptions{Threshold: -1}
		cfg.Replicas = 3
		cfg.Hedge = faults.HedgePolicy{CloneFactor: 2}
	})

	miss := missBeyondContent(t, g, len(content.Triplets), uid)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if resp := f.DoContext(ctx, miss); !resp.Canceled {
		t.Fatalf("mid-pause cancel = %+v, want Canceled", resp)
	}
	if resp := f.Do(miss); resp.Source != SourceUnavailable && resp.Source != SourceDegraded {
		t.Fatalf("all-lossy hedged miss = %+v, want a degraded serve", resp)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := f.Stats()
		if s.Served+s.Shed+s.Canceled == 2 {
			if s.Canceled != 1 || s.Served != 1 {
				t.Fatalf("cancel accounting off: %+v", s)
			}
			// Loss probability 1 on every replica: nothing may win.
			if s.PrimaryWins+s.CloneWins != 0 || s.CloudMisses != 0 {
				t.Fatalf("wins through total loss: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never fully booked: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerHalfOpenProbeConcurrent exercises the per-replica breaker
// state machine under concurrent misses (run under -race by
// scripts/check.sh): a dead zone opens the primary breakers and the
// cooldown/half-open cycle runs with real (tiny) pauses; once the model
// clocks escape the window, probes succeed, breakers close, and cloud
// serves resume. Per-replica opens must sum to the fleet total.
func TestBreakerHalfOpenProbeConcurrent(t *testing.T) {
	g := smallGen(t, 32)
	content := smallContent(t, g)
	users := g.Users()[:24]

	f := newTestFleet(t, g, content, func(cfg *Config) {
		cfg.QueueDepth = 4096
		cfg.Faults = faults.Options{
			Enabled: true,
			// Down for the first 20 model seconds, healthy after: every
			// user's early misses exhaust, later ones succeed.
			Windows: []faults.Window{{Start: 0, End: 20 * time.Second}},
		}
		cfg.Retry = faults.RetryPolicy{
			MaxAttempts:    2,
			WallPauseScale: 0.0001,
			MaxWallPause:   time.Millisecond,
		}
		cfg.Breaker = BreakerOptions{Threshold: 2, Cooldown: 3}
		cfg.Replicas = 2
	})

	var wg sync.WaitGroup
	for _, up := range users {
		wg.Add(1)
		go func(up workload.UserProfile) {
			defer wg.Done()
			for _, req := range requestsFor(g, up, 1) {
				if resp := f.Do(req); resp.Shed || resp.Err != nil {
					t.Errorf("user %d request failed: %+v", up.ID, resp)
					return
				}
			}
		}(up)
	}
	wg.Wait()

	s := f.Stats()
	if s.BreakerOpens == 0 {
		t.Error("breaker never opened against the dead zone")
	}
	if s.CloudMisses == 0 {
		t.Error("no cloud serve after recovery; half-open probes never closed the breaker")
	}
	if len(s.ReplicaBreakerOpens) != 2 {
		t.Fatalf("want 2 per-replica breaker rows, got %v", s.ReplicaBreakerOpens)
	}
	var sum int64
	for _, n := range s.ReplicaBreakerOpens {
		sum += n
	}
	if sum != s.BreakerOpens {
		t.Errorf("per-replica opens %v sum to %d, fleet total %d", s.ReplicaBreakerOpens, sum, s.BreakerOpens)
	}
}

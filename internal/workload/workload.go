// Package workload generates synthetic mobile search logs that stand in
// for the 200 million m.bing.com queries the Pocket Cloudlets paper
// analyzed (Section 4). The generator is a per-user behavioural model
// whose parameters are calibrated so the aggregate statistics the paper
// reports emerge from the generated streams rather than being baked in:
//
//   - Community concentration (Figure 4): new queries are drawn from
//     bounded Zipf distributions over the navigational/non-navigational
//     pair spaces of internal/engine, with steeper exponents for
//     featurephone users (the paper's Figure 4 device split).
//   - Individual repeatability (Figure 5): each user has a repeat
//     propensity; a bimodal mixture (heavy repeaters vs. explorers)
//     reproduces the paper's skew — about half of users repeat at
//     least 70% of their queries while the population mean sits near
//     56.5%. Repeats re-draw from the user's own history, frequency
//     weighted, so personal favorites emerge (a Pólya urn).
//   - User classes (Table 6): monthly query volume is drawn
//     log-uniformly within each class's bracket; heavier classes have
//     higher repeat propensity and more diversified (less
//     navigational) query mixes, which reproduces the class trends of
//     Figures 17 and 19.
//
// Generation is deterministic given (Seed, user, month), so the same
// user can be materialized for consecutive months: the evaluation
// builds the cache from month 0 and replays month 1.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/zipf"
)

// Class is a Table 6 user class, determined by monthly query volume.
type Class int

const (
	// Low volume: [20, 40) queries per month — 55% of users.
	Low Class = iota
	// Medium volume: [40, 140) — 36% of users.
	Medium
	// High volume: [140, 460) — 8% of users.
	High
	// Extreme volume: [460, ∞) — 1% of users.
	Extreme
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case Extreme:
		return "extreme"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every class in order.
func Classes() []Class { return []Class{Low, Medium, High, Extreme} }

// ClassSpec parameterizes one user class.
type ClassSpec struct {
	Class Class
	// MinMonthly and MaxMonthly bound the monthly query volume
	// (half-open bracket, Table 6).
	MinMonthly, MaxMonthly int
	// PopulationShare is the fraction of users in this class.
	PopulationShare float64
	// HeavyRepeaterFrac is the probability a user of this class is a
	// heavy repeater (repeat propensity drawn from the heavy band).
	HeavyRepeaterFrac float64
	// NavVolumeFrac is the probability a fresh draw is navigational.
	NavVolumeFrac float64
	// Favorites is how many persistent favorite pairs a user of this
	// class maintains. Favorites persist across months — the paper's
	// heavy users keep re-issuing the same queries month after month,
	// which both feeds those pairs into the community's popular set
	// and explains why community-only hit rates grow with volume
	// (Figure 17).
	Favorites int
}

// DefaultClasses returns the calibrated Table 6 classes. The Extreme
// bracket is capped at 1200 to keep generated streams bounded (the
// paper's bracket is open-ended).
func DefaultClasses() []ClassSpec {
	return []ClassSpec{
		{Class: Low, MinMonthly: 20, MaxMonthly: 40, PopulationShare: 0.55, HeavyRepeaterFrac: 0.57, NavVolumeFrac: 0.62, Favorites: 4},
		{Class: Medium, MinMonthly: 40, MaxMonthly: 140, PopulationShare: 0.36, HeavyRepeaterFrac: 0.67, NavVolumeFrac: 0.59, Favorites: 7},
		{Class: High, MinMonthly: 140, MaxMonthly: 460, PopulationShare: 0.08, HeavyRepeaterFrac: 0.72, NavVolumeFrac: 0.56, Favorites: 12},
		{Class: Extreme, MinMonthly: 460, MaxMonthly: 1200, PopulationShare: 0.01, HeavyRepeaterFrac: 0.76, NavVolumeFrac: 0.53, Favorites: 18},
	}
}

// Config parameterizes a generator.
type Config struct {
	// Universe supplies the pair spaces.
	Universe *engine.Universe
	// Seed drives all randomness; equal seeds reproduce equal logs.
	Seed int64
	// Users is the population size.
	Users int
	// Window is the log window length (a month).
	Window time.Duration
	// FeaturephoneFrac is the fraction of featurephone users.
	FeaturephoneFrac float64
	// Classes overrides DefaultClasses when non-nil.
	Classes []ClassSpec

	// Zipf exponents per (pair space, device). Featurephone values are
	// steeper: the paper found featurephone traffic more concentrated.
	NavExpSmart      float64
	NavExpFeature    float64
	NonNavExpSmart   float64
	NonNavExpFeature float64

	// Repeat-propensity bands for the bimodal mixture.
	HeavyRepeatMin, HeavyRepeatMax float64
	LightRepeatMin, LightRepeatMax float64

	// Favorite-pool structure. Popular favorites are drawn from the
	// top FavNavRanks/FavNonNavRanks of each space with exponents
	// FavNavExp/FavNonNavExp; NicheFavoriteFrac of favorites instead
	// come from the full fresh distribution.
	FavNavRanks       int
	FavNonNavRanks    int
	FavNavExp         float64
	FavNonNavExp      float64
	NicheFavoriteFrac float64

	// Trending models the temporal drift of real search traffic: each
	// day a few event queries spike community-wide and fade after a
	// few days (the paper's logs are from 2009 — "michael jackson" is
	// its running example of exactly such an event). Trending is what
	// makes the Section 6.2.2 daily cache updates pay off: a cache
	// built from last month's logs cannot contain this week's events.
	//
	// TrendingFrac is the probability a fresh draw is a trending
	// query; TrendingDailyEvents is how many new events start per day;
	// TrendingLifetimeDays is how long an event stays active. A zero
	// TrendingFrac disables drift entirely.
	TrendingFrac         float64
	TrendingDailyEvents  int
	TrendingLifetimeDays int
}

// favoriteBias is the probability a repeat re-issues one of the user's
// persistent favorites rather than redrawing from this month's
// history. Favorites dominate early in a month (history is empty) and
// remain the anchor of the user's repeat traffic.
const favoriteBias = 0.55

// CommunityUsers is the canonical population size at which the
// generator's aggregate statistics were calibrated against the paper's
// Figure 4/5 numbers. At this scale a month log holds ~1.5M entries;
// smaller populations over-concentrate the head because individual
// users' repeated favorites occupy a larger share of the top ranks.
const CommunityUsers = 20000

// DefaultConfig returns the calibrated configuration over the given
// universe. Users and Seed are the caller's choice; aggregate Figure 4
// shares match the paper when Users is near CommunityUsers.
func DefaultConfig(u *engine.Universe, users int, seed int64) Config {
	return Config{
		Universe:          u,
		Seed:              seed,
		Users:             users,
		Window:            30 * 24 * time.Hour,
		FeaturephoneFrac:  0.35,
		NavExpSmart:       0.90,
		NavExpFeature:     1.03,
		NonNavExpSmart:    0.40,
		NonNavExpFeature:  0.47,
		HeavyRepeatMin:    0.72,
		HeavyRepeatMax:    0.92,
		LightRepeatMin:    0.05,
		LightRepeatMax:    0.55,
		FavNavRanks:       8000,
		FavNonNavRanks:    40000,
		FavNavExp:         0.60,
		FavNonNavExp:      0.30,
		NicheFavoriteFrac: 0.15,

		TrendingFrac:         0.04,
		TrendingDailyEvents:  8,
		TrendingLifetimeDays: 4,
	}
}

// UserProfile is the persistent identity of one synthetic user.
type UserProfile struct {
	ID     searchlog.UserID
	Class  Class
	Device searchlog.DeviceClass
	// RepeatPropensity is the probability a query (after the first)
	// re-issues a pair from the user's history or favorites.
	RepeatPropensity float64
	// Favorites are the user's persistent favorite pairs, stable
	// across months.
	Favorites []searchlog.PairID
}

// Generator produces deterministic synthetic logs.
type Generator struct {
	cfg     Config
	classes []ClassSpec
	// Fresh-draw samplers indexed by [navigational][featurephone].
	dists [2][2]*zipf.Dist
	// Favorite samplers indexed by [navigational].
	favDists [2]*zipf.Dist
	users    []UserProfile
}

// New validates the configuration and precomputes the samplers and the
// user population.
func New(cfg Config) (*Generator, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("workload: Universe is required")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: Users must be positive, got %d", cfg.Users)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("workload: Window must be positive, got %v", cfg.Window)
	}
	if cfg.FeaturephoneFrac < 0 || cfg.FeaturephoneFrac > 1 {
		return nil, fmt.Errorf("workload: FeaturephoneFrac %g outside [0,1]", cfg.FeaturephoneFrac)
	}
	g := &Generator{cfg: cfg, classes: cfg.Classes}
	if g.classes == nil {
		g.classes = DefaultClasses()
	}
	var share float64
	for _, c := range g.classes {
		if c.MinMonthly <= 0 || c.MaxMonthly <= c.MinMonthly {
			return nil, fmt.Errorf("workload: class %v has invalid bracket [%d, %d)", c.Class, c.MinMonthly, c.MaxMonthly)
		}
		share += c.PopulationShare
	}
	if share < 0.999 || share > 1.001 {
		return nil, fmt.Errorf("workload: class population shares sum to %g, want 1", share)
	}
	uc := cfg.Universe.Config()
	g.dists[1][0] = zipf.New(uc.NavPairs, cfg.NavExpSmart)
	g.dists[1][1] = zipf.New(uc.NavPairs, cfg.NavExpFeature)
	g.dists[0][0] = zipf.New(uc.NonNavPairs, cfg.NonNavExpSmart)
	g.dists[0][1] = zipf.New(uc.NonNavPairs, cfg.NonNavExpFeature)
	favNav := min(cfg.FavNavRanks, uc.NavPairs)
	if favNav <= 0 {
		favNav = uc.NavPairs
	}
	favNonNav := min(cfg.FavNonNavRanks, uc.NonNavPairs)
	if favNonNav <= 0 {
		favNonNav = uc.NonNavPairs
	}
	g.favDists[1] = zipf.New(favNav, cfg.FavNavExp)
	g.favDists[0] = zipf.New(favNonNav, cfg.FavNonNavExp)
	g.buildPopulation()
	return g, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Classes returns the class specifications in use.
func (g *Generator) Classes() []ClassSpec { return g.classes }

// classOf returns the spec for a class.
func (g *Generator) classSpec(c Class) ClassSpec {
	for _, s := range g.classes {
		if s.Class == c {
			return s
		}
	}
	// Unreachable for validated configs; return a safe default.
	return g.classes[0]
}

func (g *Generator) buildPopulation() {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ 0x5EED_0001))
	g.users = make([]UserProfile, g.cfg.Users)
	for i := range g.users {
		u := &g.users[i]
		u.ID = searchlog.UserID(i)
		// Class by population share.
		x := rng.Float64()
		var acc float64
		u.Class = g.classes[len(g.classes)-1].Class
		for _, s := range g.classes {
			acc += s.PopulationShare
			if x < acc {
				u.Class = s.Class
				break
			}
		}
		if rng.Float64() < g.cfg.FeaturephoneFrac {
			u.Device = searchlog.Featurephone
		} else {
			u.Device = searchlog.Smartphone
		}
		spec := g.classSpec(u.Class)
		if rng.Float64() < spec.HeavyRepeaterFrac {
			u.RepeatPropensity = g.cfg.HeavyRepeatMin + rng.Float64()*(g.cfg.HeavyRepeatMax-g.cfg.HeavyRepeatMin)
		} else {
			u.RepeatPropensity = g.cfg.LightRepeatMin + rng.Float64()*(g.cfg.LightRepeatMax-g.cfg.LightRepeatMin)
		}
		u.Favorites = make([]searchlog.PairID, spec.Favorites)
		for f := range u.Favorites {
			u.Favorites[f] = g.drawFavorite(rng, spec, u.Device)
		}
	}
}

// drawFavorite samples a persistent favorite. With probability
// 1-NicheFavoriteFrac the favorite comes from the popular head (users'
// standing queries are mostly popular services — facebook, weather,
// stock quotes), which couples personal repeats to the community cache
// and produces the component overlap the paper measures in Figure 17.
// Otherwise it is a niche favorite from the full fresh distribution —
// the repeats only the personalization component can serve.
func (g *Generator) drawFavorite(rng *rand.Rand, spec ClassSpec, dc searchlog.DeviceClass) searchlog.PairID {
	if rng.Float64() < g.cfg.NicheFavoriteFrac {
		return g.drawFresh(rng, spec, dc)
	}
	if rng.Float64() < spec.NavVolumeFrac {
		return g.cfg.Universe.NavPair(g.favDists[1].Sample(rng))
	}
	return g.cfg.Universe.NonNavPair(g.favDists[0].Sample(rng))
}

// drawFresh samples a pair from the community distribution for the
// user's device and the class's navigational mix.
func (g *Generator) drawFresh(rng *rand.Rand, spec ClassSpec, dc searchlog.DeviceClass) searchlog.PairID {
	dev := 0
	if dc == searchlog.Featurephone {
		dev = 1
	}
	if rng.Float64() < spec.NavVolumeFrac {
		return g.cfg.Universe.NavPair(g.dists[1][dev].Sample(rng))
	}
	return g.cfg.Universe.NonNavPair(g.dists[0][dev].Sample(rng))
}

// Users returns the generated population. The slice is shared; callers
// must not modify it.
func (g *Generator) Users() []UserProfile { return g.users }

// UsersOfClass returns the profiles belonging to one class.
func (g *Generator) UsersOfClass(c Class) []UserProfile {
	var out []UserProfile
	for _, u := range g.users {
		if u.Class == c {
			out = append(out, u)
		}
	}
	return out
}

// userSeed derives the deterministic stream seed for (user, month).
func (g *Generator) userSeed(id searchlog.UserID, month int) int64 {
	x := uint64(g.cfg.Seed) ^ (uint64(id)+1)*0x9E3779B97F4A7C15 ^ (uint64(month)+1)*0xBF58476D1CE4E5B9
	// splitmix64 finalization for good bit diffusion.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// UserStream generates one user's query stream for the given month
// index, ordered by time within the window.
func (g *Generator) UserStream(u UserProfile, month int) []searchlog.Entry {
	rng := rand.New(rand.NewSource(g.userSeed(u.ID, month)))
	spec := g.classSpec(u.Class)

	// Monthly volume: log-uniform within the class bracket, redrawn
	// per month (activity fluctuates but the class is stable).
	lo, hi := float64(spec.MinMonthly), float64(spec.MaxMonthly)
	v := int(lo * math.Pow(hi/lo, rng.Float64()))
	if v < spec.MinMonthly {
		v = spec.MinMonthly
	}
	if v >= spec.MaxMonthly {
		v = spec.MaxMonthly - 1
	}

	// Times are drawn first and sorted so pair choices can depend on
	// when in the month the query happens (trending events are only
	// active for a few days).
	times := make([]time.Duration, v)
	for i := range times {
		times[i] = time.Duration(rng.Int63n(int64(g.cfg.Window)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	entries := make([]searchlog.Entry, 0, v)
	history := make([]searchlog.PairID, 0, v)
	for i := 0; i < v; i++ {
		var pair searchlog.PairID
		canRepeat := len(history) > 0 || len(u.Favorites) > 0
		if canRepeat && rng.Float64() < u.RepeatPropensity {
			// A repeat: from persistent favorites (which survive
			// month boundaries) or a frequency-weighted redraw from
			// this month's history.
			if len(u.Favorites) > 0 && (len(history) == 0 || rng.Float64() < favoriteBias) {
				pair = u.Favorites[rng.Intn(len(u.Favorites))]
			} else {
				pair = history[rng.Intn(len(history))]
			}
		} else if g.cfg.TrendingFrac > 0 && rng.Float64() < g.cfg.TrendingFrac {
			pair = g.drawTrending(rng, month, times[i])
		} else {
			pair = g.drawFresh(rng, spec, u.Device)
		}
		history = append(history, pair)
		entries = append(entries, searchlog.Entry{
			At:     times[i],
			User:   u.ID,
			Pair:   pair,
			Device: u.Device,
		})
	}
	return entries
}

// Cursor walks one user's query stream in time order, materializing
// further months on demand, so a stream can drive an arrival process
// of arbitrary length (the fleet's closed-loop load generator keeps a
// cursor per simulated user). Cursors are deterministic: two cursors
// over the same (generator config, user, start month) yield identical
// entry sequences.
type Cursor struct {
	g       *Generator
	u       UserProfile
	month   int
	entries []searchlog.Entry
	i       int
}

// Cursor opens a stream cursor for the user starting at the given
// month index.
func (g *Generator) Cursor(u UserProfile, startMonth int) *Cursor {
	return &Cursor{g: g, u: u, month: startMonth, entries: g.UserStream(u, startMonth)}
}

// Month returns the month index the cursor is currently inside.
func (c *Cursor) Month() int { return c.month }

// User returns the profile the cursor walks.
func (c *Cursor) User() UserProfile { return c.u }

// Next returns the next entry of the stream and the month it belongs
// to, generating the following month when the current one is
// exhausted. Entry times are offsets within the returned month.
func (c *Cursor) Next() (searchlog.Entry, int) {
	for c.i >= len(c.entries) {
		c.month++
		c.entries = c.g.UserStream(c.u, c.month)
		c.i = 0
	}
	e := c.entries[c.i]
	c.i++
	return e, c.month
}

// TrendingPair returns the event pair for the k-th event starting on
// the given absolute day (month*30 + day). Events live in the deep
// non-navigational tail: trending topics are queries that were rare
// before their event.
func (g *Generator) TrendingPair(absDay, k int) searchlog.PairID {
	nn := g.cfg.Universe.Config().NonNavPairs
	tailStart := nn / 2
	x := uint64(g.cfg.Seed)*0x9E3779B97F4A7C15 ^ uint64(absDay)*0xBF58476D1CE4E5B9 ^ uint64(k)*0x94D049BB133111EB
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	rank := tailStart + int(x%uint64(nn-tailStart))
	return g.cfg.Universe.NonNavPair(rank)
}

// drawTrending picks among the events active at the entry's time:
// uniformly over the events started within the last lifetime days.
func (g *Generator) drawTrending(rng *rand.Rand, month int, at time.Duration) searchlog.PairID {
	absDay := month*30 + int(at/(24*time.Hour))
	life := g.cfg.TrendingLifetimeDays
	if life < 1 {
		life = 1
	}
	perDay := g.cfg.TrendingDailyEvents
	if perDay < 1 {
		perDay = 1
	}
	startDay := absDay - rng.Intn(life)
	if startDay < 0 {
		startDay = 0
	}
	return g.TrendingPair(startDay, rng.Intn(perDay))
}

// MonthLog generates the full community log for a month: every user's
// stream merged and ordered by time.
func (g *Generator) MonthLog(month int) searchlog.Log {
	var all []searchlog.Entry
	for _, u := range g.users {
		all = append(all, g.UserStream(u, month)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].At < all[j].At })
	return searchlog.Log{Window: g.cfg.Window, Entries: all}
}

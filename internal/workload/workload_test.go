package workload

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/analysis"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/searchlog"
)

func defaultGen(t testing.TB, users int) *Generator {
	t.Helper()
	u := engine.MustUniverse(engine.DefaultConfig())
	g, err := New(DefaultConfig(u, users, 1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	u := engine.MustUniverse(engine.DefaultConfig())
	bad := []Config{
		{},                                     // no universe
		DefaultConfigUsers(u, 0),               // no users
		withWindow(DefaultConfig(u, 10, 1), 0), // no window
		withFeature(DefaultConfig(u, 10, 1), 1.5), // bad fraction
		withClasses(DefaultConfig(u, 10, 1), []ClassSpec{{Class: Low, MinMonthly: 20, MaxMonthly: 40, PopulationShare: 0.5}}), // shares don't sum
		withClasses(DefaultConfig(u, 10, 1), []ClassSpec{{Class: Low, MinMonthly: 40, MaxMonthly: 40, PopulationShare: 1.0}}), // empty bracket
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func DefaultConfigUsers(u *engine.Universe, n int) Config { return DefaultConfig(u, n, 1) }
func withWindow(c Config, w time.Duration) Config         { c.Window = w; return c }
func withFeature(c Config, f float64) Config              { c.FeaturephoneFrac = f; return c }
func withClasses(c Config, cl []ClassSpec) Config         { c.Classes = cl; return c }

func TestDeterminism(t *testing.T) {
	g1 := defaultGen(t, 50)
	g2 := defaultGen(t, 50)
	u := g1.Users()[7]
	s1 := g1.UserStream(u, 0)
	s2 := g2.UserStream(g2.Users()[7], 0)
	if len(s1) != len(s2) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestMonthsDiffer(t *testing.T) {
	g := defaultGen(t, 20)
	u := g.Users()[0]
	s0 := g.UserStream(u, 0)
	s1 := g.UserStream(u, 1)
	same := len(s0) == len(s1)
	if same {
		for i := range s0 {
			if s0[i].Pair != s1[i].Pair {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("consecutive months produced identical streams")
	}
}

func TestVolumesWithinClassBrackets(t *testing.T) {
	g := defaultGen(t, 300)
	for _, u := range g.Users() {
		spec := g.classSpec(u.Class)
		for month := 0; month < 2; month++ {
			v := len(g.UserStream(u, month))
			if v < spec.MinMonthly || v >= spec.MaxMonthly {
				t.Fatalf("user %d class %v volume %d outside [%d, %d)", u.ID, u.Class, v, spec.MinMonthly, spec.MaxMonthly)
			}
		}
	}
}

func TestStreamsTimeOrderedWithinWindow(t *testing.T) {
	g := defaultGen(t, 30)
	for _, u := range g.Users()[:10] {
		s := g.UserStream(u, 0)
		for i, e := range s {
			if e.At < 0 || e.At >= g.Config().Window {
				t.Fatalf("entry time %v outside window", e.At)
			}
			if i > 0 && e.At < s[i-1].At {
				t.Fatal("stream not time ordered")
			}
			if e.User != u.ID || e.Device != u.Device {
				t.Fatal("entry identity mismatch")
			}
		}
	}
}

func TestClassPopulationShares(t *testing.T) {
	g := defaultGen(t, 8000)
	counts := map[Class]int{}
	for _, u := range g.Users() {
		counts[u.Class]++
	}
	wants := map[Class]float64{Low: 0.55, Medium: 0.36, High: 0.08, Extreme: 0.01}
	for c, want := range wants {
		got := float64(counts[c]) / 8000
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("class %v share = %.3f, want ~%.2f", c, got, want)
		}
	}
}

func TestUsersOfClass(t *testing.T) {
	g := defaultGen(t, 200)
	for _, c := range Classes() {
		for _, u := range g.UsersOfClass(c) {
			if u.Class != c {
				t.Fatalf("UsersOfClass(%v) returned class %v", c, u.Class)
			}
		}
	}
}

// TestCommunityConcentration verifies the Figure 4 calibration: the
// paper's headline community statistics must emerge from the generated
// aggregate log.
func TestCommunityConcentration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates a large log")
	}
	g := defaultGen(t, CommunityUsers)
	log := g.MonthLog(0)
	u := g.Config().Universe

	// Figure 4a, all users: top 6000 queries ≈ 60% of query volume.
	all := analysis.QueryVolumes(log.Entries, u, analysis.Filter{})
	share6000 := analysis.TopShares(all, []int{6000})[0].Share
	if share6000 < 0.52 || share6000 > 0.68 {
		t.Errorf("top-6000 query share = %.3f, want ~0.60", share6000)
	}

	// Navigational queries far more concentrated: top 5000 ≈ 90%.
	nav := analysis.QueryVolumes(log.Entries, u, analysis.Filter{Nav: analysis.NavOnly})
	navShare := analysis.TopShares(nav, []int{5000})[0].Share
	if navShare < 0.82 || navShare > 0.97 {
		t.Errorf("navigational top-5000 share = %.3f, want ~0.90", navShare)
	}

	// Non-navigational: top 5000 ≈ 30%.
	nonNav := analysis.QueryVolumes(log.Entries, u, analysis.Filter{Nav: analysis.NonNavOnly})
	nonNavShare := analysis.TopShares(nonNav, []int{5000})[0].Share
	if nonNavShare < 0.20 || nonNavShare > 0.45 {
		t.Errorf("non-navigational top-5000 share = %.3f, want ~0.30", nonNavShare)
	}

	// Figure 4b: fewer results than queries for the same share — the
	// paper needs 6000 queries but only 4000 results to reach 60%.
	results := analysis.ResultVolumes(log.Entries, u, analysis.Filter{})
	resShare4000 := analysis.TopShares(results, []int{4000})[0].Share
	if resShare4000 < share6000-0.06 {
		t.Errorf("top-4000 result share %.3f should be near top-6000 query share %.3f", resShare4000, share6000)
	}

	// Featurephone traffic more concentrated than smartphone.
	smart := analysis.QueryVolumes(log.Entries, u, analysis.Filter{Device: analysis.SmartphoneOnly})
	feat := analysis.QueryVolumes(log.Entries, u, analysis.Filter{Device: analysis.FeaturephoneOnly})
	smartShare := analysis.TopShares(smart, []int{6000})[0].Share
	featShare := analysis.TopShares(feat, []int{6000})[0].Share
	if featShare <= smartShare {
		t.Errorf("featurephone top-6000 share %.3f should exceed smartphone %.3f", featShare, smartShare)
	}
}

// TestRepeatabilityCalibration verifies the Figure 5 shape: roughly
// half of users submit a new query at most 30% of the time, and the
// mean repeat rate is near the paper's 56.5%.
func TestRepeatabilityCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates a large log")
	}
	g := defaultGen(t, 4000)
	log := g.MonthLog(0)
	u := g.Config().Universe

	stats := analysis.RepeatStats(log.Entries, u, analysis.Filter{})
	mean := analysis.MeanRepeatFrac(stats)
	if mean < 0.46 || mean > 0.64 {
		t.Errorf("mean repeat rate = %.3f, want ~0.565", mean)
	}
	half := analysis.FracUsersNewAtMost(stats, 0.30)
	if half < 0.35 || half > 0.62 {
		t.Errorf("frac users with P(new) <= 0.3 = %.3f, want ~0.50", half)
	}
}

// TestHeavierClassesRepeatMore checks the coupling behind Figure 17's
// class trend.
func TestHeavierClassesRepeatMore(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates a large log")
	}
	g := defaultGen(t, 4000)
	log := g.MonthLog(0)
	u := g.Config().Universe
	stats := analysis.RepeatStats(log.Entries, u, analysis.Filter{})
	byUser := map[searchlog.UserID]analysis.UserRepeat{}
	for _, s := range stats {
		byUser[s.User] = s
	}
	meanOf := func(c Class) float64 {
		var sum float64
		var n int
		for _, up := range g.UsersOfClass(c) {
			if s, ok := byUser[up.ID]; ok {
				sum += s.RepeatFrac()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	low, high := meanOf(Low), meanOf(High)
	if high <= low {
		t.Errorf("high-volume users repeat %.3f, low-volume %.3f; want high > low", high, low)
	}
}

func TestClassString(t *testing.T) {
	if Low.String() != "low" || Extreme.String() != "extreme" || Class(9).String() == "" {
		t.Error("Class.String mismatch")
	}
}

func TestTrendingPairDeterministicAndInTail(t *testing.T) {
	g := defaultGen(t, 20)
	nn := g.Config().Universe.Config().NonNavPairs
	for day := 0; day < 40; day += 7 {
		for k := 0; k < 3; k++ {
			p1 := g.TrendingPair(day, k)
			p2 := g.TrendingPair(day, k)
			if p1 != p2 {
				t.Fatal("trending pair not deterministic")
			}
			rank := g.Config().Universe.Rank(p1)
			if g.Config().Universe.IsNavPair(p1) || rank < nn/2 {
				t.Fatalf("trending pair rank %d should be in the deep non-nav tail", rank)
			}
		}
	}
}

// TestTrendingCreatesDrift verifies the temporal drift that powers the
// Section 6.2.2 daily-update experiment: events of the replay month are
// present in its logs but absent from the preceding month's.
func TestTrendingCreatesDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("generates month logs")
	}
	g := defaultGen(t, 2000)
	inLog := func(month int, pairs map[searchlog.PairID]bool) int {
		n := 0
		for _, u := range g.Users() {
			for _, e := range g.UserStream(u, month) {
				if pairs[e.Pair] {
					n++
				}
			}
		}
		return n
	}
	// Events starting in the middle of month 1.
	events := map[searchlog.PairID]bool{}
	for day := 40; day < 50; day++ {
		for k := 0; k < g.Config().TrendingDailyEvents; k++ {
			events[g.TrendingPair(day, k)] = true
		}
	}
	month0, month1 := inLog(0, events), inLog(1, events)
	if month1 == 0 {
		t.Fatal("month-1 events missing from month-1 logs")
	}
	if month0 >= month1/10 {
		t.Errorf("month-1 events should be (almost) absent from month 0: %d vs %d", month0, month1)
	}
}

func TestTrendingDisabled(t *testing.T) {
	u := engine.MustUniverse(engine.DefaultConfig())
	cfg := DefaultConfig(u, 50, 1)
	cfg.TrendingFrac = 0
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Streams still generate; no panic and volumes stay in brackets.
	for _, up := range g.Users()[:5] {
		if len(g.UserStream(up, 0)) == 0 {
			t.Fatal("empty stream with trending disabled")
		}
	}
}

func BenchmarkUserStream(b *testing.B) {
	u := engine.MustUniverse(engine.DefaultConfig())
	g, err := New(DefaultConfig(u, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	users := g.Users()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.UserStream(users[i%len(users)], 0)
	}
}

// TestStreamByteIdenticalAcrossBuilds is the seed regression gate: two
// independently constructed generators with the same config must emit
// byte-identical month logs and user streams — the property every
// fleet determinism claim rests on.
func TestStreamByteIdenticalAcrossBuilds(t *testing.T) {
	digest := func(g *Generator) uint64 {
		h := fnv.New64a()
		for month := 0; month <= 1; month++ {
			for _, e := range g.MonthLog(month).Entries {
				fmt.Fprintf(h, "%d|%d|%d|%d\n", e.At, e.User, e.Pair, e.Device)
			}
		}
		for _, up := range g.Users() {
			for _, e := range g.UserStream(up, 1) {
				fmt.Fprintf(h, "u%d|%d|%d|%d\n", e.At, e.User, e.Pair, e.Device)
			}
		}
		return h.Sum64()
	}
	if d1, d2 := digest(defaultGen(t, 80)), digest(defaultGen(t, 80)); d1 != d2 {
		t.Errorf("same seed produced different stream digests: %#x vs %#x", d1, d2)
	}
	u := engine.MustUniverse(engine.DefaultConfig())
	g3, err := New(DefaultConfig(u, 80, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d1, d3 := digest(defaultGen(t, 80)), digest(g3); d1 == d3 {
		t.Error("different seeds produced identical stream digests")
	}
}

// TestCursorMatchesUserStream verifies the cursor is a faithful
// windowed walk: it replays each month's UserStream verbatim and rolls
// into the next month when exhausted.
func TestCursorMatchesUserStream(t *testing.T) {
	g := defaultGen(t, 40)
	up := g.Users()[11]
	cur := g.Cursor(up, 2)
	if cur.User().ID != up.ID {
		t.Fatal("cursor user mismatch")
	}
	for month := 2; month <= 3; month++ {
		want := g.UserStream(up, month)
		for i, e := range want {
			got, m := cur.Next()
			if m != month || got != e {
				t.Fatalf("month %d entry %d: cursor (%+v, %d), stream %+v", month, i, got, m, e)
			}
		}
	}
	if cur.Month() != 3 {
		t.Errorf("cursor month = %d, want 3", cur.Month())
	}
}

// TestCursorDeterministicAcrossInterleavings is the model-time
// prerequisite: each user's cursor must yield the same entry sequence
// no matter how the consuming goroutines are scheduled, because both
// the closed loop and the per-user open-loop arrivals replay one
// cursor per user concurrently. Each goroutine interleaves with the
// others freely (a yield between Next calls shakes the schedule) and
// the result must still match a serial walk. Run under -race this also
// proves distinct cursors share no mutable state.
func TestCursorDeterministicAcrossInterleavings(t *testing.T) {
	const users, perUser = 24, 60
	g := defaultGen(t, users)
	profiles := g.Users()[:users]

	// Serial reference: one cursor per user, walked alone.
	want := make([][]searchlog.Entry, users)
	for i, up := range profiles {
		cur := g.Cursor(up, 1)
		for n := 0; n < perUser; n++ {
			e, _ := cur.Next()
			want[i] = append(want[i], e)
		}
	}

	for trial := 0; trial < 3; trial++ {
		got := make([][]searchlog.Entry, users)
		var wg sync.WaitGroup
		for i, up := range profiles {
			wg.Add(1)
			go func(i int, up UserProfile) {
				defer wg.Done()
				cur := g.Cursor(up, 1)
				for n := 0; n < perUser; n++ {
					e, _ := cur.Next()
					got[i] = append(got[i], e)
					runtime.Gosched() // shake the goroutine schedule
				}
			}(i, up)
		}
		wg.Wait()
		for i := range want {
			for n := range want[i] {
				if got[i][n] != want[i][n] {
					t.Fatalf("trial %d: user %d entry %d = %+v, serial walk got %+v",
						trial, i, n, got[i][n], want[i][n])
				}
			}
		}
	}
}

// Package placement maps users to fleet shards. It exists so the
// fleet's routing policy is a pluggable value instead of a formula
// buried in the serve path: the legacy static modulo mapping is one
// implementation (and stays the default, byte-identical to the
// historical fleet routing), and a consistent-hash ring with virtual
// nodes is another — the one that makes live resharding cheap, because
// resizing the ring remaps only ~|Δn|/n of the user population instead
// of nearly all of it.
//
// A Placement is an immutable value: ShardOf must be a pure function
// of the key, so routing decisions taken concurrently by many workers
// never need a lock, and two placements built from the same parameters
// agree forever. Resize derives a new placement for a different shard
// count; it is the fleet's migration machinery (fleet.Resize) that
// moves the affected users' state to their new homes.
package placement

import (
	"fmt"
	"sort"

	"pocketcloudlets/internal/hash64"
)

// Placement maps a 64-bit user key (UserKey) to a shard in [0, Shards).
type Placement interface {
	// Name identifies the policy ("modulo", "ring") for reports.
	Name() string
	// Shards is the shard count this placement routes over.
	Shards() int
	// ShardOf returns the home shard of a key. Pure and lock-free.
	ShardOf(key uint64) int
	// Resize derives a placement over n shards (n ≥ 1) that preserves
	// as much of this placement's mapping as the policy allows: the
	// ring keeps every surviving shard's points, so only transferred
	// arcs remap; modulo rebuilds the formula, remapping nearly all
	// keys. Panics if n < 1 — callers validate first.
	Resize(n int) Placement
}

// userKeySalt is the routing salt the fleet has used since the first
// sharded release; UserKey must keep producing the same keys or the
// default placement stops being byte-identical to the legacy mapping.
const userKeySalt = 0x517CC1B727220A95

// UserKey derives the placement key of a user ID — the exact value the
// fleet's legacy routing hashed with (splitmix64 finalization of the
// golden-ratio spread user ID XOR the routing salt), extracted here so
// every placement routes on the same key space.
func UserKey(uid uint64) uint64 {
	x := (uid+1)*0x9E3779B97F4A7C15 ^ userKeySalt
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Modulo is the legacy static mapping: key mod shards. Cheap and
// perfectly balanced over uniform keys, but a resize remaps nearly
// every key — the cold-restart behavior resharding exists to avoid.
type Modulo struct {
	shards int
}

// NewModulo builds the legacy modulo placement over n shards.
func NewModulo(n int) (*Modulo, error) {
	if n < 1 {
		return nil, fmt.Errorf("placement: modulo needs at least 1 shard, got %d", n)
	}
	return &Modulo{shards: n}, nil
}

// Name implements Placement.
func (m *Modulo) Name() string { return "modulo" }

// Shards implements Placement.
func (m *Modulo) Shards() int { return m.shards }

// ShardOf implements Placement.
func (m *Modulo) ShardOf(key uint64) int { return int(key % uint64(m.shards)) }

// Resize implements Placement. The modulo formula has no stable
// structure to preserve: the new mapping shares only the keys whose
// residues happen to coincide (~1/max(n, old) of them).
func (m *Modulo) Resize(n int) Placement {
	next, err := NewModulo(n)
	if err != nil {
		panic(err)
	}
	return next
}

// DefaultVirtualNodes is the ring's default virtual-node count per
// shard. 64 points per shard keeps the max/mean load ratio within a
// few tens of percent while the ring stays small enough to rebuild in
// microseconds.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring: each shard owns vnodes points placed
// by hashing "(shard, vnode)" labels with the repo's hash64 primitive,
// and a key belongs to the first point at or clockwise after it. A
// shard's points depend only on its own index, so resizing keeps every
// surviving shard's points in place: growing moves only the arcs the
// new shards' points capture (~(n−old)/n of keys), shrinking moves
// only the removed shards' arcs.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint
}

// NewRing builds a ring over n shards with v virtual nodes per shard
// (v ≤ 0 selects DefaultVirtualNodes).
func NewRing(n, v int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("placement: ring needs at least 1 shard, got %d", n)
	}
	if v <= 0 {
		v = DefaultVirtualNodes
	}
	r := &Ring{shards: n, vnodes: v, points: make([]ringPoint, 0, n*v)}
	for s := 0; s < n; s++ {
		for i := 0; i < v; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, i), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard
	})
	return r, nil
}

// pointHash places one virtual node: the FNV-1a hash of its label (the
// same primitive the rest of the repo hashes strings with), finalized
// through splitmix64 — raw FNV of near-identical labels clusters in
// the high bits the ring search keys on. The label depends only on
// (shard, vnode), which is what makes resizes stable.
func pointHash(shard, vnode int) uint64 {
	x := hash64.Sum(fmt.Sprintf("ring-shard-%d-vnode-%d", shard, vnode))
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Name implements Placement.
func (r *Ring) Name() string { return "ring" }

// Shards implements Placement.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// ShardOf implements Placement: binary-search the first point at or
// after the key, wrapping past the top of the ring.
func (r *Ring) ShardOf(key uint64) int {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= key })
	if i == len(pts) {
		i = 0
	}
	return pts[i].shard
}

// Resize implements Placement: a ring over n shards with the same
// virtual-node count. Surviving shards re-derive identical points, so
// only the arcs gained by new shards (grow) or orphaned by removed
// shards (shrink) change owners.
func (r *Ring) Resize(n int) Placement {
	next, err := NewRing(n, r.vnodes)
	if err != nil {
		panic(err)
	}
	return next
}

package placement

import "testing"

// keys draws n distinct user keys the way the fleet does: UserKey over
// sequential user IDs. Distribution and stability claims must hold on
// this population, not on idealized uniform numbers.
func keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = UserKey(uint64(i))
	}
	return out
}

func TestUserKeyScatters(t *testing.T) {
	seen := make(map[uint64]bool)
	for _, k := range keys(10000) {
		if seen[k] {
			t.Fatalf("duplicate user key %#x", k)
		}
		seen[k] = true
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewModulo(0); err == nil {
		t.Error("NewModulo(0) should fail")
	}
	if _, err := NewRing(0, 8); err == nil {
		t.Error("NewRing(0, 8) should fail")
	}
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Errorf("vnodes = %d, want default %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
}

func TestNamesAndShards(t *testing.T) {
	m, _ := NewModulo(8)
	r, _ := NewRing(8, 32)
	if m.Name() != "modulo" || m.Shards() != 8 {
		t.Errorf("modulo identity: %q/%d", m.Name(), m.Shards())
	}
	if r.Name() != "ring" || r.Shards() != 8 {
		t.Errorf("ring identity: %q/%d", r.Name(), r.Shards())
	}
}

// TestDistribution checks per-shard user counts stay within tolerance
// for both placements: modulo is near-perfect over splitmix-finalized
// keys; the ring's virtual nodes keep every shard within a constant
// factor of the mean.
func TestDistribution(t *testing.T) {
	const n = 8
	pop := keys(100_000)
	mean := float64(len(pop)) / n

	check := func(name string, p Placement, lo, hi float64) {
		counts := make([]int, n)
		for _, k := range pop {
			s := p.ShardOf(k)
			if s < 0 || s >= n {
				t.Fatalf("%s: shard %d out of range", name, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if f := float64(c) / mean; f < lo || f > hi {
				t.Errorf("%s: shard %d holds %.2fx the mean (want [%.2f, %.2f]); counts %v",
					name, s, f, lo, hi, counts)
			}
		}
	}

	m, _ := NewModulo(n)
	r, _ := NewRing(n, DefaultVirtualNodes)
	check("modulo", m, 0.9, 1.1)
	check("ring", r, 0.5, 1.6)
}

// movedShare is the fraction of keys that map differently under the
// two placements.
func movedShare(a, b Placement, pop []uint64) float64 {
	moved := 0
	for _, k := range pop {
		if a.ShardOf(k) != b.ShardOf(k) {
			moved++
		}
	}
	return float64(moved) / float64(len(pop))
}

// TestRingResizeStability is the consistent-hashing contract: growing
// 8→12 remaps about (12−8)/12 of keys — never the wholesale reshuffle
// modulo pays — and every mover lands on one of the new shards.
func TestRingResizeStability(t *testing.T) {
	pop := keys(200_000)
	r8, _ := NewRing(8, DefaultVirtualNodes)
	r12 := r8.Resize(12)

	if share := movedShare(r8, r12, pop); share < 0.15 || share > 0.55 {
		t.Errorf("ring 8→12 moved %.1f%% of keys, want near 33%%", 100*share)
	}
	for _, k := range pop {
		before, after := r8.ShardOf(k), r12.ShardOf(k)
		if before != after && after < 8 {
			t.Fatalf("key %#x moved between surviving shards %d→%d on grow", k, before, after)
		}
	}
}

// TestRingShrinkStability: shrinking 12→8 moves only the keys stranded
// on removed shards; keys homed on survivors stay put.
func TestRingShrinkStability(t *testing.T) {
	pop := keys(200_000)
	r12, _ := NewRing(12, DefaultVirtualNodes)
	r8 := r12.Resize(8)

	for _, k := range pop {
		before, after := r12.ShardOf(k), r8.ShardOf(k)
		if before < 8 && before != after {
			t.Fatalf("key %#x moved off surviving shard %d→%d on shrink", k, before, after)
		}
		if before >= 8 && after >= 8 {
			t.Fatalf("key %#x still routed to removed shard %d", k, after)
		}
	}
}

// TestModuloResizeRemapsNearlyAll documents the baseline the ring
// exists to beat: a modulo resize remaps most of the population —
// 8→9 moves ~8/9 of keys, 8→12 exactly 2/3 (keys keep their shard
// only when the residues coincide mod lcm(old, new)).
func TestModuloResizeRemapsNearlyAll(t *testing.T) {
	pop := keys(100_000)
	m8, _ := NewModulo(8)
	if share := movedShare(m8, m8.Resize(9), pop); share < 0.85 {
		t.Errorf("modulo 8→9 moved only %.1f%% of keys; expected ~8/9", 100*share)
	}
	if share := movedShare(m8, m8.Resize(12), pop); share < 0.60 {
		t.Errorf("modulo 8→12 moved only %.1f%% of keys; expected ~2/3", 100*share)
	}
}

// TestRingDeterminism: the ring is a pure value — same parameters,
// same mapping, and a same-size resize is an identity.
func TestRingDeterminism(t *testing.T) {
	pop := keys(20_000)
	a, _ := NewRing(8, 32)
	b, _ := NewRing(8, 32)
	same := a.Resize(8)
	for _, k := range pop {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("two identical rings disagree on key %#x", k)
		}
		if a.ShardOf(k) != same.ShardOf(k) {
			t.Fatalf("same-size resize moved key %#x", k)
		}
	}
}

package cloudletos

import (
	"bytes"
	"errors"
	"testing"

	"pocketcloudlets/internal/flashsim"
)

func newKV(t testing.TB, name string, store *flashsim.FileStore) *KVCloudlet {
	t.Helper()
	c, err := NewKVCloudlet(name, store)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sharedStore() *flashsim.FileStore {
	return flashsim.NewFileStore(flashsim.NewDevice(flashsim.Params{}))
}

func TestKVCloudletRoundTrip(t *testing.T) {
	store := sharedStore()
	c := newKV(t, "ads", store)
	c.Put(1, 100, 0.9, []byte("banner-1"))
	data, lat, ok := c.Get(1)
	if !ok || !bytes.Equal(data, []byte("banner-1")) || lat <= 0 {
		t.Errorf("Get = %q, %v, %v", data, lat, ok)
	}
	if _, _, ok := c.Get(2); ok {
		t.Error("missing key should not resolve")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestKVCloudletEvict(t *testing.T) {
	c := newKV(t, "maps", sharedStore())
	c.Put(1, 0, 0.5, make([]byte, 500))
	c.Put(2, 0, 0.5, make([]byte, 500))
	freed := c.Evict([]uint64{1, 99})
	if freed <= 0 {
		t.Errorf("freed = %d, want > 0", freed)
	}
	if _, _, ok := c.Get(1); ok {
		t.Error("evicted item should be gone")
	}
	if _, _, ok := c.Get(2); !ok {
		t.Error("unevicted item should remain")
	}
}

func TestKVValidation(t *testing.T) {
	if _, err := NewKVCloudlet("", sharedStore()); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewKVCloudlet("x", nil); err == nil {
		t.Error("nil store should fail")
	}
}

func TestManagerRegistrationAndQuotas(t *testing.T) {
	m, err := NewManager(10_000)
	if err != nil {
		t.Fatal(err)
	}
	store := sharedStore()
	search := newKV(t, "search", store)
	ads := newKV(t, "ads", store)

	if err := m.Register(search, Quota{FlashBytes: 6000}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(search, Quota{FlashBytes: 1000}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := m.Register(ads, Quota{FlashBytes: 5000}); err == nil {
		t.Error("quota exceeding remaining budget should fail")
	}
	if err := m.Register(ads, Quota{FlashBytes: 4000}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(nil, Quota{FlashBytes: 1}); err == nil {
		t.Error("nil cloudlet should fail")
	}
	if _, err := NewManager(0); err == nil {
		t.Error("zero budget should fail")
	}
	if got := m.Cloudlets(); len(got) != 2 || got[0] != "search" || got[1] != "ads" {
		t.Errorf("cloudlets = %v", got)
	}
	if q, ok := m.Quota("search"); !ok || q.FlashBytes != 6000 {
		t.Errorf("quota = %+v, %v", q, ok)
	}
}

func TestUsageAndOverQuota(t *testing.T) {
	m, _ := NewManager(100_000)
	store := sharedStore()
	c := newKV(t, "web", store)
	if err := m.Register(c, Quota{FlashBytes: 5000}); err != nil {
		t.Fatal(err)
	}
	c.Put(1, 0, 0.5, make([]byte, 3000))
	used, err := m.Usage("web")
	if err != nil || used < 3000 {
		t.Errorf("usage = %d, %v", used, err)
	}
	over, _ := m.OverQuota("web")
	if over != 0 {
		t.Errorf("within quota but over = %d", over)
	}
	c.Put(2, 0, 0.5, make([]byte, 4000))
	over, _ = m.OverQuota("web")
	if over <= 0 {
		t.Error("should be over quota now")
	}
	if _, err := m.Usage("nope"); err == nil {
		t.Error("unknown cloudlet should fail")
	}
}

func TestAccessControl(t *testing.T) {
	m, _ := NewManager(100_000)
	store := sharedStore()
	search := newKV(t, "search", store)
	maps := newKV(t, "maps", store)
	m.Register(search, Quota{FlashBytes: 1000})
	m.Register(maps, Quota{FlashBytes: 1000})
	search.Put(42, 0, 0.5, []byte("bank query result"))

	// Own reads always work.
	if _, err := m.ReadFrom("search", "search", 42); err != nil {
		t.Errorf("own read failed: %v", err)
	}
	// Ungranted cross reads fail with ErrPermission.
	_, err := m.ReadFrom("maps", "search", 42)
	var perm *ErrPermission
	if !errors.As(err, &perm) {
		t.Fatalf("want ErrPermission, got %v", err)
	}
	// Granted reads succeed.
	if err := m.Grant("search", "maps"); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFrom("maps", "search", 42)
	if err != nil || !bytes.Equal(data, []byte("bank query result")) {
		t.Errorf("granted read = %q, %v", data, err)
	}
	// Revocation restores the denial.
	m.Revoke("search", "maps")
	if _, err := m.ReadFrom("maps", "search", 42); err == nil {
		t.Error("revoked reader should be denied")
	}
	// Grant validation.
	if err := m.Grant("nope", "maps"); err == nil {
		t.Error("grant on unknown owner should fail")
	}
	if err := m.Grant("search", "nope"); err == nil {
		t.Error("grant to unknown reader should fail")
	}
	// Missing item on a permitted path.
	if _, err := m.ReadFrom("search", "search", 99); err == nil {
		t.Error("missing item should fail")
	}
}

func TestReclaimEvictsLowestUtilityFirst(t *testing.T) {
	m, _ := NewManager(1 << 20)
	store := sharedStore()
	c := newKV(t, "web", store)
	m.Register(c, Quota{FlashBytes: 1 << 20})
	c.Put(1, 0, 0.9, make([]byte, 4000)) // high utility
	c.Put(2, 0, 0.1, make([]byte, 4000)) // low utility: evicted first
	freed := m.Reclaim(1000, false)
	if freed < 1000 {
		t.Errorf("freed = %d, want >= 1000", freed)
	}
	if _, _, ok := c.Get(2); ok {
		t.Error("low-utility item should be evicted first")
	}
	if _, _, ok := c.Get(1); !ok {
		t.Error("high-utility item should survive")
	}
	if m.Reclaim(0, false) != 0 {
		t.Error("non-positive reclaim should be a no-op")
	}
}

// TestCoordinatedEviction verifies the Section 7 policy: evicting a
// search entry also evicts its related ad and map tile, while
// uncoordinated eviction leaves them stranded.
func TestCoordinatedEviction(t *testing.T) {
	build := func() (*Manager, *KVCloudlet, *KVCloudlet) {
		m, _ := NewManager(1 << 20)
		store := sharedStore()
		search := newKV(t, "search", store)
		ads := newKV(t, "ads", store)
		m.Register(search, Quota{FlashBytes: 1 << 19})
		m.Register(ads, Quota{FlashBytes: 1 << 19})
		const rel = 777
		search.Put(1, rel, 0.1, make([]byte, 4000)) // the query's result
		ads.Put(2, rel, 0.8, make([]byte, 4000))    // its ad: high utility but useless alone
		ads.Put(3, 555, 0.9, make([]byte, 4000))    // unrelated ad
		return m, search, ads
	}

	// Uncoordinated: the ad survives even though its query is gone.
	m1, s1, a1 := build()
	m1.Reclaim(1000, false)
	if _, _, ok := s1.Get(1); ok {
		t.Fatal("search entry should be evicted")
	}
	if _, _, ok := a1.Get(2); !ok {
		t.Error("uncoordinated eviction should leave the related ad")
	}

	// Coordinated: the related ad goes with it; unrelated items stay.
	m2, s2, a2 := build()
	m2.Reclaim(1000, true)
	if _, _, ok := s2.Get(1); ok {
		t.Fatal("search entry should be evicted")
	}
	if _, _, ok := a2.Get(2); ok {
		t.Error("coordinated eviction should remove the related ad")
	}
	if _, _, ok := a2.Get(3); !ok {
		t.Error("unrelated ad should survive")
	}
}

func TestReclaimDeterministic(t *testing.T) {
	run := func() []string {
		m, _ := NewManager(1 << 20)
		store := sharedStore()
		a := newKV(t, "a", store)
		b := newKV(t, "b", store)
		m.Register(a, Quota{FlashBytes: 1 << 19})
		m.Register(b, Quota{FlashBytes: 1 << 19})
		for i := uint64(0); i < 10; i++ {
			a.Put(i, 0, 0.5, make([]byte, 1000))
			b.Put(i, 0, 0.5, make([]byte, 1000))
		}
		m.Reclaim(5000, false)
		var left []string
		for _, it := range a.Items() {
			left = append(left, "a", string(rune('0'+it.Key)))
		}
		for _, it := range b.Items() {
			left = append(left, "b", string(rune('0'+it.Key)))
		}
		return left
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatal("non-deterministic eviction")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("non-deterministic eviction order")
		}
	}
}

func TestSetQuota(t *testing.T) {
	m, _ := NewManager(10_000)
	store := sharedStore()
	a := newKV(t, "a", store)
	b := newKV(t, "b", store)
	if err := m.Register(a, Quota{FlashBytes: 6000}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(b, Quota{FlashBytes: 4000}); err != nil {
		t.Fatal(err)
	}

	// Growing "a" past the global budget must fail while "b" holds 4000.
	if err := m.SetQuota("a", Quota{FlashBytes: 7000}); err == nil {
		t.Error("quota growth past global budget should fail")
	}
	// Shrink "b", then the same growth fits.
	if err := m.SetQuota("b", Quota{FlashBytes: 3000}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetQuota("a", Quota{FlashBytes: 7000}); err != nil {
		t.Fatal(err)
	}
	if q, _ := m.Quota("a"); q.FlashBytes != 7000 {
		t.Errorf("quota = %d, want 7000", q.FlashBytes)
	}
	if err := m.SetQuota("a", Quota{FlashBytes: 0}); err == nil {
		t.Error("zero quota should fail")
	}
	if err := m.SetQuota("nope", Quota{FlashBytes: 1}); err == nil {
		t.Error("unknown cloudlet should fail")
	}

	// Shrinking below current usage is allowed; the overage surfaces
	// through OverQuota rather than failing the call.
	a.Put(1, 0, 0.5, make([]byte, 5000))
	if err := m.SetQuota("a", Quota{FlashBytes: 1000}); err != nil {
		t.Fatal(err)
	}
	if over, _ := m.OverQuota("a"); over <= 0 {
		t.Error("shrinking below usage should surface as over-quota")
	}
}

func TestUnregister(t *testing.T) {
	m, _ := NewManager(10_000)
	store := sharedStore()
	a := newKV(t, "a", store)
	b := newKV(t, "b", store)
	m.Register(a, Quota{FlashBytes: 6000})
	m.Register(b, Quota{FlashBytes: 4000})
	if err := m.Grant("a", "b"); err != nil {
		t.Fatal(err)
	}
	a.Put(1, 0, 0.5, []byte("kept"))

	if err := m.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unregister("b"); err == nil {
		t.Error("double unregister should fail")
	}
	if got := m.Cloudlets(); len(got) != 1 || got[0] != "a" {
		t.Errorf("cloudlets = %v", got)
	}
	// b's reader grant on a is revoked with it.
	if _, err := m.ReadFrom("b", "a", 1); err == nil {
		t.Error("unregistered reader should lose access")
	}
	// The freed quota is available again.
	c := newKV(t, "c", store)
	if err := m.Register(c, Quota{FlashBytes: 4000}); err != nil {
		t.Errorf("freed quota should be reusable: %v", err)
	}
	// The unregistered cloudlet's storage is untouched.
	if data, _, ok := a.Get(1); !ok || string(data) != "kept" {
		t.Error("unregister must not touch stored items")
	}
}

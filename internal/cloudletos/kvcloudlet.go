package cloudletos

import (
	"fmt"
	"sort"
	"time"

	"pocketcloudlets/internal/flashsim"
)

// KVCloudlet is a generic key-value pocket cloudlet following the
// paper's template architecture: an in-DRAM index over records stored
// on flash. It is the minimal instantiation of the Section 3 design —
// the mobile-ads, yellow-pages, mapping and web-content cloudlets of
// Table 2 are all KVCloudlets with different item sizes — and is what
// the multi-cloudlet examples register with the Manager.
type KVCloudlet struct {
	name  string
	store *flashsim.FileStore
	items map[uint64]Item
}

// NewKVCloudlet creates an empty cloudlet over the shared flash store.
func NewKVCloudlet(name string, store *flashsim.FileStore) (*KVCloudlet, error) {
	if name == "" {
		return nil, fmt.Errorf("cloudletos: cloudlet name required")
	}
	if store == nil {
		return nil, fmt.Errorf("cloudletos: flash store required")
	}
	return &KVCloudlet{name: name, store: store, items: make(map[uint64]Item)}, nil
}

// Name implements Cloudlet.
func (c *KVCloudlet) Name() string { return c.name }

func (c *KVCloudlet) fileName(key uint64) string {
	return fmt.Sprintf("%s/%x", c.name, key)
}

// Put stores an item, returning the modeled flash latency.
func (c *KVCloudlet) Put(key, relation uint64, utility float64, data []byte) time.Duration {
	lat := c.store.Write(c.fileName(key), data)
	c.items[key] = Item{
		Key:      key,
		Relation: relation,
		Bytes:    c.store.Device().AllocatedBytes(len(data)),
		Utility:  utility,
	}
	return lat
}

// Get retrieves an item with its modeled flash latency.
func (c *KVCloudlet) Get(key uint64) ([]byte, time.Duration, bool) {
	if _, ok := c.items[key]; !ok {
		return nil, 0, false
	}
	data, lat, err := c.store.Read(c.fileName(key))
	if err != nil {
		return nil, 0, false
	}
	return data, lat, true
}

// Len returns the number of stored items.
func (c *KVCloudlet) Len() int { return len(c.items) }

// Items implements Cloudlet.
func (c *KVCloudlet) Items() []Item {
	out := make([]Item, 0, len(c.items))
	for _, it := range c.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Evict implements Cloudlet.
func (c *KVCloudlet) Evict(keys []uint64) int64 {
	var freed int64
	for _, k := range keys {
		it, ok := c.items[k]
		if !ok {
			continue
		}
		if err := c.store.Delete(c.fileName(k)); err == nil {
			freed += it.Bytes
			delete(c.items, k)
		}
	}
	return freed
}

// Read implements Cloudlet (mediated cross-cloudlet access).
func (c *KVCloudlet) Read(key uint64) ([]byte, bool) {
	if _, ok := c.items[key]; !ok {
		return nil, false
	}
	data, ok := c.store.Peek(c.fileName(key))
	return data, ok
}

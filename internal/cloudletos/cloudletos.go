// Package cloudletos implements the operating-system support for
// running multiple pocket cloudlets on one device, following the
// architectural recommendations of Section 7 of the Pocket Cloudlets
// paper:
//
//   - User versus pocket cloudlets: the manager enforces per-cloudlet
//     and global storage budgets so user data and applications always
//     retain their reserve.
//   - Pocket cloudlet interactions: cloudlets cache related data (a
//     search query has matching ads, result pages link to map tiles);
//     the manager evicts closely related items together, because a
//     miss in one cloudlet makes hits on its related items worthless —
//     the radio is waking up anyway.
//   - Security: a cloudlet cannot read another cloudlet's cached data
//     unless the owner granted it access; the manager mediates every
//     cross-cloudlet read.
package cloudletos

import (
	"fmt"
	"sort"
	"sync"
)

// Item describes one cached item for management purposes.
type Item struct {
	// Key identifies the item within its cloudlet.
	Key uint64
	// Relation tags items that belong together across cloudlets
	// (e.g. the hash of the query that produced a search result, its
	// ads, and its map tiles). Zero means unrelated.
	Relation uint64
	// Bytes is the item's flash footprint.
	Bytes int64
	// Utility orders eviction: lower-utility items go first.
	Utility float64
}

// Cloudlet is the interface a pocket cloudlet exposes to the manager.
type Cloudlet interface {
	// Name identifies the cloudlet.
	Name() string
	// Items enumerates the cloudlet's cached items.
	Items() []Item
	// Evict removes the items with the given keys, returning the
	// bytes actually freed.
	Evict(keys []uint64) int64
	// Read returns the cached bytes for a key, for mediated
	// cross-cloudlet access.
	Read(key uint64) ([]byte, bool)
}

// Quota is a cloudlet's storage allowance.
type Quota struct {
	FlashBytes int64
}

// registration pairs a cloudlet with its quota and ACL.
type registration struct {
	cloudlet Cloudlet
	quota    Quota
	// readers are the cloudlet names allowed to read this cloudlet's
	// items.
	readers map[string]bool
}

// Manager is the device-side coordinator for all pocket cloudlets.
// All methods are safe for concurrent use: registration, quota changes
// and reclaims may race with the cloudlets' own serving paths (the
// fleet resizes shards while serving).
type Manager struct {
	// totalFlash is the flash budget available to all cloudlets
	// together; the rest of the device's storage belongs to the user.
	totalFlash int64

	mu    sync.Mutex
	regs  map[string]*registration
	order []string // registration order for deterministic walks
}

// NewManager creates a manager with the given total cloudlet flash
// budget (e.g. 10% of device NVM, the paper's Table 2 assumption).
func NewManager(totalFlash int64) (*Manager, error) {
	if totalFlash <= 0 {
		return nil, fmt.Errorf("cloudletos: total flash budget must be positive, got %d", totalFlash)
	}
	return &Manager{totalFlash: totalFlash, regs: make(map[string]*registration)}, nil
}

// TotalFlash returns the global cloudlet flash budget.
func (m *Manager) TotalFlash() int64 { return m.totalFlash }

// Register adds a cloudlet under a quota. The sum of quotas may not
// exceed the global budget.
func (m *Manager) Register(c Cloudlet, q Quota) error {
	if c == nil {
		return fmt.Errorf("cloudletos: nil cloudlet")
	}
	name := c.Name()
	if name == "" {
		return fmt.Errorf("cloudletos: cloudlet must have a name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.regs[name]; dup {
		return fmt.Errorf("cloudletos: cloudlet %q already registered", name)
	}
	if q.FlashBytes <= 0 {
		return fmt.Errorf("cloudletos: quota for %q must be positive", name)
	}
	if committed := m.committedLocked(""); committed+q.FlashBytes > m.totalFlash {
		return fmt.Errorf("cloudletos: quota %d for %q exceeds remaining budget %d",
			q.FlashBytes, name, m.totalFlash-committed)
	}
	m.regs[name] = &registration{cloudlet: c, quota: q, readers: make(map[string]bool)}
	m.order = append(m.order, name)
	return nil
}

// committedLocked sums the registered quotas, excluding the named
// cloudlet (empty name excludes nothing). Caller holds mu.
func (m *Manager) committedLocked(excluding string) int64 {
	var committed int64
	for name, r := range m.regs {
		if name != excluding {
			committed += r.quota.FlashBytes
		}
	}
	return committed
}

// SetQuota changes a registered cloudlet's allowance; the new total
// across all cloudlets must stay within the global budget. Shrinking a
// quota below current usage is allowed — the overage is surfaced by
// OverQuota and reclaimed by the next Reclaim, exactly as for a
// cloudlet that grew past its allowance.
func (m *Manager) SetQuota(name string, q Quota) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regs[name]
	if !ok {
		return fmt.Errorf("cloudletos: unknown cloudlet %q", name)
	}
	if q.FlashBytes <= 0 {
		return fmt.Errorf("cloudletos: quota for %q must be positive", name)
	}
	if committed := m.committedLocked(name); committed+q.FlashBytes > m.totalFlash {
		return fmt.Errorf("cloudletos: quota %d for %q exceeds remaining budget %d",
			q.FlashBytes, name, m.totalFlash-committed)
	}
	r.quota = q
	return nil
}

// Unregister removes a cloudlet, releasing its quota and revoking both
// the grants it held and the grants naming it as a reader. The
// cloudlet's cached items are not touched — retiring storage is the
// owner's business.
func (m *Manager) Unregister(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regs[name]; !ok {
		return fmt.Errorf("cloudletos: unknown cloudlet %q", name)
	}
	delete(m.regs, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	for _, r := range m.regs {
		delete(r.readers, name)
	}
	return nil
}

// Quota returns a cloudlet's quota.
func (m *Manager) Quota(name string) (Quota, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regs[name]
	if !ok {
		return Quota{}, false
	}
	return r.quota, true
}

// Usage returns the cloudlet's current flash usage.
func (m *Manager) Usage(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usageLocked(name)
}

func (m *Manager) usageLocked(name string) (int64, error) {
	r, ok := m.regs[name]
	if !ok {
		return 0, fmt.Errorf("cloudletos: unknown cloudlet %q", name)
	}
	var used int64
	for _, it := range r.cloudlet.Items() {
		used += it.Bytes
	}
	return used, nil
}

// OverQuota reports how many bytes the cloudlet exceeds its quota by
// (zero when within quota).
func (m *Manager) OverQuota(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	used, err := m.usageLocked(name)
	if err != nil {
		return 0, err
	}
	over := used - m.regs[name].quota.FlashBytes
	if over < 0 {
		over = 0
	}
	return over, nil
}

// Grant allows reader to read owner's cached items.
func (m *Manager) Grant(owner, reader string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regs[owner]
	if !ok {
		return fmt.Errorf("cloudletos: unknown cloudlet %q", owner)
	}
	if _, ok := m.regs[reader]; !ok {
		return fmt.Errorf("cloudletos: unknown cloudlet %q", reader)
	}
	r.readers[reader] = true
	return nil
}

// Revoke removes a previously granted access.
func (m *Manager) Revoke(owner, reader string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regs[owner]; ok {
		delete(r.readers, reader)
	}
}

// ErrPermission reports a denied cross-cloudlet read.
type ErrPermission struct{ Owner, Reader string }

func (e *ErrPermission) Error() string {
	return fmt.Sprintf("cloudletos: %q may not read from %q", e.Reader, e.Owner)
}

// ReadFrom performs a mediated cross-cloudlet read: reader fetches the
// item stored under key by owner. A cloudlet may always read its own
// items; anything else requires a Grant (the paper's example: a map
// cloudlet must not read a user's bank search history).
func (m *Manager) ReadFrom(reader, owner string, key uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regs[owner]
	if !ok {
		return nil, fmt.Errorf("cloudletos: unknown cloudlet %q", owner)
	}
	if reader != owner && !r.readers[reader] {
		return nil, &ErrPermission{Owner: owner, Reader: reader}
	}
	data, ok := r.cloudlet.Read(key)
	if !ok {
		return nil, fmt.Errorf("cloudletos: %q has no item %d", owner, key)
	}
	return data, nil
}

// evictionCandidate is a flattened (cloudlet, item) pair.
type evictionCandidate struct {
	cloudlet string
	item     Item
}

// Reclaim frees at least want bytes of cloudlet flash, evicting the
// lowest-utility items across all cloudlets. With coordinate set, every
// eviction also removes same-Relation items from the other cloudlets —
// the paper's coordinated eviction policy ("if a particular query
// misses in the local search cache, there is not much benefit in
// hitting the ad cache"). It returns the bytes actually freed.
func (m *Manager) Reclaim(want int64, coordinate bool) int64 {
	if want <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var cands []evictionCandidate
	for _, name := range m.order {
		for _, it := range m.regs[name].cloudlet.Items() {
			cands = append(cands, evictionCandidate{cloudlet: name, item: it})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.item.Utility != b.item.Utility {
			return a.item.Utility < b.item.Utility
		}
		if a.cloudlet != b.cloudlet {
			return a.cloudlet < b.cloudlet
		}
		return a.item.Key < b.item.Key
	})

	evicted := make(map[string]map[uint64]bool) // cloudlet -> keys
	mark := func(cloudlet string, key uint64) {
		if evicted[cloudlet] == nil {
			evicted[cloudlet] = make(map[uint64]bool)
		}
		evicted[cloudlet][key] = true
	}
	var planned int64
	for _, c := range cands {
		if planned >= want {
			break
		}
		if evicted[c.cloudlet][c.item.Key] {
			continue
		}
		mark(c.cloudlet, c.item.Key)
		planned += c.item.Bytes
		if coordinate && c.item.Relation != 0 {
			for _, other := range cands {
				if other.item.Relation == c.item.Relation &&
					!(other.cloudlet == c.cloudlet && other.item.Key == c.item.Key) &&
					!evicted[other.cloudlet][other.item.Key] {
					mark(other.cloudlet, other.item.Key)
					planned += other.item.Bytes
				}
			}
		}
	}

	var freed int64
	for _, name := range m.order {
		keys := evicted[name]
		if len(keys) == 0 {
			continue
		}
		sorted := make([]uint64, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		freed += m.regs[name].cloudlet.Evict(sorted)
	}
	return freed
}

// Cloudlets returns the registered cloudlet names in registration order.
func (m *Manager) Cloudlets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Package pocketweb implements the web-content pocket cloudlet the
// paper sketches alongside PocketSearch (footnote 2 and Sections 3.1-3.2):
// full web pages cached on the device's flash so that browsing, like
// searching, avoids the radio.
//
// PocketWeb exercises the data-management half of the pocket cloudlet
// architecture that PocketSearch does not need:
//
//   - Static pages (the long tail) change rarely; they are provisioned
//     and refreshed in bulk while the device charges on a fast link.
//   - Dynamic pages (news, stock quotes) change within the day. Bulk
//     updates over the radio would be prohibitive, but the paper's log
//     analysis shows the repeatedly accessed dynamic set is tiny ("70%
//     of web visits tend to be revisits to less than a couple of tens
//     of web pages"), so only the user's top-K dynamic pages are
//     refreshed in real time over the radio.
//
// Personal relevance is tracked with the frequency/recency model of
// internal/core; the cache evicts the lowest-scoring pages when its
// flash budget fills.
package pocketweb

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/core"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/hash64"
)

// Source is the origin web: page sizes, volatility, and content
// versions over model time. internal/engine's Universe is adapted to
// this interface by NewEngineSource.
type Source interface {
	// PageBytes is the page's download/render size; zero or negative
	// means the URL does not exist.
	PageBytes(url string) int
	// Dynamic reports whether the page's content changes within a day.
	Dynamic(url string) bool
	// Version is the content version at a model time; a cached copy
	// with an older version is stale.
	Version(url string, at time.Duration) uint64
}

// Config parameterizes a PocketWeb cache.
type Config struct {
	// FlashBudget bounds the cache's flash usage in bytes.
	FlashBudget int64
	// RealTimeTopK is how many of the user's highest-scoring dynamic
	// pages are kept fresh over the radio (the paper: a couple of
	// tens).
	RealTimeTopK int
	// RefreshInterval is how often the real-time refresh sweep runs.
	RefreshInterval time.Duration
	// LambdaPerDay is the personal-model staleness decay.
	LambdaPerDay float64
}

// DefaultConfig returns the paper-guided defaults.
func DefaultConfig() Config {
	return Config{
		FlashBudget:     256 << 20, // Table 2: ~10% of NVM for web content
		RealTimeTopK:    20,
		RefreshInterval: time.Hour,
		LambdaPerDay:    0.1,
	}
}

// page is one cached page's metadata; contents live in the device's
// flash store under pw/<hash>.
type page struct {
	url     string
	bytes   int
	dynamic bool
	version uint64
}

// Stats counts cache activity.
type Stats struct {
	Visits    int
	FreshHits int
	StaleHits int // cached but outdated: refetched over the radio
	Misses    int
	// RealTimeRefreshes counts pages refreshed by the top-K sweep;
	// RefreshBytes is the radio traffic those refreshes cost.
	RealTimeRefreshes int
	RefreshBytes      int64
}

// HitRate is the fraction of visits served fresh from flash.
func (s Stats) HitRate() float64 {
	if s.Visits == 0 {
		return 0
	}
	return float64(s.FreshHits) / float64(s.Visits)
}

// Cache is a PocketWeb instance on a device.
type Cache struct {
	dev       *device.Device
	src       Source
	cfg       Config
	pages     map[uint64]*page
	used      int64
	personal  *core.PersonalModel
	lastSweep time.Duration
	stats     Stats
}

// New creates an empty PocketWeb cache.
func New(dev *device.Device, src Source, cfg Config) (*Cache, error) {
	if dev == nil || src == nil {
		return nil, fmt.Errorf("pocketweb: device and source are required")
	}
	def := DefaultConfig()
	if cfg.FlashBudget <= 0 {
		cfg.FlashBudget = def.FlashBudget
	}
	if cfg.RealTimeTopK <= 0 {
		cfg.RealTimeTopK = def.RealTimeTopK
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = def.RefreshInterval
	}
	if cfg.LambdaPerDay <= 0 {
		cfg.LambdaPerDay = def.LambdaPerDay
	}
	return &Cache{
		dev:      dev,
		src:      src,
		cfg:      cfg,
		pages:    make(map[uint64]*page),
		personal: core.NewPersonalModel(cfg.LambdaPerDay),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// UsedBytes is the cache's current flash usage.
func (c *Cache) UsedBytes() int64 { return c.used }

// Len is the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// Contains reports whether a URL is cached (fresh or not).
func (c *Cache) Contains(url string) bool {
	_, ok := c.pages[hash64.Sum(url)]
	return ok
}

func fileName(h uint64) string { return fmt.Sprintf("pw/%x", h) }

// admit stores a page's content, evicting low-score pages as needed.
// The flash write is charged to the device; the caller pays any radio
// cost separately.
func (c *Cache) admit(url string, bytes int, version uint64, at time.Duration) {
	if int64(bytes) > c.cfg.FlashBudget {
		return // page larger than the whole budget: never cacheable
	}
	h := hash64.Sum(url)
	if old, ok := c.pages[h]; ok {
		c.used -= int64(old.bytes)
	}
	for c.used+int64(bytes) > c.cfg.FlashBudget {
		if !c.evictOne(h) {
			return
		}
	}
	// The modeled flash cost covers the full page; only a bounded
	// prefix is materialized in the in-memory store.
	lat := c.dev.Flash().OpenCost() + c.dev.Flash().WriteCost(bytes)
	c.dev.Store().ReplaceSilently(fileName(h), make([]byte, min(bytes, 4096)))
	c.dev.FlashBusy(lat)
	c.pages[h] = &page{url: url, bytes: bytes, dynamic: c.src.Dynamic(url), version: version}
	c.used += int64(bytes)
}

// evictOne removes the lowest-scoring page other than keep, returning
// false when nothing is evictable.
func (c *Cache) evictOne(keep uint64) bool {
	var victim uint64
	var victimScore float64
	found := false
	for h, p := range c.pages {
		if h == keep {
			continue
		}
		s := c.personal.Score(core.ItemID(hash64.Sum(p.url)))
		if !found || s < victimScore || (s == victimScore && h < victim) {
			victim, victimScore, found = h, s, true
		}
	}
	if !found {
		return false
	}
	p := c.pages[victim]
	c.used -= int64(p.bytes)
	delete(c.pages, victim)
	_ = c.dev.Store().Delete(fileName(victim))
	return true
}

// Provision bulk-loads pages while the device charges on a fast link:
// no radio cost, flash writes only (charged then discarded by callers
// that Reset the device, as with PocketSearch preloads).
func (c *Cache) Provision(urls []string, at time.Duration) {
	for _, url := range urls {
		b := c.src.PageBytes(url)
		if b <= 0 {
			continue
		}
		c.admit(url, b, c.src.Version(url, at), at)
	}
}

// Outcome describes how a visit was served.
type Outcome struct {
	// Hit means the page was served fresh from flash.
	Hit bool
	// WasStale means a cached copy existed but was outdated, so the
	// radio was used anyway.
	WasStale bool
	// Latency is the end-to-end time to display the page.
	Latency time.Duration
}

// Visit serves a browse to the URL at the given model time. Dynamic
// cached pages are only hits while their content version is current —
// a stale copy forces a radio refetch, exactly the freshness rule the
// paper's real-time updates exist to protect.
func (c *Cache) Visit(url string, at time.Duration) (Outcome, error) {
	pageBytes := c.src.PageBytes(url)
	if pageBytes <= 0 {
		return Outcome{}, fmt.Errorf("pocketweb: unknown url %q", url)
	}
	c.stats.Visits++
	c.personal.Touch(core.ItemID(hash64.Sum(url)), at)
	c.sweep(at)

	h := hash64.Sum(url)
	start := c.dev.Now()
	if p, ok := c.pages[h]; ok {
		fresh := !p.dynamic || p.version == c.src.Version(url, at)
		if fresh {
			c.stats.FreshHits++
			c.dev.FlashBusy(c.dev.Flash().ReadCost(p.bytes))
			c.dev.Render(p.bytes)
			return Outcome{Hit: true, Latency: c.dev.Now() - start}, nil
		}
		c.stats.StaleHits++
		c.dev.NetworkRequest(600, pageBytes)
		c.dev.Render(pageBytes)
		c.admit(url, pageBytes, c.src.Version(url, at), at)
		return Outcome{WasStale: true, Latency: c.dev.Now() - start}, nil
	}

	c.stats.Misses++
	c.dev.NetworkRequest(600, pageBytes)
	c.dev.Render(pageBytes)
	c.admit(url, pageBytes, c.src.Version(url, at), at)
	return Outcome{Latency: c.dev.Now() - start}, nil
}

// sweep runs the real-time refresh: at most every RefreshInterval, the
// user's top-K dynamic pages are version-checked and refetched over
// the radio if their content changed.
func (c *Cache) sweep(at time.Duration) {
	if at-c.lastSweep < c.cfg.RefreshInterval {
		return
	}
	c.lastSweep = at
	top := c.topDynamic(c.cfg.RealTimeTopK)
	for _, p := range top {
		current := c.src.Version(p.url, at)
		if current == p.version {
			continue
		}
		c.dev.NetworkRequest(600, p.bytes)
		c.admit(p.url, c.src.PageBytes(p.url), current, at)
		c.stats.RealTimeRefreshes++
		c.stats.RefreshBytes += int64(p.bytes)
	}
}

// topDynamic returns the K highest-scoring cached dynamic pages the
// user has actually visited. Provisioned-but-never-visited pages are
// excluded: refreshing those over the radio would be exactly the bulk
// update the paper rules out — real-time freshness is reserved for the
// small personally revisited set.
func (c *Cache) topDynamic(k int) []*page {
	var dyn []*page
	for _, p := range c.pages {
		if p.dynamic && c.personal.Score(core.ItemID(hash64.Sum(p.url))) > 0 {
			dyn = append(dyn, p)
		}
	}
	score := func(p *page) float64 {
		return c.personal.Score(core.ItemID(hash64.Sum(p.url)))
	}
	// Selection sort of the top K keeps this deterministic and simple.
	out := make([]*page, 0, k)
	for len(out) < k && len(dyn) > 0 {
		best := 0
		for i := 1; i < len(dyn); i++ {
			si, sb := score(dyn[i]), score(dyn[best])
			if si > sb || (si == sb && dyn[i].url < dyn[best].url) {
				best = i
			}
		}
		out = append(out, dyn[best])
		dyn = append(dyn[:best], dyn[best+1:]...)
	}
	return out
}

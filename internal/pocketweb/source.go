package pocketweb

import (
	"time"

	"pocketcloudlets/internal/engine"
)

// EngineSource adapts the procedural corpus of internal/engine to the
// PocketWeb Source interface: every search result's landing page is a
// browsable web page. One in five pages is dynamic (news-like content
// that re-renders several times a day); the rest are static.
type EngineSource struct {
	u *engine.Universe
	// DynamicPeriod is how often dynamic content changes version.
	DynamicPeriod time.Duration
}

// NewEngineSource wraps a universe as a web source.
func NewEngineSource(u *engine.Universe) *EngineSource {
	return &EngineSource{u: u, DynamicPeriod: 6 * time.Hour}
}

// PageBytes implements Source.
func (s *EngineSource) PageBytes(url string) int {
	rid, ok := s.u.ResolveURL(url)
	if !ok {
		return 0
	}
	return s.u.PageBytes(rid)
}

// Dynamic implements Source: every fifth page is news-like.
func (s *EngineSource) Dynamic(url string) bool {
	rid, ok := s.u.ResolveURL(url)
	if !ok {
		return false
	}
	return rid%5 == 0
}

// Version implements Source: dynamic pages change every DynamicPeriod,
// offset per page so the whole web does not flip at once.
func (s *EngineSource) Version(url string, at time.Duration) uint64 {
	rid, ok := s.u.ResolveURL(url)
	if !ok {
		return 0
	}
	if rid%5 != 0 {
		return 1
	}
	offset := time.Duration(rid%97) * time.Minute
	return 1 + uint64((at+offset)/s.DynamicPeriod)
}

package pocketweb

import (
	"testing"
	"time"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *engine.Universe {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       800,
		NonNavPairs:    4000,
		NonNavSegments: []engine.Segment{{Queries: 100, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func newCache(t testing.TB, cfg Config) (*Cache, *device.Device, *EngineSource) {
	t.Helper()
	u := testUniverse(t)
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	src := NewEngineSource(u)
	c, err := New(dev, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev, src
}

// pickURLs returns n distinct page URLs of the requested volatility.
func pickURLs(t testing.TB, src *EngineSource, n int, dynamic bool) []string {
	t.Helper()
	var out []string
	for rid := 0; len(out) < n && rid < src.u.NumResults(); rid++ {
		url := src.u.ResultURL(searchlog.ResultID(rid))
		if src.Dynamic(url) == dynamic {
			out = append(out, url)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d urls (dynamic=%v)", n, dynamic)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	u := testUniverse(t)
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	if _, err := New(nil, NewEngineSource(u), Config{}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := New(dev, nil, Config{}); err == nil {
		t.Error("nil source should fail")
	}
	c, err := New(dev, NewEngineSource(u), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.FlashBudget <= 0 || c.cfg.RealTimeTopK <= 0 {
		t.Error("defaults not filled")
	}
}

func TestStaticPageLifecycle(t *testing.T) {
	c, dev, src := newCache(t, Config{})
	url := pickURLs(t, src, 1, false)[0]

	// First visit misses over the radio.
	out, err := c.Visit(url, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit || out.WasStale {
		t.Fatalf("first visit should miss: %+v", out)
	}
	if dev.Link().Wakeups() != 1 {
		t.Error("miss should wake the radio")
	}
	missLatency := out.Latency

	// Revisit hits from flash, much faster and radio-free.
	out2, err := c.Visit(url, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Hit {
		t.Fatal("revisit of a static page should hit")
	}
	if dev.Link().Wakeups() != 1 {
		t.Error("hit should not wake the radio")
	}
	if out2.Latency*3 > missLatency {
		t.Errorf("hit %v should be far faster than miss %v", out2.Latency, missLatency)
	}
	st := c.Stats()
	if st.Visits != 2 || st.FreshHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnknownURL(t *testing.T) {
	c, _, _ := newCache(t, Config{})
	if _, err := c.Visit("www.nosuchsite.example/", 0); err == nil {
		t.Error("unknown url should fail")
	}
}

func TestDynamicPageGoesStale(t *testing.T) {
	c, _, src := newCache(t, Config{RefreshInterval: 1000 * time.Hour}) // sweeps off
	url := pickURLs(t, src, 1, true)[0]

	c.Visit(url, 0)
	// Within the version period the cached copy is fresh.
	soon := 10 * time.Minute
	out, _ := c.Visit(url, soon)
	if !out.Hit {
		t.Error("dynamic page should hit while its version is current")
	}
	// After the content changes, the cached copy is stale and the
	// radio is used again.
	later := src.DynamicPeriod + 2*time.Hour
	out2, _ := c.Visit(url, later)
	if out2.Hit || !out2.WasStale {
		t.Errorf("dynamic page should be stale after version change: %+v", out2)
	}
	// The refetch re-admitted the new version: fresh again.
	out3, _ := c.Visit(url, later+time.Minute)
	if !out3.Hit {
		t.Error("refetched page should be fresh")
	}
}

// TestRealTimeSweepKeepsTopKFresh verifies the Section 3.2 policy: the
// user's frequently revisited dynamic pages stay fresh because the
// sweep refreshes them over the radio before the next visit.
func TestRealTimeSweepKeepsTopKFresh(t *testing.T) {
	c, _, src := newCache(t, Config{RealTimeTopK: 5, RefreshInterval: time.Hour})
	url := pickURLs(t, src, 1, true)[0]

	// Establish the page as a personal favorite.
	c.Visit(url, 0)
	for i := 1; i <= 3; i++ {
		c.Visit(url, time.Duration(i)*10*time.Minute)
	}
	// Visit something else after the content changed; the sweep runs
	// and refreshes the favorite in the background.
	other := pickURLs(t, src, 2, false)[1]
	afterChange := src.DynamicPeriod + 3*time.Hour
	c.Visit(other, afterChange)
	if c.Stats().RealTimeRefreshes == 0 {
		t.Fatal("sweep should have refreshed the stale favorite")
	}
	// The favorite is fresh despite the version change.
	out, _ := c.Visit(url, afterChange+time.Minute)
	if !out.Hit {
		t.Error("swept favorite should hit fresh")
	}
}

func TestProvisionServesWithoutRadio(t *testing.T) {
	c, dev, src := newCache(t, Config{})
	pages := pickURLs(t, src, 10, false)
	c.Provision(pages, 0)
	dev.Reset()
	for _, url := range pages {
		out, err := c.Visit(url, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Hit {
			t.Fatalf("provisioned page %q should hit", url)
		}
	}
	if dev.Link().Wakeups() != 0 {
		t.Error("provisioned browsing should not use the radio")
	}
}

func TestBudgetEviction(t *testing.T) {
	// Budget fits ~3 pages of ~100 KB.
	c, _, src := newCache(t, Config{FlashBudget: 320_000})
	pages := pickURLs(t, src, 6, false)

	// Make page 0 a strong favorite so it survives.
	c.Visit(pages[0], 0)
	c.Visit(pages[0], time.Minute)
	c.Visit(pages[0], 2*time.Minute)
	for i, url := range pages[1:] {
		c.Visit(url, time.Duration(3+i)*time.Minute)
	}
	if c.UsedBytes() > 320_000 {
		t.Errorf("used %d exceeds budget", c.UsedBytes())
	}
	if !c.Contains(pages[0]) {
		t.Error("favorite should survive eviction")
	}
	if c.Len() >= 6 {
		t.Error("eviction should have removed some pages")
	}
}

func TestOversizedPageNeverAdmitted(t *testing.T) {
	c, _, src := newCache(t, Config{FlashBudget: 1000})
	url := pickURLs(t, src, 1, false)[0]
	c.Visit(url, 0)
	if c.Contains(url) {
		t.Error("page larger than the budget must not be admitted")
	}
	// A second visit is another miss but must not error.
	if _, err := c.Visit(url, time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestRevisitWorkloadHitRate reproduces the paper's motivation number:
// with revisit-heavy browsing ("70% of web visits are revisits"),
// PocketWeb serves the bulk of visits from flash.
func TestRevisitWorkloadHitRate(t *testing.T) {
	c, _, src := newCache(t, Config{RealTimeTopK: 20, RefreshInterval: time.Hour})
	favorites := pickURLs(t, src, 15, false)
	dynFavorites := pickURLs(t, src, 5, true)
	favorites = append(favorites, dynFavorites...)

	// A month of browsing: mostly revisits to the favorites.
	at := time.Duration(0)
	for i := 0; i < 400; i++ {
		at += 100 * time.Minute
		url := favorites[(i*7)%len(favorites)]
		if _, err := c.Visit(url, at); err != nil {
			t.Fatal(err)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.80 {
		t.Errorf("revisit-heavy hit rate = %.2f, want > 0.80", hr)
	}
	if c.Stats().RealTimeRefreshes == 0 {
		t.Error("dynamic favorites should have been refreshed in real time")
	}
}

func TestEngineSource(t *testing.T) {
	u := testUniverse(t)
	src := NewEngineSource(u)
	url := u.ResultURL(0)
	if src.PageBytes(url) <= 0 {
		t.Error("known url should have a size")
	}
	if src.PageBytes("garbage") != 0 {
		t.Error("unknown url should have zero size")
	}
	if src.Version("garbage", 0) != 0 {
		t.Error("unknown url should have zero version")
	}
	// Versions advance for dynamic pages and not for static ones.
	dyn := pickURLs(t, src, 1, true)[0]
	stat := pickURLs(t, src, 1, false)[0]
	if src.Version(dyn, 0) == src.Version(dyn, 48*time.Hour) {
		t.Error("dynamic version should advance")
	}
	if src.Version(stat, 0) != src.Version(stat, 1000*time.Hour) {
		t.Error("static version should not advance")
	}
}

package nvm

import (
	"testing"
	"testing/quick"
)

func TestTrendsOrderedAndComplete(t *testing.T) {
	trends := Trends()
	if len(trends) != 9 {
		t.Fatalf("want 9 trend points, got %d", len(trends))
	}
	for i := 1; i < len(trends); i++ {
		if trends[i].Year != trends[i-1].Year+2 {
			t.Errorf("years not biennial at index %d: %d after %d", i, trends[i].Year, trends[i-1].Year)
		}
		if trends[i].ScalingFactor < trends[i-1].ScalingFactor {
			t.Errorf("scaling factor regressed in %d", trends[i].Year)
		}
		if trends[i].ChipStack < trends[i-1].ChipStack {
			t.Errorf("chip stack regressed in %d", trends[i].Year)
		}
		if trends[i].CellLayers < trends[i-1].CellLayers {
			t.Errorf("cell layers regressed in %d", trends[i].Year)
		}
	}
}

func TestTechnologyTransitionIn2018(t *testing.T) {
	for _, p := range Trends() {
		want := Flash
		if p.Year >= 2018 {
			want = OtherNVM
		}
		if p.Technology != want {
			t.Errorf("year %d: technology %v, want %v", p.Year, p.Technology, want)
		}
	}
}

func TestTrendFor(t *testing.T) {
	p, ok := TrendFor(2016)
	if !ok || p.Year != 2016 || p.ScalingFactor != 8 {
		t.Errorf("TrendFor(2016) = %+v, %v", p, ok)
	}
	if _, ok := TrendFor(2017); ok {
		t.Error("TrendFor(2017) should not exist")
	}
}

// TestHighEndReaches1TBIn2018 checks the paper's headline projection:
// "high-end phones may reach 1 TB of NVM as early as 2018".
func TestHighEndReaches1TBIn2018(t *testing.T) {
	all := Scenarios()[3]
	got, ok := CapacityIn(HighEnd2010, all, 2018)
	if !ok {
		t.Fatal("2018 missing from projection")
	}
	// 32 GB x 8 (scaling) x 2 (chip stack) x 2 (cell layers) = 1024 GB.
	if got != 1024*GB {
		t.Errorf("high-end 2018 capacity = %d bytes, want 1024 GB (~1 TB)", got)
	}
}

// TestLowEndProjection checks "low-end phones may eventually reach
// 256 GB (16 GB in 2018)".
func TestLowEndProjection(t *testing.T) {
	all := Scenarios()[3]
	in2018, _ := CapacityIn(LowEnd2010, all, 2018)
	if in2018 != 512*MB*32 { // 16.384 GB, the paper's "16 GB in 2018"
		t.Errorf("low-end 2018 = %d, want %d (~16 GB)", in2018, 512*MB*32)
	}
	pts := Project(LowEnd2010, all)
	final := pts[len(pts)-1]
	if final.Year != 2026 || final.Bytes != 512*MB*512 { // ~256 GB
		t.Errorf("low-end final = %d bytes in %d, want ~256 GB in 2026", final.Bytes, final.Year)
	}
}

func TestStackingLeversOnlyIncreaseCapacity(t *testing.T) {
	// Chip stacking and cell stacking multipliers never drop below the
	// 2010 baseline, so enabling them can only raise a projection.
	// (Bits per cell is the exception: it peaks at 3 in 2012 and then
	// falls to 1, which is why the later Figure 2 curves can dip below
	// the earlier ones — the paper's point about MLC retreat.)
	scens := Scenarios()
	for _, year := range []int{2012, 2016, 2020, 2026} {
		prev := int64(0)
		for _, s := range scens[1:] { // scenarios 2..4 each add a stacking lever
			c, ok := CapacityIn(HighEnd2010, s, year)
			if !ok {
				t.Fatalf("missing year %d", year)
			}
			if c < prev {
				t.Errorf("year %d: scenario %q capacity %d < previous %d", year, s.Name, c, prev)
			}
			prev = c
		}
	}
}

func TestBitsPerCellRetreat(t *testing.T) {
	// The bits/cell row rises to 3 in 2012 then retreats to 1 by 2020
	// as smaller cells hold fewer electrons.
	p2012, _ := TrendFor(2012)
	p2020, _ := TrendFor(2020)
	if p2012.BitsPerCell != 3 || p2020.BitsPerCell != 1 {
		t.Errorf("bits/cell: 2012=%g 2020=%g, want 3 and 1", p2012.BitsPerCell, p2020.BitsPerCell)
	}
}

func TestProjectionNondecreasingExceptBitsPerCell(t *testing.T) {
	// With the bits-per-cell lever disabled every multiplier row is
	// non-decreasing, so capacity curves must be non-decreasing too.
	s := Scenarios()[0]
	pts := Project(HighEnd2010, s)
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes < pts[i-1].Bytes {
			t.Errorf("scaling-only curve decreased: %d -> %d at %d", pts[i-1].Bytes, pts[i].Bytes, pts[i].Year)
		}
	}
}

func TestTable2Counts(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("want 5 Table 2 rows, got %d", len(rows))
	}
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r.Cloudlet.Name] = r.Count
	}
	// Paper's approximate values: ~270,000 result pages, ~5.5M 5 KB
	// items, ~17,500 web sites. Our decimal arithmetic gives 256,000,
	// 5,120,000 and 17,066 — the same order and within 10% of the
	// paper's rounded numbers except the 5 KB rows (7%).
	checks := []struct {
		name     string
		min, max int64
	}{
		{"Web Search", 230000, 290000},
		{"Mobile Ads", 4800000, 5600000},
		{"Yellow Business", 4800000, 5600000},
		{"Web Content", 15000, 18500},
		{"Mapping", 4800000, 5600000},
	}
	for _, c := range checks {
		got, ok := byName[c.name]
		if !ok {
			t.Errorf("missing Table 2 row %q", c.name)
			continue
		}
		if got < c.min || got > c.max {
			t.Errorf("%s: count %d outside [%d, %d]", c.name, got, c.min, c.max)
		}
	}
}

func TestItemCountProperties(t *testing.T) {
	f := func(budget, size int64) bool {
		n := ItemCount(budget, size)
		if size <= 0 {
			return n == 0
		}
		if budget < 0 {
			return n <= 0
		}
		return n == budget/size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTechnologyString(t *testing.T) {
	if Flash.String() != "Flash" || OtherNVM.String() != "Other NVM" {
		t.Error("Technology.String mismatch")
	}
	if Technology(99).String() == "" {
		t.Error("unknown technology should still stringify")
	}
}

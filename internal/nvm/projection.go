package nvm

// This file implements the Figure 2 capacity projections: starting from
// the NVM found in a 2010 smartphone, apply different combinations of
// the Table 1 capacity levers to project total NVM capacity through 2026.

// Byte-size units. The paper's arithmetic is decimal (1 GB = 1e9 bytes);
// using decimal units reproduces its item counts in Table 2.
const (
	KB int64 = 1e3
	MB int64 = 1e6
	GB int64 = 1e9
	TB int64 = 1e12
)

// Baseline capacities for year-2010 devices used in Section 2.
const (
	// HighEnd2010 is the NVM storage of a 2010 high-end smartphone.
	// With all four Table 1 levers applied it reaches 1 TB in 2018,
	// matching the paper's headline projection.
	HighEnd2010 = 32 * GB
	// LowEnd2010 is the NVM storage of a 2010 low-end smartphone;
	// the paper quotes 512 MB, a 64:1 ratio to high-end, reaching
	// 16 GB in 2018 and 256 GB by the end of the projection.
	LowEnd2010 = 512 * MB
)

// Scenario selects which capacity-increasing techniques a Figure 2
// curve assumes. Each field corresponds to one row of Table 1.
type Scenario struct {
	Name           string
	ProcessScaling bool // row 1: cells per layer (feature-size scaling)
	BitsPerCell    bool // row 4: multi-level cells
	ChipStacking   bool // row 2: dies per package
	CellStacking   bool // row 3: monolithic device layers
}

// Scenarios returns the Figure 2 curve set, from most conservative to
// most aggressive. The final scenario includes every lever and is the
// one behind the "1 TB by 2018" headline.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "process scaling only", ProcessScaling: true},
		{Name: "scaling + bits/cell", ProcessScaling: true, BitsPerCell: true},
		{Name: "scaling + bits/cell + chip stacking", ProcessScaling: true, BitsPerCell: true, ChipStacking: true},
		{Name: "all techniques (+ cell stacking)", ProcessScaling: true, BitsPerCell: true, ChipStacking: true, CellStacking: true},
	}
}

// CapacityPoint is one point on a Figure 2 curve.
type CapacityPoint struct {
	Year  int
	Bytes int64
}

// Project computes the projected NVM capacity for each Table 1 year,
// starting from baseline bytes in 2010 and applying the levers the
// scenario enables.
func Project(baseline int64, s Scenario) []CapacityPoint {
	trends := Trends()
	base := trends[0]
	out := make([]CapacityPoint, len(trends))
	for i, p := range trends {
		out[i] = CapacityPoint{
			Year:  p.Year,
			Bytes: int64(float64(baseline) * capacityMultiplier(p, base, s)),
		}
	}
	return out
}

// CapacityIn projects the capacity of a device with the given 2010
// baseline in a specific year under a scenario. It returns false if the
// year is not a Table 1 projection year.
func CapacityIn(baseline int64, s Scenario, year int) (int64, bool) {
	p, ok := TrendFor(year)
	if !ok {
		return 0, false
	}
	return int64(float64(baseline) * capacityMultiplier(p, Trends()[0], s)), true
}

// Package nvm models the non-volatile memory technology scaling trends
// of Section 2 of the Pocket Cloudlets paper: the Table 1 projection of
// process scaling, chip stacking, cell stacking, and bits per cell from
// 2010 through 2026, the smartphone capacity evolution scenarios of
// Figure 2, and the Table 2 accounting of how many cloud-service data
// items fit in a fixed cache budget.
package nvm

import "fmt"

// Technology identifies the NVM technology assumed for a projection year.
type Technology int

const (
	// Flash is charge-based NAND flash, assumed dominant through 2016.
	Flash Technology = iota
	// OtherNVM is the post-flash technology (resistive or
	// magneto-resistive: PCM, RRAM, STT-MRAM) assumed from 2018 on.
	OtherNVM
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case Flash:
		return "Flash"
	case OtherNVM:
		return "Other NVM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// TrendPoint is one column of Table 1: the projected state of NVM
// technology in a given year.
type TrendPoint struct {
	Year          int
	Technology    Technology
	TechNM        int     // process feature size in nanometers
	ScalingFactor float64 // cells per layer relative to 2010
	ChipStack     int     // independently fabricated dies per package
	CellLayers    int     // device layers per die (cell stacking)
	BitsPerCell   float64 // logic levels stored per cell
}

// Trends returns the Table 1 scaling projection, ordered by year.
// Values are exactly those printed in the paper.
func Trends() []TrendPoint {
	return []TrendPoint{
		{2010, Flash, 32, 1, 4, 1, 2},
		{2012, Flash, 22, 2, 4, 1, 3},
		{2014, Flash, 16, 4, 6, 1, 2},
		{2016, Flash, 11, 8, 6, 2, 2},
		{2018, OtherNVM, 11, 8, 8, 2, 2},
		{2020, OtherNVM, 8, 16, 8, 4, 1},
		{2022, OtherNVM, 5, 32, 12, 4, 1},
		{2024, OtherNVM, 5, 32, 12, 8, 1},
		{2026, OtherNVM, 5, 32, 16, 8, 1},
	}
}

// TrendFor returns the trend point for the given projection year.
func TrendFor(year int) (TrendPoint, bool) {
	for _, p := range Trends() {
		if p.Year == year {
			return p, true
		}
	}
	return TrendPoint{}, false
}

// capacityMultiplier computes the total density gain of a trend point
// relative to the 2010 baseline, counting only the capacity levers
// enabled in the scenario.
func capacityMultiplier(p, base TrendPoint, s Scenario) float64 {
	m := 1.0
	if s.ProcessScaling {
		m *= p.ScalingFactor / base.ScalingFactor
	}
	if s.BitsPerCell {
		m *= p.BitsPerCell / base.BitsPerCell
	}
	if s.ChipStacking {
		m *= float64(p.ChipStack) / float64(base.ChipStack)
	}
	if s.CellStacking {
		m *= float64(p.CellLayers) / float64(base.CellLayers)
	}
	return m
}

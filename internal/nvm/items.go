package nvm

// This file reproduces Table 2: the number of cloud-service data items
// that fit in a fixed pocket-cloudlet budget (10% of the projected
// low-end smartphone NVM, i.e. 25.6 GB).

// CloudletKind identifies a cloud service that could be replicated on
// the device as a pocket cloudlet.
type CloudletKind struct {
	Name     string
	ItemDesc string // what one cached item is
	ItemSize int64  // bytes per item
}

// Table2Budget is the cache budget used in Table 2: 10% of the 256 GB
// NVM projected for low-end smartphones at the end of the Table 1 window.
const Table2Budget = 256 * GB / 10

// Cloudlets returns the Table 2 rows: the pocket cloudlet services the
// paper sizes, with their single-item footprints.
func Cloudlets() []CloudletKind {
	return []CloudletKind{
		{Name: "Web Search", ItemDesc: "search result page", ItemSize: 100 * KB},
		{Name: "Mobile Ads", ItemDesc: "ad banner", ItemSize: 5 * KB},
		{Name: "Yellow Business", ItemDesc: "map tile with business info", ItemSize: 5 * KB},
		{Name: "Web Content", ItemDesc: "full web site (www.cnn.com)", ItemSize: 1500 * KB},
		{Name: "Mapping", ItemDesc: "128x128 pixels map tile", ItemSize: 5 * KB},
	}
}

// ItemCount reports how many items of the given size fit in the budget.
func ItemCount(budget, itemSize int64) int64 {
	if itemSize <= 0 {
		return 0
	}
	return budget / itemSize
}

// ItemCountRow is one computed row of Table 2.
type ItemCountRow struct {
	Cloudlet CloudletKind
	Count    int64
}

// Table2 computes the item counts for every cloudlet at the standard
// 25.6 GB budget.
func Table2() []ItemCountRow {
	kinds := Cloudlets()
	rows := make([]ItemCountRow, len(kinds))
	for i, k := range kinds {
		rows[i] = ItemCountRow{Cloudlet: k, Count: ItemCount(Table2Budget, k.ItemSize)}
	}
	return rows
}

package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not zeroed: %+v", h.Summary())
	}
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty quantile = %v, want 0", h.Quantile(0.5))
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket %d upper %v not above bucket %d upper %v",
				i, bucketUpper(i), i-1, bucketUpper(i-1))
		}
	}
	// A sample must land in a bucket whose bounds contain it.
	for _, d := range []time.Duration{0, time.Microsecond, 3 * time.Microsecond,
		time.Millisecond, 250 * time.Millisecond, 3 * time.Second, time.Hour} {
		i := bucketOf(d)
		if d >= bucketUpper(i) {
			t.Errorf("%v in bucket %d but >= upper bound %v", d, i, bucketUpper(i))
		}
		if i > 0 && d < bucketUpper(i-1) {
			t.Errorf("%v in bucket %d but < lower bound %v", d, i, bucketUpper(i-1))
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Exponentially distributed samples with a known mean: quarter-
	// octave buckets bound the relative quantile error by 2^¼ ≈ 19%.
	rng := rand.New(rand.NewSource(42))
	const n = 100_000
	samples := make([]float64, n)
	var h Histogram
	for i := range samples {
		d := time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond))
		samples[i] = float64(d)
		h.Observe(d)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	// Exact quantiles by sorting.
	sorted := append([]float64(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := sorted[int(q*float64(n))]
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-exact) / exact; rel > 0.2 {
			t.Errorf("q%.2f = %v, exact %v: relative error %.3f > 0.2",
				q, time.Duration(got), time.Duration(exact), rel)
		}
	}
	// Quantiles are clamped to the observed extrema.
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Errorf("extreme quantiles not clamped: q0=%v min=%v q1=%v max=%v",
			h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

func TestMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, all Histogram
	for i := 0; i < 10_000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a != all {
		t.Error("merged histogram differs from directly-observed one")
	}
	// Merging an empty histogram is a no-op.
	before := a
	a.Merge(&Histogram{})
	if a != before {
		t.Error("merging empty histogram changed state")
	}
}

func TestSummaryOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * float64(10*time.Millisecond)))
	}
	s := h.Summary()
	if !(s.MinNS <= s.P50NS && s.P50NS <= s.P90NS && s.P90NS <= s.P99NS &&
		s.P99NS <= s.P999NS && s.P999NS <= s.MaxNS) {
		t.Errorf("summary quantiles not monotone: %+v", s)
	}
	if s.Count != 5000 {
		t.Errorf("count = %d, want 5000", s.Count)
	}
}

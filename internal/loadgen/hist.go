package loadgen

import (
	"math"
	"time"
)

// histBuckets bounds the histogram's bucket array. With quarter-octave
// buckets starting at 1 µs, bucket 199 covers latencies beyond 10^9
// seconds — effectively unbounded.
const histBuckets = 200

// Histogram is a log-bucketed latency histogram: bucket 0 holds
// sub-microsecond samples and every later bucket spans a quarter
// octave (×2^¼ ≈ 1.19), so quantiles are accurate to ~±9% across nine
// decades at a fixed 200-counter footprint. The zero value is ready to
// use. Histograms are value-mergeable and order-independent: the same
// multiset of samples produces the same histogram, which is what makes
// the load generator's modeled-latency percentiles reproducible across
// runs even though workers interleave differently.
//
// Histogram is not safe for concurrent use; the Collector serializes
// access.
type Histogram struct {
	counts   [histBuckets]uint64
	total    uint64
	sum      time.Duration
	min, max time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	i := 1 + int(math.Floor(math.Log2(float64(d)/float64(time.Microsecond))*4))
	if i < 1 {
		i = 1
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the exclusive upper bound of a bucket.
func bucketUpper(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(float64(time.Microsecond) * math.Pow(2, float64(i)/4))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of all samples.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the latency at or below which a fraction q of the
// samples fall, reported as the holding bucket's upper bound (clamped
// to the exact observed extrema).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// LatencySummary is the machine-readable digest of a histogram, with
// durations in integer nanoseconds for stable JSON.
type LatencySummary struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	MinNS  int64  `json:"min_ns"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.total,
		MeanNS: int64(h.Mean()),
		MinNS:  int64(h.Min()),
		P50NS:  int64(h.Quantile(0.50)),
		P90NS:  int64(h.Quantile(0.90)),
		P99NS:  int64(h.Quantile(0.99)),
		P999NS: int64(h.Quantile(0.999)),
		MaxNS:  int64(h.Max()),
	}
}

package loadgen

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"pocketcloudlets/internal/autoscale"
	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

func smallGen(t testing.TB, users int) *workload.Generator {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(u, users, 7)
	cfg.FavNavRanks = 2000
	cfg.FavNonNavRanks = 6000
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallContent(t testing.TB, g *workload.Generator) cachegen.Content {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	n, err := cachegen.SelectByShare(tbl, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	return cachegen.Generate(tbl, g.Config().Universe, n)
}

// newRig builds a fleet with a collector installed as its observer.
func newRig(t testing.TB, g *workload.Generator, content cachegen.Content) (*fleet.Fleet, *Collector) {
	t.Helper()
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:     engine.New(g.Config().Universe),
		Content:    content,
		Shards:     4,
		Workers:    2,
		QueueDepth: 4096,
		Observer:   col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, col
}

func TestRunValidation(t *testing.T) {
	g := smallGen(t, 16)
	f, col := newRig(t, g, smallContent(t, g))
	if _, err := RunOpen(nil, col, g, OpenConfig{QPS: 1, Duration: time.Second}); err == nil {
		t.Error("nil fleet should fail")
	}
	if _, err := RunOpen(f, col, g, OpenConfig{QPS: 0, Duration: time.Second}); err == nil {
		t.Error("zero QPS should fail")
	}
	if _, err := RunOpen(f, col, g, OpenConfig{QPS: 10, Duration: 0}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := RunClosed(f, col, g, ClosedConfig{Users: 0}); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := RunClosed(f, col, g, ClosedConfig{Users: 100}); err == nil {
		t.Error("more users than population should fail")
	}
}

// TestClosedLoopDeterministic runs the same closed-loop experiment on
// two fresh fleets and expects every seed-deterministic field of the
// report to agree bit-for-bit, concurrency notwithstanding.
func TestClosedLoopDeterministic(t *testing.T) {
	g := smallGen(t, 160)
	content := smallContent(t, g)
	cfg := ClosedConfig{Users: 160, Month: 1, Seed: 9}

	run := func() Report {
		f, col := newRig(t, g, content)
		r, err := RunClosed(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()

	if r1.Shed != 0 || r2.Shed != 0 {
		t.Fatalf("closed loop shed requests (%d, %d); determinism undefined", r1.Shed, r2.Shed)
	}
	if r1.Requests != r2.Requests || r1.Served != r2.Served ||
		r1.PersonalHits != r2.PersonalHits || r1.CommunityHits != r2.CommunityHits ||
		r1.CloudMisses != r2.CloudMisses {
		t.Errorf("counters differ:\n  %+v\n  %+v", r1, r2)
	}
	if r1.HitRate != r2.HitRate || r1.MeanUserHitRate != r2.MeanUserHitRate {
		t.Errorf("hit rates differ: %v/%v vs %v/%v",
			r1.HitRate, r1.MeanUserHitRate, r2.HitRate, r2.MeanUserHitRate)
	}
	for class, hr := range r1.ClassHitRate {
		if r2.ClassHitRate[class] != hr {
			t.Errorf("class %s hit rate differs: %v vs %v", class, hr, r2.ClassHitRate[class])
		}
	}
	// The modeled-latency histogram is order-independent, so its whole
	// summary is reproducible even though workers interleave freely.
	if r1.Model != r2.Model {
		t.Errorf("model latency summaries differ:\n  %+v\n  %+v", r1.Model, r2.Model)
	}
	if r1.PersonalBytes != r2.PersonalBytes || r1.ResidentUsers != r2.ResidentUsers {
		t.Errorf("residency differs: %d/%d vs %d/%d",
			r1.PersonalBytes, r1.ResidentUsers, r2.PersonalBytes, r2.ResidentUsers)
	}
}

// TestClosedLoopMatchesReplay checks the paper-shape acceptance: the
// fleet's closed-loop mean per-user hit rate lands on the replay
// harness's Full-mode number (~65%, Figure 17) for the same users.
func TestClosedLoopMatchesReplay(t *testing.T) {
	g := smallGen(t, 160)
	content := smallContent(t, g)

	f, col := newRig(t, g, content)
	r, err := RunClosed(f, col, g, ClosedConfig{Users: 160, Month: 1})
	if err != nil {
		t.Fatal(err)
	}

	res, err := replay.Run(replay.Config{Gen: g, Content: content, Mode: replay.Full, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, uo := range res.Users {
		if uo.Volume > 0 {
			sum += uo.HitRate()
			n++
		}
	}
	want := sum / float64(n)

	if diff := math.Abs(r.MeanUserHitRate - want); diff > 1e-9 {
		t.Errorf("closed-loop mean user hit rate %.6f, replay %.6f (diff %g)",
			r.MeanUserHitRate, want, diff)
	}
	if r.MeanUserHitRate < 0.45 || r.MeanUserHitRate > 0.9 {
		t.Errorf("mean user hit rate %.3f outside the paper's plausible band", r.MeanUserHitRate)
	}
	if r.CommunityHits == 0 || r.PersonalHits == 0 || r.CloudMisses == 0 {
		t.Errorf("expected all three tiers exercised: %+v", r)
	}
	// Per-user accounting is carried for downstream analysis.
	if len(r.Outcomes) != 160 {
		t.Errorf("outcomes = %d, want 160", len(r.Outcomes))
	}
}

// TestOpenLoopSchedule checks the open-loop arrival count is a pure
// function of (seed, QPS, duration) and the report is consistent.
func TestOpenLoopSchedule(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	cfg := OpenConfig{QPS: 5000, Duration: 200 * time.Millisecond, Month: 1, Seed: 11}

	run := func() Report {
		f, col := newRig(t, g, content)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Requests != r2.Requests {
		t.Errorf("arrival counts differ across runs: %d vs %d", r1.Requests, r2.Requests)
	}
	if r1.Requests == 0 {
		t.Fatal("no arrivals scheduled")
	}
	// Errors are counted within Served (the request completed, badly).
	if r1.Served+r1.Shed != r1.Requests {
		t.Errorf("served %d + shed %d != requests %d", r1.Served, r1.Shed, r1.Requests)
	}
	if r1.Mode != "open" || r1.OfferedQPS != cfg.QPS || r1.ServedQPS <= 0 {
		t.Errorf("report inconsistent: %+v", r1)
	}
	if r1.Wall.Count != r1.Served || r1.Model.Count != r1.Served {
		t.Errorf("histogram counts %d/%d, want %d", r1.Wall.Count, r1.Model.Count, r1.Served)
	}
	// A different seed draws a different Poisson schedule.
	cfg.Seed = 12
	f, col := newRig(t, g, content)
	r3, err := RunOpen(f, col, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Requests == r1.Requests {
		t.Logf("note: different seeds drew equal arrival counts (%d); merely unlikely", r1.Requests)
	}
}

func TestReportJSON(t *testing.T) {
	g := smallGen(t, 32)
	f, col := newRig(t, g, smallContent(t, g))
	r, err := RunClosed(f, col, g, ClosedConfig{Users: 20, Month: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "seed", "requests", "hit_rate",
		"mean_user_hit_rate", "shed_rate", "wall_latency", "model_latency"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	if _, ok := m["Outcomes"]; ok {
		t.Error("per-user outcomes must not be serialized")
	}
	if r.String() == "" {
		t.Error("human-readable summary is empty")
	}
}

func TestCollectorObserve(t *testing.T) {
	col := NewCollector()
	col.Observe(fleet.Response{Shed: true})
	col.Observe(fleet.Response{Err: errors.New("boom")})
	col.Observe(fleet.Response{Source: fleet.SourceCommunity, Wall: time.Millisecond, EnergyJ: 0.5})
	col.Observe(fleet.Response{Source: fleet.SourceCloud, Wall: time.Millisecond, EnergyJ: 2, RadioJ: 1.5})
	col.Observe(fleet.Response{Source: fleet.SourceCloud, Wall: time.Millisecond, EnergyJ: 1, RadioJ: 0.5, BatchSize: 4})
	s := col.snapshot()
	if s.shed != 1 || s.errors != 1 || s.wall.Count() != 3 || s.bySource[fleet.SourceCommunity] != 1 {
		t.Errorf("collector state wrong: %+v", s)
	}
	if s.energyJ != 3.5 || s.radioJ != 2 || s.missRadioJ != 2 {
		t.Errorf("energy sums wrong: energy=%g radio=%g missRadio=%g", s.energyJ, s.radioJ, s.missRadioJ)
	}
	// The unbatched cold miss pays a wake-up; the batched one's is
	// booked against its session in fleet.BatchStats.
	if s.wakeups != 1 || s.batchedMisses != 1 {
		t.Errorf("wakeups=%d batchedMisses=%d, want 1 and 1", s.wakeups, s.batchedMisses)
	}
	col.Reset()
	s = col.snapshot()
	if s.shed != 0 || s.errors != 0 || s.wall.Count() != 0 || s.energyJ != 0 {
		t.Error("Reset did not clear the collector")
	}
}

// TestRunRequiresObserver is the regression for silently unmeasured
// runs: a fleet with no Observer wired would previously report empty
// histograms as if nothing happened; now the runners refuse it.
func TestRunRequiresObserver(t *testing.T) {
	g := smallGen(t, 16)
	content := smallContent(t, g)
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:  engine.New(g.Config().Universe),
		Content: content,
		Shards:  2,
		Workers: 2,
		// Observer deliberately left nil.
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if _, err := RunOpen(f, col, g, OpenConfig{QPS: 10, Duration: 10 * time.Millisecond}); err == nil {
		t.Error("RunOpen against an observer-less fleet should fail")
	}
	if _, err := RunClosed(f, col, g, ClosedConfig{Users: 4}); err == nil {
		t.Error("RunClosed against an observer-less fleet should fail")
	}
}

// TestBatchedReport runs a closed loop over a coalescing fleet and
// checks the report's energy and batching fields are populated,
// consistent, and serialized.
func TestBatchedReport(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:     engine.New(g.Config().Universe),
		Content:    content,
		Shards:     2,
		Workers:    2,
		QueueDepth: 4096,
		Batch:      fleet.BatchOptions{Enabled: true, Linger: time.Millisecond},
		Observer:   col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	r, err := RunClosed(f, col, g, ClosedConfig{Users: 40, Month: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.CloudMisses == 0 {
		t.Fatal("no cloud misses; nothing to batch")
	}
	if r.EnergyJ <= 0 || r.EnergyPerQueryJ <= 0 || r.RadioEnergyJ <= 0 || r.RadioEnergyPerMissJ <= 0 {
		t.Errorf("energy fields unpopulated: %+v", r)
	}
	if r.EnergyJ < r.RadioEnergyJ {
		t.Errorf("total energy %.3f J below radio-only %.3f J", r.EnergyJ, r.RadioEnergyJ)
	}
	if r.Batches <= 0 || r.BatchedMisses != int64(r.CloudMisses) {
		t.Errorf("batching fields inconsistent with %d misses: batches=%d batched=%d",
			r.CloudMisses, r.Batches, r.BatchedMisses)
	}
	if r.MeanBatchSize < 1 {
		t.Errorf("mean batch size %.2f < 1", r.MeanBatchSize)
	}
	if r.RadioWakeups != uint64(r.Batches) {
		t.Errorf("radio wakeups %d, want one per batch (%d); dispatcher sessions start cold",
			r.RadioWakeups, r.Batches)
	}
	var sized int64
	for _, n := range r.BatchSizes {
		sized += n
	}
	if sized != r.Batches {
		t.Errorf("batch size histogram sums to %d, want %d", sized, r.Batches)
	}

	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"energy_j", "energy_per_query_j", "radio_energy_j",
		"radio_energy_per_miss_j", "radio_wakeups", "batches", "batched_misses",
		"mean_batch_size", "batch_sizes"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	if r.String() == "" {
		t.Error("human-readable summary is empty")
	}
}

func TestTape(t *testing.T) {
	g := smallGen(t, 16)
	up := g.Users()[3]
	tape := Tape(g, up, 1)
	stream := g.UserStream(up, 1)
	if len(tape) != len(stream) {
		t.Fatalf("tape length %d, want %d", len(tape), len(stream))
	}
	for i, req := range tape {
		if req.User != up.ID || req.Query == "" || req.Click == "" {
			t.Fatalf("tape entry %d malformed: %+v", i, req)
		}
	}
}

// TestReportShardOccupancyAndResize drives a ring-routed fleet through
// a mid-run live resize and checks the report's occupancy and migration
// accounting adds up.
func TestReportShardOccupancyAndResize(t *testing.T) {
	g := smallGen(t, 64)
	ring, err := placement.NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:     engine.New(g.Config().Universe),
		Content:    smallContent(t, g),
		Shards:     4,
		Workers:    2,
		QueueDepth: 4096,
		Observer:   col,
		Placement:  ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	r, err := RunClosed(f, col, g, ClosedConfig{
		Users: 48, Month: 1,
		ResizeTo: 6, ResizeAt: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Placement != "ring" {
		t.Errorf("placement = %q, want ring", r.Placement)
	}
	if len(r.ShardOccupancy) != 6 {
		t.Fatalf("occupancy has %d shards, want 6 after resize", len(r.ShardOccupancy))
	}
	var served uint64
	for _, so := range r.ShardOccupancy {
		served += uint64(so.Served)
	}
	if served != r.Served {
		t.Errorf("occupancy sums to %d served, report says %d", served, r.Served)
	}
	if r.ShardSkew < 1 {
		t.Errorf("shard skew %v < 1 is impossible", r.ShardSkew)
	}
	if r.Resizes != 1 || r.MigratedUsers == 0 || r.MigratedBytes == 0 {
		t.Errorf("migration counters missing: %+v", r)
	}
	if r.DroppedUsers != 0 {
		t.Errorf("migrating resize dropped %d users", r.DroppedUsers)
	}

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"placement", "shard_occupancy", "shard_skew", "resizes", "migrated_users"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
}

// TestScheduleResizeAlwaysRuns: a resize the run beats to the punch is
// still executed before the report, so counters are never silently zero.
func TestScheduleResizeAlwaysRuns(t *testing.T) {
	g := smallGen(t, 16)
	f, col := newRig(t, g, smallContent(t, g))
	r, err := RunClosed(f, col, g, ClosedConfig{
		Users: 8, Month: 1, MaxQueriesPerUser: 2,
		ResizeTo: 6, ResizeAt: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Resizes != 1 || f.NumShards() != 6 {
		t.Errorf("deferred resize did not run: resizes %d, shards %d", r.Resizes, f.NumShards())
	}
}

// TestPacedClosedLoopByteIdentical is the think-time acceptance: pacing
// is wall-clock only, so a paced run's per-user outcomes — and every
// deterministic counter — are byte-identical to the unpaced run on the
// same tape.
func TestPacedClosedLoopByteIdentical(t *testing.T) {
	g := smallGen(t, 120)
	content := smallContent(t, g)

	run := func(pace modeltime.Pacer) Report {
		f, col := newRig(t, g, content)
		r, err := RunClosed(f, col, g, ClosedConfig{Users: 120, Month: 1, Seed: 4, Pace: pace})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unpaced := run(modeltime.Pacer{})
	paced := run(modeltime.Pacer{Scale: 1e-4, MaxPause: time.Millisecond})

	if unpaced.Shed != 0 || paced.Shed != 0 {
		t.Fatalf("closed loop shed requests (%d, %d); identity undefined", unpaced.Shed, paced.Shed)
	}
	if unpaced.Paced || !paced.Paced || paced.PaceScale != 1e-4 {
		t.Errorf("pacing not reported: unpaced=%v paced=%v scale=%v", unpaced.Paced, paced.Paced, paced.PaceScale)
	}
	if unpaced.Requests != paced.Requests || unpaced.Served != paced.Served ||
		unpaced.PersonalHits != paced.PersonalHits || unpaced.CommunityHits != paced.CommunityHits ||
		unpaced.CloudMisses != paced.CloudMisses {
		t.Errorf("counters diverge under pacing:\n  unpaced %+v\n  paced   %+v", unpaced, paced)
	}
	if unpaced.Model != paced.Model {
		t.Errorf("model latency summaries diverge:\n  %+v\n  %+v", unpaced.Model, paced.Model)
	}
	if unpaced.ModelMakespanNS != paced.ModelMakespanNS {
		t.Errorf("model makespan diverges: %d vs %d", unpaced.ModelMakespanNS, paced.ModelMakespanNS)
	}
	if !reflect.DeepEqual(unpaced.Outcomes, paced.Outcomes) {
		t.Error("per-user outcomes diverge under pacing; pacing must be wall-only")
	}
}

// TestDiurnalOpenLoopMatchesFlatArrivals is the diurnal acceptance: at
// the same mean QPS a diurnal run offers exactly the flat run's total
// arrivals, while the measured served-QPS curve concentrates at the
// mid-run peak.
func TestDiurnalOpenLoopMatchesFlatArrivals(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	base := OpenConfig{QPS: 2000, Duration: 500 * time.Millisecond, Month: 1, Seed: 11}

	run := func(cfg OpenConfig) Report {
		f, col := newRig(t, g, content)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	flat := run(base)
	diCfg := base
	diCfg.Arrivals = modeltime.Diurnal
	diCfg.DiurnalPeak = 4
	di := run(diCfg)

	if di.Requests != flat.Requests {
		t.Errorf("diurnal offered %d arrivals, flat %d; same mean QPS must offer the same total", di.Requests, flat.Requests)
	}
	if di.Arrivals != "diurnal" || di.DiurnalPeak != 4 || flat.Arrivals != "poisson" {
		t.Errorf("arrival process not reported: %q/%g and %q", di.Arrivals, di.DiurnalPeak, flat.Arrivals)
	}
	var offeredSum uint64
	for _, b := range di.OfferedCurve {
		offeredSum += b.Offered
	}
	if offeredSum != di.Requests {
		t.Errorf("offered curve sums to %d, want %d", offeredSum, di.Requests)
	}
	if di.PeakTroughServedRatio < 2 {
		t.Errorf("diurnal peak/trough served ratio = %.2f, want ≥ 2 with a 4:1 curve", di.PeakTroughServedRatio)
	}
	if flat.PeakTroughServedRatio >= di.PeakTroughServedRatio {
		t.Errorf("flat ratio %.2f not below diurnal ratio %.2f; the curve is not concentrating load",
			flat.PeakTroughServedRatio, di.PeakTroughServedRatio)
	}
	if di.ModelMakespanNS <= 0 {
		t.Error("open-loop report has no model makespan")
	}
}

// TestPerUserOpenLoop exercises the per-user renewal arrivals: the
// schedule is deterministic and each arrival replays the arriving
// user's own stream.
func TestPerUserOpenLoop(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	cfg := OpenConfig{QPS: 1500, Duration: 300 * time.Millisecond, Month: 1, Seed: 3, Arrivals: modeltime.PerUser}

	run := func() Report {
		f, col := newRig(t, g, content)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Requests == 0 {
		t.Fatal("no per-user arrivals scheduled")
	}
	if r1.Shed != 0 || r2.Shed != 0 {
		t.Fatalf("per-user open loop shed requests (%d, %d)", r1.Shed, r2.Shed)
	}
	if r1.Requests != r2.Requests || r1.Model != r2.Model {
		t.Errorf("per-user runs not deterministic:\n  %+v\n  %+v", r1.Model, r2.Model)
	}
	if r1.Arrivals != "peruser" {
		t.Errorf("arrivals reported as %q, want peruser", r1.Arrivals)
	}
}

// newRingRig builds a ring-routed fleet (resizable) with a collector
// installed, for the autoscale and timeline tests.
func newRingRig(t testing.TB, g *workload.Generator, content cachegen.Content, shards int) (*fleet.Fleet, *Collector) {
	t.Helper()
	ring, err := placement.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:     engine.New(g.Config().Universe),
		Content:    content,
		Shards:     shards,
		Workers:    2,
		QueueDepth: 4096,
		Observer:   col,
		Placement:  ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, col
}

func energyNear(a, b float64) bool {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= 1e-6*scale
}

// TestAutoscaledOpenLoopDeterministic is the controller's determinism
// acceptance: two identical autoscaled diurnal runs make the same
// resize decisions at the same model offsets and book the same energy,
// because each occupancy sample is taken after a drain and so is a
// pure function of the tape prefix.
func TestAutoscaledOpenLoopDeterministic(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	cfg := OpenConfig{
		QPS: 2000, Duration: 500 * time.Millisecond, Month: 1, Seed: 11,
		Arrivals: modeltime.Diurnal, DiurnalPeak: 6,
		Autoscale: &autoscale.Config{
			Interval: 50 * time.Millisecond, Min: 2, Max: 12, RatePerShard: 600,
		},
	}

	run := func() Report {
		f, col := newRingRig(t, g, content, 4)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()

	if r1.Autoscale == nil || r1.Autoscale.Samples == 0 {
		t.Fatalf("autoscaled run reported no controller block: %+v", r1.Autoscale)
	}
	if len(r1.Autoscale.Actions) == 0 {
		t.Fatalf("6:1 diurnal curve drove no resizes; config exercises nothing: %+v", r1.Autoscale)
	}
	if !reflect.DeepEqual(r1.Autoscale, r2.Autoscale) {
		t.Errorf("controller runs diverge:\n  %+v\n  %+v", r1.Autoscale, r2.Autoscale)
	}
	if r1.Energy == nil || r2.Energy == nil {
		t.Fatal("autoscaled run has no energy block")
	}
	if *r1.Energy != *r2.Energy {
		t.Errorf("energy ledgers diverge:\n  %+v\n  %+v", *r1.Energy, *r2.Energy)
	}

	// The controller owns the topology: the fleet's resize counter books
	// exactly the controller's actions, and the report's final size is
	// the last action's target.
	if r1.Resizes != int64(len(r1.Autoscale.Actions)) {
		t.Errorf("fleet booked %d resizes, controller fired %d actions", r1.Resizes, len(r1.Autoscale.Actions))
	}
	last := r1.Autoscale.Actions[len(r1.Autoscale.Actions)-1]
	if r1.Autoscale.FinalShards != last.To {
		t.Errorf("final shards %d, last action targeted %d", r1.Autoscale.FinalShards, last.To)
	}

	// Occupancy cross-foot survives the retirements the down-scales
	// caused: live shards plus the retired sentinel book every serve.
	var live uint64
	for _, so := range r1.ShardOccupancy {
		live += uint64(so.Served)
	}
	if live+uint64(r1.RetiredServed) != r1.Served {
		t.Errorf("live %d + retired %d != served %d", live, r1.RetiredServed, r1.Served)
	}

	// Ledger cross-foots (the same sums cmd/loadtest -check enforces).
	e := r1.Energy
	if !energyNear(e.DeviceBaseJ+e.RadioJ, e.DeviceJ) ||
		!energyNear(e.ShardIdleJ+e.ShardActiveJ, e.ShardJ) ||
		!energyNear(e.DeviceJ+e.ShardJ, e.FleetJ) {
		t.Errorf("energy report does not cross-foot: %+v", e)
	}
	answered := float64(r1.Served - r1.Unavailable)
	if answered > 0 && !energyNear(e.PerAnsweredJ*answered, e.FleetJ) {
		t.Errorf("per-answered %g J × %g answered != fleet %g J", e.PerAnsweredJ, answered, e.FleetJ)
	}
}

// TestAutoscaleOffReportShape: without a controller the report carries
// no autoscale block — so older byte-identity comparisons hold through
// reportnorm — while the energy ledger is always present.
func TestAutoscaleOffReportShape(t *testing.T) {
	g := smallGen(t, 32)
	f, col := newRig(t, g, smallContent(t, g))
	r, err := RunOpen(f, col, g, OpenConfig{QPS: 500, Duration: 100 * time.Millisecond, Month: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Autoscale != nil {
		t.Errorf("autoscale off, report has a controller block: %+v", r.Autoscale)
	}
	if r.Energy == nil || r.Energy.FleetJ <= 0 || r.Energy.ShardIdleJ <= 0 {
		t.Errorf("energy ledger missing or empty: %+v", r.Energy)
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["autoscale"]; ok {
		t.Error(`JSON report carries "autoscale" with the controller off`)
	}
	if _, ok := m["energy"]; !ok {
		t.Error(`JSON report missing "energy"`)
	}
}

// TestTimelineResizeEvents: scheduled events fire at model offsets of
// the arrival tape — including events past the last arrival — so the
// resulting topology and per-shard occupancy are deterministic.
func TestTimelineResizeEvents(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	cfg := OpenConfig{
		QPS: 1000, Duration: 200 * time.Millisecond, Month: 1, Seed: 3,
		Events: []TimelineEvent{
			{At: 50 * time.Millisecond, ResizeTo: 6},
			{At: time.Hour, ResizeTo: 3},
		},
	}

	run := func() (Report, int) {
		f, col := newRingRig(t, g, content, 4)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, f.NumShards()
	}
	r1, shards1 := run()
	r2, _ := run()

	if r1.Resizes != 2 {
		t.Errorf("resizes = %d, want 2 (one mid-tape, one after the last arrival)", r1.Resizes)
	}
	if shards1 != 3 {
		t.Errorf("final shards = %d, want 3 from the trailing event", shards1)
	}
	if len(r1.ShardOccupancy) != 3 {
		t.Errorf("occupancy rows = %d, want 3", len(r1.ShardOccupancy))
	}
	var live uint64
	for _, so := range r1.ShardOccupancy {
		live += uint64(so.Served)
	}
	if live+uint64(r1.RetiredServed) != r1.Served {
		t.Errorf("live %d + retired %d != served %d", live, r1.RetiredServed, r1.Served)
	}
	if !reflect.DeepEqual(r1.ShardOccupancy, r2.ShardOccupancy) ||
		r1.RetiredServed != r2.RetiredServed {
		t.Errorf("event timeline not deterministic:\n  %+v retired %d\n  %+v retired %d",
			r1.ShardOccupancy, r1.RetiredServed, r2.ShardOccupancy, r2.RetiredServed)
	}
}

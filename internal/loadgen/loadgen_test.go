package loadgen

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

func smallGen(t testing.TB, users int) *workload.Generator {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(u, users, 7)
	cfg.FavNavRanks = 2000
	cfg.FavNonNavRanks = 6000
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallContent(t testing.TB, g *workload.Generator) cachegen.Content {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	n, err := cachegen.SelectByShare(tbl, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	return cachegen.Generate(tbl, g.Config().Universe, n)
}

// newRig builds a fleet with a collector installed as its observer.
func newRig(t testing.TB, g *workload.Generator, content cachegen.Content) (*fleet.Fleet, *Collector) {
	t.Helper()
	col := NewCollector()
	f, err := fleet.New(fleet.Config{
		Engine:     engine.New(g.Config().Universe),
		Content:    content,
		Shards:     4,
		Workers:    2,
		QueueDepth: 4096,
		Observer:   col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, col
}

func TestRunValidation(t *testing.T) {
	g := smallGen(t, 16)
	f, col := newRig(t, g, smallContent(t, g))
	if _, err := RunOpen(nil, col, g, OpenConfig{QPS: 1, Duration: time.Second}); err == nil {
		t.Error("nil fleet should fail")
	}
	if _, err := RunOpen(f, col, g, OpenConfig{QPS: 0, Duration: time.Second}); err == nil {
		t.Error("zero QPS should fail")
	}
	if _, err := RunOpen(f, col, g, OpenConfig{QPS: 10, Duration: 0}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := RunClosed(f, col, g, ClosedConfig{Users: 0}); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := RunClosed(f, col, g, ClosedConfig{Users: 100}); err == nil {
		t.Error("more users than population should fail")
	}
}

// TestClosedLoopDeterministic runs the same closed-loop experiment on
// two fresh fleets and expects every seed-deterministic field of the
// report to agree bit-for-bit, concurrency notwithstanding.
func TestClosedLoopDeterministic(t *testing.T) {
	g := smallGen(t, 160)
	content := smallContent(t, g)
	cfg := ClosedConfig{Users: 160, Month: 1, Seed: 9}

	run := func() Report {
		f, col := newRig(t, g, content)
		r, err := RunClosed(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()

	if r1.Shed != 0 || r2.Shed != 0 {
		t.Fatalf("closed loop shed requests (%d, %d); determinism undefined", r1.Shed, r2.Shed)
	}
	if r1.Requests != r2.Requests || r1.Served != r2.Served ||
		r1.PersonalHits != r2.PersonalHits || r1.CommunityHits != r2.CommunityHits ||
		r1.CloudMisses != r2.CloudMisses {
		t.Errorf("counters differ:\n  %+v\n  %+v", r1, r2)
	}
	if r1.HitRate != r2.HitRate || r1.MeanUserHitRate != r2.MeanUserHitRate {
		t.Errorf("hit rates differ: %v/%v vs %v/%v",
			r1.HitRate, r1.MeanUserHitRate, r2.HitRate, r2.MeanUserHitRate)
	}
	for class, hr := range r1.ClassHitRate {
		if r2.ClassHitRate[class] != hr {
			t.Errorf("class %s hit rate differs: %v vs %v", class, hr, r2.ClassHitRate[class])
		}
	}
	// The modeled-latency histogram is order-independent, so its whole
	// summary is reproducible even though workers interleave freely.
	if r1.Model != r2.Model {
		t.Errorf("model latency summaries differ:\n  %+v\n  %+v", r1.Model, r2.Model)
	}
	if r1.PersonalBytes != r2.PersonalBytes || r1.ResidentUsers != r2.ResidentUsers {
		t.Errorf("residency differs: %d/%d vs %d/%d",
			r1.PersonalBytes, r1.ResidentUsers, r2.PersonalBytes, r2.ResidentUsers)
	}
}

// TestClosedLoopMatchesReplay checks the paper-shape acceptance: the
// fleet's closed-loop mean per-user hit rate lands on the replay
// harness's Full-mode number (~65%, Figure 17) for the same users.
func TestClosedLoopMatchesReplay(t *testing.T) {
	g := smallGen(t, 160)
	content := smallContent(t, g)

	f, col := newRig(t, g, content)
	r, err := RunClosed(f, col, g, ClosedConfig{Users: 160, Month: 1})
	if err != nil {
		t.Fatal(err)
	}

	res, err := replay.Run(replay.Config{Gen: g, Content: content, Mode: replay.Full, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, uo := range res.Users {
		if uo.Volume > 0 {
			sum += uo.HitRate()
			n++
		}
	}
	want := sum / float64(n)

	if diff := math.Abs(r.MeanUserHitRate - want); diff > 1e-9 {
		t.Errorf("closed-loop mean user hit rate %.6f, replay %.6f (diff %g)",
			r.MeanUserHitRate, want, diff)
	}
	if r.MeanUserHitRate < 0.45 || r.MeanUserHitRate > 0.9 {
		t.Errorf("mean user hit rate %.3f outside the paper's plausible band", r.MeanUserHitRate)
	}
	if r.CommunityHits == 0 || r.PersonalHits == 0 || r.CloudMisses == 0 {
		t.Errorf("expected all three tiers exercised: %+v", r)
	}
	// Per-user accounting is carried for downstream analysis.
	if len(r.Outcomes) != 160 {
		t.Errorf("outcomes = %d, want 160", len(r.Outcomes))
	}
}

// TestOpenLoopSchedule checks the open-loop arrival count is a pure
// function of (seed, QPS, duration) and the report is consistent.
func TestOpenLoopSchedule(t *testing.T) {
	g := smallGen(t, 64)
	content := smallContent(t, g)
	cfg := OpenConfig{QPS: 5000, Duration: 200 * time.Millisecond, Month: 1, Seed: 11}

	run := func() Report {
		f, col := newRig(t, g, content)
		r, err := RunOpen(f, col, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Requests != r2.Requests {
		t.Errorf("arrival counts differ across runs: %d vs %d", r1.Requests, r2.Requests)
	}
	if r1.Requests == 0 {
		t.Fatal("no arrivals scheduled")
	}
	if r1.Served+r1.Shed+r1.Errors != r1.Requests {
		t.Errorf("served %d + shed %d + errors %d != requests %d",
			r1.Served, r1.Shed, r1.Errors, r1.Requests)
	}
	if r1.Mode != "open" || r1.OfferedQPS != cfg.QPS || r1.ServedQPS <= 0 {
		t.Errorf("report inconsistent: %+v", r1)
	}
	if r1.Wall.Count != r1.Served || r1.Model.Count != r1.Served {
		t.Errorf("histogram counts %d/%d, want %d", r1.Wall.Count, r1.Model.Count, r1.Served)
	}
	// A different seed draws a different Poisson schedule.
	cfg.Seed = 12
	f, col := newRig(t, g, content)
	r3, err := RunOpen(f, col, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Requests == r1.Requests {
		t.Logf("note: different seeds drew equal arrival counts (%d); merely unlikely", r1.Requests)
	}
}

func TestReportJSON(t *testing.T) {
	g := smallGen(t, 32)
	f, col := newRig(t, g, smallContent(t, g))
	r, err := RunClosed(f, col, g, ClosedConfig{Users: 20, Month: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "seed", "requests", "hit_rate",
		"mean_user_hit_rate", "shed_rate", "wall_latency", "model_latency"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	if _, ok := m["Outcomes"]; ok {
		t.Error("per-user outcomes must not be serialized")
	}
	if r.String() == "" {
		t.Error("human-readable summary is empty")
	}
}

func TestCollectorObserve(t *testing.T) {
	col := NewCollector()
	col.Observe(fleet.Response{Shed: true})
	col.Observe(fleet.Response{Err: errors.New("boom")})
	col.Observe(fleet.Response{Source: fleet.SourceCommunity, Wall: time.Millisecond})
	wall, _, shed, errs, bySource := col.snapshot()
	if shed != 1 || errs != 1 || wall.Count() != 1 || bySource[fleet.SourceCommunity] != 1 {
		t.Errorf("collector state wrong: shed=%d errs=%d wall=%d", shed, errs, wall.Count())
	}
	col.Reset()
	wall, _, shed, errs, _ = col.snapshot()
	if shed != 0 || errs != 0 || wall.Count() != 0 {
		t.Error("Reset did not clear the collector")
	}
}

func TestTape(t *testing.T) {
	g := smallGen(t, 16)
	up := g.Users()[3]
	tape := Tape(g, up, 1)
	stream := g.UserStream(up, 1)
	if len(tape) != len(stream) {
		t.Fatalf("tape length %d, want %d", len(tape), len(stream))
	}
	for i, req := range tape {
		if req.User != up.ID || req.Query == "" || req.Click == "" {
			t.Fatalf("tape entry %d malformed: %+v", i, req)
		}
	}
}

// Package loadgen drives a fleet (internal/fleet) with calibrated
// load and measures it, the way the milvus-benchmark and ReqBench
// style harnesses measure a serving system:
//
//   - Open loop: requests arrive on a model-timestamped schedule drawn
//     from internal/modeltime — homogeneous Poisson at a target QPS, a
//     diurnal rate curve with the same total arrivals, or per-user
//     renewal processes weighted by workload class — replayed against
//     the fleet regardless of how fast it keeps up: overload shows up
//     as queue sheds and wall-latency inflation, never as a silently
//     slowed-down generator.
//   - Closed loop: K concurrent simulated users each replay their own
//     workload stream (internal/workload cursor) and wait for each
//     response before issuing the next query, reusing the replay
//     harness's per-user outcome accounting so fleet hit rates are
//     directly comparable with the paper's Figure 17 numbers. With a
//     Pacer configured the user also "thinks" for their modeled
//     response time (wall-compressed), which changes concurrency and
//     wall timing but — by construction — no per-user outcome.
//
// Both record per-request latency into log-bucketed histograms — the
// measured wall latency including queue wait, and the modeled
// on-device response time, which is deterministic given the workload
// seed — plus throughput, hit-, miss- and shed-rates, emitted as a
// machine-readable Report.
//
// Reports also account modeled energy: total and per-query joules
// (device base power plus radio), radio-only joules per cloud miss,
// and — when the fleet coalesces misses (fleet.BatchOptions) — the
// batched-session counters (batches, batched misses, radio wake-ups,
// batch-size histogram) needed to quantify how much session overhead
// batching amortized. Serving counters (served/shed/errors and the
// per-tier hit counts) are taken from before/after deltas of the
// fleet's own Stats, so they are authoritative even if the collector
// observes only part of the traffic; the latency histograms and energy
// sums require the collector to be installed as the fleet's Observer,
// and the runners refuse to start when no observer is wired at all.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pocketcloudlets/internal/autoscale"
	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/energy"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// counters is the aggregate a Collector accumulates.
type counters struct {
	wall     Histogram
	model    Histogram
	shed     uint64
	errors   uint64
	canceled uint64
	// bySource is a fixed array indexed by fleet.Source — no map churn
	// on the per-response observation path.
	bySource [fleet.NumSources]uint64
	// Modeled energy sums over observed non-error responses: total,
	// radio-only, and radio-only restricted to cloud misses.
	energyJ    float64
	radioJ     float64
	missRadioJ float64
	// wakeups counts cold radio wake-ups paid by unbatched misses;
	// batched sessions' wake-ups are in fleet.BatchStats.
	wakeups       uint64
	batchedMisses uint64
}

func newCounters() *counters { return &counters{} }

// observe books one response into the aggregate. Caller holds the
// owning stripe's lock.
func (c *counters) observe(r fleet.Response) {
	if r.Canceled {
		c.canceled++
		return
	}
	if r.Shed {
		c.shed++
		return
	}
	if r.Err != nil {
		c.errors++
		return
	}
	c.wall.Observe(r.Wall)
	c.model.Observe(r.Outcome.ResponseTime())
	c.bySource[r.Source]++
	c.energyJ += r.EnergyJ
	c.radioJ += r.RadioJ
	if r.Source == fleet.SourceCloud {
		c.missRadioJ += r.RadioJ
		if r.BatchSize > 0 {
			c.batchedMisses++
		} else if !r.Outcome.Radio.WasWarm {
			c.wakeups++
		}
	}
}

// merge folds another aggregate into this one. Everything is additive
// (histograms merge bucket-wise), so merging stripes in any fixed
// order yields the same counters; only the float energy sums are
// order-sensitive, and stripes are always merged in index order.
func (c *counters) merge(o *counters) {
	c.wall.Merge(&o.wall)
	c.model.Merge(&o.model)
	c.shed += o.shed
	c.errors += o.errors
	c.canceled += o.canceled
	for i := range c.bySource {
		c.bySource[i] += o.bySource[i]
	}
	c.energyJ += o.energyJ
	c.radioJ += o.radioJ
	c.missRadioJ += o.missRadioJ
	c.wakeups += o.wakeups
	c.batchedMisses += o.batchedMisses
}

// collectorStripes is the Collector's lock-stripe count. Responses
// stripe by user ID, so one stripe sees all of a user's responses and
// a wide fleet's workers stop serializing on a single observer mutex.
const collectorStripes = 16

// collectorStripe is one independently locked slice of the collector.
// Padded out to its own cache lines would be overkill here: the mutex
// hold times (a histogram bump) dominate any false sharing.
type collectorStripe struct {
	mu      sync.Mutex
	c       counters
	byClass map[string]*counters
}

// Collector aggregates fleet responses into histograms and counters.
// Install it as the fleet's Observer (fleet.Config.Observer) before
// running a load phase. Observe is safe for concurrent use — internally
// lock-striped by user ID so fleet workers do not serialize on one
// mutex. Responses carrying a Request.Class tag are additionally booked
// into a per-class aggregate, which reports surface as per-SLO-class
// breakdowns.
type Collector struct {
	stripes [collectorStripes]collectorStripe
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// Observe implements fleet.Observer.
func (c *Collector) Observe(r fleet.Response) {
	s := &c.stripes[uint64(r.Req.User)%collectorStripes]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.observe(r)
	if cls := r.Req.Class; cls != "" {
		cc := s.byClass[cls]
		if cc == nil {
			if s.byClass == nil {
				s.byClass = make(map[string]*counters)
			}
			cc = newCounters()
			s.byClass[cls] = cc
		}
		cc.observe(r)
	}
}

// Reset clears the collector for a fresh load phase.
func (c *Collector) Reset() {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		s.c = *newCounters()
		s.byClass = nil
		s.mu.Unlock()
	}
}

// snapshot merges the stripes into one aggregate.
func (c *Collector) snapshot() counters {
	var out counters
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		out.merge(&s.c)
		s.mu.Unlock()
	}
	return out
}

// classSnapshot merges the per-class aggregates across stripes.
func (c *Collector) classSnapshot() map[string]*counters {
	out := make(map[string]*counters)
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for k, v := range s.byClass {
			agg := out[k]
			if agg == nil {
				agg = newCounters()
				out[k] = agg
			}
			agg.merge(v)
		}
		s.mu.Unlock()
	}
	return out
}

// Report is the machine-readable result of one load phase. Counters
// and the modeled-latency summary are deterministic given the workload
// seed (when nothing was shed); wall-clock figures are measurements.
type Report struct {
	Mode string `json:"mode"`
	// Scenario names the scenario (file or preset) that produced the
	// run; empty for plain flag-driven runs.
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed"`
	Users    int    `json:"users"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`

	Requests uint64 `json:"requests"`
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`

	PersonalHits  uint64 `json:"personal_hits"`
	CommunityHits uint64 `json:"community_hits"`
	CloudMisses   uint64 `json:"cloud_misses"`

	// Degraded and Unavailable are the fault model's fallback serves
	// (stale cached answers and explicit "unavailable" pages); Canceled
	// counts requests abandoned by their caller's context. Retries,
	// Exhausted and BreakerOpens quantify the retry machinery. All zero
	// when fault injection is off.
	Degraded     uint64 `json:"degraded,omitempty"`
	Unavailable  uint64 `json:"unavailable,omitempty"`
	Canceled     uint64 `json:"canceled,omitempty"`
	Retries      int64  `json:"retries,omitempty"`
	Exhausted    int64  `json:"exhausted,omitempty"`
	BreakerOpens int64  `json:"breaker_opens,omitempty"`
	// Hedging counters (replicated cloud backends): Replicas is the
	// configured backend replica count; ClonesLaunched counts hedge
	// clones dispatched to secondary replicas, CloneWins / PrimaryWins
	// split hedged cloud misses by which dispatch answered first, and
	// WastedAttempts counts clone ladder attempts charged to the radio
	// waste budget without contributing the answer. Cross-footing:
	// hedged misses = PrimaryWins + CloneWins, and wasted clones
	// (ClonesLaunched − CloneWins) never exceed ClonesLaunched.
	// ReplicaBreakerOpens breaks BreakerOpens down per replica when the
	// fleet runs more than one. All zero/absent without hedging.
	Replicas            int     `json:"replicas,omitempty"`
	ClonesLaunched      int64   `json:"clones_launched,omitempty"`
	PrimaryWins         int64   `json:"hedged_primary_wins,omitempty"`
	CloneWins           int64   `json:"clone_wins,omitempty"`
	WastedAttempts      int64   `json:"wasted_attempts,omitempty"`
	ReplicaBreakerOpens []int64 `json:"replica_breaker_opens,omitempty"`
	// AnsweredRate is the fraction of served requests that got real
	// results, fresh or stale — the availability headline under faults.
	AnsweredRate float64 `json:"answered_rate"`

	HitRate float64 `json:"hit_rate"`
	// MeanUserHitRate averages per-user hit rates — the paper's
	// Figure 17 metric. Closed loop computes it from per-user outcome
	// accounting; open and trace runs take it from the fleet's resident
	// counters (fleet.MeanUserHitRate), which is what the capacity
	// study's hit-rate-invariance check compares across population
	// sizes.
	MeanUserHitRate float64 `json:"mean_user_hit_rate"`
	// ClassHitRate is the mean per-user hit rate by user class
	// (closed loop only).
	ClassHitRate map[string]float64 `json:"class_hit_rate,omitempty"`
	ShedRate     float64            `json:"shed_rate"`

	ElapsedNS int64 `json:"elapsed_ns"`
	// OfferedQPS is the generator's target mean arrival rate (open loop).
	OfferedQPS float64 `json:"offered_qps"`
	// ServedQPS is completed requests per wall-clock second.
	ServedQPS float64 `json:"served_qps"`
	// MaxScheduleLagNS is how far the open-loop generator fell behind
	// its arrival schedule at worst (a saturated generator, not fleet).
	MaxScheduleLagNS int64 `json:"max_schedule_lag_ns,omitempty"`

	// Arrivals names the open-loop arrival process ("poisson",
	// "diurnal" or "peruser"); DiurnalPeak is the configured diurnal
	// peak/trough rate ratio (diurnal runs only).
	Arrivals    string  `json:"arrivals,omitempty"`
	DiurnalPeak float64 `json:"diurnal_peak,omitempty"`
	// OfferedCurve is the measured per-bucket arrival view of an
	// open-loop run: what the generator offered, what backpressure shed,
	// and the resulting rates — the curve that makes a diurnal overload
	// visible where run-wide aggregates hide it.
	OfferedCurve []RateBucket `json:"offered_curve,omitempty"`
	// PeakTroughServedRatio is max/min served QPS across the offered
	// curve's buckets (buckets that offered nothing are skipped) — the
	// measured counterpart of the configured DiurnalPeak.
	PeakTroughServedRatio float64 `json:"peak_trough_served_ratio,omitempty"`
	// ModelMakespanNS is the fleet-wide model-time makespan after the
	// run: the furthest any model clock advanced serving its requests.
	ModelMakespanNS int64 `json:"model_makespan_ns,omitempty"`
	// Paced and PaceScale record closed-loop think-time pacing. Pacing
	// is wall-only; it never changes per-user outcomes.
	Paced     bool    `json:"paced,omitempty"`
	PaceScale float64 `json:"pace_scale,omitempty"`

	// Wall is measured submit-to-completion latency including queue
	// wait; Model is the modeled on-device response time.
	Wall  LatencySummary `json:"wall_latency"`
	Model LatencySummary `json:"model_latency"`

	// EnergyJ is the total modeled energy over observed responses
	// (device base power over modeled response time, plus radio);
	// EnergyPerQueryJ divides it by observed responses.
	EnergyJ         float64 `json:"energy_j"`
	EnergyPerQueryJ float64 `json:"energy_per_query_j"`
	// RadioEnergyJ is the radio-only share; RadioEnergyPerMissJ divides
	// the cloud misses' radio energy by the miss count — the headline
	// number miss batching drives down.
	RadioEnergyJ        float64 `json:"radio_energy_j"`
	RadioEnergyPerMissJ float64 `json:"radio_energy_per_miss_j"`
	// RadioWakeups counts cold radio wake-ups paid during the run: one
	// per session-opening unbatched miss plus one per batched session.
	RadioWakeups uint64 `json:"radio_wakeups"`

	// Batches and BatchedMisses count coalesced radio sessions and the
	// misses they carried (zero when batching is disabled); MeanBatchSize
	// is misses per session, and BatchSizes the per-size session counts.
	Batches       int64            `json:"batches,omitempty"`
	BatchedMisses int64            `json:"batched_misses,omitempty"`
	MeanBatchSize float64          `json:"mean_batch_size,omitempty"`
	BatchSizes    map[string]int64 `json:"batch_sizes,omitempty"`

	// PersonalBytes is the fleet's personal flash footprint after the
	// run; ResidentUsers the number of materialized personal states.
	PersonalBytes int64 `json:"personal_bytes"`
	ResidentUsers int   `json:"resident_users"`
	// HeapAllocBytes is the Go heap in use at the end of the run
	// (runtime.MemStats.HeapAlloc) — the process-memory side of the
	// capacity model's users-vs-RSS curve. A measurement of this
	// process, not a modeled quantity.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`

	// Placement names the routing policy ("modulo" or "ring").
	Placement string `json:"placement,omitempty"`
	// ShardOccupancy is the end-of-run snapshot of per-shard serving
	// and residency — the skew view a fleet-wide aggregate hides. The
	// counters are cumulative over the fleet's lifetime, which equals
	// the run for the freshly built fleets the CLI drives.
	ShardOccupancy []ShardOccupancy `json:"shard_occupancy,omitempty"`
	// ShardSkew is max/mean served across shards; 1.0 is perfectly even.
	ShardSkew float64 `json:"shard_skew,omitempty"`

	// Migration counters for live resizes performed during the run
	// (OpenConfig/ClosedConfig ResizeTo); all zero when no resize ran.
	Resizes                int64 `json:"resizes,omitempty"`
	MigratedUsers          int64 `json:"migrated_users,omitempty"`
	MigratedBytes          int64 `json:"migrated_bytes,omitempty"`
	MigrationTransferBytes int64 `json:"migration_transfer_bytes,omitempty"`
	DroppedUsers           int64 `json:"dropped_users,omitempty"`
	HeldRequests           int64 `json:"held_requests,omitempty"`
	// RetiredServed/RetiredShed are the serving counters of shards a
	// shrink retired; together with ShardOccupancy they cross-foot
	// against Served/Shed (cmd/loadtest -check). Like ShardOccupancy
	// the counters are cumulative over the fleet's lifetime, which
	// equals the run for the freshly built fleets the CLI drives.
	// Absent unless a shrink actually retired shards.
	RetiredServed int64 `json:"retired_served,omitempty"`
	RetiredShed   int64 `json:"retired_shed,omitempty"`

	// Energy is the fleet energy ledger for the run: the device-side
	// joules broken down radio vs baseline, the shard-side (cloudlet
	// server) idle floor and active increment, and the whole-system
	// total per answered query. Always present; cmd/reportnorm strips
	// it by default so byte-identity smokes keep passing.
	Energy *EnergyReport `json:"energy,omitempty"`
	// Autoscale summarizes the occupancy-driven controller's run:
	// samples taken, resize actions fired and the bounds they respected.
	// Absent when autoscaling is off.
	Autoscale *AutoscaleReport `json:"autoscale,omitempty"`

	// Backend is the per-replica accounting of the modeled cloud servers
	// (scenario fleet.backend / loadtest -backend-rate), as run deltas.
	// Cross-footing (cmd/loadtest -check): arrivals = served + rejected
	// + abandoned on every replica. Absent without the backend model.
	Backend []BackendReport `json:"backend,omitempty"`

	// Classes breaks the run down per SLO class when requests were
	// tagged (scenario runs): latency histograms, per-tier counters and
	// energy deltas per class, sorted by class name. Sourced from the
	// collector, so it covers exactly the observed responses.
	Classes []ClassReport `json:"classes,omitempty"`

	// Outcomes carries per-user accounting for further analysis
	// (closed loop only; not serialized).
	Outcomes []replay.UserOutcome `json:"-"`
}

// ClassReport is one SLO class's slice of a tagged run: the same
// headline counters, latency summaries and energy sums as the
// fleet-wide report, restricted to responses carrying the class tag.
type ClassReport struct {
	Class    string `json:"class"`
	Requests uint64 `json:"requests"`
	// Served counts completed requests including errored ones, matching
	// the fleet-wide convention.
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors,omitempty"`
	Canceled uint64 `json:"canceled,omitempty"`

	PersonalHits  uint64 `json:"personal_hits"`
	CommunityHits uint64 `json:"community_hits"`
	CloudMisses   uint64 `json:"cloud_misses"`
	Degraded      uint64 `json:"degraded,omitempty"`
	Unavailable   uint64 `json:"unavailable,omitempty"`

	HitRate      float64 `json:"hit_rate"`
	ShedRate     float64 `json:"shed_rate"`
	AnsweredRate float64 `json:"answered_rate"`

	Wall  LatencySummary `json:"wall_latency"`
	Model LatencySummary `json:"model_latency"`

	EnergyJ             float64 `json:"energy_j"`
	EnergyPerQueryJ     float64 `json:"energy_per_query_j"`
	RadioEnergyJ        float64 `json:"radio_energy_j"`
	RadioEnergyPerMissJ float64 `json:"radio_energy_per_miss_j"`
}

// BackendReport is one modeled cloud replica's row in Report.Backend.
type BackendReport struct {
	Replica   int   `json:"replica"`
	Arrivals  int64 `json:"arrivals"`
	Served    int64 `json:"served"`
	Rejected  int64 `json:"rejected,omitempty"`
	Abandoned int64 `json:"abandoned,omitempty"`
	// Utilization is charged busy time over the model horizon (above 1
	// the replica was offered more work than time passed); BusyNS the
	// busy time itself, ReclaimedNS the service cancel-on-win returned.
	Utilization float64 `json:"utilization"`
	BusyNS      int64   `json:"busy_ns"`
	ReclaimedNS int64   `json:"reclaimed_ns,omitempty"`
	// MeanWaitNS and P99WaitNS summarize the queue waits non-rejected
	// dispatches experienced.
	MeanWaitNS int64 `json:"mean_wait_ns"`
	P99WaitNS  int64 `json:"p99_wait_ns"`
	// AbandonedWorkFraction is the share of busy time burned on
	// dispatches nobody consumed — the clone-storm waste metric.
	AbandonedWorkFraction float64 `json:"abandoned_work_fraction,omitempty"`
}

// backendReport folds one replica's stats delta into its report row.
func backendReport(replica int, bs backend.ReplicaStats) BackendReport {
	return BackendReport{
		Replica:               replica,
		Arrivals:              bs.Arrivals,
		Served:                bs.Served,
		Rejected:              bs.Rejected,
		Abandoned:             bs.Abandoned,
		Utilization:           bs.Utilization(),
		BusyNS:                bs.BusyNs,
		ReclaimedNS:           bs.ReclaimedNs,
		MeanWaitNS:            int64(bs.MeanWait()),
		P99WaitNS:             int64(bs.P99Wait()),
		AbandonedWorkFraction: bs.AbandonedWorkFraction(),
	}
}

// EnergyReport is the run's energy ledger (fleet.EnergyStats deltas),
// in joules. Cross-footing (cmd/loadtest -check): DeviceJ =
// DeviceBaseJ + RadioJ and tracks the collector's energy_j sum within
// fixed-point rounding; ShardJ = ShardIdleJ + ShardActiveJ; FleetJ =
// DeviceJ + ShardJ; PerAnsweredJ = FleetJ over answered requests.
type EnergyReport struct {
	// DeviceBaseJ is the devices' screen+CPU baseline over modeled
	// response time; RadioJ their extra radio draw; DeviceJ the sum —
	// the device-side energy the reports have always totaled.
	DeviceBaseJ float64 `json:"device_base_j"`
	RadioJ      float64 `json:"radio_j"`
	DeviceJ     float64 `json:"device_j"`
	// ShardIdleJ is the provisioned shards' idle floor — what a shard
	// burns just by existing, the term autoscaling reclaims on the
	// trough; ShardActiveJ the active increment over busy time; ShardJ
	// the cloudlet-server-side sum.
	ShardIdleJ   float64 `json:"shard_idle_j"`
	ShardActiveJ float64 `json:"shard_active_j"`
	ShardJ       float64 `json:"shard_j"`
	// FleetJ is the whole-system total; PerAnsweredJ divides it by the
	// requests that got real results (served − unavailable) — the
	// headline joules-per-answered-query metric of the autoscaling
	// study.
	FleetJ       float64 `json:"fleet_j"`
	PerAnsweredJ float64 `json:"per_answered_j,omitempty"`
}

// AutoscaleReport summarizes the occupancy-driven controller's run.
type AutoscaleReport struct {
	IntervalNS int64 `json:"interval_ns"`
	Min        int   `json:"min"`
	Max        int   `json:"max"`
	// Samples counts occupancy observations; MeanOccupancy averages
	// them. FinalShards is the topology size the run ended with.
	Samples       int     `json:"samples"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	FinalShards   int     `json:"final_shards"`
	// Actions are the resizes the controller fired, in order.
	Actions []AutoscaleAction `json:"actions,omitempty"`
}

// AutoscaleAction is one controller-driven resize.
type AutoscaleAction struct {
	AtNS      int64   `json:"at_ns"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	Occupancy float64 `json:"occupancy"`
}

// classReport folds one class's counters into its report row.
func classReport(name string, c *counters) ClassReport {
	observed := c.bySource[fleet.SourcePersonal] + c.bySource[fleet.SourceCommunity] + c.bySource[fleet.SourceCloud] +
		c.bySource[fleet.SourceDegraded] + c.bySource[fleet.SourceUnavailable]
	cr := ClassReport{
		Class:         name,
		Served:        observed + c.errors,
		Shed:          c.shed,
		Errors:        c.errors,
		Canceled:      c.canceled,
		PersonalHits:  c.bySource[fleet.SourcePersonal],
		CommunityHits: c.bySource[fleet.SourceCommunity],
		CloudMisses:   c.bySource[fleet.SourceCloud],
		Degraded:      c.bySource[fleet.SourceDegraded],
		Unavailable:   c.bySource[fleet.SourceUnavailable],
		Wall:          c.wall.Summary(),
		Model:         c.model.Summary(),
		EnergyJ:       c.energyJ,
		RadioEnergyJ:  c.radioJ,
	}
	cr.Requests = cr.Served + cr.Shed + cr.Canceled
	if cr.Served > 0 {
		cr.HitRate = float64(cr.PersonalHits+cr.CommunityHits) / float64(cr.Served)
		cr.AnsweredRate = float64(cr.Served-cr.Unavailable) / float64(cr.Served)
	}
	if cr.Requests > 0 {
		cr.ShedRate = float64(cr.Shed) / float64(cr.Requests)
	}
	if observed > 0 {
		cr.EnergyPerQueryJ = c.energyJ / float64(observed)
	}
	if misses := cr.CloudMisses; misses > 0 {
		cr.RadioEnergyPerMissJ = c.missRadioJ / float64(misses)
	}
	return cr
}

// ShardOccupancy is one shard's row in Report.ShardOccupancy.
type ShardOccupancy struct {
	Shard         int   `json:"shard"`
	Served        int64 `json:"served"`
	Shed          int64 `json:"shed,omitempty"`
	Users         int   `json:"users"`
	PersonalBytes int64 `json:"personal_bytes"`
}

// RateBucket is one time slice of an open-loop run's offered curve.
// Offered counts arrivals scheduled into the bucket; Shed is how many
// of them backpressure rejected; the QPS fields divide by the bucket's
// width. Bucketing is by scheduled arrival time, so the curve is
// deterministic given the spec even when the generator lags.
type RateBucket struct {
	StartNS    int64   `json:"start_ns"`
	EndNS      int64   `json:"end_ns"`
	Offered    uint64  `json:"offered"`
	Shed       uint64  `json:"shed,omitempty"`
	OfferedQPS float64 `json:"offered_qps"`
	ServedQPS  float64 `json:"served_qps"`
}

// JSON renders the report as indented JSON.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	mode := r.Mode
	if r.Scenario != "" {
		mode = fmt.Sprintf("%s [scenario %s]", r.Mode, r.Scenario)
	}
	fmt.Fprintf(&b, "%s load: %d requests in %v (%.0f served QPS", mode, r.Requests, time.Duration(r.ElapsedNS).Round(time.Millisecond), r.ServedQPS)
	if r.OfferedQPS > 0 {
		fmt.Fprintf(&b, ", %.0f offered", r.OfferedQPS)
	}
	fmt.Fprintf(&b, ")\n")
	if r.Arrivals != "" && r.Arrivals != "poisson" {
		fmt.Fprintf(&b, "  arrivals: %s", r.Arrivals)
		if r.DiurnalPeak > 0 {
			fmt.Fprintf(&b, " (peak/trough %.1f:1 configured", r.DiurnalPeak)
			if r.PeakTroughServedRatio > 0 {
				fmt.Fprintf(&b, ", %.1f:1 served", r.PeakTroughServedRatio)
			}
			fmt.Fprintf(&b, ")")
		} else if r.PeakTroughServedRatio > 0 {
			fmt.Fprintf(&b, " (peak/trough %.1f:1 served)", r.PeakTroughServedRatio)
		}
		fmt.Fprintf(&b, "\n")
	}
	if r.Paced {
		fmt.Fprintf(&b, "  paced: think time at %.3gx modeled response time\n", r.PaceScale)
	}
	fmt.Fprintf(&b, "  served %d  shed %d (%.2f%%)  errors %d\n", r.Served, r.Shed, 100*r.ShedRate, r.Errors)
	fmt.Fprintf(&b, "  hit rate %.1f%% (personal %d, community %d, cloud misses %d)\n",
		100*r.HitRate, r.PersonalHits, r.CommunityHits, r.CloudMisses)
	if r.Degraded+r.Unavailable > 0 || r.Retries > 0 || r.Exhausted > 0 {
		fmt.Fprintf(&b, "  faults: answered %.1f%% (degraded %d, unavailable %d, retries %d, exhausted %d, breaker opens %d)\n",
			100*r.AnsweredRate, r.Degraded, r.Unavailable, r.Retries, r.Exhausted, r.BreakerOpens)
	}
	if r.Canceled > 0 {
		fmt.Fprintf(&b, "  canceled %d\n", r.Canceled)
	}
	if r.Replicas > 1 || r.ClonesLaunched > 0 {
		fmt.Fprintf(&b, "  hedging: %d replicas, %d clones launched, wins primary %d / clone %d, wasted attempts %d",
			r.Replicas, r.ClonesLaunched, r.PrimaryWins, r.CloneWins, r.WastedAttempts)
		if len(r.ReplicaBreakerOpens) > 0 {
			parts := make([]string, len(r.ReplicaBreakerOpens))
			for i, n := range r.ReplicaBreakerOpens {
				parts[i] = strconv.FormatInt(n, 10)
			}
			fmt.Fprintf(&b, ", breaker opens by replica [%s]", strings.Join(parts, " "))
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, br := range r.Backend {
		fmt.Fprintf(&b, "  backend replica %d: util %.2f  wait mean %s p99 %s  (%d arrivals: %d served, %d rejected, %d abandoned",
			br.Replica, br.Utilization, time.Duration(br.MeanWaitNS).Round(10*time.Microsecond),
			time.Duration(br.P99WaitNS).Round(10*time.Microsecond),
			br.Arrivals, br.Served, br.Rejected, br.Abandoned)
		if br.ReclaimedNS > 0 {
			fmt.Fprintf(&b, ", reclaimed %v", time.Duration(br.ReclaimedNS).Round(time.Microsecond))
		}
		if br.AbandonedWorkFraction > 0 {
			fmt.Fprintf(&b, ", %.1f%% work abandoned", 100*br.AbandonedWorkFraction)
		}
		fmt.Fprintf(&b, ")\n")
	}
	if r.MeanUserHitRate > 0 {
		fmt.Fprintf(&b, "  mean per-user hit rate %.1f%%", 100*r.MeanUserHitRate)
		if len(r.ClassHitRate) > 0 {
			classes := make([]string, 0, len(r.ClassHitRate))
			for c := range r.ClassHitRate {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			parts := make([]string, 0, len(classes))
			for _, c := range classes {
				parts = append(parts, fmt.Sprintf("%s %.1f%%", c, 100*r.ClassHitRate[c]))
			}
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
		}
		fmt.Fprintf(&b, "\n")
	}
	ms := func(ns int64) string { return time.Duration(ns).Round(10 * time.Microsecond).String() }
	fmt.Fprintf(&b, "  wall latency  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		ms(r.Wall.P50NS), ms(r.Wall.P90NS), ms(r.Wall.P99NS), ms(r.Wall.P999NS), ms(r.Wall.MaxNS))
	fmt.Fprintf(&b, "  model latency p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		ms(r.Model.P50NS), ms(r.Model.P90NS), ms(r.Model.P99NS), ms(r.Model.P999NS), ms(r.Model.MaxNS))
	if r.ModelMakespanNS > 0 {
		fmt.Fprintf(&b, "  model makespan %v\n", time.Duration(r.ModelMakespanNS).Round(time.Microsecond))
	}
	if r.EnergyJ > 0 {
		fmt.Fprintf(&b, "  energy %.1f J (%.3f J/query, radio %.1f J, %.3f J/miss radio, %d wake-ups)\n",
			r.EnergyJ, r.EnergyPerQueryJ, r.RadioEnergyJ, r.RadioEnergyPerMissJ, r.RadioWakeups)
	}
	if r.Batches > 0 {
		fmt.Fprintf(&b, "  batching: %d misses in %d sessions (mean size %.2f)\n",
			r.BatchedMisses, r.Batches, r.MeanBatchSize)
	}
	if e := r.Energy; e != nil {
		fmt.Fprintf(&b, "  ledger: fleet %.1f J = device %.1f (base %.1f + radio %.1f) + shards %.1f (idle %.1f + active %.1f)",
			e.FleetJ, e.DeviceJ, e.DeviceBaseJ, e.RadioJ, e.ShardJ, e.ShardIdleJ, e.ShardActiveJ)
		if e.PerAnsweredJ > 0 {
			fmt.Fprintf(&b, "; %.3f J/answered", e.PerAnsweredJ)
		}
		fmt.Fprintf(&b, "\n")
	}
	if a := r.Autoscale; a != nil {
		fmt.Fprintf(&b, "  autoscale: %d samples (mean occupancy %.2f), %d actions within [%d, %d], final %d shards",
			a.Samples, a.MeanOccupancy, len(a.Actions), a.Min, a.Max, a.FinalShards)
		for _, act := range a.Actions {
			fmt.Fprintf(&b, " %v:%d→%d", time.Duration(act.AtNS).Round(time.Millisecond), act.From, act.To)
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, cr := range r.Classes {
		fmt.Fprintf(&b, "  class %-12s %6d req  served %6d  hit %5.1f%%  shed %5.2f%%  model p99 %s  p99.9 %s  energy %.1f J\n",
			cr.Class, cr.Requests, cr.Served, 100*cr.HitRate, 100*cr.ShedRate,
			ms(cr.Model.P99NS), ms(cr.Model.P999NS), cr.EnergyJ)
	}
	fmt.Fprintf(&b, "  personal flash %d bytes across %d resident users\n", r.PersonalBytes, r.ResidentUsers)
	if len(r.ShardOccupancy) > 0 {
		fmt.Fprintf(&b, "  shards (%s): skew %.2f;", r.Placement, r.ShardSkew)
		for _, so := range r.ShardOccupancy {
			fmt.Fprintf(&b, " [%d] %d srv/%d usr", so.Shard, so.Served, so.Users)
		}
		fmt.Fprintf(&b, "\n")
	}
	if r.Resizes > 0 {
		fmt.Fprintf(&b, "  resizes: %d (moved %d users / %d bytes, shipped %d bytes, dropped %d, held %d requests)\n",
			r.Resizes, r.MigratedUsers, r.MigratedBytes, r.MigrationTransferBytes, r.DroppedUsers, r.HeldRequests)
	}
	if r.RetiredServed+r.RetiredShed > 0 {
		fmt.Fprintf(&b, "  retired shards served %d / shed %d before retirement\n", r.RetiredServed, r.RetiredShed)
	}
	return b.String()
}

// fill populates the shared report fields. Serving counters come from
// the fleet's own Stats as before/after deltas — authoritative no
// matter how the observer is wired — while latency histograms and
// energy sums come from the collector.
func fill(r *Report, f *fleet.Fleet, col *Collector, before fleet.Stats, beforeBatch fleet.BatchStats, beforeMig fleet.MigrationStats, beforeEnergy energy.Snapshot, elapsed time.Duration) {
	cnt := col.snapshot()
	st := f.Stats()
	r.Shards = f.NumShards()
	r.Workers = f.NumWorkers()
	r.Served = uint64(st.Served - before.Served)
	r.Shed = uint64(st.Shed - before.Shed)
	r.Errors = uint64(st.Errors - before.Errors)
	r.PersonalHits = uint64(st.PersonalHits - before.PersonalHits)
	r.CommunityHits = uint64(st.CommunityHits - before.CommunityHits)
	r.CloudMisses = uint64(st.CloudMisses - before.CloudMisses)
	r.Degraded = uint64(st.Degraded - before.Degraded)
	r.Unavailable = uint64(st.Unavailable - before.Unavailable)
	r.Canceled = uint64(st.Canceled - before.Canceled)
	r.Retries = st.Retries - before.Retries
	r.Exhausted = st.Exhausted - before.Exhausted
	r.BreakerOpens = st.BreakerOpens - before.BreakerOpens
	r.Replicas = st.Replicas
	r.ClonesLaunched = st.ClonesLaunched - before.ClonesLaunched
	r.PrimaryWins = st.PrimaryWins - before.PrimaryWins
	r.CloneWins = st.CloneWins - before.CloneWins
	r.WastedAttempts = st.WastedAttempts - before.WastedAttempts
	if len(st.ReplicaBreakerOpens) > 0 {
		r.ReplicaBreakerOpens = make([]int64, len(st.ReplicaBreakerOpens))
		for i, n := range st.ReplicaBreakerOpens {
			if i < len(before.ReplicaBreakerOpens) {
				n -= before.ReplicaBreakerOpens[i]
			}
			r.ReplicaBreakerOpens[i] = n
		}
	}
	if len(st.Backend) > 0 {
		r.Backend = make([]BackendReport, len(st.Backend))
		for i, bs := range st.Backend {
			if i < len(before.Backend) {
				bs = bs.Sub(before.Backend[i])
			}
			r.Backend[i] = backendReport(i, bs)
		}
	}
	r.Requests = r.Served + r.Shed + r.Canceled
	if r.Served > 0 {
		r.HitRate = float64(r.PersonalHits+r.CommunityHits) / float64(r.Served)
		r.AnsweredRate = float64(r.Served-r.Unavailable) / float64(r.Served)
	}
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	r.ElapsedNS = int64(elapsed)
	if elapsed > 0 {
		r.ServedQPS = float64(r.Served) / elapsed.Seconds()
	}
	r.ModelMakespanNS = int64(f.ModelMakespan())
	r.Wall = cnt.wall.Summary()
	r.Model = cnt.model.Summary()

	r.EnergyJ = cnt.energyJ
	r.RadioEnergyJ = cnt.radioJ
	observed := cnt.bySource[fleet.SourcePersonal] + cnt.bySource[fleet.SourceCommunity] + cnt.bySource[fleet.SourceCloud] +
		cnt.bySource[fleet.SourceDegraded] + cnt.bySource[fleet.SourceUnavailable]
	if observed > 0 {
		r.EnergyPerQueryJ = cnt.energyJ / float64(observed)
	}
	if misses := cnt.bySource[fleet.SourceCloud]; misses > 0 {
		r.RadioEnergyPerMissJ = cnt.missRadioJ / float64(misses)
	}
	bs := f.BatchStats()
	r.Batches = bs.Batches - beforeBatch.Batches
	r.BatchedMisses = bs.BatchedMisses - beforeBatch.BatchedMisses
	r.RadioWakeups = cnt.wakeups + uint64(bs.Wakeups-beforeBatch.Wakeups)
	if r.Batches > 0 {
		r.MeanBatchSize = float64(r.BatchedMisses) / float64(r.Batches)
		r.BatchSizes = make(map[string]int64)
		for size, n := range bs.SizeCounts {
			if d := n - beforeBatch.SizeCounts[size]; d > 0 {
				r.BatchSizes[strconv.Itoa(size)] = d
			}
		}
	}

	r.PersonalBytes = st.PersonalBytes
	r.ResidentUsers = st.Users
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapAllocBytes = ms.HeapAlloc

	r.Placement = f.PlacementName()
	loads := f.ShardLoads()
	r.ShardOccupancy = make([]ShardOccupancy, len(loads))
	var servedSum, servedMax int64
	for i, sl := range loads {
		r.ShardOccupancy[i] = ShardOccupancy{
			Shard:         sl.Shard,
			Served:        sl.Served,
			Shed:          sl.Shed,
			Users:         sl.Users,
			PersonalBytes: sl.PersonalBytes,
		}
		servedSum += sl.Served
		if sl.Served > servedMax {
			servedMax = sl.Served
		}
	}
	if servedSum > 0 {
		r.ShardSkew = float64(servedMax) * float64(len(loads)) / float64(servedSum)
	}

	mig := f.MigrationStats()
	r.Resizes = mig.Resizes - beforeMig.Resizes
	r.MigratedUsers = mig.MovedUsers - beforeMig.MovedUsers
	r.MigratedBytes = mig.MovedBytes - beforeMig.MovedBytes
	r.MigrationTransferBytes = mig.TransferBytes - beforeMig.TransferBytes
	r.DroppedUsers = mig.DroppedUsers - beforeMig.DroppedUsers
	r.HeldRequests = mig.HeldRequests - beforeMig.HeldRequests
	rl := f.RetiredLoad()
	r.RetiredServed = rl.Served
	r.RetiredShed = rl.Shed

	es := f.EnergyStats()
	er := &EnergyReport{
		DeviceBaseJ:  es.DeviceBaseJ - beforeEnergy.DeviceBaseJ,
		RadioJ:       es.RadioJ - beforeEnergy.RadioJ,
		ShardIdleJ:   es.ShardIdleJ - beforeEnergy.ShardIdleJ,
		ShardActiveJ: es.ShardActiveJ - beforeEnergy.ShardActiveJ,
	}
	er.DeviceJ = er.DeviceBaseJ + er.RadioJ
	er.ShardJ = er.ShardIdleJ + er.ShardActiveJ
	er.FleetJ = er.DeviceJ + er.ShardJ
	if answered := r.Served - r.Unavailable; answered > 0 {
		er.PerAnsweredJ = er.FleetJ / float64(answered)
	}
	r.Energy = er

	if byClass := col.classSnapshot(); len(byClass) > 0 {
		names := make([]string, 0, len(byClass))
		for name := range byClass {
			names = append(names, name)
		}
		sort.Strings(names)
		r.Classes = make([]ClassReport, 0, len(names))
		for _, name := range names {
			r.Classes = append(r.Classes, classReport(name, byClass[name]))
		}
	}
}

// OpenConfig parameterizes an open-loop run.
type OpenConfig struct {
	// QPS is the target mean arrival rate.
	QPS float64
	// Duration bounds the arrival schedule; the schedule (and so the
	// request count) is deterministic given Seed, QPS and Duration.
	Duration time.Duration
	// Month selects which month's community log is replayed as the
	// request tape. The tape wraps if the schedule outruns it.
	Month int
	// Seed drives the arrival schedule.
	Seed int64
	// Arrivals selects the arrival process (modeltime.Kind). The zero
	// value is the classic homogeneous Poisson process; Diurnal warps
	// the same arrivals onto a day curve (same total, same tape order);
	// PerUser gives every user an independent renewal process weighted
	// by their workload class, replaying each user's own stream.
	Arrivals modeltime.Kind
	// DiurnalPeak is the diurnal peak/trough rate ratio; zero selects
	// modeltime.DefaultPeakTrough. Diurnal runs only.
	DiurnalPeak float64
	// DiurnalPeriod is the diurnal curve's period; zero spans the run
	// with a single day. Diurnal runs only.
	DiurnalPeriod time.Duration
	// MaxRequests caps the schedule length. Zero selects 10 million.
	MaxRequests int
	// ResizeTo, when positive, live-resizes the fleet to that many
	// shards ResizeAt into the run (immediately when ResizeAt is zero).
	// A resize the run finishes before firing is run just after serving
	// completes, so its counters are always measured.
	ResizeTo int
	// ResizeAt delays the resize from the start of the run.
	ResizeAt time.Duration
	// ResizeDrop discards movers' personal state instead of migrating
	// it — the remap-and-cold-start baseline.
	ResizeDrop bool
	// Events are resize events executed at model offsets of the arrival
	// schedule: an event fires just before the first arrival at or past
	// its offset, so its position in the tape — and with it every
	// per-user outcome — is a pure function of the spec, unlike the
	// wall-timer ResizeTo/ResizeAt path. Must be sorted by At.
	Events []TimelineEvent
	// Autoscale, when non-nil, turns on the occupancy-driven shard
	// autoscaler (internal/autoscale): the run samples per-shard
	// occupancy on the controller's model-time cadence — after a fleet
	// drain, so the sample is a pure function of the tape prefix — and
	// drives Fleet.Resize from its hysteresis decisions. Zero fields
	// are resolved against the fleet's initial shard count.
	Autoscale *autoscale.Config
	// ClassTag, when set, stamps every request with this class so the
	// report carries a per-class breakdown — the single-class scenario
	// path. It never affects serving or per-user outcomes.
	ClassTag string
	// Classes, when non-empty, splits the run into client classes: each
	// owns a contiguous slice of the user population and its own arrival
	// process, and its requests carry its tag. The per-class schedules
	// are merged by arrival time. QPS is then the total rate the class
	// QPSShares divide; the top-level Arrivals/Diurnal fields are
	// ignored. Empty keeps the single-process run exactly as before.
	Classes []OpenClassConfig
	// Scenario labels the report (Report.Scenario).
	Scenario string
}

// TimelineEvent is one scheduled resize of an open-loop run's event
// timeline.
type TimelineEvent struct {
	// At is the model offset from the start of the run.
	At time.Duration
	// ResizeTo is the shard count to live-resize the fleet to.
	ResizeTo int
	// DropState discards movers' personal state instead of migrating
	// it.
	DropState bool
}

// OpenClassConfig is one client class of a multi-class open-loop run.
type OpenClassConfig struct {
	// Name is the SLO-class tag stamped on the class's requests.
	Name string
	// Lo and Hi bound the class's user indices: the class owns
	// profiles [Lo, Hi) of the generator population.
	Lo, Hi int
	// QPSShare is the fraction of the run's total QPS this class
	// offers.
	QPSShare float64
	// Arrivals is the class's arrival process; Poisson ("flat"),
	// Diurnal or PerUser.
	Arrivals modeltime.Kind
	// DiurnalPeak and DiurnalPeriod shape a Diurnal class's curve.
	DiurnalPeak   float64
	DiurnalPeriod time.Duration
}

// scheduleResize arms the mid-run live resize. The returned finish
// func stops the timer, guarantees the resize ran exactly once, and
// reports its error.
func scheduleResize(f *fleet.Fleet, to int, at time.Duration, drop bool) func() error {
	if to <= 0 {
		return func() error { return nil }
	}
	var (
		once sync.Once
		err  error
	)
	run := func() { _, err = f.ResizeWith(to, fleet.ResizeOptions{DropState: drop}) }
	timer := time.AfterFunc(at, func() { once.Do(run) })
	return func() error {
		timer.Stop()
		once.Do(run)
		return err
	}
}

// classWeight is one user's relative arrival rate for PerUser
// schedules: the geometric mean of the class's monthly-volume bracket,
// so a High user arrives ~10x as often as a Low user — the Table 6
// volume skew expressed as an arrival process.
func classWeight(spec workload.ClassSpec) float64 {
	return math.Sqrt(float64(spec.MinMonthly) * float64(spec.MaxMonthly))
}

// perUserWeights maps every profile to its class weight.
func perUserWeights(g *workload.Generator) []float64 {
	byClass := make(map[workload.Class]float64)
	for _, spec := range g.Classes() {
		byClass[spec.Class] = classWeight(spec)
	}
	profiles := g.Users()
	w := make([]float64, len(profiles))
	for i, up := range profiles {
		w[i] = byClass[up.Class]
	}
	return w
}

// curveBuckets is the offered-curve resolution of an open-loop report.
const curveBuckets = 20

// TraceEvent is one scheduled request of a materialized open-loop
// schedule — and the record the scenario trace format serializes, so a
// recorded schedule replays deterministically.
type TraceEvent struct {
	// At is the release offset from the start of the run (model
	// timestamp of the arrival).
	At    time.Duration
	User  searchlog.UserID
	Class string
	Query string
	Click string
}

// classEvents materializes one class's arrival schedule as concrete
// request events. The whole schedule is drawn up front so the arrival
// count is a pure function of the spec — an open-loop generator must
// not let fleet backpressure slow the arrivals.
func classEvents(g *workload.Generator, cfg OpenConfig, cc OpenClassConfig, seed int64, maxReq int) ([]TraceEvent, error) {
	u := g.Config().Universe
	profiles := g.Users()
	spec := modeltime.Spec{
		Kind:       cc.Arrivals,
		QPS:        cfg.QPS * cc.QPSShare,
		Horizon:    cfg.Duration,
		Seed:       seed,
		Max:        maxReq,
		PeakTrough: cc.DiurnalPeak,
		Period:     cc.DiurnalPeriod,
	}
	var cursors []*workload.Cursor
	if cc.Arrivals == modeltime.PerUser {
		w := perUserWeights(g)
		for i := range w {
			if i < cc.Lo || i >= cc.Hi {
				w[i] = 0
			}
		}
		spec.Weights = w
		cursors = make([]*workload.Cursor, len(profiles))
	}
	schedule, err := modeltime.Schedule(spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	var tape []searchlog.Entry
	if cc.Arrivals != modeltime.PerUser {
		full := g.MonthLog(cfg.Month).Entries
		if cc.Lo <= 0 && cc.Hi >= len(profiles) {
			tape = full
		} else {
			// The workload invariant profiles[i].ID == UserID(i) makes a
			// contiguous index range a contiguous ID range.
			for _, e := range full {
				if idx := int(e.User); idx >= cc.Lo && idx < cc.Hi {
					tape = append(tape, e)
				}
			}
		}
		if len(tape) == 0 {
			if cc.Name == "" {
				return nil, fmt.Errorf("loadgen: month %d log is empty", cfg.Month)
			}
			return nil, fmt.Errorf("loadgen: class %q has no month-%d log entries", cc.Name, cfg.Month)
		}
	}
	events := make([]TraceEvent, 0, len(schedule))
	for i, a := range schedule {
		ev := TraceEvent{At: a.At, Class: cc.Name}
		if a.User >= 0 {
			// Per-user arrival: the user replays their own stream, so
			// skewed arrival rates meet matching per-user content.
			if cursors[a.User] == nil {
				cursors[a.User] = g.Cursor(profiles[a.User], cfg.Month)
			}
			e, _ := cursors[a.User].Next()
			ev.User = profiles[a.User].ID
			ev.Query = u.QueryText(u.QueryOf(e.Pair))
			ev.Click = u.ResultURL(u.ResultOf(e.Pair))
		} else {
			e := tape[i%len(tape)]
			ev.User = e.User
			ev.Query = u.QueryText(u.QueryOf(e.Pair))
			ev.Click = u.ResultURL(u.ResultOf(e.Pair))
		}
		events = append(events, ev)
	}
	return events, nil
}

// OpenEvents materializes an open-loop run's whole request schedule.
// With no Classes configured this is exactly the schedule RunOpen has
// always replayed (same spec, same tape order); with Classes, each
// class's schedule is drawn from its own derived seed and the streams
// are merged by arrival time (ties break by class order, then
// within-class order, so the merge is deterministic).
func OpenEvents(g *workload.Generator, cfg OpenConfig) ([]TraceEvent, error) {
	maxReq := cfg.MaxRequests
	if maxReq <= 0 {
		maxReq = 10_000_000
	}
	if len(cfg.Classes) == 0 {
		cc := OpenClassConfig{
			Name:          cfg.ClassTag,
			Lo:            0,
			Hi:            len(g.Users()),
			QPSShare:      1,
			Arrivals:      cfg.Arrivals,
			DiurnalPeak:   cfg.DiurnalPeak,
			DiurnalPeriod: cfg.DiurnalPeriod,
		}
		return classEvents(g, cfg, cc, cfg.Seed, maxReq)
	}
	type tagged struct {
		ev  TraceEvent
		ci  int
		seq int
	}
	var all []tagged
	for ci, cc := range cfg.Classes {
		evs, err := classEvents(g, cfg, cc, modeltime.DeriveSeed(cfg.Seed, ci), maxReq)
		if err != nil {
			return nil, err
		}
		for seq, ev := range evs {
			all = append(all, tagged{ev, ci, seq})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].ci != all[j].ci {
			return all[i].ci < all[j].ci
		}
		return all[i].seq < all[j].seq
	})
	if len(all) > maxReq {
		all = all[:maxReq]
	}
	events := make([]TraceEvent, len(all))
	for i, t := range all {
		events[i] = t.ev
	}
	return events, nil
}

// replayEvents releases the events at their offsets against the fleet,
// bucketing arrivals (and sheds) into the offered curve over horizon.
func replayEvents(f *fleet.Fleet, events []TraceEvent, horizon time.Duration, start time.Time) (offered, shedPerBucket []uint64, maxLag time.Duration) {
	offered, shedPerBucket, maxLag, _ = replayTimeline(f, events, horizon, start, nil, nil)
	return offered, shedPerBucket, maxLag
}

// demandCount sums submissions the fleet has booked so far — served
// plus shed across live shards, plus the counters shrinks retired.
// After a drain it equals the number of Submit calls made, so the
// autoscaler's occupancy signal is a pure function of the tape prefix
// regardless of worker interleaving or shed timing.
func demandCount(f *fleet.Fleet) int64 {
	rl := f.RetiredLoad()
	total := rl.Served + rl.Shed
	for _, sl := range f.ShardLoads() {
		total += sl.Served + sl.Shed
	}
	return total
}

// replayTimeline is replayEvents plus the model-time control plane: it
// interleaves scheduled resize events (timeline) and autoscaler samples
// (ctl) with the arrival schedule, firing everything due at or before
// an arrival's offset — in model-time order, ties resolved timeline
// first — before that arrival is submitted. Each autoscale sample
// drains the fleet first, so the occupancy it reads is a function of
// the tape prefix alone and the whole control sequence is
// deterministic for a deterministic spec.
func replayTimeline(f *fleet.Fleet, events []TraceEvent, horizon time.Duration, start time.Time, ctl *autoscale.Controller, timeline []TimelineEvent) (offered, shedPerBucket []uint64, maxLag time.Duration, err error) {
	offered = make([]uint64, curveBuckets)
	shedPerBucket = make([]uint64, curveBuckets)
	var (
		ti         int
		nextSample = time.Duration(math.MaxInt64)
		lastDemand int64
	)
	if ctl != nil {
		nextSample = ctl.Config().Interval
	}
	for _, ev := range events {
		// Fire everything due before this arrival, in model-time order.
		for {
			tDue := ti < len(timeline) && timeline[ti].At <= ev.At
			sDue := ctl != nil && nextSample <= ev.At
			switch {
			case tDue && (!sDue || timeline[ti].At <= nextSample):
				te := timeline[ti]
				ti++
				if te.ResizeTo > 0 {
					if _, rerr := f.ResizeWith(te.ResizeTo, fleet.ResizeOptions{DropState: te.DropState}); rerr != nil {
						return offered, shedPerBucket, maxLag, fmt.Errorf("loadgen: timeline resize at %v: %w", te.At, rerr)
					}
				}
				continue
			case sDue:
				f.Drain()
				demand := demandCount(f)
				delta := demand - lastDemand
				lastDemand = demand
				shards := f.NumShards()
				occ := ctl.Config().Occupancy(delta, ctl.Config().Interval, shards)
				if target, resize := ctl.Step(nextSample, occ, shards); resize {
					if _, rerr := f.Resize(target); rerr != nil {
						return offered, shedPerBucket, maxLag, fmt.Errorf("loadgen: autoscale resize to %d: %w", target, rerr)
					}
				}
				nextSample += ctl.Config().Interval
				continue
			}
			break
		}
		now := time.Since(start)
		if wait := ev.At - now; wait > 0 {
			time.Sleep(wait)
		} else if lag := -wait; lag > maxLag {
			maxLag = lag
		}
		b := int(int64(ev.At) * curveBuckets / int64(horizon))
		if b >= curveBuckets {
			b = curveBuckets - 1
		}
		if b < 0 {
			b = 0
		}
		offered[b]++
		if !f.Submit(fleet.Request{User: ev.User, Query: ev.Query, Click: ev.Click, Class: ev.Class}) {
			shedPerBucket[b]++
		}
	}
	// Timeline events scheduled past the last arrival still run — their
	// resizes must be measured.
	for ; ti < len(timeline); ti++ {
		if te := timeline[ti]; te.ResizeTo > 0 {
			if _, rerr := f.ResizeWith(te.ResizeTo, fleet.ResizeOptions{DropState: te.DropState}); rerr != nil {
				return offered, shedPerBucket, maxLag, fmt.Errorf("loadgen: timeline resize at %v: %w", te.At, rerr)
			}
		}
	}
	return offered, shedPerBucket, maxLag, nil
}

// RunOpen replays workload queries against the fleet as an open-loop
// arrival process drawn from modeltime (Poisson, diurnal or per-user;
// see OpenConfig.Arrivals), or as a merge of per-class processes when
// OpenConfig.Classes is set. col must be installed as the fleet's
// Observer; it is reset at the start of the run. The call returns
// after every scheduled request has been served or shed.
func RunOpen(f *fleet.Fleet, col *Collector, g *workload.Generator, cfg OpenConfig) (Report, error) {
	if f == nil || col == nil || g == nil {
		return Report{}, fmt.Errorf("loadgen: fleet, collector and generator are required")
	}
	if f.Observer() == nil {
		return Report{}, fmt.Errorf("loadgen: fleet has no Observer; set fleet.Config.Observer to the collector or latencies and energy go unrecorded")
	}
	events, err := OpenEvents(g, cfg)
	if err != nil {
		return Report{}, err
	}
	var ctl *autoscale.Controller
	if cfg.Autoscale != nil {
		ac := cfg.Autoscale.WithDefaults(f.NumShards())
		if err := ac.Validate(); err != nil {
			return Report{}, fmt.Errorf("loadgen: %w", err)
		}
		ctl = autoscale.New(ac)
	}

	col.Reset()
	before, beforeBatch, beforeMig, beforeEnergy := f.Stats(), f.BatchStats(), f.MigrationStats(), f.EnergyStats()
	finishResize := scheduleResize(f, cfg.ResizeTo, cfg.ResizeAt, cfg.ResizeDrop)
	start := time.Now()
	offered, shedPerBucket, maxLag, err := replayTimeline(f, events, cfg.Duration, start, ctl, cfg.Events)
	if err != nil {
		return Report{}, err
	}
	f.Drain()
	if err := finishResize(); err != nil {
		return Report{}, fmt.Errorf("loadgen: resize: %w", err)
	}
	elapsed := time.Since(start)

	r := Report{
		Mode:             "open",
		Scenario:         cfg.Scenario,
		Seed:             cfg.Seed,
		Users:            len(g.Users()),
		OfferedQPS:       cfg.QPS,
		MaxScheduleLagNS: int64(maxLag),
	}
	if len(cfg.Classes) == 0 {
		r.Arrivals = cfg.Arrivals.String()
		if cfg.Arrivals == modeltime.Diurnal {
			r.DiurnalPeak = cfg.DiurnalPeak
			if r.DiurnalPeak == 0 {
				r.DiurnalPeak = modeltime.DefaultPeakTrough
			}
		}
	} else {
		r.Arrivals = "mixed"
	}
	r.OfferedCurve, r.PeakTroughServedRatio = offeredCurve(cfg.Duration, offered, shedPerBucket)
	fill(&r, f, col, before, beforeBatch, beforeMig, beforeEnergy, elapsed)
	r.MeanUserHitRate = f.MeanUserHitRate()
	if ctl != nil {
		r.Autoscale = autoscaleReport(ctl, f.NumShards())
	}
	return r, nil
}

// autoscaleReport folds the controller's run into its report block.
func autoscaleReport(ctl *autoscale.Controller, finalShards int) *AutoscaleReport {
	cfg := ctl.Config()
	ar := &AutoscaleReport{
		IntervalNS:  int64(cfg.Interval),
		Min:         cfg.Min,
		Max:         cfg.Max,
		Samples:     len(ctl.Samples()),
		FinalShards: finalShards,
	}
	var sum float64
	for _, s := range ctl.Samples() {
		sum += s.Occupancy
	}
	if ar.Samples > 0 {
		ar.MeanOccupancy = sum / float64(ar.Samples)
	}
	for _, a := range ctl.Actions() {
		ar.Actions = append(ar.Actions, AutoscaleAction{
			AtNS: int64(a.At), From: a.From, To: a.To, Occupancy: a.Occupancy,
		})
	}
	return ar
}

// TraceConfig parameterizes a recorded-trace replay run.
type TraceConfig struct {
	// Seed and Users are recorded in the report (the trace itself fully
	// determines the requests).
	Seed  int64
	Users int
	// Scenario labels the report.
	Scenario string
	// Horizon bounds the offered-curve bucketing; zero derives it from
	// the last event's offset.
	Horizon time.Duration
}

// RunTrace replays a materialized (typically recorded) event schedule
// against the fleet, open-loop: each event is released at its offset
// whether or not the fleet keeps up. Replaying the same trace against
// an identically built fleet yields byte-identical per-user outcomes.
func RunTrace(f *fleet.Fleet, col *Collector, events []TraceEvent, cfg TraceConfig) (Report, error) {
	if f == nil || col == nil {
		return Report{}, fmt.Errorf("loadgen: fleet and collector are required")
	}
	if len(events) == 0 {
		return Report{}, fmt.Errorf("loadgen: empty trace")
	}
	if f.Observer() == nil {
		return Report{}, fmt.Errorf("loadgen: fleet has no Observer; set fleet.Config.Observer to the collector or latencies and energy go unrecorded")
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = events[len(events)-1].At + 1
	}

	col.Reset()
	before, beforeBatch, beforeMig, beforeEnergy := f.Stats(), f.BatchStats(), f.MigrationStats(), f.EnergyStats()
	start := time.Now()
	offered, shedPerBucket, maxLag := replayEvents(f, events, horizon, start)
	f.Drain()
	elapsed := time.Since(start)

	r := Report{
		Mode:             "trace",
		Scenario:         cfg.Scenario,
		Seed:             cfg.Seed,
		Users:            cfg.Users,
		OfferedQPS:       float64(len(events)) / horizon.Seconds(),
		MaxScheduleLagNS: int64(maxLag),
	}
	r.OfferedCurve, r.PeakTroughServedRatio = offeredCurve(horizon, offered, shedPerBucket)
	fill(&r, f, col, before, beforeBatch, beforeMig, beforeEnergy, elapsed)
	r.MeanUserHitRate = f.MeanUserHitRate()
	return r, nil
}

// offeredCurve folds the per-bucket arrival counters into the report's
// curve and the measured peak/trough served-QPS ratio (buckets that
// offered nothing are skipped; the ratio is zero when no bucket served).
func offeredCurve(horizon time.Duration, offered, shed []uint64) ([]RateBucket, float64) {
	width := horizon / time.Duration(len(offered))
	secs := width.Seconds()
	curve := make([]RateBucket, len(offered))
	peak, trough := 0.0, math.Inf(1)
	for b := range offered {
		served := float64(offered[b]-shed[b]) / secs
		curve[b] = RateBucket{
			StartNS:    int64(width) * int64(b),
			EndNS:      int64(width) * int64(b+1),
			Offered:    offered[b],
			Shed:       shed[b],
			OfferedQPS: float64(offered[b]) / secs,
			ServedQPS:  served,
		}
		if offered[b] == 0 {
			continue
		}
		if served > peak {
			peak = served
		}
		if served < trough {
			trough = served
		}
	}
	if trough <= 0 || math.IsInf(trough, 1) {
		return curve, 0
	}
	return curve, peak / trough
}

// ClosedConfig parameterizes a closed-loop run.
type ClosedConfig struct {
	// Users is the number of concurrent simulated users (the first K
	// profiles of the population, which samples classes by share).
	Users int
	// Month is the first month each user replays.
	Month int
	// Duration bounds the run; users keep replaying subsequent months
	// until it elapses. Zero replays exactly one month per user, which
	// makes the run's request count — and every derived counter —
	// deterministic.
	Duration time.Duration
	// MaxQueriesPerUser caps each user's stream. Zero means no cap.
	MaxQueriesPerUser int
	// Weeks is the weekly bucket count for per-user accounting. Zero
	// selects 5, matching the replay harness.
	Weeks int
	// Seed is recorded in the report (closed-loop arrivals are fully
	// determined by the generator's own seed).
	Seed int64
	// Pace, when enabled, makes each user "think" for their modeled
	// response time (wall-compressed by Pace.Scale) before issuing the
	// next query. Pacing is wall-clock only — it inserts real sleeps
	// between a user's own requests and never touches model state — so
	// per-user outcomes are byte-identical to an unpaced run on the
	// same tape. The zero value is the unpaced as-fast-as-possible
	// protocol.
	Pace modeltime.Pacer
	// ResizeTo, when positive, live-resizes the fleet to that many
	// shards ResizeAt into the run (immediately when ResizeAt is zero).
	// A resize the run finishes before firing is run just after serving
	// completes, so its counters are always measured.
	ResizeTo int
	// ResizeAt delays the resize from the start of the run.
	ResizeAt time.Duration
	// ResizeDrop discards movers' personal state instead of migrating
	// it — the remap-and-cold-start baseline.
	ResizeDrop bool
	// ClassTag, when set, stamps every request with this class so the
	// report carries a per-class breakdown — the single-class scenario
	// path. It never affects serving or per-user outcomes.
	ClassTag string
	// Classes, when non-empty, splits the simulated users into client
	// classes: a user whose index falls in a class's [Lo, Hi) range
	// issues requests carrying the class tag, paced by the class's own
	// Pacer and capped by its own MaxQueriesPerUser. Users outside
	// every range fall back to the top-level ClassTag/Pace/
	// MaxQueriesPerUser.
	Classes []ClosedClassConfig
	// Scenario labels the report (Report.Scenario).
	Scenario string
}

// ClosedClassConfig is one client class of a multi-class closed run.
type ClosedClassConfig struct {
	// Name is the SLO-class tag stamped on the class's requests.
	Name string
	// Lo and Hi bound the class's user indices ([Lo, Hi)).
	Lo, Hi int
	// Pace is the class's think-time pacing (wall-clock only).
	Pace modeltime.Pacer
	// MaxQueriesPerUser caps each class user's stream; zero means no
	// cap.
	MaxQueriesPerUser int
}

// RunClosed drives the fleet with K concurrent simulated users, each
// replaying their own workload stream and waiting for every response —
// the closed-loop protocol whose hit rates correspond to the paper's
// replay evaluation. col must be installed as the fleet's Observer; it
// is reset at the start of the run.
func RunClosed(f *fleet.Fleet, col *Collector, g *workload.Generator, cfg ClosedConfig) (Report, error) {
	if f == nil || col == nil || g == nil {
		return Report{}, fmt.Errorf("loadgen: fleet, collector and generator are required")
	}
	profiles := g.Users()
	if cfg.Users <= 0 || cfg.Users > len(profiles) {
		return Report{}, fmt.Errorf("loadgen: Users must be in [1, %d], got %d", len(profiles), cfg.Users)
	}
	weeks := cfg.Weeks
	if weeks <= 0 {
		weeks = 5
	}
	if f.Observer() == nil {
		return Report{}, fmt.Errorf("loadgen: fleet has no Observer; set fleet.Config.Observer to the collector or latencies and energy go unrecorded")
	}
	u := g.Config().Universe

	col.Reset()
	before, beforeBatch, beforeMig, beforeEnergy := f.Stats(), f.BatchStats(), f.MigrationStats(), f.EnergyStats()
	finishResize := scheduleResize(f, cfg.ResizeTo, cfg.ResizeAt, cfg.ResizeDrop)
	outcomes := make([]replay.UserOutcome, cfg.Users)
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tag, pace, maxQ := cfg.ClassTag, cfg.Pace, cfg.MaxQueriesPerUser
			for _, cc := range cfg.Classes {
				if i >= cc.Lo && i < cc.Hi {
					tag, pace, maxQ = cc.Name, cc.Pace, cc.MaxQueriesPerUser
					break
				}
			}
			up := profiles[i]
			cur := g.Cursor(up, cfg.Month)
			uo := replay.NewUserOutcome(up, weeks)
			for n := 0; maxQ <= 0 || n < maxQ; n++ {
				if cfg.Duration > 0 && !time.Now().Before(deadline) {
					break
				}
				e, month := cur.Next()
				if cfg.Duration <= 0 && month > cfg.Month {
					break
				}
				resp := f.Do(fleet.Request{
					User:  up.ID,
					Query: u.QueryText(u.QueryOf(e.Pair)),
					Click: u.ResultURL(u.ResultOf(e.Pair)),
					Class: tag,
				})
				if resp.Shed || resp.Err != nil {
					continue
				}
				uo.Record(e.At, u.Navigational(e.Pair), resp.Outcome)
				if d := pace.Pause(resp.Outcome.ResponseTime()); d > 0 {
					time.Sleep(d)
				}
			}
			outcomes[i] = uo
		}(i)
	}
	wg.Wait()
	if err := finishResize(); err != nil {
		return Report{}, fmt.Errorf("loadgen: resize: %w", err)
	}
	elapsed := time.Since(start)

	r := Report{
		Mode:     "closed",
		Scenario: cfg.Scenario,
		Seed:     cfg.Seed,
		Users:    cfg.Users,
		Outcomes: outcomes,
	}
	paced, paceScale := cfg.Pace.Enabled(), cfg.Pace.Scale
	for _, cc := range cfg.Classes {
		if cc.Pace.Enabled() {
			paced = true
			if paceScale == 0 {
				paceScale = cc.Pace.Scale
			}
		}
	}
	if paced {
		r.Paced = true
		r.PaceScale = paceScale
	}
	fill(&r, f, col, before, beforeBatch, beforeMig, beforeEnergy, elapsed)

	classSum := make(map[string]float64)
	classN := make(map[string]int)
	var sum float64
	var n int
	for _, uo := range outcomes {
		if uo.Volume == 0 {
			continue
		}
		hr := uo.HitRate()
		sum += hr
		n++
		name := uo.Profile.Class.String()
		classSum[name] += hr
		classN[name]++
	}
	if n > 0 {
		r.MeanUserHitRate = sum / float64(n)
		r.ClassHitRate = make(map[string]float64, len(classSum))
		for c, s := range classSum {
			r.ClassHitRate[c] = s / float64(classN[c])
		}
	}
	return r, nil
}

// Tape materializes one user's month stream as ready-to-serve fleet
// requests — a convenience for benchmarks that drive the serving path
// directly.
func Tape(g *workload.Generator, up workload.UserProfile, month int) []fleet.Request {
	u := g.Config().Universe
	stream := g.UserStream(up, month)
	out := make([]fleet.Request, len(stream))
	for i, e := range stream {
		out[i] = fleet.Request{
			User:  e.User,
			Query: u.QueryText(u.QueryOf(e.Pair)),
			Click: u.ResultURL(u.ResultOf(e.Pair)),
		}
	}
	return out
}

// Package core implements the general pocket cloudlet architecture of
// Section 3 of the Pocket Cloudlets paper, independent of any concrete
// service: data selection from combined community and personal access
// models, data management policies for static versus dynamic content,
// and budgeted selection of what to replicate on the device.
//
// PocketSearch (internal/pocketsearch) is the paper's fully elaborated
// instance of this template; the generic cloudlets used by the
// multi-cloudlet demonstrations (internal/cloudletos) are built
// directly on this package.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ItemID identifies one cacheable data item of a cloud service (a
// search result page, a map tile, an ad banner, a web page).
type ItemID uint64

// Access is one recorded access: a user touched an item at a time.
type Access struct {
	User uint32
	Item ItemID
	At   time.Duration
}

// CommunityModel aggregates access counts across all users to identify
// the most popular parts of a cloud service's data (Section 3.1).
type CommunityModel struct {
	counts map[ItemID]int64
	total  int64
}

// NewCommunityModel creates an empty community model.
func NewCommunityModel() *CommunityModel {
	return &CommunityModel{counts: make(map[ItemID]int64)}
}

// Record adds accesses to the model.
func (m *CommunityModel) Record(accesses ...Access) {
	for _, a := range accesses {
		m.counts[a.Item]++
		m.total++
	}
}

// Total returns the total recorded access volume.
func (m *CommunityModel) Total() int64 { return m.total }

// Popularity returns the item's share of total volume.
func (m *CommunityModel) Popularity(item ItemID) float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.counts[item]) / float64(m.total)
}

// Ranked returns items in descending volume order (ties by ID).
func (m *CommunityModel) Ranked() []ItemID {
	items := make([]ItemID, 0, len(m.counts))
	for it := range m.counts {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if m.counts[a] != m.counts[b] {
			return m.counts[a] > m.counts[b]
		}
		return a < b
	})
	return items
}

// PersonalModel tracks one user's accesses with frequency and recency,
// mirroring the PocketSearch personalization component: repeated items
// score higher, stale items decay (Section 3.1, Equations 1-2).
type PersonalModel struct {
	lambda float64
	scores map[ItemID]float64
	last   map[ItemID]time.Duration
	now    time.Duration
}

// NewPersonalModel creates a personal model with the given decay
// constant per day of staleness.
func NewPersonalModel(lambdaPerDay float64) *PersonalModel {
	return &PersonalModel{
		lambda: lambdaPerDay,
		scores: make(map[ItemID]float64),
		last:   make(map[ItemID]time.Duration),
	}
}

// Touch records an access at the given model time (non-decreasing).
func (m *PersonalModel) Touch(item ItemID, at time.Duration) {
	if at > m.now {
		m.now = at
	}
	m.scores[item] = m.Score(item) + 1
	m.last[item] = at
}

// Score returns the item's personal score at the model's current time:
// its accumulated score decayed by e^(-lambda * days since last touch).
func (m *PersonalModel) Score(item ItemID) float64 {
	s, ok := m.scores[item]
	if !ok {
		return 0
	}
	staleDays := (m.now - m.last[item]).Hours() / 24
	if staleDays <= 0 {
		return s
	}
	return s * math.Exp(-m.lambda*staleDays)
}

// Items returns every item the user has ever touched.
func (m *PersonalModel) Items() []ItemID {
	items := make([]ItemID, 0, len(m.scores))
	for it := range m.scores {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// Volatility classifies how a cloudlet's data changes over time, which
// determines its update policy (Section 3.2).
type Volatility int

const (
	// Static data (search indexes, map tiles) changes slowly: update
	// periodically while charging on a fast link.
	Static Volatility = iota
	// Dynamic data (news pages, stock quotes) changes within a day:
	// only the small set of most frequently revisited items is
	// refreshed in real time over the radio.
	Dynamic
)

// String implements fmt.Stringer.
func (v Volatility) String() string {
	if v == Dynamic {
		return "dynamic"
	}
	return "static"
}

// UpdatePolicy says when and over which link an item class is refreshed.
type UpdatePolicy struct {
	Volatility Volatility
	// Period is the refresh cadence for static data (e.g. nightly).
	Period time.Duration
	// RealTimeTopK bounds how many dynamic items are refreshed over
	// the radio; the paper notes the repeatedly accessed dynamic set
	// is small (tens of pages for most users).
	RealTimeTopK int
}

// PolicyFor returns the paper's recommended policy for a volatility
// class.
func PolicyFor(v Volatility) UpdatePolicy {
	if v == Dynamic {
		return UpdatePolicy{Volatility: Dynamic, RealTimeTopK: 20}
	}
	return UpdatePolicy{Volatility: Static, Period: 24 * time.Hour}
}

// Candidate is an item under consideration for device placement.
type Candidate struct {
	Item  ItemID
	Bytes int64
	// Utility is the item's combined selection score.
	Utility float64
}

// Select combines the community and personal models to pick the items
// to replicate on the device within a byte budget (Section 3.1): item
// utility is the community popularity plus personalWeight times the
// normalized personal score, and items are taken greedily by utility
// per byte. sizeOf reports an item's on-device footprint.
func Select(community *CommunityModel, personal *PersonalModel, personalWeight float64, budget int64, sizeOf func(ItemID) int64) ([]Candidate, error) {
	if community == nil {
		return nil, fmt.Errorf("core: community model is required")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("core: budget must be positive, got %d", budget)
	}
	seen := make(map[ItemID]bool)
	var cands []Candidate
	add := func(it ItemID) {
		if seen[it] {
			return
		}
		seen[it] = true
		c := Candidate{Item: it, Bytes: sizeOf(it), Utility: community.Popularity(it)}
		if personal != nil {
			c.Utility += personalWeight * personal.Score(it)
		}
		cands = append(cands, c)
	}
	for _, it := range community.Ranked() {
		add(it)
	}
	if personal != nil {
		for _, it := range personal.Items() {
			add(it)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		// Utility per byte, deterministic tie-break.
		ui := cands[i].Utility / float64(max64(cands[i].Bytes, 1))
		uj := cands[j].Utility / float64(max64(cands[j].Bytes, 1))
		if ui != uj {
			return ui > uj
		}
		return cands[i].Item < cands[j].Item
	})
	var out []Candidate
	var used int64
	for _, c := range cands {
		if c.Bytes <= 0 || used+c.Bytes > budget {
			continue
		}
		used += c.Bytes
		out = append(out, c)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func day(n float64) time.Duration { return time.Duration(n * 24 * float64(time.Hour)) }

func TestCommunityModelRanking(t *testing.T) {
	m := NewCommunityModel()
	for i := 0; i < 5; i++ {
		m.Record(Access{User: 1, Item: 10})
	}
	for i := 0; i < 3; i++ {
		m.Record(Access{User: 2, Item: 20})
	}
	m.Record(Access{User: 3, Item: 30})
	ranked := m.Ranked()
	if len(ranked) != 3 || ranked[0] != 10 || ranked[1] != 20 || ranked[2] != 30 {
		t.Errorf("ranked = %v", ranked)
	}
	if got := m.Popularity(10); math.Abs(got-5.0/9) > 1e-12 {
		t.Errorf("popularity = %g, want 5/9", got)
	}
	if m.Popularity(99) != 0 {
		t.Error("unseen item should have zero popularity")
	}
	if NewCommunityModel().Popularity(1) != 0 {
		t.Error("empty model popularity should be 0")
	}
}

func TestCommunityRankedTieBreak(t *testing.T) {
	m := NewCommunityModel()
	m.Record(Access{Item: 7}, Access{Item: 3})
	r := m.Ranked()
	if r[0] != 3 || r[1] != 7 {
		t.Errorf("equal counts should order by ID: %v", r)
	}
}

func TestPersonalModelFrequency(t *testing.T) {
	m := NewPersonalModel(0.1)
	m.Touch(1, day(0))
	m.Touch(1, day(0))
	m.Touch(2, day(0))
	if m.Score(1) <= m.Score(2) {
		t.Errorf("twice-touched item should outscore once-touched: %g vs %g", m.Score(1), m.Score(2))
	}
	if m.Score(99) != 0 {
		t.Error("untouched item should score 0")
	}
}

// TestPersonalModelFreshness mirrors the paper's example: a result
// clicked 100 times a month ago scores below one clicked 100 times
// last week.
func TestPersonalModelFreshness(t *testing.T) {
	m := NewPersonalModel(0.1)
	for i := 0; i < 100; i++ {
		m.Touch(1, day(0)) // old favorite
	}
	for i := 0; i < 100; i++ {
		m.Touch(2, day(23)) // fresh favorite
	}
	// Advance time to day 30 via a touch on an unrelated item.
	m.Touch(3, day(30))
	if m.Score(1) >= m.Score(2) {
		t.Errorf("stale favorite %g should score below fresh %g", m.Score(1), m.Score(2))
	}
}

func TestPersonalModelDecayMonotone(t *testing.T) {
	f := func(gapDays uint8) bool {
		m := NewPersonalModel(0.2)
		m.Touch(1, 0)
		base := m.Score(1)
		m.Touch(2, day(float64(gapDays)))
		return m.Score(1) <= base+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPersonalItemsSorted(t *testing.T) {
	m := NewPersonalModel(0.1)
	m.Touch(9, 0)
	m.Touch(3, 0)
	items := m.Items()
	if len(items) != 2 || items[0] != 3 || items[1] != 9 {
		t.Errorf("items = %v", items)
	}
}

func TestPolicyFor(t *testing.T) {
	s := PolicyFor(Static)
	if s.Volatility != Static || s.Period != 24*time.Hour {
		t.Errorf("static policy = %+v", s)
	}
	d := PolicyFor(Dynamic)
	if d.Volatility != Dynamic || d.RealTimeTopK <= 0 {
		t.Errorf("dynamic policy = %+v", d)
	}
	if Static.String() == Dynamic.String() {
		t.Error("volatility strings should differ")
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := Select(nil, nil, 0, 100, func(ItemID) int64 { return 1 }); err == nil {
		t.Error("nil community model should fail")
	}
	if _, err := Select(NewCommunityModel(), nil, 0, 0, func(ItemID) int64 { return 1 }); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestSelectRespectsBudget(t *testing.T) {
	m := NewCommunityModel()
	for i := 0; i < 10; i++ {
		for n := 0; n <= i; n++ {
			m.Record(Access{Item: ItemID(i)})
		}
	}
	sel, err := Select(m, nil, 0, 300, func(ItemID) int64 { return 100 })
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d items, want 3 (budget 300 at 100 each)", len(sel))
	}
	// The most popular items (9, 8, 7) should win.
	want := map[ItemID]bool{9: true, 8: true, 7: true}
	for _, c := range sel {
		if !want[c.Item] {
			t.Errorf("unexpected selection %d", c.Item)
		}
	}
}

func TestSelectCombinesPersonal(t *testing.T) {
	comm := NewCommunityModel()
	for i := 0; i < 100; i++ {
		comm.Record(Access{Item: 1}) // community favorite
	}
	comm.Record(Access{Item: 2})

	pers := NewPersonalModel(0.1)
	for i := 0; i < 50; i++ {
		pers.Touch(3, 0) // personal-only favorite, unknown to community
	}

	sel, err := Select(comm, pers, 0.01, 200, func(ItemID) int64 { return 100 })
	if err != nil {
		t.Fatal(err)
	}
	got := map[ItemID]bool{}
	for _, c := range sel {
		got[c.Item] = true
	}
	if !got[1] || !got[3] {
		t.Errorf("selection should include community favorite 1 and personal favorite 3: %v", sel)
	}
	if got[2] {
		t.Error("weak item 2 should lose to the favorites")
	}
}

func TestSelectSkipsOversizedItems(t *testing.T) {
	m := NewCommunityModel()
	m.Record(Access{Item: 1}, Access{Item: 2})
	sel, err := Select(m, nil, 0, 150, func(it ItemID) int64 {
		if it == 1 {
			return 1000 // cannot fit
		}
		return 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Item != 2 {
		t.Errorf("selection = %v, want just item 2", sel)
	}
}

// Package autoscale implements a deterministic occupancy-driven shard
// autoscaler for the fleet: the control loop that rides the diurnal
// curve, growing the topology toward the peak and shrinking it into the
// trough so provisioned-but-idle shards stop burning their idle power
// floor (the Green Cloudlet Network argument, applied to pocket
// cloudlet serving infrastructure).
//
// The controller is a pure state machine over model time. The load
// generator samples per-shard occupancy on a fixed model-time cadence —
// after a fleet drain, so the sample is a function of the tape prefix,
// never of worker interleaving — and feeds each sample to Step. Step
// answers with a resize target only after the occupancy has stayed
// beyond a watermark for a configured number of consecutive samples
// (hysteresis), which is what keeps a flat or gently noisy curve from
// flapping the topology. Two runs of the same workload therefore
// produce byte-identical action sequences.
package autoscale

import (
	"fmt"
	"math"
	"time"
)

// Config parameterizes the controller.
type Config struct {
	// Interval is the model-time sampling cadence. Zero selects
	// DefaultInterval.
	Interval time.Duration
	// Min and Max bound the shard count the controller may target.
	// Min zero selects 1; Max zero selects 4× the initial shard count
	// (resolved by the caller via WithDefaults).
	Min, Max int
	// High and Low are the occupancy watermarks: a sample above High
	// counts toward scaling up, below Low toward scaling down, and the
	// deadband between them resets both streaks. Zeros select 0.75 and
	// 0.35.
	High, Low float64
	// UpAfter and DownAfter are the consecutive-sample streaks required
	// before a resize fires — the hysteresis. Zeros select 2 and 3:
	// scaling up is cheap to get wrong briefly (a little idle power),
	// scaling down is not (shed requests), so the down streak is longer.
	UpAfter, DownAfter int
	// RatePerShard is the serving rate, in requests per second of model
	// time, at which one shard counts as fully occupied. Zero selects
	// DefaultRatePerShard.
	RatePerShard float64
}

// Defaults for the zero Config fields.
const (
	DefaultInterval     = time.Second
	DefaultHigh         = 0.75
	DefaultLow          = 0.35
	DefaultUpAfter      = 2
	DefaultDownAfter    = 3
	DefaultRatePerShard = 50.0
	// DefaultMaxFactor scales the initial shard count into the default
	// Max bound.
	DefaultMaxFactor = 4
)

// WithDefaults fills zero fields; shards is the initial shard count,
// which anchors the default Max bound.
func (c Config) WithDefaults(shards int) Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = DefaultMaxFactor * shards
	}
	if c.High <= 0 {
		c.High = DefaultHigh
	}
	if c.Low <= 0 {
		c.Low = DefaultLow
	}
	if c.UpAfter <= 0 {
		c.UpAfter = DefaultUpAfter
	}
	if c.DownAfter <= 0 {
		c.DownAfter = DefaultDownAfter
	}
	if c.RatePerShard <= 0 {
		c.RatePerShard = DefaultRatePerShard
	}
	return c
}

// Validate rejects a config whose resolved fields cannot drive a sane
// controller. Call it after WithDefaults.
func (c Config) Validate() error {
	if c.Min > c.Max {
		return fmt.Errorf("autoscale: min %d > max %d", c.Min, c.Max)
	}
	if c.Low >= c.High {
		return fmt.Errorf("autoscale: low watermark %.3f must be below high %.3f", c.Low, c.High)
	}
	if c.High > 1 {
		return fmt.Errorf("autoscale: high watermark %.3f above 1", c.High)
	}
	return nil
}

// Occupancy is the controller's load signal: the fraction of the
// fleet's serving capacity the window consumed, where capacity is
// shards × RatePerShard requests per second of model time. Not clamped:
// an overloaded window reads above 1.
func (c Config) Occupancy(requests int64, window time.Duration, shards int) float64 {
	if window <= 0 || shards <= 0 {
		return 0
	}
	capacity := window.Seconds() * float64(shards) * c.RatePerShard
	if capacity <= 0 {
		return 0
	}
	return float64(requests) / capacity
}

// Sample is one occupancy observation fed to Step.
type Sample struct {
	// At is the model-time instant of the sample.
	At time.Duration
	// Occupancy is the observed load signal; Shards the topology size
	// it was measured against.
	Occupancy float64
	Shards    int
}

// Action is one resize the controller decided.
type Action struct {
	// At is the model-time instant the deciding sample was taken.
	At time.Duration
	// From and To are the shard counts before and after.
	From, To int
	// Occupancy is the sample that tripped the decision.
	Occupancy float64
}

// Controller is the hysteresis state machine. Not safe for concurrent
// use: the load generator steps it from its single event loop.
type Controller struct {
	cfg       Config
	hot, cold int
	samples   []Sample
	actions   []Action
}

// New builds a controller from a resolved (WithDefaults) config.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg}
}

// Config returns the controller's resolved configuration.
func (ctl *Controller) Config() Config { return ctl.cfg }

// Step feeds one occupancy sample and returns the shard count the
// fleet should run with. resize is true when that target differs from
// the current count — the caller then drives Fleet.Resize and the
// action is recorded. The target is proportional: occupancy divided by
// the watermark midpoint, scaled by the current count and clamped to
// [Min, Max], so a deep trough collapses in one step instead of
// rung-by-rung.
func (ctl *Controller) Step(at time.Duration, occ float64, shards int) (target int, resize bool) {
	ctl.samples = append(ctl.samples, Sample{At: at, Occupancy: occ, Shards: shards})
	switch {
	case occ > ctl.cfg.High:
		ctl.hot++
		ctl.cold = 0
	case occ < ctl.cfg.Low:
		ctl.cold++
		ctl.hot = 0
	default:
		ctl.hot, ctl.cold = 0, 0
	}
	if ctl.hot >= ctl.cfg.UpAfter {
		if t := ctl.proportional(occ, shards); t > shards {
			ctl.hot = 0
			ctl.actions = append(ctl.actions, Action{At: at, From: shards, To: t, Occupancy: occ})
			return t, true
		}
	}
	if ctl.cold >= ctl.cfg.DownAfter {
		if t := ctl.proportional(occ, shards); t < shards {
			ctl.cold = 0
			ctl.actions = append(ctl.actions, Action{At: at, From: shards, To: t, Occupancy: occ})
			return t, true
		}
	}
	return shards, false
}

// proportional is the clamped set-point target: enough shards to bring
// the observed occupancy back to the watermark midpoint.
func (ctl *Controller) proportional(occ float64, shards int) int {
	mid := (ctl.cfg.High + ctl.cfg.Low) / 2
	t := int(math.Ceil(float64(shards) * occ / mid))
	if t < ctl.cfg.Min {
		t = ctl.cfg.Min
	}
	if t > ctl.cfg.Max {
		t = ctl.cfg.Max
	}
	return t
}

// Samples returns every observation fed to Step, in order.
func (ctl *Controller) Samples() []Sample { return ctl.samples }

// Actions returns every resize the controller decided, in order.
func (ctl *Controller) Actions() []Action { return ctl.actions }

package autoscale

import (
	"reflect"
	"testing"
	"time"
)

func resolved(t *testing.T, c Config, shards int) Config {
	t.Helper()
	c = c.WithDefaults(shards)
	if err := c.Validate(); err != nil {
		t.Fatalf("config invalid: %v", err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	c := resolved(t, Config{}, 8)
	if c.Interval != DefaultInterval || c.Min != 1 || c.Max != DefaultMaxFactor*8 {
		t.Errorf("resolved bounds = %+v", c)
	}
	if c.High != DefaultHigh || c.Low != DefaultLow || c.UpAfter != DefaultUpAfter || c.DownAfter != DefaultDownAfter {
		t.Errorf("resolved watermarks = %+v", c)
	}
	if c.RatePerShard != DefaultRatePerShard {
		t.Errorf("resolved rate = %v", c.RatePerShard)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{Min: 5, Max: 2, High: 0.75, Low: 0.35},
		{Min: 1, Max: 2, High: 0.3, Low: 0.5},
		{Min: 1, Max: 2, High: 1.5, Low: 0.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestOccupancy(t *testing.T) {
	c := Config{RatePerShard: 50}
	// 400 requests over 2s on 4 shards: capacity 400 → fully occupied.
	if got := c.Occupancy(400, 2*time.Second, 4); got != 1.0 {
		t.Errorf("occupancy = %v, want 1", got)
	}
	if got := c.Occupancy(100, 2*time.Second, 4); got != 0.25 {
		t.Errorf("occupancy = %v, want 0.25", got)
	}
	if got := c.Occupancy(100, 0, 4); got != 0 {
		t.Errorf("zero window occupancy = %v, want 0", got)
	}
}

// TestFlatCurveNoFlap drives a long flat deadband occupancy and checks
// the controller never resizes — the hysteresis contract.
func TestFlatCurveNoFlap(t *testing.T) {
	ctl := New(resolved(t, Config{}, 8))
	shards := 8
	for i := 0; i < 1000; i++ {
		target, resize := ctl.Step(time.Duration(i)*time.Second, 0.55, shards)
		if resize || target != shards {
			t.Fatalf("sample %d: flat curve resized %d → %d", i, shards, target)
		}
	}
	if n := len(ctl.Actions()); n != 0 {
		t.Errorf("flat curve produced %d actions", n)
	}
	if n := len(ctl.Samples()); n != 1000 {
		t.Errorf("recorded %d samples, want 1000", n)
	}
}

// TestHysteresisStreaks checks a single hot or cold sample does not
// resize, but a full streak does, proportionally and in bounds.
func TestHysteresisStreaks(t *testing.T) {
	cfg := resolved(t, Config{}, 8)
	ctl := New(cfg)
	shards := 8

	// One hot sample: streak too short.
	if _, resize := ctl.Step(0, 0.9, shards); resize {
		t.Fatal("scaled up after one hot sample")
	}
	// Second hot sample completes UpAfter=2: proportional target
	// ceil(8 * 0.9 / 0.55) = 14.
	target, resize := ctl.Step(time.Second, 0.9, shards)
	if !resize || target != 14 {
		t.Fatalf("hot streak: target %d resize %v, want 14 true", target, resize)
	}
	shards = target

	// Deadband resets the streaks.
	ctl.Step(2*time.Second, 0.5, shards)
	ctl.Step(3*time.Second, 0.2, shards)
	ctl.Step(4*time.Second, 0.2, shards)
	if _, resize := ctl.Step(5*time.Second, 0.5, shards); resize {
		t.Fatal("deadband sample resized")
	}

	// Cold streak of DownAfter=3 shrinks: ceil(14 * 0.1 / 0.55) = 3.
	ctl.Step(6*time.Second, 0.1, shards)
	ctl.Step(7*time.Second, 0.1, shards)
	target, resize = ctl.Step(8*time.Second, 0.1, shards)
	if !resize || target != 3 {
		t.Fatalf("cold streak: target %d resize %v, want 3 true", target, resize)
	}

	acts := ctl.Actions()
	if len(acts) != 2 || acts[0].To != 14 || acts[1].To != 3 {
		t.Errorf("actions = %+v", acts)
	}
}

// TestBounds checks the proportional target clamps to [Min, Max] even
// for extreme occupancy, and that a clamped-out resize (already at the
// bound) records no action.
func TestBounds(t *testing.T) {
	cfg := resolved(t, Config{Min: 2, Max: 12}, 8)
	ctl := New(cfg)
	ctl.Step(0, 50.0, 8)
	target, resize := ctl.Step(time.Second, 50.0, 8)
	if !resize || target != 12 {
		t.Fatalf("overload target = %d resize %v, want clamp to 12", target, resize)
	}
	// Already at Max: a further hot streak must not act.
	ctl.Step(2*time.Second, 50.0, 12)
	if _, resize := ctl.Step(3*time.Second, 50.0, 12); resize {
		t.Fatal("resized beyond Max")
	}

	// Zero occupancy collapses to Min, never below.
	down := New(cfg)
	for i := 0; i < cfg.DownAfter-1; i++ {
		down.Step(time.Duration(i)*time.Second, 0, 8)
	}
	target, resize = down.Step(10*time.Second, 0, 8)
	if !resize || target != 2 {
		t.Fatalf("trough target = %d resize %v, want clamp to 2", target, resize)
	}
}

// TestDeterminism replays the same synthetic diurnal occupancy trace
// through two controllers and requires byte-identical samples and
// actions — the property the load generator's drained sampling builds
// on.
func TestDeterminism(t *testing.T) {
	trace := make([]float64, 200)
	for i := range trace {
		// A deterministic bumpy day: ramps up, plateaus, ramps down.
		switch {
		case i < 50:
			trace[i] = 0.2 + float64(i)*0.02
		case i < 120:
			trace[i] = 1.1
		default:
			trace[i] = 0.15
		}
	}
	run := func() *Controller {
		ctl := New(resolved(t, Config{}, 4))
		shards := 4
		for i, occ := range trace {
			if target, resize := ctl.Step(time.Duration(i)*time.Second, occ, shards); resize {
				shards = target
			}
		}
		return ctl
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Actions(), b.Actions()) {
		t.Errorf("actions diverge:\n%+v\n%+v", a.Actions(), b.Actions())
	}
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Error("samples diverge")
	}
	if len(a.Actions()) == 0 {
		t.Error("diurnal trace produced no actions")
	}
	for _, act := range a.Actions() {
		if act.To < 1 || act.To > 16 || act.To == act.From {
			t.Errorf("action out of bounds: %+v", act)
		}
	}
}

package hash64

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	if Sum("michael jackson") != Sum("michael jackson") {
		t.Error("hash not deterministic")
	}
}

func TestStringBytesAgree(t *testing.T) {
	f := func(s string) bool { return Sum(s) == SumBytes([]byte(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctInputsUsuallyDiffer(t *testing.T) {
	seen := map[uint64]string{}
	collisions := 0
	for _, s := range []string{"youtube", "yotube", "facebook", "boa", "pof", "movies", "ringtones", "www.cnn.com", "cnn", "news"} {
		h := Sum(s)
		if prev, ok := seen[h]; ok && prev != s {
			collisions++
		}
		seen[h] = s
	}
	if collisions != 0 {
		t.Errorf("%d collisions among tiny sample", collisions)
	}
}

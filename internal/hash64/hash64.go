// Package hash64 provides the 64-bit string hash used consistently
// across the PocketSearch components: the query hash table keys its
// entries by query hash, identifies search results by the hash of
// their web address, and the result database assigns results to files
// by hash modulo the file count (paper Sections 5.2.1-5.2.2). All
// three must agree on the hash function.
//
// The hash is FNV-1a, computed inline rather than through hash/fnv so
// the serve hot path never converts a string to []byte (that
// conversion heap-allocates for strings past the runtime's small
// stack buffer) and never allocates a hash.Hash.
package hash64

// FNV-1a 64-bit parameters (the same constants hash/fnv uses).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Sum returns the FNV-1a 64-bit hash of s.
func Sum(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// SumBytes returns the FNV-1a 64-bit hash of b.
func SumBytes(b []byte) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

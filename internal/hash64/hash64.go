// Package hash64 provides the 64-bit string hash used consistently
// across the PocketSearch components: the query hash table keys its
// entries by query hash, identifies search results by the hash of
// their web address, and the result database assigns results to files
// by hash modulo the file count (paper Sections 5.2.1-5.2.2). All
// three must agree on the hash function.
package hash64

import "hash/fnv"

// Sum returns the FNV-1a 64-bit hash of s.
func Sum(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// SumBytes returns the FNV-1a 64-bit hash of b.
func SumBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

package experiments

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/cloudletos"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

// This file implements the ablation studies DESIGN.md calls out beyond
// the paper's own figures: design choices the paper asserts in prose
// that we verify quantitatively.

// SharedResultsResult quantifies the paper's claim that storing each
// search result once (instead of one result page per query) cuts
// storage "by a factor of 8".
type SharedResultsResult struct {
	// SharedBytes is the flash footprint with per-result records
	// stored once and shared across queries (the deployed layout).
	SharedBytes int64
	// DuplicatedBytes is the footprint if every cached pair stored
	// its own copy of the record (no sharing — the paper's "40% of
	// the search results would have to be stored at least twice").
	DuplicatedBytes int64
	// PerQueryPageBytes is the footprint if every cached query stored
	// a full ~100 KB result page, allocated at flash granularity.
	PerQueryPageBytes int64
}

// SharingFactor is the saving of sharing records versus duplicating
// them per pair.
func (r SharedResultsResult) SharingFactor() float64 {
	if r.SharedBytes == 0 {
		return 0
	}
	return float64(r.DuplicatedBytes) / float64(r.SharedBytes)
}

// PageFactor is the saving versus storing whole result pages.
func (r SharedResultsResult) PageFactor() float64 {
	if r.SharedBytes == 0 {
		return 0
	}
	return float64(r.PerQueryPageBytes) / float64(r.SharedBytes)
}

// AblationSharedResults compares the deployed storage layout against
// two strawmen: duplicating records per pair, and storing a full
// result page per query.
func AblationSharedResults(l *Lab) SharedResultsResult {
	content := l.Content(0, EvalShare)
	u := l.Universe()
	var r SharedResultsResult
	seenResults := map[searchlog.ResultID]bool{}
	seenQueries := map[searchlog.QueryID]bool{}
	dev := flashsim.NewDevice(flashsim.Params{})
	for _, tr := range content.Triplets {
		rid := u.ResultOf(tr.Pair)
		rec := int64(len(u.Result(rid).Record()))
		r.DuplicatedBytes += rec
		if !seenResults[rid] {
			seenResults[rid] = true
			r.SharedBytes += rec
		}
		qid := u.QueryOf(tr.Pair)
		if !seenQueries[qid] {
			seenQueries[qid] = true
			r.PerQueryPageBytes += dev.AllocatedBytes(u.PageBytes(rid))
		}
	}
	return r
}

// Table renders the comparison.
func (r SharedResultsResult) Table() Table {
	return Table{
		ID:      "Ablation: shared results",
		Title:   "Result storage layout for the evaluation cache",
		Columns: []string{"layout", "flash bytes", "vs deployed"},
		Rows: [][]string{
			{"shared records (deployed)", fmt.Sprintf("%.2f MB", float64(r.SharedBytes)/1e6), "1.0x"},
			{"record per pair (no sharing)", fmt.Sprintf("%.2f MB", float64(r.DuplicatedBytes)/1e6), fmt.Sprintf("%.1fx", r.SharingFactor())},
			{"full page per query", fmt.Sprintf("%.0f MB", float64(r.PerQueryPageBytes)/1e6), fmt.Sprintf("%.0fx", r.PageFactor())},
		},
		Notes: []string{"paper: storing individual, shared search results instead of per-query pages cuts storage by ~8x; the full-page strawman shows the upper bound"},
	}
}

// DecayResult sweeps the Equation 2 decay constant lambda.
type DecayResult struct {
	Lambdas  []float64
	HitRates []float64
	// TopChangedRate is how often the user's clicked result was
	// ranked first by the cache at click time — ranking quality.
	TopRank []float64
}

// AblationDecay replays a sample of users at different lambda values
// and reports hit rate (unchanged by ranking) plus the fraction of
// hits where the clicked result was ranked first.
func AblationDecay(l *Lab) DecayResult {
	r := DecayResult{Lambdas: []float64{0, 0.05, 0.1, 0.5, 2.0}}
	u := l.Universe()
	users := l.Generator().Users()
	sample := users
	if len(sample) > 60 {
		sample = sample[:60]
	}
	content := l.Content(0, EvalShare)
	for _, lambda := range r.Lambdas {
		hits, total, top := 0, 0, 0
		for _, up := range sample {
			dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
			cache, err := pocketsearch.Build(dev, l.Engine(), content, pocketsearch.Options{Lambda: lambda})
			if err != nil {
				panic(err)
			}
			dev.Reset()
			for _, e := range l.Generator().UserStream(up, 1) {
				q := u.QueryText(u.QueryOf(e.Pair))
				url := u.ResultURL(u.ResultOf(e.Pair))
				out, err := cache.Query(q, url)
				if err != nil {
					panic(err)
				}
				total++
				if out.Hit {
					hits++
					if len(out.Results) > 0 && out.Results[0].URL == url {
						top++
					}
				}
			}
		}
		r.HitRates = append(r.HitRates, float64(hits)/float64(total))
		if hits > 0 {
			r.TopRank = append(r.TopRank, float64(top)/float64(hits))
		} else {
			r.TopRank = append(r.TopRank, 0)
		}
	}
	return r
}

// Table renders the sweep.
func (r DecayResult) Table() Table {
	t := Table{
		ID:      "Ablation: ranking decay",
		Title:   "Personalized ranking decay constant lambda (Equation 2)",
		Columns: []string{"lambda", "hit rate", "clicked result ranked first"},
		Notes:   []string{"hit rate is insensitive to lambda; ranking quality is what the decay buys"},
	}
	for i, lam := range r.Lambdas {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", lam), percent(r.HitRates[i]), percent(r.TopRank[i]),
		})
	}
	return t
}

// ThreeTierResult compares index-placement choices (Section 3.3).
type ThreeTierResult struct {
	IndexBytes []int64
	TwoTier    []time.Duration
	ThreeTier  []time.Duration
}

// AblationThreeTier measures boot-time index availability for growing
// index sizes under the two-tier (DRAM+NAND) and three-tier
// (DRAM+PCM+NAND) memory hierarchies.
func AblationThreeTier() ThreeTierResult {
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	r := ThreeTierResult{IndexBytes: []int64{200_000, 10_000_000, 100_000_000, 1_000_000_000, 4_000_000_000}}
	for _, b := range r.IndexBytes {
		r.TwoTier = append(r.TwoTier, dev.BootIndexLoad(b, device.TwoTier))
		r.ThreeTier = append(r.ThreeTier, dev.BootIndexLoad(b, device.ThreeTier))
	}
	return r
}

// Table renders the comparison.
func (r ThreeTierResult) Table() Table {
	t := Table{
		ID:      "Ablation: three-tier memory (Section 3.3)",
		Title:   "Boot-time index load: DRAM+NAND vs DRAM+PCM+NAND",
		Columns: []string{"index size", "two-tier boot load", "three-tier boot load"},
		Notes:   []string{"paper: gigabyte indexes make NAND reload prohibitive; PCM makes indexes instantly available at boot"},
	}
	for i, b := range r.IndexBytes {
		t.Rows = append(t.Rows, []string{
			formatBytes(b),
			r.TwoTier[i].Round(time.Millisecond).String(),
			r.ThreeTier[i].String(),
		})
	}
	return t
}

// CoordinatedEvictionResult compares cross-cloudlet eviction policies.
type CoordinatedEvictionResult struct {
	// StrandedBytes is the flash left holding related-but-useless
	// items after uncoordinated eviction.
	StrandedBytes int64
	// CoordinatedFreed and UncoordinatedFreed are the bytes freed by
	// the same reclamation target under each policy.
	CoordinatedFreed, UncoordinatedFreed int64
}

// AblationCoordinatedEviction builds a search+ads+maps cloudlet set
// with related items and compares coordinated and independent
// eviction under the same reclamation pressure (Section 7).
func AblationCoordinatedEviction() CoordinatedEvictionResult {
	build := func() (*cloudletos.Manager, []*cloudletos.KVCloudlet) {
		m, err := cloudletos.NewManager(64 << 20)
		if err != nil {
			panic(err)
		}
		store := flashsim.NewFileStore(flashsim.NewDevice(flashsim.Params{}))
		names := []string{"search", "ads", "maps"}
		var cls []*cloudletos.KVCloudlet
		for _, n := range names {
			c, err := cloudletos.NewKVCloudlet(n, store)
			if err != nil {
				panic(err)
			}
			if err := m.Register(c, cloudletos.Quota{FlashBytes: 16 << 20}); err != nil {
				panic(err)
			}
			cls = append(cls, c)
		}
		// 200 queries, each with a search entry, an ad and a map tile
		// sharing a relation tag. Search utilities span the full range
		// while ads/tiles — small and individually cheap — never fall
		// below 0.6, so a per-item policy ranks a dying query's ad
		// above the query itself.
		for q := 0; q < 200; q++ {
			rel := hash64.Sum(fmt.Sprintf("query-%d", q))
			util := 1 - float64(q)/200
			cls[0].Put(uint64(q), rel, util, make([]byte, 2000))
			cls[1].Put(uint64(q), rel, 0.6+0.4*util, make([]byte, 5000))
			cls[2].Put(uint64(q), rel, 0.6+0.4*util, make([]byte, 5000))
		}
		return m, cls
	}

	const want = 100_000
	var r CoordinatedEvictionResult

	m1, cls1 := build()
	r.UncoordinatedFreed = m1.Reclaim(want, false)
	// Stranded: ads/maps whose search entry is gone.
	surviving := map[uint64]bool{}
	for _, it := range cls1[0].Items() {
		surviving[it.Relation] = true
	}
	for _, c := range cls1[1:] {
		for _, it := range c.Items() {
			if !surviving[it.Relation] {
				r.StrandedBytes += it.Bytes
			}
		}
	}

	m2, _ := build()
	r.CoordinatedFreed = m2.Reclaim(want, true)
	return r
}

// Table renders the comparison.
func (r CoordinatedEvictionResult) Table() Table {
	return Table{
		ID:      "Ablation: coordinated eviction (Section 7)",
		Title:   "Cross-cloudlet eviction of related items",
		Columns: []string{"metric", "bytes"},
		Rows: [][]string{
			{"freed, uncoordinated", fmt.Sprintf("%d", r.UncoordinatedFreed)},
			{"stranded related items after uncoordinated eviction", fmt.Sprintf("%d", r.StrandedBytes)},
			{"freed, coordinated (same pressure)", fmt.Sprintf("%d", r.CoordinatedFreed)},
		},
		Notes: []string{"paper: when a query misses in the search cache there is no benefit in hitting the ad cache — related items should be evicted together"},
	}
}

package experiments

import (
	"fmt"

	"pocketcloudlets/internal/nvm"
)

// Table1 reproduces the paper's Table 1: NVM technology scaling trends.
type Table1Result struct {
	Trends []nvm.TrendPoint
}

// Table1 returns the scaling-trend projection.
func Table1() Table1Result { return Table1Result{Trends: nvm.Trends()} }

// Table renders the result.
func (r Table1Result) Table() Table {
	t := Table{
		ID:      "Table 1",
		Title:   "Technology scaling trends",
		Columns: []string{"year", "technology", "tech (nm)", "scaling factor", "chip stack", "cell layers", "bits per cell"},
	}
	for _, p := range r.Trends {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Year),
			p.Technology.String(),
			fmt.Sprintf("%d", p.TechNM),
			fmt.Sprintf("%g", p.ScalingFactor),
			fmt.Sprintf("%d", p.ChipStack),
			fmt.Sprintf("%d", p.CellLayers),
			fmt.Sprintf("%g", p.BitsPerCell),
		})
	}
	return t
}

// Fig2Result carries the Figure 2 capacity evolution curves.
type Fig2Result struct {
	Scenarios []nvm.Scenario
	// HighEnd[i] and LowEnd[i] are the curves for scenario i.
	HighEnd [][]nvm.CapacityPoint
	LowEnd  [][]nvm.CapacityPoint
}

// Fig2 projects smartphone NVM capacity for every scenario.
func Fig2() Fig2Result {
	r := Fig2Result{Scenarios: nvm.Scenarios()}
	for _, s := range r.Scenarios {
		r.HighEnd = append(r.HighEnd, nvm.Project(nvm.HighEnd2010, s))
		r.LowEnd = append(r.LowEnd, nvm.Project(nvm.LowEnd2010, s))
	}
	return r
}

func formatBytes(b int64) string {
	switch {
	case b >= nvm.TB:
		return fmt.Sprintf("%.1f TB", float64(b)/float64(nvm.TB))
	case b >= nvm.GB:
		return fmt.Sprintf("%.1f GB", float64(b)/float64(nvm.GB))
	case b >= nvm.MB:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(nvm.MB))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Table renders the high-end curves (the paper's plotted device class).
func (r Fig2Result) Table() Table {
	t := Table{
		ID:      "Figure 2",
		Title:   "Projected NVM capacity of a high-end smartphone (32 GB in 2010)",
		Columns: []string{"scenario"},
		Notes: []string{
			"paper: high-end phones may reach ~1 TB as early as 2018",
			fmt.Sprintf("low-end (512 MB in 2010) reaches %s in 2018 and %s in 2026 under all techniques",
				formatBytes(mustCap(nvm.LowEnd2010, 2018)), formatBytes(mustCap(nvm.LowEnd2010, 2026))),
		},
	}
	if len(r.HighEnd) == 0 {
		return t
	}
	for _, p := range r.HighEnd[0] {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", p.Year))
	}
	for i, s := range r.Scenarios {
		row := []string{s.Name}
		for _, p := range r.HighEnd[i] {
			row = append(row, formatBytes(p.Bytes))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func mustCap(base int64, year int) int64 {
	c, ok := nvm.CapacityIn(base, nvm.Scenarios()[3], year)
	if !ok {
		return 0
	}
	return c
}

// Table2Result carries the Table 2 item-count rows.
type Table2Result struct {
	Budget int64
	Rows   []nvm.ItemCountRow
}

// Table2 computes the items storable in the 25.6 GB cloudlet budget.
func Table2() Table2Result {
	return Table2Result{Budget: nvm.Table2Budget, Rows: nvm.Table2()}
}

// Table renders the result.
func (r Table2Result) Table() Table {
	t := Table{
		ID:      "Table 2",
		Title:   fmt.Sprintf("Data items storable in %s (10%% of projected low-end NVM)", formatBytes(r.Budget)),
		Columns: []string{"pocket cloudlet", "single item", "number of items"},
		Notes:   []string{"paper: ~270,000 result pages / ~5,500,000 5 KB items / ~17,500 web sites"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Cloudlet.Name,
			fmt.Sprintf("%s (%s)", formatBytes(row.Cloudlet.ItemSize), row.Cloudlet.ItemDesc),
			fmt.Sprintf("%d", row.Count),
		})
	}
	return t
}

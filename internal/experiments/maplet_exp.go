package experiments

import (
	"fmt"
	"math/rand"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/maplet"
	"pocketcloudlets/internal/radio"
)

// MapletResult carries the mapping-cloudlet extension experiment: a
// month of map browsing against a state-sized provisioned pyramid.
type MapletResult struct {
	HomeZoom       int
	ProvisionedGB  float64
	Sessions       int
	TileHitRate    float64
	RadioMB        float64
	StateTiles300m int64
}

// ExtMaplet provisions the user's state at the Table 2 budget and
// replays a month of map sessions: most browsing happens around home
// and work, with occasional trips out of the region.
func ExtMaplet(seed int64) MapletResult {
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	c, err := maplet.New(dev, maplet.Config{})
	if err != nil {
		panic(err)
	}
	state := maplet.Region{MinX: 0.50, MinY: 0.30, MaxX: 0.53, MaxY: 0.33}
	zoom, err := c.ProvisionHome(state)
	if err != nil {
		panic(err)
	}
	dev.Reset()

	rng := rand.New(rand.NewSource(seed))
	home := [2]float64{0.512, 0.318}
	work := [2]float64{0.522, 0.309}
	const sessions = 120 // ~4 map sessions a day for a month
	for s := 0; s < sessions; s++ {
		var cx, cy float64
		switch {
		case rng.Float64() < 0.10: // a trip out of the region
			cx, cy = rng.Float64(), rng.Float64()
		case rng.Float64() < 0.5:
			cx, cy = home[0]+0.004*(rng.Float64()-0.5), home[1]+0.004*(rng.Float64()-0.5)
		default:
			cx, cy = work[0]+0.004*(rng.Float64()-0.5), work[1]+0.004*(rng.Float64()-0.5)
		}
		// A session: pan and zoom a few viewports.
		views := 3 + rng.Intn(5)
		for v := 0; v < views; v++ {
			z := c.HomeZoom() - rng.Intn(4)
			if _, _, err := c.Viewport(cx, cy, z, 3, 3); err != nil {
				panic(err)
			}
			cx += 0.0005 * (rng.Float64() - 0.5)
			cy += 0.0005 * (rng.Float64() - 0.5)
		}
	}
	st := c.Stats()
	return MapletResult{
		HomeZoom:       zoom,
		ProvisionedGB:  float64(c.ProvisionedBytes()) / 1e9,
		Sessions:       sessions,
		TileHitRate:    st.HitRate(),
		RadioMB:        float64(st.RadioBytes) / 1e6,
		StateTiles300m: maplet.StateRegionTiles(400_000),
	}
}

// Table renders the experiment.
func (r MapletResult) Table() Table {
	return Table{
		ID:      "Extension: mapping cloudlet",
		Title:   "A month of map browsing against a provisioned state pyramid",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"provisioned pyramid", fmt.Sprintf("%.1f GB, zooms %d..%d", r.ProvisionedGB, 7, r.HomeZoom)},
			{"map sessions", fmt.Sprintf("%d", r.Sessions)},
			{"tile hit rate", percent(r.TileHitRate)},
			{"radio traffic", fmt.Sprintf("%.1f MB/month", r.RadioMB)},
			{"300 m tiles for a 400k km² state", fmt.Sprintf("%d", r.StateTiles300m)},
		},
		Notes: []string{
			"paper (Table 2, Section 7): ~5.5M map tiles cover a whole state; ~25 GB caches the user's state so in-region map use never wakes the radio",
		},
	}
}

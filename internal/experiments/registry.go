package experiments

// Spec describes one runnable experiment for the command-line driver
// and the benchmark harness.
type Spec struct {
	// Name is the short handle used with `cmd/experiments -run`.
	Name string
	// ID is the paper artifact it reproduces.
	ID string
	// Heavy marks experiments that generate logs or run replays and
	// therefore take seconds to minutes.
	Heavy bool
	// Run executes the experiment and renders its table. The lab may
	// be shared across experiments within a process.
	Run func(l *Lab) Table
}

// All lists every experiment in paper order.
func All() []Spec {
	return []Spec{
		{Name: "table1", ID: "Table 1", Run: func(*Lab) Table { return Table1().Table() }},
		{Name: "fig2", ID: "Figure 2", Run: func(*Lab) Table { return Fig2().Table() }},
		{Name: "table2", ID: "Table 2", Run: func(*Lab) Table { return Table2().Table() }},
		{Name: "fig4a", ID: "Figure 4a", Heavy: true, Run: func(l *Lab) Table { return Fig4a(l).Table() }},
		{Name: "fig4b", ID: "Figure 4b", Heavy: true, Run: func(l *Lab) Table { return Fig4b(l).Table() }},
		{Name: "fig5", ID: "Figure 5", Heavy: true, Run: func(l *Lab) Table { return Fig5(l).Table() }},
		{Name: "table3", ID: "Table 3", Heavy: true, Run: func(l *Lab) Table { return Table3(l, 10).Table() }},
		{Name: "fig7", ID: "Figure 7", Heavy: true, Run: func(l *Lab) Table { return Fig7(l).Table() }},
		{Name: "fig8", ID: "Figure 8", Heavy: true, Run: func(l *Lab) Table { return Fig8(l).Table() }},
		{Name: "fig11", ID: "Figure 11", Heavy: true, Run: func(l *Lab) Table { return Fig11(l).Table() }},
		{Name: "fig12", ID: "Figure 12", Run: func(*Lab) Table { return Fig12().Table() }},
		{Name: "table4", ID: "Table 4", Heavy: true, Run: func(l *Lab) Table { return Table4(l).Table() }},
		{Name: "fig15a", ID: "Figure 15a", Heavy: true, Run: func(l *Lab) Table { return Fig15(l).TableTime() }},
		{Name: "fig15b", ID: "Figure 15b", Heavy: true, Run: func(l *Lab) Table { return Fig15(l).TableEnergy() }},
		{Name: "fig16", ID: "Figure 16", Heavy: true, Run: func(l *Lab) Table { return Fig16(l).Table() }},
		{Name: "table5", ID: "Table 5", Heavy: true, Run: func(l *Lab) Table { return Table5(l).Table() }},
		{Name: "table6", ID: "Table 6", Heavy: true, Run: func(l *Lab) Table { return Table6(l).Table() }},
		{Name: "fig17", ID: "Figure 17", Heavy: true, Run: func(l *Lab) Table { return Fig17(l).Table() }},
		{Name: "fig18", ID: "Figure 18", Heavy: true, Run: func(l *Lab) Table { return Fig18(l).Table() }},
		{Name: "fig19", ID: "Figure 19", Heavy: true, Run: func(l *Lab) Table { return Fig19(l).Table() }},
		{Name: "dailyupdates", ID: "Section 6.2.2", Heavy: true, Run: func(l *Lab) Table { return DailyUpdates(l).Table() }},
		{Name: "ablation-shared", ID: "Ablation", Heavy: true, Run: func(l *Lab) Table { return AblationSharedResults(l).Table() }},
		{Name: "ablation-decay", ID: "Ablation", Heavy: true, Run: func(l *Lab) Table { return AblationDecay(l).Table() }},
		{Name: "ablation-threetier", ID: "Ablation", Run: func(*Lab) Table { return AblationThreeTier().Table() }},
		{Name: "ablation-eviction", ID: "Ablation", Run: func(*Lab) Table { return AblationCoordinatedEviction().Table() }},
		{Name: "ext-pocketweb", ID: "Extension", Heavy: true, Run: func(l *Lab) Table { return ExtPocketWeb(l).Table() }},
		{Name: "ext-autocomplete", ID: "Extension", Heavy: true, Run: func(l *Lab) Table { return ExtAutocomplete(l).Table() }},
		{Name: "ext-maplet", ID: "Extension", Run: func(l *Lab) Table { return ExtMaplet(l.Seed).Table() }},
	}
}

// Find returns the spec with the given name.
func Find(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

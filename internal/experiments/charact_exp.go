package experiments

import (
	"fmt"

	"pocketcloudlets/internal/analysis"
)

// Fig4TopNs are the x-axis points of the Figure 4 CDFs.
var Fig4TopNs = []int{500, 1000, 2000, 4000, 5000, 6000, 10000, 20000, 40000}

// fig4Series names one curve of Figure 4.
type fig4Series struct {
	name   string
	filter analysis.Filter
}

func fig4SeriesSet() []fig4Series {
	return []fig4Series{
		{"all", analysis.Filter{}},
		{"navigational", analysis.Filter{Nav: analysis.NavOnly}},
		{"non-navigational", analysis.Filter{Nav: analysis.NonNavOnly}},
		{"smartphone", analysis.Filter{Device: analysis.SmartphoneOnly}},
		{"featurephone", analysis.Filter{Device: analysis.FeaturephoneOnly}},
	}
}

// Fig4Result carries one Figure 4 panel: for each series, the
// cumulative volume share at each top-N.
type Fig4Result struct {
	Panel  string // "query" (4a) or "search result" (4b)
	TopNs  []int
	Series []string
	Shares [][]analysis.CDFPoint
}

// Fig4a computes the cumulative query-volume CDF (Figure 4a).
func Fig4a(l *Lab) Fig4Result {
	return fig4(l, "query", func(f analysis.Filter) []int64 {
		return analysis.QueryVolumes(l.MonthLog(0).Entries, l.Universe(), f)
	})
}

// Fig4b computes the cumulative clicked-result-volume CDF (Figure 4b).
func Fig4b(l *Lab) Fig4Result {
	return fig4(l, "search result", func(f analysis.Filter) []int64 {
		return analysis.ResultVolumes(l.MonthLog(0).Entries, l.Universe(), f)
	})
}

func fig4(l *Lab, panel string, volumes func(analysis.Filter) []int64) Fig4Result {
	r := Fig4Result{Panel: panel, TopNs: Fig4TopNs}
	for _, s := range fig4SeriesSet() {
		r.Series = append(r.Series, s.name)
		r.Shares = append(r.Shares, analysis.TopShares(volumes(s.filter), Fig4TopNs))
	}
	return r
}

// Share returns the share for a series name at a top-N, or -1.
func (r Fig4Result) Share(series string, topN int) float64 {
	for i, s := range r.Series {
		if s != series {
			continue
		}
		for _, p := range r.Shares[i] {
			if p.TopN == topN {
				return p.Share
			}
		}
	}
	return -1
}

// Table renders the panel.
func (r Fig4Result) Table() Table {
	id, plural := "Figure 4a", "queries"
	note := "paper: top 6000 queries cover ~60% of volume; navigational far more concentrated (top 5000 ~90%) than non-navigational (~30%)"
	if r.Panel == "search result" {
		id, plural = "Figure 4b", "search results"
		note = "paper: only ~4000 results are needed for the ~60% the top 6000 queries cover (misspellings and shortcuts share results)"
	}
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Cumulative %s volume vs. most popular %s", r.Panel, plural),
		Columns: []string{"series"},
		Notes:   []string{note},
	}
	for _, n := range r.TopNs {
		t.Columns = append(t.Columns, fmt.Sprintf("top %d", n))
	}
	for i, s := range r.Series {
		row := []string{s}
		for _, p := range r.Shares[i] {
			row = append(row, percent(p.Share))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5Probs are the x-axis points of Figure 5: P(new query).
var Fig5Probs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig5Result carries the Figure 5 repeatability CDF.
type Fig5Result struct {
	Probs  []float64
	Series []string
	// FracUsers[s][p]: fraction of users whose probability of
	// submitting a new query is at most Probs[p].
	FracUsers  [][]float64
	MeanRepeat float64
}

// Fig5 computes the per-user repeatability CDF over one month.
func Fig5(l *Lab) Fig5Result {
	r := Fig5Result{Probs: Fig5Probs}
	entries := l.MonthLog(0).Entries
	for _, s := range []fig4Series{
		{"all queries", analysis.Filter{}},
		{"navigational", analysis.Filter{Nav: analysis.NavOnly}},
		{"non-navigational", analysis.Filter{Nav: analysis.NonNavOnly}},
	} {
		stats := analysis.RepeatStats(entries, l.Universe(), s.filter)
		row := make([]float64, len(Fig5Probs))
		for i, p := range Fig5Probs {
			row[i] = analysis.FracUsersNewAtMost(stats, p)
		}
		r.Series = append(r.Series, s.name)
		r.FracUsers = append(r.FracUsers, row)
		if s.name == "all queries" {
			r.MeanRepeat = analysis.MeanRepeatFrac(stats)
		}
	}
	return r
}

// AtProb returns the all-queries CDF value at probability p, or -1.
func (r Fig5Result) AtProb(p float64) float64 {
	for i, pp := range r.Probs {
		if pp == p && len(r.FracUsers) > 0 {
			return r.FracUsers[0][i]
		}
	}
	return -1
}

// Table renders the CDF.
func (r Fig5Result) Table() Table {
	t := Table{
		ID:      "Figure 5",
		Title:   "Fraction of users vs. probability of submitting a new query (1 month)",
		Columns: []string{"series"},
		Notes: []string{
			"paper: ~50% of users submit a new query at most 30% of the time (>=70% repeats)",
			fmt.Sprintf("measured mean repeat rate: %s (paper: 56.5%% mobile vs ~40%% desktop)", percent(r.MeanRepeat)),
		},
	}
	for _, p := range r.Probs {
		t.Columns = append(t.Columns, fmt.Sprintf("<=%.1f", p))
	}
	for i, s := range r.Series {
		row := []string{s}
		for _, f := range r.FracUsers[i] {
			row = append(row, percent(f))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3Result carries the head of the community triplet table.
type Table3Result struct {
	Rows        []Table3Row
	TotalVolume int64
}

// Table3Row is one materialized triplet.
type Table3Row struct {
	Query  string
	URL    string
	Volume int64
}

// Table3 extracts the most popular (query, search result, volume)
// triplets from the community logs.
func Table3(l *Lab, topN int) Table3Result {
	tbl := l.Triplets(0)
	u := l.Universe()
	if topN > len(tbl.Triplets) {
		topN = len(tbl.Triplets)
	}
	r := Table3Result{TotalVolume: tbl.TotalVolume}
	for _, tr := range tbl.Triplets[:topN] {
		r.Rows = append(r.Rows, Table3Row{
			Query:  u.QueryText(u.QueryOf(tr.Pair)),
			URL:    u.ResultURL(u.ResultOf(tr.Pair)),
			Volume: tr.Volume,
		})
	}
	return r
}

// Table renders the triplets.
func (r Table3Result) Table() Table {
	t := Table{
		ID:      "Table 3",
		Title:   "Most popular (query, search result, volume) triplets",
		Columns: []string{"query", "search result", "volume"},
		Notes:   []string{fmt.Sprintf("total volume: %d", r.TotalVolume)},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Query, row.URL, fmt.Sprintf("%d", row.Volume)})
	}
	return t
}

// Table6Result carries the measured user-class shares.
type Table6Result struct {
	Shares []analysis.BracketShare
}

// Table6 classifies the generated population by monthly query volume.
func Table6(l *Lab) Table6Result {
	volumes := analysis.MonthlyVolumes(l.MonthLog(0).Entries)
	return Table6Result{Shares: analysis.ClassShares(volumes, analysis.Table6Brackets())}
}

// Table renders the classification.
func (r Table6Result) Table() Table {
	t := Table{
		ID:      "Table 6",
		Title:   "Classes of users by monthly query volume",
		Columns: []string{"user class", "monthly query volume", "% of users"},
		Notes:   []string{"paper: 55% / 36% / 8% / 1%"},
	}
	for _, s := range r.Shares {
		bracket := fmt.Sprintf("[%d, %d)", s.Bracket.Min, s.Bracket.Max)
		if s.Bracket.Max >= 1<<29 {
			bracket = fmt.Sprintf("[%d, inf)", s.Bracket.Min)
		}
		t.Rows = append(t.Rows, []string{s.Bracket.Name, bracket, percent(s.Share)})
	}
	return t
}

// Package experiments regenerates every table and figure of the Pocket
// Cloudlets paper's evaluation from the simulated system. Each
// experiment returns typed data plus a renderable Table so that
// cmd/experiments can print paper-style output and the benchmark
// harness (bench_test.go) can exercise the same code paths.
//
// The per-experiment index lives in DESIGN.md; expected-versus-measured
// values are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact this reproduces ("Table 4", "Figure 17").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry comparison points from the paper.
	Notes []string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Lab owns the shared, lazily computed simulation state every
// log-driven experiment needs: the universe, the user population, the
// month logs and their triplet tables, and community cache contents.
type Lab struct {
	// Seed drives all randomness.
	Seed int64
	// Users is the community population size (defaults to the
	// calibrated workload.CommunityUsers).
	Users int
	// UsersPerClass is the replay sample per class (the paper uses
	// 100; benchmarks may use fewer).
	UsersPerClass int

	universe *engine.Universe
	eng      *engine.Engine
	gen      *workload.Generator
	logs     map[int]searchlog.Log
	triplets map[int]searchlog.TripletTable
	contents map[contentKey]cachegen.Content
	replays  map[replay.Mode]replay.Result
}

type contentKey struct {
	month int
	share int // share * 1000
}

// NewLab creates a lab. Zero values select the calibrated defaults
// (20000 users, 100 replayed users per class).
func NewLab(seed int64, users, usersPerClass int) *Lab {
	if users <= 0 {
		users = workload.CommunityUsers
	}
	if usersPerClass <= 0 {
		usersPerClass = 100
	}
	return &Lab{
		Seed:          seed,
		Users:         users,
		UsersPerClass: usersPerClass,
		logs:          make(map[int]searchlog.Log),
		triplets:      make(map[int]searchlog.TripletTable),
		contents:      make(map[contentKey]cachegen.Content),
	}
}

// Universe returns the lab's corpus, building it on first use.
func (l *Lab) Universe() *engine.Universe {
	if l.universe == nil {
		l.universe = engine.MustUniverse(engine.DefaultConfig())
	}
	return l.universe
}

// Engine returns the lab's cloud engine.
func (l *Lab) Engine() *engine.Engine {
	if l.eng == nil {
		l.eng = engine.New(l.Universe())
	}
	return l.eng
}

// Generator returns the lab's workload generator.
func (l *Lab) Generator() *workload.Generator {
	if l.gen == nil {
		g, err := workload.New(workload.DefaultConfig(l.Universe(), l.Users, l.Seed))
		if err != nil {
			panic(fmt.Sprintf("experiments: generator: %v", err))
		}
		l.gen = g
	}
	return l.gen
}

// MonthLog returns (and caches) the community log for a month.
func (l *Lab) MonthLog(month int) searchlog.Log {
	if log, ok := l.logs[month]; ok {
		return log
	}
	log := l.Generator().MonthLog(month)
	l.logs[month] = log
	return log
}

// Triplets returns (and caches) the sorted triplet table for a month.
func (l *Lab) Triplets(month int) searchlog.TripletTable {
	if tbl, ok := l.triplets[month]; ok {
		return tbl
	}
	tbl := searchlog.ExtractTriplets(l.MonthLog(month).Entries)
	l.triplets[month] = tbl
	return tbl
}

// Content returns (and caches) community cache content built from a
// month's logs at a cumulative-volume share.
func (l *Lab) Content(month int, share float64) cachegen.Content {
	key := contentKey{month: month, share: int(share * 1000)}
	if c, ok := l.contents[key]; ok {
		return c
	}
	tbl := l.Triplets(month)
	n, err := cachegen.SelectByShare(tbl, share)
	if err != nil {
		panic(fmt.Sprintf("experiments: content selection: %v", err))
	}
	c := cachegen.Generate(tbl, l.Universe(), n)
	l.contents[key] = c
	return c
}

// EvalShare is the cumulative-volume share the paper's evaluation cache
// covers ("approximately 55% of the cumulative query-search result
// volume").
const EvalShare = 0.55

// percent formats a fraction as a percentage cell.
func percent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

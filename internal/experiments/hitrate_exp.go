package experiments

import (
	"fmt"
	"sort"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// runReplay executes (and caches) one Figure 17 replay configuration;
// Figures 17, 18 and 19 all read from the same three replays.
func (l *Lab) runReplay(mode replay.Mode) replay.Result {
	if l.replays == nil {
		l.replays = make(map[replay.Mode]replay.Result)
	}
	if res, ok := l.replays[mode]; ok {
		return res
	}
	res, err := replay.Run(replay.Config{
		Gen:           l.Generator(),
		Content:       l.Content(0, EvalShare),
		Mode:          mode,
		UsersPerClass: l.UsersPerClass,
		Month:         1,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: replay: %v", err))
	}
	l.replays[mode] = res
	return res
}

// Fig17Result carries per-mode, per-class hit rates.
type Fig17Result struct {
	Modes   []replay.Mode
	Results []replay.Result
}

// Fig17 replays the month-1 streams of sampled users of every class
// against the month-0 cache in the full, community-only and
// personalization-only configurations.
func Fig17(l *Lab) Fig17Result {
	var r Fig17Result
	for _, m := range replay.Modes() {
		r.Modes = append(r.Modes, m)
		r.Results = append(r.Results, l.runReplay(m))
	}
	return r
}

// Rate returns the hit rate for a mode and class.
func (r Fig17Result) Rate(mode replay.Mode, class workload.Class) float64 {
	for i, m := range r.Modes {
		if m == mode {
			return r.Results[i].ClassRate(class)
		}
	}
	return 0
}

// Average returns the mode's class-averaged hit rate.
func (r Fig17Result) Average(mode replay.Mode) float64 {
	for i, m := range r.Modes {
		if m == mode {
			var sum float64
			for _, cr := range r.Results[i].Classes {
				sum += cr.HitRate
			}
			return sum / float64(len(r.Results[i].Classes))
		}
	}
	return 0
}

// Table renders the hit rates.
func (r Fig17Result) Table() Table {
	t := Table{
		ID:      "Figure 17",
		Title:   "PocketSearch average cache hit rate per user class",
		Columns: []string{"configuration", "low", "medium", "high", "extreme", "average"},
		Notes: []string{
			"paper: full ~60/70/75/75 (avg 65%); community-only avg 55%, rising with volume; personalization-only avg 56.5%",
		},
	}
	for i, m := range r.Modes {
		row := []string{m.String()}
		for _, c := range workload.Classes() {
			row = append(row, percent(r.Results[i].ClassRate(c)))
		}
		row = append(row, percent(r.Average(m)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig18Result carries the warm-up dynamics: cumulative hit rates after
// week one and after weeks one-two, per mode and class.
type Fig18Result struct {
	Modes []replay.Mode
	// Week1[m][c] and Weeks12[m][c] index by mode then class.
	Week1   [][]float64
	Weeks12 [][]float64
}

// Fig18 computes the Figure 18 warm-up curves from the same replays.
func Fig18(l *Lab) Fig18Result {
	var r Fig18Result
	for _, m := range replay.Modes() {
		res := l.runReplay(m)
		var w1, w12 []float64
		for _, cr := range res.Classes {
			w1 = append(w1, cr.CumWeekHitRate[0])
			w12 = append(w12, cr.CumWeekHitRate[1])
		}
		r.Modes = append(r.Modes, m)
		r.Week1 = append(r.Week1, w1)
		r.Weeks12 = append(r.Weeks12, w12)
	}
	return r
}

// Table renders both panels.
func (r Fig18Result) Table() Table {
	t := Table{
		ID:      "Figure 18",
		Title:   "Average cache hit rate during the first week (a) and first two weeks (b)",
		Columns: []string{"configuration", "window", "low", "medium", "high", "extreme"},
		Notes: []string{
			"paper: the community component provides the warm start; personalization lags it during week one, especially for light users",
		},
	}
	for i, m := range r.Modes {
		row1 := []string{m.String(), "week 1"}
		row2 := []string{m.String(), "weeks 1-2"}
		for c := range workload.Classes() {
			row1 = append(row1, percent(r.Week1[i][c]))
			row2 = append(row2, percent(r.Weeks12[i][c]))
		}
		t.Rows = append(t.Rows, row1, row2)
	}
	return t
}

// Fig19Result carries the navigational share of hits per class.
type Fig19Result struct {
	Classes  []workload.Class
	NavShare []float64
}

// Fig19 breaks the full configuration's cache hits into navigational
// and non-navigational per class.
func Fig19(l *Lab) Fig19Result {
	res := l.runReplay(replay.Full)
	var r Fig19Result
	for _, cr := range res.Classes {
		r.Classes = append(r.Classes, cr.Class)
		r.NavShare = append(r.NavShare, cr.NavShare)
	}
	return r
}

// Table renders the breakdown.
func (r Fig19Result) Table() Table {
	t := Table{
		ID:      "Figure 19",
		Title:   "Breakdown of cache hits into navigational and non-navigational",
		Columns: []string{"user class", "navigational", "non-navigational"},
		Notes: []string{
			"paper: ~59% of hits are navigational on average; high/extreme classes have markedly higher non-navigational shares",
		},
	}
	for i, c := range r.Classes {
		t.Rows = append(t.Rows, []string{
			c.String(), percent(r.NavShare[i]), percent(1 - r.NavShare[i]),
		})
	}
	return t
}

// DailyUpdatesResult compares static and daily-updated caches.
type DailyUpdatesResult struct {
	StaticAvg float64
	DailyAvg  float64
	// ChangedPairsPerDay is the mean size of the daily popular-set
	// delta (adds + removes).
	ChangedPairsPerDay float64
}

// DailyUpdates reproduces the Section 6.2.2 experiment: the community
// popular set is re-extracted daily from a sliding window that absorbs
// the replay month's traffic, and the per-day delta is applied to each
// user's cache. The paper measured a 1.5-point improvement (66% vs 65%)
// because the popular set changes little within a month.
func DailyUpdates(l *Lab) DailyUpdatesResult {
	static := l.runReplay(replay.Full)

	// Build per-day popular sets over month0 + month1[:day].
	month1 := l.MonthLog(1).Entries
	sort.Slice(month1, func(i, j int) bool { return month1[i].At < month1[j].At })
	counts := make(map[searchlog.PairID]int64, 1<<20)
	var totalVolume int64
	for _, e := range l.MonthLog(0).Entries {
		counts[e.Pair]++
		totalVolume++
	}
	deltas := make([]replay.Delta, 31)
	prevSet := contentPairSet(l.Content(0, EvalShare))
	idx := 0
	totalChanged := 0
	for day := 1; day <= 30; day++ {
		cutoff := time.Duration(day) * 24 * time.Hour
		for idx < len(month1) && month1[idx].At < cutoff {
			counts[month1[idx].Pair]++
			totalVolume++
			idx++
		}
		tbl := tableFromCounts(counts, totalVolume)
		n, err := cachegen.SelectByShare(tbl, EvalShare)
		if err != nil {
			panic(err)
		}
		content := cachegen.Generate(tbl, l.Universe(), n)
		newSet := contentPairSet(content)
		delta := diffContent(content, prevSet, newSet)
		totalChanged += len(delta.Add.Triplets) + len(delta.Remove)
		deltas[day] = delta
		prevSet = newSet
	}

	daily, err := replay.Run(replay.Config{
		Gen:           l.Generator(),
		Content:       l.Content(0, EvalShare),
		Mode:          replay.Full,
		UsersPerClass: l.UsersPerClass,
		Month:         1,
		DailyDelta: func(day int) replay.Delta {
			if day >= 1 && day < len(deltas) {
				return deltas[day]
			}
			return replay.Delta{}
		},
	})
	if err != nil {
		panic(err)
	}

	avg := func(res replay.Result) float64 {
		var sum float64
		for _, cr := range res.Classes {
			sum += cr.HitRate
		}
		return sum / float64(len(res.Classes))
	}
	return DailyUpdatesResult{
		StaticAvg:          avg(static),
		DailyAvg:           avg(daily),
		ChangedPairsPerDay: float64(totalChanged) / 30,
	}
}

func contentPairSet(c cachegen.Content) map[searchlog.PairID]bool {
	set := make(map[searchlog.PairID]bool, len(c.Triplets))
	for _, tr := range c.Triplets {
		set[tr.Pair] = true
	}
	return set
}

// diffContent computes the delta from prevSet to the new content.
func diffContent(content cachegen.Content, prevSet, newSet map[searchlog.PairID]bool) replay.Delta {
	var d replay.Delta
	d.Add.Scores = make(map[searchlog.PairID]float64)
	for _, tr := range content.Triplets {
		if !prevSet[tr.Pair] {
			d.Add.Triplets = append(d.Add.Triplets, tr)
			d.Add.Scores[tr.Pair] = content.Scores[tr.Pair]
		}
	}
	for p := range prevSet {
		if !newSet[p] {
			d.Remove = append(d.Remove, p)
		}
	}
	sort.Slice(d.Remove, func(i, j int) bool { return d.Remove[i] < d.Remove[j] })
	return d
}

// tableFromCounts builds a sorted triplet table from a running count map.
func tableFromCounts(counts map[searchlog.PairID]int64, total int64) searchlog.TripletTable {
	tbl := searchlog.TripletTable{TotalVolume: total}
	tbl.Triplets = make([]searchlog.Triplet, 0, len(counts))
	for p, v := range counts {
		tbl.Triplets = append(tbl.Triplets, searchlog.Triplet{Pair: p, Volume: v})
	}
	sort.Slice(tbl.Triplets, func(i, j int) bool {
		a, b := tbl.Triplets[i], tbl.Triplets[j]
		if a.Volume != b.Volume {
			return a.Volume > b.Volume
		}
		return a.Pair < b.Pair
	})
	return tbl
}

// Table renders the comparison.
func (r DailyUpdatesResult) Table() Table {
	return Table{
		ID:      "Section 6.2.2",
		Title:   "Daily cache updates",
		Columns: []string{"configuration", "average hit rate"},
		Rows: [][]string{
			{"monthly cache (static)", percent(r.StaticAvg)},
			{"daily updates", percent(r.DailyAvg)},
		},
		Notes: []string{
			"paper: 66% with daily updates vs 65% without — the popular set changes little within the month",
			fmt.Sprintf("measured mean daily popular-set churn: %.0f pairs", r.ChangedPairsPerDay),
		},
	}
}

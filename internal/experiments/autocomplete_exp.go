package experiments

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
)

// AutocompleteResult carries the keystroke-latency extension
// experiment: typing a query letter by letter with local
// auto-completion versus the production scheme the paper describes in
// Section 8, where every typed letter submits a background query to
// the server over the radio.
type AutocompleteResult struct {
	Query     string
	Keystroke int // letters typed
	// LocalPerKey is the modeled on-device completion time per
	// keystroke (a DRAM trie walk, bounded by the paper's 10 µs
	// lookup scale).
	LocalPerKey time.Duration
	// RadioTotal is the cumulative radio time for per-letter server
	// suggestions over 3G (first letter pays the wake-up; later
	// letters ride the warm radio).
	RadioTotal time.Duration
	// LocalSuggestions is how many of the typed prefixes produced at
	// least one local completion.
	LocalSuggestions int
}

// ExtAutocomplete types a popular cached query one letter at a time
// and compares the cost of suggesting after each keystroke.
func ExtAutocomplete(l *Lab) AutocompleteResult {
	u := l.Universe()
	_, cache := newServeCache(l, pathPocketSearch)
	content := l.Content(0, EvalShare)
	query := u.QueryText(u.QueryOf(content.Triplets[0].Pair))

	r := AutocompleteResult{Query: query, Keystroke: len(query), LocalPerKey: pocketsearch.LookupCost}
	for i := 1; i <= len(query); i++ {
		if len(cache.Autocomplete(query[:i], 8)) > 0 {
			r.LocalSuggestions++
		}
	}

	// The server path: one background query per keystroke, ~1 KB of
	// suggestions back, over a 3G link that stays warm between letters.
	link := radio.NewLink(radio.ThreeG())
	for i := 1; i <= len(query); i++ {
		tr := link.Request(200+i, 1000)
		r.RadioTotal += tr.Total()
		// A fast typist: ~250 ms between keystrokes, inside the tail.
		link.Advance(250 * time.Millisecond)
	}
	return r
}

// Table renders the comparison.
func (r AutocompleteResult) Table() Table {
	localTotal := time.Duration(r.Keystroke) * r.LocalPerKey
	return Table{
		ID:      "Extension: auto-completion",
		Title:   fmt.Sprintf("Typing %q letter by letter (%d keystrokes)", r.Query, r.Keystroke),
		Columns: []string{"scheme", "total suggestion time", "per keystroke"},
		Rows: [][]string{
			{"local trie (PocketSearch)", localTotal.String(), r.LocalPerKey.String()},
			{"server query per letter over 3G (Section 8)", r.RadioTotal.Round(time.Millisecond).String(),
				(r.RadioTotal / time.Duration(r.Keystroke)).Round(time.Millisecond).String()},
		},
		Notes: []string{
			fmt.Sprintf("%d/%d prefixes produced local suggestions", r.LocalSuggestions, r.Keystroke),
			"paper (Section 8): production phones submitted a background query per typed letter — 'the usual slow mobile search experience'",
		},
	}
}

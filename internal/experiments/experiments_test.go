package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"pocketcloudlets/internal/replay"
	"pocketcloudlets/internal/workload"
)

// sharedLab is built once for the whole package: experiments share the
// generated logs and replays exactly as cmd/experiments does.
var (
	labOnce sync.Once
	lab     *Lab
)

func testLab(t *testing.T) *Lab {
	if testing.Short() {
		t.Skip("experiment tests generate month-scale logs")
	}
	labOnce.Do(func() { lab = NewLab(1, 0, 40) })
	return lab
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:      "Table X",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Table X", "demo", "333", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact has an experiment.
	wantIDs := []string{
		"Table 1", "Figure 2", "Table 2", "Figure 4a", "Figure 4b",
		"Figure 5", "Table 3", "Figure 7", "Figure 8", "Figure 11",
		"Figure 12", "Table 4", "Figure 15a", "Figure 15b", "Figure 16",
		"Table 5", "Table 6", "Figure 17", "Figure 18", "Figure 19",
		"Section 6.2.2",
	}
	have := map[string]bool{}
	names := map[string]bool{}
	for _, s := range All() {
		have[s.ID] = true
		if names[s.Name] {
			t.Errorf("duplicate experiment name %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Errorf("no experiment for %s", id)
		}
	}
	if _, ok := Find("fig17"); !ok {
		t.Error("Find(fig17) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1()
	if len(r.Trends) != 9 {
		t.Fatalf("trend points = %d, want 9", len(r.Trends))
	}
	if len(r.Table().Rows) != 9 {
		t.Error("rendered rows mismatch")
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	if len(r.Scenarios) != 4 || len(r.HighEnd) != 4 || len(r.LowEnd) != 4 {
		t.Fatalf("scenario counts wrong: %d", len(r.Scenarios))
	}
	// The all-techniques curve dominates scaling-only everywhere.
	for i := range r.HighEnd[0] {
		if r.HighEnd[3][i].Bytes < r.HighEnd[0][i].Bytes {
			t.Errorf("all-techniques below scaling-only in %d", r.HighEnd[0][i].Year)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
}

func TestFig4Shapes(t *testing.T) {
	l := testLab(t)
	qa := Fig4a(l)
	// Headline: top 6000 queries ~60% of volume.
	if s := qa.Share("all", 6000); s < 0.52 || s < 0 || s > 0.68 {
		t.Errorf("top-6000 query share = %.3f, want ~0.60", s)
	}
	// Navigational far more concentrated than non-navigational.
	nav, nonNav := qa.Share("navigational", 5000), qa.Share("non-navigational", 5000)
	if nav < nonNav+0.3 {
		t.Errorf("nav %.3f should far exceed non-nav %.3f", nav, nonNav)
	}
	// Featurephone more concentrated than smartphone.
	if qa.Share("featurephone", 6000) <= qa.Share("smartphone", 6000) {
		t.Error("featurephone should be more concentrated")
	}
	// CDFs are non-decreasing in top-N.
	for si := range qa.Series {
		for i := 1; i < len(qa.Shares[si]); i++ {
			if qa.Shares[si][i].Share < qa.Shares[si][i-1].Share-1e-9 {
				t.Fatalf("series %s CDF not monotone", qa.Series[si])
			}
		}
	}
	// Figure 4b: results more concentrated than queries — ~4000
	// results carry roughly what 6000 queries do.
	qb := Fig4b(l)
	if rb := qb.Share("all", 4000); rb < qa.Share("all", 6000)-0.06 {
		t.Errorf("top-4000 results %.3f should be near top-6000 queries %.3f", rb, qa.Share("all", 6000))
	}
	if qa.Share("missing-series", 10) != -1 {
		t.Error("unknown series should return -1")
	}
}

func TestFig5Shape(t *testing.T) {
	l := testLab(t)
	r := Fig5(l)
	at30 := r.AtProb(0.3)
	if at30 < 0.30 || at30 > 0.62 {
		t.Errorf("frac users with P(new)<=0.3 = %.3f, want ~0.50", at30)
	}
	if r.MeanRepeat < 0.45 || r.MeanRepeat > 0.64 {
		t.Errorf("mean repeat = %.3f, want ~0.565", r.MeanRepeat)
	}
	if r.AtProb(1.0) < 0.999 {
		t.Error("CDF should reach 1 at p=1")
	}
	if r.AtProb(0.123) != -1 {
		t.Error("unknown prob should return -1")
	}
}

func TestTable3Shape(t *testing.T) {
	l := testLab(t)
	r := Table3(l, 10)
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Volume > r.Rows[i-1].Volume {
			t.Fatal("triplets not sorted by volume")
		}
	}
	if r.Rows[0].Query == "" || r.Rows[0].URL == "" {
		t.Error("triplets should be materialized")
	}
}

func TestFig7Shape(t *testing.T) {
	l := testLab(t)
	r := Fig7(l)
	for i := 1; i < len(r.Shares); i++ {
		if r.Shares[i] < r.Shares[i-1] {
			t.Fatal("cumulative volume not monotone")
		}
	}
	// Diminishing returns: the second 20000 pairs add less than the
	// first 20000.
	first := r.Shares[4] // at 20000
	second := r.Shares[5] - r.Shares[4]
	if second >= first {
		t.Errorf("no diminishing returns: first 20k = %.3f, next 20k = %.3f", first, second)
	}
	if r.SaturationPairs <= 0 {
		t.Error("saturation selection empty")
	}
}

func TestFig8Shape(t *testing.T) {
	l := testLab(t)
	r := Fig8(l)
	fp, ok := r.At(EvalShare)
	if !ok {
		t.Fatal("no footprint at the evaluation share")
	}
	// Same order of magnitude as the paper's 200 KB / 1 MB: our
	// saturation set holds more pairs, so allow a small-integer factor.
	if fp.DRAMBytes < 100_000 || fp.DRAMBytes > 500_000 {
		t.Errorf("DRAM at 55%% = %d, want hundreds of KB", fp.DRAMBytes)
	}
	if fp.FlashBytes < 800_000 || fp.FlashBytes > 4_000_000 {
		t.Errorf("flash at 55%% = %d, want a few MB", fp.FlashBytes)
	}
	for i := 1; i < len(r.Footprints); i++ {
		if r.Footprints[i].DRAMBytes < r.Footprints[i-1].DRAMBytes ||
			r.Footprints[i].FlashBytes < r.Footprints[i-1].FlashBytes {
			t.Fatal("footprints not monotone in share")
		}
	}
}

func TestFig11TwoSlotsOptimal(t *testing.T) {
	l := testLab(t)
	r := Fig11(l)
	if r.BestSlots != 2 {
		t.Errorf("best slots = %d, want 2 (the paper's design point)", r.BestSlots)
	}
	// Beyond 2 the footprint grows monotonically.
	for i := 2; i < len(r.Footprint); i++ {
		if r.Footprint[i] < r.Footprint[i-1] {
			t.Errorf("footprint not increasing past 2 slots at k=%d", r.Slots[i])
		}
	}
}

func TestFig12Knee(t *testing.T) {
	r := Fig12()
	one, _ := r.FetchAt(1)
	thirtyTwo, ok := r.FetchAt(32)
	if !ok {
		t.Fatal("no 32-file point")
	}
	last, _ := r.FetchAt(256)
	if !(one > 2*thirtyTwo) {
		t.Errorf("1-file fetch %v should far exceed 32-file %v", one, thirtyTwo)
	}
	if last > thirtyTwo {
		t.Errorf("256-file fetch %v should not exceed 32-file %v", last, thirtyTwo)
	}
	// Table 4 calibration: two-result fetch ~10 ms at 32 files.
	if thirtyTwo < 5*time.Millisecond || thirtyTwo > 15*time.Millisecond {
		t.Errorf("32-file fetch = %v, want ~10 ms", thirtyTwo)
	}
	// Fragmentation grows with file count.
	if r.Fragmentation[len(r.Fragmentation)-1] <= r.Fragmentation[0] {
		t.Error("fragmentation should grow with file count")
	}
	if _, ok := r.FetchAt(999); ok {
		t.Error("unknown file count should miss")
	}
}

func TestTable4Shape(t *testing.T) {
	l := testLab(t)
	r := Table4(l)
	if r.Total < 360*time.Millisecond || r.Total > 410*time.Millisecond {
		t.Errorf("hit total = %v, want ~378 ms", r.Total)
	}
	if float64(r.Render)/float64(r.Total) < 0.90 {
		t.Errorf("render share = %.2f, want > 0.90 (the paper's 96.7%%)", float64(r.Render)/float64(r.Total))
	}
	if r.Lookup > time.Millisecond {
		t.Error("lookup should be negligible")
	}
}

func TestFig15Ratios(t *testing.T) {
	l := testLab(t)
	r := Fig15(l)
	checks := []struct {
		path       string
		minS, maxS float64
		minE, maxE float64
	}{
		{"3G", 12, 20, 18, 30},
		{"Edge", 20, 30, 32, 48},
		{"802.11g", 5, 9, 8, 14},
	}
	for _, c := range checks {
		if s := r.Speedup(c.path); s < c.minS || s > c.maxS {
			t.Errorf("%s speedup = %.1f, want [%g, %g]", c.path, s, c.minS, c.maxS)
		}
		if e := r.EnergyRatio(c.path); e < c.minE || e > c.maxE {
			t.Errorf("%s energy ratio = %.1f, want [%g, %g]", c.path, e, c.minE, c.maxE)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	l := testLab(t)
	r := Fig16(l)
	if r.PocketTotal < 3*time.Second || r.PocketTotal > 5*time.Second {
		t.Errorf("10 local queries = %v, want ~4 s", r.PocketTotal)
	}
	if r.RadioTotal < 35*time.Second || r.RadioTotal > 50*time.Second {
		t.Errorf("10 3G queries = %v, want ~40 s", r.RadioTotal)
	}
	if r.RadioEnergy < 8*r.PocketEnergy {
		t.Errorf("3G energy %f should dwarf local %f", r.RadioEnergy, r.PocketEnergy)
	}
	if len(r.PocketTrace) == 0 || len(r.RadioTrace) == 0 {
		t.Error("power traces missing")
	}
}

func TestTable5Shape(t *testing.T) {
	l := testLab(t)
	r := Table5(l)
	if len(r.Pages) != 2 {
		t.Fatal("want two page classes")
	}
	light, heavy := r.Pages[0], r.Pages[1]
	if light.Speedup < 0.20 || light.Speedup > 0.35 {
		t.Errorf("light page speedup = %.3f, want ~0.287", light.Speedup)
	}
	if heavy.Speedup < 0.10 || heavy.Speedup > 0.22 {
		t.Errorf("heavy page speedup = %.3f, want ~0.167", heavy.Speedup)
	}
	if heavy.Speedup >= light.Speedup {
		t.Error("heavier pages should dilute the speedup")
	}
}

func TestTable6Shape(t *testing.T) {
	l := testLab(t)
	r := Table6(l)
	wants := []float64{0.55, 0.36, 0.08, 0.01}
	for i, s := range r.Shares {
		if s.Share < wants[i]-0.05 || s.Share > wants[i]+0.05 {
			t.Errorf("%s share = %.3f, want ~%.2f", s.Bracket.Name, s.Share, wants[i])
		}
	}
}

func TestFig17Shapes(t *testing.T) {
	l := testLab(t)
	r := Fig17(l)
	full := r.Average(replay.Full)
	comm := r.Average(replay.CommunityOnly)
	pers := r.Average(replay.PersonalizationOnly)

	// Roughly two-thirds of queries served locally; components near
	// the paper's 55% / 56.5%.
	if full < 0.60 || full > 0.82 {
		t.Errorf("full average = %.3f, want ~0.65-0.75", full)
	}
	if comm < 0.45 || comm > 0.65 {
		t.Errorf("community-only average = %.3f, want ~0.55", comm)
	}
	if pers < 0.45 || pers > 0.68 {
		t.Errorf("personalization-only average = %.3f, want ~0.565", pers)
	}
	// The full cache dominates both components.
	if full < comm || full < pers {
		t.Error("full cache should dominate its components")
	}
	// Hit rate rises with monthly volume for every configuration.
	for _, mode := range replay.Modes() {
		low := r.Rate(mode, workload.Low)
		extreme := r.Rate(mode, workload.Extreme)
		if extreme <= low {
			t.Errorf("%v: extreme %.3f should exceed low %.3f", mode, extreme, low)
		}
	}
}

func TestFig18Warmup(t *testing.T) {
	l := testLab(t)
	r := Fig18(l)
	// Personalization lags community during week one for every class.
	var commW1, persW1 []float64
	for i, m := range r.Modes {
		switch m {
		case replay.CommunityOnly:
			commW1 = r.Week1[i]
		case replay.PersonalizationOnly:
			persW1 = r.Week1[i]
		}
	}
	if commW1 == nil || persW1 == nil {
		t.Fatal("missing modes")
	}
	for c := range commW1 {
		if persW1[c] >= commW1[c] {
			t.Errorf("class %d: personalization week-1 %.3f should lag community %.3f", c, persW1[c], commW1[c])
		}
	}
}

func TestFig19Trend(t *testing.T) {
	l := testLab(t)
	r := Fig19(l)
	if len(r.NavShare) != 4 {
		t.Fatal("want 4 classes")
	}
	// Non-navigational hit share grows with volume class.
	if r.NavShare[3] >= r.NavShare[0] {
		t.Errorf("extreme nav share %.3f should be below low %.3f", r.NavShare[3], r.NavShare[0])
	}
	// Navigational hits dominate overall (paper: 59% average).
	avg := (r.NavShare[0] + r.NavShare[1] + r.NavShare[2] + r.NavShare[3]) / 4
	if avg < 0.5 || avg > 0.85 {
		t.Errorf("average nav share = %.3f, want ~0.6-0.7", avg)
	}
}

func TestDailyUpdatesNeutralOrBetter(t *testing.T) {
	l := testLab(t)
	r := DailyUpdates(l)
	// With a stationary popularity model daily updates are neutral
	// (the paper's +1.5 points came from real-world drift); they must
	// not hurt materially.
	if r.DailyAvg < r.StaticAvg-0.03 {
		t.Errorf("daily updates hurt: static %.3f daily %.3f", r.StaticAvg, r.DailyAvg)
	}
	if r.ChangedPairsPerDay <= 0 {
		t.Error("daily churn should be non-zero")
	}
}

func TestAblationShapes(t *testing.T) {
	l := testLab(t)

	shared := AblationSharedResults(l)
	if shared.SharingFactor() < 1.2 {
		t.Errorf("sharing factor = %.2f, want > 1.2 (results are shared across queries)", shared.SharingFactor())
	}
	if shared.PageFactor() < 20 {
		t.Errorf("page factor = %.0f, want >> 1", shared.PageFactor())
	}

	tiers := AblationThreeTier()
	last := len(tiers.IndexBytes) - 1
	if tiers.ThreeTier[last] != 0 {
		t.Error("three-tier boot load should be zero")
	}
	if tiers.TwoTier[last] < time.Minute {
		t.Errorf("two-tier gigabyte reload = %v, want minutes", tiers.TwoTier[last])
	}

	ev := AblationCoordinatedEviction()
	if ev.StrandedBytes == 0 {
		t.Error("uncoordinated eviction should strand related items")
	}
	if ev.CoordinatedFreed < 100_000 || ev.UncoordinatedFreed < 100_000 {
		t.Error("both policies should meet the reclamation target")
	}
}

func TestAblationDecayInsensitiveHitRate(t *testing.T) {
	l := testLab(t)
	r := AblationDecay(l)
	for i := 1; i < len(r.HitRates); i++ {
		if diff := r.HitRates[i] - r.HitRates[0]; diff > 0.02 || diff < -0.02 {
			t.Errorf("hit rate varies with lambda: %.3f vs %.3f", r.HitRates[i], r.HitRates[0])
		}
	}
}

func TestExtPocketWebShape(t *testing.T) {
	l := testLab(t)
	r := ExtPocketWeb(l)
	if len(r.Classes) != 4 {
		t.Fatal("want 4 classes")
	}
	for i, c := range r.Classes {
		if r.FreshHitRate[i] < 0.4 || r.FreshHitRate[i] > 0.95 {
			t.Errorf("%v fresh hit rate %.3f implausible", c, r.FreshHitRate[i])
		}
		if r.StaleRate[i] > 0.10 {
			t.Errorf("%v stale rate %.3f too high: real-time refresh should keep favorites fresh", c, r.StaleRate[i])
		}
	}
	// Heavier users revisit more: their browsing caches better.
	if r.FreshHitRate[3] <= r.FreshHitRate[0] {
		t.Errorf("extreme fresh hit rate %.3f should exceed low %.3f", r.FreshHitRate[3], r.FreshHitRate[0])
	}
}

func TestExtMapletShape(t *testing.T) {
	r := ExtMaplet(1)
	if r.HomeZoom < 10 {
		t.Errorf("home zoom = %d, want deep coverage at the 25.6 GB budget", r.HomeZoom)
	}
	if r.ProvisionedGB > 25.6 {
		t.Errorf("provisioned %.1f GB exceeds the budget", r.ProvisionedGB)
	}
	if r.TileHitRate < 0.80 {
		t.Errorf("tile hit rate = %.2f, want > 0.80 (most browsing is in-region)", r.TileHitRate)
	}
	if r.TileHitRate >= 1 {
		t.Error("occasional trips should miss")
	}
	if r.StateTiles300m < 4_000_000 || r.StateTiles300m > 6_000_000 {
		t.Errorf("state tiles = %d, want ~4.4M", r.StateTiles300m)
	}
}

package experiments

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/pocketweb"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/workload"
)

// PocketWebResult carries the web-content cloudlet extension
// experiment: browsing the clicked pages of the replayed search
// streams through PocketWeb (the paper's footnote 2 pairing).
type PocketWebResult struct {
	Classes []workload.Class
	// FreshHitRate is the fraction of visits served fresh from flash.
	FreshHitRate []float64
	// RefreshMB is the mean per-user real-time refresh traffic.
	RefreshMB []float64
	// StaleRate is the fraction of visits that found an outdated copy.
	StaleRate []float64
}

// ExtPocketWeb replays each sampled user's month of clicked pages
// through a provisioned PocketWeb cache. It validates the Section 3.2
// management split: static pages never need the radio after
// provisioning, and the dynamic set is kept fresh by small top-K
// refreshes instead of bulk updates.
func ExtPocketWeb(l *Lab) PocketWebResult {
	u := l.Universe()
	content := l.Content(0, EvalShare)
	// The community's popular landing pages, provisioned overnight.
	var popular []string
	seen := map[string]bool{}
	for _, tr := range content.Triplets {
		url := u.ResultURL(u.ResultOf(tr.Pair))
		if !seen[url] {
			seen[url] = true
			popular = append(popular, url)
		}
	}

	var r PocketWebResult
	perClass := l.UsersPerClass
	if perClass > 30 {
		perClass = 30
	}
	for _, class := range workload.Classes() {
		users := l.Generator().UsersOfClass(class)
		if len(users) > perClass {
			users = users[:perClass]
		}
		var hitSum, staleSum, mbSum float64
		for _, up := range users {
			dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
			src := pocketweb.NewEngineSource(u)
			web, err := pocketweb.New(dev, src, pocketweb.Config{
				FlashBudget:     256 << 20,
				RealTimeTopK:    20,
				RefreshInterval: time.Hour,
			})
			if err != nil {
				panic(err)
			}
			web.Provision(popular, 0)
			dev.Reset()
			for _, e := range l.Generator().UserStream(up, 1) {
				url := u.ResultURL(u.ResultOf(e.Pair))
				if _, err := web.Visit(url, e.At); err != nil {
					panic(err)
				}
			}
			st := web.Stats()
			hitSum += st.HitRate()
			if st.Visits > 0 {
				staleSum += float64(st.StaleHits) / float64(st.Visits)
			}
			mbSum += float64(st.RefreshBytes) / 1e6
		}
		n := float64(len(users))
		r.Classes = append(r.Classes, class)
		r.FreshHitRate = append(r.FreshHitRate, hitSum/n)
		r.StaleRate = append(r.StaleRate, staleSum/n)
		r.RefreshMB = append(r.RefreshMB, mbSum/n)
	}
	return r
}

// Table renders the experiment.
func (r PocketWebResult) Table() Table {
	t := Table{
		ID:      "Extension: PocketWeb",
		Title:   "Web-content cloudlet serving the replayed users' clicked pages",
		Columns: []string{"user class", "fresh hit rate", "stale rate", "real-time refresh traffic"},
		Notes: []string{
			"paper (Sections 2-3.2): >90% of users visit fewer than 1000 URLs and 70% of visits are revisits, so cached browsing with a small real-time-refreshed dynamic set is viable",
		},
	}
	for i, c := range r.Classes {
		t.Rows = append(t.Rows, []string{
			c.String(),
			percent(r.FreshHitRate[i]),
			percent(r.StaleRate[i]),
			fmt.Sprintf("%.1f MB/month", r.RefreshMB[i]),
		})
	}
	return t
}

package experiments

import (
	"fmt"
	"math"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/hashtable"
	"pocketcloudlets/internal/resultdb"
	"pocketcloudlets/internal/searchlog"
)

// Fig7Counts are the x-axis points of Figure 7: number of cached pairs.
var Fig7Counts = []int{1000, 2500, 5000, 10000, 20000, 40000, 80000}

// Fig7Result carries the cumulative pair-volume curve.
type Fig7Result struct {
	Counts []int
	Shares []float64
	// SaturationPairs is the selection size at the evaluation share.
	SaturationPairs int
}

// Fig7 computes cumulative query-search-result volume against the
// number of most popular pairs cached.
func Fig7(l *Lab) Fig7Result {
	tbl := l.Triplets(0)
	r := Fig7Result{Counts: Fig7Counts}
	for _, n := range Fig7Counts {
		r.Shares = append(r.Shares, tbl.CumulativeShare(n))
	}
	if n, err := cachegen.SelectByShare(tbl, EvalShare); err == nil {
		r.SaturationPairs = n
	}
	return r
}

// Table renders the curve.
func (r Fig7Result) Table() Table {
	t := Table{
		ID:      "Figure 7",
		Title:   "Cumulative query-search result volume vs. pairs cached",
		Columns: []string{"pairs cached", "cumulative volume"},
		Notes: []string{
			"paper: value of adding pairs quickly diminishes (58% at 20000 pairs vs 62% at 40000)",
			fmt.Sprintf("the %.0f%% evaluation cache needs %d pairs", 100*EvalShare, r.SaturationPairs),
		},
	}
	for i, n := range r.Counts {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), percent(r.Shares[i])})
	}
	return t
}

// Fig8Shares are the x-axis points of Figure 8: aggregate volume share.
var Fig8Shares = []float64{0.30, 0.40, 0.50, 0.55, 0.58, 0.60}

// Fig8Result carries the memory-overhead curve.
type Fig8Result struct {
	Shares     []float64
	Pairs      []int
	Footprints []cachegen.Footprint
}

// Fig8 computes the DRAM (hash table) and flash (result database)
// footprint of the cache at increasing aggregate-volume targets.
func Fig8(l *Lab) Fig8Result {
	tbl := l.Triplets(0)
	u := l.Universe()
	model := cachegen.MemoryModel{
		SlotsPerEntry: 2,
		RecordBytes: func(rid searchlog.ResultID) int {
			return len(u.Result(rid).Record())
		},
		// 32 database files average half an allocation unit of slack.
		FlashSlackBytes: int64(resultdb.DefaultFiles * 4096 / 2),
	}
	var r Fig8Result
	for _, share := range Fig8Shares {
		n, err := cachegen.SelectByShare(tbl, share)
		if err != nil {
			continue
		}
		r.Shares = append(r.Shares, share)
		r.Pairs = append(r.Pairs, n)
		r.Footprints = append(r.Footprints, model.FootprintOf(tbl, u, n))
	}
	return r
}

// At returns the footprint at a share target, or false.
func (r Fig8Result) At(share float64) (cachegen.Footprint, bool) {
	for i, s := range r.Shares {
		if s == share {
			return r.Footprints[i], true
		}
	}
	return cachegen.Footprint{}, false
}

// Table renders the curve.
func (r Fig8Result) Table() Table {
	t := Table{
		ID:      "Figure 8",
		Title:   "PocketSearch DRAM and flash overhead vs. aggregate volume cached",
		Columns: []string{"aggregate volume", "pairs", "queries", "unique results", "DRAM", "flash"},
		Notes:   []string{"paper: the 55% saturation point costs ~200 KB DRAM and ~1 MB flash — under 1% of a smartphone's memory"},
	}
	for i := range r.Shares {
		fp := r.Footprints[i]
		t.Rows = append(t.Rows, []string{
			percent(r.Shares[i]),
			fmt.Sprintf("%d", r.Pairs[i]),
			fmt.Sprintf("%d", fp.Queries),
			fmt.Sprintf("%d", fp.Results),
			fmt.Sprintf("%.0f KB", float64(fp.DRAMBytes)/1000),
			fmt.Sprintf("%.2f MB", float64(fp.FlashBytes)/1e6),
		})
	}
	return t
}

// Fig11Slots are the x-axis points of Figure 11.
var Fig11Slots = []int{1, 2, 3, 4, 5, 6}

// Fig11Result carries the hash-table footprint sweep.
type Fig11Result struct {
	Slots     []int
	Footprint []int64
	Entries   []int
	// BestSlots is the footprint-minimizing slot count.
	BestSlots int
}

// Fig11 builds the evaluation cache's hash table with different
// numbers of search results per entry and measures the modeled DRAM
// footprint of each variant.
func Fig11(l *Lab) Fig11Result {
	content := l.Content(0, EvalShare)
	u := l.Universe()
	r := Fig11Result{Slots: Fig11Slots}
	best, bestFoot := 0, int64(1<<62)
	for _, k := range Fig11Slots {
		tbl := hashtable.MustNew(k)
		for _, tr := range content.Triplets {
			qh := hash64.Sum(u.QueryText(u.QueryOf(tr.Pair)))
			rh := hash64.Sum(u.ResultURL(u.ResultOf(tr.Pair)))
			tbl.Put(qh, hashtable.SearchRef{ResultHash: rh, Score: content.Scores[tr.Pair]})
		}
		foot := tbl.FootprintBytes()
		r.Footprint = append(r.Footprint, foot)
		r.Entries = append(r.Entries, tbl.NumEntries())
		if foot < bestFoot {
			best, bestFoot = k, foot
		}
	}
	r.BestSlots = best
	return r
}

// Table renders the sweep.
func (r Fig11Result) Table() Table {
	t := Table{
		ID:      "Figure 11",
		Title:   "Hash table memory footprint vs. search results per entry",
		Columns: []string{"results per entry", "entries", "footprint"},
		Notes:   []string{fmt.Sprintf("paper: two results per entry minimize the footprint; measured best = %d", r.BestSlots)},
	}
	for i, k := range r.Slots {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", r.Entries[i]),
			fmt.Sprintf("%.0f KB", float64(r.Footprint[i])/1000),
		})
	}
	return t
}

// Fig12Files are the x-axis points of Figure 12.
var Fig12Files = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Fig12Result carries the database file-count sweep.
type Fig12Result struct {
	Files []int
	// MeanFetch is the average modeled time to retrieve the two
	// displayed search results of a query.
	MeanFetch []time.Duration
	// Deviation is the spread across seeded repetitions (the paper's
	// error bars over 10 consecutive experiments).
	Deviation []time.Duration
	// Fragmentation is the database's allocation slack.
	Fragmentation []int64
}

// Fig12Records is the record population of the Figure 12 sweep,
// matching the evaluation cache ("approximately 2500 search results").
const Fig12Records = 2500

// Fig12 sweeps the database file count, measuring two-result retrieval
// time and flash fragmentation for each configuration.
func Fig12() Fig12Result {
	r := Fig12Result{Files: Fig12Files}
	record := make([]byte, 500)
	const runs = 10
	for _, files := range Fig12Files {
		// Bulk-build the record population once per file count.
		perFile := make([]map[uint64][]byte, files)
		for i := range perFile {
			perFile[i] = make(map[uint64][]byte)
		}
		for i := 0; i < Fig12Records; i++ {
			h := uint64(i) * 2654435761
			perFile[h%uint64(files)][h] = record
		}
		var runMeans []time.Duration
		var lastFrag int64
		for run := 0; run < runs; run++ {
			dev := flashsim.NewDevice(flashsim.Params{JitterFrac: 0.12, Seed: int64(run + 1)})
			store := flashsim.NewFileStore(dev)
			db, err := resultdb.New(store, resultdb.Config{Files: files})
			if err != nil {
				panic(err)
			}
			for i := 0; i < files; i++ {
				if _, err := db.ReplaceFile(i, perFile[i]); err != nil {
					panic(err)
				}
			}
			var total time.Duration
			const queries = 40
			for q := 0; q < queries; q++ {
				// A query fetches its two displayed results.
				for _, probe := range []int{q * 31, q*31 + 17} {
					_, lat, err := db.Get(uint64(probe%Fig12Records) * 2654435761)
					if err != nil {
						panic(err)
					}
					total += lat
				}
			}
			runMeans = append(runMeans, total/queries)
			lastFrag = db.FragmentationBytes()
		}
		mean, dev := meanDev(runMeans)
		r.MeanFetch = append(r.MeanFetch, mean)
		r.Deviation = append(r.Deviation, dev)
		r.Fragmentation = append(r.Fragmentation, lastFrag)
	}
	return r
}

func meanDev(xs []time.Duration) (mean, dev time.Duration) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	mean = sum / time.Duration(len(xs))
	var varSum float64
	for _, x := range xs {
		d := float64(x - mean)
		varSum += d * d
	}
	dev = time.Duration(math.Sqrt(varSum / float64(len(xs))))
	return mean, dev
}

// FetchAt returns the mean fetch time at a file count, or false.
func (r Fig12Result) FetchAt(files int) (time.Duration, bool) {
	for i, f := range r.Files {
		if f == files {
			return r.MeanFetch[i], true
		}
	}
	return 0, false
}

// Table renders the sweep.
func (r Fig12Result) Table() Table {
	t := Table{
		ID:      "Figure 12",
		Title:   fmt.Sprintf("Average time to retrieve two search results vs. database files (%d records)", Fig12Records),
		Columns: []string{"files", "mean fetch", "deviation", "fragmentation"},
		Notes:   []string{"paper: 32 files is the best tradeoff between flash fragmentation and response time (~10 ms fetch, Table 4)"},
	}
	for i, f := range r.Files {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%.2f ms", float64(r.MeanFetch[i])/float64(time.Millisecond)),
			fmt.Sprintf("±%.2f ms", float64(r.Deviation[i])/float64(time.Millisecond)),
			fmt.Sprintf("%.0f KB", float64(r.Fragmentation[i])/1000),
		})
	}
	return t
}

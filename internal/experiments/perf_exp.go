package experiments

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

// perfProbe builds a device + preloaded cache and replays cached
// queries, mirroring the paper's measurement protocol: 100 randomly
// selected cached queries, each submitted repeatedly, averaged.
const (
	perfQueries = 100
	perfRepeats = 10
)

// servePath identifies how queries are served in Figures 15-16.
type servePath int

const (
	pathPocketSearch servePath = iota
	path3G
	pathEDGE
	pathWiFi
)

func (p servePath) String() string {
	switch p {
	case pathPocketSearch:
		return "PocketSearch"
	case path3G:
		return "3G"
	case pathEDGE:
		return "Edge"
	default:
		return "802.11g"
	}
}

func (p servePath) radio() radio.Params {
	switch p {
	case pathEDGE:
		return radio.EDGE()
	case pathWiFi:
		return radio.WiFi()
	default:
		return radio.ThreeG()
	}
}

// newServeCache builds a fresh device and cache preloaded with the
// evaluation content over the given radio.
func newServeCache(l *Lab, p servePath) (*device.Device, *pocketsearch.Cache) {
	dev := device.New(device.Config{}, p.radio(), flashsim.Params{})
	cache, err := pocketsearch.Build(dev, l.Engine(), l.Content(0, EvalShare), pocketsearch.Options{})
	if err != nil {
		panic(fmt.Sprintf("experiments: cache build: %v", err))
	}
	dev.Reset()
	return dev, cache
}

// probePairs picks cached pairs to query, spread across the content.
func probePairs(l *Lab, n int) []searchlog.PairID {
	content := l.Content(0, EvalShare)
	pairs := make([]searchlog.PairID, 0, n)
	if len(content.Triplets) == 0 {
		return pairs
	}
	step := len(content.Triplets) / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(content.Triplets) && len(pairs) < n; i += step {
		pairs = append(pairs, content.Triplets[i].Pair)
	}
	return pairs
}

// measureServe runs the perf protocol over one serving path and
// returns the mean response time and mean per-query energy.
//
// On the radio paths, each submission starts from an idle radio (the
// paper measured isolated query submissions, paying the wake-up every
// time); Figure 16 separately measures the back-to-back case.
func measureServe(l *Lab, p servePath) (time.Duration, float64) {
	u := l.Universe()
	var totalTime time.Duration
	var totalEnergy float64
	n := 0
	dev, cache := newServeCache(l, p)
	for _, pair := range probePairs(l, perfQueries) {
		q := u.QueryText(u.QueryOf(pair))
		url := u.ResultURL(u.ResultOf(pair))
		for rep := 0; rep < perfRepeats; rep++ {
			before := dev.TotalEnergy()
			var out pocketsearch.Outcome
			var err error
			if p == pathPocketSearch {
				out, err = cache.Query(q, url)
				if err != nil {
					panic(err)
				}
				if !out.Hit {
					continue // probe landed on an evicted alias; skip
				}
			} else {
				// Force the network path: serve the same query via
				// the engine over the radio, render, account misc —
				// exactly the miss path's cost structure.
				resp, _ := l.Engine().Search(q)
				pageBytes := resp.PageBytes
				if pageBytes == 0 {
					pageBytes = 100_000
				}
				tr := dev.NetworkRequest(800, pageBytes)
				out.Network = tr.Total()
				out.Render = dev.Render(pageBytes)
				out.Misc = dev.Misc()
			}
			totalTime += out.ResponseTime()
			totalEnergy += dev.TotalEnergy() - before
			if p != pathPocketSearch {
				// Demote the radio to idle before the next isolated
				// submission; the demotion window is not part of the
				// query's energy bill.
				dev.Link().Advance(p.radio().TailDuration + time.Second)
			}
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return totalTime / time.Duration(n), totalEnergy / float64(n)
}

// Table4Result carries the cache-hit response time breakdown.
type Table4Result struct {
	Lookup, Fetch, Render, Misc, Total time.Duration
}

// Table4 measures the mean hit-path breakdown over the perf protocol.
func Table4(l *Lab) Table4Result {
	u := l.Universe()
	_, cache := newServeCache(l, pathPocketSearch)
	var r Table4Result
	n := 0
	for _, pair := range probePairs(l, perfQueries) {
		q := u.QueryText(u.QueryOf(pair))
		url := u.ResultURL(u.ResultOf(pair))
		out, err := cache.Query(q, url)
		if err != nil {
			panic(err)
		}
		if !out.Hit {
			continue
		}
		r.Lookup += out.Lookup
		r.Fetch += out.Fetch
		r.Render += out.Render
		r.Misc += out.Misc
		n++
	}
	if n > 0 {
		d := time.Duration(n)
		r.Lookup /= d
		r.Fetch /= d
		r.Render /= d
		r.Misc /= d
	}
	r.Total = r.Lookup + r.Fetch + r.Render + r.Misc
	return r
}

// Table renders the breakdown.
func (r Table4Result) Table() Table {
	t := Table{
		ID:      "Table 4",
		Title:   "PocketSearch user response time breakdown (cache hit)",
		Columns: []string{"operation", "average time", "percentage"},
		Notes:   []string{"paper: 0.01 ms lookup / 10 ms fetch / 361 ms render / 7 ms misc = 378 ms total"},
	}
	row := func(name string, d time.Duration) {
		pct := 0.0
		if r.Total > 0 {
			pct = float64(d) / float64(r.Total)
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.2f ms", ms(d)), percent(pct)})
	}
	row("Hash Table Lookup", r.Lookup)
	row("Fetch Search Results", r.Fetch)
	row("Browser Rendering", r.Render)
	row("Miscellaneous", r.Misc)
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprintf("%.2f ms", ms(r.Total)), "100%"})
	return t
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Fig15Result carries per-path response time and energy.
type Fig15Result struct {
	Paths  []string
	Time   []time.Duration
	Energy []float64 // joules per query
}

// Fig15 measures average response time (15a) and energy (15b) per
// query for PocketSearch and each radio.
func Fig15(l *Lab) Fig15Result {
	var r Fig15Result
	for _, p := range []servePath{pathPocketSearch, path3G, pathEDGE, pathWiFi} {
		t, e := measureServe(l, p)
		r.Paths = append(r.Paths, p.String())
		r.Time = append(r.Time, t)
		r.Energy = append(r.Energy, e)
	}
	return r
}

// Speedup returns the response-time ratio of a path over PocketSearch.
func (r Fig15Result) Speedup(path string) float64 {
	var base, target time.Duration
	for i, p := range r.Paths {
		if p == "PocketSearch" {
			base = r.Time[i]
		}
		if p == path {
			target = r.Time[i]
		}
	}
	if base == 0 {
		return 0
	}
	return float64(target) / float64(base)
}

// EnergyRatio returns the energy ratio of a path over PocketSearch.
func (r Fig15Result) EnergyRatio(path string) float64 {
	var base, target float64
	for i, p := range r.Paths {
		if p == "PocketSearch" {
			base = r.Energy[i]
		}
		if p == path {
			target = r.Energy[i]
		}
	}
	if base == 0 {
		return 0
	}
	return target / base
}

// TableTime renders Figure 15a.
func (r Fig15Result) TableTime() Table {
	t := Table{
		ID:      "Figure 15a",
		Title:   "Average search user response time per query",
		Columns: []string{"serving path", "response time", "vs PocketSearch"},
		Notes:   []string{"paper: PocketSearch is 16x faster than 3G, 25x than Edge, 7x than 802.11g"},
	}
	for i, p := range r.Paths {
		t.Rows = append(t.Rows, []string{
			p,
			fmt.Sprintf("%.0f ms", ms(r.Time[i])),
			fmt.Sprintf("%.1fx", r.Speedup(p)),
		})
	}
	return t
}

// TableEnergy renders Figure 15b.
func (r Fig15Result) TableEnergy() Table {
	t := Table{
		ID:      "Figure 15b",
		Title:   "Average energy per query",
		Columns: []string{"serving path", "energy", "vs PocketSearch"},
		Notes:   []string{"paper: PocketSearch is 23x more energy efficient than 3G, 41x than Edge, 11x than 802.11g"},
	}
	for i, p := range r.Paths {
		t.Rows = append(t.Rows, []string{
			p,
			fmt.Sprintf("%.2f J", r.Energy[i]),
			fmt.Sprintf("%.1fx", r.EnergyRatio(p)),
		})
	}
	return t
}

// Fig16Result carries the ten-consecutive-queries comparison.
type Fig16Result struct {
	// PocketTotal and RadioTotal are end-to-end times for ten
	// back-to-back queries served locally vs over 3G.
	PocketTotal, RadioTotal time.Duration
	// PocketEnergy and RadioEnergy are the corresponding joules.
	PocketEnergy, RadioEnergy float64
	// PocketTrace and RadioTrace are the device power traces.
	PocketTrace, RadioTrace []device.PowerSegment
}

// Fig16 serves ten consecutive queries through the cache and through
// 3G, recording the device power trace of each run.
func Fig16(l *Lab) Fig16Result {
	u := l.Universe()
	pairs := probePairs(l, 10)
	run := func(local bool) (time.Duration, float64, []device.PowerSegment) {
		dev, cache := newServeCache(l, path3G)
		dev.StartTrace()
		for _, pair := range pairs {
			q := u.QueryText(u.QueryOf(pair))
			url := u.ResultURL(u.ResultOf(pair))
			if local {
				if _, err := cache.Query(q, url); err != nil {
					panic(err)
				}
			} else {
				resp, _ := l.Engine().Search(q)
				pageBytes := resp.PageBytes
				if pageBytes == 0 {
					pageBytes = 100_000
				}
				dev.NetworkRequest(800, pageBytes)
				dev.Render(pageBytes)
				dev.Misc()
			}
		}
		return dev.Now(), dev.TotalEnergy(), dev.Trace()
	}
	var r Fig16Result
	r.PocketTotal, r.PocketEnergy, r.PocketTrace = run(true)
	r.RadioTotal, r.RadioEnergy, r.RadioTrace = run(false)
	return r
}

// Table renders the comparison.
func (r Fig16Result) Table() Table {
	t := Table{
		ID:      "Figure 16",
		Title:   "Ten consecutive queries: PocketSearch vs 3G",
		Columns: []string{"path", "total time", "energy", "mean power", "peak power"},
		Notes: []string{
			"paper: ~4 s at ~900 mW locally vs ~40 s at ~1500 mW over 3G",
			"back-to-back 3G queries after the first skip the radio wake-up (warm tail)",
		},
	}
	row := func(name string, total time.Duration, energy float64, trace []device.PowerSegment) {
		peak := 0.0
		for _, seg := range trace {
			if seg.Watts > peak {
				peak = seg.Watts
			}
		}
		mean := 0.0
		if total > 0 {
			mean = energy / total.Seconds()
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f s", total.Seconds()),
			fmt.Sprintf("%.1f J", energy),
			fmt.Sprintf("%.0f mW", 1000*mean),
			fmt.Sprintf("%.0f mW", 1000*peak),
		})
	}
	row("PocketSearch", r.PocketTotal, r.PocketEnergy, r.PocketTrace)
	row("3G", r.RadioTotal, r.RadioEnergy, r.RadioTrace)
	return t
}

// Table5Result carries the navigation response times.
type Table5Result struct {
	// SearchLocal and Search3G are the measured search times.
	SearchLocal, Search3G time.Duration
	// Pages maps page kind to load time.
	Pages []Table5Page
}

// Table5Page is one page class of Table 5.
type Table5Page struct {
	Name     string
	LoadTime time.Duration
	// Local and Radio are total navigation times (search + load).
	Local, Radio time.Duration
	Speedup      float64
}

// Table5 computes navigation user response time — search plus webpage
// download — for the paper's lightweight (15 s) and heavyweight (30 s)
// pages.
func Table5(l *Lab) Table5Result {
	local, _ := measureServe(l, pathPocketSearch)
	over3G, _ := measureServe(l, path3G)
	r := Table5Result{SearchLocal: local, Search3G: over3G}
	for _, page := range []struct {
		name string
		load time.Duration
	}{
		{"Lightweight Page", 15 * time.Second},
		{"Heavyweight Page", 30 * time.Second},
	} {
		p := Table5Page{Name: page.name, LoadTime: page.load}
		p.Local = local + page.load
		p.Radio = over3G + page.load
		p.Speedup = float64(p.Radio-p.Local) / float64(p.Radio)
		r.Pages = append(r.Pages, p)
	}
	return r
}

// Table renders the navigation times.
func (r Table5Result) Table() Table {
	t := Table{
		ID:      "Table 5",
		Title:   "Navigation user response time (search + page load)",
		Columns: []string{"page", "PocketSearch", "3G", "speedup over 3G"},
		Notes:   []string{"paper: 15.378 s vs 21.048 s (28.7%) and 30.378 s vs 36.048 s (16.7%)"},
	}
	for _, p := range r.Pages {
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%.3f s", p.Local.Seconds()),
			fmt.Sprintf("%.3f s", p.Radio.Seconds()),
			percent(p.Speedup),
		})
	}
	return t
}

package radio

import (
	"testing"
	"time"
)

// TestEmptyBatchIsFree is the regression test for the empty-batch
// path: a batch with no items must cost nothing — no wake-up, no
// handshake, no tail — and a live link must be left untouched.
func TestEmptyBatchIsFree(t *testing.T) {
	for _, p := range Technologies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			isZero := func(b BatchTransfer) bool {
				return b.Size() == 0 && b.Total() == 0 && b.Wakeup == 0 && b.Handshake == 0 && !b.WasWarm
			}
			if b := BatchExchange(p, nil); !isZero(b) {
				t.Errorf("BatchExchange(nil) = %+v, want zero BatchTransfer", b)
			}
			if b := BatchExchange(p, []Exchange{}); !isZero(b) {
				t.Errorf("BatchExchange(empty) = %+v, want zero BatchTransfer", b)
			}

			l := NewLink(p)
			if b := l.RequestBatch(nil); !isZero(b) {
				t.Errorf("RequestBatch(nil) = %+v, want zero BatchTransfer", b)
			}
			if l.Now() != 0 || l.RadioEnergy() != 0 || l.Wakeups() != 0 || l.State() != Idle {
				t.Errorf("empty RequestBatch mutated the link: now=%v energy=%g wakeups=%d state=%v",
					l.Now(), l.RadioEnergy(), l.Wakeups(), l.State())
			}
		})
	}
}

// TestFailedRequestPaysOverheadOnly verifies the failed-attempt model:
// full session overhead (wake-up when idle, plus the handshake), no
// payload, link promoted into its tail.
func TestFailedRequestPaysOverheadOnly(t *testing.T) {
	p := ThreeG()
	l := NewLink(p)

	tr := l.FailedRequest()
	if !tr.Failed {
		t.Error("transfer must be marked Failed")
	}
	if tr.WasWarm {
		t.Error("first attempt on an idle link must be cold")
	}
	if tr.Wakeup != p.WakeupLatency {
		t.Errorf("Wakeup = %v, want %v", tr.Wakeup, p.WakeupLatency)
	}
	wantHS := time.Duration(p.HandshakeRTTs) * p.RTT
	if tr.Handshake != wantHS || tr.Payload != 0 {
		t.Errorf("Handshake = %v Payload = %v, want %v and 0", tr.Handshake, tr.Payload, wantHS)
	}
	if tr.Total() != FailedAttemptCost(p, false) {
		t.Errorf("Total = %v, want FailedAttemptCost %v", tr.Total(), FailedAttemptCost(p, false))
	}
	if l.Wakeups() != 1 {
		t.Errorf("Wakeups = %d, want 1", l.Wakeups())
	}
	if l.State() != Tail {
		t.Errorf("failed attempt should leave the link in its tail, got %v", l.State())
	}

	// A second immediate attempt finds the link warm: handshake only.
	tr2 := l.FailedRequest()
	if !tr2.WasWarm || tr2.Wakeup != 0 {
		t.Errorf("warm failed attempt = %+v, want no wake-up", tr2)
	}
	if tr2.Total() != FailedAttemptCost(p, true) {
		t.Errorf("warm Total = %v, want %v", tr2.Total(), FailedAttemptCost(p, true))
	}
	if l.Wakeups() != 1 {
		t.Errorf("warm attempt must not add a wake-up, got %d", l.Wakeups())
	}
}

// TestExchangeCostMatchesLiveLink verifies the analytic exchange model
// mirrors Link.Request exactly, warm and cold.
func TestExchangeCostMatchesLiveLink(t *testing.T) {
	for _, p := range Technologies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const req, resp = 800, 100_000

			cold := ExchangeCost(p, req, resp, false)
			l := NewLink(p)
			live := l.Request(req, resp)
			if cold != live {
				t.Errorf("cold ExchangeCost = %+v, live Request = %+v", cold, live)
			}

			warm := ExchangeCost(p, req, resp, true)
			live2 := l.Request(req, resp) // link still in its tail
			if warm != live2 {
				t.Errorf("warm ExchangeCost = %+v, live Request = %+v", warm, live2)
			}
		})
	}
}

package radio

import (
	"testing"
	"testing/quick"
	"time"
)

// Query sizes used throughout the evaluation: a small HTTP search
// request and a ~100 KB search-result page.
const (
	reqBytes  = 800
	pageBytes = 100 * 1000
)

func TestColdRequestPaysWakeup(t *testing.T) {
	l := NewLink(ThreeG())
	tr := l.Request(reqBytes, pageBytes)
	if tr.WasWarm {
		t.Error("first request should be cold")
	}
	if tr.Wakeup != ThreeG().WakeupLatency {
		t.Errorf("wakeup = %v, want %v", tr.Wakeup, ThreeG().WakeupLatency)
	}
	if l.Wakeups() != 1 {
		t.Errorf("wakeups = %d, want 1", l.Wakeups())
	}
}

func TestWarmRequestSkipsWakeup(t *testing.T) {
	l := NewLink(ThreeG())
	l.Request(reqBytes, pageBytes)
	tr := l.Request(reqBytes, pageBytes) // immediately after: inside tail
	if !tr.WasWarm || tr.Wakeup != 0 {
		t.Errorf("back-to-back request should be warm: %+v", tr)
	}
	if l.Wakeups() != 1 {
		t.Errorf("wakeups = %d, want 1", l.Wakeups())
	}
}

func TestTailExpiryForcesWakeup(t *testing.T) {
	l := NewLink(ThreeG())
	l.Request(reqBytes, pageBytes)
	l.Advance(ThreeG().TailDuration + time.Second)
	if l.State() != Idle {
		t.Fatalf("state after tail expiry = %v, want idle", l.State())
	}
	tr := l.Request(reqBytes, pageBytes)
	if tr.WasWarm {
		t.Error("request after tail expiry should be cold")
	}
	if l.Wakeups() != 2 {
		t.Errorf("wakeups = %d, want 2", l.Wakeups())
	}
}

func TestStateTransitions(t *testing.T) {
	l := NewLink(WiFi())
	if l.State() != Idle {
		t.Errorf("initial state = %v, want idle", l.State())
	}
	l.Request(reqBytes, pageBytes)
	if l.State() != Tail {
		t.Errorf("state after request = %v, want tail", l.State())
	}
	l.Advance(WiFi().TailDuration)
	if l.State() != Idle {
		t.Errorf("state after tail = %v, want idle", l.State())
	}
}

// TestPaperLatencyShapes checks the Figure 15a ordering and rough
// magnitudes for a search-query exchange: EDGE slowest, then 3G, then
// WiFi; 3G in the paper's 3-10 s window.
func TestPaperLatencyShapes(t *testing.T) {
	lat := map[string]time.Duration{}
	for _, p := range Technologies() {
		l := NewLink(p)
		lat[p.Name] = l.Request(reqBytes, pageBytes).Total()
	}
	g3, edge, wifi := lat["3G"], lat["Edge"], lat["802.11g"]
	if !(edge > g3 && g3 > wifi) {
		t.Errorf("latency ordering wrong: edge=%v 3g=%v wifi=%v", edge, g3, wifi)
	}
	if g3 < 3*time.Second || g3 > 10*time.Second {
		t.Errorf("3G search latency %v outside the paper's 3-10 s window", g3)
	}
	if wifi < 1500*time.Millisecond || wifi > 3*time.Second {
		t.Errorf("WiFi search latency %v, want ~2-2.5 s", wifi)
	}
}

func TestEnergyAccumulatesWithActivity(t *testing.T) {
	l := NewLink(ThreeG())
	if l.RadioEnergy() != 0 {
		t.Fatal("energy should start at zero")
	}
	l.Request(reqBytes, pageBytes)
	e1 := l.RadioEnergy()
	if e1 <= 0 {
		t.Fatal("request should consume radio energy")
	}
	l.Advance(10 * time.Second)
	e2 := l.RadioEnergy()
	if e2 <= e1 {
		t.Error("tail+idle time should consume some energy")
	}
}

func TestAdvanceChargesTailThenIdle(t *testing.T) {
	p := ThreeG()
	l := NewLink(p)
	l.Request(reqBytes, pageBytes)
	base := l.RadioEnergy()
	l.Advance(p.TailDuration) // exactly the tail window
	tailEnergy := l.RadioEnergy() - base
	wantTail := p.ExtraTailPower * p.TailDuration.Seconds()
	if diff := tailEnergy - wantTail; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("tail energy = %g, want %g", tailEnergy, wantTail)
	}
	base = l.RadioEnergy()
	l.Advance(10 * time.Second)
	idleEnergy := l.RadioEnergy() - base
	wantIdle := p.ExtraIdlePower * 10
	if diff := idleEnergy - wantIdle; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("idle energy = %g, want %g", idleEnergy, wantIdle)
	}
}

func TestTransferTimeZeroForEmptyPayload(t *testing.T) {
	l := NewLink(WiFi())
	tr := l.Request(0, 0)
	if tr.Payload != 0 {
		t.Errorf("payload time for empty exchange = %v, want 0", tr.Payload)
	}
	if tr.Handshake <= 0 {
		t.Error("handshake should still cost round trips")
	}
}

func TestClockAdvancesByTotal(t *testing.T) {
	l := NewLink(EDGE())
	before := l.Now()
	tr := l.Request(reqBytes, pageBytes)
	if l.Now()-before != tr.Total() {
		t.Errorf("clock advanced %v, want %v", l.Now()-before, tr.Total())
	}
}

func TestReset(t *testing.T) {
	l := NewLink(ThreeG())
	l.Request(reqBytes, pageBytes)
	l.Reset()
	if l.Now() != 0 || l.RadioEnergy() != 0 || l.State() != Idle || l.Wakeups() != 0 {
		t.Error("reset did not clear link state")
	}
}

func TestLatencyMonotoneInResponseSize(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int(a%10_000_000), int(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		l1 := NewLink(ThreeG())
		l2 := NewLink(ThreeG())
		return l1.Request(reqBytes, x).Total() <= l2.Request(reqBytes, y).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdvanceIgnoresNonPositive(t *testing.T) {
	l := NewLink(ThreeG())
	l.Advance(-5 * time.Second)
	if l.Now() != 0 {
		t.Error("negative advance moved the clock")
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Active.String() != "active" || Tail.String() != "tail" {
		t.Error("State.String mismatch")
	}
	if State(42).String() == "" {
		t.Error("unknown state should stringify")
	}
}

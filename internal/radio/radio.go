// Package radio models the wireless links of a late-2000s smartphone:
// 3G (UMTS/HSPA), EDGE and 802.11g WiFi.
//
// The model captures the two properties the Pocket Cloudlets paper
// identifies as the mobile bottleneck (Section 1): a radio that is idle
// must first be woken up — a 1.5–2 s promotion that is independent of
// link throughput — and small request/response exchanges are dominated
// by round-trip latency rather than bandwidth. A link is a small state
// machine (Idle → Wakeup → Active → Tail → Idle) driven by a model
// clock; each request reports the modeled latency decomposition and the
// radio-power segments needed for energy accounting (Figures 15b, 16).
package radio

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/energy"
)

// State is the radio state at a point in model time.
type State int

const (
	// Idle: radio in its low-power standby state.
	Idle State = iota
	// Active: radio transmitting or receiving.
	Active
	// Tail: radio holding its high-power channel after a transfer,
	// awaiting demotion back to idle.
	Tail
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Tail:
		return "tail"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Params describes one link technology.
type Params struct {
	Name string
	// WakeupLatency is the idle→active promotion time. The paper cites
	// 1.5–2 s for cellular radios and notes it is expected to persist
	// across radio generations.
	WakeupLatency time.Duration
	// RTT is one network round trip to the service.
	RTT time.Duration
	// HandshakeRTTs is the number of round trips a request costs before
	// payload flows (DNS, TCP, TLS/HTTP request — the paper's "users
	// exchange small data packets, making link latency the bottleneck").
	HandshakeRTTs int
	// UplinkBps and DownlinkBps are effective payload throughputs in
	// bytes per second.
	UplinkBps   float64
	DownlinkBps float64
	// ExtraActivePower is the radio's added power draw while active,
	// on top of the device baseline.
	ExtraActivePower float64 // watts
	// ExtraTailPower is the added draw during the post-transfer tail.
	ExtraTailPower float64 // watts
	// ExtraIdlePower is the added draw while idle (paging, beacons).
	ExtraIdlePower float64 // watts
	// TailDuration is how long the link lingers in Tail after a
	// transfer before demoting to Idle. A request issued within the
	// tail skips the wakeup — this is why the second of ten
	// back-to-back 3G queries in Figure 16 is faster than the first.
	TailDuration time.Duration
}

// The built-in technologies, calibrated so a PocketSearch miss (a
// ~100 KB search-result page fetched after a ~800 B query) reproduces
// the paper's measured user response times of Figure 15a — roughly
// 6 s over 3G, 9.5 s over EDGE and 2.6 s over 802.11g against the 378 ms
// cache hit — and the Figure 15b energy ratios.

// withPower fills a Params' energy fields from the technology's
// power envelope in internal/energy — the single source of truth for
// the power constants.
func (p Params) withPower(pw energy.RadioPower) Params {
	p.ExtraActivePower = pw.ExtraActiveW
	p.ExtraTailPower = pw.ExtraTailW
	p.ExtraIdlePower = pw.ExtraIdleW
	p.TailDuration = pw.TailDuration
	return p
}

// ThreeG returns the 3G (UMTS/HSPA) parameter set.
func ThreeG() Params {
	return Params{
		Name:          "3G",
		WakeupLatency: 2000 * time.Millisecond,
		RTT:           475 * time.Millisecond,
		HandshakeRTTs: 4,
		UplinkBps:     8e3,  // ~64 kbit/s effective uplink
		DownlinkBps:   60e3, // ~480 kbit/s effective downlink
	}.withPower(energy.Radio3G())
}

// EDGE returns the EDGE (2.75G) parameter set.
func EDGE() Params {
	return Params{
		Name:          "Edge",
		WakeupLatency: 2000 * time.Millisecond,
		RTT:           700 * time.Millisecond,
		HandshakeRTTs: 4,
		UplinkBps:     3.75e3, // ~30 kbit/s
		DownlinkBps:   25e3,   // ~200 kbit/s
	}.withPower(energy.RadioEDGE())
}

// WiFi returns the 802.11g parameter set. The wakeup term models the
// extra steps the paper notes make WiFi "not instantly available":
// waking from power-save, scanning and (re)associating with an access
// point before the first packet flows.
func WiFi() Params {
	return Params{
		Name:          "802.11g",
		WakeupLatency: 1550 * time.Millisecond,
		RTT:           100 * time.Millisecond,
		HandshakeRTTs: 4,
		UplinkBps:     125e3, // ~1 Mbit/s
		DownlinkBps:   400e3, // ~3.2 Mbit/s
	}.withPower(energy.RadioWiFi())
}

// Technologies returns every built-in link parameter set.
func Technologies() []Params { return []Params{ThreeG(), EDGE(), WiFi()} }

// ActiveEnergy returns the radio energy of holding the link in the
// Active state for d.
func (p Params) ActiveEnergy(d time.Duration) float64 {
	return energy.Integrate(p.ExtraActivePower, d)
}

// TailEnergy returns the energy of one full post-transfer tail — the
// cost every radio session eventually pays once, however many
// exchanges it carried. Together with the wakeup this is the session
// overhead the paper's batching argument amortizes.
func (p Params) TailEnergy() float64 {
	return energy.Integrate(p.ExtraTailPower, p.TailDuration)
}

// Transfer is the modeled outcome of one request/response exchange.
type Transfer struct {
	// Wakeup is the promotion latency paid (zero if the link was warm).
	Wakeup time.Duration
	// Handshake is the connection-establishment round-trip time.
	Handshake time.Duration
	// Payload is the request upload plus response download time.
	Payload time.Duration
	// RadioActive is the time the radio spent in Active state,
	// including the wakeup.
	RadioActive time.Duration
	// WasWarm reports whether the link skipped the wakeup.
	WasWarm bool
	// Failed reports that the exchange attempt carried no payload: the
	// network dropped it (or the far end errored) after the radio had
	// already paid the session overhead.
	Failed bool
}

// Total is the end-to-end network latency of the exchange.
func (t Transfer) Total() time.Duration { return t.Wakeup + t.Handshake + t.Payload }

// Link is a radio link instance with its own model clock.
type Link struct {
	params Params
	now    time.Duration // model time
	// tailEnds is the model time at which the current tail expires;
	// zero or past means the link is idle.
	tailEnds time.Duration
	// meter accumulates the radio-only energy in joules.
	meter energy.Meter
	// accounting
	activeTime time.Duration
	wakeups    int
}

// NewLink creates a link in the Idle state at model time zero.
func NewLink(p Params) *Link { return &Link{params: p} }

// Params returns the link's technology parameters.
func (l *Link) Params() Params { return l.params }

// Now returns the link's current model time.
func (l *Link) Now() time.Duration { return l.now }

// StateAt reports the link state at the current model time.
func (l *Link) State() State {
	if l.now < l.tailEnds {
		return Tail
	}
	return Idle
}

// TailRemaining returns how much of the post-transfer tail is left at
// the current model time — zero when the link is idle. The hedging
// planner (internal/faults.PlanHedged) uses it to decide whether a
// staggered clone dispatch will still find the radio warm.
func (l *Link) TailRemaining() time.Duration {
	if d := l.tailEnds - l.now; d > 0 {
		return d
	}
	return 0
}

// RadioEnergy returns the accumulated radio-only energy in joules
// (excluding the device baseline, which internal/device adds).
func (l *Link) RadioEnergy() float64 { return l.meter.Joules() }

// ActiveTime returns the cumulative time spent in the Active state.
func (l *Link) ActiveTime() time.Duration { return l.activeTime }

// Wakeups returns how many idle→active promotions the link performed.
func (l *Link) Wakeups() int { return l.wakeups }

func transferTime(bytes int, bps float64) time.Duration {
	if bytes <= 0 || bps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bps * float64(time.Second))
}

// FailedAttemptCost is the modeled duration of one failed exchange
// attempt under p: the wake-up (when the link starts cold) plus the
// handshake round trips. No payload moves, but the radio was fully
// active for all of it — the fault model's "you pay for the radio even
// when the network drops you".
func FailedAttemptCost(p Params, warm bool) time.Duration {
	d := time.Duration(p.HandshakeRTTs) * p.RTT
	if !warm {
		d += p.WakeupLatency
	}
	return d
}

// ExchangeCost models one request/response exchange under p without a
// live link, with the link's warmth supplied by the caller. The
// arithmetic mirrors Link.Request exactly, so a transfer planned
// analytically (internal/faults) matches what a live link would have
// charged.
func ExchangeCost(p Params, reqBytes, respBytes int, warm bool) Transfer {
	t := Transfer{
		Handshake: time.Duration(p.HandshakeRTTs) * p.RTT,
		Payload:   transferTime(reqBytes, p.UplinkBps) + transferTime(respBytes, p.DownlinkBps),
		WasWarm:   warm,
	}
	if !warm {
		t.Wakeup = p.WakeupLatency
	}
	t.RadioActive = t.Wakeup + t.Handshake + t.Payload
	return t
}

// Request models sending reqBytes upstream and receiving respBytes
// downstream at the current model time, advancing the clock by the
// exchange's total latency and accounting the radio energy.
func (l *Link) Request(reqBytes, respBytes int) Transfer {
	t := Transfer{
		Handshake: time.Duration(l.params.HandshakeRTTs) * l.params.RTT,
		Payload:   transferTime(reqBytes, l.params.UplinkBps) + transferTime(respBytes, l.params.DownlinkBps),
	}
	if l.State() == Idle {
		t.Wakeup = l.params.WakeupLatency
		l.wakeups++
	} else {
		t.WasWarm = true
	}
	t.RadioActive = t.Wakeup + t.Handshake + t.Payload
	l.meter.Charge(l.params.ExtraActivePower, t.RadioActive)
	l.activeTime += t.RadioActive
	l.now += t.Total()
	l.tailEnds = l.now + l.params.TailDuration
	return t
}

// FailedRequest models an exchange attempt the network dropped: the
// link pays the full session overhead — the wake-up when it was idle,
// plus the handshake — with nothing to show for it, and is left in its
// post-attempt tail (the radio was promoted; it demotes on its own).
// The clock and energy advance exactly as Request's overhead would;
// only the payload never flows.
func (l *Link) FailedRequest() Transfer {
	t := Transfer{
		Handshake: time.Duration(l.params.HandshakeRTTs) * l.params.RTT,
		Failed:    true,
	}
	if l.State() == Idle {
		t.Wakeup = l.params.WakeupLatency
		l.wakeups++
	} else {
		t.WasWarm = true
	}
	t.RadioActive = t.Wakeup + t.Handshake
	l.meter.Charge(l.params.ExtraActivePower, t.RadioActive)
	l.activeTime += t.RadioActive
	l.now += t.Total()
	l.tailEnds = l.now + l.params.TailDuration
	return t
}

// Advance moves the model clock forward by d with the radio inactive,
// charging tail power while the tail lasts and idle power afterwards.
func (l *Link) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	end := l.now + d
	if l.now < l.tailEnds {
		tail := l.tailEnds - l.now
		if tail > d {
			tail = d
		}
		l.meter.Charge(l.params.ExtraTailPower, tail)
		l.meter.Charge(l.params.ExtraIdlePower, d-tail)
	} else {
		l.meter.Charge(l.params.ExtraIdlePower, d)
	}
	l.now = end
}

// Reset returns the link to Idle at model time zero with counters cleared.
func (l *Link) Reset() { *l = Link{params: l.params} }

// Exchange is one request/response size pair of a batched transfer.
type Exchange struct {
	ReqBytes  int
	RespBytes int
}

// BatchTransfer is the modeled outcome of a coalesced exchange: n
// request/response pairs sharing one radio session. The wake-up and
// the connection handshake are paid once for the whole batch, then the
// payloads are serialized over the link in batch order, so item i's
// response lands only after every earlier item's payload. The
// post-transfer tail is likewise entered once. This is the paper's
// amortization argument made explicit: for small transfers nearly all
// of the radio time — and therefore energy — is session overhead, and
// overhead divided by n vanishes as batches grow.
type BatchTransfer struct {
	// Wakeup is the promotion latency paid once (zero if the session
	// started warm).
	Wakeup time.Duration
	// Handshake is the connection-establishment time, paid once.
	Handshake time.Duration
	// Payloads holds each item's upload-plus-download time, in batch
	// order.
	Payloads []time.Duration
	// WasWarm reports whether the session skipped the wakeup.
	WasWarm bool
}

// Size returns the number of items in the batch.
func (b BatchTransfer) Size() int { return len(b.Payloads) }

// Overhead is the per-session latency shared by every item: the
// wake-up plus the handshake.
func (b BatchTransfer) Overhead() time.Duration { return b.Wakeup + b.Handshake }

// TotalPayload is the serialized transfer time of all items.
func (b BatchTransfer) TotalPayload() time.Duration {
	var sum time.Duration
	for _, p := range b.Payloads {
		sum += p
	}
	return sum
}

// Total is the end-to-end latency of the whole session.
func (b BatchTransfer) Total() time.Duration { return b.Overhead() + b.TotalPayload() }

// ItemLatency is the modeled latency until item i's response has
// landed: the shared overhead plus every payload through item i.
func (b BatchTransfer) ItemLatency(i int) time.Duration {
	lat := b.Overhead()
	for j := 0; j <= i && j < len(b.Payloads); j++ {
		lat += b.Payloads[j]
	}
	return lat
}

// ItemShare is the radio-active time attributed to item i: its own
// payload plus an equal 1/n share of the session overhead. The shares
// sum to the session's total active time.
func (b BatchTransfer) ItemShare(i int) time.Duration {
	if len(b.Payloads) == 0 || i < 0 || i >= len(b.Payloads) {
		return 0
	}
	return b.Overhead()/time.Duration(len(b.Payloads)) + b.Payloads[i]
}

// SessionRadioEnergy is the radio energy of the whole session under p,
// including the attributed post-transfer tail.
func (b BatchTransfer) SessionRadioEnergy(p Params) float64 {
	return p.ActiveEnergy(b.Total()) + p.TailEnergy()
}

// ItemRadioEnergy is the radio energy attributed to item i under p:
// active power over the item's share plus 1/n of the tail.
func (b BatchTransfer) ItemRadioEnergy(p Params, i int) float64 {
	if len(b.Payloads) == 0 {
		return 0
	}
	return p.ActiveEnergy(b.ItemShare(i)) + p.TailEnergy()/float64(len(b.Payloads))
}

// BatchExchange models a coalesced exchange under p without a live
// link: the session starts cold (it always pays the wake-up). This is
// the form the fleet's miss dispatcher uses — its shared uplink sleeps
// between linger windows, so every session starts from Idle. An empty
// batch is a no-op: no session is opened and the zero BatchTransfer is
// returned (no wake-up is charged for nothing).
func BatchExchange(p Params, items []Exchange) BatchTransfer {
	if len(items) == 0 {
		return BatchTransfer{}
	}
	b := BatchTransfer{
		Wakeup:    p.WakeupLatency,
		Handshake: time.Duration(p.HandshakeRTTs) * p.RTT,
		Payloads:  make([]time.Duration, len(items)),
	}
	for i, it := range items {
		b.Payloads[i] = transferTime(it.ReqBytes, p.UplinkBps) + transferTime(it.RespBytes, p.DownlinkBps)
	}
	return b
}

// RequestBatch models a coalesced exchange on this link: n
// request/response pairs in one radio session, paying the wake-up (if
// the link is idle), the handshake and the tail once. The clock
// advances by the session total and the link is left in Tail — the
// single-device analogue of the fleet's miss coalescing (a phone
// flushing several deferred misses in one session). An empty batch is
// a no-op: the link state, clock and counters are untouched and the
// zero BatchTransfer is returned.
func (l *Link) RequestBatch(items []Exchange) BatchTransfer {
	if len(items) == 0 {
		return BatchTransfer{}
	}
	b := BatchTransfer{
		Handshake: time.Duration(l.params.HandshakeRTTs) * l.params.RTT,
		Payloads:  make([]time.Duration, len(items)),
	}
	for i, it := range items {
		b.Payloads[i] = transferTime(it.ReqBytes, l.params.UplinkBps) + transferTime(it.RespBytes, l.params.DownlinkBps)
	}
	if l.State() == Idle {
		b.Wakeup = l.params.WakeupLatency
		l.wakeups++
	} else {
		b.WasWarm = true
	}
	active := b.Total()
	l.meter.Charge(l.params.ExtraActivePower, active)
	l.activeTime += active
	l.now += active
	l.tailEnds = l.now + l.params.TailDuration
	return b
}

// JoinBatch accounts this link's membership in a batched exchange
// whose session ran on a shared uplink: the device waited wait of
// model time for its response and is attributed share of the session's
// radio-active time. The link is left in its post-transfer tail. The
// session's wake-up is owned by the uplink, so this link's own wakeup
// counter does not move.
func (l *Link) JoinBatch(wait, share time.Duration) {
	if share > 0 {
		l.meter.Charge(l.params.ExtraActivePower, share)
		l.activeTime += share
	}
	if wait < 0 {
		wait = 0
	}
	l.now += wait
	l.tailEnds = l.now + l.params.TailDuration
}

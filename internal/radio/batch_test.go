package radio

import (
	"math"
	"testing"
	"time"
)

func exchanges(n int) []Exchange {
	items := make([]Exchange, n)
	for i := range items {
		items[i] = Exchange{ReqBytes: 800, RespBytes: 100_000}
	}
	return items
}

// TestBatchExchangeAmortizesOverhead checks the core batching
// invariants: one wake-up and one handshake for the whole session,
// payloads serialized in order, and per-item shares that sum back to
// the session exactly.
func TestBatchExchangeAmortizesOverhead(t *testing.T) {
	for _, p := range Technologies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const n = 8
			b := BatchExchange(p, exchanges(n))
			if b.Size() != n {
				t.Fatalf("Size = %d, want %d", b.Size(), n)
			}
			if b.WasWarm {
				t.Error("dispatcher sessions must start cold")
			}
			if b.Wakeup != p.WakeupLatency {
				t.Errorf("Wakeup = %v, want %v", b.Wakeup, p.WakeupLatency)
			}
			wantHS := time.Duration(p.HandshakeRTTs) * p.RTT
			if b.Handshake != wantHS {
				t.Errorf("Handshake = %v, want %v", b.Handshake, wantHS)
			}
			if b.Total() != b.Overhead()+b.TotalPayload() {
				t.Errorf("Total %v != Overhead %v + TotalPayload %v", b.Total(), b.Overhead(), b.TotalPayload())
			}

			// Item latencies are monotone: item i waits for payloads 0..i.
			prev := time.Duration(0)
			for i := 0; i < n; i++ {
				lat := b.ItemLatency(i)
				if lat <= prev {
					t.Errorf("ItemLatency(%d) = %v not beyond ItemLatency(%d) = %v", i, lat, i-1, prev)
				}
				prev = lat
			}
			if b.ItemLatency(n-1) != b.Total() {
				t.Errorf("last item latency %v != session total %v", b.ItemLatency(n-1), b.Total())
			}

			// Shares partition the session's active time (up to integer
			// nanosecond division of the overhead).
			var shares time.Duration
			for i := 0; i < n; i++ {
				shares += b.ItemShare(i)
			}
			if diff := b.Total() - shares; diff < 0 || diff > n {
				t.Errorf("shares sum %v vs session %v (diff %v)", shares, b.Total(), diff)
			}

			// Item energies partition the session energy, tail included.
			var itemJ float64
			for i := 0; i < n; i++ {
				itemJ += b.ItemRadioEnergy(p, i)
			}
			if sess := b.SessionRadioEnergy(p); math.Abs(itemJ-sess) > 1e-9*sess {
				t.Errorf("item energies sum %.9f J, session %.9f J", itemJ, sess)
			}

			// The whole point: a batch member costs measurably less radio
			// energy than the same exchange in its own cold session.
			solo := BatchExchange(p, exchanges(1))
			soloJ := solo.SessionRadioEnergy(p)
			memberJ := b.ItemRadioEnergy(p, 0)
			if memberJ >= soloJ {
				t.Errorf("batched member %.3f J not below solo miss %.3f J", memberJ, soloJ)
			}
			if memberJ > 0.5*soloJ {
				t.Errorf("batched member %.3f J saved less than half of solo %.3f J; overhead should dominate", memberJ, soloJ)
			}
		})
	}
}

// TestBatchExchangeSingleItemMatchesRequest checks a batch of one costs
// exactly what a cold unbatched request costs.
func TestBatchExchangeSingleItemMatchesRequest(t *testing.T) {
	p := ThreeG()
	b := BatchExchange(p, exchanges(1))
	tr := NewLink(p).Request(800, 100_000)
	if b.Total() != tr.Total() {
		t.Errorf("batch-of-one latency %v != cold request %v", b.Total(), tr.Total())
	}
	if got, want := b.ItemShare(0), tr.RadioActive; got != want {
		t.Errorf("batch-of-one share %v != cold request active %v", got, want)
	}
	wantJ := p.ActiveEnergy(tr.RadioActive) + p.TailEnergy()
	if got := b.ItemRadioEnergy(p, 0); math.Abs(got-wantJ) > 1e-12 {
		t.Errorf("batch-of-one energy %.9f J != cold request %.9f J", got, wantJ)
	}
}

// TestRequestBatchLinkState checks the stateful batch call drives the
// link state machine like any transfer: cold pays the wake-up, a
// session inside the previous tail starts warm, and the clock advances
// by the session total.
func TestRequestBatchLinkState(t *testing.T) {
	p := ThreeG()
	l := NewLink(p)
	b1 := l.RequestBatch(exchanges(4))
	if b1.WasWarm || b1.Wakeup != p.WakeupLatency {
		t.Errorf("first session should be cold: %+v", b1)
	}
	if l.Wakeups() != 1 {
		t.Errorf("wakeups = %d, want 1", l.Wakeups())
	}
	if l.Now() != b1.Total() {
		t.Errorf("clock %v, want %v", l.Now(), b1.Total())
	}
	if l.State() != Tail {
		t.Errorf("state %v after session, want Tail", l.State())
	}
	// Within the tail: warm session, no second wake-up.
	b2 := l.RequestBatch(exchanges(2))
	if !b2.WasWarm || b2.Wakeup != 0 {
		t.Errorf("session in tail should be warm: %+v", b2)
	}
	if l.Wakeups() != 1 {
		t.Errorf("wakeups = %d after warm session, want 1", l.Wakeups())
	}
	// Past the tail: cold again.
	l.Advance(p.TailDuration + time.Second)
	b3 := l.RequestBatch(exchanges(1))
	if b3.WasWarm {
		t.Error("session after tail expiry should be cold")
	}
	if l.Wakeups() != 2 {
		t.Errorf("wakeups = %d, want 2", l.Wakeups())
	}
}

// TestJoinBatch checks a member link books exactly its attributed share
// and is left tailing, without claiming the session's wake-up.
func TestJoinBatch(t *testing.T) {
	p := ThreeG()
	l := NewLink(p)
	wait, share := 3*time.Second, 900*time.Millisecond
	l.JoinBatch(wait, share)
	if got, want := l.RadioEnergy(), p.ActiveEnergy(share); math.Abs(got-want) > 1e-12 {
		t.Errorf("energy %.9f J, want %.9f J", got, want)
	}
	if l.ActiveTime() != share {
		t.Errorf("active time %v, want %v", l.ActiveTime(), share)
	}
	if l.Now() != wait {
		t.Errorf("clock %v, want %v", l.Now(), wait)
	}
	if l.Wakeups() != 0 {
		t.Errorf("wakeups = %d; the shared uplink owns the wake-up", l.Wakeups())
	}
	if l.State() != Tail {
		t.Errorf("state %v, want Tail", l.State())
	}
}

// Package pocketsearch implements the PocketSearch cloudlet of
// Section 5 of the Pocket Cloudlets paper: an on-device search cache
// that serves web search queries from local flash, falling back to the
// cloud search engine over the radio on a miss.
//
// The cache has two interrelated components (Figure 6):
//
//   - The community component is preloaded from the community's search
//     logs (internal/cachegen) and gives a warm out-of-the-box start.
//   - The personalization component monitors the user's queries and
//     clicks: it expands the cache with pairs the user accessed that
//     the community part lacked, and it personalizes ranking scores —
//     the clicked result's score is incremented by one while its
//     siblings decay exponentially (Equations 1 and 2).
//
// Storage follows the paper's architecture (Figure 9): a DRAM hash
// table (internal/hashtable) linking query hashes to result hashes and
// scores, and a 32-file custom database (internal/resultdb) holding
// each search result record once in flash. All latencies and energy
// are charged against the device model (internal/device).
package pocketsearch

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/hashtable"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/resultdb"
	"pocketcloudlets/internal/suggest"
)

// DefaultLambda is the score decay constant of Equation 2: unselected
// sibling results decay by e^-lambda per click, so freshness of clicks
// outweighs stale history.
const DefaultLambda = 0.1

// LookupCost is the modeled hash-table lookup time: the paper measures
// 10 µs, negligible against every other component (Table 4).
const LookupCost = 10 * time.Microsecond

// Options configure a PocketSearch cache instance.
type Options struct {
	// SlotsPerEntry is the hash table slot count. Zero selects the
	// paper's choice of 2.
	SlotsPerEntry int
	// DatabaseFiles is the result database file count. Zero selects
	// the paper's choice of 32.
	DatabaseFiles int
	// Lambda is the Equation 2 decay constant. Zero selects DefaultLambda.
	Lambda float64
	// DisablePersonalization turns off cache expansion and score
	// updates — the "community only" configuration of Figure 17.
	DisablePersonalization bool
	// ResultsShown is how many top-ranked cached results are fetched
	// and displayed on a hit (the prototype shows results in the
	// auto-suggest box; two are fetched in Table 4's breakdown).
	ResultsShown int
	// DiscardResults skips materializing Outcome.Results: records are
	// still fetched (and their flash latency charged) and engine
	// responses still ship, but no result structs are parsed or
	// appended, so a serve allocates nothing for callers — load
	// generators, large-fleet benchmarks — that never read the result
	// list. Every latency, energy and hit/miss number is unchanged.
	DiscardResults bool
	// IndexPlacement selects where the hash table lives across power
	// cycles (Section 3.3): the default two-tier DRAM+NAND hierarchy
	// reloads it from flash at every boot, while a three-tier
	// hierarchy keeps it instantly available in PCM.
	IndexPlacement device.IndexPlacement
	// DisableSuggest skips maintaining the auto-completion index and
	// its query-text map. Nothing modeled reads them — every latency,
	// energy and hit/miss number is unchanged — but they cost a trie
	// plus a string map per cache (~2.5 KB per user), which at a
	// million users is the difference between fitting in host memory
	// or not. Autocomplete returns nil while disabled.
	DisableSuggest bool
}

func (o Options) withDefaults() Options {
	if o.SlotsPerEntry == 0 {
		o.SlotsPerEntry = 2
	}
	if o.DatabaseFiles == 0 {
		o.DatabaseFiles = resultdb.DefaultFiles
	}
	if o.Lambda == 0 {
		o.Lambda = DefaultLambda
	}
	if o.ResultsShown == 0 {
		o.ResultsShown = 2
	}
	return o
}

// Cache is a live PocketSearch instance on a device.
//
// Concurrency contract: a Cache models one device and is single-owner —
// Query, Preload, ReplaceTable and the other mutating methods must not
// be called concurrently. The fleet layer (internal/fleet) enforces this
// by serializing all access to a cache behind its shard lock. The only
// exception is the activity counters: Stats and ResetStats are safe to
// call from any goroutine, concurrently with Query, so monitoring never
// needs the shard lock.
type Cache struct {
	opts  Options
	dev   *device.Device
	table *hashtable.Table
	db    *resultdb.DB
	eng   *engine.Engine

	// stats counters are atomic so Stats/ResetStats stay safe to call
	// concurrently with Query without a lock on the serve path.
	stats cacheStats
	// completions indexes the cached query strings for the Figure 1
	// auto-suggest box; queryText maps query hashes back to strings so
	// the index can follow hash table updates.
	completions *suggest.Index
	queryText   map[uint64]string
	// lastQueryText carries the miss-path query string to expand.
	lastQueryText string
	// refsBuf is the scratch buffer hash-table lookups reuse so the
	// steady-state serve path allocates nothing. Single-owner like the
	// rest of the cache: only the serialized mutating methods touch it.
	refsBuf []hashtable.SearchRef
}

// cacheStats is the atomic backing store for Stats.
type cacheStats struct {
	queries, hits, misses, expansions, stale atomic.Int64
}

// Stats accumulates cache activity counters.
type Stats struct {
	Queries    int
	Hits       int
	Misses     int
	Expansions int // pairs added by the personalization component
	// Stale counts degraded serves: queries answered from cached
	// results while the cloud was unreachable (ServeStale). They are
	// not hits — the clicked result was not among the cached ones.
	Stale int
}

// HitRate returns the fraction of queries served locally.
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// New creates an empty PocketSearch cache on the device, backed by the
// given cloud engine for misses.
func New(dev *device.Device, eng *engine.Engine, opts Options) (*Cache, error) {
	if dev == nil || eng == nil {
		return nil, fmt.Errorf("pocketsearch: device and engine are required")
	}
	o := opts.withDefaults()
	tbl, err := hashtable.New(o.SlotsPerEntry)
	if err != nil {
		return nil, err
	}
	db, err := resultdb.New(dev.Store(), resultdb.Config{Files: o.DatabaseFiles})
	if err != nil {
		return nil, err
	}
	c := &Cache{
		opts:  o,
		dev:   dev,
		table: tbl,
		db:    db,
		eng:   eng,
	}
	if !o.DisableSuggest {
		c.completions = suggest.New()
		c.queryText = make(map[uint64]string)
	}
	return c, nil
}

// Build creates a cache preloaded with community content. The preload
// models the overnight provisioning path (WiFi or tethered, device
// charging), so it charges flash write latency but no radio cost.
func Build(dev *device.Device, eng *engine.Engine, content cachegen.Content, opts Options) (*Cache, error) {
	c, err := New(dev, eng, opts)
	if err != nil {
		return nil, err
	}
	if err := c.Preload(content); err != nil {
		return nil, err
	}
	return c, nil
}

// Preload installs community content into the cache. Records are
// bulk-loaded one database file at a time, merged with any records
// already present.
func (c *Cache) Preload(content cachegen.Content) error {
	u := c.eng.Universe()
	perFile := make(map[int]map[uint64][]byte)
	for _, tr := range content.Triplets {
		q := u.QueryText(u.QueryOf(tr.Pair))
		res := u.Result(u.ResultOf(tr.Pair))
		qh := hash64.Sum(q)
		rh := hash64.Sum(res.URL)
		c.table.Put(qh, hashtable.SearchRef{ResultHash: rh, Score: content.Scores[tr.Pair]})
		// Completions rank by community popularity: the pair's volume.
		c.indexQuery(qh, q, float64(tr.Volume))
		f := c.db.FileOf(rh)
		if perFile[f] == nil {
			perFile[f] = make(map[uint64][]byte)
		}
		if _, dup := perFile[f][rh]; !dup {
			perFile[f][rh] = res.Record()
		}
	}
	for f, recs := range perFile {
		existing, err := c.db.RecordsOf(f)
		if err != nil {
			return fmt.Errorf("pocketsearch: preload: %w", err)
		}
		for rh, rec := range existing {
			if _, ok := recs[rh]; !ok {
				recs[rh] = rec
			}
		}
		if _, err := c.db.ReplaceFile(f, recs); err != nil {
			return fmt.Errorf("pocketsearch: preload: %w", err)
		}
	}
	return nil
}

// Table exposes the underlying hash table (used by the cache manager
// when synchronizing with the server, Section 5.4).
func (c *Cache) Table() *hashtable.Table { return c.table }

// QueryTexts returns a copy of the cache's query-hash → string map:
// the phone-side vocabulary the update cycle (and shard-to-shard state
// migration) ships so the receiving cache can rebuild its
// auto-completion index.
func (c *Cache) QueryTexts() map[uint64]string {
	out := make(map[uint64]string, len(c.queryText))
	for qh, q := range c.queryText {
		out[qh] = q
	}
	return out
}

// ReplaceTable installs a new hash table, completing the Section 5.4
// update cycle on the phone side. queryTexts carries the string form
// of the queries the server shipped, so the auto-completion index can
// be rebuilt; strings the phone already knows are preserved for pairs
// that survived the merge.
func (c *Cache) ReplaceTable(t *hashtable.Table, queryTexts map[uint64]string) {
	c.table = t
	if c.opts.DisableSuggest {
		return
	}
	for qh, q := range queryTexts {
		if q != "" {
			c.queryText[qh] = q
		}
	}
	prev := c.completions
	c.completions = suggest.New()
	for qh, q := range c.queryText {
		if !t.Contains(qh) {
			delete(c.queryText, qh)
			continue
		}
		best := 0.0
		for _, ref := range t.Lookup(qh) {
			if ref.Score > best {
				best = ref.Score
			}
		}
		// Surviving queries keep their established completion rank.
		if old, ok := prev.Score(q); ok && old > best {
			best = old
		}
		c.completions.Add(q, best)
	}
}

// lookupScratch is Table.LookupInto through the cache's reusable
// scratch buffer. The returned slice is valid until the next
// lookupScratch call; single-owner like every mutating method.
func (c *Cache) lookupScratch(qh uint64) []hashtable.SearchRef {
	refs := c.table.LookupInto(qh, c.refsBuf)
	if refs != nil {
		c.refsBuf = refs[:0]
	}
	return refs
}

// indexQuery records a query string for auto-completion, keeping the
// best score seen.
func (c *Cache) indexQuery(qh uint64, q string, score float64) {
	if c.opts.DisableSuggest {
		return
	}
	c.queryText[qh] = q
	c.completions.Add(q, score)
}

// Autocomplete returns up to k cached-query completions of the typed
// prefix, best ranking score first — the Figure 1 auto-suggest box.
// Like Suggest, it is served entirely from DRAM: the production
// alternative the paper describes submits a server query per typed
// letter over the radio (Section 8).
func (c *Cache) Autocomplete(prefix string, k int) []suggest.Completion {
	if c.completions == nil {
		return nil
	}
	return c.completions.Complete(prefix, k)
}

// DB exposes the underlying result database.
func (c *Cache) DB() *resultdb.DB { return c.db }

// Device returns the device the cache runs on.
func (c *Cache) Device() *device.Device { return c.dev }

// Engine returns the cloud engine backing the cache.
func (c *Cache) Engine() *engine.Engine { return c.eng }

// Stats returns a snapshot of the activity counters. It is safe to
// call concurrently with Query.
func (c *Cache) Stats() Stats {
	return Stats{
		Queries:    int(c.stats.queries.Load()),
		Hits:       int(c.stats.hits.Load()),
		Misses:     int(c.stats.misses.Load()),
		Expansions: int(c.stats.expansions.Load()),
		Stale:      int(c.stats.stale.Load()),
	}
}

// ResetStats clears the activity counters. It is safe to call
// concurrently with Query.
func (c *Cache) ResetStats() {
	c.stats.queries.Store(0)
	c.stats.hits.Store(0)
	c.stats.misses.Store(0)
	c.stats.expansions.Store(0)
	c.stats.stale.Store(0)
}

// Outcome describes how one query was served.
type Outcome struct {
	// Hit reports whether the query (and the clicked result) was
	// served from the local cache.
	Hit bool
	// Results are the displayed results, best-ranked first (cached
	// records on a hit, engine results on a miss).
	Results []engine.Result
	// Lookup, Fetch, Render, Misc and Network decompose the user
	// response time (Table 4); Network is zero on a hit.
	Lookup  time.Duration
	Fetch   time.Duration
	Render  time.Duration
	Misc    time.Duration
	Network time.Duration
	// Radio is the modeled radio exchange of a miss (zero value on a
	// hit): the fleet layer reads it to attribute radio energy per
	// request.
	Radio radio.Transfer
}

// ResponseTime is the end-to-end user response time of the query.
func (o Outcome) ResponseTime() time.Duration {
	return o.Lookup + o.Fetch + o.Render + o.Misc + o.Network
}

// RemovePair removes one (query, result) pair from the cache index,
// dropping the query from auto-completion when its last result goes
// (the incremental daily-update path uses this for pruned pairs).
func (c *Cache) RemovePair(queryHash, resultHash uint64) bool {
	ok := c.table.Remove(queryHash, resultHash)
	if ok && !c.table.Contains(queryHash) {
		if q, known := c.queryText[queryHash]; known {
			c.completions.Remove(q)
			delete(c.queryText, queryHash)
		}
	}
	return ok
}

// ContainsPair reports whether the cache holds the (query, clicked
// result) pair — Query's hit criterion — without charging any model
// cost. The fleet layer uses it to route a request to the cache tier
// that will serve it.
func (c *Cache) ContainsPair(queryHash, resultHash uint64) bool {
	return c.table.ContainsRef(queryHash, resultHash)
}

// ContainsQuery reports whether the cache holds any results for the
// query, regardless of which result the user will click — the
// criterion of the fleet's degradation ladder (a stale answer beats no
// answer when the cloud is unreachable). No model cost is charged.
func (c *Cache) ContainsQuery(queryHash uint64) bool {
	return c.table.Contains(queryHash)
}

// UnavailablePageBytes is the size of the explicit degraded response —
// the small locally rendered "results unavailable, retry later" page
// served when every rung of the degradation ladder is exhausted.
const UnavailablePageBytes = 2_000

// ServeStale serves whatever the cache holds for the query as a
// degraded answer while the cloud is unreachable: the top-ranked
// cached records are fetched and rendered exactly like a hit, but the
// interaction is NOT a hit (the clicked result is not known to be
// among the cached ones) and no personalization is applied — the cache
// must not learn from an answer the user did not choose. It reports
// false, charging nothing, when the query has no cached results.
func (c *Cache) ServeStale(queryText string) (Outcome, bool) {
	refs := c.lookupScratch(hash64.Sum(queryText))
	if len(refs) == 0 {
		return Outcome{}, false
	}
	c.stats.queries.Add(1)
	c.stats.stale.Add(1)

	var out Outcome
	out.Lookup = LookupCost
	c.dev.Busy(LookupCost, "lookup")
	shown := c.opts.ResultsShown
	if shown > len(refs) {
		shown = len(refs)
	}
	for _, r := range refs[:shown] {
		rec, lat, err := c.db.GetView(r.ResultHash)
		if err != nil {
			continue
		}
		out.Fetch += lat
		if !c.opts.DiscardResults {
			if res, perr := engine.ParseRecord(rec); perr == nil {
				out.Results = append(out.Results, res)
			}
		}
	}
	c.dev.FlashBusy(out.Fetch)
	out.Render = c.dev.Render(ResultsPageBytes)
	out.Misc = c.dev.Misc()
	return out, true
}

// EvictResult removes every cached (query, result) pair referencing
// the result, the result record itself, and any auto-completions whose
// query lost its last cached result. The flash rewrite latency is
// charged to the device. It returns the logical flash bytes freed —
// the currency of the fleet layer's storage budget (Section 7's user
// vs. pocket cloudlet storage arbitration, applied across users).
func (c *Cache) EvictResult(resultHash uint64) int64 {
	before := c.db.LogicalBytes()
	if c.table.RemoveResult(resultHash) > 0 {
		for qh, q := range c.queryText {
			if !c.table.Contains(qh) {
				c.completions.Remove(q)
				delete(c.queryText, qh)
			}
		}
	}
	if lat, ok, err := c.db.Delete(resultHash); err == nil && ok {
		c.dev.FlashBusy(lat)
	}
	return before - c.db.LogicalBytes()
}

// Boot models a device power cycle: before the first query can be
// served, the hash table must be available. Under the two-tier
// hierarchy it streams out of NAND into DRAM; under the three-tier
// hierarchy it is already resident in PCM and boot costs nothing
// (Section 3.3). The load time is charged to the device and returned.
func (c *Cache) Boot() time.Duration {
	lat := c.dev.BootIndexLoad(c.table.FootprintBytes(), c.opts.IndexPlacement)
	c.dev.Busy(lat, "boot")
	return lat
}

// Suggest returns the cached results for a query without charging any
// serving cost — the instant auto-suggest experience of the prototype
// GUI (Figure 1): cached results appear as the user types, and the 3G
// path is only taken if the user asks for fresh results.
func (c *Cache) Suggest(queryText string) []engine.Result {
	refs := c.table.Lookup(hash64.Sum(queryText))
	var out []engine.Result
	for _, r := range refs {
		rec, _, err := c.db.Get(r.ResultHash)
		if err != nil {
			continue
		}
		res, err := engine.ParseRecord(rec)
		if err != nil {
			continue
		}
		out = append(out, res)
	}
	return out
}

// suggestPersonalBoost scales personal click scores above raw
// community volumes in the auto-completion ranking.
const suggestPersonalBoost = 1000

// ResultsPageBytes is the nominal size of the rendered search results
// page: ~100 KB whether assembled locally or downloaded (Table 2).
const ResultsPageBytes = 100_000

// Query serves one search interaction: the user submits queryText and
// clicks the result with clickURL. It returns the serving outcome and
// advances the device's model clock and energy accounting.
//
// A query is a cache hit only when the query is present AND the
// clicked result is among its cached results — the same criterion the
// paper uses for repeated queries (same query, same clicked result).
func (c *Cache) Query(queryText, clickURL string) (Outcome, error) {
	c.stats.queries.Add(1)
	qh := hash64.Sum(queryText)
	ch := hash64.Sum(clickURL)

	var out Outcome
	out.Lookup = LookupCost
	c.dev.Busy(LookupCost, "lookup")

	refs := c.lookupScratch(qh)
	var clickCached bool
	for _, r := range refs {
		if r.ResultHash == ch {
			clickCached = true
			break
		}
	}

	if len(refs) > 0 && clickCached {
		// Cache hit: fetch the top-ranked records from flash, render.
		// This is the steady-state serve path; with DiscardResults set
		// it allocates nothing.
		c.stats.hits.Add(1)
		out.Hit = true
		shown := c.opts.ResultsShown
		if shown > len(refs) {
			shown = len(refs)
		}
		for _, r := range refs[:shown] {
			rec, lat, err := c.db.GetView(r.ResultHash)
			if err != nil {
				return out, fmt.Errorf("pocketsearch: hit fetch: %w", err)
			}
			out.Fetch += lat
			if !c.opts.DiscardResults {
				res, err := engine.ParseRecord(rec)
				if err != nil {
					return out, fmt.Errorf("pocketsearch: hit parse: %w", err)
				}
				out.Results = append(out.Results, res)
			}
		}
		c.dev.FlashBusy(out.Fetch)
		out.Render = c.dev.Render(ResultsPageBytes)
		out.Misc = c.dev.Misc()
		if !c.opts.DisablePersonalization {
			c.personalizeClick(qh, ch)
			if s, ok := c.table.Score(qh, ch); ok {
				// Personal clicks outweigh raw community volume in the
				// completion ranking: the user's own queries surface first.
				c.indexQuery(qh, queryText, s*suggestPersonalBoost)
			}
		}
		c.table.MarkAccessed(qh, ch)
		return out, nil
	}

	// Cache miss: query the engine over the radio.
	c.stats.misses.Add(1)
	c.lastQueryText = queryText
	resp, found := c.eng.Search(queryText)
	pageBytes := MissPageBytes(resp)
	tr := c.dev.NetworkRequest(QueryRequestBytes, pageBytes)
	out.Network = tr.Total()
	out.Radio = tr
	out.Render = c.dev.Render(pageBytes)
	out.Misc = c.dev.Misc()
	if found && !c.opts.DiscardResults {
		out.Results = resp.Results
	}

	if !c.opts.DisablePersonalization && clickURL != "" {
		c.expand(qh, ch, clickURL, resp, found)
	}
	return out, nil
}

// MissPageBytes returns the result-page size a miss for resp ships
// over the radio: the engine's page size, or the nominal ~100 KB page
// when the engine had no results (the device still downloads an empty
// results page).
func MissPageBytes(resp engine.SearchResponse) int {
	if resp.PageBytes > 0 {
		return resp.PageBytes
	}
	return ResultsPageBytes
}

// ApplyBatchedMiss serves a query already classified as a cache miss
// whose cloud exchange was coalesced with other misses: resp and found
// carry the engine response fetched by the batched engine visit, wait
// is the modeled latency until this item's response landed (the shared
// wake-up and handshake plus every payload through this item), and
// share is the radio-active time attributed to the item
// (radio.BatchTransfer.ItemShare). The device pays the same lookup,
// render, misc and expansion costs as Query's miss path, so hit/miss
// accounting and cache state evolve byte-identically whether or not
// misses coalesce — only the network term and radio energy differ.
func (c *Cache) ApplyBatchedMiss(queryText, clickURL string, resp engine.SearchResponse, found bool, wait, share time.Duration) Outcome {
	c.stats.queries.Add(1)
	c.stats.misses.Add(1)
	qh := hash64.Sum(queryText)
	ch := hash64.Sum(clickURL)

	var out Outcome
	out.Lookup = LookupCost
	c.dev.Busy(LookupCost, "lookup")

	c.lastQueryText = queryText
	c.dev.NetworkBatchShare(wait, share)
	out.Network = wait
	out.Radio = radio.Transfer{RadioActive: share}
	out.Render = c.dev.Render(MissPageBytes(resp))
	out.Misc = c.dev.Misc()
	if found && !c.opts.DiscardResults {
		out.Results = resp.Results
	}

	if !c.opts.DisablePersonalization && clickURL != "" {
		c.expand(qh, ch, clickURL, resp, found)
	}
	return out
}

// QueryRequestBytes is the size of the HTTP search request — exported
// alongside ResultsPageBytes so the fleet's miss dispatcher can model
// the batched radio exchange itself.
const QueryRequestBytes = 800

// expand implements the personalization component's cache expansion:
// after a miss, the (query, clicked result) pair enters the cache with
// score 1 so future repeats hit locally.
func (c *Cache) expand(qh, ch uint64, clickURL string, resp engine.SearchResponse, found bool) {
	var rec []byte
	if found {
		for _, r := range resp.Results {
			if r.URL == clickURL {
				rec = r.Record()
				break
			}
		}
	}
	if rec == nil {
		// The engine did not return the clicked result (synthetic
		// streams never hit this; defensive for interactive use).
		return
	}
	c.table.Put(qh, hashtable.SearchRef{ResultHash: ch, Score: 1})
	c.table.MarkAccessed(qh, ch)
	c.indexQuery(qh, c.lastQueryText, suggestPersonalBoost)
	if lat, err := c.db.Put(ch, rec); err == nil {
		// Stored off the critical path, but still paid in time/energy.
		c.dev.FlashBusy(lat)
	}
	c.stats.expansions.Add(1)
}

// personalizeClick applies Equations 1 and 2: the clicked result's
// score increases by one; every sibling decays by e^-lambda. It reuses
// the lookup scratch, so callers must be done with any slice a prior
// lookupScratch returned.
func (c *Cache) personalizeClick(qh, ch uint64) {
	for _, r := range c.lookupScratch(qh) {
		if r.ResultHash == ch {
			c.table.SetScore(qh, ch, r.Score+1)
		} else {
			c.table.SetScore(qh, r.ResultHash, r.Score*math.Exp(-c.opts.Lambda))
		}
	}
}

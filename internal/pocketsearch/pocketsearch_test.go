package pocketsearch

import (
	"testing"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

type fixture struct {
	u     *engine.Universe
	eng   *engine.Engine
	dev   *device.Device
	cache *Cache
}

// newFixture builds a cache preloaded with the first n navigational
// pairs (volume descending).
func newFixture(t testing.TB, preload int, opts Options) *fixture {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       608,
		NonNavPairs:    3000,
		NonNavSegments: []engine.Segment{{Queries: 50, ResultsPerQuery: 4}, {Queries: 200, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(u)
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})

	var entries []searchlog.Entry
	for i := 0; i < preload; i++ {
		for v := 0; v < preload-i; v++ { // descending volumes
			entries = append(entries, searchlog.Entry{At: time.Duration(len(entries)), Pair: u.NavPair(i)})
		}
	}
	tbl := searchlog.ExtractTriplets(entries)
	content := cachegen.Generate(tbl, u, len(tbl.Triplets))
	cache, err := Build(dev, eng, content, opts)
	if err != nil {
		t.Fatal(err)
	}
	dev.Reset() // discard preload time/energy: provisioning is overnight
	return &fixture{u: u, eng: eng, dev: dev, cache: cache}
}

func (f *fixture) pairStrings(p searchlog.PairID) (string, string) {
	return f.u.QueryText(f.u.QueryOf(p)), f.u.ResultURL(f.u.ResultOf(p))
}

func TestHitServedLocally(t *testing.T) {
	f := newFixture(t, 10, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))
	out, err := f.cache.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hit {
		t.Fatal("preloaded pair should hit")
	}
	if out.Network != 0 {
		t.Error("hit should not use the radio")
	}
	if len(out.Results) == 0 {
		t.Fatal("hit should return results")
	}
	if out.Results[0].URL != url {
		t.Errorf("top result %q, want clicked %q", out.Results[0].URL, url)
	}
	if f.dev.Link().Wakeups() != 0 {
		t.Error("hit must not wake the radio")
	}
}

// TestHitResponseTimeMatchesTable4 verifies the full Table 4 breakdown:
// ~0.01 ms lookup, ~10 ms fetch, ~361 ms render, ~7 ms misc, ~378 ms total.
func TestHitResponseTimeMatchesTable4(t *testing.T) {
	f := newFixture(t, 40, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))
	out, err := f.cache.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if out.Lookup != LookupCost {
		t.Errorf("lookup = %v, want %v", out.Lookup, LookupCost)
	}
	if out.Fetch < 4*time.Millisecond || out.Fetch > 20*time.Millisecond {
		t.Errorf("fetch = %v, want ~10 ms", out.Fetch)
	}
	if out.Render < 350*time.Millisecond || out.Render > 375*time.Millisecond {
		t.Errorf("render = %v, want ~361 ms", out.Render)
	}
	total := out.ResponseTime()
	if total < 360*time.Millisecond || total > 410*time.Millisecond {
		t.Errorf("hit response time = %v, want ~378 ms", total)
	}
}

// TestMissUsesRadioAndIsMuchSlower verifies the 16x gap of Figure 15a.
func TestMissUsesRadioAndIsMuchSlower(t *testing.T) {
	f := newFixture(t, 10, Options{})
	hitQ, hitURL := f.pairStrings(f.u.NavPair(0))
	hit, err := f.cache.Query(hitQ, hitURL)
	if err != nil {
		t.Fatal(err)
	}
	missQ, missURL := f.pairStrings(f.u.NavPair(300))
	miss, err := f.cache.Query(missQ, missURL)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hit {
		t.Fatal("uncached pair should miss")
	}
	if miss.Network == 0 {
		t.Fatal("miss should use the radio")
	}
	ratio := float64(miss.ResponseTime()) / float64(hit.ResponseTime())
	if ratio < 10 || ratio > 25 {
		t.Errorf("miss/hit response ratio = %.1f, want ~16", ratio)
	}
}

func TestMissExpandsCacheAndRepeatHits(t *testing.T) {
	f := newFixture(t, 5, Options{})
	q, url := f.pairStrings(f.u.NonNavPair(0))
	out, err := f.cache.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit {
		t.Fatal("first access should miss")
	}
	if f.cache.Stats().Expansions != 1 {
		t.Errorf("expansions = %d, want 1", f.cache.Stats().Expansions)
	}
	out2, err := f.cache.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Hit {
		t.Error("repeat of expanded pair should hit")
	}
}

func TestSameQueryDifferentClickIsMiss(t *testing.T) {
	f := newFixture(t, 3, Options{})
	// NavPair(0) is cached; its query's secondary pair (rank 4) is not.
	primary, secondary := f.u.NavPair(0), f.u.NavPair(4)
	if f.u.QueryOf(primary) != f.u.QueryOf(secondary) {
		t.Fatal("test setup: pairs must share a query")
	}
	q := f.u.QueryText(f.u.QueryOf(secondary))
	url := f.u.ResultURL(f.u.ResultOf(secondary))
	out, err := f.cache.Query(q, url)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit {
		t.Error("cached query with uncached clicked result should miss")
	}
	// After expansion both results are cached; now it hits.
	out2, _ := f.cache.Query(q, url)
	if !out2.Hit {
		t.Error("expanded secondary click should now hit")
	}
}

func TestCommunityOnlyDoesNotExpand(t *testing.T) {
	f := newFixture(t, 5, Options{DisablePersonalization: true})
	q, url := f.pairStrings(f.u.NonNavPair(0))
	f.cache.Query(q, url)
	out, _ := f.cache.Query(q, url)
	if out.Hit {
		t.Error("community-only cache must not learn new pairs")
	}
	if f.cache.Stats().Expansions != 0 {
		t.Error("community-only cache should have zero expansions")
	}
}

// TestPersonalizedRanking verifies Equations 1 and 2: clicking one
// result boosts it past its sibling and decays the sibling.
func TestPersonalizedRanking(t *testing.T) {
	f := newFixture(t, 8, Options{}) // block 0 fully cached: both results per query
	q := f.u.QueryText(f.u.QueryOf(f.u.NavPair(0)))
	primaryURL := f.u.ResultURL(f.u.ResultOf(f.u.NavPair(0)))
	secondaryURL := f.u.ResultURL(f.u.ResultOf(f.u.NavPair(4)))

	// Click the secondary result repeatedly; it must overtake.
	for i := 0; i < 3; i++ {
		out, err := f.cache.Query(q, secondaryURL)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Hit {
			t.Fatal("secondary pair should be cached")
		}
	}
	out, err := f.cache.Query(q, secondaryURL)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].URL != secondaryURL {
		t.Errorf("after repeated clicks, top result = %q, want %q", out.Results[0].URL, secondaryURL)
	}
	// The unclicked primary decayed below the clicked one's score.
	qh := hash64.Sum(q)
	clickedScore, ok1 := f.cache.Table().Score(qh, hash64.Sum(secondaryURL))
	primaryScore, ok2 := f.cache.Table().Score(qh, hash64.Sum(primaryURL))
	if !ok1 || !ok2 {
		t.Fatal("both pairs should remain cached")
	}
	if clickedScore <= primaryScore {
		t.Errorf("clicked score %g should exceed decayed sibling %g", clickedScore, primaryScore)
	}
}

func TestEnergyHitVsMiss(t *testing.T) {
	fHit := newFixture(t, 10, Options{})
	q, url := fHit.pairStrings(fHit.u.NavPair(0))
	fHit.cache.Query(q, url)
	eHit := fHit.dev.TotalEnergy()

	fMiss := newFixture(t, 10, Options{})
	q2, url2 := fMiss.pairStrings(fMiss.u.NavPair(300))
	fMiss.cache.Query(q2, url2)
	eMiss := fMiss.dev.TotalEnergy()

	ratio := eMiss / eHit
	if ratio < 15 || ratio > 35 {
		t.Errorf("miss/hit energy ratio = %.1f, want ~23 (Figure 15b)", ratio)
	}
}

func TestStats(t *testing.T) {
	f := newFixture(t, 5, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))
	f.cache.Query(q, url)
	mq, murl := f.pairStrings(f.u.NavPair(200))
	f.cache.Query(mq, murl)
	s := f.cache.Stats()
	if s.Queries != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", s.HitRate())
	}
	f.cache.ResetStats()
	if f.cache.Stats().Queries != 0 {
		t.Error("ResetStats failed")
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil device/engine should fail")
	}
}

func TestBootPlacement(t *testing.T) {
	two := newFixture(t, 40, Options{IndexPlacement: device.TwoTier})
	lat2 := two.cache.Boot()
	if lat2 <= 0 {
		t.Error("two-tier boot should reload the index from NAND")
	}
	if two.dev.Now() != lat2 {
		t.Error("boot time should be charged to the device")
	}
	three := newFixture(t, 40, Options{IndexPlacement: device.ThreeTier})
	if lat3 := three.cache.Boot(); lat3 != 0 {
		t.Errorf("three-tier boot = %v, want 0 (index resident in PCM)", lat3)
	}
}

func TestSuggestCostFree(t *testing.T) {
	f := newFixture(t, 10, Options{})
	q, _ := f.pairStrings(f.u.NavPair(0))
	before := f.dev.Now()
	res := f.cache.Suggest(q)
	if len(res) == 0 {
		t.Fatal("cached query should suggest results")
	}
	if f.dev.Now() != before {
		t.Error("Suggest must not advance the device clock")
	}
	if f.cache.Suggest("never seen") != nil {
		t.Error("unknown query should suggest nothing")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SlotsPerEntry != 2 || o.DatabaseFiles != 32 || o.Lambda != DefaultLambda || o.ResultsShown != 2 {
		t.Errorf("defaults = %+v", o)
	}
}

func BenchmarkQueryHit(b *testing.B) {
	f := newFixture(b, 100, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.cache.Query(q, url); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuggest(b *testing.B) {
	f := newFixture(b, 100, Options{})
	q, _ := f.pairStrings(f.u.NavPair(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.cache.Suggest(q)
	}
}

func TestAutocomplete(t *testing.T) {
	f := newFixture(t, 16, Options{})
	q, _ := f.pairStrings(f.u.NavPair(0)) // "site0"
	comps := f.cache.Autocomplete(q[:3], 10)
	if len(comps) == 0 {
		t.Fatal("prefix of a cached query should complete")
	}
	found := false
	for _, c := range comps {
		if c.Query == q {
			found = true
		}
	}
	if !found {
		t.Errorf("completions %v should include %q", comps, q)
	}
	if f.cache.Autocomplete("zzz", 10) != nil {
		t.Error("unknown prefix should complete to nothing")
	}
	// Completions are ranked: repeated clicks push a query up.
	url := f.u.ResultURL(f.u.ResultOf(f.u.NavPair(1)))
	q1 := f.u.QueryText(f.u.QueryOf(f.u.NavPair(1))) // "site0.com"
	for i := 0; i < 5; i++ {
		if _, err := f.cache.Query(q1, url); err != nil {
			t.Fatal(err)
		}
	}
	comps = f.cache.Autocomplete("site", 1)
	if len(comps) != 1 || comps[0].Query != q1 {
		t.Errorf("top completion = %v, want the heavily clicked %q", comps, q1)
	}
}

func TestAutocompleteLearnsFromMisses(t *testing.T) {
	f := newFixture(t, 4, Options{})
	q, url := f.pairStrings(f.u.NonNavPair(0))
	if got := f.cache.Autocomplete(q[:2], 5); len(got) != 0 {
		t.Fatalf("uncached query should not complete yet: %v", got)
	}
	if _, err := f.cache.Query(q, url); err != nil {
		t.Fatal(err)
	}
	if got := f.cache.Autocomplete(q[:2], 5); len(got) == 0 {
		t.Error("expanded query should now complete")
	}
}

func TestRemovePairPrunesCompletion(t *testing.T) {
	f := newFixture(t, 4, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))
	qh, rh := hash64.Sum(q), hash64.Sum(url)
	if !f.cache.RemovePair(qh, rh) {
		t.Fatal("RemovePair failed")
	}
	if f.cache.RemovePair(qh, rh) {
		t.Error("second remove should fail")
	}
	for _, c := range f.cache.Autocomplete(q[:3], 20) {
		if c.Query == q {
			t.Error("removed query should not complete")
		}
	}
}

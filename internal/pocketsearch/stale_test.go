package pocketsearch

import (
	"testing"

	"pocketcloudlets/internal/hash64"
)

func TestContainsQuery(t *testing.T) {
	f := newFixture(t, 10, Options{})
	q, _ := f.pairStrings(f.u.NavPair(0))
	if !f.cache.ContainsQuery(hash64.Sum(q)) {
		t.Error("preloaded query should be contained")
	}
	if f.cache.ContainsQuery(hash64.Sum("never seen")) {
		t.Error("unknown query should not be contained")
	}
}

// TestServeStale verifies the degraded-serve path: cached results are
// fetched and rendered, the interaction counts as a Stale query — not
// a hit — and no personalization leaks into the cache.
func TestServeStale(t *testing.T) {
	f := newFixture(t, 10, Options{})
	q, url := f.pairStrings(f.u.NavPair(0))

	out, ok := f.cache.ServeStale(q)
	if !ok {
		t.Fatal("cached query should serve stale")
	}
	if out.Hit {
		t.Error("a stale serve is not a hit")
	}
	if len(out.Results) == 0 {
		t.Fatal("stale serve should return cached results")
	}
	if out.Results[0].URL != url {
		t.Errorf("top stale result %q, want cached %q", out.Results[0].URL, url)
	}
	if out.Network != 0 || out.Radio.RadioActive != 0 {
		t.Error("stale serve must not touch the radio")
	}
	if out.Lookup != LookupCost || out.Render == 0 || out.Misc == 0 {
		t.Errorf("stale serve cost decomposition looks wrong: %+v", out)
	}
	if f.dev.Now() != out.ResponseTime() {
		t.Errorf("device clock advanced %v, want the outcome's %v", f.dev.Now(), out.ResponseTime())
	}

	st := f.cache.Stats()
	if st.Stale != 1 || st.Queries != 1 {
		t.Errorf("Stats = %+v, want 1 query, 1 stale", st)
	}
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stale serve must count neither hit nor miss, got %+v", st)
	}
}

// TestServeStaleUnknownQueryIsFree verifies the miss case: no cached
// results means no answer, no model cost, no counters.
func TestServeStaleUnknownQueryIsFree(t *testing.T) {
	f := newFixture(t, 10, Options{})
	out, ok := f.cache.ServeStale("never seen")
	if ok {
		t.Fatal("unknown query must not serve stale")
	}
	if out.ResponseTime() != 0 {
		t.Errorf("refused stale serve charged %v", out.ResponseTime())
	}
	if f.dev.Now() != 0 {
		t.Errorf("refused stale serve advanced the clock to %v", f.dev.Now())
	}
	if st := f.cache.Stats(); st.Queries != 0 || st.Stale != 0 {
		t.Errorf("refused stale serve bumped stats: %+v", st)
	}
}

package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/modeltime"
)

// problems accumulates validation failures so one Parse reports every
// problem in the spec, not just the first.
type problems struct {
	list []string
}

func (p *problems) addf(format string, args ...any) {
	p.list = append(p.list, fmt.Sprintf(format, args...))
}

// Parse decodes and validates a scenario spec. Decoding is strict —
// unknown fields and type mismatches are errors, reported with the
// JSON path they occur at — and the returned spec has defaults
// resolved. On failure the error is an *Error listing every problem.
func Parse(data []byte) (*Spec, error) {
	p := &problems{}
	s := parseSpec(p, data)
	if len(p.list) > 0 {
		return nil, &Error{Problems: p.list}
	}
	s.withDefaults()
	validateSpec(p, s)
	if len(p.list) > 0 {
		return nil, &Error{Problems: p.list}
	}
	return s, nil
}

// decodeInto unmarshals one leaf value, translating encoding/json's
// error into a positional problem.
func decodeInto(p *problems, path string, raw json.RawMessage, dst any) {
	if err := json.Unmarshal(raw, dst); err != nil {
		if te, ok := err.(*json.UnmarshalTypeError); ok {
			p.addf("%s: want %s, got JSON %s", path, te.Type, te.Value)
			return
		}
		p.addf("%s: %v", path, err)
	}
}

// decodeObject unmarshals one object level into its raw fields.
func decodeObject(p *problems, path string, raw json.RawMessage) (map[string]json.RawMessage, bool) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		p.addf("%s: want a JSON object", path)
		return nil, false
	}
	return m, true
}

// sortedKeys walks object fields in a stable order so problem lists
// are deterministic.
func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func parseSpec(p *problems, data []byte) *Spec {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		p.addf("spec is not a JSON object: %v", err)
		return nil
	}
	s := &Spec{}
	for _, key := range sortedKeys(raw) {
		v := raw[key]
		switch key {
		case "version":
			decodeInto(p, key, v, &s.Version)
		case "name":
			decodeInto(p, key, v, &s.Name)
		case "mode":
			decodeInto(p, key, v, &s.Mode)
		case "users":
			decodeInto(p, key, v, &s.Users)
		case "seed":
			decodeInto(p, key, v, &s.Seed)
		case "month":
			decodeInto(p, key, v, &s.Month)
		case "duration":
			decodeInto(p, key, v, &s.Duration)
		case "qps":
			decodeInto(p, key, v, &s.QPS)
		case "community_share":
			decodeInto(p, key, v, &s.CommunityShare)
		case "trace":
			decodeInto(p, key, v, &s.Trace)
		case "max_requests":
			decodeInto(p, key, v, &s.MaxRequests)
		case "fleet":
			parseFleet(p, key, v, &s.Fleet)
		case "faults":
			s.Faults = parseFaults(p, key, v)
		case "events":
			parseEvents(p, key, v, s)
		case "classes":
			parseClasses(p, key, v, s)
		default:
			p.addf("%s: unknown field", key)
		}
	}
	return s
}

func parseFleet(p *problems, path string, raw json.RawMessage, f *FleetSpec) {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return
	}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "shards":
			decodeInto(p, kp, v, &f.Shards)
		case "workers":
			decodeInto(p, kp, v, &f.Workers)
		case "queue":
			decodeInto(p, kp, v, &f.Queue)
		case "radio":
			decodeInto(p, kp, v, &f.Radio)
		case "placement":
			decodeInto(p, kp, v, &f.Placement)
		case "vnodes":
			decodeInto(p, kp, v, &f.VNodes)
		case "user_budget_bytes":
			decodeInto(p, kp, v, &f.UserBudgetBytes)
		case "fleet_budget_bytes":
			decodeInto(p, kp, v, &f.FleetBudgetBytes)
		case "replicas":
			decodeInto(p, kp, v, &f.Replicas)
		case "batch":
			parseBatch(p, kp, v, &f.Batch)
		case "backend":
			f.Backend = parseBackend(p, kp, v)
		case "autoscale":
			f.Autoscale = parseAutoscale(p, kp, v)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
}

func parseBackend(p *problems, path string, raw json.RawMessage) *BackendSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	b := &BackendSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "service_rate":
			decodeInto(p, kp, v, &b.ServiceRate)
		case "queue":
			decodeInto(p, kp, v, &b.Queue)
		case "discipline":
			decodeInto(p, kp, v, &b.Discipline)
		case "dist":
			decodeInto(p, kp, v, &b.Dist)
		case "offered":
			decodeInto(p, kp, v, &b.Offered)
		case "cancel_on_win":
			decodeInto(p, kp, v, &b.CancelOnWin)
		case "seed":
			decodeInto(p, kp, v, &b.Seed)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return b
}

func parseAutoscale(p *problems, path string, raw json.RawMessage) *AutoscaleSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	a := &AutoscaleSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "interval":
			decodeInto(p, kp, v, &a.Interval)
		case "min":
			decodeInto(p, kp, v, &a.Min)
		case "max":
			decodeInto(p, kp, v, &a.Max)
		case "high":
			decodeInto(p, kp, v, &a.High)
		case "low":
			decodeInto(p, kp, v, &a.Low)
		case "up_after":
			decodeInto(p, kp, v, &a.UpAfter)
		case "down_after":
			decodeInto(p, kp, v, &a.DownAfter)
		case "rate_per_shard":
			decodeInto(p, kp, v, &a.RatePerShard)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return a
}

func parseEvents(p *problems, path string, raw json.RawMessage, s *Spec) {
	var items []json.RawMessage
	if err := json.Unmarshal(raw, &items); err != nil {
		p.addf("%s: want a JSON array", path)
		return
	}
	for i, item := range items {
		s.Events = append(s.Events, parseEvent(p, fmt.Sprintf("%s[%d]", path, i), item))
	}
}

func parseEvent(p *problems, path string, raw json.RawMessage) EventSpec {
	var e EventSpec
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return e
	}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "at":
			decodeInto(p, kp, v, &e.At)
		case "resize":
			decodeInto(p, kp, v, &e.Resize)
		case "drop":
			decodeInto(p, kp, v, &e.Drop)
		case "outage":
			decodeInto(p, kp, v, &e.Outage)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return e
}

func parseBatch(p *problems, path string, raw json.RawMessage, b *BatchSpec) {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return
	}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "enabled":
			decodeInto(p, kp, v, &b.Enabled)
		case "max":
			decodeInto(p, kp, v, &b.Max)
		case "linger":
			decodeInto(p, kp, v, &b.Linger)
		case "fleet_wide":
			decodeInto(p, kp, v, &b.FleetWide)
		case "adaptive":
			decodeInto(p, kp, v, &b.Adaptive)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
}

func parseFaults(p *problems, path string, raw json.RawMessage) *FaultSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	f := &FaultSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "loss":
			decodeInto(p, kp, v, &f.Loss)
		case "engine_err":
			decodeInto(p, kp, v, &f.EngineErr)
		case "outage":
			decodeInto(p, kp, v, &f.Outage)
		case "retries":
			decodeInto(p, kp, v, &f.Retries)
		case "seed":
			decodeInto(p, kp, v, &f.Seed)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return f
}

func parseClasses(p *problems, path string, raw json.RawMessage, s *Spec) {
	var items []json.RawMessage
	if err := json.Unmarshal(raw, &items); err != nil {
		p.addf("%s: want a JSON array", path)
		return
	}
	for i, item := range items {
		s.Classes = append(s.Classes, parseClass(p, fmt.Sprintf("%s[%d]", path, i), item))
	}
}

func parseClass(p *problems, path string, raw json.RawMessage) ClassSpec {
	var c ClassSpec
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return c
	}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "name":
			decodeInto(p, kp, v, &c.Name)
		case "share":
			decodeInto(p, kp, v, &c.Share)
		case "slo_class":
			decodeInto(p, kp, v, &c.SLOClass)
		case "device":
			decodeInto(p, kp, v, &c.Device)
		case "arrival":
			c.Arrival = parseArrival(p, kp, v)
		case "think":
			c.Think = parseThink(p, kp, v)
		case "max_queries_per_user":
			decodeInto(p, kp, v, &c.MaxQueriesPerUser)
		case "faults":
			c.Faults = parseFaults(p, kp, v)
		case "hedge":
			c.Hedge = parseHedge(p, kp, v)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return c
}

func parseHedge(p *problems, path string, raw json.RawMessage) *HedgeSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	h := &HedgeSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "clone_factor":
			decodeInto(p, kp, v, &h.CloneFactor)
		case "delay":
			decodeInto(p, kp, v, &h.Delay)
		case "max_inflight":
			decodeInto(p, kp, v, &h.MaxInflight)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return h
}

func parseArrival(p *problems, path string, raw json.RawMessage) *ArrivalSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	a := &ArrivalSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "process":
			decodeInto(p, kp, v, &a.Process)
		case "rate_fraction":
			decodeInto(p, kp, v, &a.RateFraction)
		case "peak_trough":
			decodeInto(p, kp, v, &a.PeakTrough)
		case "period":
			decodeInto(p, kp, v, &a.Period)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return a
}

func parseThink(p *problems, path string, raw json.RawMessage) *ThinkSpec {
	m, ok := decodeObject(p, path, raw)
	if !ok {
		return nil
	}
	t := &ThinkSpec{}
	for _, key := range sortedKeys(m) {
		v, kp := m[key], path+"."+key
		switch key {
		case "scale":
			decodeInto(p, kp, v, &t.Scale)
		case "max_pause":
			decodeInto(p, kp, v, &t.MaxPause)
		default:
			p.addf("%s: unknown field", kp)
		}
	}
	return t
}

// validRadios are the radio tiers the facade knows how to price.
var validRadios = map[string]bool{"3g": true, "edge": true, "wifi": true}

// validateSpec runs the semantic checks on a structurally sound spec
// with defaults already resolved.
func validateSpec(p *problems, s *Spec) {
	if s.Version != Version {
		p.addf("version: want %d, got %d", Version, s.Version)
	}
	switch s.Mode {
	case "open", "closed", "trace":
	default:
		p.addf("mode: want \"open\", \"closed\" or \"trace\", got %q", s.Mode)
		return
	}
	if s.Users <= 0 {
		p.addf("users: must be positive, got %d", s.Users)
	}
	if s.Month < 1 {
		p.addf("month: must be ≥ 1, got %d", s.Month)
	}
	if s.Duration < 0 {
		p.addf("duration: must be non-negative, got %v", s.Duration.D())
	}
	if s.Mode == "open" && s.Duration <= 0 {
		p.addf("duration: open mode needs a positive duration")
	}
	if s.Mode == "open" && s.QPS <= 0 {
		p.addf("qps: open mode needs a positive rate, got %g", s.QPS)
	}
	if s.Mode != "open" && s.QPS != 0 {
		p.addf("qps: only open mode schedules arrivals")
	}
	if s.CommunityShare <= 0 || s.CommunityShare > 1 {
		p.addf("community_share: must be in (0, 1], got %g", s.CommunityShare)
	}
	if s.MaxRequests < 0 {
		p.addf("max_requests: must be non-negative, got %d", s.MaxRequests)
	}
	if s.Mode == "trace" && s.Trace == "" {
		p.addf("trace: trace mode needs a trace file path")
	}
	if s.Mode != "trace" && s.Trace != "" {
		p.addf("trace: only trace mode replays a trace file")
	}
	validateFleet(p, &s.Fleet)
	if s.Fleet.Autoscale != nil {
		validateAutoscale(p, s.Fleet.Autoscale, s)
	}
	validateEvents(p, s)
	if s.Faults != nil {
		validateFaults(p, "faults", s.Faults)
	}
	if s.Fleet.Backend != nil && s.Faults == nil && !anyClassFaults(s) {
		p.addf("fleet.backend: needs a fault profile (fleet-wide \"faults\" or a class override) — the admission planner runs on the faulted miss path")
	}
	validateClasses(p, s)
}

func validateFleet(p *problems, f *FleetSpec) {
	for _, n := range []struct {
		name string
		v    int64
	}{
		{"fleet.shards", int64(f.Shards)},
		{"fleet.workers", int64(f.Workers)},
		{"fleet.queue", int64(f.Queue)},
		{"fleet.vnodes", int64(f.VNodes)},
		{"fleet.user_budget_bytes", f.UserBudgetBytes},
		{"fleet.fleet_budget_bytes", f.FleetBudgetBytes},
		{"fleet.replicas", int64(f.Replicas)},
		{"fleet.batch.max", int64(f.Batch.Max)},
		{"fleet.batch.linger", int64(f.Batch.Linger)},
	} {
		if n.v < 0 {
			p.addf("%s: must be non-negative, got %d", n.name, n.v)
		}
	}
	if !validRadios[f.Radio] {
		p.addf("fleet.radio: want \"3g\", \"edge\" or \"wifi\", got %q", f.Radio)
	}
	switch f.Placement {
	case "modulo", "ring":
	default:
		p.addf("fleet.placement: want \"modulo\" or \"ring\", got %q", f.Placement)
	}
	if f.VNodes > 0 && f.Placement != "ring" {
		p.addf("fleet.vnodes: only the ring placement uses virtual nodes")
	}
	if !f.Batch.Enabled && (f.Batch.Max > 0 || f.Batch.Linger > 0 || f.Batch.FleetWide || f.Batch.Adaptive) {
		p.addf("fleet.batch: knobs set but batch.enabled is false")
	}
	if f.Backend != nil {
		validateBackend(p, f.Backend)
	}
}

func validateBackend(p *problems, b *BackendSpec) {
	if b.ServiceRate <= 0 {
		p.addf("fleet.backend.service_rate: must be positive (or \"inf\"), got %g", float64(b.ServiceRate))
	}
	if b.Queue < 0 {
		p.addf("fleet.backend.queue: must be non-negative, got %d", b.Queue)
	}
	if _, err := backend.ParseDiscipline(b.Discipline); err != nil {
		p.addf("fleet.backend.discipline: want \"fifo\" or \"ps\", got %q", b.Discipline)
	}
	if _, err := backend.ParseDist(b.Dist); err != nil {
		p.addf("fleet.backend.dist: want \"exp\" or \"fixed\", got %q", b.Dist)
	}
	if b.Offered < 0 || math.IsInf(b.Offered, 1) {
		p.addf("fleet.backend.offered: must be a non-negative finite rate, got %g", b.Offered)
	}
}

// validateAutoscale vets the raw (pre-WithDefaults) autoscale block;
// the controller's own WithDefaults/Validate run again at lowering
// with the real initial shard count, so here only explicitly-set
// fields are judged.
func validateAutoscale(p *problems, a *AutoscaleSpec, s *Spec) {
	if s.Mode != "open" {
		p.addf("fleet.autoscale: only open mode drives the autoscaler (mode is %q)", s.Mode)
	}
	if s.Fleet.Placement != "ring" {
		p.addf("fleet.autoscale: resizing needs the ring placement, got %q", s.Fleet.Placement)
	}
	if a.Interval < 0 {
		p.addf("fleet.autoscale.interval: must be non-negative, got %v", a.Interval.D())
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"min", a.Min}, {"max", a.Max}, {"up_after", a.UpAfter}, {"down_after", a.DownAfter},
	} {
		if n.v < 0 {
			p.addf("fleet.autoscale.%s: must be non-negative, got %d", n.name, n.v)
		}
	}
	if a.Min > 0 && a.Max > 0 && a.Min > a.Max {
		p.addf("fleet.autoscale: min %d > max %d", a.Min, a.Max)
	}
	if a.High < 0 || a.High > 1 {
		p.addf("fleet.autoscale.high: must be in [0, 1], got %g", a.High)
	}
	if a.Low < 0 {
		p.addf("fleet.autoscale.low: must be non-negative, got %g", a.Low)
	}
	if a.High > 0 && a.Low > 0 && a.Low >= a.High {
		p.addf("fleet.autoscale: low watermark %g must be below high %g", a.Low, a.High)
	}
	if a.RatePerShard < 0 {
		p.addf("fleet.autoscale.rate_per_shard: must be non-negative, got %g", a.RatePerShard)
	}
}

func validateEvents(p *problems, s *Spec) {
	if len(s.Events) == 0 {
		return
	}
	if s.Mode != "open" {
		p.addf("events: only open mode replays a timeline (mode is %q)", s.Mode)
	}
	hasResize := false
	for i, e := range s.Events {
		path := fmt.Sprintf("events[%d]", i)
		if e.At < 0 {
			p.addf("%s.at: must be non-negative, got %v", path, e.At.D())
		}
		if i > 0 && e.At < s.Events[i-1].At {
			p.addf("%s.at: events must be sorted by offset (%v after %v)",
				path, e.At.D(), s.Events[i-1].At.D())
		}
		if e.Resize < 0 {
			p.addf("%s.resize: must be non-negative, got %d", path, e.Resize)
		}
		if e.Outage < 0 {
			p.addf("%s.outage: must be non-negative, got %v", path, e.Outage.D())
		}
		switch {
		case e.Resize > 0 && e.Outage > 0:
			p.addf("%s: pick one of resize or outage per event", path)
		case e.Resize > 0:
			hasResize = true
		case e.Outage > 0:
			if e.Drop {
				p.addf("%s.drop: only resize events move state", path)
			}
		default:
			p.addf("%s: needs a positive resize target or outage length", path)
		}
	}
	if hasResize && s.Fleet.Placement != "ring" {
		p.addf("events: resize events need the ring placement, got %q", s.Fleet.Placement)
	}
}

func validateFaults(p *problems, path string, f *FaultSpec) {
	if f.Loss < 0 || f.Loss >= 1 {
		p.addf("%s.loss: must be in [0, 1), got %g", path, f.Loss)
	}
	if f.EngineErr < 0 || f.EngineErr >= 1 {
		p.addf("%s.engine_err: must be in [0, 1), got %g", path, f.EngineErr)
	}
	if f.Outage != "" {
		if _, _, _, err := faults.ParseOutageSpec(f.Outage); err != nil {
			p.addf("%s.outage: %v", path, err)
		}
	}
	if f.Retries < 0 {
		p.addf("%s.retries: must be non-negative, got %d", path, f.Retries)
	}
}

func validateClasses(p *problems, s *Spec) {
	if len(s.Classes) == 0 {
		return
	}
	seen := map[string]int{}
	var shareSum, rateSum float64
	for i, c := range s.Classes {
		path := fmt.Sprintf("classes[%d]", i)
		if c.Name == "" {
			p.addf("%s.name: required", path)
		} else if prev, dup := seen[c.Name]; dup {
			p.addf("%s.name: duplicates classes[%d].name %q", path, prev, c.Name)
		} else {
			seen[c.Name] = i
		}
		if c.Share <= 0 || c.Share > 1 {
			p.addf("%s.share: must be in (0, 1], got %g", path, c.Share)
		}
		shareSum += c.Share
		if c.Device != "" && !validRadios[c.Device] {
			p.addf("%s.device: want \"3g\", \"edge\" or \"wifi\", got %q", path, c.Device)
		}
		if c.Device != "" && c.Device != s.Fleet.Radio && s.Fleet.Batch.Enabled {
			p.addf("%s.device: per-class radios do not compose with batching (shared sessions are priced on the fleet radio)", path)
		}
		if c.MaxQueriesPerUser < 0 {
			p.addf("%s.max_queries_per_user: must be non-negative, got %d", path, c.MaxQueriesPerUser)
		}
		if s.Mode != "closed" && (c.Think != nil || c.MaxQueriesPerUser > 0) {
			p.addf("%s: think pacing and per-user caps only apply in closed mode", path)
		}
		if s.Mode != "open" && c.Arrival != nil {
			p.addf("%s.arrival: only open mode schedules arrivals", path)
		}
		if s.Mode == "open" {
			rateSum += c.effectiveRateFraction()
		}
		if c.Arrival != nil {
			validateArrival(p, path+".arrival", c.Arrival)
		}
		if c.Think != nil {
			if c.Think.Scale < 0 {
				p.addf("%s.think.scale: must be non-negative, got %g", path, c.Think.Scale)
			}
			if c.Think.MaxPause < 0 {
				p.addf("%s.think.max_pause: must be non-negative, got %v", path, c.Think.MaxPause.D())
			}
		}
		if c.Faults != nil {
			validateFaults(p, path+".faults", c.Faults)
		}
		if c.Hedge != nil {
			validateHedge(p, path+".hedge", c.Hedge, s)
		}
	}
	if math.Abs(shareSum-1) > 1e-6 {
		p.addf("classes: shares sum to %g, want 1", shareSum)
	}
	if s.Mode == "open" && math.Abs(rateSum-1) > 1e-6 {
		p.addf("classes: arrival rate_fractions sum to %g, want 1", rateSum)
	}
}

func validateHedge(p *problems, path string, h *HedgeSpec, s *Spec) {
	if h.CloneFactor < 1 {
		p.addf("%s.clone_factor: must be ≥ 1, got %d", path, h.CloneFactor)
	}
	if h.Delay < 0 {
		p.addf("%s.delay: must be non-negative, got %v", path, h.Delay.D())
	}
	if h.MaxInflight < 0 {
		p.addf("%s.max_inflight: must be non-negative, got %d", path, h.MaxInflight)
	}
	if h.MaxInflight > h.CloneFactor {
		p.addf("%s.max_inflight: exceeds clone_factor %d", path, h.CloneFactor)
	}
	if h.CloneFactor >= 2 && s.Fleet.Replicas < 2 {
		p.addf("%s: clone_factor %d needs fleet.replicas ≥ 2, got %d", path, h.CloneFactor, s.Fleet.Replicas)
	}
}

// anyClassFaults reports whether any class carries its own fault
// profile (an empty override still enables the injector for the class).
func anyClassFaults(s *Spec) bool {
	for _, c := range s.Classes {
		if c.Faults != nil {
			return true
		}
	}
	return false
}

// effectiveRateFraction is the class's share of the scenario QPS: the
// explicit rate_fraction, or the user share when no arrival is given.
func (c *ClassSpec) effectiveRateFraction() float64 {
	if c.Arrival != nil && c.Arrival.RateFraction > 0 {
		return c.Arrival.RateFraction
	}
	return c.Share
}

func validateArrival(p *problems, path string, a *ArrivalSpec) {
	kind, err := modeltime.ParseKind(a.Process)
	if err != nil {
		p.addf("%s.process: unknown arrival process %q (want \"flat\", \"diurnal\" or \"peruser\")", path, a.Process)
		return
	}
	if a.RateFraction < 0 || a.RateFraction > 1 {
		p.addf("%s.rate_fraction: must be in [0, 1], got %g", path, a.RateFraction)
	}
	if kind != modeltime.Diurnal {
		if a.PeakTrough != 0 {
			p.addf("%s.peak_trough: only the diurnal process has a peak/trough ratio", path)
		}
		if a.Period != 0 {
			p.addf("%s.period: only the diurnal process has a period", path)
		}
		return
	}
	if a.PeakTrough != 0 && a.PeakTrough < 1 {
		p.addf("%s.peak_trough: must be ≥ 1, got %g", path, a.PeakTrough)
	}
	if a.Period < 0 {
		p.addf("%s.period: must be non-negative, got %v", path, a.Period.D())
	}
}

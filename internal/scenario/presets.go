package scenario

import "sort"

// presets are the built-in scenarios, stored as the same JSON a user
// would write in a file: the preset text doubles as documentation, and
// the copies under examples/scenarios/ are tested to stay identical.
var presets = map[string]string{
	// commuter: one class of 3G users riding in and out of coverage —
	// short outages every few seconds with per-attempt loss on top. The
	// closed loop paces on modeled response time, so faulted retries
	// slow the commuters down like they would a real phone.
	"commuter": presetCommuter,
	// flash-crowd: a steady background population plus a crowd class
	// whose diurnal curve spikes to 12x its trough inside the run —
	// the overload story. Queue depth is deliberately modest so the
	// crowd's peak sheds.
	"flash-crowd": presetFlashCrowd,
	// regional-outage: a third of the fleet loses its uplink on a duty
	// cycle while the rest ride clean links — the degraded-service
	// story, with per-class fault isolation doing the work.
	"regional-outage": presetRegionalOutage,
	// mixed-fleet: three device tiers (WiFi interactive, 3G commuters
	// with faults, EDGE background) with different arrival processes —
	// the per-SLO-class breakdown story.
	"mixed-fleet": presetMixedFleet,
	// clone-storm: a lossy fleet hedging every miss across three cloud
	// replicas whose queues are modeled for real — the request-cloning
	// congestion-knee story. The clones cut the tail while the replicas
	// have headroom and feed the queues that create it once they don't;
	// cancel_on_win is what keeps the storm survivable.
	"clone-storm": presetCloneStorm,
	// green-day: one diurnal class riding a full simulated day against
	// a ring-placed fleet with the occupancy autoscaler on — the
	// energy-proportionality story. The fleet grows toward the peak
	// and collapses into the trough, so joules per answered query
	// beat a statically peak-sized topology.
	"green-day": presetGreenDay,
}

const presetCommuter = `{
  "version": 1,
  "name": "commuter",
  "mode": "closed",
  "users": 600,
  "seed": 1,
  "duration": "0s",
  "faults": {"loss": 0.05, "outage": "2s/10s", "retries": 4},
  "classes": [
    {
      "name": "commuter",
      "share": 1,
      "slo_class": "commuter",
      "device": "3g",
      "think": {"scale": 0.05},
      "max_queries_per_user": 40
    }
  ]
}
`

const presetFlashCrowd = `{
  "version": 1,
  "name": "flash-crowd",
  "mode": "open",
  "users": 1200,
  "seed": 1,
  "qps": 2400,
  "duration": "3s",
  "fleet": {"queue": 256},
  "classes": [
    {
      "name": "steady",
      "share": 0.75,
      "slo_class": "steady",
      "arrival": {"process": "flat", "rate_fraction": 0.35}
    },
    {
      "name": "crowd",
      "share": 0.25,
      "slo_class": "crowd",
      "arrival": {"process": "diurnal", "rate_fraction": 0.65, "peak_trough": 12, "period": "3s"}
    }
  ]
}
`

const presetRegionalOutage = `{
  "version": 1,
  "name": "regional-outage",
  "mode": "open",
  "users": 1000,
  "seed": 1,
  "qps": 1500,
  "duration": "3s",
  "classes": [
    {
      "name": "affected",
      "share": 0.3,
      "slo_class": "affected",
      "arrival": {"process": "flat"},
      "faults": {"loss": 0.25, "outage": "600ms/1500ms", "retries": 3}
    },
    {
      "name": "unaffected",
      "share": 0.7,
      "slo_class": "unaffected",
      "arrival": {"process": "flat"}
    }
  ]
}
`

const presetMixedFleet = `{
  "version": 1,
  "name": "mixed-fleet",
  "mode": "open",
  "users": 1500,
  "seed": 1,
  "qps": 1800,
  "duration": "4s",
  "classes": [
    {
      "name": "interactive",
      "share": 0.4,
      "slo_class": "interactive",
      "device": "wifi",
      "arrival": {"process": "diurnal", "rate_fraction": 0.5, "peak_trough": 6}
    },
    {
      "name": "commuter-3g",
      "share": 0.35,
      "slo_class": "commuter",
      "device": "3g",
      "arrival": {"process": "diurnal", "rate_fraction": 0.3, "peak_trough": 3},
      "faults": {"loss": 0.1, "outage": "500ms/2500ms", "retries": 4}
    },
    {
      "name": "background",
      "share": 0.25,
      "slo_class": "background",
      "device": "edge",
      "arrival": {"process": "peruser", "rate_fraction": 0.2}
    }
  ]
}
`

const presetCloneStorm = `{
  "version": 1,
  "name": "clone-storm",
  "mode": "open",
  "users": 1000,
  "seed": 1,
  "qps": 1500,
  "duration": "3s",
  "fleet": {
    "replicas": 3,
    "backend": {"service_rate": 40, "queue": 32, "discipline": "ps", "offered": 25, "cancel_on_win": true}
  },
  "faults": {"loss": 0.15, "engine_err": 0.05, "retries": 4},
  "classes": [
    {
      "name": "stormers",
      "share": 1,
      "slo_class": "interactive",
      "arrival": {"process": "flat"},
      "hedge": {"clone_factor": 2, "delay": "30ms"}
    }
  ]
}
`

const presetGreenDay = `{
  "version": 1,
  "name": "green-day",
  "mode": "open",
  "users": 1200,
  "seed": 1,
  "qps": 2000,
  "duration": "8s",
  "fleet": {
    "shards": 8,
    "placement": "ring",
    "autoscale": {"interval": "250ms", "min": 2, "max": 20, "rate_per_shard": 300}
  },
  "classes": [
    {
      "name": "day",
      "share": 1,
      "slo_class": "diurnal",
      "arrival": {"process": "diurnal", "peak_trough": 6}
    }
  ]
}
`

// Preset returns the JSON text of a built-in scenario.
func Preset(name string) (string, bool) {
	raw, ok := presets[name]
	return raw, ok
}

// PresetNames lists the built-in scenarios, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/loadgen"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// smallGen builds a scaled-down ecosystem; the corpus mirrors the
// loadgen test fixture so runs stay fast under -race.
func smallGen(t testing.TB, users int, seed int64) *workload.Generator {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:    8000,
		NonNavPairs: 40000,
		NonNavSegments: []engine.Segment{
			{Queries: 50, ResultsPerQuery: 6},
			{Queries: 200, ResultsPerQuery: 3},
			{Queries: 2000, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(u, users, seed)
	cfg.FavNavRanks = 2000
	cfg.FavNonNavRanks = 6000
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallContent(t testing.TB, g *workload.Generator) cachegen.Content {
	t.Helper()
	tbl := searchlog.ExtractTriplets(g.MonthLog(0).Entries)
	n, err := cachegen.SelectByShare(tbl, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	return cachegen.Generate(tbl, g.Config().Universe, n)
}

// rig builds a fresh fleet from the compiled scenario's own fleet
// config, with a collector installed.
func rig(t testing.TB, comp *Compiled, g *workload.Generator, content cachegen.Content) (*fleet.Fleet, *loadgen.Collector) {
	t.Helper()
	col := loadgen.NewCollector()
	cfg, err := comp.FleetConfig(col)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = engine.New(g.Config().Universe)
	cfg.Content = content
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, col
}

func TestPresetsParseAndCompile(t *testing.T) {
	names := PresetNames()
	want := []string{"clone-storm", "commuter", "flash-crowd", "green-day", "mixed-fleet", "regional-outage"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("preset names = %v, want %v", names, want)
	}
	for _, name := range names {
		spec, source, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if source != name || spec.Name != name {
			t.Errorf("Load(%s): source %q, spec name %q", name, source, spec.Name)
		}
		comp, err := Compile(spec, source)
		if err != nil {
			t.Fatalf("Compile(%s): %v", name, err)
		}
		// Every user must belong to exactly one class range.
		covered := 0
		for _, r := range comp.Ranges {
			covered += r.Hi - r.Lo
		}
		if len(comp.Ranges) > 0 && covered != spec.Users {
			t.Errorf("%s: ranges cover %d of %d users", name, covered, spec.Users)
		}
	}
}

// TestExampleFilesMatchPresets pins the example files under
// examples/scenarios/ to the built-in preset text, so docs and code
// cannot drift apart.
func TestExampleFilesMatchPresets(t *testing.T) {
	for _, name := range PresetNames() {
		raw, _ := Preset(name)
		path := filepath.Join("..", "..", "examples", "scenarios", name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if string(data) != raw {
			t.Errorf("%s differs from the built-in preset; regenerate it from scenario.Preset(%q)", path, name)
		}
	}
}

// TestValidationGoldens pins the validator's positional error text.
func TestValidationGoldens(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata specs: %v", err)
	}
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			_, perr := Parse(data)
			if perr == nil {
				t.Fatalf("Parse(%s) unexpectedly succeeded", path)
			}
			golden, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			want := strings.TrimRight(string(golden), "\n")
			if got := perr.Error(); got != want {
				t.Errorf("error text drifted\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

func TestApportion(t *testing.T) {
	classes := []ClassSpec{
		{Name: "a", Share: 0.5, SLOClass: "a"},
		{Name: "b", Share: 0.3, SLOClass: "b"},
		{Name: "c", Share: 0.2, SLOClass: "c"},
	}
	ranges, err := apportion(10, classes)
	if err != nil {
		t.Fatal(err)
	}
	want := []ClassRange{
		{Name: "a", SLO: "a", Lo: 0, Hi: 5},
		{Name: "b", SLO: "b", Lo: 5, Hi: 8},
		{Name: "c", SLO: "c", Lo: 8, Hi: 10},
	}
	if !reflect.DeepEqual(ranges, want) {
		t.Errorf("apportion = %+v, want %+v", ranges, want)
	}
	if _, err := apportion(2, classes); err == nil {
		t.Error("a class rounding to zero users should fail")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := []loadgen.TraceEvent{
		{At: 0, User: 3, Class: "fg", Query: "q one", Click: "http://a"},
		{At: 1500 * time.Microsecond, User: 0, Class: "", Query: "q two", Click: ""},
		{At: 2 * time.Millisecond, User: 7, Class: "bg", Query: "q three", Click: "http://b"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, events)
	}

	if err := WriteTrace(&bytes.Buffer{}, []loadgen.TraceEvent{{Query: "a\tb"}}); err == nil {
		t.Error("tab in a field should fail")
	}
	if _, err := ReadTrace(strings.NewReader("nonsense\n")); err == nil {
		t.Error("missing header should fail")
	}
	if _, err := ReadTrace(strings.NewReader(TraceHeader + "\n5\t0\t\tq\t\n1\t0\t\tq\t\n")); err == nil {
		t.Error("out-of-order events should fail")
	}
	if _, err := ReadTrace(strings.NewReader(TraceHeader + "\n")); err == nil {
		t.Error("eventless trace should fail")
	}
}

// closedSpec is a small multi-class closed scenario exercising device
// cohorts, per-class faults and per-class pacing.
func closedSpec() *Spec {
	return &Spec{
		Version: 1,
		Mode:    "closed",
		Users:   40,
		Seed:    11,
		Fleet:   FleetSpec{Shards: 4, Workers: 2, Queue: 2048},
		Classes: []ClassSpec{
			{Name: "fg", Share: 0.5, SLOClass: "interactive", Device: "wifi",
				Think: &ThinkSpec{Scale: 0.01}, MaxQueriesPerUser: 25},
			{Name: "bg", Share: 0.5, Device: "edge", MaxQueriesPerUser: 25,
				Faults: &FaultSpec{Loss: 0.2, Outage: "50ms/200ms", Retries: 3}},
		},
	}
}

// openSpec is a small multi-class open scenario.
func openSpec() *Spec {
	return &Spec{
		Version:  1,
		Mode:     "open",
		Users:    48,
		Seed:     11,
		QPS:      400,
		Duration: Duration(300 * time.Millisecond),
		Fleet:    FleetSpec{Shards: 4, Workers: 2, Queue: 4096},
		Classes: []ClassSpec{
			{Name: "fg", Share: 0.5, SLOClass: "interactive", Device: "wifi",
				Arrival: &ArrivalSpec{Process: "diurnal", RateFraction: 0.6, PeakTrough: 6}},
			{Name: "bg", Share: 0.5, Device: "edge",
				Arrival: &ArrivalSpec{Process: "flat", RateFraction: 0.4},
				Faults:  &FaultSpec{Loss: 0.2, Outage: "60ms/200ms", Retries: 3}},
		},
	}
}

// TestScenarioRunDeterministic runs the same closed scenario twice on
// freshly built fleets: per-user outcomes must be byte-identical.
func TestScenarioRunDeterministic(t *testing.T) {
	var counts [][]fleet.UserServeCount
	var reports []loadgen.Report
	for i := 0; i < 2; i++ {
		comp, err := Compile(closedSpec(), "test")
		if err != nil {
			t.Fatal(err)
		}
		g := smallGen(t, comp.Spec.Users, comp.Spec.Seed)
		f, col := rig(t, comp, g, smallContent(t, g))
		r, err := comp.Run(f, col, g)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, f.UserServeCounts())
		reports = append(reports, r)
	}
	if reports[0].Shed != 0 {
		t.Fatalf("closed run shed %d requests; the determinism check needs a shed-free run", reports[0].Shed)
	}
	if !reflect.DeepEqual(counts[0], counts[1]) {
		t.Error("per-user outcomes differ between identical scenario runs")
	}
	if reports[0].Requests != reports[1].Requests || reports[0].PersonalHits != reports[1].PersonalHits {
		t.Errorf("aggregate counters differ: %d/%d vs %d/%d requests/hits",
			reports[0].Requests, reports[0].PersonalHits, reports[1].Requests, reports[1].PersonalHits)
	}
}

// TestTraceReplayDeterministic materializes an open scenario into a
// trace file, replays the recorded trace twice on fresh fleets, and
// checks both replays (and the live open run of the same schedule)
// agree on every per-user outcome.
func TestTraceReplayDeterministic(t *testing.T) {
	comp, err := Compile(openSpec(), "test")
	if err != nil {
		t.Fatal(err)
	}
	g := smallGen(t, comp.Spec.Users, comp.Spec.Seed)
	content := smallContent(t, g)

	events, err := comp.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := WriteTraceFile(path, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatal("trace file does not round-trip the materialized schedule")
	}

	// Live open run of the same schedule.
	liveF, liveCol := rig(t, comp, g, content)
	liveReport, err := comp.Run(liveF, liveCol, g)
	if err != nil {
		t.Fatal(err)
	}
	if liveReport.Shed != 0 {
		t.Fatalf("open run shed %d requests; the determinism check needs a shed-free run", liveReport.Shed)
	}
	live := liveF.UserServeCounts()

	// The recorded trace replayed twice, via the spec's trace mode.
	var replays [][]fleet.UserServeCount
	for i := 0; i < 2; i++ {
		tspec := &Spec{
			Version: 1, Mode: "trace", Users: comp.Spec.Users, Seed: comp.Spec.Seed,
			Trace: path, Fleet: comp.Spec.Fleet, Classes: comp.Spec.Classes,
		}
		// Trace mode carries no arrival specs — the trace is the schedule.
		for ci := range tspec.Classes {
			tspec.Classes[ci].Arrival = nil
		}
		tcomp, err := Compile(tspec, "test-trace")
		if err != nil {
			t.Fatal(err)
		}
		f, col := rig(t, tcomp, g, content)
		if _, err := tcomp.Run(f, col, g); err != nil {
			t.Fatal(err)
		}
		replays = append(replays, f.UserServeCounts())
	}
	if !reflect.DeepEqual(replays[0], replays[1]) {
		t.Error("per-user outcomes differ between identical trace replays")
	}
	if !reflect.DeepEqual(live, replays[0]) {
		t.Error("trace replay diverges from the live open run of the same schedule")
	}
}

// TestSingleClassMatchesLegacy checks the scenario compiler's
// flag-funnel contract: a single-class scenario produces byte-identical
// per-user outcomes to the legacy untagged config it replaces.
func TestSingleClassMatchesLegacy(t *testing.T) {
	const users, seed = 32, 9
	spec := &Spec{
		Version: 1, Mode: "open", Users: users, Seed: seed,
		QPS: 300, Duration: Duration(250 * time.Millisecond),
		Fleet: FleetSpec{Shards: 4, Workers: 2, Queue: 4096},
		Classes: []ClassSpec{
			{Name: "default", Share: 1, Arrival: &ArrivalSpec{Process: "flat"}},
		},
	}
	comp, err := Compile(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	g := smallGen(t, users, seed)
	content := smallContent(t, g)

	sf, scol := rig(t, comp, g, content)
	sreport, err := comp.Run(sf, scol, g)
	if err != nil {
		t.Fatal(err)
	}

	// The legacy path: same fleet shape, hand-built untagged config.
	lcol := loadgen.NewCollector()
	lcfg, err := comp.FleetConfig(lcol)
	if err != nil {
		t.Fatal(err)
	}
	lcfg.Engine = engine.New(g.Config().Universe)
	lcfg.Content = content
	lf, err := fleet.New(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lreport, err := loadgen.RunOpen(lf, lcol, g, loadgen.OpenConfig{
		QPS: 300, Duration: 250 * time.Millisecond, Month: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	if sreport.Shed != 0 || lreport.Shed != 0 {
		t.Fatalf("shed %d/%d requests; the identity check needs shed-free runs", sreport.Shed, lreport.Shed)
	}
	if !reflect.DeepEqual(sf.UserServeCounts(), lf.UserServeCounts()) {
		t.Error("single-class scenario diverges from the legacy untagged run")
	}
	if len(sreport.Classes) != 1 || sreport.Classes[0].Class != "default" {
		t.Errorf("single-class scenario report classes = %+v, want one \"default\" row", sreport.Classes)
	}
	if len(lreport.Classes) != 0 {
		t.Errorf("legacy untagged run unexpectedly has class rows: %+v", lreport.Classes)
	}
}

// TestMultiClassReport checks that the per-SLO-class breakdown covers
// every request and carries per-class energy.
func TestMultiClassReport(t *testing.T) {
	comp, err := Compile(openSpec(), "test")
	if err != nil {
		t.Fatal(err)
	}
	g := smallGen(t, comp.Spec.Users, comp.Spec.Seed)
	f, col := rig(t, comp, g, smallContent(t, g))
	r, err := comp.Run(f, col, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 2 {
		t.Fatalf("report has %d class rows, want 2: %+v", len(r.Classes), r.Classes)
	}
	names := []string{r.Classes[0].Class, r.Classes[1].Class}
	if !reflect.DeepEqual(names, []string{"bg", "interactive"}) {
		t.Errorf("class rows = %v, want [bg interactive] (sorted)", names)
	}
	var served, shed, canceled, requests uint64
	for _, cr := range r.Classes {
		served += cr.Served
		shed += cr.Shed
		canceled += cr.Canceled
		requests += cr.Requests
		if cr.Served > 0 && cr.EnergyJ <= 0 {
			t.Errorf("class %s served %d requests but reports %g J", cr.Class, cr.Served, cr.EnergyJ)
		}
		if cr.Served > 0 && cr.Model.P99NS <= 0 {
			t.Errorf("class %s served %d requests but has no model p99", cr.Class, cr.Served)
		}
	}
	if served != r.Served || shed != r.Shed || canceled != r.Canceled || requests != r.Requests {
		t.Errorf("class rows sum to %d/%d/%d/%d served/shed/canceled/requests, report says %d/%d/%d/%d",
			served, shed, canceled, requests, r.Served, r.Shed, r.Canceled, r.Requests)
	}
	// The faulted bg class must see degraded or retried service the
	// clean interactive class never does.
	var bg, fg loadgen.ClassReport
	for _, cr := range r.Classes {
		if cr.Class == "bg" {
			bg = cr
		} else {
			fg = cr
		}
	}
	if fg.Degraded != 0 || fg.Unavailable != 0 {
		t.Errorf("clean class saw %d degraded / %d unavailable", fg.Degraded, fg.Unavailable)
	}
	if bg.Served > 0 && bg.Degraded == 0 && bg.Unavailable == 0 && bg.CloudMisses == bg.Served {
		t.Logf("note: faulted class saw no degradation this run (loss draws can all succeed)")
	}
}

// TestAutoscaleEventsLowering: the fleet.autoscale block reaches the
// open generator config intact, resize events become the model-time
// timeline, and outage events land on the fleet fault profile as
// absolute windows (creating one when the spec has none).
func TestAutoscaleEventsLowering(t *testing.T) {
	spec, err := Parse([]byte(`{
		"version": 1, "mode": "open", "users": 60, "qps": 50, "seed": 7,
		"duration": "2s",
		"fleet": {"shards": 4, "placement": "ring",
			"autoscale": {"interval": "100ms", "min": 2, "max": 10,
				"high": 0.8, "low": 0.3, "up_after": 3, "down_after": 4,
				"rate_per_shard": 25}},
		"events": [
			{"at": "200ms", "outage": "100ms"},
			{"at": "500ms", "resize": 6},
			{"at": "1s", "resize": 3, "drop": true}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(spec, "inline")
	if err != nil {
		t.Fatal(err)
	}
	ac := comp.Open.Autoscale
	if ac == nil || ac.Interval != 100*time.Millisecond || ac.Min != 2 || ac.Max != 10 ||
		ac.High != 0.8 || ac.Low != 0.3 || ac.UpAfter != 3 || ac.DownAfter != 4 ||
		ac.RatePerShard != 25 {
		t.Fatalf("autoscale config not lowered: %+v", ac)
	}
	wantEvents := []loadgen.TimelineEvent{
		{At: 500 * time.Millisecond, ResizeTo: 6},
		{At: time.Second, ResizeTo: 3, DropState: true},
	}
	if !reflect.DeepEqual(comp.Open.Events, wantEvents) {
		t.Fatalf("timeline events = %+v, want %+v", comp.Open.Events, wantEvents)
	}
	cfg, err := comp.FleetConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Faults.Enabled || cfg.Faults.Seed != 7 {
		t.Fatalf("outage event did not enable a fault profile: %+v", cfg.Faults)
	}
	if len(cfg.Faults.Windows) != 1 ||
		cfg.Faults.Windows[0].Start != 200*time.Millisecond ||
		cfg.Faults.Windows[0].End != 300*time.Millisecond {
		t.Fatalf("outage windows = %+v", cfg.Faults.Windows)
	}
	if cfg.Faults.LossProb != 0 || cfg.Faults.EngineErrProb != 0 {
		t.Fatalf("event-only profile should inject nothing but the window: %+v", cfg.Faults)
	}
}

// TestAutoscaleEventsValidation pins the semantic checks: autoscale
// needs open mode and the ring placement, events need exactly one
// operation, sorted offsets, and resize events need the ring.
func TestAutoscaleEventsValidation(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"closed-mode-autoscale",
			`{"version":1,"mode":"closed","users":10,
				"fleet":{"placement":"ring","autoscale":{}}}`,
			"only open mode drives the autoscaler"},
		{"modulo-autoscale",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"fleet":{"autoscale":{}}}`,
			"needs the ring placement"},
		{"inverted-watermarks",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"fleet":{"placement":"ring","autoscale":{"high":0.3,"low":0.5}}}`,
			"must be below high"},
		{"empty-event",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"events":[{"at":"1s"}]}`,
			"needs a positive resize target or outage length"},
		{"both-ops",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"fleet":{"placement":"ring"},
				"events":[{"at":"1s","resize":4,"outage":"1s"}]}`,
			"pick one of resize or outage"},
		{"unsorted",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"events":[{"at":"2s","outage":"1s"},{"at":"1s","outage":"1s"}]}`,
			"sorted by offset"},
		{"resize-on-modulo",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"events":[{"at":"1s","resize":4}]}`,
			"resize events need the ring placement"},
		{"closed-mode-events",
			`{"version":1,"mode":"closed","users":10,
				"events":[{"at":"1s","outage":"1s"}]}`,
			"only open mode replays a timeline"},
		{"drop-on-outage",
			`{"version":1,"mode":"open","users":10,"qps":5,"duration":"1s",
				"events":[{"at":"1s","outage":"1s","drop":true}]}`,
			"only resize events move state"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadRejectsUnknown(t *testing.T) {
	_, _, err := Load("no-such-preset-or-file.json")
	if err == nil {
		t.Fatal("unknown scenario should fail")
	}
	if !strings.Contains(err.Error(), "presets:") {
		t.Errorf("error should list the preset names, got: %v", err)
	}
}

// TestBackendSpecLowering: the fleet.backend block reaches the fleet
// config intact — spellings parsed, seed defaulted to the scenario
// seed, "inf" understood — and a backend-bearing preset actually
// builds a fleet whose stats expose per-replica accounting.
func TestBackendSpecLowering(t *testing.T) {
	spec, err := Parse([]byte(`{
		"version": 1, "mode": "open", "users": 60, "qps": 50, "seed": 9,
		"duration": "1s",
		"faults": {"loss": 0.1},
		"fleet": {"replicas": 2,
			"backend": {"service_rate": 12.5, "queue": 8, "discipline": "ps",
				"dist": "fixed", "offered": 6, "cancel_on_win": true}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(spec, "inline")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := comp.FleetConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	bo := cfg.Backend
	if !bo.Enabled || bo.ServiceRate != 12.5 || bo.QueueDepth != 8 ||
		bo.Discipline != backend.PS || bo.Dist != backend.DistFixed ||
		bo.Offered != 6 || !bo.CancelOnWin {
		t.Fatalf("backend options not lowered: %+v", bo)
	}
	if bo.Seed != 9 {
		t.Fatalf("backend seed did not default to the scenario seed: %d", bo.Seed)
	}

	// "inf" is a first-class rate spelling.
	spec2, err := Parse([]byte(`{
		"version": 1, "mode": "closed", "users": 10,
		"faults": {"loss": 0.1},
		"fleet": {"backend": {"service_rate": "inf"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(spec2.Fleet.Backend.ServiceRate), 1) {
		t.Fatalf("inf rate parsed as %v", spec2.Fleet.Backend.ServiceRate)
	}

	// The clone-storm preset runs end to end and reports replica stats.
	g := smallGen(t, 60, 9)
	content := smallContent(t, g)
	cs, _, err := Load("clone-storm")
	if err != nil {
		t.Fatal(err)
	}
	cs.Users, cs.QPS, cs.Duration = 60, 40, Duration(300*time.Millisecond)
	comp, err = Compile(cs, "clone-storm")
	if err != nil {
		t.Fatal(err)
	}
	f, col := rig(t, comp, g, content)
	if _, err := comp.Run(f, col, g); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if len(st.Backend) != 3 {
		t.Fatalf("clone-storm fleet has %d replica stats, want 3", len(st.Backend))
	}
	var arrivals int64
	for r, bs := range st.Backend {
		if bs.Arrivals != bs.Served+bs.Rejected+bs.Abandoned {
			t.Errorf("replica %d does not cross-foot: %+v", r, bs)
		}
		arrivals += bs.Arrivals
	}
	if arrivals == 0 {
		t.Error("clone-storm run priced no backend arrivals")
	}
}

// Package scenario is the declarative workload layer: a versioned JSON
// spec that describes a whole load scenario — a fleet of client
// classes with their own arrival processes, think times, device tiers
// and fault profiles — plus named presets and a recordable trace
// format. A validated spec compiles onto the existing machinery:
// loadgen.OpenConfig/ClosedConfig for the generators, fleet.Cohort for
// per-class devices and faults, and a per-class SLO tag threaded
// through every request so reports break latency, shed and energy down
// per class.
//
// The paper's pocket-cloudlet argument rests on workload shape —
// diurnal mobile search traffic, popularity skew, personal vs
// community reuse — and a pile of CLI flags cannot express a mixed
// fleet or a replayable recorded trace. A scenario can:
//
//	{
//	  "version": 1,
//	  "name": "mixed-fleet",
//	  "mode": "open",
//	  "users": 1500,
//	  "qps": 1800,
//	  "duration": "4s",
//	  "classes": [
//	    {"name": "interactive", "share": 0.4, "slo_class": "interactive",
//	     "device": "wifi", "arrival": {"process": "diurnal", "rate_fraction": 0.5}},
//	    {"name": "background", "share": 0.6, "arrival": {"process": "flat"}}
//	  ]
//	}
//
// Everything is stdlib encoding/json; validation is strict (unknown
// fields are errors) and positional (problems name their path, e.g.
// "classes[2].arrival.process").
package scenario

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"pocketcloudlets/internal/engine"
)

// Version is the spec version this package reads and writes.
const Version = 1

// Duration is a time.Duration that marshals as a Go duration string
// ("3s", "250ms") instead of nanoseconds, keeping specs readable.
type Duration time.Duration

// D converts to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", time.Duration(d))), nil
}

// UnmarshalJSON implements json.Unmarshaler; it accepts a duration
// string ("3s") or a bare number of seconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if len(s) >= 2 && s[0] == '"' {
		parsed, err := time.ParseDuration(strings.Trim(s, `"`))
		if err != nil {
			return err
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if _, err := fmt.Sscanf(s, "%g", &secs); err != nil {
		return fmt.Errorf("want a duration string like \"3s\"")
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Rate is a requests-per-second rate that marshals "inf" for an
// infinite rate (JSON numbers cannot express infinity) and accepts
// either a positive number or the string "inf".
type Rate float64

// MarshalJSON implements json.Marshaler.
func (r Rate) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(r), 1) {
		return []byte(`"inf"`), nil
	}
	return []byte(fmt.Sprintf("%g", float64(r))), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Rate) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if strings.Trim(s, `"`) == "inf" {
		*r = Rate(math.Inf(1))
		return nil
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return fmt.Errorf("want a rate number or \"inf\"")
	}
	*r = Rate(v)
	return nil
}

// Spec is one declarative scenario.
type Spec struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Mode selects the protocol: "open" (scheduled arrivals), "closed"
	// (concurrent users awaiting responses) or "trace" (replay a
	// recorded trace file).
	Mode string `json:"mode"`
	// Users is the simulated population size.
	Users int `json:"users"`
	// Seed drives every random draw; zero selects 1.
	Seed int64 `json:"seed,omitempty"`
	// Month is the month users replay; community content is built from
	// the preceding month. Zero selects 1.
	Month int `json:"month,omitempty"`
	// Duration bounds the run. Required (positive) in open mode; in
	// closed mode zero replays exactly one month per user.
	Duration Duration `json:"duration,omitempty"`
	// QPS is the open-loop total mean arrival rate.
	QPS float64 `json:"qps,omitempty"`
	// CommunityShare is the cumulative-volume share the community cache
	// covers; zero selects 0.55 (the paper's operating point).
	CommunityShare float64 `json:"community_share,omitempty"`
	// Trace is the trace file to replay (mode "trace" only).
	Trace string `json:"trace,omitempty"`
	// MaxRequests caps the open-loop schedule; zero selects the
	// generator default (10M).
	MaxRequests int `json:"max_requests,omitempty"`
	// Fleet shapes the serving fleet.
	Fleet FleetSpec `json:"fleet,omitempty"`
	// Faults is the fleet-wide fault profile; nil disables injection
	// for every class that does not override it.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Events are scheduled operations on the run's model-time
	// timeline: live resizes and fleet-wide outage windows. Open mode
	// only; events must be sorted by offset.
	Events []EventSpec `json:"events,omitempty"`
	// Classes are the client classes. Empty means one implicit class
	// covering the whole population with the top-level knobs.
	Classes []ClassSpec `json:"classes,omitempty"`
}

// FleetSpec shapes the serving fleet a scenario runs against.
type FleetSpec struct {
	// Shards is the shard count (0 = fleet default 8); Workers the
	// worker-pool size (0 = min(shards, GOMAXPROCS)); Queue each
	// worker's queue depth (0 = 1024).
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	Queue   int `json:"queue,omitempty"`
	// Radio is the fleet-wide device radio tier: "3g" (default),
	// "edge" or "wifi". Classes may override per device.
	Radio string `json:"radio,omitempty"`
	// Placement is "modulo" (default) or "ring"; VNodes are the ring's
	// virtual nodes per shard (0 = 64).
	Placement string `json:"placement,omitempty"`
	VNodes    int    `json:"vnodes,omitempty"`
	// UserBudgetBytes caps each user's personal flash (0 = unlimited);
	// FleetBudgetBytes the fleet-wide personal budget (0 = 2.5 GB).
	UserBudgetBytes  int64 `json:"user_budget_bytes,omitempty"`
	FleetBudgetBytes int64 `json:"fleet_budget_bytes,omitempty"`
	// Replicas is the number of modeled cloud engine replicas the miss
	// path may dispatch to (0 or 1 = single backend). Each replica
	// beyond the first draws its faults independently; classes opt into
	// hedging across them with a "hedge" block.
	Replicas int `json:"replicas,omitempty"`
	// Batch configures cloud-miss coalescing. Batching and per-class
	// device overrides do not compose (the shared session is priced on
	// the fleet radio), which Compile enforces.
	Batch BatchSpec `json:"batch,omitempty"`
	// Backend models the cloud replica servers as finite-capacity
	// queues; nil keeps the pre-backend analytic miss path. The block
	// requires a fault profile somewhere in the spec (the admission
	// planner runs on the faulted miss path).
	Backend *BackendSpec `json:"backend,omitempty"`
	// Autoscale enables the occupancy-driven shard autoscaler
	// (internal/autoscale); nil keeps the topology static. Requires
	// open mode and the ring placement.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
}

// AutoscaleSpec turns on the occupancy-driven shard autoscaler: the
// load generator samples per-shard occupancy on a model-time cadence
// and resizes the fleet within [min, max] with hysteresis
// (internal/autoscale). Zero fields select the controller defaults.
type AutoscaleSpec struct {
	// Interval is the model-time sampling cadence (0 = 1s).
	Interval Duration `json:"interval,omitempty"`
	// Min and Max bound the shard count the controller may target
	// (0 = 1 and 4× the initial shard count).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// High and Low are the occupancy watermarks (0 = 0.75 and 0.35).
	High float64 `json:"high,omitempty"`
	Low  float64 `json:"low,omitempty"`
	// UpAfter and DownAfter are the consecutive-sample streaks a
	// resize needs (0 = 2 and 3).
	UpAfter   int `json:"up_after,omitempty"`
	DownAfter int `json:"down_after,omitempty"`
	// RatePerShard is the serving rate, in requests per second of
	// model time, at which one shard counts as fully occupied
	// (0 = 50).
	RatePerShard float64 `json:"rate_per_shard,omitempty"`
}

// EventSpec is one scheduled operation on the run's model-time
// timeline. Exactly one of Resize or Outage must be set.
type EventSpec struct {
	// At is the model-time offset the event fires at.
	At Duration `json:"at"`
	// Resize reshards the fleet to this many shards; Drop discards
	// movers' personal state instead of migrating it.
	Resize int  `json:"resize,omitempty"`
	Drop   bool `json:"drop,omitempty"`
	// Outage opens a fleet-wide connectivity outage of this length
	// starting at the offset, lowered onto the fleet fault profile as
	// an absolute window (classes overriding faults keep their own
	// profile).
	Outage Duration `json:"outage,omitempty"`
}

// BackendSpec models the cloud replica servers behind the miss path as
// event-driven queues (internal/backend). Presence of the block
// enables the model; replica count and clone-load scaling are derived
// from the fleet's replicas and the heaviest hedge policy in the spec.
type BackendSpec struct {
	// ServiceRate is each replica's capacity in requests per second; the
	// string "inf" models an infinitely fast server, which reproduces
	// the no-backend fleet byte-for-byte. Required and positive.
	ServiceRate Rate `json:"service_rate"`
	// Queue bounds each replica's queue (0 = unbounded): FIFO caps the
	// backlog at queue mean service times, PS caps the sharing level at
	// queue concurrent requests. Over-bound dispatches are rejected and
	// retried like any failed attempt.
	Queue int `json:"queue,omitempty"`
	// Discipline is "fifo" (default) or "ps".
	Discipline string `json:"discipline,omitempty"`
	// Dist is the service-time distribution: "exp" (default) or "fixed".
	Dist string `json:"dist,omitempty"`
	// Offered is the fleet-wide miss arrival rate (requests/second,
	// before cloning) the replicas' background load simmers at; zero
	// means dispatches pay service time but never queue behind others.
	Offered float64 `json:"offered,omitempty"`
	// CancelOnWin reclaims a hedge loser's unexecuted service when the
	// winner's answer cancels it; off, abandoned clones burn their full
	// service time.
	CancelOnWin bool `json:"cancel_on_win,omitempty"`
	// Seed drives the background arrivals and service draws; zero reuses
	// the scenario seed.
	Seed int64 `json:"seed,omitempty"`
}

// BatchSpec configures miss coalescing.
type BatchSpec struct {
	Enabled bool `json:"enabled,omitempty"`
	// Max caps misses per session (0 = 16); Linger is the collection
	// window (0 = 200µs); FleetWide pools all shards' misses; Adaptive
	// sizes the window from the observed miss rate.
	Max       int      `json:"max,omitempty"`
	Linger    Duration `json:"linger,omitempty"`
	FleetWide bool     `json:"fleet_wide,omitempty"`
	Adaptive  bool     `json:"adaptive,omitempty"`
}

// FaultSpec is a connectivity-fault profile, fleet-wide or per class.
// A present-but-empty profile is explicitly fault-free: a class with
// "faults": {} opts out of the fleet-wide profile.
type FaultSpec struct {
	// Loss is the per-attempt probability a radio exchange is dropped;
	// EngineErr the per-attempt probability of a transient cloud error.
	Loss      float64 `json:"loss,omitempty"`
	EngineErr float64 `json:"engine_err,omitempty"`
	// Outage is the outage spec: "6s/30s" duty cycle (down the first 6s
	// of every 30s of model time) or "10s-20s,40s-45s" absolute windows.
	Outage string `json:"outage,omitempty"`
	// Retries caps radio attempts per cloud miss (0 = default 4).
	Retries int `json:"retries,omitempty"`
	// Seed drives the fault hashes; zero reuses the scenario seed.
	Seed int64 `json:"seed,omitempty"`
}

// ClassSpec is one client class.
type ClassSpec struct {
	// Name identifies the class; it must be unique within the spec.
	Name string `json:"name"`
	// Share is the class's fraction of the user population; shares must
	// sum to 1.
	Share float64 `json:"share"`
	// SLOClass tags the class's requests in reports; empty reuses Name.
	SLOClass string `json:"slo_class,omitempty"`
	// Device overrides the class's radio tier ("3g", "edge", "wifi");
	// empty inherits the fleet radio.
	Device string `json:"device,omitempty"`
	// Arrival shapes the class's open-loop arrival process.
	Arrival *ArrivalSpec `json:"arrival,omitempty"`
	// Think is the class's closed-loop think-time pacing.
	Think *ThinkSpec `json:"think,omitempty"`
	// MaxQueriesPerUser caps each class user's closed-loop stream.
	MaxQueriesPerUser int `json:"max_queries_per_user,omitempty"`
	// Faults overrides the fleet-wide fault profile for this class's
	// users; an empty object disables faults for them.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Hedge opts this class's cloud misses into hedged dispatch across
	// the fleet's replicas (fleet.replicas must be ≥ 2). Nil keeps the
	// single-dispatch path.
	Hedge *HedgeSpec `json:"hedge,omitempty"`
}

// HedgeSpec is one class's hedging policy for cloud misses.
type HedgeSpec struct {
	// CloneFactor is the total dispatches one miss may make, primary
	// included; values below 2 disable hedging for the class.
	CloneFactor int `json:"clone_factor"`
	// Delay staggers each additional clone after the primary; zero
	// launches all clones immediately.
	Delay Duration `json:"delay,omitempty"`
	// MaxInflight caps concurrently outstanding dispatches per miss
	// (0 = clone_factor).
	MaxInflight int `json:"max_inflight,omitempty"`
}

// ArrivalSpec shapes one class's open-loop arrival process.
type ArrivalSpec struct {
	// Process is "flat" (homogeneous Poisson; "poisson" is accepted as
	// an alias), "diurnal" or "peruser".
	Process string `json:"process"`
	// RateFraction is the class's fraction of the scenario QPS; zero
	// defaults to the class's user share. Fractions must sum to 1.
	RateFraction float64 `json:"rate_fraction,omitempty"`
	// PeakTrough is the diurnal peak/trough rate ratio (≥ 1); zero
	// selects the default (4). Diurnal only.
	PeakTrough float64 `json:"peak_trough,omitempty"`
	// Period is the diurnal curve's period; zero spans the run with a
	// single day. Diurnal only.
	Period Duration `json:"period,omitempty"`
}

// ThinkSpec is closed-loop think-time pacing for one class.
type ThinkSpec struct {
	// Scale is the fraction of each modeled response time the user
	// "thinks" before their next query (wall-clock only).
	Scale float64 `json:"scale"`
	// MaxPause caps one think pause; zero selects the default (50ms).
	MaxPause Duration `json:"max_pause,omitempty"`
}

// Error is a validation failure: every problem found, each prefixed
// with the JSON path it was found at.
type Error struct {
	Problems []string
}

// Error implements error.
func (e *Error) Error() string {
	if len(e.Problems) == 1 {
		return "scenario: " + e.Problems[0]
	}
	return "scenario: invalid spec:\n  " + strings.Join(e.Problems, "\n  ")
}

// withDefaults resolves the spec's zero-value defaults in place.
func (s *Spec) withDefaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Month == 0 {
		s.Month = 1
	}
	if s.CommunityShare == 0 {
		s.CommunityShare = 0.55
	}
	if s.Fleet.Radio == "" {
		s.Fleet.Radio = "3g"
	}
	if s.Fleet.Placement == "" {
		s.Fleet.Placement = "modulo"
	}
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.SLOClass == "" {
			c.SLOClass = c.Name
		}
		if c.Arrival != nil && c.Arrival.RateFraction == 0 {
			c.Arrival.RateFraction = c.Share
		}
	}
}

// Load resolves a scenario by preset name or file path and returns the
// parsed, validated spec plus the label reports carry (the preset name
// or the file path).
func Load(nameOrPath string) (*Spec, string, error) {
	if raw, ok := Preset(nameOrPath); ok {
		spec, err := Parse([]byte(raw))
		if err != nil {
			return nil, "", fmt.Errorf("scenario: preset %s: %w", nameOrPath, err)
		}
		return spec, nameOrPath, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, "", fmt.Errorf("scenario: %w (not a preset either; presets: %s)",
			err, strings.Join(PresetNames(), ", "))
	}
	spec, err := Parse(data)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", nameOrPath, err)
	}
	return spec, nameOrPath, nil
}

// UniverseConfig is the corpus sizing the scenario CLIs share: small
// enough that cmd/loadtest and cmd/tracegen build their ecosystem in
// well under a second, big enough that the popularity skew survives.
// Both commands must use the same corpus or a recorded trace would
// replay against different strings than it was drawn from.
func UniverseConfig() engine.Config {
	return engine.Config{
		NavPairs:    24000,
		NonNavPairs: 120000,
		NonNavSegments: []engine.Segment{
			{Queries: 100, ResultsPerQuery: 6},
			{Queries: 400, ResultsPerQuery: 4},
			{Queries: 1500, ResultsPerQuery: 3},
			{Queries: 8000, ResultsPerQuery: 2},
		},
	}
}

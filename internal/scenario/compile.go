package scenario

import (
	"fmt"
	"sort"
	"time"

	"pocketcloudlets/internal/autoscale"
	"pocketcloudlets/internal/backend"
	"pocketcloudlets/internal/faults"
	"pocketcloudlets/internal/fleet"
	"pocketcloudlets/internal/loadgen"
	"pocketcloudlets/internal/modeltime"
	"pocketcloudlets/internal/placement"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
	"pocketcloudlets/internal/workload"
)

// defaultShards mirrors the fleet's default shard count, needed here
// to size a ring placement when the spec leaves fleet.shards zero.
const defaultShards = 8

// ClassRange is one class's slice of the user population. Classes own
// contiguous index ranges, and the workload generator guarantees
// profiles[i].ID == UserID(i), so a range of indices is also a range
// of user IDs — which keeps the class lookup a pure function of the
// user ID (required for migration-safe cohorts) and lets per-class
// arrival tapes filter the month log by ID.
type ClassRange struct {
	// Name is the class name from the spec; SLO the tag its requests
	// carry.
	Name string
	SLO  string
	// Lo and Hi bound the class's user indices ([Lo, Hi)).
	Lo, Hi int
}

// Compiled is a validated spec lowered onto the serving machinery:
// generator configs for the spec's mode, fleet cohorts for per-class
// devices and faults, and the class→user assignment that ties them
// together.
type Compiled struct {
	// Spec is the compiled spec, defaults resolved.
	Spec *Spec
	// Source is where the spec came from (preset name or file path).
	Source string
	// Ranges assigns users to classes; empty when the spec has no
	// classes.
	Ranges []ClassRange
	// Open and Closed are the generator configs; the one matching
	// Spec.Mode is authoritative (trace mode uses neither). Callers may
	// tweak them (e.g. cmd/loadtest threads its resize flags through)
	// before Run.
	Open   loadgen.OpenConfig
	Closed loadgen.ClosedConfig

	cohorts  []fleet.Cohort
	cohortOf func(searchlog.UserID) int
}

// Compile validates a spec and lowers it. source labels the spec's
// origin in errors and reports.
func Compile(spec *Spec, source string) (*Compiled, error) {
	p := &problems{}
	spec.withDefaults()
	validateSpec(p, spec)
	if len(p.list) > 0 {
		return nil, &Error{Problems: p.list}
	}

	c := &Compiled{Spec: spec, Source: source}
	var err error
	if c.Ranges, err = apportion(spec.Users, spec.Classes); err != nil {
		return nil, err
	}
	if err := c.buildCohorts(); err != nil {
		return nil, err
	}

	label := spec.Name
	if label == "" {
		label = source
	}
	switch spec.Mode {
	case "open":
		c.Open = loadgen.OpenConfig{
			QPS:         spec.QPS,
			Duration:    spec.Duration.D(),
			Month:       spec.Month,
			Seed:        spec.Seed,
			MaxRequests: spec.MaxRequests,
			Scenario:    label,
		}
		if a := spec.Fleet.Autoscale; a != nil {
			c.Open.Autoscale = &autoscale.Config{
				Interval:     a.Interval.D(),
				Min:          a.Min,
				Max:          a.Max,
				High:         a.High,
				Low:          a.Low,
				UpAfter:      a.UpAfter,
				DownAfter:    a.DownAfter,
				RatePerShard: a.RatePerShard,
			}
		}
		// Resize events become the generator's model-time timeline;
		// outage events stay here and lower onto the fault profile in
		// FleetConfig. Validation already sorted the spec events.
		for _, ev := range spec.Events {
			if ev.Resize > 0 {
				c.Open.Events = append(c.Open.Events, loadgen.TimelineEvent{
					At: ev.At.D(), ResizeTo: ev.Resize, DropState: ev.Drop,
				})
			}
		}
		switch len(spec.Classes) {
		case 0:
			c.Open.ClassTag = "default"
		case 1:
			// A single class is the legacy single-stream schedule with a
			// tag: same seed, same tape, byte-identical arrivals.
			cs := spec.Classes[0]
			c.Open.ClassTag = cs.SLOClass
			c.Open.Arrivals, c.Open.DiurnalPeak, c.Open.DiurnalPeriod = arrivalParams(cs.Arrival)
		default:
			for ci, cs := range spec.Classes {
				kind, peak, period := arrivalParams(cs.Arrival)
				c.Open.Classes = append(c.Open.Classes, loadgen.OpenClassConfig{
					Name:          cs.SLOClass,
					Lo:            c.Ranges[ci].Lo,
					Hi:            c.Ranges[ci].Hi,
					QPSShare:      cs.effectiveRateFraction(),
					Arrivals:      kind,
					DiurnalPeak:   peak,
					DiurnalPeriod: period,
				})
			}
		}
	case "closed":
		c.Closed = loadgen.ClosedConfig{
			Users:    spec.Users,
			Month:    spec.Month,
			Duration: spec.Duration.D(),
			Seed:     spec.Seed,
			Scenario: label,
		}
		switch len(spec.Classes) {
		case 0:
			c.Closed.ClassTag = "default"
		case 1:
			cs := spec.Classes[0]
			c.Closed.ClassTag = cs.SLOClass
			c.Closed.Pace = pacer(cs.Think)
			c.Closed.MaxQueriesPerUser = cs.MaxQueriesPerUser
		default:
			for ci, cs := range spec.Classes {
				c.Closed.Classes = append(c.Closed.Classes, loadgen.ClosedClassConfig{
					Name:              cs.SLOClass,
					Lo:                c.Ranges[ci].Lo,
					Hi:                c.Ranges[ci].Hi,
					Pace:              pacer(cs.Think),
					MaxQueriesPerUser: cs.MaxQueriesPerUser,
				})
			}
		}
	}
	return c, nil
}

// apportion assigns spec.Users to classes by largest remainder:
// every class gets ⌊share·users⌋, and the leftover seats go to the
// largest fractional remainders (ties to the earlier class), so the
// total is exact and the assignment is deterministic.
func apportion(users int, classes []ClassSpec) ([]ClassRange, error) {
	if len(classes) == 0 {
		return nil, nil
	}
	counts := make([]int, len(classes))
	rem := make([]float64, len(classes))
	assigned := 0
	for i, cs := range classes {
		exact := cs.Share * float64(users)
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < users; k++ {
		counts[order[k%len(order)]]++
		assigned++
	}
	ranges := make([]ClassRange, len(classes))
	lo := 0
	for i, cs := range classes {
		if counts[i] == 0 {
			return nil, &Error{Problems: []string{fmt.Sprintf(
				"classes[%d]: %q rounds to zero users (share %g of %d); raise the share or the population",
				i, cs.Name, cs.Share, users)}}
		}
		ranges[i] = ClassRange{Name: cs.Name, SLO: cs.SLOClass, Lo: lo, Hi: lo + counts[i]}
		lo += counts[i]
	}
	return ranges, nil
}

// buildCohorts lowers per-class device and fault overrides onto
// fleet.Cohort entries. Classes that override nothing produce no
// cohort table at all, keeping the fleet on the uniform legacy path.
func (c *Compiled) buildCohorts() error {
	s := c.Spec
	needed := false
	for _, cs := range s.Classes {
		if cs.Device != "" || cs.Faults != nil || cs.Hedge != nil {
			needed = true
			break
		}
	}
	if !needed {
		return nil
	}
	for i, cs := range s.Classes {
		var co fleet.Cohort
		co.Name = cs.Name
		if cs.Device != "" {
			co.Radio = radioParams(cs.Device)
		}
		if cs.Faults != nil {
			opts, err := faultOptions(s.Seed, cs.Faults)
			if err != nil {
				return fmt.Errorf("scenario: classes[%d].faults: %w", i, err)
			}
			co.Faults = &opts
			if cs.Faults.Retries > 0 {
				co.Retry = &faults.RetryPolicy{MaxAttempts: cs.Faults.Retries}
			}
		}
		if cs.Hedge != nil {
			co.Hedge = &faults.HedgePolicy{
				CloneFactor: cs.Hedge.CloneFactor,
				Delay:       cs.Hedge.Delay.D(),
				MaxInflight: cs.Hedge.MaxInflight,
			}
		}
		c.cohorts = append(c.cohorts, co)
	}
	ranges := c.Ranges
	c.cohortOf = func(uid searchlog.UserID) int {
		for i := range ranges {
			if int(uid) >= ranges[i].Lo && int(uid) < ranges[i].Hi {
				return i
			}
		}
		return -1
	}
	return nil
}

// arrivalParams lowers an arrival spec; nil is the flat process.
func arrivalParams(a *ArrivalSpec) (modeltime.Kind, float64, time.Duration) {
	if a == nil {
		return modeltime.Poisson, 0, 0
	}
	kind, _ := modeltime.ParseKind(a.Process)
	return kind, a.PeakTrough, a.Period.D()
}

// pacer lowers a think spec; nil is the unpaced protocol.
func pacer(t *ThinkSpec) modeltime.Pacer {
	if t == nil {
		return modeltime.Pacer{}
	}
	return modeltime.Pacer{Scale: t.Scale, MaxPause: t.MaxPause.D()}
}

// radioParams maps a validated radio tier name to its parameter set.
func radioParams(name string) radio.Params {
	switch name {
	case "edge":
		return radio.EDGE()
	case "wifi":
		return radio.WiFi()
	default:
		return radio.ThreeG()
	}
}

// faultOptions lowers a fault spec to injector options. The spec seed
// defaults to the scenario seed so one knob reseeds the whole run.
func faultOptions(scenarioSeed int64, f *FaultSpec) (faults.Options, error) {
	opts := faults.Options{
		Enabled:       true,
		Seed:          f.Seed,
		LossProb:      f.Loss,
		EngineErrProb: f.EngineErr,
	}
	if opts.Seed == 0 {
		opts.Seed = scenarioSeed
	}
	if f.Outage != "" {
		every, down, windows, err := faults.ParseOutageSpec(f.Outage)
		if err != nil {
			return faults.Options{}, err
		}
		opts.OutageEvery, opts.OutageFor, opts.Windows = every, down, windows
	}
	return opts, nil
}

// FleetConfig builds the fleet configuration the scenario runs
// against. The caller owns Engine, Content and Options (they come from
// the simulation facade); everything else — sharding, radio, budgets,
// batching, faults, cohorts — comes from the spec.
func (c *Compiled) FleetConfig(obs fleet.Observer) (fleet.Config, error) {
	s := c.Spec
	cfg := fleet.Config{
		Shards: s.Fleet.Shards,
		// The workload generator numbers its profiles 0..Users-1, so the
		// population is a contiguous ID range and every shard can index
		// residents through dense slots instead of a hash map.
		Population:         s.Users,
		Workers:            s.Fleet.Workers,
		QueueDepth:         s.Fleet.Queue,
		Radio:              radioParams(s.Fleet.Radio),
		PerUserBytes:       s.Fleet.UserBudgetBytes,
		TotalPersonalBytes: s.Fleet.FleetBudgetBytes,
		Batch: fleet.BatchOptions{
			Enabled:        s.Fleet.Batch.Enabled,
			MaxBatch:       s.Fleet.Batch.Max,
			Linger:         s.Fleet.Batch.Linger.D(),
			FleetWide:      s.Fleet.Batch.FleetWide,
			AdaptiveLinger: s.Fleet.Batch.Adaptive,
		},
		Replicas: s.Fleet.Replicas,
		Cohorts:  c.cohorts,
		CohortOf: c.cohortOf,
		Observer: obs,
	}
	// Load runs measure latency, energy and hit rates — nothing reads
	// Outcome.Results — so serving skips materializing result structs.
	// Latencies, energy and hit/miss classification are unchanged
	// (pocketsearch.Options.DiscardResults contract).
	cfg.Options.DiscardResults = true
	if s.Fleet.Placement == "ring" {
		n := s.Fleet.Shards
		if n == 0 {
			n = defaultShards
		}
		ring, err := placement.NewRing(n, s.Fleet.VNodes)
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.Shards, cfg.Placement = n, ring
	}
	if s.Faults != nil {
		opts, err := faultOptions(s.Seed, s.Faults)
		if err != nil {
			return fleet.Config{}, fmt.Errorf("scenario: faults: %w", err)
		}
		cfg.Faults = opts
		cfg.Retry = faults.RetryPolicy{MaxAttempts: s.Faults.Retries}
	}
	// Outage events lower onto the fleet-wide fault profile as absolute
	// windows; a spec with no profile gets a windows-only injector
	// seeded from the scenario seed. Classes overriding faults keep
	// their own profile — event outages are a fleet-wide condition.
	for _, ev := range s.Events {
		if ev.Outage <= 0 {
			continue
		}
		if !cfg.Faults.Enabled {
			cfg.Faults = faults.Options{Enabled: true, Seed: s.Seed}
		}
		cfg.Faults.Windows = append(cfg.Faults.Windows, faults.Window{
			Start: ev.At.D(), End: ev.At.D() + ev.Outage.D(),
		})
	}
	if b := s.Fleet.Backend; b != nil {
		// Validation already vetted the spellings; replicas and clone
		// factor are derived by the fleet from its own configuration.
		disc, _ := backend.ParseDiscipline(b.Discipline)
		dist, _ := backend.ParseDist(b.Dist)
		cfg.Backend = backend.Options{
			Enabled:     true,
			Seed:        b.Seed,
			ServiceRate: float64(b.ServiceRate),
			QueueDepth:  b.Queue,
			Discipline:  disc,
			Dist:        dist,
			Offered:     b.Offered,
			CancelOnWin: b.CancelOnWin,
		}
		if cfg.Backend.Seed == 0 {
			cfg.Backend.Seed = s.Seed
		}
	}
	return cfg, nil
}

// Run drives the fleet with the compiled scenario and returns the
// loadgen report. col must be installed as the fleet's Observer.
func (c *Compiled) Run(f *fleet.Fleet, col *loadgen.Collector, g *workload.Generator) (loadgen.Report, error) {
	switch c.Spec.Mode {
	case "open":
		return loadgen.RunOpen(f, col, g, c.Open)
	case "closed":
		return loadgen.RunClosed(f, col, g, c.Closed)
	case "trace":
		events, err := ReadTraceFile(c.Spec.Trace)
		if err != nil {
			return loadgen.Report{}, err
		}
		label := c.Spec.Name
		if label == "" {
			label = c.Source
		}
		return loadgen.RunTrace(f, col, events, loadgen.TraceConfig{
			Seed:     c.Spec.Seed,
			Users:    c.Spec.Users,
			Scenario: label,
			Horizon:  c.Spec.Duration.D(),
		})
	}
	return loadgen.Report{}, fmt.Errorf("scenario: unknown mode %q", c.Spec.Mode)
}

// Materialize draws the open-loop schedule as concrete trace events —
// what cmd/tracegen records and trace mode replays.
func (c *Compiled) Materialize(g *workload.Generator) ([]loadgen.TraceEvent, error) {
	if c.Spec.Mode != "open" {
		return nil, fmt.Errorf("scenario: only open mode materializes a schedule (mode is %q)", c.Spec.Mode)
	}
	return loadgen.OpenEvents(g, c.Open)
}

package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// traceSeeds materializes the four open-mode presets (commuter is
// closed-loop and cannot Materialize) into serialized traces, shrunk
// so seeding stays cheap. Real preset output keeps the corpus honest:
// multi-class tags, hedged clone-storm schedules, comment lines.
func traceSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, name := range []string{"flash-crowd", "regional-outage", "mixed-fleet", "clone-storm"} {
		spec, _, err := Load(name)
		if err != nil {
			f.Fatal(err)
		}
		spec.Users, spec.QPS, spec.Duration = 50, 30, Duration(200*time.Millisecond)
		comp, err := Compile(spec, name)
		if err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		g := smallGen(f, spec.Users, spec.Seed)
		events, err := comp.Materialize(g)
		if err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, events); err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzReadTrace hammers the #pocketcloudlets-trace v1 TSV reader
// (mirroring FuzzParseOutageSpec for the outage grammar): whatever the
// input, the parser must not panic, errors must come with no events,
// and anything it accepts must be a well-formed schedule — non-empty,
// time-ordered, non-negative users, non-empty queries — that survives
// a WriteTrace/ReadTrace round trip byte-for-byte.
func FuzzReadTrace(f *testing.F) {
	for _, seed := range traceSeeds(f) {
		f.Add(seed)
	}
	for _, seed := range []string{
		"",
		"nonsense\n",
		TraceHeader,
		TraceHeader + "\n",
		TraceHeader + "\n# comment only\n",
		TraceHeader + "\n0\t0\t\tq\t\n",
		TraceHeader + "\n5\t0\t\tq\t\n1\t0\t\tq\t\n", // out of order
		TraceHeader + "\n0\t0\t\t\t\n",               // empty query
		TraceHeader + "\n-1\t0\t\tq\t\n",             // negative at
		TraceHeader + "\n0\t-1\t\tq\t\n",             // negative user
		TraceHeader + "\n0\t0\tq\n",                  // too few fields
		TraceHeader + "\n0\t0\t\tq\t\textra\n",       // too many fields
		TraceHeader + "\r\n0\t0\tvip\tq\tc\r\n",      // CRLF endings
		TraceHeader + "\n9223372036854775807\t0\t\tq\t\n",
		TraceHeader + "\n9223372036854775808\t0\t\tq\t\n", // int64 overflow
		TraceHeader + "\n0\t0\tcla\rss\tq\tc\n",           // CR inside a field
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if events != nil {
				t.Fatalf("error %v with %d events", err, len(events))
			}
			return
		}
		if len(events) == 0 {
			t.Fatal("accepted a trace with no events")
		}
		var last time.Duration
		for i, ev := range events {
			if ev.At < 0 || ev.At < last {
				t.Fatalf("event %d: at %v out of order (prev %v)", i, ev.At, last)
			}
			last = ev.At
			if ev.User < 0 {
				t.Fatalf("event %d: negative user %d", i, ev.User)
			}
			if ev.Query == "" {
				t.Fatalf("event %d: empty query", i)
			}
		}
		var buf bytes.Buffer
		if werr := WriteTrace(&buf, events); werr != nil {
			// The only parseable-but-unwritable shape: a carriage return
			// in the middle of a field (line splitting removes \n, field
			// splitting removes \t, but only a *trailing* \r is trimmed).
			for _, ev := range events {
				if strings.Contains(ev.Class+ev.Query+ev.Click, "\r") {
					return
				}
			}
			t.Fatalf("clean events do not re-serialize: %v", werr)
		}
		back, rerr := ReadTrace(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(back), len(events))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, back[i], events[i])
			}
		}
	})
}

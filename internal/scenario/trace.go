package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pocketcloudlets/internal/loadgen"
	"pocketcloudlets/internal/searchlog"
)

// TraceHeader is the magic first line of a recorded trace file.
const TraceHeader = "#pocketcloudlets-trace v1"

// WriteTrace writes events as a trace file: the header line, then one
// tab-separated record per event —
//
//	at_ns<TAB>user<TAB>class<TAB>query<TAB>click
//
// Lines starting with '#' are comments. The format is deliberately
// dumb: diffable, greppable, and replayed byte-identically by
// ReadTrace + loadgen.RunTrace.
func WriteTrace(w io.Writer, events []loadgen.TraceEvent) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, TraceHeader)
	fmt.Fprintln(bw, "# at_ns\tuser\tclass\tquery\tclick")
	for i, ev := range events {
		for _, f := range [3]string{ev.Class, ev.Query, ev.Click} {
			if strings.ContainsAny(f, "\t\n\r") {
				return fmt.Errorf("scenario: trace event %d: field %q contains a tab or newline", i, f)
			}
		}
		fmt.Fprintf(bw, "%d\t%d\t%s\t%s\t%s\n", int64(ev.At), int64(ev.User), ev.Class, ev.Query, ev.Click)
	}
	return bw.Flush()
}

// WriteTraceFile writes events to path via WriteTrace.
func WriteTraceFile(path string, events []loadgen.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a trace written by WriteTrace. Events must be
// sorted by At (the replayer releases them in file order against a
// monotonic clock); parsing is strict and errors carry line numbers.
func ReadTrace(r io.Reader) ([]loadgen.TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("scenario: empty trace")
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != TraceHeader {
		return nil, fmt.Errorf("scenario: line 1: want header %q, got %q", TraceHeader, got)
	}
	var events []loadgen.TraceEvent
	var last time.Duration
	for line := 2; sc.Scan(); line++ {
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 5 {
			return nil, fmt.Errorf("scenario: line %d: want 5 tab-separated fields, got %d", line, len(parts))
		}
		at, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("scenario: line %d: bad at_ns %q", line, parts[0])
		}
		uid, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || uid < 0 {
			return nil, fmt.Errorf("scenario: line %d: bad user %q", line, parts[1])
		}
		if parts[3] == "" {
			return nil, fmt.Errorf("scenario: line %d: empty query", line)
		}
		ev := loadgen.TraceEvent{
			At:    time.Duration(at),
			User:  searchlog.UserID(uid),
			Class: parts[2],
			Query: parts[3],
			Click: parts[4],
		}
		if ev.At < last {
			return nil, fmt.Errorf("scenario: line %d: events out of order (%v after %v)", line, ev.At, last)
		}
		last = ev.At
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("scenario: trace has a header but no events")
	}
	return events, nil
}

// ReadTraceFile reads a trace file via ReadTrace.
func ReadTraceFile(path string) ([]loadgen.TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	events, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

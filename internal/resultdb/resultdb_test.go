package resultdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pocketcloudlets/internal/flashsim"
)

func newDB(t testing.TB, files int) *DB {
	t.Helper()
	store := flashsim.NewFileStore(flashsim.NewDevice(flashsim.Params{}))
	db, err := New(store, Config{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	store := flashsim.NewFileStore(flashsim.NewDevice(flashsim.Params{}))
	if _, err := New(nil, Config{Files: 32}); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := New(store, Config{Files: 0}); err == nil {
		t.Error("zero files should fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	db := newDB(t, 32)
	rec := []byte("Title\x1fwww.example.com\x1fexample.com\x1fSnippet text")
	if _, err := db.Put(12345, rec); err != nil {
		t.Fatal(err)
	}
	got, lat, err := db.Get(12345)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Errorf("got %q, want %q", got, rec)
	}
	if lat <= 0 {
		t.Error("retrieval latency should be positive")
	}
}

func TestPutIdempotent(t *testing.T) {
	db := newDB(t, 8)
	rec := []byte("record")
	db.Put(7, rec)
	db.Put(7, []byte("different content ignored"))
	got, _, err := db.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Errorf("second Put overwrote the record: %q", got)
	}
	if db.Len() != 1 {
		t.Errorf("len = %d, want 1", db.Len())
	}
}

func TestGetMissing(t *testing.T) {
	db := newDB(t, 8)
	if _, _, err := db.Get(99); err == nil {
		t.Error("Get of missing record should fail")
	}
	db.Put(99, []byte("x"))
	// Same file, different hash.
	if _, _, err := db.Get(99 + 8); err == nil {
		t.Error("Get of missing record in populated file should fail")
	}
}

func TestFileAssignment(t *testing.T) {
	db := newDB(t, 32)
	for h := uint64(0); h < 200; h++ {
		if got := db.FileOf(h); got != int(h%32) {
			t.Fatalf("FileOf(%d) = %d, want %d", h, got, h%32)
		}
	}
}

func TestManyRecordsAcrossFiles(t *testing.T) {
	db := newDB(t, 32)
	r := rand.New(rand.NewSource(5))
	want := map[uint64][]byte{}
	for i := 0; i < 500; i++ {
		h := r.Uint64()
		rec := []byte(fmt.Sprintf("record-%d-%d", i, h))
		want[h] = rec
		if _, err := db.Put(h, rec); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != len(want) {
		t.Fatalf("len = %d, want %d", db.Len(), len(want))
	}
	for h, rec := range want {
		got, _, err := db.Get(h)
		if err != nil {
			t.Fatalf("Get(%x): %v", h, err)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("Get(%x) = %q, want %q", h, got, rec)
		}
	}
	if got := len(db.Hashes()); got != len(want) {
		t.Errorf("Hashes() returned %d, want %d", got, len(want))
	}
}

func TestContains(t *testing.T) {
	db := newDB(t, 4)
	if db.Contains(5) {
		t.Error("empty db should not contain anything")
	}
	db.Put(5, []byte("x"))
	if !db.Contains(5) || db.Contains(9) {
		t.Error("Contains mismatch")
	}
}

// TestRetrievalTimeFallsWithFileCount verifies the Figure 12 shape:
// with a fixed record population, retrieving a record is slower with
// fewer files (long headers) and fragmentation grows with more files.
func TestRetrievalTimeFallsWithFileCount(t *testing.T) {
	const records = 2500
	rec := make([]byte, 500)
	lat := map[int]time.Duration{}
	frag := map[int]int64{}
	for _, files := range []int{1, 32, 256} {
		db := newDB(t, files)
		for i := 0; i < records; i++ {
			if _, err := db.Put(uint64(i)*2654435761, rec); err != nil {
				t.Fatal(err)
			}
		}
		var total time.Duration
		const probes = 50
		for i := 0; i < probes; i++ {
			_, l, err := db.Get(uint64(i*37) * 2654435761)
			if err != nil {
				t.Fatal(err)
			}
			total += l
		}
		lat[files] = total / probes
		frag[files] = db.FragmentationBytes()
	}
	if !(lat[1] > lat[32] && lat[32] >= lat[256]) {
		t.Errorf("latency should fall with file count: %v", lat)
	}
	if !(frag[1] <= frag[32] && frag[32] < frag[256]) {
		t.Errorf("fragmentation should grow with file count: %v", frag)
	}
	// Table 4 calibration: with 32 files, fetching two results ~10 ms.
	twoFetch := 2 * lat[32]
	if twoFetch < 5*time.Millisecond || twoFetch > 18*time.Millisecond {
		t.Errorf("two-result fetch at 32 files = %v, want ~10 ms", twoFetch)
	}
}

func TestReplaceFileAndRecordsOf(t *testing.T) {
	db := newDB(t, 4)
	db.Put(0, []byte("old0"))
	db.Put(4, []byte("old4"))
	db.Put(1, []byte("other-file"))

	newRecs := map[uint64][]byte{
		8:  []byte("new8"),
		12: []byte("new12"),
	}
	if _, err := db.ReplaceFile(0, newRecs); err != nil {
		t.Fatal(err)
	}
	// Old file-0 records replaced.
	if db.Contains(0) || db.Contains(4) {
		t.Error("old records should be gone after ReplaceFile")
	}
	got, _, err := db.Get(8)
	if err != nil || !bytes.Equal(got, []byte("new8")) {
		t.Errorf("Get(8) = %q, %v", got, err)
	}
	// Other files untouched.
	if !db.Contains(1) {
		t.Error("other files should be untouched")
	}
	recs, err := db.RecordsOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[12], []byte("new12")) {
		t.Errorf("RecordsOf(0) = %v", recs)
	}
}

func TestReplaceFileValidation(t *testing.T) {
	db := newDB(t, 4)
	if _, err := db.ReplaceFile(9, nil); err == nil {
		t.Error("out-of-range file index should fail")
	}
	if _, err := db.ReplaceFile(0, map[uint64][]byte{1: []byte("x")}); err == nil {
		t.Error("record belonging to another file should fail")
	}
}

func TestRecordsOfEmptyFile(t *testing.T) {
	db := newDB(t, 4)
	recs, err := db.RecordsOf(2)
	if err != nil || len(recs) != 0 {
		t.Errorf("RecordsOf on empty file = %v, %v", recs, err)
	}
}

func TestAccountingConsistency(t *testing.T) {
	db := newDB(t, 16)
	for i := 0; i < 100; i++ {
		db.Put(uint64(i)*7919, make([]byte, 100+i))
	}
	if db.LogicalBytes() <= 0 {
		t.Error("logical bytes should be positive")
	}
	if db.AllocatedBytes() < db.LogicalBytes() {
		t.Error("allocated must be >= logical")
	}
	if db.FragmentationBytes() != db.AllocatedBytes()-db.LogicalBytes() {
		t.Error("fragmentation identity violated")
	}
}

func TestHeaderSerializationRoundTrip(t *testing.T) {
	f := func(hashes []uint64, sizes []uint16) bool {
		h := &header{}
		off := 0
		n := len(hashes)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			h.entries = append(h.entries, headerEntry{hash: hashes[i], off: off, length: int(sizes[i])})
			off += int(sizes[i])
		}
		parsed, err := parseHeader(h.serialize())
		if err != nil {
			return false
		}
		if len(parsed.entries) != len(h.entries) {
			return false
		}
		for i := range h.entries {
			if parsed.entries[i] != h.entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	for _, s := range []string{"a,b\n", "zz,1,2;bad\n", "1,zz,3\n", "1,2,zz\n"} {
		if _, err := parseHeader([]byte(s)); err == nil {
			t.Errorf("parseHeader(%q) should fail", s)
		}
	}
	if h, err := parseHeader([]byte("\n")); err != nil || len(h.entries) != 0 {
		t.Error("empty header should parse to zero entries")
	}
}

func BenchmarkGet(b *testing.B) {
	store := flashsim.NewFileStore(flashsim.NewDevice(flashsim.Params{}))
	db, err := New(store, Config{Files: 32})
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 500)
	for i := 0; i < 2500; i++ {
		if _, err := db.Put(uint64(i)*2654435761, rec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Get(uint64(i%2500) * 2654435761); err != nil {
			b.Fatal(err)
		}
	}
}

// Package resultdb implements the custom search-result database of
// Section 5.2.2 of the Pocket Cloudlets paper (Figure 13): search
// results stored once each in a small, fixed number of plain-text
// files on flash, keyed by the hash of their web address.
//
// Each result is assigned to one of N files by hash modulo N. A file
// begins with a header line of (hash, offset, length) triples locating
// every record in the file body; records are appended at the end and
// the header is augmented. The file count trades retrieval time
// against flash fragmentation — few files mean long headers that are
// slow to read and parse, many files mean allocation slack — and the
// paper's sweep (Figure 12) picks 32 as the knee. Retrieval cost is
// modeled against the flash device (file open, page reads) plus a CPU
// charge for parsing header entries.
package resultdb

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pocketcloudlets/internal/flashsim"
)

// DefaultFiles is the paper's chosen database file count.
const DefaultFiles = 32

// DefaultHeaderParseCost is the modeled CPU time to parse one header
// triple on the prototype-class device.
const DefaultHeaderParseCost = 5 * time.Microsecond

// Config parameterizes a database.
type Config struct {
	// Files is the number of database files (Figure 12 sweeps 1..256).
	Files int
	// Prefix names the files in the flash store: "<prefix><i>.db".
	Prefix string
	// HeaderParseCost is the CPU cost per header entry parsed during
	// retrieval. Zero selects DefaultHeaderParseCost.
	HeaderParseCost time.Duration
}

// DB is the on-flash result database.
type DB struct {
	store *flashsim.FileStore
	cfg   Config
	// names precomputes the file names so the retrieval path never
	// formats strings. The slice is interned across databases (see
	// fileNames): a million-user fleet holds one database per user and
	// they all name their files identically.
	names []string
	// cache holds the parsed header and a no-copy view of the body for
	// each file touched so far, so repeated retrievals (the cache-hit
	// serve path) parse and allocate nothing. It is a map keyed by file
	// index, populated lazily, because a typical per-user database
	// touches only a handful of its files — an eager per-file array
	// costs ~2 KB per user at the default 32 files. Entries are
	// invalidated by storeFile — the single funnel every database write
	// goes through — and the modeled latency is computed from the
	// recorded header length, so a cached retrieval charges exactly
	// what an uncached one would.
	cache map[int]*fileCache
}

// fileCache is one file's parsed state. body aliases the store's
// backing slice, which is safe because storeFile replaces the whole
// slice (never writes in place) and invalidates this entry first.
type fileCache struct {
	valid  bool
	exists bool
	hdr    header
	body   []byte
	hdrLen int // header line length including '\n', for latency
}

// New creates (or reopens) a database over the given flash store.
func New(store *flashsim.FileStore, cfg Config) (*DB, error) {
	if store == nil {
		return nil, fmt.Errorf("resultdb: store is required")
	}
	if cfg.Files <= 0 {
		return nil, fmt.Errorf("resultdb: file count must be positive, got %d", cfg.Files)
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "psdb-"
	}
	if cfg.HeaderParseCost <= 0 {
		cfg.HeaderParseCost = DefaultHeaderParseCost
	}
	db := &DB{store: store, cfg: cfg}
	db.names = fileNames(cfg.Prefix, cfg.Files)
	return db, nil
}

// nameTables interns the file-name slices shared by every database
// with the same prefix and file count — one table per configuration,
// not one per user.
var nameTables sync.Map // "prefix\x00files" -> []string

func fileNames(prefix string, files int) []string {
	key := fmt.Sprintf("%s\x00%d", prefix, files)
	if v, ok := nameTables.Load(key); ok {
		return v.([]string)
	}
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d.db", prefix, i)
	}
	v, _ := nameTables.LoadOrStore(key, names)
	return v.([]string)
}

// cacheEntry returns file i's cache slot, creating it on first touch.
func (db *DB) cacheEntry(i int) *fileCache {
	if fc, ok := db.cache[i]; ok {
		return fc
	}
	if db.cache == nil {
		db.cache = make(map[int]*fileCache, 4)
	}
	fc := &fileCache{}
	db.cache[i] = fc
	return fc
}

// Files returns the configured file count.
func (db *DB) Files() int { return db.cfg.Files }

// FileOf returns the file index a result hash is assigned to: the
// remainder of the hash divided by the file count (Section 5.2.2).
func (db *DB) FileOf(resultHash uint64) int {
	return int(resultHash % uint64(db.cfg.Files))
}

func (db *DB) fileName(i int) string { return db.names[i] }

// header is the parsed first line of a database file.
type header struct {
	entries []headerEntry
}

type headerEntry struct {
	hash        uint64
	off, length int
}

func (h *header) find(hash uint64) (headerEntry, bool) {
	for _, e := range h.entries {
		if e.hash == hash {
			return e, true
		}
	}
	return headerEntry{}, false
}

// serialize renders the header line: "hash,off,len;...\n" in hex.
func (h *header) serialize() []byte {
	var b bytes.Buffer
	for i, e := range h.entries {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%x,%x,%x", e.hash, e.off, e.length)
	}
	b.WriteByte('\n')
	return b.Bytes()
}

func parseHeader(line []byte) (*header, error) {
	h := &header{}
	s := strings.TrimSuffix(string(line), "\n")
	if s == "" {
		return h, nil
	}
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(part, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("resultdb: malformed header triple %q", part)
		}
		hash, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header hash: %v", err)
		}
		off, err := strconv.ParseInt(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header offset: %v", err)
		}
		length, err := strconv.ParseInt(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header length: %v", err)
		}
		h.entries = append(h.entries, headerEntry{hash: hash, off: int(off), length: int(length)})
	}
	return h, nil
}

// loadFile returns one database file's parsed header, raw body, and
// the modeled latency of reading the header portion (open + header
// pages + per-entry parse CPU). Body latency charging is left to the
// caller since most operations touch only one record. The parse is
// served from the per-file cache when valid; the latency formula is
// evaluated either way, so caching never changes modeled costs.
func (db *DB) loadFile(i int) (*header, []byte, time.Duration, error) {
	fc := db.cacheEntry(i)
	if !fc.valid {
		if err := db.fillCache(i); err != nil {
			return nil, nil, 0, err
		}
	}
	if !fc.exists {
		return &header{}, nil, db.store.Device().OpenCost(), nil
	}
	// Model: open the file, read the header pages, parse each entry.
	lat := db.store.Device().OpenCost() +
		db.store.Device().ReadCost(fc.hdrLen) +
		time.Duration(len(fc.hdr.entries))*db.cfg.HeaderParseCost
	return &fc.hdr, fc.body, lat, nil
}

// fillCache (re)parses file i into its cache slot.
func (db *DB) fillCache(i int) error {
	fc := db.cacheEntry(i)
	name := db.fileName(i)
	data, ok := db.store.PeekRef(name)
	if !ok {
		*fc = fileCache{valid: true}
		return nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return fmt.Errorf("resultdb: file %q has no header line", name)
	}
	h, err := parseHeader(data[:nl+1])
	if err != nil {
		return err
	}
	*fc = fileCache{valid: true, exists: true, hdr: *h, body: data[nl+1:], hdrLen: nl + 1}
	return nil
}

// Put stores a record under its result hash, appending it to its file
// and augmenting the header. Storing an existing hash again is a no-op
// (results are shared across queries and stored once — the paper's
// factor-of-8 storage saving). It returns the modeled flash latency.
func (db *DB) Put(resultHash uint64, record []byte) (time.Duration, error) {
	i := db.FileOf(resultHash)
	h, body, lat, err := db.loadFile(i)
	if err != nil {
		return 0, err
	}
	if _, exists := h.find(resultHash); exists {
		return lat, nil
	}
	// Build the new header and body in fresh slices: h and body may
	// alias the file cache and the store's backing array.
	h2 := header{entries: make([]headerEntry, 0, len(h.entries)+1)}
	h2.entries = append(append(h2.entries, h.entries...),
		headerEntry{hash: resultHash, off: len(body), length: len(record)})
	newBody := make([]byte, 0, len(body)+len(record))
	newBody = append(append(newBody, body...), record...)
	// The header line changes size, so it is rewritten in place
	// (charged as a flash rewrite); the record itself is an append.
	hdr := h2.serialize()
	lat += db.store.Device().RewriteCost(len(hdr)) + db.store.Device().WriteCost(len(record))
	db.storeFile(i, hdr, newBody)
	return lat, nil
}

// storeFile writes the serialized file content without charging
// additional device cost (costs are charged explicitly by callers).
// It is the single funnel every database write goes through (Put,
// ReplaceFile, and Delete via ReplaceFile), so invalidating the file
// cache here keeps cached views consistent.
func (db *DB) storeFile(i int, hdr, body []byte) {
	if fc, ok := db.cache[i]; ok {
		*fc = fileCache{}
	}
	content := make([]byte, 0, len(hdr)+len(body))
	content = append(content, hdr...)
	content = append(content, body...)
	db.store.ReplaceSilently(db.fileName(i), content)
}

// Get retrieves the record stored under the result hash, with the
// modeled latency: open + header read + header parse + record pages.
// The returned slice is a copy; use GetView on paths that must not
// allocate.
func (db *DB) Get(resultHash uint64) ([]byte, time.Duration, error) {
	rec, lat, err := db.GetView(resultHash)
	if err != nil {
		return nil, lat, err
	}
	return append([]byte(nil), rec...), lat, nil
}

// GetView is Get without the copy: the returned slice is a read-only
// view into the database's cached file body and is valid only until
// the next write to the record's file. Callers must not modify or
// retain it.
func (db *DB) GetView(resultHash uint64) ([]byte, time.Duration, error) {
	i := db.FileOf(resultHash)
	h, body, lat, err := db.loadFile(i)
	if err != nil {
		return nil, 0, err
	}
	e, ok := h.find(resultHash)
	if !ok {
		return nil, lat, fmt.Errorf("resultdb: result %x not found in file %d", resultHash, i)
	}
	if e.off < 0 || e.off+e.length > len(body) {
		return nil, lat, fmt.Errorf("resultdb: corrupt header entry for %x", resultHash)
	}
	lat += db.store.Device().ReadCost(e.length)
	return body[e.off : e.off+e.length], lat, nil
}

// Contains reports whether a record exists, without charging latency
// (existence is known from the DRAM hash table in the real system).
func (db *DB) Contains(resultHash uint64) bool {
	h, _, ok, err := db.peekFile(db.FileOf(resultHash))
	if err != nil || !ok {
		return false
	}
	_, found := h.find(resultHash)
	return found
}

// peekFile returns a file's cached parse without device-cost
// accounting. ok reports whether the file exists.
func (db *DB) peekFile(i int) (h *header, body []byte, ok bool, err error) {
	fc := db.cacheEntry(i)
	if !fc.valid {
		if err := db.fillCache(i); err != nil {
			return nil, nil, false, err
		}
	}
	if !fc.exists {
		return nil, nil, false, nil
	}
	return &fc.hdr, fc.body, true, nil
}

// Hashes returns every stored result hash in ascending order.
func (db *DB) Hashes() []uint64 {
	var out []uint64
	for i := 0; i < db.cfg.Files; i++ {
		h, _, ok, err := db.peekFile(i)
		if err != nil || !ok {
			continue
		}
		for _, e := range h.entries {
			out = append(out, e.hash)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	n := 0
	for i := 0; i < db.cfg.Files; i++ {
		if h, _, ok, err := db.peekFile(i); err == nil && ok {
			n += len(h.entries)
		}
	}
	return n
}

// ReplaceFile atomically replaces one database file's full record set
// — the patch-application primitive of the Section 5.4 update cycle.
// It returns the modeled flash latency of rewriting the file.
func (db *DB) ReplaceFile(i int, records map[uint64][]byte) (time.Duration, error) {
	if i < 0 || i >= db.cfg.Files {
		return 0, fmt.Errorf("resultdb: file index %d out of range [0, %d)", i, db.cfg.Files)
	}
	h := &header{}
	var body []byte
	hashes := make([]uint64, 0, len(records))
	for hash := range records {
		if db.FileOf(hash) != i {
			return 0, fmt.Errorf("resultdb: record %x does not belong in file %d", hash, i)
		}
		hashes = append(hashes, hash)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	for _, hash := range hashes {
		rec := records[hash]
		h.entries = append(h.entries, headerEntry{hash: hash, off: len(body), length: len(rec)})
		body = append(body, rec...)
	}
	hdr := h.serialize()
	lat := db.store.Device().OpenCost() + db.store.Device().RewriteCost(len(hdr)+len(body))
	db.storeFile(i, hdr, body)
	return lat, nil
}

// Delete removes the record stored under resultHash, rewriting its
// database file without it. It reports whether the record existed and
// the modeled flash latency of the rewrite (zero when absent). The
// fleet layer uses this to reclaim personal-cache flash under a
// storage budget.
func (db *DB) Delete(resultHash uint64) (time.Duration, bool, error) {
	f := db.FileOf(resultHash)
	recs, err := db.RecordsOf(f)
	if err != nil {
		return 0, false, err
	}
	if _, ok := recs[resultHash]; !ok {
		return 0, false, nil
	}
	delete(recs, resultHash)
	lat, err := db.ReplaceFile(f, recs)
	if err != nil {
		return 0, false, err
	}
	return lat, true, nil
}

// RecordsOf returns the records of one file keyed by hash — the
// server-side read when computing patches.
func (db *DB) RecordsOf(i int) (map[uint64][]byte, error) {
	out := make(map[uint64][]byte)
	h, body, ok, err := db.peekFile(i)
	if err != nil {
		return nil, err
	}
	if !ok {
		return out, nil
	}
	for _, e := range h.entries {
		if e.off < 0 || e.off+e.length > len(body) {
			return nil, fmt.Errorf("resultdb: corrupt entry %x in file %d", e.hash, i)
		}
		out[e.hash] = append([]byte(nil), body[e.off:e.off+e.length]...)
	}
	return out, nil
}

// LogicalBytes is the total size of the database files.
func (db *DB) LogicalBytes() int64 {
	var n int64
	for i := 0; i < db.cfg.Files; i++ {
		if sz, err := db.store.Size(db.fileName(i)); err == nil {
			n += int64(sz)
		}
	}
	return n
}

// AllocatedBytes is the flash space the database occupies including
// allocation slack.
func (db *DB) AllocatedBytes() int64 {
	var n int64
	for i := 0; i < db.cfg.Files; i++ {
		if sz, err := db.store.Size(db.fileName(i)); err == nil {
			n += db.store.Device().AllocatedBytes(sz)
		}
	}
	return n
}

// FragmentationBytes is the allocation slack of the database — the
// quantity that grows with the file count in the Figure 12 tradeoff.
func (db *DB) FragmentationBytes() int64 {
	return db.AllocatedBytes() - db.LogicalBytes()
}

// Package resultdb implements the custom search-result database of
// Section 5.2.2 of the Pocket Cloudlets paper (Figure 13): search
// results stored once each in a small, fixed number of plain-text
// files on flash, keyed by the hash of their web address.
//
// Each result is assigned to one of N files by hash modulo N. A file
// begins with a header line of (hash, offset, length) triples locating
// every record in the file body; records are appended at the end and
// the header is augmented. The file count trades retrieval time
// against flash fragmentation — few files mean long headers that are
// slow to read and parse, many files mean allocation slack — and the
// paper's sweep (Figure 12) picks 32 as the knee. Retrieval cost is
// modeled against the flash device (file open, page reads) plus a CPU
// charge for parsing header entries.
package resultdb

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pocketcloudlets/internal/flashsim"
)

// DefaultFiles is the paper's chosen database file count.
const DefaultFiles = 32

// DefaultHeaderParseCost is the modeled CPU time to parse one header
// triple on the prototype-class device.
const DefaultHeaderParseCost = 5 * time.Microsecond

// Config parameterizes a database.
type Config struct {
	// Files is the number of database files (Figure 12 sweeps 1..256).
	Files int
	// Prefix names the files in the flash store: "<prefix><i>.db".
	Prefix string
	// HeaderParseCost is the CPU cost per header entry parsed during
	// retrieval. Zero selects DefaultHeaderParseCost.
	HeaderParseCost time.Duration
}

// DB is the on-flash result database.
type DB struct {
	store *flashsim.FileStore
	cfg   Config
}

// New creates (or reopens) a database over the given flash store.
func New(store *flashsim.FileStore, cfg Config) (*DB, error) {
	if store == nil {
		return nil, fmt.Errorf("resultdb: store is required")
	}
	if cfg.Files <= 0 {
		return nil, fmt.Errorf("resultdb: file count must be positive, got %d", cfg.Files)
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "psdb-"
	}
	if cfg.HeaderParseCost <= 0 {
		cfg.HeaderParseCost = DefaultHeaderParseCost
	}
	return &DB{store: store, cfg: cfg}, nil
}

// Files returns the configured file count.
func (db *DB) Files() int { return db.cfg.Files }

// FileOf returns the file index a result hash is assigned to: the
// remainder of the hash divided by the file count (Section 5.2.2).
func (db *DB) FileOf(resultHash uint64) int {
	return int(resultHash % uint64(db.cfg.Files))
}

func (db *DB) fileName(i int) string {
	return fmt.Sprintf("%s%d.db", db.cfg.Prefix, i)
}

// header is the parsed first line of a database file.
type header struct {
	entries []headerEntry
}

type headerEntry struct {
	hash        uint64
	off, length int
}

func (h *header) find(hash uint64) (headerEntry, bool) {
	for _, e := range h.entries {
		if e.hash == hash {
			return e, true
		}
	}
	return headerEntry{}, false
}

// serialize renders the header line: "hash,off,len;...\n" in hex.
func (h *header) serialize() []byte {
	var b bytes.Buffer
	for i, e := range h.entries {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%x,%x,%x", e.hash, e.off, e.length)
	}
	b.WriteByte('\n')
	return b.Bytes()
}

func parseHeader(line []byte) (*header, error) {
	h := &header{}
	s := strings.TrimSuffix(string(line), "\n")
	if s == "" {
		return h, nil
	}
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(part, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("resultdb: malformed header triple %q", part)
		}
		hash, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header hash: %v", err)
		}
		off, err := strconv.ParseInt(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header offset: %v", err)
		}
		length, err := strconv.ParseInt(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("resultdb: bad header length: %v", err)
		}
		h.entries = append(h.entries, headerEntry{hash: hash, off: int(off), length: int(length)})
	}
	return h, nil
}

// loadFile reads and parses one database file, returning the header,
// the raw body, and the modeled latency of reading the header portion
// (open + header pages + per-entry parse CPU). bodyLatency charging is
// left to the caller since most operations touch only one record.
func (db *DB) loadFile(i int) (*header, []byte, time.Duration, error) {
	name := db.fileName(i)
	data, ok := db.store.Peek(name)
	if !ok {
		return &header{}, nil, db.store.Device().OpenCost(), nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, 0, fmt.Errorf("resultdb: file %q has no header line", name)
	}
	h, err := parseHeader(data[:nl+1])
	if err != nil {
		return nil, nil, 0, err
	}
	// Model: open the file, read the header pages, parse each entry.
	lat := db.store.Device().OpenCost() +
		db.store.Device().ReadCost(nl+1) +
		time.Duration(len(h.entries))*db.cfg.HeaderParseCost
	return h, data[nl+1:], lat, nil
}

// Put stores a record under its result hash, appending it to its file
// and augmenting the header. Storing an existing hash again is a no-op
// (results are shared across queries and stored once — the paper's
// factor-of-8 storage saving). It returns the modeled flash latency.
func (db *DB) Put(resultHash uint64, record []byte) (time.Duration, error) {
	i := db.FileOf(resultHash)
	h, body, lat, err := db.loadFile(i)
	if err != nil {
		return 0, err
	}
	if _, exists := h.find(resultHash); exists {
		return lat, nil
	}
	h.entries = append(h.entries, headerEntry{hash: resultHash, off: len(body), length: len(record)})
	newBody := append(body, record...)
	// The header line changes size, so it is rewritten in place
	// (charged as a flash rewrite); the record itself is an append.
	hdr := h.serialize()
	lat += db.store.Device().RewriteCost(len(hdr)) + db.store.Device().WriteCost(len(record))
	db.storeFile(i, hdr, newBody)
	return lat, nil
}

// storeFile writes the serialized file content without charging
// additional device cost (costs are charged explicitly by callers).
func (db *DB) storeFile(i int, hdr, body []byte) {
	content := make([]byte, 0, len(hdr)+len(body))
	content = append(content, hdr...)
	content = append(content, body...)
	db.store.ReplaceSilently(db.fileName(i), content)
}

// Get retrieves the record stored under the result hash, with the
// modeled latency: open + header read + header parse + record pages.
func (db *DB) Get(resultHash uint64) ([]byte, time.Duration, error) {
	i := db.FileOf(resultHash)
	h, body, lat, err := db.loadFile(i)
	if err != nil {
		return nil, 0, err
	}
	e, ok := h.find(resultHash)
	if !ok {
		return nil, lat, fmt.Errorf("resultdb: result %x not found in file %d", resultHash, i)
	}
	if e.off < 0 || e.off+e.length > len(body) {
		return nil, lat, fmt.Errorf("resultdb: corrupt header entry for %x", resultHash)
	}
	lat += db.store.Device().ReadCost(e.length)
	return append([]byte(nil), body[e.off:e.off+e.length]...), lat, nil
}

// Contains reports whether a record exists, without charging latency
// (existence is known from the DRAM hash table in the real system).
func (db *DB) Contains(resultHash uint64) bool {
	name := db.fileName(db.FileOf(resultHash))
	if !db.store.Exists(name) {
		return false
	}
	h, _, err := db.peekHeader(name)
	if err != nil {
		return false
	}
	_, ok := h.find(resultHash)
	return ok
}

// peekHeader parses a file's header without device-cost accounting.
func (db *DB) peekHeader(name string) (*header, []byte, error) {
	data, ok := db.store.Peek(name)
	if !ok {
		return nil, nil, &flashsim.ErrNotExist{Name: name}
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, fmt.Errorf("resultdb: file %q has no header line", name)
	}
	h, err := parseHeader(data[:nl+1])
	return h, data[nl+1:], err
}

// Hashes returns every stored result hash in ascending order.
func (db *DB) Hashes() []uint64 {
	var out []uint64
	for i := 0; i < db.cfg.Files; i++ {
		name := db.fileName(i)
		if !db.store.Exists(name) {
			continue
		}
		h, _, err := db.peekHeader(name)
		if err != nil {
			continue
		}
		for _, e := range h.entries {
			out = append(out, e.hash)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	n := 0
	for i := 0; i < db.cfg.Files; i++ {
		name := db.fileName(i)
		if !db.store.Exists(name) {
			continue
		}
		if h, _, err := db.peekHeader(name); err == nil {
			n += len(h.entries)
		}
	}
	return n
}

// ReplaceFile atomically replaces one database file's full record set
// — the patch-application primitive of the Section 5.4 update cycle.
// It returns the modeled flash latency of rewriting the file.
func (db *DB) ReplaceFile(i int, records map[uint64][]byte) (time.Duration, error) {
	if i < 0 || i >= db.cfg.Files {
		return 0, fmt.Errorf("resultdb: file index %d out of range [0, %d)", i, db.cfg.Files)
	}
	h := &header{}
	var body []byte
	hashes := make([]uint64, 0, len(records))
	for hash := range records {
		if db.FileOf(hash) != i {
			return 0, fmt.Errorf("resultdb: record %x does not belong in file %d", hash, i)
		}
		hashes = append(hashes, hash)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	for _, hash := range hashes {
		rec := records[hash]
		h.entries = append(h.entries, headerEntry{hash: hash, off: len(body), length: len(rec)})
		body = append(body, rec...)
	}
	hdr := h.serialize()
	lat := db.store.Device().OpenCost() + db.store.Device().RewriteCost(len(hdr)+len(body))
	db.storeFile(i, hdr, body)
	return lat, nil
}

// Delete removes the record stored under resultHash, rewriting its
// database file without it. It reports whether the record existed and
// the modeled flash latency of the rewrite (zero when absent). The
// fleet layer uses this to reclaim personal-cache flash under a
// storage budget.
func (db *DB) Delete(resultHash uint64) (time.Duration, bool, error) {
	f := db.FileOf(resultHash)
	recs, err := db.RecordsOf(f)
	if err != nil {
		return 0, false, err
	}
	if _, ok := recs[resultHash]; !ok {
		return 0, false, nil
	}
	delete(recs, resultHash)
	lat, err := db.ReplaceFile(f, recs)
	if err != nil {
		return 0, false, err
	}
	return lat, true, nil
}

// RecordsOf returns the records of one file keyed by hash — the
// server-side read when computing patches.
func (db *DB) RecordsOf(i int) (map[uint64][]byte, error) {
	name := db.fileName(i)
	out := make(map[uint64][]byte)
	if !db.store.Exists(name) {
		return out, nil
	}
	h, body, err := db.peekHeader(name)
	if err != nil {
		return nil, err
	}
	for _, e := range h.entries {
		if e.off < 0 || e.off+e.length > len(body) {
			return nil, fmt.Errorf("resultdb: corrupt entry %x in file %d", e.hash, i)
		}
		out[e.hash] = append([]byte(nil), body[e.off:e.off+e.length]...)
	}
	return out, nil
}

// LogicalBytes is the total size of the database files.
func (db *DB) LogicalBytes() int64 {
	var n int64
	for i := 0; i < db.cfg.Files; i++ {
		if sz, err := db.store.Size(db.fileName(i)); err == nil {
			n += int64(sz)
		}
	}
	return n
}

// AllocatedBytes is the flash space the database occupies including
// allocation slack.
func (db *DB) AllocatedBytes() int64 {
	var n int64
	for i := 0; i < db.cfg.Files; i++ {
		if sz, err := db.store.Size(db.fileName(i)); err == nil {
			n += db.store.Device().AllocatedBytes(sz)
		}
	}
	return n
}

// FragmentationBytes is the allocation slack of the database — the
// quantity that grows with the file count in the Figure 12 tradeoff.
func (db *DB) FragmentationBytes() int64 {
	return db.AllocatedBytes() - db.LogicalBytes()
}

// Package engine implements the cloud side of the PocketSearch system:
// a deterministic, procedurally generated universe of queries and
// search results standing in for the paper's m.bing.com corpus, and a
// search engine that resolves queries to ranked results and serves
// full result pages over the (simulated) network.
//
// The universe is procedural — queries, URLs, titles and snippets are
// derived arithmetically from identifiers — so month-scale logs with
// millions of entries can reference it through compact 32-bit pair IDs
// (see internal/searchlog) without materializing strings.
//
// Structure, chosen to reproduce the sharing patterns of Sections 4
// and 5 of the paper:
//
//   - Navigational pairs come in blocks of eight consecutive
//     popularity ranks covering four alias queries ("site42",
//     "site42.com", "www.site42", "www.site42.com") and two results on
//     the same site (the front page and a section page). The four
//     primary pairs outrank the four secondary ones. The 2:1
//     query-to-result aliasing in the popular head reproduces the
//     paper's observation that popular pages are reached through many
//     query variants (6000 queries vs 4000 results for the same
//     volume; the "boa" → bankofamerica effect) while keeping every
//     navigational query a substring of its clicked URL, which is
//     exactly the paper's navigational classifier.
//   - Non-navigational queries have click lists whose length falls
//     with popularity (6, 4, 3, 2, then 1 result per query), matching
//     the paper's observation that popular queries such as
//     "michael jackson" accumulate several popular clicked results
//     (Table 3). This distribution is what makes two results per hash
//     table entry the footprint-optimal choice in Figure 11.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pocketcloudlets/internal/searchlog"
)

// Segment describes one band of non-navigational queries: Queries
// consecutive queries, each with ResultsPerQuery clicked results.
type Segment struct {
	Queries         int
	ResultsPerQuery int
}

// Config sizes the universe.
type Config struct {
	// NavPairs is the number of navigational (query, result) pairs,
	// ranked 0.. by community popularity. Must be a multiple of 8
	// (the navigational block size).
	NavPairs int
	// NonNavPairs is the number of non-navigational pairs.
	NonNavPairs int
	// NonNavSegments is the head structure of the non-navigational
	// space; the remaining pairs form a tail of one-result queries.
	// Nil selects DefaultConfig's segments.
	NonNavSegments []Segment
}

// DefaultConfig returns the universe dimensions used throughout the
// evaluation: 160k navigational pairs (40k results, 80k queries) and
// 1M non-navigational pairs whose head queries have 6/4/3/2 results.
func DefaultConfig() Config {
	return Config{
		NavPairs:    160_000,
		NonNavPairs: 1_000_000,
		NonNavSegments: []Segment{
			{Queries: 200, ResultsPerQuery: 6},
			{Queries: 800, ResultsPerQuery: 4},
			{Queries: 4000, ResultsPerQuery: 3},
			{Queries: 25000, ResultsPerQuery: 2},
		},
	}
}

// nnSegment is a resolved non-navigational segment with offsets.
type nnSegment struct {
	perQuery   int
	queryStart int // first query index of the segment
	pairStart  int // first non-nav pair rank of the segment
	queries    int
}

// Universe is the procedural query/result world. It implements
// searchlog.PairMeta and searchlog.PairResolver.
type Universe struct {
	cfg        Config
	navBlocks  int // number of 6-pair navigational blocks
	navResults int // number of navigational results (2 per block)
	navQueries int // number of navigational query strings (3 per block)
	segments   []nnSegment
	nnQueries  int // total non-navigational query strings
}

// NewUniverse validates the configuration and builds the universe.
func NewUniverse(cfg Config) (*Universe, error) {
	if cfg.NavPairs <= 0 || cfg.NonNavPairs <= 0 {
		return nil, fmt.Errorf("engine: pair counts must be positive: %+v", cfg)
	}
	if cfg.NavPairs%8 != 0 {
		return nil, fmt.Errorf("engine: NavPairs (%d) must be a multiple of 8", cfg.NavPairs)
	}
	if cfg.NonNavSegments == nil {
		cfg.NonNavSegments = DefaultConfig().NonNavSegments
	}
	u := &Universe{cfg: cfg}
	u.navBlocks = cfg.NavPairs / 8
	u.navResults = 2 * u.navBlocks
	u.navQueries = 4 * u.navBlocks
	pair, query := 0, 0
	for i, s := range cfg.NonNavSegments {
		if s.Queries <= 0 || s.ResultsPerQuery <= 0 {
			return nil, fmt.Errorf("engine: segment %d invalid: %+v", i, s)
		}
		u.segments = append(u.segments, nnSegment{
			perQuery:   s.ResultsPerQuery,
			queryStart: query,
			pairStart:  pair,
			queries:    s.Queries,
		})
		pair += s.Queries * s.ResultsPerQuery
		query += s.Queries
	}
	if pair > cfg.NonNavPairs {
		return nil, fmt.Errorf("engine: segments need %d pairs but NonNavPairs is %d", pair, cfg.NonNavPairs)
	}
	// Tail: one result per query.
	tail := cfg.NonNavPairs - pair
	u.segments = append(u.segments, nnSegment{
		perQuery:   1,
		queryStart: query,
		pairStart:  pair,
		queries:    tail,
	})
	u.nnQueries = query + tail
	return u, nil
}

// MustUniverse is NewUniverse for known-good configurations.
func MustUniverse(cfg Config) *Universe {
	u, err := NewUniverse(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the universe configuration.
func (u *Universe) Config() Config { return u.cfg }

// NumPairs implements searchlog.PairMeta.
func (u *Universe) NumPairs() int { return u.cfg.NavPairs + u.cfg.NonNavPairs }

// NumResults reports the number of distinct search results.
func (u *Universe) NumResults() int { return u.navResults + u.cfg.NonNavPairs }

// NumQueries reports the number of distinct query strings.
func (u *Universe) NumQueries() int { return u.navQueries + u.nnQueries }

// IsNavPair reports whether the pair is in the navigational space.
func (u *Universe) IsNavPair(p searchlog.PairID) bool { return int(p) < u.cfg.NavPairs }

// Rank returns the popularity rank of a pair within its own space
// (navigational ranks and non-navigational ranks are separate scales).
func (u *Universe) Rank(p searchlog.PairID) int {
	if u.IsNavPair(p) {
		return int(p)
	}
	return int(p) - u.cfg.NavPairs
}

// NavPair returns the pair at the given navigational popularity rank.
func (u *Universe) NavPair(rank int) searchlog.PairID { return searchlog.PairID(rank) }

// NonNavPair returns the pair at the given non-navigational rank.
func (u *Universe) NonNavPair(rank int) searchlog.PairID {
	return searchlog.PairID(u.cfg.NavPairs + rank)
}

// nnSegmentFor locates the segment containing the non-nav pair rank.
func (u *Universe) nnSegmentFor(rank int) nnSegment {
	i := sort.Search(len(u.segments), func(i int) bool {
		s := u.segments[i]
		return rank < s.pairStart+s.queries*s.perQuery
	})
	return u.segments[i]
}

// nnSegmentForQuery locates the segment containing a non-nav query index.
func (u *Universe) nnSegmentForQuery(qidx int) nnSegment {
	i := sort.Search(len(u.segments), func(i int) bool {
		s := u.segments[i]
		return qidx < s.queryStart+s.queries
	})
	return u.segments[i]
}

// QueryOf implements searchlog.PairMeta.
func (u *Universe) QueryOf(p searchlog.PairID) searchlog.QueryID {
	if u.IsNavPair(p) {
		i := int(p)
		// Block of eight: four primary pairs then four secondary
		// pairs, over the block's four alias queries.
		return searchlog.QueryID(4*(i/8) + i%4)
	}
	j := int(p) - u.cfg.NavPairs
	s := u.nnSegmentFor(j)
	qidx := s.queryStart + (j-s.pairStart)/s.perQuery
	return searchlog.QueryID(u.navQueries + qidx)
}

// ResultOf implements searchlog.PairMeta.
func (u *Universe) ResultOf(p searchlog.PairID) searchlog.ResultID {
	if u.IsNavPair(p) {
		i := int(p)
		// Primary pairs (block offsets 0-3) click the site front page
		// (even result); secondary pairs (4-7) click its section page.
		return searchlog.ResultID(2*(i/8) + (i%8)/4)
	}
	// Every non-navigational pair clicks its own result.
	return searchlog.ResultID(u.navResults + (int(p) - u.cfg.NavPairs))
}

// Navigational implements searchlog.PairMeta: true when the query
// string is a substring of the clicked URL, which by construction
// holds exactly for the navigational pair space.
func (u *Universe) Navigational(p searchlog.PairID) bool {
	return strings.Contains(u.ResultURL(u.ResultOf(p)), u.QueryText(u.QueryOf(p)))
}

func b36(n int) string { return strconv.FormatInt(int64(n), 36) }

// QueryText implements searchlog.PairMeta.
func (u *Universe) QueryText(q searchlog.QueryID) string {
	if int(q) < u.navQueries {
		b := int(q) / 4
		switch int(q) % 4 {
		case 0:
			return "site" + b36(b)
		case 1:
			return "site" + b36(b) + ".com"
		case 2:
			return "www.site" + b36(b)
		default:
			return "www.site" + b36(b) + ".com"
		}
	}
	qidx := int(q) - u.navQueries
	return "q" + b36(qidx) + " facts"
}

// ResultURL implements searchlog.PairMeta.
func (u *Universe) ResultURL(r searchlog.ResultID) string {
	if int(r) < u.navResults {
		b := int(r) / 2
		if int(r)%2 == 0 {
			return "www.site" + b36(b) + ".com/"
		}
		return "www.site" + b36(b) + ".com/videos"
	}
	j := int(r) - u.navResults
	return "www.info" + b36(j) + ".net/article/" + b36(j%97)
}

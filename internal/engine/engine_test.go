package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *Universe {
	t.Helper()
	u, err := NewUniverse(Config{
		NavPairs:    9000,
		NonNavPairs: 50000,
		NonNavSegments: []Segment{
			{Queries: 20, ResultsPerQuery: 6},
			{Queries: 80, ResultsPerQuery: 4},
			{Queries: 400, ResultsPerQuery: 3},
			{Queries: 2500, ResultsPerQuery: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewUniverse(Config{NavPairs: 0, NonNavPairs: 10}); err == nil {
		t.Error("zero NavPairs should fail")
	}
	if _, err := NewUniverse(Config{NavPairs: 7, NonNavPairs: 10}); err == nil {
		t.Error("NavPairs not a multiple of 8 should fail")
	}
	if _, err := NewUniverse(Config{NavPairs: 8, NonNavPairs: 10,
		NonNavSegments: []Segment{{Queries: 100, ResultsPerQuery: 6}}}); err == nil {
		t.Error("segments exceeding NonNavPairs should fail")
	}
	if _, err := NewUniverse(Config{NavPairs: 8, NonNavPairs: 10,
		NonNavSegments: []Segment{{Queries: 0, ResultsPerQuery: 6}}}); err == nil {
		t.Error("empty segment should fail")
	}
	if _, err := NewUniverse(DefaultConfig()); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNavBlockStructure(t *testing.T) {
	u := testUniverse(t)
	// Block 0: pairs 0-7 over queries {site0, site0.com, www.site0,
	// www.site0.com} and results {front page, videos page}.
	for o := 0; o < 4; o++ {
		primary, secondary := u.NavPair(o), u.NavPair(o+4)
		if u.QueryOf(primary) != u.QueryOf(secondary) {
			t.Errorf("offset %d: primary and secondary pairs should share a query", o)
		}
		if u.ResultOf(primary) == u.ResultOf(secondary) {
			t.Errorf("offset %d: primary and secondary pairs should differ in result", o)
		}
	}
	// The three primaries share one result; the three secondaries the other.
	if u.ResultOf(u.NavPair(0)) != u.ResultOf(u.NavPair(1)) ||
		u.ResultOf(u.NavPair(1)) != u.ResultOf(u.NavPair(3)) {
		t.Error("primary pairs of a block should share the front-page result")
	}
	if u.ResultOf(u.NavPair(4)) != u.ResultOf(u.NavPair(7)) {
		t.Error("secondary pairs of a block should share the section result")
	}
	// Queries distinct within the block.
	seen := map[searchlog.QueryID]bool{}
	for o := 0; o < 4; o++ {
		q := u.QueryOf(u.NavPair(o))
		if seen[q] {
			t.Error("alias queries should be distinct")
		}
		seen[q] = true
	}
}

func TestNavAliasingRatio(t *testing.T) {
	// Three queries to two results per block: the paper's ~1.5:1
	// query-to-result aliasing in the navigational head.
	u := testUniverse(t)
	queries := map[searchlog.QueryID]bool{}
	results := map[searchlog.ResultID]bool{}
	for i := 0; i < 6000; i++ {
		p := u.NavPair(i)
		queries[u.QueryOf(p)] = true
		results[u.ResultOf(p)] = true
	}
	ratio := float64(len(queries)) / float64(len(results))
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("query:result ratio in nav head = %.2f, want ~2 (the paper needed 50%% more queries than results for equal volume)", ratio)
	}
}

func TestNonNavSegmentStructure(t *testing.T) {
	u := testUniverse(t)
	// First segment: 20 queries x 6 results.
	q := u.QueryOf(u.NonNavPair(0))
	pairs := u.PairsForQuery(q)
	if len(pairs) != 6 {
		t.Fatalf("top non-nav query has %d results, want 6", len(pairs))
	}
	for i, p := range pairs {
		if u.QueryOf(p) != q {
			t.Errorf("pair %d of query's list maps to a different query", i)
		}
	}
	// Pair 120 starts the 4-results segment.
	q4 := u.QueryOf(u.NonNavPair(120))
	if got := len(u.PairsForQuery(q4)); got != 4 {
		t.Errorf("segment-2 query has %d results, want 4", got)
	}
	// Tail queries have one result.
	tailStart := 20*6 + 80*4 + 400*3 + 2500*2
	qt := u.QueryOf(u.NonNavPair(tailStart))
	if got := len(u.PairsForQuery(qt)); got != 1 {
		t.Errorf("tail query has %d results, want 1", got)
	}
	// The last pair resolves cleanly.
	last := u.NonNavPair(u.Config().NonNavPairs - 1)
	if int(u.QueryOf(last)) >= u.NumQueries() {
		t.Error("last pair's query out of range")
	}
}

func TestNavigationalClassifierMatchesSpaces(t *testing.T) {
	u := testUniverse(t)
	for _, rank := range []int{0, 1, 2, 3, 4, 5, 100, 8999} {
		p := u.NavPair(rank)
		if !u.Navigational(p) {
			t.Errorf("nav pair rank %d not classified navigational (query %q, url %q)",
				rank, u.QueryText(u.QueryOf(p)), u.ResultURL(u.ResultOf(p)))
		}
	}
	for _, rank := range []int{0, 1, 9999, 49999} {
		p := u.NonNavPair(rank)
		if u.Navigational(p) {
			t.Errorf("non-nav pair rank %d classified navigational", rank)
		}
	}
}

func TestResolvePairRoundTripProperty(t *testing.T) {
	u := testUniverse(t)
	f := func(raw uint32) bool {
		p := searchlog.PairID(int(raw) % u.NumPairs())
		q := u.QueryText(u.QueryOf(p))
		url := u.ResultURL(u.ResultOf(p))
		got, ok := u.ResolvePair(q, url)
		return ok && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestResolveRejectsGarbage(t *testing.T) {
	u := testUniverse(t)
	for _, q := range []string{"", "zzz", "site", "siteQQQ", "www.site", "q facts", "qZZ~ facts", "site3.org"} {
		if _, ok := u.ResolveQuery(q); ok {
			t.Errorf("ResolveQuery(%q) should fail", q)
		}
	}
	if _, ok := u.ResolvePair("site0", "www.wrong.com/"); ok {
		t.Error("ResolvePair with mismatched URL should fail")
	}
}

func TestQueryTextsUnique(t *testing.T) {
	u := testUniverse(t)
	seen := map[string]searchlog.QueryID{}
	for q := 0; q < u.NumQueries(); q += 97 {
		text := u.QueryText(searchlog.QueryID(q))
		if prev, dup := seen[text]; dup {
			t.Fatalf("query text %q duplicated for IDs %d and %d", text, prev, q)
		}
		seen[text] = searchlog.QueryID(q)
	}
}

func TestRecordSizeNear500Bytes(t *testing.T) {
	u := testUniverse(t)
	for _, rid := range []int{0, 1, 500, u.NumResults() - 1} {
		rec := u.Result(searchlog.ResultID(rid)).Record()
		if len(rec) < 420 || len(rec) > 600 {
			t.Errorf("record for result %d is %d bytes, want ~500", rid, len(rec))
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	u := testUniverse(t)
	orig := u.Result(42)
	parsed, err := ParseRecord(orig.Record())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Title != orig.Title || parsed.URL != orig.URL ||
		parsed.DisplayURL != orig.DisplayURL || parsed.Snippet != orig.Snippet {
		t.Errorf("record round trip mismatch: %+v vs %+v", parsed, orig)
	}
	if _, err := ParseRecord([]byte("no separators")); err == nil {
		t.Error("malformed record should fail to parse")
	}
}

func TestPageBytesNear100KB(t *testing.T) {
	u := testUniverse(t)
	for rid := 0; rid < 100; rid++ {
		pb := u.PageBytes(searchlog.ResultID(rid))
		if pb < 90_000 || pb > 115_000 {
			t.Errorf("page bytes for %d = %d, want ~100 KB", rid, pb)
		}
	}
}

func TestSearchReturnsRankedResults(t *testing.T) {
	u := testUniverse(t)
	e := New(u)
	q := u.QueryText(u.QueryOf(u.NonNavPair(0)))
	resp, ok := e.Search(q)
	if !ok {
		t.Fatalf("Search(%q) failed", q)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("top non-nav query returned %d results, want 6", len(resp.Results))
	}
	seen := map[string]bool{}
	for _, r := range resp.Results {
		if seen[r.URL] {
			t.Errorf("duplicate result URL %q", r.URL)
		}
		seen[r.URL] = true
	}
	if resp.PageBytes < 90_000 {
		t.Errorf("page bytes = %d, want ~100 KB", resp.PageBytes)
	}
	if _, ok := e.Search("not a real query"); ok {
		t.Error("garbage query should not resolve")
	}
}

func TestNavQueryAliasesReachSameURL(t *testing.T) {
	u := testUniverse(t)
	e := New(u)
	// "site0", "site0.com", "www.site0" and "www.site0.com" are
	// aliases for the same front page — the paper's "boa" /
	// "bank of america" effect.
	var urls []string
	for _, q := range []string{"site0", "site0.com", "www.site0", "www.site0.com"} {
		resp, ok := e.Search(q)
		if !ok {
			t.Fatalf("Search(%q) failed", q)
		}
		urls = append(urls, resp.Results[0].URL)
	}
	for i := 1; i < len(urls); i++ {
		if urls[i] != urls[0] {
			t.Errorf("aliases reached different URLs: %v", urls)
		}
	}
}

func TestSnippetDeterministic(t *testing.T) {
	u := testUniverse(t)
	if u.Result(7).Snippet != u.Result(7).Snippet {
		t.Error("snippet not deterministic")
	}
	if strings.ContainsRune(u.Result(7).Snippet, recordSep) {
		t.Error("snippet must not contain the record separator")
	}
}

func TestResolveURLRoundTripProperty(t *testing.T) {
	u := testUniverse(t)
	f := func(raw uint32) bool {
		rid := searchlog.ResultID(int(raw) % u.NumResults())
		got, ok := u.ResolveURL(u.ResultURL(rid))
		return ok && got == rid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestResolveURLRejectsGarbage(t *testing.T) {
	u := testUniverse(t)
	for _, url := range []string{"", "www.example.com", "www.site", "www.siteZZ~.com/", "www.site0.org/", "www.info.net", "www.info0.com/article/0"} {
		if _, ok := u.ResolveURL(url); ok {
			t.Errorf("ResolveURL(%q) should fail", url)
		}
	}
}

func TestPairsForQueryConsistentWithQueryOf(t *testing.T) {
	u := testUniverse(t)
	f := func(raw uint32) bool {
		q := searchlog.QueryID(int(raw) % u.NumQueries())
		for _, p := range u.PairsForQuery(q) {
			if u.QueryOf(p) != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

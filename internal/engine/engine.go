package engine

import (
	"strconv"
	"strings"

	"pocketcloudlets/internal/searchlog"
)

// PairsForQuery returns the pairs (and hence ranked results) the engine
// associates with a query, best-ranked first. Navigational queries have
// two results (front page, then section page); non-navigational queries
// have their segment's click-list length (6 down to 1).
func (u *Universe) PairsForQuery(q searchlog.QueryID) []searchlog.PairID {
	if int(q) < u.navQueries {
		b, form := int(q)/4, int(q)%4
		return []searchlog.PairID{
			searchlog.PairID(8*b + form),     // primary: front page
			searchlog.PairID(8*b + 4 + form), // secondary: section page
		}
	}
	qidx := int(q) - u.navQueries
	s := u.nnSegmentForQuery(qidx)
	first := s.pairStart + (qidx-s.queryStart)*s.perQuery
	pairs := make([]searchlog.PairID, s.perQuery)
	for i := range pairs {
		pairs[i] = u.NonNavPair(first + i)
	}
	return pairs
}

// ResolveQuery maps a query string back to its QueryID.
func (u *Universe) ResolveQuery(text string) (searchlog.QueryID, bool) {
	switch {
	case strings.HasPrefix(text, "www.site"):
		body := text[len("www.site"):]
		form := 2
		if strings.HasSuffix(body, ".com") {
			body = strings.TrimSuffix(body, ".com")
			form = 3
		}
		b, ok := parseB36(body)
		if !ok || b >= u.navBlocks {
			return 0, false
		}
		return searchlog.QueryID(4*b + form), true
	case strings.HasPrefix(text, "site"):
		body := text[len("site"):]
		form := 0
		if strings.HasSuffix(body, ".com") {
			body = strings.TrimSuffix(body, ".com")
			form = 1
		}
		b, ok := parseB36(body)
		if !ok || b >= u.navBlocks {
			return 0, false
		}
		return searchlog.QueryID(4*b + form), true
	case strings.HasPrefix(text, "q") && strings.HasSuffix(text, " facts"):
		qidx, ok := parseB36(text[1 : len(text)-len(" facts")])
		if !ok || qidx >= u.nnQueries {
			return 0, false
		}
		return searchlog.QueryID(u.navQueries + qidx), true
	}
	return 0, false
}

// ResolveURL maps a web address back to its result identifier.
func (u *Universe) ResolveURL(url string) (searchlog.ResultID, bool) {
	switch {
	case strings.HasPrefix(url, "www.site"):
		body := strings.TrimPrefix(url, "www.site")
		odd := false
		switch {
		case strings.HasSuffix(body, ".com/"):
			body = strings.TrimSuffix(body, ".com/")
		case strings.HasSuffix(body, ".com/videos"):
			body = strings.TrimSuffix(body, ".com/videos")
			odd = true
		default:
			return 0, false
		}
		b, ok := parseB36(body)
		if !ok || b >= u.navBlocks {
			return 0, false
		}
		rid := 2 * b
		if odd {
			rid++
		}
		return searchlog.ResultID(rid), true
	case strings.HasPrefix(url, "www.info"):
		rest := strings.TrimPrefix(url, "www.info")
		i := strings.Index(rest, ".net/article/")
		if i < 0 {
			return 0, false
		}
		j, ok := parseB36(rest[:i])
		if !ok || j >= u.cfg.NonNavPairs {
			return 0, false
		}
		rid := searchlog.ResultID(u.navResults + j)
		if u.ResultURL(rid) != url {
			return 0, false
		}
		return rid, true
	}
	return 0, false
}

// ResolvePair implements searchlog.PairResolver: it maps the string
// form (query, clicked URL) back to the pair identifier.
func (u *Universe) ResolvePair(query, url string) (searchlog.PairID, bool) {
	q, ok := u.ResolveQuery(query)
	if !ok {
		return 0, false
	}
	for _, p := range u.PairsForQuery(q) {
		if u.ResultURL(u.ResultOf(p)) == url {
			return p, true
		}
	}
	return 0, false
}

func parseB36(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 36, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return int(n), true
}

// Engine is the cloud search service: it resolves query strings to
// ranked, materialized results. Latency and energy of reaching it are
// modeled by the device/radio layer, not here.
type Engine struct {
	u *Universe
}

// New creates an engine over the given universe.
func New(u *Universe) *Engine { return &Engine{u: u} }

// Universe returns the engine's corpus.
func (e *Engine) Universe() *Universe { return e.u }

// SearchResponse is what the engine returns for a query.
type SearchResponse struct {
	Query   string
	Results []Result
	// PageBytes is the size of the rendered result page shipped to
	// the device (~100 KB).
	PageBytes int
}

// Search resolves a query string. Unknown queries return ok == false
// (the engine has no results; the device still paid for the round trip).
func (e *Engine) Search(query string) (SearchResponse, bool) {
	q, ok := e.u.ResolveQuery(query)
	if !ok {
		return SearchResponse{Query: query}, false
	}
	pairs := e.u.PairsForQuery(q)
	resp := SearchResponse{Query: query, Results: make([]Result, 0, len(pairs))}
	for _, p := range pairs {
		r := e.u.Result(e.u.ResultOf(p))
		resp.Results = append(resp.Results, r)
		if resp.PageBytes == 0 {
			resp.PageBytes = e.u.PageBytes(r.ID)
		}
	}
	return resp, true
}

// SearchBatch resolves a batch of query strings in one engine visit —
// the cloud half of the fleet's miss coalescing: concurrent cache
// misses that share one radio session also share one call into the
// engine. Element i of both slices is exactly what Search(queries[i])
// would have returned.
func (e *Engine) SearchBatch(queries []string) ([]SearchResponse, []bool) {
	resps := make([]SearchResponse, len(queries))
	found := make([]bool, len(queries))
	for i, q := range queries {
		resps[i], found[i] = e.Search(q)
	}
	return resps, found
}

package engine

import (
	"bytes"
	"fmt"
	"strings"

	"pocketcloudlets/internal/searchlog"
)

// This file materializes the human-readable side of the universe:
// titles, snippets and the ~500-byte serialized search-result records
// that the PocketSearch database stores (Section 5.2.2 measures the
// average record at 500 bytes: title, short description of the landing
// page, and the human-readable form of the hyperlink).

var lexicon = []string{
	"mobile", "service", "official", "community", "guide", "daily",
	"results", "network", "online", "photo", "music", "video", "news",
	"local", "review", "profile", "market", "travel", "health", "game",
	"forum", "store", "search", "weather", "sport", "finance", "radio",
}

// Result is a materialized search result: everything PocketSearch
// needs to render the same search experience as the engine.
type Result struct {
	ID         searchlog.ResultID
	URL        string
	Title      string
	Snippet    string
	DisplayURL string
}

// Result materializes the search result with the given ID.
func (u *Universe) Result(r searchlog.ResultID) Result {
	url := u.ResultURL(r)
	return Result{
		ID:         r,
		URL:        url,
		Title:      u.title(r),
		Snippet:    u.snippet(r),
		DisplayURL: strings.TrimSuffix(url, "/"),
	}
}

func (u *Universe) title(r searchlog.ResultID) string {
	i := int(r)
	w1 := lexicon[i%len(lexicon)]
	w2 := lexicon[(i/7+3)%len(lexicon)]
	if i < u.navResults {
		site := b36(i / 2)
		if i%2 == 0 {
			return fmt.Sprintf("Site %s — the %s %s portal", site, w1, w2)
		}
		return fmt.Sprintf("Site %s Videos — %s %s section", site, w1, w2)
	}
	return fmt.Sprintf("Info %s: %s %s reference", b36(i-u.navResults), w1, w2)
}

// snippet produces a deterministic ~400-character landing-page
// description so that records land near the paper's 500-byte average.
func (u *Universe) snippet(r searchlog.ResultID) string {
	var b strings.Builder
	i := int(r)
	for n := 0; b.Len() < 390; n++ {
		w := lexicon[(i*31+n*17+n*n)%len(lexicon)]
		if n == 0 {
			b.WriteString(strings.ToUpper(w[:1]))
			b.WriteString(w[1:])
			continue
		}
		b.WriteByte(' ')
		b.WriteString(w)
	}
	b.WriteByte('.')
	return b.String()
}

// recordSep separates fields inside a serialized record; it never
// appears in generated text.
const recordSep = '\x1f'

// Record serializes the result into the plain-text form stored in the
// custom database files.
func (r Result) Record() []byte {
	var b bytes.Buffer
	b.WriteString(r.Title)
	b.WriteByte(recordSep)
	b.WriteString(r.URL)
	b.WriteByte(recordSep)
	b.WriteString(r.DisplayURL)
	b.WriteByte(recordSep)
	b.WriteString(r.Snippet)
	return b.Bytes()
}

// ParseRecord deserializes a record produced by Record. The result ID
// is not part of the record (the database keys records by URL hash).
func ParseRecord(data []byte) (Result, error) {
	parts := bytes.Split(data, []byte{recordSep})
	if len(parts) != 4 {
		return Result{}, fmt.Errorf("engine: malformed record: %d fields, want 4", len(parts))
	}
	return Result{
		Title:      string(parts[0]),
		URL:        string(parts[1]),
		DisplayURL: string(parts[2]),
		Snippet:    string(parts[3]),
	}, nil
}

// PageBytes returns the size of the full search-result page for the
// result, as downloaded from the engine on a cache miss. The paper
// sizes a search result page at ~100 KB (Table 2).
func (u *Universe) PageBytes(r searchlog.ResultID) int {
	return 90_000 + int(r%21)*1000
}

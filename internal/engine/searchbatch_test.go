package engine

import (
	"reflect"
	"testing"
)

// TestSearchBatchMatchesSearch checks the batched entry point is
// element-wise identical to per-query Search — the property the fleet's
// miss coalescing relies on to keep outcomes byte-identical.
func TestSearchBatchMatchesSearch(t *testing.T) {
	u := testUniverse(t)
	e := New(u)
	queries := []string{
		u.QueryText(u.QueryOf(u.NavPair(0))),
		u.QueryText(u.QueryOf(u.NonNavPair(0))),
		"no such query",
		u.QueryText(u.QueryOf(u.NavPair(13))),
		"", // empty query
		u.QueryText(u.QueryOf(u.NonNavPair(7))),
	}
	resps, found := e.SearchBatch(queries)
	if len(resps) != len(queries) || len(found) != len(queries) {
		t.Fatalf("lengths %d/%d, want %d", len(resps), len(found), len(queries))
	}
	for i, q := range queries {
		wantResp, wantOK := e.Search(q)
		if found[i] != wantOK {
			t.Errorf("query %d found = %v, Search says %v", i, found[i], wantOK)
		}
		if !reflect.DeepEqual(resps[i], wantResp) {
			t.Errorf("query %d response diverges:\n  batch:  %+v\n  search: %+v", i, resps[i], wantResp)
		}
	}
	if r, f := e.SearchBatch(nil); len(r) != 0 || len(f) != 0 {
		t.Errorf("empty batch returned %d/%d elements", len(r), len(f))
	}
}

package updater

import (
	"testing"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/hashtable"
	"pocketcloudlets/internal/pocketsearch"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

func testUniverse(t testing.TB) *engine.Universe {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       608,
		NonNavPairs:    3000,
		NonNavSegments: []engine.Segment{{Queries: 100, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func contentFromPairs(u *engine.Universe, pairs []searchlog.PairID, vols []int) cachegen.Content {
	var entries []searchlog.Entry
	for i, p := range pairs {
		for v := 0; v < vols[i]; v++ {
			entries = append(entries, searchlog.Entry{At: time.Duration(len(entries)), Pair: p})
		}
	}
	tbl := searchlog.ExtractTriplets(entries)
	return cachegen.Generate(tbl, u, len(tbl.Triplets))
}

func pairHashes(u *engine.Universe, p searchlog.PairID) (uint64, uint64) {
	return hash64.Sum(u.QueryText(u.QueryOf(p))), hash64.Sum(u.ResultURL(u.ResultOf(p)))
}

func TestBuildUpdatePrunesUnaccessed(t *testing.T) {
	u := testUniverse(t)
	phone := hashtable.MustNew(2)
	accessed, _ := pairHashes(u, u.NavPair(0))
	_, accessedR := pairHashes(u, u.NavPair(0))
	phone.Put(accessed, hashtable.SearchRef{ResultHash: accessedR, Score: 0.8})
	phone.MarkAccessed(accessed, accessedR)
	unaccQ, unaccR := pairHashes(u, u.NavPair(6))
	phone.Put(unaccQ, hashtable.SearchRef{ResultHash: unaccR, Score: 0.9})

	upd, err := BuildUpdate(phone, cachegen.Content{}, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !upd.Table.Contains(accessed) {
		t.Error("accessed pair should survive")
	}
	if upd.Table.Contains(unaccQ) {
		t.Error("never-accessed pair should be pruned")
	}
	if !upd.Table.Accessed(accessed, accessedR) {
		t.Error("accessed flag should be preserved")
	}
}

func TestBuildUpdateDropsStaleAccessed(t *testing.T) {
	u := testUniverse(t)
	phone := hashtable.MustNew(2)
	q, r := pairHashes(u, u.NavPair(0))
	phone.Put(q, hashtable.SearchRef{ResultHash: r, Score: 0.01}) // decayed below floor
	phone.MarkAccessed(q, r)
	upd, err := BuildUpdate(phone, cachegen.Content{}, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if upd.Table.Contains(q) {
		t.Error("stale accessed pair should be dropped")
	}
}

func TestBuildUpdateConflictTakesMaxScore(t *testing.T) {
	u := testUniverse(t)
	p := u.NavPair(0)
	q, r := pairHashes(u, p)

	fresh := contentFromPairs(u, []searchlog.PairID{p}, []int{10})
	freshScore := fresh.Scores[p]

	// Phone score higher than fresh: phone wins.
	phone := hashtable.MustNew(2)
	phone.Put(q, hashtable.SearchRef{ResultHash: r, Score: freshScore + 5})
	phone.MarkAccessed(q, r)
	upd, err := BuildUpdate(phone, fresh, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := upd.Table.Score(q, r); s != freshScore+5 {
		t.Errorf("merged score = %g, want phone's %g", s, freshScore+5)
	}

	// Phone score lower: server wins.
	phone2 := hashtable.MustNew(2)
	phone2.Put(q, hashtable.SearchRef{ResultHash: r, Score: 0.1})
	phone2.MarkAccessed(q, r)
	upd2, err := BuildUpdate(phone2, fresh, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := upd2.Table.Score(q, r); s != freshScore {
		t.Errorf("merged score = %g, want server's %g", s, freshScore)
	}
	// Accessed flag survives the merge either way.
	if !upd2.Table.Accessed(q, r) {
		t.Error("accessed flag lost in merge")
	}
}

func TestUpdateTransferUnderPaperBudget(t *testing.T) {
	u := testUniverse(t)
	// A paper-scale popular set: a few thousand pairs.
	var pairs []searchlog.PairID
	var vols []int
	for i := 0; i < 600; i++ {
		pairs = append(pairs, u.NavPair(i))
		vols = append(vols, 600-i)
	}
	for i := 0; i < 2000; i++ {
		pairs = append(pairs, u.NonNavPair(i))
		vols = append(vols, 2000-i)
	}
	fresh := contentFromPairs(u, pairs, vols)
	upd, err := BuildUpdate(nil, fresh, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// ~2600 pairs -> table well under 200 KB, records ~1.1 MB;
	// total under the paper's ~1.5 MB budget.
	if upd.TableBytes > 200_000 {
		t.Errorf("table transfer = %d bytes, want < 200 KB", upd.TableBytes)
	}
	if upd.TotalBytes() > 1_600_000 {
		t.Errorf("total transfer = %d bytes, want < ~1.5 MB", upd.TotalBytes())
	}
}

func newCache(t testing.TB, u *engine.Universe, content cachegen.Content) *pocketsearch.Cache {
	t.Helper()
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	c, err := pocketsearch.Build(dev, engine.New(u), content, pocketsearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev.Reset()
	return c
}

func TestApplyEndToEnd(t *testing.T) {
	u := testUniverse(t)
	// Initial cache: nav pairs 0 and 6.
	initial := contentFromPairs(u, []searchlog.PairID{u.NavPair(0), u.NavPair(6)}, []int{10, 8})
	c := newCache(t, u, initial)

	// User accesses pair 0 and a brand-new pair 12.
	q0 := u.QueryText(u.QueryOf(u.NavPair(0)))
	r0 := u.ResultURL(u.ResultOf(u.NavPair(0)))
	if out, err := c.Query(q0, r0); err != nil || !out.Hit {
		t.Fatalf("expected hit on preloaded pair: %v %v", out, err)
	}
	q12 := u.QueryText(u.QueryOf(u.NavPair(12)))
	r12 := u.ResultURL(u.ResultOf(u.NavPair(12)))
	if _, err := c.Query(q12, r12); err != nil {
		t.Fatal(err)
	}

	// Server's fresh popular set: pairs 18 and 0.
	fresh := contentFromPairs(u, []searchlog.PairID{u.NavPair(18), u.NavPair(0)}, []int{10, 9})
	upd, err := BuildUpdate(c.Table(), fresh, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(c, upd); err != nil {
		t.Fatal(err)
	}

	// After the update: pair 0 (accessed + popular) hits; pair 18
	// (fresh popular) hits; pair 12 (accessed personal) hits; pair 6
	// (never accessed) was pruned and misses.
	checks := []struct {
		pair searchlog.PairID
		hit  bool
	}{
		{u.NavPair(0), true},
		{u.NavPair(18), true},
		{u.NavPair(12), true},
		{u.NavPair(6), false},
	}
	for _, chk := range checks {
		q := u.QueryText(u.QueryOf(chk.pair))
		r := u.ResultURL(u.ResultOf(chk.pair))
		out, err := c.Query(q, r)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if out.Hit != chk.hit {
			t.Errorf("pair %d: hit = %v, want %v", chk.pair, out.Hit, chk.hit)
		}
	}
}

func TestApplyIsIdempotentOnUnchangedFiles(t *testing.T) {
	u := testUniverse(t)
	initial := contentFromPairs(u, []searchlog.PairID{u.NavPair(0)}, []int{10})
	c := newCache(t, u, initial)
	q0, r0 := u.QueryText(u.QueryOf(u.NavPair(0))), u.ResultURL(u.ResultOf(u.NavPair(0)))
	c.Query(q0, r0) // mark accessed

	fresh := contentFromPairs(u, []searchlog.PairID{u.NavPair(0)}, []int{10})
	upd, err := BuildUpdate(c.Table(), fresh, u, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	lat1, err := Apply(c, upd)
	if err != nil {
		t.Fatal(err)
	}
	// Applying the identical update again rewrites nothing.
	upd2, _ := BuildUpdate(c.Table(), fresh, u, DefaultPolicy())
	lat2, err := Apply(c, upd2)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 != 0 {
		t.Errorf("second identical update cost %v, want 0 (no changed files); first was %v", lat2, lat1)
	}
}

func TestApplyRejectsEmptyUpdate(t *testing.T) {
	u := testUniverse(t)
	c := newCache(t, u, cachegen.Content{})
	if _, err := Apply(c, Update{}); err == nil {
		t.Error("update without table should fail")
	}
}

func TestExportStateRoundTrip(t *testing.T) {
	u := testUniverse(t)
	initial := contentFromPairs(u, []searchlog.PairID{u.NavPair(0), u.NavPair(6)}, []int{10, 8})
	src := newCache(t, u, initial)

	// Touch pair 0 and learn a brand-new personal pair 12 so the export
	// carries both preloaded and runtime-acquired state.
	q0, r0 := u.QueryText(u.QueryOf(u.NavPair(0))), u.ResultURL(u.ResultOf(u.NavPair(0)))
	if out, err := src.Query(q0, r0); err != nil || !out.Hit {
		t.Fatalf("warm-up hit failed: %v %v", out, err)
	}
	q12, r12 := u.QueryText(u.QueryOf(u.NavPair(12))), u.ResultURL(u.ResultOf(u.NavPair(12)))
	if _, err := src.Query(q12, r12); err != nil {
		t.Fatal(err)
	}

	upd, err := ExportState(src)
	if err != nil {
		t.Fatal(err)
	}
	if upd.TableBytes <= 0 || upd.RecordBytes <= 0 {
		t.Fatalf("export carries no bytes: %+v", upd)
	}

	dst := newCache(t, u, cachegen.Content{})
	if _, err := Apply(dst, upd); err != nil {
		t.Fatal(err)
	}

	// Every pair resident at the source resolves identically at the
	// destination, including the learned one.
	for _, pair := range []searchlog.PairID{u.NavPair(0), u.NavPair(6), u.NavPair(12)} {
		q := u.QueryText(u.QueryOf(pair))
		r := u.ResultURL(u.ResultOf(pair))
		want, err := src.Query(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Query(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Hit != want.Hit {
			t.Errorf("pair %d: dst hit = %v, src hit = %v", pair, got.Hit, want.Hit)
		}
	}
	if src.DB().LogicalBytes() != dst.DB().LogicalBytes() {
		t.Errorf("logical bytes diverged: src %d, dst %d", src.DB().LogicalBytes(), dst.DB().LogicalBytes())
	}
}

func TestExportStateMutationIsolated(t *testing.T) {
	// The export must be a deep copy: applying it elsewhere and then
	// mutating the destination must not disturb the source table.
	u := testUniverse(t)
	initial := contentFromPairs(u, []searchlog.PairID{u.NavPair(0)}, []int{10})
	src := newCache(t, u, initial)
	before := src.Table().NumEntries()

	upd, err := ExportState(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := newCache(t, u, cachegen.Content{})
	if _, err := Apply(dst, upd); err != nil {
		t.Fatal(err)
	}
	q12, r12 := u.QueryText(u.QueryOf(u.NavPair(12))), u.ResultURL(u.ResultOf(u.NavPair(12)))
	if _, err := dst.Query(q12, r12); err != nil {
		t.Fatal(err)
	}
	if src.Table().NumEntries() != before {
		t.Errorf("source table mutated through export: len %d, want %d", src.Table().NumEntries(), before)
	}
}

// Package updater implements the cache management cycle of Section 5.4
// of the Pocket Cloudlets paper (Figure 14): the phone transmits its
// hash table to the server; the server prunes pairs the user never
// accessed, merges in the freshly extracted popular set (resolving
// score conflicts by taking the maximum), and produces a new hash
// table plus patch files for the result database; the phone applies
// them. Updates run overnight while the device charges, so they cost
// flash time but no radio energy in the evaluation.
package updater

import (
	"bytes"
	"fmt"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/hashtable"
	"pocketcloudlets/internal/pocketsearch"
)

// Policy tunes the server-side merge.
type Policy struct {
	// MinAccessedScore is the score below which even a user-accessed
	// pair is dropped (the paper's "hasn't accessed the search result
	// over the last 3 months" eviction).
	MinAccessedScore float64
}

// DefaultPolicy drops accessed pairs only when their personalized
// score has decayed to a negligible level.
func DefaultPolicy() Policy { return Policy{MinAccessedScore: 0.05} }

// Update is the server's response: the merged hash table and the
// record patches to install, plus transfer accounting.
type Update struct {
	// Table is the merged hash table to install on the phone.
	Table *hashtable.Table
	// Records holds every result record the merged cache requires,
	// keyed by result hash. The phone turns these into per-file
	// patches against its database.
	Records map[uint64][]byte
	// Queries maps query hashes to their string form for the queries
	// the server shipped, so the phone can rebuild its
	// auto-completion index. Personal pairs the server cannot resolve
	// keep the phone's own strings.
	Queries map[uint64]string
	// TableBytes and RecordBytes size the transfer; the paper expects
	// the total under ~1.5 MB (200 KB table + ~1 MB records).
	TableBytes  int64
	RecordBytes int64
}

// TotalBytes is the full transfer size of the update.
func (u Update) TotalBytes() int64 { return u.TableBytes + u.RecordBytes }

// BuildUpdate runs the server side of Figure 14: given the phone's
// uploaded hash table and the freshly extracted popular set, produce
// the merged update.
func BuildUpdate(phone *hashtable.Table, fresh cachegen.Content, u *engine.Universe, policy Policy) (Update, error) {
	slots := 2
	if phone != nil {
		slots = phone.SlotsPerEntry()
	}
	merged, err := hashtable.New(slots)
	if err != nil {
		return Update{}, err
	}

	// Step 1: preserve the pairs the user has accessed, pruning the
	// rest and anything whose score fell below the policy floor.
	if phone != nil {
		for _, p := range phone.Pairs() {
			if !p.Accessed || p.Score < policy.MinAccessedScore {
				continue
			}
			merged.Put(p.QueryHash, hashtable.SearchRef{ResultHash: p.ResultHash, Score: p.Score})
			merged.MarkAccessed(p.QueryHash, p.ResultHash)
		}
	}

	// Step 2: merge the fresh popular set; conflicts adopt the
	// maximum of the phone's score and the server's score.
	records := make(map[uint64][]byte)
	queries := make(map[uint64]string)
	for _, tr := range fresh.Triplets {
		q := u.QueryText(u.QueryOf(tr.Pair))
		res := u.Result(u.ResultOf(tr.Pair))
		qh, rh := hash64.Sum(q), hash64.Sum(res.URL)
		queries[qh] = q
		score := fresh.Scores[tr.Pair]
		if prev, ok := merged.Score(qh, rh); ok && prev > score {
			score = prev
		}
		accessed := merged.Accessed(qh, rh)
		merged.Put(qh, hashtable.SearchRef{ResultHash: rh, Score: score})
		if accessed {
			merged.MarkAccessed(qh, rh)
		}
		records[rh] = res.Record()
	}

	// Step 3: materialize records for preserved personal pairs. The
	// server regenerates them from its corpus; hashes it cannot
	// resolve keep whatever record the phone already stores.
	for _, p := range merged.Pairs() {
		if _, ok := records[p.ResultHash]; ok {
			continue
		}
		records[p.ResultHash] = nil // sentinel: keep the phone's copy
	}

	upd := Update{Table: merged, Records: records, Queries: queries}
	var buf bytes.Buffer
	if err := merged.Encode(&buf); err != nil {
		return Update{}, err
	}
	upd.TableBytes = int64(buf.Len())
	for _, rec := range records {
		upd.RecordBytes += int64(len(rec))
	}
	return upd, nil
}

// ExportState snapshots a cache's full state as an Update — the same
// wire format the overnight cycle ships, reused by fleet resharding to
// move a user's personal component between shards. The table travels
// through its wire encoding (which sizes TableBytes and is also a deep
// copy preserving per-pair Accessed bits); every record the table
// references is read out of the result database, and Queries carries
// the auto-completion vocabulary. Applying the export to an empty
// cache reproduces the source cache's hit/miss behavior exactly.
func ExportState(c *pocketsearch.Cache) (Update, error) {
	var buf bytes.Buffer
	if err := c.Table().Encode(&buf); err != nil {
		return Update{}, err
	}
	table, err := hashtable.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return Update{}, err
	}
	upd := Update{
		Table:      table,
		Records:    make(map[uint64][]byte),
		Queries:    c.QueryTexts(),
		TableBytes: int64(buf.Len()),
	}
	db := c.DB()
	for _, p := range table.Pairs() {
		if _, ok := upd.Records[p.ResultHash]; ok {
			continue
		}
		rec, _, err := db.Get(p.ResultHash)
		if err != nil {
			// The record is gone from flash; the pair cannot survive the
			// move.
			table.RemoveResult(p.ResultHash)
			continue
		}
		upd.Records[p.ResultHash] = rec
		upd.RecordBytes += int64(len(rec))
	}
	return upd, nil
}

// Apply installs an update on a PocketSearch cache: the hash table is
// replaced and every database file whose record set changed is
// rewritten as a patch. It returns the modeled flash latency of
// applying the patches (charged to the device as busy time).
func Apply(c *pocketsearch.Cache, upd Update) (time.Duration, error) {
	if upd.Table == nil {
		return 0, fmt.Errorf("updater: update has no table")
	}
	db := c.DB()

	// Group the merged record set by database file, resolving keep
	// sentinels against the phone's current records.
	perFile := make(map[int]map[uint64][]byte)
	for rh, rec := range upd.Records {
		if rec == nil {
			existing, _, err := db.Get(rh)
			if err != nil {
				// The phone lost the record; drop the pair entirely.
				upd.Table.RemoveResult(rh)
				continue
			}
			rec = existing
		}
		f := db.FileOf(rh)
		if perFile[f] == nil {
			perFile[f] = make(map[uint64][]byte)
		}
		perFile[f][rh] = rec
	}

	var total time.Duration
	for f := 0; f < db.Files(); f++ {
		current, err := db.RecordsOf(f)
		if err != nil {
			return total, err
		}
		next := perFile[f]
		if next == nil {
			next = map[uint64][]byte{}
		}
		if recordsEqual(current, next) {
			continue
		}
		lat, err := db.ReplaceFile(f, next)
		if err != nil {
			return total, err
		}
		total += lat
	}
	c.ReplaceTable(upd.Table, upd.Queries)
	c.Device().FlashBusy(total)
	return total, nil
}

func recordsEqual(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !bytes.Equal(va, vb) {
			return false
		}
	}
	return true
}

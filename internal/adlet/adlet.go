// Package adlet implements the advertisement half of the paper's
// "search and advertisement pocket cloudlet" (Figures 1 and 6): ad
// banners cached on the device and displayed instantly next to cached
// search results.
//
// Two policies come straight from the paper:
//
//   - Ads are provisioned for the same popular queries the search
//     cache holds, because the two caches are accessed together.
//   - An ad cache lookup only happens on a search cache hit: "if a
//     particular query misses in the local search cache, there is not
//     much benefit in hitting the ad cache" (Section 7) — on a miss
//     the radio is waking up anyway and fresh ads ride along with the
//     result page.
//
// Serving ads locally also means impressions happen offline; the
// cloudlet keeps an impression log that is flushed to the ad network
// during the nightly sync, following the localhost ad-serving model
// the paper cites.
package adlet

import (
	"fmt"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/hash64"
	"pocketcloudlets/internal/searchlog"
)

// BannerBytes is the size of one cached ad banner (Table 2: 5 KB).
const BannerBytes = 5 * 1000

// Ad is one advertisement creative.
type Ad struct {
	// ID identifies the creative.
	ID uint64
	// QueryHash is the query the ad is targeted at.
	QueryHash uint64
	// Text is the rendered banner copy.
	Text string
	// Bid is the advertiser's bid, used to rank ads for a query.
	Bid float64
}

// Inventory is the ad network's procedural creative store: popular
// queries carry zero to two targeted ads.
type Inventory struct {
	u *engine.Universe
}

// NewInventory builds the inventory over a corpus.
func NewInventory(u *engine.Universe) *Inventory { return &Inventory{u: u} }

// AdsForQuery returns the creatives targeted at a query, best bid
// first. Roughly two thirds of queries are monetized.
func (inv *Inventory) AdsForQuery(q searchlog.QueryID) []Ad {
	n := int(q) % 3 // 0, 1 or 2 ads
	text := inv.u.QueryText(q)
	qh := hash64.Sum(text)
	ads := make([]Ad, 0, n)
	for i := 0; i < n; i++ {
		ads = append(ads, Ad{
			ID:        qh ^ uint64(i+1)*0x9E3779B97F4A7C15,
			QueryHash: qh,
			Text:      fmt.Sprintf("Sponsored: best deals for %q (#%d)", text, i+1),
			Bid:       0.05 + float64((int(q)+i)%20)/100,
		})
	}
	return ads
}

// Impression records one locally served ad.
type Impression struct {
	AdID uint64
	At   time.Duration
}

// Stats counts ad-serving activity.
type Stats struct {
	// Lookups is how many search hits consulted the ad cache.
	Lookups int
	// Served is how many lookups displayed at least one cached ad.
	Served int
	// SkippedOnMiss counts search misses where, per policy, the ad
	// cache was not consulted.
	SkippedOnMiss int
}

// Cache is the on-device ad cloudlet.
type Cache struct {
	dev   *device.Device
	inv   *Inventory
	index map[uint64][]Ad // query hash -> cached creatives
	log   []Impression
	stats Stats
}

// New creates an empty ad cache.
func New(dev *device.Device, inv *Inventory) (*Cache, error) {
	if dev == nil || inv == nil {
		return nil, fmt.Errorf("adlet: device and inventory are required")
	}
	return &Cache{dev: dev, inv: inv, index: make(map[uint64][]Ad)}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached creatives.
func (c *Cache) Len() int {
	n := 0
	for _, ads := range c.index {
		n += len(ads)
	}
	return n
}

// FlashBytes is the cache's modeled banner storage.
func (c *Cache) FlashBytes() int64 { return int64(c.Len()) * BannerBytes }

// Provision installs the creatives for the queries of a community
// cache content — the same popular set PocketSearch preloads, so the
// two cloudlets cover the same queries (Figure 6's shared pipeline).
func (c *Cache) Provision(content cachegen.Content, u *engine.Universe) {
	seen := make(map[searchlog.QueryID]bool)
	var flash time.Duration
	for _, tr := range content.Triplets {
		q := u.QueryOf(tr.Pair)
		if seen[q] {
			continue
		}
		seen[q] = true
		ads := c.inv.AdsForQuery(q)
		if len(ads) == 0 {
			continue
		}
		c.index[hash64.Sum(u.QueryText(q))] = ads
		flash += c.dev.Flash().WriteCost(len(ads) * BannerBytes)
	}
	c.dev.FlashBusy(flash)
}

// Serve returns the cached ads for a query. It implements the
// coordinated-access policy: on a search miss the ad cache is not
// consulted at all and nil is returned — the fresh ads arrive with the
// result page over the radio that is already waking up.
func (c *Cache) Serve(queryText string, searchHit bool) []Ad {
	if !searchHit {
		c.stats.SkippedOnMiss++
		return nil
	}
	c.stats.Lookups++
	ads := c.index[hash64.Sum(queryText)]
	if len(ads) == 0 {
		return nil
	}
	c.stats.Served++
	// Reading the banners from flash rides the same charge window as
	// the search results fetch.
	c.dev.FlashBusy(c.dev.Flash().ReadCost(len(ads) * BannerBytes))
	for _, ad := range ads {
		c.log = append(c.log, Impression{AdID: ad.ID, At: c.dev.Now()})
	}
	return ads
}

// PendingImpressions reports how many offline impressions await flush.
func (c *Cache) PendingImpressions() int { return len(c.log) }

// FlushImpressions hands the accumulated offline impressions to the ad
// network (during the nightly sync — no radio cost is charged here)
// and clears the log.
func (c *Cache) FlushImpressions() []Impression {
	out := c.log
	c.log = nil
	return out
}

package adlet

import (
	"testing"
	"time"

	"pocketcloudlets/internal/cachegen"
	"pocketcloudlets/internal/device"
	"pocketcloudlets/internal/engine"
	"pocketcloudlets/internal/flashsim"
	"pocketcloudlets/internal/radio"
	"pocketcloudlets/internal/searchlog"
)

func fixture(t testing.TB) (*engine.Universe, *device.Device, *Cache, cachegen.Content) {
	t.Helper()
	u, err := engine.NewUniverse(engine.Config{
		NavPairs:       800,
		NonNavPairs:    4000,
		NonNavSegments: []engine.Segment{{Queries: 100, ResultsPerQuery: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(device.Config{}, radio.ThreeG(), flashsim.Params{})
	c, err := New(dev, NewInventory(u))
	if err != nil {
		t.Fatal(err)
	}
	// Content covering the first 60 nav pairs (descending volume).
	var entries []searchlog.Entry
	for i := 0; i < 60; i++ {
		for v := 0; v < 60-i; v++ {
			entries = append(entries, searchlog.Entry{At: time.Duration(len(entries)), Pair: u.NavPair(i)})
		}
	}
	tbl := searchlog.ExtractTriplets(entries)
	content := cachegen.Generate(tbl, u, len(tbl.Triplets))
	return u, dev, c, content
}

// monetizedQuery finds a cached query with at least one ad.
func monetizedQuery(t testing.TB, u *engine.Universe, content cachegen.Content, inv *Inventory) string {
	t.Helper()
	for _, tr := range content.Triplets {
		q := u.QueryOf(tr.Pair)
		if len(inv.AdsForQuery(q)) > 0 {
			return u.QueryText(q)
		}
	}
	t.Fatal("no monetized query in content")
	return ""
}

func TestNewValidation(t *testing.T) {
	u, dev, _, _ := fixture(t)
	if _, err := New(nil, NewInventory(u)); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := New(dev, nil); err == nil {
		t.Error("nil inventory should fail")
	}
}

func TestInventoryDeterministicAndRanked(t *testing.T) {
	u, _, _, _ := fixture(t)
	inv := NewInventory(u)
	var monetized, total int
	for q := 0; q < 300; q++ {
		ads := inv.AdsForQuery(searchlog.QueryID(q))
		again := inv.AdsForQuery(searchlog.QueryID(q))
		if len(ads) != len(again) {
			t.Fatal("inventory not deterministic")
		}
		if len(ads) > 2 {
			t.Fatalf("query %d has %d ads, want <= 2", q, len(ads))
		}
		if len(ads) > 0 {
			monetized++
		}
		total += len(ads)
		for i, ad := range ads {
			if ad.Text == "" || ad.ID == 0 {
				t.Fatal("malformed ad")
			}
			if i > 0 && ads[i-1].ID == ad.ID {
				t.Fatal("duplicate ad IDs within a query")
			}
		}
	}
	if monetized < 150 || monetized > 250 {
		t.Errorf("monetized queries = %d/300, want ~2/3", monetized)
	}
}

func TestProvisionAndServe(t *testing.T) {
	u, dev, c, content := fixture(t)
	c.Provision(content, u)
	dev.Reset()
	if c.Len() == 0 {
		t.Fatal("provisioning cached no ads")
	}
	q := monetizedQuery(t, u, content, c.inv)

	ads := c.Serve(q, true)
	if len(ads) == 0 {
		t.Fatal("cached query should serve ads on a search hit")
	}
	if dev.Link().Wakeups() != 0 {
		t.Error("ad serving must not use the radio")
	}
	if c.PendingImpressions() != len(ads) {
		t.Errorf("impressions = %d, want %d", c.PendingImpressions(), len(ads))
	}
	st := c.Stats()
	if st.Lookups != 1 || st.Served != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSearchMissSkipsAdCache(t *testing.T) {
	u, _, c, content := fixture(t)
	c.Provision(content, u)
	q := monetizedQuery(t, u, content, c.inv)
	if ads := c.Serve(q, false); ads != nil {
		t.Error("search miss must not consult the ad cache")
	}
	st := c.Stats()
	if st.SkippedOnMiss != 1 || st.Lookups != 0 {
		t.Errorf("stats = %+v", st)
	}
	if c.PendingImpressions() != 0 {
		t.Error("no impressions should be logged on a miss")
	}
}

func TestUnmonetizedQueryServesNothing(t *testing.T) {
	u, _, c, content := fixture(t)
	c.Provision(content, u)
	// Find a cached query without ads.
	for _, tr := range content.Triplets {
		q := u.QueryOf(tr.Pair)
		if len(c.inv.AdsForQuery(q)) == 0 {
			if ads := c.Serve(u.QueryText(q), true); ads != nil {
				t.Error("unmonetized query should serve no ads")
			}
			return
		}
	}
	t.Skip("no unmonetized query in content")
}

func TestFlushImpressions(t *testing.T) {
	u, _, c, content := fixture(t)
	c.Provision(content, u)
	q := monetizedQuery(t, u, content, c.inv)
	c.Serve(q, true)
	c.Serve(q, true)
	n := c.PendingImpressions()
	if n < 2 {
		t.Fatalf("pending = %d, want >= 2", n)
	}
	flushed := c.FlushImpressions()
	if len(flushed) != n {
		t.Errorf("flushed %d, want %d", len(flushed), n)
	}
	if c.PendingImpressions() != 0 {
		t.Error("flush should clear the log")
	}
	if len(c.FlushImpressions()) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestFlashAccounting(t *testing.T) {
	u, _, c, content := fixture(t)
	c.Provision(content, u)
	if c.FlashBytes() != int64(c.Len())*BannerBytes {
		t.Error("flash accounting mismatch")
	}
}

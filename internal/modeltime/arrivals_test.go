package modeltime

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"poisson": Poisson, "diurnal": Diurnal, "peruser": PerUser} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseKind("weekly"); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestSpecValidation(t *testing.T) {
	base := Spec{Kind: Poisson, QPS: 100, Horizon: time.Second, Max: 1000}
	bad := []Spec{
		{Kind: Poisson, QPS: 0, Horizon: time.Second, Max: 10},
		{Kind: Poisson, QPS: 10, Horizon: 0, Max: 10},
		{Kind: Poisson, QPS: 10, Horizon: time.Second, Max: 0},
		{Kind: Diurnal, QPS: 10, Horizon: time.Second, Max: 10, PeakTrough: 0.5},
		{Kind: PerUser, QPS: 10, Horizon: time.Second, Max: 10},
		{Kind: PerUser, QPS: 10, Horizon: time.Second, Max: 10, Weights: []float64{0, 0}},
		{Kind: PerUser, QPS: 10, Horizon: time.Second, Max: 10, Weights: []float64{1, -2}},
		{Kind: Kind(42), QPS: 10, Horizon: time.Second, Max: 10},
	}
	if _, err := Schedule(base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for i, s := range bad {
		if _, err := Schedule(s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestPoissonMatchesLegacySchedule pins the Poisson kind to the exact
// schedule the load generator drew before the modeltime layer existed:
// same seed salt, same draw loop, byte-identical times.
func TestPoissonMatchesLegacySchedule(t *testing.T) {
	const seed, qps = int64(11), 5000.0
	horizon := 200 * time.Millisecond

	rng := rand.New(rand.NewSource(seed ^ 0x09E2_7C15))
	var legacy []time.Duration
	var at time.Duration
	for len(legacy) < 10_000_000 {
		at += time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
		if at > horizon {
			break
		}
		legacy = append(legacy, at)
	}

	got, err := Schedule(Spec{Kind: Poisson, QPS: qps, Horizon: horizon, Seed: seed, Max: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(legacy) {
		t.Fatalf("schedule length %d, legacy %d", len(got), len(legacy))
	}
	for i := range got {
		if got[i].At != legacy[i] || got[i].User != -1 {
			t.Fatalf("arrival %d = %+v, legacy at %v", i, got[i], legacy[i])
		}
	}
}

// TestDiurnalPreservesArrivals is the tentpole equivalence: for the
// same (seed, QPS, horizon) a diurnal schedule contains exactly as
// many arrivals as the flat Poisson schedule — the warp only moves
// them in time — and the warped times stay sorted within the horizon.
func TestDiurnalPreservesArrivals(t *testing.T) {
	for _, horizon := range []time.Duration{199 * time.Millisecond, time.Second, 2500 * time.Millisecond} {
		flat, err := Schedule(Spec{Kind: Poisson, QPS: 3000, Horizon: horizon, Seed: 5, Max: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		warped, err := Schedule(Spec{Kind: Diurnal, QPS: 3000, Horizon: horizon, Seed: 5, Max: 1 << 20, PeakTrough: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(flat) != len(warped) {
			t.Fatalf("horizon %v: diurnal %d arrivals, poisson %d", horizon, len(warped), len(flat))
		}
		for i, a := range warped {
			if a.At < 0 || a.At > horizon {
				t.Fatalf("arrival %d at %v outside [0, %v]", i, a.At, horizon)
			}
			if i > 0 && a.At < warped[i-1].At {
				t.Fatalf("arrival %d at %v before predecessor %v", i, a.At, warped[i-1].At)
			}
		}
	}
}

// TestDiurnalConcentratesAtPeak checks the warp actually moves mass to
// the mid-period peak: with a 4:1 curve the middle half of the horizon
// must hold well over half the arrivals.
func TestDiurnalConcentratesAtPeak(t *testing.T) {
	horizon := time.Second
	sched, err := Schedule(Spec{Kind: Diurnal, QPS: 20000, Horizon: horizon, Seed: 2, Max: 1 << 20, PeakTrough: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mid int
	for _, a := range sched {
		if a.At >= horizon/4 && a.At < 3*horizon/4 {
			mid++
		}
	}
	share := float64(mid) / float64(len(sched))
	// Analytically the middle half of 1 - a·cos(2πt/P) with a = 0.6
	// carries 50% + a/π ≈ 69% of the mass (a flat curve carries 50%).
	if share < 0.65 {
		t.Errorf("middle-half share = %.3f, want ≈ 0.69 (curve not concentrating)", share)
	}
	// And the analytic rate curve peaks mid-period at (1+a)·mean.
	spec := Spec{Kind: Diurnal, QPS: 100, Horizon: horizon, PeakTrough: 4}
	peak, trough := spec.RateAt(horizon/2), spec.RateAt(0)
	if ratio := peak / trough; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("analytic peak/trough = %.2f, want ~4", ratio)
	}
}

func TestPerUserDeterministicAndWeighted(t *testing.T) {
	spec := Spec{
		Kind: PerUser, QPS: 4000, Horizon: time.Second, Seed: 9, Max: 1 << 20,
		Weights: []float64{10, 1, 0, 10},
	}
	s1, err := Schedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Schedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	counts := make([]int, len(spec.Weights))
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
		if i > 0 && (s1[i].At < s1[i-1].At || (s1[i].At == s1[i-1].At && s1[i].User < s1[i-1].User)) {
			t.Fatalf("merge order violated at %d: %+v after %+v", i, s1[i], s1[i-1])
		}
		counts[s1[i].User]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight user arrived %d times", counts[2])
	}
	if counts[0] < 5*counts[1] || counts[3] < 5*counts[1] {
		t.Errorf("10:1 weights not reflected in counts: %v", counts)
	}
	total := counts[0] + counts[1] + counts[3]
	if total < 3000 || total > 5000 {
		t.Errorf("total arrivals %d far from QPS·horizon = 4000", total)
	}
}

func TestPerUserMaxCap(t *testing.T) {
	sched, err := Schedule(Spec{
		Kind: PerUser, QPS: 50000, Horizon: time.Second, Seed: 1, Max: 100,
		Weights: []float64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 100 {
		t.Errorf("capped schedule has %d arrivals, want 100", len(sched))
	}
}

// Package modeltime is the single source of truth for *model time* in
// the serving stack. The paper states every latency and energy number
// in modeled device time, and before this layer existed the stack
// tracked that time in four uncoordinated places: each device's own
// clock, the fault planner's per-user view of it, the breaker's
// wall-clock pacing, and the load generator's wall-only Poisson
// schedule. This package gives each of those a named home:
//
//   - UserClock is one user's virtual model clock — a monotonic view
//     over the user's simulated device, registered on a fleet-wide
//     Timeline. The fleet reads a user's model time and syncs it
//     forward across migrations exclusively through UserClock; no
//     package outside internal/device and this one touches
//     device.SyncClock.
//   - Timeline is the fleet-wide model timeline: the deterministic
//     high-water mark (makespan) over every registered clock, safe for
//     concurrent observation from worker goroutines.
//   - Arrivals (arrivals.go) turns a seed into a model-timestamped
//     arrival schedule: homogeneous Poisson, a diurnal rate curve that
//     preserves the arrival count exactly, or per-user renewal
//     processes merged in deterministic order.
//   - Pacer converts modeled response time into the wall pause a
//     closed-loop runner takes between a user's requests, so fleet
//     capacity can be studied in paper-faithful time. Pacing is
//     wall-clock only by design: it must never perturb model state, so
//     paced and unpaced runs produce byte-identical per-user outcomes.
//
// Wall-clock pacing that exists to protect the harness itself — the
// fleet's circuit breaker, the batch dispatcher's linger window —
// deliberately stays outside this package: it is real time spent
// serving, not model time, and must never feed back into outcomes.
package modeltime

import (
	"sync/atomic"
	"time"
)

// Clock is anything that exposes a model-time reading.
type Clock interface {
	Now() time.Duration
}

// DeviceClock is the contract a simulated device offers the model-time
// layer: a readable clock plus a monotonic forward sync.
// device.Device satisfies it; SyncClock is documented (and tested) to
// clamp rather than rewind, which is what makes UserClock.SyncForward
// safe to call with any historical timestamp.
type DeviceClock interface {
	Clock
	SyncClock(t time.Duration)
}

// Timeline is a fleet-wide model timeline: the high-water mark over
// every model clock observed on it. Observation is lock-free and
// order-independent (a max is commutative), so the makespan is
// deterministic for a deterministic workload no matter how worker
// goroutines interleave.
type Timeline struct {
	max atomic.Int64
}

// NewTimeline returns an empty timeline at model time zero.
func NewTimeline() *Timeline { return &Timeline{} }

// Observe folds one model-time reading into the high-water mark.
func (tl *Timeline) Observe(t time.Duration) {
	if tl == nil {
		return
	}
	for {
		cur := tl.max.Load()
		if int64(t) <= cur || tl.max.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Makespan returns the highest model time observed so far — the
// fleet-wide model-time makespan of everything served.
func (tl *Timeline) Makespan() time.Duration {
	if tl == nil {
		return 0
	}
	return time.Duration(tl.max.Load())
}

// UserClock is one user's virtual model clock: a view over the user's
// device clock, registered on a fleet-wide Timeline. It is the only
// sanctioned path from the serving layers to a device's clock — reads
// go through Now, migration hand-offs through SyncForward — so model
// time has exactly one owner per user and one aggregate view per
// fleet.
//
// UserClock adds no locking of its own: callers synchronize access the
// same way they synchronize the underlying device (in the fleet, the
// shard lock).
type UserClock struct {
	dev DeviceClock
	tl  *Timeline
}

// UserClock registers a user's device clock on the timeline.
func (tl *Timeline) UserClock(dev DeviceClock) *UserClock {
	c := tl.BoundClock(dev)
	return &c
}

// BoundClock is UserClock returning the clock by value, for callers
// that intern per-user clocks inside compact arena slots instead of
// heap-allocating one clock per user. The value is a valid UserClock;
// methods work on any addressable copy.
func (tl *Timeline) BoundClock(dev DeviceClock) UserClock {
	return UserClock{dev: dev, tl: tl}
}

// Now returns the user's current model time.
func (c *UserClock) Now() time.Duration { return c.dev.Now() }

// Observe publishes the user's current model time to the timeline.
// Serving paths call it after charging work to the device, so the
// timeline's makespan tracks the furthest-advanced user.
func (c *UserClock) Observe() { c.tl.Observe(c.dev.Now()) }

// SyncForward advances the user's model clock monotonically to t and
// publishes the result. A t at or before the current clock is a no-op
// (the device-level monotonic contract), so replaying a stale
// timestamp — a migration import racing a fresher serve — can never
// rewind time.
func (c *UserClock) SyncForward(t time.Duration) {
	c.dev.SyncClock(t)
	c.Observe()
}

// Pacer converts a modeled duration into the wall-clock pause a
// closed-loop runner takes between one user's requests: the user
// "experiences" their modeled response time, compressed by Scale so a
// load test finishes in reasonable wall time. The zero value disables
// pacing entirely (Pause always returns 0), which is the unpaced
// as-fast-as-possible protocol.
//
// Pacing is wall-only: it inserts real sleeps between a user's own
// requests and touches no model state, so a paced run's per-user
// outcomes are byte-identical to an unpaced run on the same tape.
type Pacer struct {
	// Scale multiplies the modeled duration to get the wall pause.
	// Zero or negative disables pacing.
	Scale float64
	// MaxPause caps one wall pause. Zero selects DefaultMaxPause.
	MaxPause time.Duration
}

// DefaultMaxPause caps a single paced wall pause so one slow modeled
// response (a multi-second faulted retry ladder) cannot stall a run.
const DefaultMaxPause = 50 * time.Millisecond

// Enabled reports whether the pacer actually paces.
func (p Pacer) Enabled() bool { return p.Scale > 0 }

// Pause returns the wall pause for a modeled duration.
func (p Pacer) Pause(model time.Duration) time.Duration {
	if p.Scale <= 0 || model <= 0 {
		return 0
	}
	max := p.MaxPause
	if max <= 0 {
		max = DefaultMaxPause
	}
	d := time.Duration(float64(model) * p.Scale)
	if d > max {
		d = max
	}
	return d
}
